// Package smacs is the public API of the SMACS reproduction (DSN 2020):
// a token-based access-control framework for smart contracts where an
// off-chain Token Service validates requests against updatable Access
// Control Rules and issues short signed tokens, while the contract performs
// only a lightweight on-chain verification.
//
// The package re-exports the library surface; implementations live under
// internal/:
//
//	evm        — the simulated Ethereum substrate (chain, gas, contracts)
//	core       — tokens, Alg. 1 verification, Alg. 2 one-time bitmap
//	rules      — white/blacklist ACRs (Fig. 6)
//	ts         — the Token Service (+ ts/replica for HA counters)
//	tshttp     — the HTTP front end and client
//	transform  — the legacy→SMACS adoption tool (Fig. 4)
//	rtverify   — runtime-verification tools (hydra, ecf)
//	contracts  — sample and baseline contracts
//	bench      — the evaluation harness (every table and figure)
//
// A minimal end-to-end flow:
//
//	chain := smacs.NewChain(smacs.DefaultChainConfig())
//	owner := smacs.NewWalletFromSeed("owner", chain)
//	chain.Fund(owner.Address(), smacs.Ether(10))
//
//	service, _ := smacs.NewTokenService(smacs.TokenServiceConfig{Key: ownerKey})
//	verifier := smacs.NewVerifier(service.Address())
//	protected := smacs.EnableContract(legacyContract, verifier)
//	addr, _, _ := chain.Deploy(owner.Address(), protected)
//
//	token, _ := service.Issue(&smacs.TokenRequest{
//		Type: smacs.SuperToken, Contract: addr, Sender: client.Address(),
//	})
//	client.Call(addr, "method", smacs.WithTokens(
//		smacs.TokenEntry{Contract: addr, Token: token}))
package smacs

import (
	"math/big"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/ts"
	"repro/internal/tshttp"
	"repro/internal/types"
	"repro/internal/wallet"
)

// Substrate types.
type (
	// Address is a 20-byte Ethereum account or contract address.
	Address = types.Address
	// Hash is a 32-byte Keccak-256 digest.
	Hash = types.Hash
	// Chain is the simulated Ethereum chain.
	Chain = evm.Chain
	// ChainConfig parameterizes a chain.
	ChainConfig = evm.Config
	// Contract is a deployable unit of logic.
	Contract = evm.Contract
	// Method describes one contract method.
	Method = evm.Method
	// Call is the execution context of a call frame.
	Call = evm.Call
	// Receipt reports a transaction outcome with its gas breakdown.
	Receipt = evm.Receipt
	// Transaction is a signed state transition.
	Transaction = evm.Transaction
	// GasPrice converts gas to ether and USD.
	GasPrice = gas.Price
	// PrivateKey is a secp256k1 signing key.
	PrivateKey = secp256k1.PrivateKey
)

// SMACS core types.
type (
	// Token is a SMACS access token (Fig. 3).
	Token = core.Token
	// TokenType is the permission level of a token.
	TokenType = core.TokenType
	// TokenRequest is a client's token request (Fig. 2).
	TokenRequest = core.Request
	// NamedArg is one argument name/value pair of a request.
	NamedArg = core.NamedArg
	// Binding is the transaction context a token is bound to.
	Binding = core.Binding
	// Verifier is the contract-side verification library (Alg. 1).
	Verifier = core.Verifier
	// Bitmap is the one-time-token bitmap (Alg. 2).
	Bitmap = core.Bitmap
	// RuleSet is an owner's Access Control Rule configuration (Fig. 6).
	RuleSet = rules.RuleSet
	// List is a single white- or blacklist.
	List = rules.List
	// TokenService issues tokens against the rules.
	TokenService = ts.Service
	// TokenServiceConfig parameterizes a Token Service.
	TokenServiceConfig = ts.Config
	// TokenServiceCounter allocates one-time-token indexes.
	TokenServiceCounter = ts.Counter
	// ShardedCounter allocates one-time indexes from per-shard leased
	// blocks for contention-free parallel issuance.
	ShardedCounter = ts.ShardedCounter
	// TokenServiceServer exposes a service over HTTP.
	TokenServiceServer = tshttp.Server
	// TokenServiceClient requests tokens over HTTP.
	TokenServiceClient = tshttp.Client
	// Wallet signs and submits transactions for one account.
	Wallet = wallet.Wallet
	// CallOpts tweaks a transaction.
	CallOpts = wallet.CallOpts
	// TokenEntry pairs a token with its target contract.
	TokenEntry = wallet.TokenEntry
)

// Token types (§ IV-A).
const (
	// SuperToken grants access to all public methods.
	SuperToken = core.SuperType
	// MethodToken grants access to one method with arbitrary arguments.
	MethodToken = core.MethodType
	// ArgumentToken grants access to one method with fixed arguments.
	ArgumentToken = core.ArgumentType
)

// Method visibilities (§ II-B).
const (
	External = evm.External
	Public   = evm.Public
	Internal = evm.Internal
	Private  = evm.Private
)

// NotOneTime is the token index of tokens without the one-time property.
const NotOneTime = core.NotOneTime

// NewChain creates a simulated chain with a genesis block.
func NewChain(cfg ChainConfig) *Chain { return evm.NewChain(cfg) }

// DefaultChainConfig returns a testnet-like chain configuration.
func DefaultChainConfig() ChainConfig { return evm.DefaultConfig() }

// NewContract creates an empty contract.
func NewContract(name string) *Contract { return evm.NewContract(name) }

// NewTokenService creates a Token Service.
func NewTokenService(cfg TokenServiceConfig) (*TokenService, error) { return ts.New(cfg) }

// NewShardedCounter shards the one-time index space of underlying (nil =
// a local counter) across shards, leasing blockSize indexes at a time.
func NewShardedCounter(underlying TokenServiceCounter, shards, blockSize int) (*ShardedCounter, error) {
	return ts.NewShardedCounter(underlying, shards, blockSize)
}

// NewVerifier creates the contract-side verifier trusting the given Token
// Service address.
func NewVerifier(tsAddr Address) *Verifier { return core.NewVerifier(tsAddr) }

// NewBitmap creates an n-bit one-time-token bitmap rooted at baseSlot.
func NewBitmap(n int, baseSlot uint64) (*Bitmap, error) { return core.NewBitmap(n, baseSlot) }

// BitmapSizeFor sizes a bitmap so no fresh token is missed:
// lifetime × peak tx rate (§ IV-C).
func BitmapSizeFor(lifetimeSeconds, txPerSecond float64) int {
	return core.SizeFor(lifetimeSeconds, txPerSecond)
}

// EnableContract turns a legacy contract into a SMACS-enabled one (Fig. 4).
func EnableContract(legacy *Contract, v *Verifier, opts ...transform.Options) *Contract {
	return transform.Enable(legacy, v, opts...)
}

// NewRuleSet creates an empty (allow-all) rule set.
func NewRuleSet() *RuleSet { return rules.NewRuleSet() }

// NewWhitelist builds a whitelist with the given entries.
func NewWhitelist(entries ...string) *List { return rules.NewList(rules.Whitelist, entries...) }

// NewBlacklist builds a blacklist with the given entries.
func NewBlacklist(entries ...string) *List { return rules.NewList(rules.Blacklist, entries...) }

// NewWallet creates a wallet for key operating against chain.
func NewWallet(key *PrivateKey, chain *Chain) *Wallet { return wallet.New(key, chain) }

// NewWalletFromSeed creates a wallet with a deterministic key.
func NewWalletFromSeed(seed string, chain *Chain) *Wallet { return wallet.FromSeed(seed, chain) }

// WithTokens builds CallOpts carrying the given tokens (§ IV-D ordering).
func WithTokens(entries ...TokenEntry) CallOpts { return wallet.WithTokens(entries...) }

// GenerateKey creates a fresh random key (rng may be nil).
func GenerateKey() (*PrivateKey, error) { return secp256k1.GenerateKey(nil) }

// KeyFromSeed derives a deterministic key from a seed.
func KeyFromSeed(seed string) *PrivateKey { return secp256k1.PrivateKeyFromSeed([]byte(seed)) }

// NewTokenServiceServer wraps a service in the HTTP front end.
func NewTokenServiceServer(svc *TokenService, ownerToken string) *TokenServiceServer {
	return tshttp.NewServer(svc, ownerToken)
}

// NewTokenServiceClient creates an HTTP client for a Token Service.
func NewTokenServiceClient(base, ownerToken string) *TokenServiceClient {
	return tshttp.NewClient(base, ownerToken)
}

// Ether returns n ether in wei.
func Ether(n int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(n), big.NewInt(1e18))
}

// ValueKey canonicalizes an argument value for rule lists.
func ValueKey(v any) string { return core.ValueKey(v) }
