// Package rlp implements Ethereum's Recursive Length Prefix serialization
// for the subset of shapes the simulated chain needs: byte strings, unsigned
// integers, big integers, and (nested) lists. Transactions are RLP-encoded
// before hashing and signing, exactly as on the real network.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

var (
	// ErrTrailingBytes is returned by Decode when input remains after a
	// complete top-level item.
	ErrTrailingBytes = errors.New("rlp: trailing bytes after item")
	// ErrTruncated is returned when the input ends mid-item.
	ErrTruncated = errors.New("rlp: truncated input")
	// ErrNonCanonical is returned for encodings that are valid-looking but
	// not the unique canonical form (e.g., a single byte < 0x80 wrapped in a
	// string header, or length prefixes with leading zeros).
	ErrNonCanonical = errors.New("rlp: non-canonical encoding")
)

// Value is a decoded RLP item: either a byte string or a list of Values.
type Value struct {
	// IsList reports whether the item is a list.
	IsList bool
	// Bytes holds the payload when IsList is false.
	Bytes []byte
	// List holds the elements when IsList is true.
	List []Value
}

// Uint interprets a string item as a canonical big-endian unsigned integer.
func (v Value) Uint() (uint64, error) {
	if v.IsList {
		return 0, errors.New("rlp: expected string item, got list")
	}
	if len(v.Bytes) > 8 {
		return 0, fmt.Errorf("rlp: integer too large (%d bytes)", len(v.Bytes))
	}
	if len(v.Bytes) > 0 && v.Bytes[0] == 0 {
		return 0, ErrNonCanonical
	}
	var u uint64
	for _, b := range v.Bytes {
		u = u<<8 | uint64(b)
	}
	return u, nil
}

// BigInt interprets a string item as a canonical big-endian big integer.
func (v Value) BigInt() (*big.Int, error) {
	if v.IsList {
		return nil, errors.New("rlp: expected string item, got list")
	}
	if len(v.Bytes) > 0 && v.Bytes[0] == 0 {
		return nil, ErrNonCanonical
	}
	return new(big.Int).SetBytes(v.Bytes), nil
}

// AppendBytes appends the RLP encoding of a byte string to dst.
func AppendBytes(dst, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(dst, s[0])
	}
	dst = appendLength(dst, 0x80, len(s))
	return append(dst, s...)
}

// AppendString appends the RLP encoding of a string to dst.
func AppendString(dst []byte, s string) []byte {
	return AppendBytes(dst, []byte(s))
}

// AppendUint appends the canonical RLP encoding of an unsigned integer
// (big-endian with no leading zeros; zero encodes as the empty string).
func AppendUint(dst []byte, u uint64) []byte {
	if u == 0 {
		return append(dst, 0x80)
	}
	var buf [8]byte
	n := 0
	for v := u; v > 0; v >>= 8 {
		n++
	}
	for i := 0; i < n; i++ {
		buf[n-1-i] = byte(u >> (8 * i))
	}
	return AppendBytes(dst, buf[:n])
}

// AppendBigInt appends the canonical RLP encoding of a non-negative big
// integer. Negative values are rejected.
func AppendBigInt(dst []byte, v *big.Int) ([]byte, error) {
	if v == nil {
		return AppendUint(dst, 0), nil
	}
	if v.Sign() < 0 {
		return nil, errors.New("rlp: cannot encode negative big integer")
	}
	return AppendBytes(dst, v.Bytes()), nil
}

// AppendList appends the RLP encoding of a list whose already-encoded
// payload is given by payload.
func AppendList(dst, payload []byte) []byte {
	dst = appendLength(dst, 0xc0, len(payload))
	return append(dst, payload...)
}

func appendLength(dst []byte, offset byte, length int) []byte {
	if length < 56 {
		return append(dst, offset+byte(length))
	}
	var buf [8]byte
	n := 0
	for v := length; v > 0; v >>= 8 {
		n++
	}
	for i := 0; i < n; i++ {
		buf[n-1-i] = byte(length >> (8 * i))
	}
	dst = append(dst, offset+55+byte(n))
	return append(dst, buf[:n]...)
}

// EncodeList encodes vs as an RLP list. Each element must be one of
// []byte, string, uint64, int (non-negative), *big.Int, or []any (nested
// list).
func EncodeList(vs ...any) ([]byte, error) {
	payload, err := encodeItems(vs)
	if err != nil {
		return nil, err
	}
	return AppendList(nil, payload), nil
}

func encodeItems(vs []any) ([]byte, error) {
	var payload []byte
	var err error
	for _, v := range vs {
		switch x := v.(type) {
		case []byte:
			payload = AppendBytes(payload, x)
		case string:
			payload = AppendString(payload, x)
		case uint64:
			payload = AppendUint(payload, x)
		case int:
			if x < 0 {
				return nil, errors.New("rlp: cannot encode negative int")
			}
			payload = AppendUint(payload, uint64(x))
		case *big.Int:
			payload, err = AppendBigInt(payload, x)
			if err != nil {
				return nil, err
			}
		case []any:
			inner, err := encodeItems(x)
			if err != nil {
				return nil, err
			}
			payload = AppendList(payload, inner)
		default:
			return nil, fmt.Errorf("rlp: unsupported type %T", v)
		}
	}
	return payload, nil
}

// Decode parses a single top-level RLP item and requires the input to be
// fully consumed.
func Decode(data []byte) (Value, error) {
	v, rest, err := decodeItem(data)
	if err != nil {
		return Value{}, err
	}
	if len(rest) != 0 {
		return Value{}, ErrTrailingBytes
	}
	return v, nil
}

func decodeItem(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return Value{}, nil, ErrTruncated
	}
	prefix := data[0]
	switch {
	case prefix < 0x80: // single byte
		return Value{Bytes: data[:1]}, data[1:], nil
	case prefix <= 0xb7: // short string
		length := int(prefix - 0x80)
		if len(data) < 1+length {
			return Value{}, nil, ErrTruncated
		}
		payload := data[1 : 1+length]
		if length == 1 && payload[0] < 0x80 {
			return Value{}, nil, ErrNonCanonical
		}
		return Value{Bytes: payload}, data[1+length:], nil
	case prefix <= 0xbf: // long string
		payload, rest, err := decodeLong(data, prefix-0xb7)
		if err != nil {
			return Value{}, nil, err
		}
		if len(payload) < 56 {
			return Value{}, nil, ErrNonCanonical
		}
		return Value{Bytes: payload}, rest, nil
	case prefix <= 0xf7: // short list
		length := int(prefix - 0xc0)
		if len(data) < 1+length {
			return Value{}, nil, ErrTruncated
		}
		items, err := decodeListPayload(data[1 : 1+length])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{IsList: true, List: items}, data[1+length:], nil
	default: // long list
		payload, rest, err := decodeLong(data, prefix-0xf7)
		if err != nil {
			return Value{}, nil, err
		}
		if len(payload) < 56 {
			return Value{}, nil, ErrNonCanonical
		}
		items, err := decodeListPayload(payload)
		if err != nil {
			return Value{}, nil, err
		}
		return Value{IsList: true, List: items}, rest, nil
	}
}

func decodeLong(data []byte, lenOfLen byte) (payload, rest []byte, err error) {
	n := int(lenOfLen)
	if len(data) < 1+n {
		return nil, nil, ErrTruncated
	}
	lenBytes := data[1 : 1+n]
	if lenBytes[0] == 0 {
		return nil, nil, ErrNonCanonical
	}
	if n > 4 {
		return nil, nil, fmt.Errorf("rlp: length of length %d too large", n)
	}
	length := 0
	for _, b := range lenBytes {
		length = length<<8 | int(b)
	}
	if len(data) < 1+n+length {
		return nil, nil, ErrTruncated
	}
	return data[1+n : 1+n+length], data[1+n+length:], nil
}

func decodeListPayload(payload []byte) ([]Value, error) {
	var items []Value
	for len(payload) > 0 {
		v, rest, err := decodeItem(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
		payload = rest
	}
	return items, nil
}
