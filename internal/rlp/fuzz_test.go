package rlp

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random bytes to the RLP decoder; transaction
// deserialization must fail cleanly on garbage.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		v, err := Decode(data)
		if err == nil {
			// Whatever decoded must re-encode without issue.
			reencode(t, v)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func reencode(t *testing.T, v Value) {
	t.Helper()
	if !v.IsList {
		AppendBytes(nil, v.Bytes)
		return
	}
	for _, el := range v.List {
		reencode(t, el)
	}
}

// FuzzDecode is the native fuzz target behind the CI fuzz-smoke step
// (go test -fuzz FuzzDecode -fuzztime 10s ./internal/rlp): the decoder
// must fail cleanly on arbitrary bytes, and whatever it accepts must
// re-encode without panicking.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})                                           // empty string
	f.Add([]byte{0x7f})                                           // single byte
	f.Add([]byte{0xc1, 0x80})                                     // list of one empty string
	f.Add([]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}) // ["cat","dog"]
	f.Add([]byte{0xb8, 0x38})                                     // truncated long string
	f.Add([]byte{0xc1, 0xc1, 0xc1, 0x80})                         // nested lists
	f.Add([]byte{0xf8, 0xff, 0x00})                               // long list, bad length
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		reencode(t, v)
	})
}

// TestDecodeDepthBomb guards against stack exhaustion from deeply nested
// lists.
func TestDecodeDepthBomb(t *testing.T) {
	// 10k nested single-element lists: c1 c1 c1 ... 80
	depth := 10000
	data := make([]byte, depth+1)
	for i := 0; i < depth; i++ {
		data[i] = 0xc1
	}
	data[depth] = 0x80
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("depth bomb caused panic: %v", r)
		}
	}()
	_, _ = Decode(data)
}
