package rlp

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random bytes to the RLP decoder; transaction
// deserialization must fail cleanly on garbage.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		v, err := Decode(data)
		if err == nil {
			// Whatever decoded must re-encode without issue.
			reencode(t, v)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func reencode(t *testing.T, v Value) {
	t.Helper()
	if !v.IsList {
		AppendBytes(nil, v.Bytes)
		return
	}
	for _, el := range v.List {
		reencode(t, el)
	}
}

// TestDecodeDepthBomb guards against stack exhaustion from deeply nested
// lists.
func TestDecodeDepthBomb(t *testing.T) {
	// 10k nested single-element lists: c1 c1 c1 ... 80
	depth := 10000
	data := make([]byte, depth+1)
	for i := 0; i < depth; i++ {
		data[i] = 0xc1
	}
	data[depth] = 0x80
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("depth bomb caused panic: %v", r)
		}
	}()
	_, _ = Decode(data)
}
