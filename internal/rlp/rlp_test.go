package rlp

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestEncodeKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		got  []byte
		want string
	}{
		{"dog", AppendString(nil, "dog"), "83646f67"},
		{"empty string", AppendString(nil, ""), "80"},
		{"single low byte", AppendBytes(nil, []byte{0x0f}), "0f"},
		{"single boundary byte", AppendBytes(nil, []byte{0x80}), "8180"},
		{"zero", AppendUint(nil, 0), "80"},
		{"fifteen", AppendUint(nil, 15), "0f"},
		{"1024", AppendUint(nil, 1024), "820400"},
		{
			"56-char string",
			AppendString(nil, "Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
			"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !bytes.Equal(tt.got, mustHex(t, tt.want)) {
				t.Errorf("got %x, want %s", tt.got, tt.want)
			}
		})
	}
}

func TestEncodeListVectors(t *testing.T) {
	catDog, err := EncodeList("cat", "dog")
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "c88363617483646f67"); !bytes.Equal(catDog, want) {
		t.Errorf("[cat dog] = %x, want %x", catDog, want)
	}

	empty, err := EncodeList()
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "c0"); !bytes.Equal(empty, want) {
		t.Errorf("[] = %x, want %x", empty, want)
	}

	// The "set theoretical representation of three": [ [], [[]], [ [], [[]] ] ]
	nested, err := EncodeList([]any{}, []any{[]any{}}, []any{[]any{}, []any{[]any{}}})
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "c7c0c1c0c3c0c1c0"); !bytes.Equal(nested, want) {
		t.Errorf("nested = %x, want %x", nested, want)
	}
}

func TestEncodeBigInt(t *testing.T) {
	got, err := AppendBigInt(nil, big.NewInt(1024))
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "820400"); !bytes.Equal(got, want) {
		t.Errorf("big 1024 = %x, want %x", got, want)
	}

	if _, err := AppendBigInt(nil, big.NewInt(-1)); err == nil {
		t.Error("expected error for negative big.Int")
	}

	nilEnc, err := AppendBigInt(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "80"); !bytes.Equal(nilEnc, want) {
		t.Errorf("nil big = %x, want %x", nilEnc, want)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	enc, err := EncodeList("cat", uint64(1024), []any{"dog", []byte{0x01, 0x02}}, big.NewInt(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsList || len(v.List) != 4 {
		t.Fatalf("decoded shape wrong: %+v", v)
	}
	if string(v.List[0].Bytes) != "cat" {
		t.Errorf("item 0 = %q", v.List[0].Bytes)
	}
	u, err := v.List[1].Uint()
	if err != nil || u != 1024 {
		t.Errorf("item 1 = %d, %v", u, err)
	}
	if !v.List[2].IsList || len(v.List[2].List) != 2 {
		t.Errorf("item 2 shape wrong: %+v", v.List[2])
	}
	bi, err := v.List[3].BigInt()
	if err != nil || bi.Cmp(big.NewInt(1<<40)) != 0 {
		t.Errorf("item 3 = %v, %v", bi, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want error
	}{
		{"empty input", "", ErrTruncated},
		{"truncated string", "83646f", ErrTruncated},
		{"truncated list", "c883636174", ErrTruncated},
		{"trailing bytes", "83646f6700", ErrTrailingBytes},
		{"non-canonical single byte", "810f", ErrNonCanonical},
		{"non-canonical long form", "b801ff", ErrNonCanonical},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(mustHex(t, strings.ReplaceAll(tt.in, " ", "")))
			if !errors.Is(err, tt.want) {
				t.Errorf("Decode(%s) err = %v, want %v", tt.in, err, tt.want)
			}
		})
	}
}

func TestUintNonCanonical(t *testing.T) {
	v := Value{Bytes: []byte{0x00, 0x01}}
	if _, err := v.Uint(); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("leading-zero integer accepted: %v", err)
	}
}

func TestQuickRoundTripBytes(t *testing.T) {
	f := func(b []byte) bool {
		enc := AppendBytes(nil, b)
		v, err := Decode(enc)
		return err == nil && !v.IsList && bytes.Equal(v.Bytes, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripUint(t *testing.T) {
	f := func(u uint64) bool {
		v, err := Decode(AppendUint(nil, u))
		if err != nil {
			return false
		}
		got, err := v.Uint()
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickListRoundTrip(t *testing.T) {
	f := func(a []byte, b uint64, c string) bool {
		enc, err := EncodeList(a, b, c)
		if err != nil {
			return false
		}
		v, err := Decode(enc)
		if err != nil || !v.IsList || len(v.List) != 3 {
			return false
		}
		u, err := v.List[1].Uint()
		return bytes.Equal(v.List[0].Bytes, a) && err == nil && u == b &&
			string(v.List[2].Bytes) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
