// Package wallet implements the client-side software of SMACS (the paper's
// web3.js role): key management, nonce tracking, and construction of signed
// transactions with access tokens embedded in the calldata.
package wallet

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// DefaultGasLimit is used when a call does not specify one.
const DefaultGasLimit uint64 = 8_000_000

// Wallet signs and submits transactions for one externally owned account.
type Wallet struct {
	key   *secp256k1.PrivateKey
	chain *evm.Chain
}

// New creates a wallet for key operating against chain.
func New(key *secp256k1.PrivateKey, chain *evm.Chain) *Wallet {
	return &Wallet{key: key, chain: chain}
}

// FromSeed creates a wallet with a deterministic key (tests, examples).
func FromSeed(seed string, chain *evm.Chain) *Wallet {
	return New(secp256k1.PrivateKeyFromSeed([]byte(seed)), chain)
}

// Address returns the wallet's account address.
func (w *Wallet) Address() types.Address { return w.key.Address() }

// Key returns the wallet's private key (used when the client must prove
// account ownership to a Token Service).
func (w *Wallet) Key() *secp256k1.PrivateKey { return w.key }

// CallOpts tweaks a transaction.
type CallOpts struct {
	// Value is the ether sent with the call (nil = 0).
	Value *big.Int
	// GasLimit caps execution gas (0 = DefaultGasLimit).
	GasLimit uint64
	// Tokens is the SMACS token array (§ IV-D ordering: one address-tagged
	// entry per SMACS-enabled contract in the call chain).
	Tokens [][]byte
}

// WithTokens builds CallOpts carrying the given parsed tokens, encoding
// each with its target contract address tag.
func WithTokens(entries ...TokenEntry) CallOpts {
	opts := CallOpts{}
	for _, e := range entries {
		opts.Tokens = append(opts.Tokens, core.EncodeEntry(e.Contract, e.Token))
	}
	return opts
}

// TokenEntry pairs a token with the contract it authorizes.
type TokenEntry struct {
	// Contract is the SMACS-enabled contract address.
	Contract types.Address
	// Token is the access token issued by that contract's Token Service.
	Token core.Token
}

// Call sends a signed method-call transaction and returns its receipt. The
// nonce is read from the chain; the gas price is the chain's calibrated
// price.
func (w *Wallet) Call(to types.Address, method string, opts CallOpts, args ...any) (*evm.Receipt, error) {
	tx, err := w.BuildTx(to, method, opts, args...)
	if err != nil {
		return nil, err
	}
	return w.chain.Apply(tx)
}

// BuildTx constructs and signs a transaction without submitting it (used by
// tests that need to tamper with transactions).
func (w *Wallet) BuildTx(to types.Address, method string, opts CallOpts, args ...any) (*evm.Transaction, error) {
	gasLimit := opts.GasLimit
	if gasLimit == 0 {
		gasLimit = DefaultGasLimit
	}
	cfg := w.chain.Config()
	tx := &evm.Transaction{
		Nonce:    w.chain.NonceOf(w.Address()),
		To:       to,
		Value:    opts.Value,
		GasLimit: gasLimit,
		GasPrice: cfg.Price.Wei(1),
		Method:   method,
		Args:     args,
		Tokens:   opts.Tokens,
	}
	if err := evm.SignTx(tx, w.key, cfg.ChainID); err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return tx, nil
}

// Transfer sends plain ether.
func (w *Wallet) Transfer(to types.Address, amount *big.Int) (*evm.Receipt, error) {
	cfg := w.chain.Config()
	tx := &evm.Transaction{
		Nonce:    w.chain.NonceOf(w.Address()),
		To:       to,
		Value:    amount,
		GasLimit: 21000,
		GasPrice: cfg.Price.Wei(1),
	}
	if err := evm.SignTx(tx, w.key, cfg.ChainID); err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return w.chain.Apply(tx)
}
