package wallet_test

import (
	"bytes"
	"math/big"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/secp256k1"
	"repro/internal/types"
	"repro/internal/wallet"
)

func TestBuildTxNonceTracking(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	w := env.Wallets[1]
	to := env.Wallets[0].Address()

	tx1, err := w.BuildTx(to, "", wallet.CallOpts{Value: big.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if tx1.Nonce != 0 {
		t.Errorf("first nonce = %d", tx1.Nonce)
	}
	if _, err := w.Transfer(to, big.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	tx2, err := w.BuildTx(to, "", wallet.CallOpts{Value: big.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if tx2.Nonce != 1 {
		t.Errorf("second nonce = %d, want 1", tx2.Nonce)
	}
}

func TestBuildTxDefaults(t *testing.T) {
	env := evmtest.NewEnv(t, 1)
	w := env.Wallets[0]
	tx, err := w.BuildTx(w.Address(), "", wallet.CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if tx.GasLimit != wallet.DefaultGasLimit {
		t.Errorf("gas limit = %d, want default %d", tx.GasLimit, wallet.DefaultGasLimit)
	}
	if tx.GasPrice.Cmp(env.Chain.Config().Price.Wei(1)) != 0 {
		t.Errorf("gas price = %s", tx.GasPrice)
	}
	// The built transaction recovers to the wallet address.
	sender, err := tx.Sender(env.Chain.Config().ChainID)
	if err != nil {
		t.Fatal(err)
	}
	if sender != w.Address() {
		t.Errorf("sender = %s, want %s", sender, w.Address())
	}
}

func TestWithTokensEncoding(t *testing.T) {
	key := secp256k1.PrivateKeyFromSeed([]byte("wt"))
	contract := evmAddr(0x42)
	tk, err := core.SignToken(key, core.SuperType, time.Now().Add(time.Hour),
		core.NotOneTime, core.Binding{Origin: evmAddr(0x01), Contract: contract})
	if err != nil {
		t.Fatal(err)
	}
	opts := wallet.WithTokens(wallet.TokenEntry{Contract: contract, Token: tk})
	if len(opts.Tokens) != 1 {
		t.Fatalf("tokens = %d entries", len(opts.Tokens))
	}
	entry := opts.Tokens[0]
	if len(entry) != core.EntryLength {
		t.Fatalf("entry length = %d, want %d", len(entry), core.EntryLength)
	}
	if !bytes.Equal(entry[:20], contract.Bytes()) {
		t.Error("entry not tagged with the contract address")
	}
	back, err := core.TokenFor(opts.Tokens, contract)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != core.SuperType {
		t.Errorf("round-tripped token type = %s", back.Type)
	}
}

func TestTransferGas(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	r, err := env.Wallets[0].Transfer(env.Wallets[1].Address(), big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if r.GasUsed != gas.TxBase {
		t.Errorf("transfer gas = %d, want %d", r.GasUsed, gas.TxBase)
	}
}

func TestCallAgainstRejectedTx(t *testing.T) {
	env := evmtest.NewEnv(t, 1)
	w := env.Wallets[0]
	// Unfunded second wallet cannot pay for gas.
	broke := wallet.FromSeed("broke", env.Chain)
	_, err := broke.Transfer(w.Address(), big.NewInt(1))
	if err == nil {
		t.Error("unfunded wallet sent a transaction")
	}
}

func evmAddr(b byte) types.Address { return types.Address{b} }
