package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL frame layout (all integers big-endian):
//
//	u32 payloadLen ‖ u32 crc32c(payload) ‖ payload
//	payload := u8 kind ‖ u64 value ‖ data…
//
// The frame is self-delimiting and self-checking: replay walks frames
// until the bytes run out or a frame fails its checks, and everything
// from the first bad frame on is treated as a torn tail (the suffix a
// crash mid-write leaves behind) — discarded, never decoded.

// frameHeaderLen is the fixed prefix of a frame: length + CRC.
const frameHeaderLen = 8

// payloadFixedLen is the fixed prefix of a payload: kind + value.
const payloadFixedLen = 9

// maxPayloadLen bounds a single record so a corrupted length field can
// never cause a multi-gigabyte allocation during replay.
const maxPayloadLen = 1 << 26 // 64 MiB

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame is returned (wrapped) for a frame that is structurally
// invalid: truncated, oversized, CRC mismatch, or unknown record kind.
var ErrBadFrame = errors.New("store: bad WAL frame")

// AppendRecord appends the framed encoding of rec to dst.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if !rec.Valid() {
		return dst, fmt.Errorf("store: cannot encode record of kind %d", rec.Kind)
	}
	if len(rec.Data) > maxPayloadLen-payloadFixedLen {
		return dst, fmt.Errorf("store: record data too large (%d bytes)", len(rec.Data))
	}
	payloadLen := payloadFixedLen + len(rec.Data)
	var hdr [frameHeaderLen + payloadFixedLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	hdr[8] = byte(rec.Kind)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(rec.Value))
	crc := crc32.Checksum(hdr[8:], crcTable)
	crc = crc32.Update(crc, crcTable, rec.Data)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, rec.Data...), nil
}

// EncodeRecord returns the framed encoding of rec.
func EncodeRecord(rec Record) ([]byte, error) {
	return AppendRecord(nil, rec)
}

// DecodeFrame decodes the frame at the start of b, returning the record
// and the number of bytes consumed. Any structural problem — truncation,
// an oversized or undersized length, a CRC mismatch, an unknown kind —
// is reported as ErrBadFrame; the caller treats it as the torn tail.
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadFrame, len(b))
	}
	payloadLen := int(binary.BigEndian.Uint32(b[0:4]))
	if payloadLen < payloadFixedLen || payloadLen > maxPayloadLen {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrBadFrame, payloadLen)
	}
	if len(b) < frameHeaderLen+payloadLen {
		return Record{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)",
			ErrBadFrame, len(b)-frameHeaderLen, payloadLen)
	}
	payload := b[frameHeaderLen : frameHeaderLen+payloadLen]
	want := binary.BigEndian.Uint32(b[4:8])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch (want %08x, got %08x)", ErrBadFrame, want, got)
	}
	rec := Record{
		Kind:  RecordKind(payload[0]),
		Value: int64(binary.BigEndian.Uint64(payload[1:9])),
	}
	if !rec.Valid() {
		return Record{}, 0, fmt.Errorf("%w: unknown record kind %d", ErrBadFrame, payload[0])
	}
	if payloadLen > payloadFixedLen {
		rec.Data = append([]byte(nil), payload[payloadFixedLen:]...)
	}
	return rec, frameHeaderLen + payloadLen, nil
}

// DecodeAll walks frames from the start of b and returns every record up
// to (not including) the first bad frame, plus the byte offset where the
// good prefix ends. A clean log returns goodLen == len(b) and a nil
// tailErr; a torn or corrupted tail is reported in tailErr but is not an
// error of the decode itself — crash recovery expects it.
func DecodeAll(b []byte) (recs []Record, goodLen int, tailErr error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeFrame(b[off:])
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}
