package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// TestFilePropertyVsMemoryOracle drives a file backend and the Memory
// oracle through the same random interleavings of appends, snapshots,
// crashes (reopen without Close, optionally with a torn or corrupted
// tail), and replays, asserting the file backend always recovers exactly
// the oracle's state. 1000 seeded iterations; -short runs a prefix.
func TestFilePropertyVsMemoryOracle(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	const seed = 0x534d414353 // fixed: failures must reproduce
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < iters; i++ {
		iterSeed := rng.Int63()
		t.Run(fmt.Sprintf("iter%04d", i), func(t *testing.T) {
			propertyIter(t, rand.New(rand.NewSource(iterSeed)))
		})
	}
}

func propertyIter(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()
	oracle := NewMemory()
	f, err := OpenFile(dir, FileOptions{FsyncBatch: 1 + rng.Intn(8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Replay(); err != nil {
		t.Fatal(err)
	}
	defer func() { f.Close() }()

	var value int64
	steps := 5 + rng.Intn(40)
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(10); {
		case op < 6: // append a lease or a mark with random payload
			value++
			rec := Record{Kind: KindLease, Value: value}
			if rng.Intn(3) == 0 {
				rec.Kind = KindMark
				rec.Data = make([]byte, rng.Intn(64))
				rng.Read(rec.Data)
			}
			if err := f.Append(rec); err != nil {
				t.Fatalf("step %d: file append: %v", s, err)
			}
			if err := oracle.Append(rec); err != nil {
				t.Fatalf("step %d: oracle append: %v", s, err)
			}
		case op < 8: // snapshot
			blob := make([]byte, 1+rng.Intn(32))
			rng.Read(blob)
			if err := f.Snapshot(blob); err != nil {
				t.Fatalf("step %d: file snapshot: %v", s, err)
			}
			if err := oracle.Snapshot(blob); err != nil {
				t.Fatalf("step %d: oracle snapshot: %v", s, err)
			}
		default: // crash: drop the handle, maybe tear the tail, reopen
			crashFile(t, rng, dir, f)
			g, err := OpenFile(dir, FileOptions{FsyncBatch: 1 + rng.Intn(8)})
			if err != nil {
				t.Fatalf("step %d: reopen: %v", s, err)
			}
			if err := assertMatchesOracle(g, oracle); err != nil {
				t.Fatalf("step %d: after crash: %v", s, err)
			}
			f = g
		}
	}
	// Replay runs once per handle, so the final audit is one more
	// crash/reopen cycle.
	crashFile(t, rng, dir, f)
	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := assertMatchesOracle(g, oracle); err != nil {
		t.Fatalf("final: %v", err)
	}
	f = g
}

// crashFile abandons the handle like a kill -9 and, sometimes, mutates
// the bytes past the last synced offset — the region a real power cut
// may tear. Everything at or below syncedOff must survive untouched, so
// the oracle stays the ground truth.
func crashFile(t *testing.T, rng *rand.Rand, dir string, f *File) {
	t.Helper()
	gen, syncedOff := f.Position()
	// No Close: the OS file stays as the last write left it. (The handle
	// leaks until process exit; acceptable in a test.)
	path := WALPath(dir, gen)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// All appends are acknowledged here, so size == syncedOff; the "torn
	// tail" is synthetic garbage appended then cut at a random offset.
	switch rng.Intn(3) {
	case 0:
		garbage := make([]byte, 1+rng.Intn(40))
		rng.Read(garbage)
		w, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(garbage[:rng.Intn(len(garbage))+1]); err != nil {
			t.Fatal(err)
		}
		w.Close()
	case 1:
		if info.Size() > syncedOff {
			if err := os.Truncate(path, syncedOff+rng.Int63n(info.Size()-syncedOff+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func assertMatchesOracle(f *File, oracle *Memory) error {
	gotSnap, gotRecs, err := f.Replay()
	if err != nil {
		return fmt.Errorf("file replay: %v", err)
	}
	wantSnap, wantRecs, err := oracle.Replay()
	if err != nil {
		return fmt.Errorf("oracle replay: %v", err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		return fmt.Errorf("snapshot mismatch: file %x, oracle %x", gotSnap, wantSnap)
	}
	if len(gotRecs) != len(wantRecs) {
		return fmt.Errorf("record count mismatch: file %d, oracle %d", len(gotRecs), len(wantRecs))
	}
	for i := range gotRecs {
		g, w := gotRecs[i], wantRecs[i]
		if g.Kind != w.Kind || g.Value != w.Value || !bytes.Equal(g.Data, w.Data) {
			return fmt.Errorf("record %d mismatch: file %+v, oracle %+v", i, g, w)
		}
	}
	return nil
}
