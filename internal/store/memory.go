package store

import "sync"

// Memory is the in-process Backend: the pre-durability in-memory path
// refactored behind the interface. Appends and snapshots are immediate
// (there is nothing slower than memory to sync to); a process crash loses
// everything, which is exactly the behaviour the file backend exists to
// fix. The property tests use Memory as the oracle: after any sequence of
// appends, snapshots, and simulated crashes, a file backend must replay
// to the same state a Memory backend holds.
type Memory struct {
	mu       sync.Mutex
	snapshot []byte
	records  []Record
	closed   bool
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Append implements Backend.
func (m *Memory) Append(rec Record) error {
	if !rec.Valid() {
		return ErrBadFrame
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	cp := rec
	if rec.Data != nil {
		cp.Data = append([]byte(nil), rec.Data...)
	}
	m.records = append(m.records, cp)
	return nil
}

// Snapshot implements Backend: it replaces the recovery base and drops
// the records it subsumes.
func (m *Memory) Snapshot(blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.snapshot = append([]byte(nil), blob...)
	m.records = nil
	return nil
}

// Replay implements Backend.
func (m *Memory) Replay() (snapshot []byte, records []Record, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrClosed
	}
	if m.snapshot != nil {
		snapshot = append([]byte(nil), m.snapshot...)
	}
	records = append([]Record(nil), m.records...)
	return snapshot, records, nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
