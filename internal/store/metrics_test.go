package store

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// The file backend must account appends, fsyncs, bytes, and replay on its
// configured registry.
func TestFileBackendMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	f, err := OpenFile(dir, FileOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := f.Append(Record{Kind: KindMark, Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	body := sb.String()
	for _, re := range []string{
		`(?m)^store_wal_appends_total 3$`,
		`(?m)^store_wal_fsync_total 3$`, // FsyncBatch 1 ⇒ one sync per append
		`(?m)^store_wal_fsync_batch_records_count 3$`,
		`(?m)^store_wal_fsync_batch_records_sum 3$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("registry missing %s\n%s", re, body)
		}
	}
	if c := reg.Counter(MetricWALBytes, ""); c.Value() == 0 {
		t.Error("no WAL bytes accounted")
	}

	// Reopen + replay on a fresh registry: the three records come back.
	reg2 := metrics.NewRegistry()
	f2, err := OpenFile(dir, FileOptions{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	_, recs, err := f2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if c := reg2.Counter(MetricReplayRecords, ""); c.Value() != 3 {
		t.Errorf("replay records counter = %d, want 3", c.Value())
	}
	if h := reg2.Histogram(MetricReplaySecs, "", nil); h.Count() != 1 {
		t.Errorf("replay duration observed %d times, want 1", h.Count())
	}
}
