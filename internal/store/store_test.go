package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindLease, Value: 1},
		{Kind: KindLease, Value: 1 << 40},
		{Kind: KindMark, Value: -7, Data: []byte{}},
		{Kind: KindCommit, Value: 42, Data: []byte("commit payload \x00\xff")},
	}
	var log []byte
	for _, rec := range recs {
		var err error
		log, err = AppendRecord(log, rec)
		if err != nil {
			t.Fatalf("AppendRecord(%+v): %v", rec, err)
		}
	}
	got, goodLen, tailErr := DecodeAll(log)
	if tailErr != nil {
		t.Fatalf("clean log reported tail error: %v", tailErr)
	}
	if goodLen != len(log) {
		t.Fatalf("goodLen = %d, want %d", goodLen, len(log))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, rec := range recs {
		if got[i].Kind != rec.Kind || got[i].Value != rec.Value || !bytes.Equal(got[i].Data, rec.Data) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], rec)
		}
	}
}

func TestDecodeAllStopsAtTornTail(t *testing.T) {
	full, err := EncodeRecord(Record{Kind: KindCommit, Value: 9, Data: bytes.Repeat([]byte{0xab}, 100)})
	if err != nil {
		t.Fatal(err)
	}
	log, err := AppendRecord(nil, Record{Kind: KindLease, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	prefix := len(log)
	log = append(log, full...)

	for cut := prefix; cut < len(log); cut++ {
		recs, goodLen, tailErr := DecodeAll(log[:cut])
		if len(recs) != 1 || recs[0].Value != 3 {
			t.Fatalf("cut %d: got %d records, want just the intact one", cut, len(recs))
		}
		if goodLen != prefix {
			t.Fatalf("cut %d: goodLen = %d, want %d", cut, goodLen, prefix)
		}
		if cut > prefix && !errors.Is(tailErr, ErrBadFrame) {
			t.Fatalf("cut %d: tailErr = %v, want ErrBadFrame", cut, tailErr)
		}
	}

	// A bit flip anywhere in the second frame must stop decoding there too.
	for i := prefix; i < len(log); i++ {
		mut := append([]byte(nil), log...)
		mut[i] ^= 0x01
		recs, _, tailErr := DecodeAll(mut)
		if len(recs) > 1 {
			// A flip in the length field can only shrink/grow the frame —
			// CRC still has to match for the record to be surfaced.
			t.Fatalf("flip at %d: corrupted record surfaced: %+v", i, recs)
		}
		if tailErr == nil {
			t.Fatalf("flip at %d: corruption not reported", i)
		}
	}
}

func TestMemoryBackend(t *testing.T) {
	m := NewMemory()
	testBackendBasics(t, m)
}

func TestFileBackend(t *testing.T) {
	f, err := OpenFile(t.TempDir(), FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	testBackendBasics(t, f)
}

func testBackendBasics(t *testing.T, b Backend) {
	t.Helper()
	snap, recs, err := b.Replay()
	if err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("fresh backend Replay = (%v, %v, %v), want empty", snap, recs, err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := b.Append(Record{Kind: KindLease, Value: i}); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := b.Snapshot([]byte("state@5")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := b.Append(Record{Kind: KindMark, Value: 6, Data: []byte("post")}); err != nil {
		t.Fatalf("Append after snapshot: %v", err)
	}
	if err := b.Append(Record{Kind: 0}); err == nil {
		t.Fatal("appending an invalid record should fail")
	}
}

// TestFileBackendReopen exercises the full durability cycle: append,
// snapshot, append more, drop the handle without any graceful shutdown
// (a crash), reopen, and replay.
func TestFileBackendReopen(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := f.Append(Record{Kind: KindLease, Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Snapshot([]byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Record{Kind: KindCommit, Value: 4, Data: []byte("tx4")}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash by abandoning the handle.

	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	snap, recs, err := g.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "base" {
		t.Fatalf("snapshot = %q, want %q", snap, "base")
	}
	if len(recs) != 1 || recs[0].Kind != KindCommit || recs[0].Value != 4 || string(recs[0].Data) != "tx4" {
		t.Fatalf("post-snapshot records = %+v", recs)
	}
	// Only the newest generation's files remain.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly one snapshot and one WAL", names)
	}
}

// TestFileBackendTornTailTruncated: a partial trailing frame (the
// signature of a crash mid-write) is dropped at replay and physically
// truncated, and appending afterwards produces a clean log.
func TestFileBackendTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Record{Kind: KindLease, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Record{Kind: KindLease, Value: 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	path := WALPath(dir, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, recs, err := g.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Value != 1 {
		t.Fatalf("replay after torn tail = %+v, want just lease 1", recs)
	}
	if err := g.Append(Record{Kind: KindLease, Value: 3}); err != nil {
		t.Fatal(err)
	}
	g.Close()

	h, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	_, recs, err = h.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Value != 1 || recs[1].Value != 3 {
		t.Fatalf("replay after repair = %+v, want leases 1,3", recs)
	}
}

// TestFileBackendConcurrentAppend drives concurrent appenders through
// the group-commit path at several batch sizes and checks that every
// acknowledged record replays.
func TestFileBackendConcurrentAppend(t *testing.T) {
	for _, batch := range []int{1, 16, 128} {
		batch := batch
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			f, err := OpenFile(dir, FileOptions{FsyncBatch: batch})
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 8, 50
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						rec := Record{Kind: KindLease, Value: int64(w*perWorker + i + 1)}
						if err := f.Append(rec); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			f.Close()

			g, err := OpenFile(dir, FileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			_, recs, err := g.Replay()
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int64]bool, len(recs))
			for _, rec := range recs {
				if seen[rec.Value] {
					t.Fatalf("value %d appears twice", rec.Value)
				}
				seen[rec.Value] = true
			}
			if len(seen) != workers*perWorker {
				t.Fatalf("replayed %d distinct records, want %d", len(seen), workers*perWorker)
			}
		})
	}
}

// TestCounterResumesAboveEveryLease: crash/reopen cycles never re-issue
// a value, with and without intervening snapshots.
func TestCounterResumesAboveEveryLease(t *testing.T) {
	dir := t.TempDir()
	issued := make(map[int64]bool)

	issue := func(c *Counter, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			v, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if issued[v] {
				t.Fatalf("value %d issued twice", v)
			}
			issued[v] = true
		}
	}

	for round := 0; round < 4; round++ {
		f, err := OpenFile(dir, FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot every 7 leases so rounds cross generation boundaries.
		c, err := OpenCounter(f, 7)
		if err != nil {
			t.Fatal(err)
		}
		issue(c, 17)
		// Crash: abandon without Close.
	}
	if len(issued) != 4*17 {
		t.Fatalf("issued %d values, want %d", len(issued), 4*17)
	}
}

// TestCounterConcurrent hammers one durable counter from many
// goroutines; every value must be unique and must survive replay.
func TestCounterConcurrent(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{FsyncBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCounter(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 40
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v, err := c.Next()
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d issued twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	f.Close()

	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c2, err := OpenCounter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if seen[v] {
		t.Fatalf("post-recovery value %d collides with a pre-crash value", v)
	}
}

// TestSnapshotFileAtomicity: a leftover .tmp from a crashed snapshot
// write is ignored.
func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Record{Kind: KindLease, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A torn snapshot attempt that never reached rename.
	if err := os.WriteFile(filepath.Join(dir, "snap-2.bin.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a fully corrupt "snapshot" that did get a real name.
	if err := os.WriteFile(filepath.Join(dir, "snap-3.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	snap, _, err := g.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "good" {
		t.Fatalf("replayed snapshot %q, want the last valid one", snap)
	}
}

// TestCounterAdoptRangesClosesOffers pins the external-adopter
// handshake a membership drain uses: offers consumed via AdoptRanges in
// the SAME incarnation that released them are never re-offered by a
// later replay (the released ranges went to another frontend, so a
// replay offering them here would double-issue).
func TestCounterAdoptRangesClosesOffers(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCounter(f, -1)
	if err != nil {
		t.Fatal(err)
	}
	ranges := []IndexRange{{From: 40, To: 47}, {From: 90, To: 95}}
	if err := c.ReleaseRanges(ranges); err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptRanges(ranges); err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptRanges([]IndexRange{{From: 3, To: 1}}); err == nil {
		t.Fatal("invalid adopt range accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	c2, err := OpenCounter(f2, -1)
	if err != nil {
		t.Fatal(err)
	}
	pending, err := c2.PendingReclaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("consumed offers re-offered after replay: %+v", pending)
	}
}

// TestCounterReclaimCycle drives the release → adopt lease-reclamation
// protocol across three incarnations of a file-backed counter: released
// ranges are offered exactly once, adoption is durable before the ranges
// are returned, and a crash after adoption burns (never re-offers) them.
func TestCounterReclaimCycle(t *testing.T) {
	dir := t.TempDir()

	// Incarnation 1: lease some blocks, release two remainder ranges on
	// the way down (as the frontend's SIGTERM path does).
	f, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCounter(f, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	released := []IndexRange{{From: 10, To: 64}, {From: 100, To: 128}}
	if err := c.ReleaseRanges(released); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: the ranges are pending exactly as released, and the
	// counter still resumes above every lease.
	f2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCounter(f2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Last(); got != 5 {
		t.Fatalf("Last = %d, want 5", got)
	}
	got, err := c2.PendingReclaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != released[0] || got[1] != released[1] {
		t.Fatalf("pending = %+v, want %+v", got, released)
	}
	// Second call in the same incarnation: nothing left to offer.
	again, err := c2.PendingReclaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second PendingReclaims = %+v, want empty", again)
	}
	// Simulated crash: no Close, no re-release.
	_ = f2.Close()

	// Incarnation 3: the adopt records are durable, so the ranges must
	// not be offered again (re-offering would double-issue indexes the
	// crashed incarnation may already have handed out).
	f3, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	c3, err := OpenCounter(f3, -1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := c3.PendingReclaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Fatalf("crashed adopter's ranges re-offered: %+v", after)
	}
	if err := c3.ReleaseRanges([]IndexRange{{From: 0, To: 3}}); err == nil {
		t.Fatal("invalid range accepted")
	}
}
