package store

import "repro/internal/metrics"

// WAL metric names exported by the file backend.
const (
	MetricWALAppends    = "store_wal_appends_total"
	MetricWALBytes      = "store_wal_bytes_written_total"
	MetricWALFsyncs     = "store_wal_fsync_total"
	MetricFsyncBatch    = "store_wal_fsync_batch_records"
	MetricSnapshotSecs  = "store_snapshot_seconds"
	MetricReplaySecs    = "store_replay_seconds"
	MetricReplayRecords = "store_replay_records_total"
	MetricTornTails     = "store_torn_tails_recovered_total"
)

// fileMetrics holds the file backend's instrumentation handles. Backends
// sharing a registry (several stores on metrics.Default) aggregate into
// the same series.
type fileMetrics struct {
	appends       *metrics.Counter
	bytes         *metrics.Counter
	fsyncs        *metrics.Counter
	fsyncBatch    *metrics.Histogram
	snapshotSecs  *metrics.Histogram
	replaySecs    *metrics.Histogram
	replayRecords *metrics.Counter
	tornTails     *metrics.Counter
}

func newFileMetrics(reg *metrics.Registry) *fileMetrics {
	return &fileMetrics{
		appends: reg.Counter(MetricWALAppends, "Records queued for the WAL."),
		bytes:   reg.Counter(MetricWALBytes, "Bytes written to the WAL."),
		fsyncs:  reg.Counter(MetricWALFsyncs, "Group-commit fsyncs of the WAL."),
		fsyncBatch: reg.Histogram(MetricFsyncBatch,
			"Records covered by one WAL fsync (group-commit amortization).", metrics.DefSizeBuckets),
		snapshotSecs: reg.Histogram(MetricSnapshotSecs,
			"Snapshot persistence duration (write, fsync, rotate).", nil),
		replaySecs: reg.Histogram(MetricReplaySecs,
			"Recovery replay duration (snapshot read + WAL scan).", nil),
		replayRecords: reg.Counter(MetricReplayRecords, "Records recovered by Replay."),
		tornTails:     reg.Counter(MetricTornTails, "Torn WAL tails truncated during Replay."),
	}
}
