// Package store provides the durable storage layer beneath the Token
// Service and the simulated chain: an append-only, CRC-framed write-ahead
// log plus point-in-time snapshots, behind a Backend interface with two
// implementations.
//
//   - Memory keeps everything in process memory. It is the pre-durability
//     behaviour refactored behind the interface (a crash loses all state)
//     and doubles as the oracle the property tests compare the file
//     backend against.
//   - File persists the log to an append-only WAL on disk with batched
//     group-commit fsync, and snapshots via atomic rename. Replay
//     tolerates a torn tail: a truncated or corrupted trailing frame is
//     discarded, never surfaced as a record.
//
// The durability contract every consumer builds on: when Append returns
// nil, the record is on stable storage. A ShardedCounter block lease is
// appended (and synced) before any index from the block is handed out, so
// a crash can burn a leased block but never re-issue one; a chain commit
// record is appended before Apply acknowledges the transaction, so an
// acknowledged transaction is never lost.
package store

import "errors"

// RecordKind discriminates WAL records. The zero value is invalid so that
// a zeroed frame can never decode into a meaningful record.
type RecordKind uint8

const (
	// KindLease records a one-time-index block lease by the Token
	// Service's counter: Value is the leased block id. Replay resumes
	// allocation strictly above the highest durable lease, burning any
	// partially-used blocks (see OpenCounter).
	KindLease RecordKind = iota + 1
	// KindMark records a one-time token index observed as used. The chain
	// reconstructs bitmap state by replaying committed transactions, so
	// KindMark is used by lighter-weight consumers (and the property
	// tests) that track the used-index set directly.
	KindMark
	// KindCommit records a committed chain transaction: Data holds the
	// evm commit-record encoding (transaction plus block time), Value the
	// block height it mined.
	KindCommit
	// KindEpoch records a coordinator epoch promised by a Token Service
	// counter replica (replica/net): Value is the epoch. Journaling the
	// promise alongside KindLease grants keeps epoch fencing effective
	// across a replica restart — a rejoined replica still rejects
	// proposals from coordinators it already promised away from.
	KindEpoch
	// KindView records an adopted replica-group membership view: Value is
	// the view epoch, Data the JSON-encoded view state (group set,
	// watermark, adopted base sequence, frontend URLs). A frontend replays
	// the highest-epoch view at startup so a restart resumes under the
	// membership it last served, not the one it booted with.
	KindView
	// KindReclaim records an inclusive range of one-time indexes released
	// back by a cleanly shutting-down frontend (unexhausted block-lease
	// remainders): Value is the range start, Data the 8-byte big-endian
	// range end. A reclaim is an offer, not a grant — the range may be
	// re-issued only after a KindAdopt for it is durable.
	KindReclaim
	// KindAdopt marks a previously reclaimed range as re-leased to the
	// current incarnation (same encoding as KindReclaim). Persisting the
	// adoption BEFORE any index of the range is re-issued keeps recovery
	// at-most-once: a crash after adoption burns the range (replay sees
	// reclaim+adopt and offers nothing), it never offers it twice.
	KindAdopt
	// kindEnd is one past the last valid kind.
	kindEnd
)

// Record is one WAL entry: a kind, a small integer payload (block id,
// index, or height), and an optional opaque data blob.
type Record struct {
	Kind  RecordKind
	Value int64
	Data  []byte
}

// Valid reports whether the record carries a known kind.
func (r Record) Valid() bool { return r.Kind >= KindLease && r.Kind < kindEnd }

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("store: backend is closed")

// Backend is the durable storage interface: an append-only record log
// with point-in-time snapshots.
//
// Append must be durable on return and safe for concurrent use. Snapshot
// atomically persists an opaque state blob and logically truncates the
// log: a subsequent Replay returns the latest snapshot plus only the
// records appended after it. Replay is intended to be called once, on a
// freshly opened backend, before any Append.
type Backend interface {
	// Append durably adds one record to the log.
	Append(rec Record) error
	// Snapshot durably persists blob as the new recovery base and drops
	// records that predate it from future Replays.
	Snapshot(blob []byte) error
	// Replay returns the most recent snapshot blob (nil if none was ever
	// taken) and the records appended after it, in append order.
	Replay() (snapshot []byte, records []Record, err error)
	// Close releases resources. Appending to a closed backend fails.
	Close() error
}
