package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Counter is a durable one-time-index allocator: it satisfies the Token
// Service's ts.Counter interface and writes a KindLease record for every
// value it hands out, so a restarted service never re-issues an index.
//
// It is meant to sit UNDER a ts.ShardedCounter: there it allocates block
// ids, so one WAL append (one fsync, amortized further by group commit)
// covers a whole block of token indexes. A crash burns the
// leased-but-unused remainder of every open block — replay resumes
// strictly above the highest durable lease and never reclaims the gap.
// Burning is the safe side of the paper's § IV-C at-most-once
// requirement: indexes are plentiful, duplicates are fatal.
//
// Every SnapshotEvery leases the counter folds its WAL into an 8-byte
// snapshot so the log never grows past a bounded tail.
type Counter struct {
	mu        sync.Mutex
	b         Backend
	next      int64
	sinceSnap int
	// SnapshotEvery bounds WAL growth: after this many leases the counter
	// snapshots its high-water mark and rotates the log. 0 uses
	// DefaultCounterSnapshotEvery; negative disables snapshots.
	snapshotEvery int
	// pending holds reclaimed-but-not-adopted index ranges found during
	// replay, consumed (exactly once) by PendingReclaims.
	pending []IndexRange
}

// IndexRange is an inclusive range of one-time indexes released back to
// the store by a cleanly shutting-down frontend.
type IndexRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// DefaultCounterSnapshotEvery is the lease count between counter
// snapshots when CounterOptions leave it unset.
const DefaultCounterSnapshotEvery = 4096

// OpenCounter replays the backend and returns a counter that resumes
// strictly above every durable lease. snapshotEvery 0 selects
// DefaultCounterSnapshotEvery; negative disables snapshotting.
func OpenCounter(b Backend, snapshotEvery int) (*Counter, error) {
	snap, recs, err := b.Replay()
	if err != nil {
		return nil, fmt.Errorf("store: replay counter: %w", err)
	}
	return CounterFrom(b, snap, recs, snapshotEvery)
}

// CounterFrom builds a counter from an already-replayed backend — used
// when one backend's replay feeds several consumers.
func CounterFrom(b Backend, snapshot []byte, recs []Record, snapshotEvery int) (*Counter, error) {
	if snapshotEvery == 0 {
		snapshotEvery = DefaultCounterSnapshotEvery
	}
	c := &Counter{b: b, snapshotEvery: snapshotEvery}
	if snapshot != nil {
		if len(snapshot) != 8 {
			return nil, fmt.Errorf("store: counter snapshot must be 8 bytes, got %d", len(snapshot))
		}
		c.next = int64(binary.BigEndian.Uint64(snapshot))
	}
	// Pending reclaim accounting: a range is offerable when a KindReclaim
	// for it is durable and no KindAdopt has consumed it. Both kinds use
	// the same encoding, so matching is exact by (from, to). Ranges whose
	// records were folded into a snapshot are burned — the safe direction.
	adopted := make(map[IndexRange]int)
	for _, rec := range recs {
		switch rec.Kind {
		case KindLease:
			if rec.Value > c.next {
				c.next = rec.Value
			}
		case KindAdopt:
			if r, err := decodeRange(rec); err == nil {
				adopted[r]++
			}
		}
	}
	for _, rec := range recs {
		if rec.Kind != KindReclaim {
			continue
		}
		r, err := decodeRange(rec)
		if err != nil {
			return nil, fmt.Errorf("store: corrupt reclaim record: %w", err)
		}
		if adopted[r] > 0 {
			adopted[r]--
			continue
		}
		c.pending = append(c.pending, r)
	}
	return c, nil
}

func decodeRange(rec Record) (IndexRange, error) {
	if len(rec.Data) != 8 {
		return IndexRange{}, fmt.Errorf("range payload must be 8 bytes, got %d", len(rec.Data))
	}
	r := IndexRange{From: rec.Value, To: int64(binary.BigEndian.Uint64(rec.Data))}
	if r.From < 1 || r.To < r.From {
		return IndexRange{}, fmt.Errorf("invalid range [%d,%d]", r.From, r.To)
	}
	return r, nil
}

func encodeRange(kind RecordKind, r IndexRange) Record {
	data := make([]byte, 8)
	binary.BigEndian.PutUint64(data, uint64(r.To))
	return Record{Kind: kind, Value: r.From, Data: data}
}

// ReleaseRanges durably records inclusive index ranges handed back by a
// cleanly shutting-down frontend (the unexhausted remainders of its
// block leases). The ranges become offerable to the next incarnation via
// PendingReclaims; until one adopts them, replay keeps offering, and a
// crash right after this call at worst burns them.
func (c *Counter) ReleaseRanges(ranges []IndexRange) error {
	for _, r := range ranges {
		if r.From < 1 || r.To < r.From {
			return fmt.Errorf("store: invalid release range [%d,%d]", r.From, r.To)
		}
		if err := c.b.Append(encodeRange(KindReclaim, r)); err != nil {
			return fmt.Errorf("store: persist reclaim [%d,%d]: %w", r.From, r.To, err)
		}
	}
	return nil
}

// AdoptRanges durably consumes reclaim offers on behalf of an external
// adopter: one KindAdopt record per range is appended before returning,
// so no later replay offers the range again. A membership drain uses it
// to close the handoff ledger — the controller journals the drained
// ranges as offers (ReleaseRanges), consumes them here, and only then
// hands them to the successor frontend, so a crash anywhere in between
// re-issues each range at most once.
func (c *Counter) AdoptRanges(ranges []IndexRange) error {
	for _, r := range ranges {
		if r.From < 1 || r.To < r.From {
			return fmt.Errorf("store: invalid adopt range [%d,%d]", r.From, r.To)
		}
		if err := c.b.Append(encodeRange(KindAdopt, r)); err != nil {
			return fmt.Errorf("store: persist adopt [%d,%d]: %w", r.From, r.To, err)
		}
	}
	return nil
}

// PendingReclaims adopts and returns the index ranges a previous
// incarnation released. The KindAdopt record for every range is durable
// BEFORE the range is returned, so the caller may re-issue its indexes
// immediately: a crash at any later point replays reclaim+adopt and
// offers nothing again. Calling it twice returns ranges released (and
// replayed) since the first call — normally none.
func (c *Counter) PendingReclaims() ([]IndexRange, error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, r := range pending {
		if err := c.b.Append(encodeRange(KindAdopt, r)); err != nil {
			return nil, fmt.Errorf("store: persist adopt [%d,%d]: %w", r.From, r.To, err)
		}
	}
	return pending, nil
}

// Last returns the highest index handed out so far (0 before the first
// Next). After recovery it is ≥ every index any previous incarnation
// ever returned.
func (c *Counter) Last() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Next implements ts.Counter. The lease record is durable before the
// value is returned: an index (or block id) the caller ever observes can
// never be issued again, even across a crash at any point.
func (c *Counter) Next() (int64, error) {
	c.mu.Lock()
	c.next++
	n := c.next
	snap := false
	if c.snapshotEvery > 0 {
		c.sinceSnap++
		if c.sinceSnap >= c.snapshotEvery {
			c.sinceSnap = 0
			snap = true
		}
	}
	c.mu.Unlock()

	// Append outside the allocator mutex: group commit coalesces the
	// fsyncs of concurrent allocations. Out-of-order durability is safe —
	// if lease n is durable while n-1 is not, n-1's Next has not returned
	// yet, so no index from its block was ever observed.
	if err := c.b.Append(Record{Kind: KindLease, Value: n}); err != nil {
		return 0, fmt.Errorf("store: persist lease %d: %w", n, err)
	}
	if snap {
		// Hold the allocator mutex across the rotation so no lease can be
		// allocated (and appended into the generation being retired) after
		// the high-water mark is read: every lease the snapshot subsumes
		// is ≤ the snapshotted value.
		c.mu.Lock()
		var blob [8]byte
		binary.BigEndian.PutUint64(blob[:], uint64(c.next))
		err := c.b.Snapshot(blob[:])
		c.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("store: snapshot counter: %w", err)
		}
	}
	return n, nil
}
