package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// FileOptions tunes the file backend.
type FileOptions struct {
	// FsyncBatch is the maximum number of appends one fsync may cover
	// (group commit). 1 syncs every append immediately; larger values
	// let concurrent appenders share a sync at the cost of up to
	// FlushDelay extra latency while a group forms. Durability is the
	// same at every setting: Append never returns before its record is
	// synced. 0 means 1.
	FsyncBatch int
	// FlushDelay is how long the group leader waits for a batch to fill
	// before syncing anyway (default 500µs; ignored when FsyncBatch ≤ 1).
	FlushDelay time.Duration
	// Metrics selects the registry the backend's WAL series
	// (store_wal_appends_total, store_wal_fsync_total, …) are registered
	// in (nil = metrics.Default()).
	Metrics *metrics.Registry
}

// File is the durable Backend: an append-only WAL per snapshot
// generation plus an atomically-renamed snapshot file.
//
// Directory layout:
//
//	wal-<gen>.log   — the record log of generation gen
//	snap-<gen>.bin  — the snapshot blob that opened generation gen
//
// Snapshot bumps the generation: it persists the blob as
// snap-<gen+1>.bin (write temp, fsync, rename, fsync dir), starts
// wal-<gen+1>.log, and deletes the previous generation's files. Replay
// finds the highest valid snapshot and reads its WAL, truncating any
// torn tail in place so later appends extend a clean log.
//
// Append is group-committed: a record is written and fsynced before
// Append returns, but concurrent appends are coalesced under one fsync
// (bounded by FsyncBatch), which is what makes a WAL-backed counter
// sustain high issuance rates.
type File struct {
	dir     string
	opts    FileOptions
	metrics *fileMetrics

	mu        sync.Mutex
	cond      *sync.Cond
	wal       *os.File
	gen       uint64
	pending   []byte // encoded frames queued for the next flush
	pendingN  int    // records in pending
	queuedOff int64  // current-WAL offset once pending is flushed
	syncedOff int64  // durable current-WAL offset
	seqQueued int64  // monotonic bytes queued across all generations
	seqSynced int64  // monotonic bytes synced across all generations
	flushing  bool   // a leader is writing+syncing outside mu
	ioErr     error  // sticky: first write/sync failure poisons the backend
	closed    bool
	replayed  bool
}

func walName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%d.bin", gen) }

// WALPath returns the path of the generation-gen WAL inside dir. The
// crash-injection harness uses it to watch and truncate the live log
// from outside the process.
func WALPath(dir string, gen uint64) string { return filepath.Join(dir, walName(gen)) }

// OpenFile opens (or creates) a file backend rooted at dir.
func OpenFile(dir string, opts FileOptions) (*File, error) {
	if opts.FsyncBatch < 1 {
		opts.FsyncBatch = 1
	}
	if opts.FlushDelay <= 0 {
		opts.FlushDelay = 500 * time.Microsecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	f := &File{dir: dir, opts: opts, metrics: newFileMetrics(metrics.Or(opts.Metrics))}
	f.cond = sync.NewCond(&f.mu)
	gen, err := f.latestGen()
	if err != nil {
		return nil, err
	}
	f.gen = gen
	wal, err := os.OpenFile(WALPath(dir, gen), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	f.wal = wal
	return f, nil
}

// latestGen scans dir for the highest generation with a readable
// snapshot (0 when no snapshot exists).
func (f *File) latestGen() (uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return 0, fmt.Errorf("store: scan dir: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.bin", &g); n == 1 {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		if _, err := readSnapshotFile(filepath.Join(f.dir, snapName(g))); err == nil {
			return g, nil
		}
	}
	return 0, nil
}

// readSnapshotFile reads and validates one snapshot file: a single
// KindSnapshot-less frame holding the blob (we reuse the WAL frame for
// its CRC; the kind slot carries KindMark's encoding-neutral sibling —
// see writeSnapshotFile).
func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, n, err := DecodeFrame(raw)
	if err != nil {
		return nil, err
	}
	if n != len(raw) || rec.Kind != KindMark || rec.Value != snapshotMagic {
		return nil, fmt.Errorf("%w: not a snapshot file", ErrBadFrame)
	}
	return rec.Data, nil
}

// snapshotMagic marks a frame as a snapshot container rather than a log
// record (snapshot files never mix with WAL records, but the magic makes
// a misplaced file fail loudly instead of replaying as state).
const snapshotMagic = -0x534e4150 // "SNAP"

func writeSnapshotFile(path string, blob []byte) error {
	frame, err := EncodeRecord(Record{Kind: KindMark, Value: snapshotMagic, Data: blob})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	t, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = t.Write(frame); err == nil {
		err = t.Sync()
	}
	if cerr := t.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir fsyncs the directory so renames and creations are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay implements Backend. It must run on a freshly opened backend,
// before any Append: it reads the generation's snapshot and WAL,
// truncates a torn tail in place, and syncs the result so the recovered
// log is itself durable.
func (f *File) Replay() (snapshot []byte, records []Record, err error) {
	start := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, nil, ErrClosed
	}
	if f.queuedOff != 0 || f.replayed {
		return nil, nil, errors.New("store: Replay must run before any Append, once")
	}
	if f.gen > 0 {
		snapshot, err = readSnapshotFile(filepath.Join(f.dir, snapName(f.gen)))
		if err != nil {
			return nil, nil, fmt.Errorf("store: read snapshot gen %d: %w", f.gen, err)
		}
	}
	raw, err := io.ReadAll(io.NewSectionReader(f.wal, 0, 1<<40))
	if err != nil {
		return nil, nil, fmt.Errorf("store: read WAL: %w", err)
	}
	records, goodLen, tailErr := DecodeAll(raw)
	if tailErr != nil {
		// Torn tail: drop it on disk so future appends extend a clean log.
		if err := f.wal.Truncate(int64(goodLen)); err != nil {
			return nil, nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
		f.metrics.tornTails.Inc()
	}
	if _, err := f.wal.Seek(int64(goodLen), io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("store: seek WAL: %w", err)
	}
	if err := f.wal.Sync(); err != nil {
		return nil, nil, fmt.Errorf("store: sync recovered WAL: %w", err)
	}
	f.queuedOff = int64(goodLen)
	f.syncedOff = int64(goodLen)
	f.replayed = true
	f.metrics.replayRecords.Add(uint64(len(records)))
	f.metrics.replaySecs.ObserveDuration(time.Since(start))
	return snapshot, records, nil
}

// Append implements Backend with leader-based group commit: the first
// appender to find no flush in flight becomes the leader, optionally
// waits FlushDelay for a group to form (when FsyncBatch > 1), writes
// every queued frame, and fsyncs once for the whole group. Append only
// returns once its own record is covered by a completed fsync.
func (f *File) Append(rec Record) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.ioErr != nil {
		return f.ioErr
	}
	if !f.replayed {
		f.replayed = true // fresh log: appending forfeits Replay
		f.ensureOffsetLocked()
	}
	f.pending = append(f.pending, frame...)
	f.pendingN++
	f.queuedOff += int64(len(frame))
	f.seqQueued += int64(len(frame))
	f.metrics.appends.Inc()
	// The completion condition uses the monotonic sequence counters, not
	// the per-WAL offsets: a Snapshot may drain this record into the old
	// generation and reset the offsets before this goroutine wakes up.
	target := f.seqQueued
	for f.seqSynced < target {
		if f.ioErr != nil {
			return f.ioErr
		}
		if f.closed {
			return ErrClosed
		}
		if f.flushing {
			f.cond.Wait()
			continue
		}
		f.flushLocked()
	}
	return nil
}

// ensureOffsetLocked initializes queuedOff/syncedOff from the WAL size
// for backends that append without calling Replay first.
func (f *File) ensureOffsetLocked() {
	if st, err := f.wal.Stat(); err == nil {
		f.queuedOff = st.Size()
		f.syncedOff = st.Size()
	}
}

// flushLocked runs one group commit as the leader. Called with mu held;
// temporarily releases it around the batch window and the write+sync.
func (f *File) flushLocked() {
	f.flushing = true
	if f.pendingN < f.opts.FsyncBatch && f.opts.FsyncBatch > 1 {
		// Let a group form; appenders queue freely while we sleep.
		f.mu.Unlock()
		time.Sleep(f.opts.FlushDelay)
		f.mu.Lock()
	}
	buf := f.pending
	n := f.pendingN
	f.pending = nil
	f.pendingN = 0
	end := f.queuedOff // all pending flushed ⇒ durable offset catches up
	wal := f.wal
	f.mu.Unlock()

	var err error
	if len(buf) > 0 {
		if _, err = wal.Write(buf); err == nil {
			err = wal.Sync()
		}
		if err == nil {
			f.metrics.fsyncs.Inc()
			f.metrics.bytes.Add(uint64(len(buf)))
			f.metrics.fsyncBatch.Observe(float64(n))
		}
	}

	f.mu.Lock()
	f.flushing = false
	if err != nil {
		f.ioErr = fmt.Errorf("store: WAL flush: %w", err)
	} else {
		if end > f.syncedOff {
			f.syncedOff = end
		}
		f.seqSynced += int64(len(buf))
	}
	f.cond.Broadcast()
}

// Snapshot implements Backend: it drains pending appends into the old
// generation, persists blob as snap-<gen+1>.bin, opens wal-<gen+1>.log,
// and removes the previous generation's files.
func (f *File) Snapshot(blob []byte) error {
	start := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.ioErr != nil {
		return f.ioErr
	}
	for f.flushing {
		f.cond.Wait()
	}
	if f.pendingN > 0 {
		f.flushLocked()
		if f.ioErr != nil {
			return f.ioErr
		}
	}
	next := f.gen + 1
	if err := writeSnapshotFile(filepath.Join(f.dir, snapName(next)), blob); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := syncDir(f.dir); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	wal, err := os.OpenFile(WALPath(f.dir, next), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: open next WAL: %w", err)
	}
	if err := syncDir(f.dir); err != nil {
		wal.Close()
		return fmt.Errorf("store: sync dir: %w", err)
	}
	old, oldGen := f.wal, f.gen
	f.wal = wal
	f.gen = next
	f.queuedOff = 0
	f.syncedOff = 0
	f.replayed = true
	old.Close()
	// The previous generation is fully subsumed; removal is best-effort
	// (a crash here just leaves one stale generation behind, which the
	// next Open ignores in favor of the newer snapshot).
	os.Remove(filepath.Join(f.dir, walName(oldGen)))
	if oldGen > 0 {
		os.Remove(filepath.Join(f.dir, snapName(oldGen)))
	}
	f.metrics.snapshotSecs.ObserveDuration(time.Since(start))
	return nil
}

// Position returns the current generation and the durable byte offset in
// its WAL. The crash-injection harness records it with every acknowledged
// operation: truncating the live WAL anywhere at or beyond an
// acknowledged position must never lose that operation.
func (f *File) Position() (gen uint64, syncedOff int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.replayed {
		f.ensureOffsetLocked()
	}
	return f.gen, f.syncedOff
}

// Close implements Backend. Pending appenders are woken with ErrClosed;
// records they queued may or may not be durable — exactly like a crash —
// which is fine because those Appends never returned success.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	for f.flushing {
		f.cond.Wait()
	}
	f.cond.Broadcast()
	return f.wal.Close()
}
