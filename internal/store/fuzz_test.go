package store

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the WAL frame decoder and
// checks the replay contract the crash tests rely on:
//
//   - DecodeAll never panics and never over-reads;
//   - the good prefix it reports re-encodes byte-identically (framing is
//     a true round-trip, so truncating at goodLen loses nothing valid);
//   - decoding the good prefix again is clean — truncation at the first
//     bad frame converges instead of cascading.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	seed, _ := AppendRecord(nil, Record{Kind: KindLease, Value: 7})
	seed, _ = AppendRecord(seed, Record{Kind: KindCommit, Value: 1 << 33, Data: []byte("payload")})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[5] ^= 0x40
	f.Add(flipped) // corrupted CRC

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, goodLen, tailErr := DecodeAll(b)
		if goodLen < 0 || goodLen > len(b) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(b))
		}
		if (goodLen == len(b)) != (tailErr == nil) {
			t.Fatalf("tailErr %v inconsistent with goodLen %d of %d", tailErr, goodLen, len(b))
		}

		var reenc []byte
		var err error
		for _, rec := range recs {
			if !rec.Valid() {
				t.Fatalf("decoder surfaced invalid record %+v", rec)
			}
			reenc, err = AppendRecord(reenc, rec)
			if err != nil {
				t.Fatalf("re-encoding decoded record %+v: %v", rec, err)
			}
		}
		if !bytes.Equal(reenc, b[:goodLen]) {
			t.Fatalf("good prefix is not a round-trip: %d bytes decoded, %d re-encoded", goodLen, len(reenc))
		}

		recs2, goodLen2, tailErr2 := DecodeAll(b[:goodLen])
		if goodLen2 != goodLen || tailErr2 != nil || len(recs2) != len(recs) {
			t.Fatalf("truncation to goodLen did not converge: %d/%v vs %d", goodLen2, tailErr2, goodLen)
		}
	})
}
