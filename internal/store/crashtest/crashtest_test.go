package crashtest_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/store/crashtest"
)

// TestCrashChild is the re-exec entry point, not a test: the parent
// below runs the test binary again with SMACS_CRASHTEST_DIR set and this
// function becomes the workload process that gets killed.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("SMACS_CRASHTEST_DIR")
	if dir == "" {
		t.Skip("crashtest child entry point; driven by TestCrashRecovery")
	}
	if err := crashtest.Child(dir); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		os.Exit(3)
	}
}

// TestCrashRecovery is the randomized kill-point sweep.
//
// Knobs (all via environment, so CI can pin them):
//
//	SMACS_CRASHTEST_RUNS       number of kill/recover cycles (default 12, 4 with -short)
//	SMACS_CRASHTEST_SEED       RNG seed (default: time-derived, logged for replay)
//	SMACS_CRASHTEST_ARTIFACTS  directory to copy the WALs of a failed run into
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("SMACS_CRASHTEST_DIR") != "" {
		t.Skip("child process must not recurse into the parent sweep")
	}
	runs := 12
	if testing.Short() {
		runs = 4
	}
	if s := os.Getenv("SMACS_CRASHTEST_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SMACS_CRASHTEST_RUNS=%q: %v", s, err)
		}
		runs = n
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SMACS_CRASHTEST_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SMACS_CRASHTEST_SEED=%q: %v", s, err)
		}
		seed = n
	}
	t.Logf("crashtest seed %d (set SMACS_CRASHTEST_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	for run := 0; run < runs; run++ {
		runSeed := rng.Int63()
		t.Run(fmt.Sprintf("run%02d", run), func(t *testing.T) {
			crashOnce(t, rand.New(rand.NewSource(runSeed)))
		})
	}
}

func crashOnce(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(), "SMACS_CRASHTEST_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	// Let the workload reach a random amount of acknowledged progress,
	// then land the kill — a small extra jitter makes mid-write kills
	// (torn ack lines, half-flushed WAL batches) likely.
	target := 1 + rng.Intn(30)
	deadline := time.After(15 * time.Second)
poll:
	for {
		select {
		case err := <-exited:
			t.Fatalf("child exited on its own (%v) before the kill:\n%s", err, out.String())
		case <-deadline:
			break poll // kill wherever it got to
		default:
			if ackLines(dir) >= target {
				break poll
			}
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	<-exited

	fail := func(format string, args ...any) {
		saveArtifacts(t, dir)
		t.Fatalf(format+"\nchild output:\n%s", append(args, out.String())...)
	}

	acks, err := crashtest.ReadAcks(dir)
	if err != nil {
		fail("read acks: %v", err)
	}
	if len(acks.Issued) == 0 {
		fail("child made no acknowledged progress before the kill")
	}
	if err := crashtest.TornTruncate(filepath.Join(dir, "ts"), acks.TSSafe, rng); err != nil {
		fail("torn-truncate ts WAL: %v", err)
	}
	if err := crashtest.TornTruncate(filepath.Join(dir, "chain"), acks.ChainSafe, rng); err != nil {
		fail("torn-truncate chain WAL: %v", err)
	}
	if err := crashtest.Verify(dir, acks, rng); err != nil {
		fail("%v", err)
	}
}

func ackLines(dir string) int {
	b, err := os.ReadFile(filepath.Join(dir, "ack.log"))
	if err != nil {
		return 0
	}
	return bytes.Count(b, []byte("\n"))
}

// saveArtifacts copies the run's WALs and ack log into
// $SMACS_CRASHTEST_ARTIFACTS so CI can upload them from a failed run.
func saveArtifacts(t *testing.T, dir string) {
	t.Helper()
	dst := os.Getenv("SMACS_CRASHTEST_ARTIFACTS")
	if dst == "" {
		return
	}
	dst = filepath.Join(dst, filepath.Base(dir))
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		outF, err := os.Create(target)
		if err != nil {
			return err
		}
		defer outF.Close()
		_, err = io.Copy(outF, in)
		return err
	})
	if err != nil {
		t.Logf("saving artifacts to %s: %v", dst, err)
	} else {
		t.Logf("artifacts saved to %s", dst)
	}
}
