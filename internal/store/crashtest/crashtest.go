// Package crashtest kills a durable SMACS deployment at randomized WAL
// offsets and proves that recovery upholds the two § IV-C safety
// contracts:
//
//  1. no one-time token index is ever issued twice — the durable counter
//     under the ShardedCounter resumes strictly above every lease any
//     previous incarnation could have observed, and the on-chain bitmap
//     still rejects every acknowledged spent index;
//  2. no committed transaction is lost — every Apply the workload saw
//     return success is reflected in the recovered account nonce and
//     chain height.
//
// The harness re-execs the test binary as a child process running
// Child(), which appends an acknowledgement line to ack.log after every
// durability point (token issued, transaction committed), carrying the
// store.Position() at that moment. The parent SIGKILLs the child at a
// random point, then simulates the power-loss part a SIGKILL cannot (the
// page cache survives kill -9): it truncates each WAL to a random offset
// no lower than the highest acknowledged durable offset — including
// mid-record cuts — and optionally flips a byte in the discarded-eligible
// region. Everything past an ack is fair game; everything up to it must
// survive. Verify() then recovers in-process and asserts the contracts.
package crashtest

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"math/big"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/types"
	"repro/internal/wallet"
)

// Deterministic workload identities: both the child and the verifying
// parent derive the same keys, so the bootstrap deploys to the same
// address in every incarnation.
var (
	tsKey    = secp256k1.PrivateKeyFromSeed([]byte("crashtest ts"))
	ownerKey = secp256k1.PrivateKeyFromSeed([]byte("crashtest owner"))
	userKey  = secp256k1.PrivateKeyFromSeed([]byte("crashtest user"))
)

// Workload geometry. Small blocks force frequent counter leases (more
// kill-sensitive appends); small snapshot cadences force generation
// rotations under fire.
const (
	counterShards     = 4
	counterBlock      = 8
	counterSnapEvery  = 16
	chainSnapEvery    = 5
	bitmapBits        = 1 << 13
	bitmapBaseSlot    = 1 << 32
	counterFsyncBatch = 8
)

// guarded builds the SMACS-protected target contract: one public method
// behind the Alg. 1 preamble with a one-time bitmap.
func guarded() *evm.Contract {
	v := core.NewVerifier(tsKey.Address())
	bm, err := core.NewBitmap(bitmapBits, bitmapBaseSlot)
	if err != nil {
		panic(err)
	}
	v.WithBitmap(bm)
	c := evm.NewContract("CrashGuarded")
	c.SetInitialStorageWords(bm.StorageWords())
	c.MustAddMethod(evm.Method{
		Name:       "ping",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := v.Verify(call); err != nil {
				return nil, err
			}
			return []any{true}, nil
		},
	})
	return c
}

func ether(n int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(n), big.NewInt(1e18))
}

// deployment is one recovered (or fresh) durable SMACS node.
type deployment struct {
	tsStore    *store.File
	chainStore *store.File
	counter    *store.Counter
	sharded    *ts.ShardedCounter
	chain      *evm.Chain
	target     types.Address
}

func open(dir string) (*deployment, error) {
	tsB, err := store.OpenFile(filepath.Join(dir, "ts"), store.FileOptions{FsyncBatch: counterFsyncBatch})
	if err != nil {
		return nil, fmt.Errorf("open ts store: %w", err)
	}
	counter, err := store.OpenCounter(tsB, counterSnapEvery)
	if err != nil {
		return nil, fmt.Errorf("recover counter: %w", err)
	}
	sharded, err := ts.NewShardedCounter(counter, counterShards, counterBlock)
	if err != nil {
		return nil, err
	}
	chainB, err := store.OpenFile(filepath.Join(dir, "chain"), store.FileOptions{})
	if err != nil {
		return nil, fmt.Errorf("open chain store: %w", err)
	}
	// The deterministic recovery prologue shared by all incarnations:
	// same keys, same order, so the contract lands at the same address.
	var target types.Address
	boot := func(ch *evm.Chain) error {
		ch.Fund(ownerKey.Address(), ether(1000))
		ch.Fund(userKey.Address(), ether(1000))
		addr, _, err := ch.Deploy(ownerKey.Address(), guarded())
		target = addr
		return err
	}
	chain, err := evm.RecoverChain(evm.DefaultConfig(), chainB, chainSnapEvery, boot)
	if err != nil {
		return nil, fmt.Errorf("recover chain: %w", err)
	}
	return &deployment{
		tsStore:    tsB,
		chainStore: chainB,
		counter:    counter,
		sharded:    sharded,
		chain:      chain,
		target:     target,
	}, nil
}

func (d *deployment) close() {
	d.tsStore.Close()
	d.chainStore.Close()
}

// token issues (signs) a one-time token for the given index, bound to
// the user and the ping call.
func (d *deployment) token(index int64, expire time.Time) (wallet.CallOpts, error) {
	appData, err := (&evm.Transaction{Method: "ping"}).AppData()
	if err != nil {
		return wallet.CallOpts{}, err
	}
	binding := core.Binding{Origin: userKey.Address(), Contract: d.target}
	copy(binding.Selector[:], appData[:4])
	binding.Data = appData
	tk, err := core.SignToken(tsKey, core.MethodType, expire, index, binding)
	if err != nil {
		return wallet.CallOpts{}, err
	}
	return wallet.WithTokens(wallet.TokenEntry{Contract: d.target, Token: tk}), nil
}

// Child runs the issuance/apply workload until killed: allocate a
// one-time index (durable lease), ack it, spend it on-chain (durable
// commit), ack that too. It never exits on its own short of an error.
func Child(dir string) error {
	d, err := open(dir)
	if err != nil {
		return err
	}
	defer d.close()
	ack, err := os.OpenFile(filepath.Join(dir, "ack.log"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer ack.Close()

	w := wallet.New(userKey, d.chain)
	deadline := time.Now().Add(30 * time.Second) // orphan safety net
	for time.Now().Before(deadline) {
		index, err := d.sharded.Next()
		if err != nil {
			return fmt.Errorf("issue index: %w", err)
		}
		gen, off := d.tsStore.Position()
		if _, err := fmt.Fprintf(ack, "I %d %d %d\n", index, gen, off); err != nil {
			return err
		}
		opts, err := d.token(index, time.Now().Add(time.Hour))
		if err != nil {
			return err
		}
		r, err := w.Call(d.target, "ping", opts)
		if err != nil {
			return fmt.Errorf("apply index %d: %w", index, err)
		}
		if !r.Status {
			return fmt.Errorf("apply index %d reverted: %v", index, r.Err)
		}
		cgen, coff := d.chainStore.Position()
		nonce := d.chain.NonceOf(userKey.Address())
		if _, err := fmt.Fprintf(ack, "C %d %d %d %d\n", nonce, index, cgen, coff); err != nil {
			return err
		}
	}
	return errors.New("crashtest child was never killed")
}

// Acks is the parent's view of what the dead child acknowledged as
// durable.
type Acks struct {
	// Issued maps acknowledged one-time indexes (token issuance reached
	// a durable lease).
	Issued map[int64]bool
	// Committed maps acknowledged spent indexes (Apply returned).
	Committed map[int64]bool
	// MaxNonce is the highest acknowledged post-commit account nonce.
	MaxNonce uint64
	// TSSafe and ChainSafe record, per WAL generation, the highest
	// acknowledged durable offset — the truncation floor.
	TSSafe, ChainSafe map[int64]int64
}

// ReadAcks parses ack.log. A torn final line (the kill can land
// mid-fprintf) is ignored.
func ReadAcks(dir string) (*Acks, error) {
	a := &Acks{
		Issued:    make(map[int64]bool),
		Committed: make(map[int64]bool),
		TSSafe:    make(map[int64]int64),
		ChainSafe: make(map[int64]int64),
	}
	f, err := os.Open(filepath.Join(dir, "ack.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return a, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		var index, gen, off int64
		var nonce uint64
		switch {
		case strings.HasPrefix(line, "I "):
			if _, err := fmt.Sscanf(line, "I %d %d %d", &index, &gen, &off); err != nil {
				continue // torn tail
			}
			a.Issued[index] = true
			if off > a.TSSafe[gen] {
				a.TSSafe[gen] = off
			}
		case strings.HasPrefix(line, "C "):
			if _, err := fmt.Sscanf(line, "C %d %d %d %d", &nonce, &index, &gen, &off); err != nil {
				continue
			}
			a.Committed[index] = true
			if nonce > a.MaxNonce {
				a.MaxNonce = nonce
			}
			if off > a.ChainSafe[gen] {
				a.ChainSafe[gen] = off
			}
		}
	}
	return a, sc.Err()
}

// TornTruncate simulates the un-synced suffix lost to a power cut: the
// store's current WAL is cut at a random offset no lower than the
// highest acknowledged durable offset for that generation — deliberately
// including mid-record offsets — and, sometimes, a byte in the doomed
// region is flipped instead of removed (a torn sector write).
func TornTruncate(dir string, safe map[int64]int64, rng *rand.Rand) error {
	gens, err := walGens(dir)
	if err != nil || len(gens) == 0 {
		return err
	}
	gen := gens[len(gens)-1]
	path := store.WALPath(dir, uint64(gen))
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size()
	floor := safe[gen] // zero when every record in this WAL is unacknowledged
	if floor > size {
		return fmt.Errorf("acked offset %d beyond WAL size %d: durability violated before truncation", floor, size)
	}
	if size == floor {
		return nil
	}
	cut := floor + rng.Int63n(size-floor+1)
	switch rng.Intn(3) {
	case 0: // clean cut at a random (likely mid-record) offset
		return os.Truncate(path, cut)
	case 1: // torn sector: keep the length, corrupt a byte past the floor
		if cut == size {
			cut = size - 1
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], cut); err != nil {
			return err
		}
		b[0] ^= 0xff
		_, err = f.WriteAt(b[:], cut)
		return err
	default: // lose nothing (crash right after an fsync)
		return nil
	}
}

func walGens(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []int64
	for _, e := range entries {
		var g int64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Verify recovers the deployment in-process and asserts the § IV-C
// safety contracts against what the dead child acknowledged.
func Verify(dir string, acks *Acks, rng *rand.Rand) error {
	d, err := open(dir)
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer d.close()

	var maxIssued int64
	for idx := range acks.Issued {
		if idx > maxIssued {
			maxIssued = idx
		}
	}

	// Contract 1a: the reborn counter never re-issues an index. Fresh
	// indexes come from freshly leased blocks strictly above every
	// durable lease, so they must clear every acknowledged index.
	for i := 0; i < 3*counterBlock; i++ {
		idx, err := d.sharded.Next()
		if err != nil {
			return fmt.Errorf("post-recovery issue: %w", err)
		}
		if acks.Issued[idx] {
			return fmt.Errorf("index %d issued twice across the crash", idx)
		}
		if idx <= maxIssued {
			return fmt.Errorf("post-recovery index %d not above pre-crash maximum %d", idx, maxIssued)
		}
	}

	// Contract 2: no committed transaction is lost. Every acknowledged
	// commit incremented the account nonce durably before acking.
	if got := d.chain.NonceOf(userKey.Address()); got < acks.MaxNonce {
		return fmt.Errorf("recovered nonce %d below acknowledged %d: committed txs lost", got, acks.MaxNonce)
	}

	// Contract 1b: every acknowledged spent index is still spent — a
	// re-forged token for it must be rejected by the recovered bitmap.
	// (Sample to keep 50-run sweeps fast; always include the maximum.)
	spent := make([]int64, 0, len(acks.Committed))
	for idx := range acks.Committed {
		spent = append(spent, idx)
	}
	sort.Slice(spent, func(i, j int) bool { return spent[i] < spent[j] })
	sample := spent
	if len(sample) > 8 {
		sample = append([]int64(nil), spent[len(spent)-1], spent[0])
		for len(sample) < 8 {
			sample = append(sample, spent[rng.Intn(len(spent))])
		}
	}
	w := wallet.New(userKey, d.chain)
	for _, idx := range sample {
		opts, err := d.token(idx, time.Now().Add(time.Hour))
		if err != nil {
			return err
		}
		r, err := w.Call(d.target, "ping", opts)
		if err != nil {
			return fmt.Errorf("replay of spent index %d rejected pre-execution: %w", idx, err)
		}
		if r.Status {
			return fmt.Errorf("spent index %d accepted again after recovery", idx)
		}
		if !errors.Is(r.Err, core.ErrTokenUsed) {
			return fmt.Errorf("spent index %d rejected with %v, want ErrTokenUsed", idx, r.Err)
		}
	}

	// And the deployment still works: a fresh index is accepted.
	idx, err := d.sharded.Next()
	if err != nil {
		return err
	}
	opts, err := d.token(idx, time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	r, err := w.Call(d.target, "ping", opts)
	if err != nil || !r.Status {
		return fmt.Errorf("fresh index %d rejected after recovery: %v / %v", idx, err, r)
	}
	return nil
}
