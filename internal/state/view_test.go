package state

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/types"
)

func TestViewReadsFallThroughToBase(t *testing.T) {
	base := New()
	a := addr(1)
	base.AddBalance(a, big.NewInt(100))
	base.IncNonce(a)
	base.SetState(a, slot(0), slot(9))

	mv := NewMultiVersion(base)
	v := NewView(mv, 3)
	if got := v.Balance(a); got.Cmp(big.NewInt(100)) != 0 {
		t.Errorf("balance = %s, want 100", got)
	}
	if v.Nonce(a) != 1 {
		t.Errorf("nonce = %d, want 1", v.Nonce(a))
	}
	if v.GetState(a, slot(0)) != slot(9) {
		t.Error("slot read missed the base value")
	}
	if !v.Exists(a) || v.Exists(addr(2)) {
		t.Error("existence mismatch")
	}
	rs := v.Reads()
	if rs.accts[a] != BaseVersion {
		t.Errorf("account version = %+v, want base", rs.accts[a])
	}
	if rs.slots[SlotKey{Addr: a, Slot: slot(0)}] != BaseVersion {
		t.Error("slot version should be base")
	}
}

func TestSpeculativeReadsSeeHighestLowerTx(t *testing.T) {
	base := New()
	a := addr(1)
	base.AddBalance(a, big.NewInt(10))
	mv := NewMultiVersion(base)

	// tx 1 and tx 3 publish writes to the same account.
	for _, tx := range []int{1, 3} {
		w := NewView(mv, tx)
		w.AddBalance(a, big.NewInt(int64(tx)))
		mv.Publish(tx, 1, w.Writes(), nil)
	}

	// tx 1 read the base (10) and wrote 11; tx 3 read tx 1's 11 and wrote
	// 14.
	cases := []struct {
		reader int
		want   int64
		ver    Version
	}{
		{0, 10, BaseVersion}, // below every write: base
		{1, 10, BaseVersion}, // own index is excluded
		{2, 11, Version{Tx: 1, Inc: 1}},
		{4, 14, Version{Tx: 3, Inc: 1}},
	}
	for _, tc := range cases {
		v := NewView(mv, tc.reader)
		if got := v.Balance(a); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("reader %d: balance = %s, want %d", tc.reader, got, tc.want)
		}
		if ver := v.Reads().accts[a]; ver != tc.ver {
			t.Errorf("reader %d: version = %+v, want %+v", tc.reader, ver, tc.ver)
		}
	}
}

func TestValidateDetectsConflictAndWithdrawal(t *testing.T) {
	base := New()
	a := addr(7)
	base.AddBalance(a, big.NewInt(50))
	mv := NewMultiVersion(base)

	// tx 2 reads the account before tx 1 publishes: version is base.
	reader := NewView(mv, 2)
	_ = reader.Balance(a)
	if !mv.Validate(reader.Reads(), 2) {
		t.Fatal("clean read-set should validate")
	}

	// tx 1 publishes a write to the same account: tx 2's read is stale.
	w := NewView(mv, 1)
	w.AddBalance(a, big.NewInt(1))
	ws := w.Writes()
	mv.Publish(1, 1, ws, nil)
	if mv.Validate(reader.Reads(), 2) {
		t.Fatal("stale read-set validated")
	}

	// Re-execution of tx 2 now observes tx 1's version and validates.
	reader2 := NewView(mv, 2)
	_ = reader2.Balance(a)
	if !mv.Validate(reader2.Reads(), 2) {
		t.Fatal("refreshed read-set should validate")
	}

	// Withdrawing tx 1's write (empty next incarnation) invalidates again.
	mv.Publish(1, 2, nil, ws)
	if mv.Validate(reader2.Reads(), 2) {
		t.Fatal("read of a withdrawn write validated")
	}
}

func TestPublishReplacesIncarnationAndWithdrawsStaleKeys(t *testing.T) {
	base := New()
	a, b := addr(3), addr(4)
	mv := NewMultiVersion(base)

	// Incarnation 1 writes both accounts.
	w1 := NewView(mv, 0)
	w1.AddBalance(a, big.NewInt(5))
	w1.AddBalance(b, big.NewInt(6))
	ws1 := w1.Writes()
	mv.Publish(0, 1, ws1, nil)

	// Incarnation 2 writes only a; b's stale entry must vanish.
	w2 := NewView(mv, 0)
	w2.AddBalance(a, big.NewInt(7))
	ws2 := w2.Writes()
	mv.Publish(0, 2, ws2, ws1)

	r := NewView(mv, 1)
	if got := r.Balance(a); got.Cmp(big.NewInt(7)) != 0 {
		t.Errorf("a = %s, want 7", got)
	}
	if ver := r.Reads().accts[a]; ver != (Version{Tx: 0, Inc: 2}) {
		t.Errorf("a version = %+v", ver)
	}
	if got := r.Balance(b); got.Sign() != 0 {
		t.Errorf("b = %s, want 0 (stale write withdrawn)", got)
	}
	if ver := r.Reads().accts[b]; ver != BaseVersion {
		t.Errorf("b version = %+v, want base", ver)
	}
}

func TestViewNetWritesSkipRevertedAndRestoredValues(t *testing.T) {
	base := New()
	a, b := addr(1), addr(2)
	base.AddBalance(a, big.NewInt(100))
	mv := NewMultiVersion(base)

	v := NewView(mv, 0)
	// A write fully undone by a revert leaves no net entry.
	snap := v.Snapshot()
	v.AddBalance(b, big.NewInt(30))
	v.SetState(a, slot(1), slot(5))
	v.RevertToSnapshot(snap)
	// A value overwritten back to its original is also no net change.
	v.SetState(a, slot(2), slot(8))
	v.SetState(a, slot(2), types.Hash{})
	// One real write survives.
	if err := v.SubBalance(a, big.NewInt(40)); err != nil {
		t.Fatal(err)
	}

	ws := v.Writes()
	if ws.Len() != 1 {
		t.Fatalf("write-set has %d entries, want 1 (only a's balance)", ws.Len())
	}
	if got := ws.accts[a]; got.balance.Cmp(big.NewInt(60)) != 0 {
		t.Errorf("a's net balance = %s, want 60", got.balance)
	}
	// Reverted reads are still reads: b and both slots gate validity.
	rs := v.Reads()
	if rs.Len() != 4 {
		t.Errorf("read-set has %d entries, want 4", rs.Len())
	}
}

func TestViewSubBalanceMatchesDBError(t *testing.T) {
	base := New()
	a := addr(9)
	base.AddBalance(a, big.NewInt(3))
	mv := NewMultiVersion(base)
	v := NewView(mv, 0)

	verr := v.SubBalance(a, big.NewInt(10))
	derr := base.SubBalance(a, big.NewInt(10))
	if verr == nil || derr == nil {
		t.Fatal("expected insufficient-balance errors")
	}
	if !errors.Is(verr, ErrInsufficientBalance) {
		t.Error("view error does not wrap ErrInsufficientBalance")
	}
	if verr.Error() != derr.Error() {
		t.Errorf("error text diverges:\nview: %s\ndb:   %s", verr, derr)
	}
}

func TestApplyWritesRoundTripsThroughDB(t *testing.T) {
	base := New()
	a := addr(5)
	base.AddBalance(a, big.NewInt(100))
	mv := NewMultiVersion(base)

	v := NewView(mv, 0)
	if err := v.SubBalance(a, big.NewInt(25)); err != nil {
		t.Fatal(err)
	}
	v.IncNonce(a)
	v.SetState(a, slot(3), slot(1))

	base.ApplyWrites(v.Writes())
	base.DiscardJournal()
	if got := base.Balance(a); got.Cmp(big.NewInt(75)) != 0 {
		t.Errorf("balance = %s, want 75", got)
	}
	if base.Nonce(a) != 1 {
		t.Errorf("nonce = %d, want 1", base.Nonce(a))
	}
	if base.GetState(a, slot(3)) != slot(1) {
		t.Error("slot write lost")
	}
}

func TestApplyWritesIsJournaled(t *testing.T) {
	base := New()
	a := addr(6)
	base.AddBalance(a, big.NewInt(10))
	mv := NewMultiVersion(base)

	v := NewView(mv, 0)
	v.AddBalance(a, big.NewInt(5))
	v.IncNonce(a)

	snap := base.Snapshot()
	base.ApplyWrites(v.Writes())
	base.RevertToSnapshot(snap)
	if got := base.Balance(a); got.Cmp(big.NewInt(10)) != 0 {
		t.Errorf("balance after revert = %s, want 10", got)
	}
	if base.Nonce(a) != 0 {
		t.Errorf("nonce after revert = %d, want 0", base.Nonce(a))
	}
}

func TestDigestTracksStateChanges(t *testing.T) {
	db1, db2 := New(), New()
	d1a, err := db1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2a, err := db2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1a != d2a {
		t.Error("empty DBs digest differently")
	}
	db1.AddBalance(addr(1), big.NewInt(1))
	d1b, err := db1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1b == d1a {
		t.Error("digest did not change with state")
	}
	db2.AddBalance(addr(1), big.NewInt(1))
	d2b, err := db2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1b != d2b {
		t.Error("equal states digest differently")
	}
}
