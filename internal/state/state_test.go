package state

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

var (
	addrA = types.Address{0xaa}
	addrB = types.Address{0xbb}
	slot1 = types.Hash{1}
	slot2 = types.Hash{2}
	wordX = types.Hash{0xde, 0xad}
	wordY = types.Hash{0xbe, 0xef}
)

func TestBalances(t *testing.T) {
	db := New()
	if db.Balance(addrA).Sign() != 0 {
		t.Error("fresh account has nonzero balance")
	}
	db.AddBalance(addrA, big.NewInt(100))
	if err := db.SubBalance(addrA, big.NewInt(40)); err != nil {
		t.Fatal(err)
	}
	if got := db.Balance(addrA); got.Int64() != 60 {
		t.Errorf("balance = %s, want 60", got)
	}
	err := db.SubBalance(addrA, big.NewInt(61))
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Errorf("overdraft err = %v", err)
	}
	if got := db.Balance(addrA); got.Int64() != 60 {
		t.Errorf("failed debit changed balance to %s", got)
	}
}

func TestBalanceReturnsCopy(t *testing.T) {
	db := New()
	db.AddBalance(addrA, big.NewInt(5))
	b := db.Balance(addrA)
	b.SetInt64(9999)
	if db.Balance(addrA).Int64() != 5 {
		t.Error("Balance exposes internal big.Int")
	}
}

func TestNonces(t *testing.T) {
	db := New()
	if db.Nonce(addrA) != 0 {
		t.Error("fresh nonce not 0")
	}
	db.IncNonce(addrA)
	db.IncNonce(addrA)
	if db.Nonce(addrA) != 2 {
		t.Errorf("nonce = %d, want 2", db.Nonce(addrA))
	}
}

func TestStorage(t *testing.T) {
	db := New()
	if got := db.GetState(addrA, slot1); !got.IsZero() {
		t.Error("fresh slot nonzero")
	}
	prev := db.SetState(addrA, slot1, wordX)
	if !prev.IsZero() {
		t.Error("prev of fresh slot nonzero")
	}
	prev = db.SetState(addrA, slot1, wordY)
	if prev != wordX {
		t.Errorf("prev = %s, want %s", prev, wordX)
	}
	if db.GetState(addrA, slot1) != wordY {
		t.Error("readback mismatch")
	}
	// Storage is per-contract.
	if got := db.GetState(addrB, slot1); !got.IsZero() {
		t.Error("storage leaked across contracts")
	}
	if db.StorageWords(addrA) != 1 {
		t.Errorf("StorageWords = %d, want 1", db.StorageWords(addrA))
	}
}

func TestContractFlag(t *testing.T) {
	db := New()
	if db.IsContract(addrA) {
		t.Error("fresh account marked contract")
	}
	db.MarkContract(addrA)
	if !db.IsContract(addrA) {
		t.Error("MarkContract did not stick")
	}
}

func TestSnapshotRevert(t *testing.T) {
	db := New()
	db.AddBalance(addrA, big.NewInt(100))
	db.SetState(addrA, slot1, wordX)

	snap := db.Snapshot()
	db.AddBalance(addrB, big.NewInt(50))
	if err := db.SubBalance(addrA, big.NewInt(30)); err != nil {
		t.Fatal(err)
	}
	db.SetState(addrA, slot1, wordY)
	db.SetState(addrA, slot2, wordX)
	db.IncNonce(addrA)
	db.MarkContract(addrB)

	db.RevertToSnapshot(snap)

	if db.Balance(addrA).Int64() != 100 {
		t.Errorf("balance A = %s, want 100", db.Balance(addrA))
	}
	if db.Balance(addrB).Sign() != 0 {
		t.Errorf("balance B = %s, want 0", db.Balance(addrB))
	}
	if db.GetState(addrA, slot1) != wordX {
		t.Error("slot1 not reverted")
	}
	if !db.GetState(addrA, slot2).IsZero() {
		t.Error("slot2 not deleted on revert")
	}
	if db.Nonce(addrA) != 0 {
		t.Error("nonce not reverted")
	}
	if db.IsContract(addrB) {
		t.Error("contract flag not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	db := New()
	db.AddBalance(addrA, big.NewInt(1))
	s1 := db.Snapshot()
	db.AddBalance(addrA, big.NewInt(10))
	s2 := db.Snapshot()
	db.AddBalance(addrA, big.NewInt(100))

	db.RevertToSnapshot(s2)
	if db.Balance(addrA).Int64() != 11 {
		t.Errorf("after inner revert: %s, want 11", db.Balance(addrA))
	}
	db.RevertToSnapshot(s1)
	if db.Balance(addrA).Int64() != 1 {
		t.Errorf("after outer revert: %s, want 1", db.Balance(addrA))
	}
}

func TestRevertFreshAccountDisappears(t *testing.T) {
	db := New()
	snap := db.Snapshot()
	db.AddBalance(addrA, big.NewInt(0)) // touch only
	if !db.Exists(addrA) {
		t.Fatal("touched account should exist")
	}
	db.RevertToSnapshot(snap)
	if db.Exists(addrA) {
		t.Error("reverted account still exists")
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	// Property: any batch of mutations is fully undone by a revert.
	f := func(amounts []uint8, slots []uint8) bool {
		db := New()
		db.AddBalance(addrA, big.NewInt(1000))
		before := db.Balance(addrA).Int64()
		snap := db.Snapshot()
		for _, a := range amounts {
			db.AddBalance(addrA, big.NewInt(int64(a)))
			db.IncNonce(addrA)
		}
		for _, s := range slots {
			db.SetState(addrA, types.Hash{s}, types.Hash{s, s})
		}
		db.RevertToSnapshot(snap)
		if db.Balance(addrA).Int64() != before || db.Nonce(addrA) != 0 {
			return false
		}
		for _, s := range slots {
			if !db.GetState(addrA, types.Hash{s}).IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
