// Package state implements the world state of the simulated chain:
// accounts (balance, nonce, contract flag) and per-contract word storage,
// with journaled snapshot/revert so failed calls roll back exactly as in
// the EVM.
//
// The DB is not safe for concurrent use; the chain serializes access.
package state

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/keccak"
	"repro/internal/types"
)

// ErrInsufficientBalance is returned when a debit exceeds the account
// balance.
var ErrInsufficientBalance = errors.New("state: insufficient balance")

type account struct {
	balance  *big.Int
	nonce    uint64
	contract bool
}

// DB is the mutable world state.
type DB struct {
	accounts map[types.Address]*account
	storage  map[types.Address]map[types.Hash]types.Hash
	journal  []func()
}

// New creates an empty world state.
func New() *DB {
	return &DB{
		accounts: make(map[types.Address]*account),
		storage:  make(map[types.Address]map[types.Hash]types.Hash),
	}
}

func (db *DB) account(addr types.Address) *account {
	if acc, ok := db.accounts[addr]; ok {
		return acc
	}
	acc := &account{balance: new(big.Int)}
	db.accounts[addr] = acc
	db.journal = append(db.journal, func() { delete(db.accounts, addr) })
	return acc
}

// Exists reports whether the address has ever been touched.
func (db *DB) Exists(addr types.Address) bool {
	_, ok := db.accounts[addr]
	return ok
}

// Balance returns a copy of the account balance (zero for fresh accounts).
func (db *DB) Balance(addr types.Address) *big.Int {
	if acc, ok := db.accounts[addr]; ok {
		return new(big.Int).Set(acc.balance)
	}
	return new(big.Int)
}

// AddBalance credits amount to addr.
func (db *DB) AddBalance(addr types.Address, amount *big.Int) {
	if amount == nil || amount.Sign() == 0 {
		db.account(addr) // still touch the account
		return
	}
	acc := db.account(addr)
	prev := new(big.Int).Set(acc.balance)
	acc.balance.Add(acc.balance, amount)
	db.journal = append(db.journal, func() { acc.balance.Set(prev) })
}

// SubBalance debits amount from addr, failing if the balance is
// insufficient.
func (db *DB) SubBalance(addr types.Address, amount *big.Int) error {
	if amount == nil || amount.Sign() == 0 {
		return nil
	}
	acc := db.account(addr)
	if acc.balance.Cmp(amount) < 0 {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, addr, acc.balance, amount)
	}
	prev := new(big.Int).Set(acc.balance)
	acc.balance.Sub(acc.balance, amount)
	db.journal = append(db.journal, func() { acc.balance.Set(prev) })
	return nil
}

// Nonce returns the account nonce.
func (db *DB) Nonce(addr types.Address) uint64 {
	if acc, ok := db.accounts[addr]; ok {
		return acc.nonce
	}
	return 0
}

// IncNonce increments the account nonce (after a transaction is accepted).
func (db *DB) IncNonce(addr types.Address) {
	acc := db.account(addr)
	prev := acc.nonce
	acc.nonce++
	db.journal = append(db.journal, func() { acc.nonce = prev })
}

// MarkContract flags addr as a contract account.
func (db *DB) MarkContract(addr types.Address) {
	acc := db.account(addr)
	prev := acc.contract
	acc.contract = true
	db.journal = append(db.journal, func() { acc.contract = prev })
}

// IsContract reports whether addr is a contract account.
func (db *DB) IsContract(addr types.Address) bool {
	acc, ok := db.accounts[addr]
	return ok && acc.contract
}

// GetState reads a storage word of a contract.
func (db *DB) GetState(addr types.Address, slot types.Hash) types.Hash {
	if s, ok := db.storage[addr]; ok {
		return s[slot]
	}
	return types.Hash{}
}

// SetState writes a storage word and returns the previous value (used for
// SSTORE gas pricing).
func (db *DB) SetState(addr types.Address, slot types.Hash, value types.Hash) types.Hash {
	s, ok := db.storage[addr]
	if !ok {
		s = make(map[types.Hash]types.Hash)
		db.storage[addr] = s
	}
	prev, had := s[slot]
	s[slot] = value
	db.journal = append(db.journal, func() {
		if had {
			s[slot] = prev
		} else {
			delete(s, slot)
		}
	})
	return prev
}

// StorageWords returns the number of distinct storage words a contract
// occupies (used to size the one-time-token bitmap cost in Table IV).
func (db *DB) StorageWords(addr types.Address) int {
	return len(db.storage[addr])
}

// Snapshot returns an identifier that can later be passed to
// RevertToSnapshot to roll back every mutation made since.
func (db *DB) Snapshot() int { return len(db.journal) }

// RevertToSnapshot undoes all mutations recorded after the snapshot was
// taken. Reverting to a stale (already reverted) snapshot is a no-op.
func (db *DB) RevertToSnapshot(id int) {
	if id < 0 || id > len(db.journal) {
		return
	}
	for i := len(db.journal) - 1; i >= id; i-- {
		db.journal[i]()
	}
	db.journal = db.journal[:id]
}

// DiscardJournal drops undo history up to the current point (e.g., at block
// boundaries once a block is final). Snapshots taken earlier become stale.
func (db *DB) DiscardJournal() { db.journal = db.journal[:0] }

// ApplyWrites installs the net write-set of a validated optimistic
// execution. Each mutation is journaled, so snapshots taken before the
// call roll the write-set back exactly like individually applied
// mutations would.
func (db *DB) ApplyWrites(ws *WriteSet) {
	if ws == nil {
		return
	}
	for addr, data := range ws.accts {
		acc := db.account(addr)
		prevBalance := new(big.Int).Set(acc.balance)
		prevNonce := acc.nonce
		prevContract := acc.contract
		acc.balance.Set(data.balanceOrZero())
		acc.nonce = data.nonce
		acc.contract = data.contract
		db.journal = append(db.journal, func() {
			acc.balance.Set(prevBalance)
			acc.nonce = prevNonce
			acc.contract = prevContract
		})
	}
	for k, val := range ws.slots {
		db.SetState(k.Addr, k.Slot, val)
	}
}

// Digest returns a deterministic hash of the full world state: equal
// states produce equal digests regardless of how they were reached.
func (db *DB) Digest() (types.Hash, error) {
	enc, err := db.EncodeSnapshot()
	if err != nil {
		return types.Hash{}, err
	}
	return types.Hash(keccak.Sum256(enc)), nil
}
