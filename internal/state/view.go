// Multi-version memory and per-transaction views for optimistic-parallel
// execution (Block-STM style).
//
// A MultiVersion sits on top of a committed *DB and holds the speculative
// writes of every transaction in a batch, keyed by (location, txIndex,
// incarnation). Each transaction executes against its own View: reads
// resolve to the highest-indexed speculative write below the reader's own
// index (falling back to the committed base) and are recorded with the
// Version they observed; writes buffer locally. After execution the view
// yields a read-set (for validation) and a write-set (for publication and,
// once the transaction's position is final, application to the base DB).
//
// Locations are tracked at two granularities, matching the base DB:
//   - one record per account (existence, balance, nonce, contract flag) —
//     balance and nonce conflicts on the same account are real conflicts
//     in this model because fees always rewrite the sender account;
//   - one record per (contract, slot) storage word.
//
// The base *DB must not be mutated while a MultiVersion built on it is in
// use; the optimistic scheduler guarantees this by holding the chain mutex
// for the whole run and applying write-sets only after every position has
// validated.
package state

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/types"
)

// Version identifies the origin of an observed value: the transaction
// index whose write was read and that write's incarnation (re-execution
// count). Reads that fell through to the committed base DB carry
// BaseVersion.
type Version struct {
	Tx  int
	Inc int
}

// BaseVersion marks a read served by the committed base DB.
var BaseVersion = Version{Tx: -1, Inc: 0}

// SlotKey addresses one storage word.
type SlotKey struct {
	Addr types.Address
	Slot types.Hash
}

// acctData is an immutable snapshot of one account record. A nil balance
// is treated as zero.
type acctData struct {
	exists   bool
	contract bool
	nonce    uint64
	balance  *big.Int
}

func (a acctData) balanceOrZero() *big.Int {
	if a.balance == nil {
		return new(big.Int)
	}
	return a.balance
}

// WriteSet holds the net effect of one transaction execution: final
// account records and storage words for every location the transaction
// changed. Values are owned by the set and never mutated after creation.
type WriteSet struct {
	accts map[types.Address]acctData
	slots map[SlotKey]types.Hash
}

// Len returns the number of distinct locations written.
func (ws *WriteSet) Len() int {
	if ws == nil {
		return 0
	}
	return len(ws.accts) + len(ws.slots)
}

// ReadSet records every location a transaction observed and the Version
// it observed there.
type ReadSet struct {
	accts map[types.Address]Version
	slots map[SlotKey]Version
}

// Len returns the number of distinct locations read.
func (rs *ReadSet) Len() int {
	if rs == nil {
		return 0
	}
	return len(rs.accts) + len(rs.slots)
}

const mvShards = 16

type acctEntry struct {
	tx, inc int
	data    acctData
}

type slotEntry struct {
	tx, inc int
	val     types.Hash
}

type mvShard struct {
	mu    sync.RWMutex
	accts map[types.Address][]acctEntry // sorted by tx ascending
	slots map[SlotKey][]slotEntry       // sorted by tx ascending
}

// MultiVersion is the shared speculative memory of one optimistic batch.
// Publish/Validate/read may be called concurrently from scheduler workers.
type MultiVersion struct {
	base   *DB
	shards [mvShards]mvShard
}

// NewMultiVersion creates an empty speculative memory over the committed
// base state. The base must stay unmodified for the MultiVersion's
// lifetime.
func NewMultiVersion(base *DB) *MultiVersion {
	mv := &MultiVersion{base: base}
	for i := range mv.shards {
		mv.shards[i].accts = make(map[types.Address][]acctEntry)
		mv.shards[i].slots = make(map[SlotKey][]slotEntry)
	}
	return mv
}

func (mv *MultiVersion) acctShard(addr types.Address) *mvShard {
	return &mv.shards[addr[types.AddressLength-1]%mvShards]
}

func (mv *MultiVersion) slotShard(k SlotKey) *mvShard {
	return &mv.shards[(k.Addr[types.AddressLength-1]^k.Slot[types.HashLength-1])%mvShards]
}

// readAccount resolves an account as seen by the transaction at beforeTx:
// the highest-indexed speculative write with tx < beforeTx, else the base.
func (mv *MultiVersion) readAccount(addr types.Address, beforeTx int) (acctData, Version) {
	sh := mv.acctShard(addr)
	sh.mu.RLock()
	entries := sh.accts[addr]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].tx < beforeTx {
			data, ver := entries[i].data, Version{Tx: entries[i].tx, Inc: entries[i].inc}
			sh.mu.RUnlock()
			return data, ver
		}
	}
	sh.mu.RUnlock()
	return mv.baseAccount(addr), BaseVersion
}

func (mv *MultiVersion) baseAccount(addr types.Address) acctData {
	acc, ok := mv.base.accounts[addr]
	if !ok {
		return acctData{}
	}
	// The balance pointer aliases live base state; callers copy before
	// mutating. The base is frozen while the MultiVersion is in use.
	return acctData{exists: true, contract: acc.contract, nonce: acc.nonce, balance: acc.balance}
}

// readSlot resolves a storage word as seen by the transaction at beforeTx.
func (mv *MultiVersion) readSlot(k SlotKey, beforeTx int) (types.Hash, Version) {
	sh := mv.slotShard(k)
	sh.mu.RLock()
	entries := sh.slots[k]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].tx < beforeTx {
			val, ver := entries[i].val, Version{Tx: entries[i].tx, Inc: entries[i].inc}
			sh.mu.RUnlock()
			return val, ver
		}
	}
	sh.mu.RUnlock()
	return mv.base.GetState(k.Addr, k.Slot), BaseVersion
}

// Publish installs the write-set of one (txIndex, incarnation) execution,
// replacing the previous incarnation's entries. prev is the write-set of
// the previous incarnation (nil on first execution); locations written
// then but not now are withdrawn so stale speculative values cannot be
// read.
func (mv *MultiVersion) Publish(txIndex, incarnation int, ws, prev *WriteSet) {
	if prev != nil {
		for addr := range prev.accts {
			if _, still := wsAcct(ws, addr); !still {
				mv.dropAccount(addr, txIndex)
			}
		}
		for k := range prev.slots {
			if _, still := wsSlot(ws, k); !still {
				mv.dropSlot(k, txIndex)
			}
		}
	}
	if ws == nil {
		return
	}
	for addr, data := range ws.accts {
		sh := mv.acctShard(addr)
		sh.mu.Lock()
		sh.accts[addr] = upsertAcct(sh.accts[addr], acctEntry{tx: txIndex, inc: incarnation, data: data})
		sh.mu.Unlock()
	}
	for k, val := range ws.slots {
		sh := mv.slotShard(k)
		sh.mu.Lock()
		sh.slots[k] = upsertSlot(sh.slots[k], slotEntry{tx: txIndex, inc: incarnation, val: val})
		sh.mu.Unlock()
	}
}

func wsAcct(ws *WriteSet, addr types.Address) (acctData, bool) {
	if ws == nil {
		return acctData{}, false
	}
	d, ok := ws.accts[addr]
	return d, ok
}

func wsSlot(ws *WriteSet, k SlotKey) (types.Hash, bool) {
	if ws == nil {
		return types.Hash{}, false
	}
	v, ok := ws.slots[k]
	return v, ok
}

func (mv *MultiVersion) dropAccount(addr types.Address, txIndex int) {
	sh := mv.acctShard(addr)
	sh.mu.Lock()
	entries := sh.accts[addr]
	for i, e := range entries {
		if e.tx == txIndex {
			sh.accts[addr] = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	sh.mu.Unlock()
}

func (mv *MultiVersion) dropSlot(k SlotKey, txIndex int) {
	sh := mv.slotShard(k)
	sh.mu.Lock()
	entries := sh.slots[k]
	for i, e := range entries {
		if e.tx == txIndex {
			sh.slots[k] = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	sh.mu.Unlock()
}

func upsertAcct(entries []acctEntry, e acctEntry) []acctEntry {
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].tx == e.tx {
			entries[i] = e
			return entries
		}
		if entries[i].tx < e.tx {
			entries = append(entries, acctEntry{})
			copy(entries[i+2:], entries[i+1:])
			entries[i+1] = e
			return entries
		}
	}
	return append([]acctEntry{e}, entries...)
}

func upsertSlot(entries []slotEntry, e slotEntry) []slotEntry {
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].tx == e.tx {
			entries[i] = e
			return entries
		}
		if entries[i].tx < e.tx {
			entries = append(entries, slotEntry{})
			copy(entries[i+2:], entries[i+1:])
			entries[i+1] = e
			return entries
		}
	}
	return append([]slotEntry{e}, entries...)
}

// Validate re-resolves every location in the read-set as the transaction
// at txIndex would read it now and reports whether each observation still
// carries the Version recorded at execution time. A false result means a
// lower-indexed transaction published (or withdrew) a conflicting write
// after this transaction read, so its execution is not serially
// equivalent and must be retried.
func (mv *MultiVersion) Validate(rs *ReadSet, txIndex int) bool {
	if rs == nil {
		return true
	}
	for addr, ver := range rs.accts {
		if _, now := mv.readAccount(addr, txIndex); now != ver {
			return false
		}
	}
	for k, ver := range rs.slots {
		if _, now := mv.readSlot(k, txIndex); now != ver {
			return false
		}
	}
	return true
}

// viewAcct is a view-local working copy of one account plus the values it
// had when first loaded (used to compute the net write-set).
type viewAcct struct {
	exists, contract         bool
	nonce                    uint64
	balance                  *big.Int // owned by the view
	origExists, origContract bool
	origNonce                uint64
	origBalance              *big.Int
}

type viewSlot struct {
	cur, orig types.Hash
}

// View gives one transaction execution an isolated, journaled window onto
// the multi-version memory. It implements the same mutation surface as
// *DB (the subset transaction execution uses) so the EVM layer can run
// unchanged against either. A View is not safe for concurrent use; each
// scheduler worker owns the views it creates.
type View struct {
	mv      *MultiVersion
	txIndex int
	accts   map[types.Address]*viewAcct
	slots   map[SlotKey]*viewSlot
	reads   ReadSet
	journal []func()
}

// NewView creates a fresh view for the transaction at txIndex. Each
// incarnation (re-execution) must use a new view.
func NewView(mv *MultiVersion, txIndex int) *View {
	return &View{
		mv:      mv,
		txIndex: txIndex,
		accts:   make(map[types.Address]*viewAcct, 8),
		slots:   make(map[SlotKey]*viewSlot, 8),
		reads: ReadSet{
			accts: make(map[types.Address]Version, 8),
			slots: make(map[SlotKey]Version, 8),
		},
	}
}

func (v *View) acct(addr types.Address) *viewAcct {
	if va, ok := v.accts[addr]; ok {
		return va
	}
	data, ver := v.mv.readAccount(addr, v.txIndex)
	v.reads.accts[addr] = ver
	bal := new(big.Int).Set(data.balanceOrZero())
	va := &viewAcct{
		exists: data.exists, contract: data.contract, nonce: data.nonce,
		balance:    bal,
		origExists: data.exists, origContract: data.contract, origNonce: data.nonce,
		origBalance: new(big.Int).Set(bal),
	}
	v.accts[addr] = va
	return va
}

// Exists reports whether the address has ever been touched.
func (v *View) Exists(addr types.Address) bool { return v.acct(addr).exists }

// Balance returns a copy of the account balance (zero for fresh accounts).
func (v *View) Balance(addr types.Address) *big.Int {
	return new(big.Int).Set(v.acct(addr).balance)
}

// touch marks the account as existing, mirroring DB.account's
// create-on-access journal entry.
func (v *View) touch(va *viewAcct) {
	if va.exists {
		return
	}
	va.exists = true
	v.journal = append(v.journal, func() { va.exists = false })
}

// AddBalance credits amount to addr.
func (v *View) AddBalance(addr types.Address, amount *big.Int) {
	va := v.acct(addr)
	v.touch(va)
	if amount == nil || amount.Sign() == 0 {
		return
	}
	prev := new(big.Int).Set(va.balance)
	va.balance.Add(va.balance, amount)
	v.journal = append(v.journal, func() { va.balance.Set(prev) })
}

// SubBalance debits amount from addr, failing if the balance is
// insufficient.
func (v *View) SubBalance(addr types.Address, amount *big.Int) error {
	if amount == nil || amount.Sign() == 0 {
		return nil
	}
	va := v.acct(addr)
	if va.balance.Cmp(amount) < 0 {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, addr, va.balance, amount)
	}
	v.touch(va)
	prev := new(big.Int).Set(va.balance)
	va.balance.Sub(va.balance, amount)
	v.journal = append(v.journal, func() { va.balance.Set(prev) })
	return nil
}

// Nonce returns the account nonce.
func (v *View) Nonce(addr types.Address) uint64 { return v.acct(addr).nonce }

// IncNonce increments the account nonce.
func (v *View) IncNonce(addr types.Address) {
	va := v.acct(addr)
	v.touch(va)
	prev := va.nonce
	va.nonce++
	v.journal = append(v.journal, func() { va.nonce = prev })
}

// IsContract reports whether addr is a contract account.
func (v *View) IsContract(addr types.Address) bool { return v.acct(addr).contract }

func (v *View) slot(k SlotKey) *viewSlot {
	if vs, ok := v.slots[k]; ok {
		return vs
	}
	val, ver := v.mv.readSlot(k, v.txIndex)
	v.reads.slots[k] = ver
	vs := &viewSlot{cur: val, orig: val}
	v.slots[k] = vs
	return vs
}

// GetState reads a storage word of a contract.
func (v *View) GetState(addr types.Address, slot types.Hash) types.Hash {
	return v.slot(SlotKey{Addr: addr, Slot: slot}).cur
}

// SetState writes a storage word and returns the previous value.
func (v *View) SetState(addr types.Address, slot types.Hash, value types.Hash) types.Hash {
	vs := v.slot(SlotKey{Addr: addr, Slot: slot})
	prev := vs.cur
	vs.cur = value
	v.journal = append(v.journal, func() { vs.cur = prev })
	return prev
}

// Snapshot returns an identifier that can later be passed to
// RevertToSnapshot to roll back every mutation made since.
func (v *View) Snapshot() int { return len(v.journal) }

// RevertToSnapshot undoes all mutations recorded after the snapshot was
// taken. Read-set entries are kept: even reverted reads were observed and
// could have changed the execution path, so they still gate validity.
func (v *View) RevertToSnapshot(id int) {
	if id < 0 || id > len(v.journal) {
		return
	}
	for i := len(v.journal) - 1; i >= id; i-- {
		v.journal[i]()
	}
	v.journal = v.journal[:id]
}

// Reads returns the locations this view observed. Valid until the view is
// reused.
func (v *View) Reads() *ReadSet { return &v.reads }

// Writes extracts the net write-set: every location whose final value
// differs from the value first loaded. Writes that were reverted (or
// overwritten back to the original value) produce no entry, matching the
// net effect a serial execution would have had on the DB.
func (v *View) Writes() *WriteSet {
	ws := &WriteSet{
		accts: make(map[types.Address]acctData, len(v.accts)),
		slots: make(map[SlotKey]types.Hash, len(v.slots)),
	}
	for addr, va := range v.accts {
		if va.exists == va.origExists && va.contract == va.origContract &&
			va.nonce == va.origNonce && va.balance.Cmp(va.origBalance) == 0 {
			continue
		}
		ws.accts[addr] = acctData{
			exists: va.exists, contract: va.contract, nonce: va.nonce,
			balance: new(big.Int).Set(va.balance),
		}
	}
	for k, vs := range v.slots {
		if vs.cur != vs.orig {
			ws.slots[k] = vs.cur
		}
	}
	return ws
}
