package state

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/rlp"
	"repro/internal/types"
)

// EncodeSnapshot serializes the world state deterministically: accounts
// and storage are emitted in sorted order, so two DBs with equal content
// produce byte-identical snapshots regardless of map iteration order or
// mutation history. The journal is NOT captured — snapshots are taken at
// block boundaries, where undo history is irrelevant.
//
// Layout (RLP):
//
//	[ accounts, storage ]
//	accounts := [ [addr, balance, nonce, contractFlag], … ]   sorted by addr
//	storage  := [ [addr, [ [slot, value], … ] ], … ]          sorted by addr, slot
func (db *DB) EncodeSnapshot() ([]byte, error) {
	addrs := make([]types.Address, 0, len(db.accounts))
	for addr := range db.accounts {
		addrs = append(addrs, addr)
	}
	sortAddrs(addrs)
	accounts := make([]any, 0, len(addrs))
	for _, addr := range addrs {
		acc := db.accounts[addr]
		flag := uint64(0)
		if acc.contract {
			flag = 1
		}
		accounts = append(accounts, []any{addr.Bytes(), acc.balance, acc.nonce, flag})
	}

	saddrs := make([]types.Address, 0, len(db.storage))
	for addr := range db.storage {
		saddrs = append(saddrs, addr)
	}
	sortAddrs(saddrs)
	storage := make([]any, 0, len(saddrs))
	for _, addr := range saddrs {
		words := db.storage[addr]
		slots := make([]types.Hash, 0, len(words))
		for slot := range words {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool {
			return bytes.Compare(slots[i][:], slots[j][:]) < 0
		})
		kvs := make([]any, 0, len(slots))
		for _, slot := range slots {
			val := words[slot]
			kvs = append(kvs, []any{slot.Bytes(), val.Bytes()})
		}
		storage = append(storage, []any{addr.Bytes(), kvs})
	}

	return rlp.EncodeList(accounts, storage)
}

func sortAddrs(addrs []types.Address) {
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
}

// DecodeSnapshot reconstructs a DB from an EncodeSnapshot blob. The
// returned DB has an empty journal (snapshot ids from before the
// snapshot are meaningless against it).
func DecodeSnapshot(b []byte) (*DB, error) {
	top, err := rlp.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("state: decode snapshot: %w", err)
	}
	if !top.IsList || len(top.List) != 2 {
		return nil, fmt.Errorf("state: snapshot is not a 2-element list")
	}
	db := New()

	accounts := top.List[0]
	if !accounts.IsList {
		return nil, fmt.Errorf("state: snapshot accounts is not a list")
	}
	for i, item := range accounts.List {
		if !item.IsList || len(item.List) != 4 {
			return nil, fmt.Errorf("state: snapshot account %d malformed", i)
		}
		if item.List[0].IsList || len(item.List[0].Bytes) != types.AddressLength {
			return nil, fmt.Errorf("state: snapshot account %d has bad address", i)
		}
		addr := types.BytesToAddress(item.List[0].Bytes)
		balance, err := item.List[1].BigInt()
		if err != nil {
			return nil, fmt.Errorf("state: snapshot account %d balance: %w", i, err)
		}
		nonce, err := item.List[2].Uint()
		if err != nil {
			return nil, fmt.Errorf("state: snapshot account %d nonce: %w", i, err)
		}
		flag, err := item.List[3].Uint()
		if err != nil {
			return nil, fmt.Errorf("state: snapshot account %d contract flag: %w", i, err)
		}
		db.accounts[addr] = &account{balance: balance, nonce: nonce, contract: flag == 1}
	}

	storage := top.List[1]
	if !storage.IsList {
		return nil, fmt.Errorf("state: snapshot storage is not a list")
	}
	for i, item := range storage.List {
		if !item.IsList || len(item.List) != 2 || !item.List[1].IsList {
			return nil, fmt.Errorf("state: snapshot storage entry %d malformed", i)
		}
		if item.List[0].IsList || len(item.List[0].Bytes) != types.AddressLength {
			return nil, fmt.Errorf("state: snapshot storage entry %d has bad address", i)
		}
		addr := types.BytesToAddress(item.List[0].Bytes)
		words := make(map[types.Hash]types.Hash, len(item.List[1].List))
		for j, kv := range item.List[1].List {
			if !kv.IsList || len(kv.List) != 2 || kv.List[0].IsList || kv.List[1].IsList {
				return nil, fmt.Errorf("state: snapshot storage entry %d word %d malformed", i, j)
			}
			if len(kv.List[0].Bytes) != types.HashLength || len(kv.List[1].Bytes) != types.HashLength {
				return nil, fmt.Errorf("state: snapshot storage entry %d word %d has bad width", i, j)
			}
			words[types.BytesToHash(kv.List[0].Bytes)] = types.BytesToHash(kv.List[1].Bytes)
		}
		db.storage[addr] = words
	}
	return db, nil
}
