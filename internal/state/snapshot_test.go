package state

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/types"
)

func addr(b byte) types.Address { return types.BytesToAddress([]byte{b}) }
func slot(b byte) types.Hash    { return types.BytesToHash([]byte{b}) }

func populated() *DB {
	db := New()
	db.AddBalance(addr(1), big.NewInt(1_000_000))
	db.AddBalance(addr(2), big.NewInt(42))
	db.IncNonce(addr(1))
	db.IncNonce(addr(1))
	db.MarkContract(addr(3))
	db.SetState(addr(3), slot(0), slot(7))
	db.SetState(addr(3), slot(5), types.Hash{}) // zero value still occupies a word
	db.SetState(addr(4), slot(9), slot(9))
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := populated()
	enc, err := db.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Balance(addr(1)).Cmp(big.NewInt(1_000_000)) != 0 {
		t.Errorf("balance(1) = %s", got.Balance(addr(1)))
	}
	if got.Nonce(addr(1)) != 2 {
		t.Errorf("nonce(1) = %d", got.Nonce(addr(1)))
	}
	if !got.IsContract(addr(3)) || got.IsContract(addr(2)) {
		t.Error("contract flags lost")
	}
	if got.GetState(addr(3), slot(0)) != slot(7) {
		t.Error("storage word lost")
	}
	if got.StorageWords(addr(3)) != 2 {
		t.Errorf("StorageWords(3) = %d, want 2 (zero-valued words count)", got.StorageWords(addr(3)))
	}
	if !got.Exists(addr(2)) {
		t.Error("touched account lost")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Two DBs with the same content but different construction order must
	// encode byte-identically, and re-encoding a decoded snapshot must be
	// a fixed point.
	a := populated()
	b := New()
	b.SetState(addr(4), slot(9), slot(9))
	b.MarkContract(addr(3))
	b.SetState(addr(3), slot(5), types.Hash{})
	b.SetState(addr(3), slot(0), slot(7))
	b.AddBalance(addr(2), big.NewInt(42))
	b.IncNonce(addr(1))
	b.AddBalance(addr(1), big.NewInt(1_000_000))
	b.IncNonce(addr(1))

	encA, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	encB, err := b.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encA, encB) {
		t.Error("equal states encoded differently")
	}
	dec, err := DecodeSnapshot(encA)
	if err != nil {
		t.Fatal(err)
	}
	encC, err := dec.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encA, encC) {
		t.Error("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not rlp")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("empty snapshot accepted")
	}
}
