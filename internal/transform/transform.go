// Package transform implements the SMACS adoption tool of Fig. 4: it turns
// a legacy contract into an equivalent SMACS-enabled contract by inserting
// the token-verification preamble (Alg. 1) in front of every public and
// external method. Internal and private methods are copied unchanged, and
// the fallback — which cannot carry tokens — is left as-is, matching the
// paper's transformation where only externally callable methods gain the
// tokens argument.
package transform

import (
	"repro/internal/core"
	"repro/internal/evm"
)

// Options tweaks the transformation.
type Options struct {
	// Skip lists method names to leave unprotected (e.g. free view
	// methods the owner deliberately exposes).
	Skip []string
	// Suffix is appended to the contract name; defaults to " (SMACS)".
	Suffix string
}

// Enable returns a SMACS-enabled version of the legacy contract whose
// dispatchable methods assert verifier.Verify before running the original
// body. The original contract is not modified. If the verifier carries a
// one-time-token bitmap, the new contract pre-allocates its storage words
// (charged at deployment — Tab. IV).
//
// Following Fig. 4's split (public h → public h(token) + private _h),
// only *external* dispatch runs the verification preamble; internal calls
// between the contract's own methods (evm.Call.Invoke) reach the original
// bodies directly, so a single token authorizes an entry point regardless
// of how many public methods it uses internally.
func Enable(legacy *evm.Contract, verifier *core.Verifier, opts ...Options) *evm.Contract {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.Suffix == "" {
		opt.Suffix = " (SMACS)"
	}
	skip := make(map[string]bool, len(opt.Skip))
	for _, name := range opt.Skip {
		skip[name] = true
	}

	enabled := evm.NewContract(legacy.Name() + opt.Suffix)
	for _, m := range legacy.Methods() {
		copied := *m
		enabled.MustAddMethod(copied)
		if m.Visibility.Dispatchable() && !skip[m.Name] {
			body := m.Handler
			err := enabled.OverrideDispatch(m.Name, func(call *evm.Call) ([]any, error) {
				// assert(verify(token)) — Fig. 4.
				if err := verifier.Verify(call); err != nil {
					return nil, err
				}
				return body(call)
			})
			if err != nil {
				panic(err) // unreachable: the method was just added
			}
		}
	}
	if fb := legacy.Fallback(); fb != nil {
		enabled.SetFallback(fb)
	}
	words := legacy.InitialStorageWords()
	if bm := verifier.Bitmap(); bm != nil {
		words += bm.StorageWords()
	}
	enabled.SetInitialStorageWords(words)
	return enabled
}
