package transform_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/wallet"
)

var tsKey = secp256k1.PrivateKeyFromSeed([]byte("transform ts"))

func TestEnableProtectsAllDispatchableMethods(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	verifier := core.NewVerifier(tsKey.Address())
	enabled := transform.Enable(contracts.NewSimpleStorage(), verifier)
	addr := env.Deploy(t, enabled)

	// Without a token every method reverts.
	for _, method := range []string{"set", "get"} {
		args := []any{}
		if method == "set" {
			args = append(args, uint64(1))
		}
		r := env.CallExpectRevert(t, 1, addr, method, wallet.CallOpts{}, args...)
		if !errors.Is(r.Err, core.ErrNoToken) {
			t.Errorf("%s err = %v, want ErrNoToken", method, r.Err)
		}
	}

	// With a super token the contract behaves like the legacy one (Fig. 4
	// equivalence).
	tk, err := core.SignToken(tsKey, core.SuperType, env.Clock.Now().Add(time.Hour),
		core.NotOneTime, core.Binding{Origin: env.Wallets[1].Address(), Contract: addr})
	if err != nil {
		t.Fatal(err)
	}
	opts := wallet.WithTokens(wallet.TokenEntry{Contract: addr, Token: tk})
	env.MustCall(t, 1, addr, "set", opts, uint64(77))
	r := env.MustCall(t, 1, addr, "get", opts)
	if v := r.Return[0].(uint64); v != 77 {
		t.Errorf("get = %d, want 77", v)
	}
}

func TestEnableSkipOption(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	verifier := core.NewVerifier(tsKey.Address())
	enabled := transform.Enable(contracts.NewSimpleStorage(), verifier,
		transform.Options{Skip: []string{"get"}})
	addr := env.Deploy(t, enabled)

	// get is deliberately left open; set is protected.
	env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	r := env.CallExpectRevert(t, 1, addr, "set", wallet.CallOpts{}, uint64(1))
	if !errors.Is(r.Err, core.ErrNoToken) {
		t.Errorf("set err = %v, want ErrNoToken", r.Err)
	}
}

func TestEnableNamesAndBitmapStorage(t *testing.T) {
	verifier := core.NewVerifier(tsKey.Address())
	bm, err := core.NewBitmap(1024, 1000)
	if err != nil {
		t.Fatal(err)
	}
	verifier.WithBitmap(bm)
	legacy := contracts.NewSimpleStorage()
	enabled := transform.Enable(legacy, verifier)

	if enabled.Name() != "SimpleStorage (SMACS)" {
		t.Errorf("name = %q", enabled.Name())
	}
	if got := enabled.InitialStorageWords(); got != bm.StorageWords() {
		t.Errorf("initial storage words = %d, want %d", got, bm.StorageWords())
	}
	// The legacy contract is untouched.
	if legacy.InitialStorageWords() != 0 {
		t.Error("transform mutated the legacy contract")
	}
}

func TestEnablePreservesFallback(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	verifier := core.NewVerifier(tsKey.Address())
	bank := contracts.NewBank()
	attacker := contracts.NewAttacker(types20(t, env), true)
	_ = bank
	// Just verify the fallback pointer survives the transform.
	enabled := transform.Enable(attacker, verifier)
	if enabled.Fallback() == nil {
		t.Error("fallback lost in transformation")
	}
}

func types20(t *testing.T, env *evmtest.Env) (addr [20]byte) {
	t.Helper()
	copy(addr[:], env.Wallets[0].Address().Bytes())
	return addr
}
