package transform_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/transform"
	"repro/internal/wallet"
)

// newFig4Contract mirrors the legacy contract of Fig. 4: external f() calls
// public h() internally; h() writes state.
func newFig4Contract() *evm.Contract {
	c := evm.NewContract("Fig4")
	c.MustAddMethod(evm.Method{
		Name:       "f",
		Visibility: evm.External,
		Handler: func(call *evm.Call) ([]any, error) {
			// call h() — an *internal* call in Fig. 4's legacy contract.
			return call.Invoke("h")
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "h",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			return []any{v + 1}, call.StoreUint(gas.CatApp, evm.SlotN(0), v+1)
		},
	})
	return c
}

// TestFig4InternalCallSplit verifies the exact semantics of the Fig. 4
// transformation: the public/external entry points verify a token, but
// internal calls between them reach the original bodies — one method token
// for f() suffices even though f() uses h() internally, and the token
// bound to f cannot be used to call h directly.
func TestFig4InternalCallSplit(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	verifier := core.NewVerifier(tsKey.Address())
	enabled := transform.Enable(newFig4Contract(), verifier)
	addr := env.Deploy(t, enabled)
	client := env.Wallets[1]

	issueMethodToken := func(method string) wallet.CallOpts {
		req := &core.Request{
			Type:     core.MethodType,
			Contract: addr,
			Sender:   client.Address(),
			Method:   method + "()",
		}
		binding, err := req.Binding()
		if err != nil {
			t.Fatal(err)
		}
		tk, err := core.SignToken(tsKey, core.MethodType,
			env.Clock.Now().Add(time.Hour), core.NotOneTime, binding)
		if err != nil {
			t.Fatal(err)
		}
		return wallet.WithTokens(wallet.TokenEntry{Contract: addr, Token: tk})
	}

	// A token for f authorizes f — including its internal use of h. Were
	// the internal call re-verified, the f-bound method token would fail
	// against h's msg.sig.
	fOpts := issueMethodToken("f")
	r := env.MustCall(t, 1, addr, "f", fOpts)
	if got := r.Return[0].(uint64); got != 1 {
		t.Errorf("f() returned %d, want 1", got)
	}
	// Exactly one verification ran (one token, ~108-116k verify gas).
	if v := r.GasByCategory[gas.CatVerify]; v > 120_000 {
		t.Errorf("verify gas = %d: the internal h() call was re-verified", v)
	}

	// The f token does not open h externally.
	rr := env.CallExpectRevert(t, 1, addr, "h", fOpts)
	if !errors.Is(rr.Err, core.ErrBadTokenSig) {
		t.Errorf("h with f's token: %v, want ErrBadTokenSig", rr.Err)
	}
	// And h remains protected on its own: no token, no entry.
	rr = env.CallExpectRevert(t, 1, addr, "h", wallet.CallOpts{})
	if !errors.Is(rr.Err, core.ErrNoToken) {
		t.Errorf("bare h: %v, want ErrNoToken", rr.Err)
	}
	// With its own token, h works externally.
	env.MustCall(t, 1, addr, "h", issueMethodToken("h"))
}
