package secp256k1

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/keccak"
	"repro/internal/types"
)

// PublicKey is a point on the secp256k1 curve.
type PublicKey struct {
	// X and Y are the affine coordinates of the public point.
	X, Y *big.Int
}

// PrivateKey is a secp256k1 private scalar together with its public key.
type PrivateKey struct {
	// D is the private scalar in [1, n-1].
	D *big.Int
	// Pub is the corresponding public key D·G.
	Pub PublicKey
}

// ErrInvalidKey is returned for scalars outside [1, n-1] or points off the
// curve.
var ErrInvalidKey = errors.New("secp256k1: invalid key")

// GenerateKey creates a new random private key from rng (crypto/rand.Reader
// if rng is nil).
func GenerateKey(rng io.Reader) (*PrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	for {
		var buf [32]byte
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return nil, fmt.Errorf("generate key: %w", err)
		}
		d := new(big.Int).SetBytes(buf[:])
		d.Mod(d, curveN)
		if d.Sign() == 0 {
			continue
		}
		return NewPrivateKey(d)
	}
}

// NewPrivateKey builds a private key from the scalar d, validating its
// range and deriving the public point.
func NewPrivateKey(d *big.Int) (*PrivateKey, error) {
	if d == nil || d.Sign() <= 0 || d.Cmp(curveN) >= 0 {
		return nil, ErrInvalidKey
	}
	p := toAffine(scalarBaseMult(d))
	return &PrivateKey{
		D:   new(big.Int).Set(d),
		Pub: PublicKey{X: p.x, Y: p.y},
	}, nil
}

// PrivateKeyFromSeed derives a deterministic private key from an arbitrary
// seed by hashing it onto the scalar field. It is intended for tests,
// examples, and benchmarks where reproducible keys matter.
func PrivateKeyFromSeed(seed []byte) *PrivateKey {
	counter := byte(0)
	for {
		h := keccak.Sum256Concat(seed, []byte{counter})
		d := new(big.Int).SetBytes(h[:])
		d.Mod(d, curveN)
		if d.Sign() != 0 {
			key, err := NewPrivateKey(d)
			if err == nil {
				return key
			}
		}
		counter++
	}
}

// Valid reports whether the public key is a valid curve point (and not the
// point at infinity).
func (p PublicKey) Valid() bool { return isOnCurve(p.X, p.Y) }

// Bytes returns the 64-byte uncompressed encoding (X ‖ Y, each 32 bytes,
// without the 0x04 prefix), matching what Ethereum hashes for address
// derivation.
func (p PublicKey) Bytes() []byte {
	out := make([]byte, 64)
	p.X.FillBytes(out[:32])
	p.Y.FillBytes(out[32:])
	return out
}

// ParsePublicKey parses a 64-byte uncompressed public key.
func ParsePublicKey(b []byte) (PublicKey, error) {
	if len(b) != 64 {
		return PublicKey{}, fmt.Errorf("%w: public key must be 64 bytes, got %d", ErrInvalidKey, len(b))
	}
	pub := PublicKey{
		X: new(big.Int).SetBytes(b[:32]),
		Y: new(big.Int).SetBytes(b[32:]),
	}
	if !pub.Valid() {
		return PublicKey{}, ErrInvalidKey
	}
	return pub, nil
}

// Address derives the Ethereum address of the key: the low 20 bytes of
// keccak256(X ‖ Y).
func (p PublicKey) Address() types.Address {
	h := keccak.Sum256(p.Bytes())
	return types.BytesToAddress(h[12:])
}

// Address is a convenience for the address of the key's public half.
func (k *PrivateKey) Address() types.Address { return k.Pub.Address() }
