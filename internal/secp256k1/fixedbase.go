package secp256k1

import (
	"math/big"
	"sync"
)

// Fixed-base scalar multiplication k·G for the signing hot path.
//
// Signing computes one k·G per signature (the ephemeral point R). The
// generator never changes, so the multiplication is evaluated against a
// precomputed comb table: 64 blocks of 4-bit windows,
//
//	table[i][d-1] = d · 2^(4i) · G     for d in 1..15,
//
// turning k·G into at most 64 mixed additions with zero doublings — the
// scalar is consumed one nibble at a time and every window's contribution
// is a single table lookup. The 960-point table is built once (lazily) and
// normalized to affine with one batched inversion.
//
// The naive double-and-add ladder (scalarBaseMult) remains the reference;
// the comb is gated behind SetFastMult together with the wNAF/GLV path and
// differential tests pin the two bit-identical.

const (
	combWindow = 4                // bits per window
	combBlocks = 256 / combWindow // 64 windows cover a 256-bit scalar
)

var (
	combOnce  sync.Once
	combTable [combBlocks][1<<combWindow - 1]affinePoint
)

func initCombTable() {
	// Build every block's odd and even multiples in Jacobian coordinates,
	// then flatten into one batched affine normalization.
	jac := make([]jacobianPoint, 0, combBlocks*(1<<combWindow-1))
	base := fromAffine(affinePoint{x: new(big.Int).Set(curveGx), y: new(big.Int).Set(curveGy)})
	for i := 0; i < combBlocks; i++ {
		// block[d-1] = d · base
		jac = append(jac, base)
		prev := base
		for d := 2; d < 1<<combWindow; d++ {
			prev = addJacobian(prev, base)
			jac = append(jac, prev)
		}
		// Next block base: 2^combWindow · base.
		for b := 0; b < combWindow; b++ {
			base = doubleJacobian(base)
		}
	}
	flat := batchToAffine(jac)
	for i := 0; i < combBlocks; i++ {
		copy(combTable[i][:], flat[i*(1<<combWindow-1):(i+1)*(1<<combWindow-1)])
	}
}

// scalarBaseMultComb computes k·G (k reduced mod n) via the fixed-base
// comb table.
func scalarBaseMultComb(k *big.Int) jacobianPoint {
	combOnce.Do(initCombTable)
	if k.Sign() == 0 {
		return newInfinity()
	}
	kk := k
	if k.Sign() < 0 || k.BitLen() > 256 {
		kk = new(big.Int).Mod(k, curveN)
		if kk.Sign() == 0 {
			return newInfinity()
		}
	}
	var kb [32]byte
	kk.FillBytes(kb[:])
	s := newLadderScratch()
	for i := 0; i < combBlocks; i++ {
		b := kb[31-i/2]
		nib := b & 0x0f
		if i%2 == 1 {
			nib = b >> 4
		}
		if nib != 0 {
			s.addMixedInPlace(combTable[i][nib-1], false)
		}
	}
	if s.isInfinity() {
		return newInfinity()
	}
	return jacobianPoint{x: s.x, y: s.y, z: s.z}
}

// scalarBaseMultG dispatches between the comb table and the naive
// reference ladder according to SetFastMult.
func scalarBaseMultG(k *big.Int) jacobianPoint {
	if fastMultOn.Load() {
		return scalarBaseMultComb(k)
	}
	return scalarBaseMult(k)
}
