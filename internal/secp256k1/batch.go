package secp256k1

import (
	"crypto/rand"
	"math/big"

	"repro/internal/types"
)

// Batch signature verification and recovery.
//
// VerifyBatch folds n signature checks into one multi-scalar
// multiplication: with random 128-bit coefficients a_i it tests
//
//	Σ a_i·(u1_i·G + u2_i·Q_i − R_i) = ∞,
//
// where R_i is the ephemeral point reconstructed from (r_i, v_i) exactly
// as in public-key recovery. A forged signature makes the sum land on ∞
// with probability ≤ 2⁻¹²⁸ per random draw, and the whole test costs one
// Straus ladder (shared doublings across every term) instead of n
// independent double-scalar multiplications. When the combined check
// fails — or an R_i cannot be reconstructed, e.g. a foreign signature
// with a mismatched recovery id that classic verification would still
// accept — the affected items fall back to per-item Verify, so the
// result is always element-wise identical to calling Verify n times.
//
// RecoverAddressBatch amortizes the two modular inversions of per-item
// recovery (r⁻¹ mod n and the final Jacobian→affine normalization)
// across the batch with Montgomery's trick; the per-item ladders remain,
// so callers that want multicore scaling should additionally shard
// batches across workers.

// BatchVerifyItem is one (public key, digest, signature) triple for
// VerifyBatch.
type BatchVerifyItem struct {
	Pub    PublicKey
	Digest [32]byte
	Sig    Signature
}

// batchCoeffBits sizes the random coefficients: 128 bits keeps the
// soundness error negligible while halving the wNAF length of the
// aggregated R and Q scalars' random part.
const batchCoeffBits = 128

// multiScalarMult evaluates gScalar·G + Σ scalars[i]·points[i] with one
// interleaved Straus ladder: every scalar is GLV-split and wNAF-encoded,
// all per-point odd-multiple tables are normalized to affine with a
// single batched inversion, and one shared run of doublings serves every
// term.
func multiScalarMult(gScalar *big.Int, points []affinePoint, scalars []*big.Int) jacobianPoint {
	fastBaseOnce.Do(initFastBaseTables)
	terms := make([]mulTerm, 0, 2+2*len(points))
	if gScalar != nil && gScalar.Sign() != 0 {
		k1, k2 := splitScalar(gScalar)
		terms = append(terms,
			newMulTerm(k1, baseWindow, baseOddG),
			newMulTerm(k2, baseWindow, baseOddLamG))
	}

	// Build every point's odd-multiple table in Jacobian form first, then
	// flatten into one batched affine normalization.
	const tblLen = 1 << (pointWindow - 2)
	live := make([]int, 0, len(points))
	jac := make([]jacobianPoint, 0, len(points)*tblLen)
	for i, p := range points {
		if p.isInfinity() || scalars[i] == nil || scalars[i].Sign() == 0 {
			continue
		}
		live = append(live, i)
		jac = append(jac, oddMultiples(p, tblLen)...)
	}
	flat := batchToAffine(jac)
	for j, i := range live {
		tbl := flat[j*tblLen : (j+1)*tblLen]
		k1, k2 := splitScalar(scalars[i])
		terms = append(terms,
			newMulTerm(k1, pointWindow, tbl),
			newMulTerm(k2, pointWindow, phiTable(tbl)))
	}
	return shamirLadder(terms)
}

// recoverEphemeralPoint reconstructs the signing-time ephemeral point R
// from the signature's r scalar and recovery id.
func recoverEphemeralPoint(sig Signature) (affinePoint, bool) {
	x := new(big.Int).Set(sig.R)
	if sig.V&2 != 0 {
		x.Add(x, curveN)
	}
	if x.Cmp(curveP) >= 0 {
		return affinePoint{}, false
	}
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	y2.Add(y2, curveB)
	y2.Mod(y2, curveP)
	y := new(big.Int).ModSqrt(y2, curveP)
	if y == nil {
		return affinePoint{}, false
	}
	if y.Bit(0) != uint(sig.V&1) {
		y.Sub(curveP, y)
	}
	if !isOnCurve(x, y) {
		return affinePoint{}, false
	}
	return affinePoint{x: x, y: y}, true
}

// randomBatchCoeff draws a uniform coefficient in [1, 2^batchCoeffBits).
func randomBatchCoeff() (*big.Int, error) {
	max := new(big.Int).Lsh(big.NewInt(1), batchCoeffBits)
	max.Sub(max, big.NewInt(1))
	c, err := rand.Int(rand.Reader, max)
	if err != nil {
		return nil, err
	}
	return c.Add(c, big.NewInt(1)), nil
}

// VerifyBatch verifies many signatures at once. The i-th result is true
// exactly when Verify(items[i].Pub, items[i].Digest, items[i].Sig) is —
// the batch path is an optimization, never a semantic change. Batches of
// size ≤ 1 and items the combined check cannot cover degrade to per-item
// verification transparently.
func VerifyBatch(items []BatchVerifyItem) []bool {
	ok := make([]bool, len(items))
	if len(items) == 0 {
		return ok
	}
	if len(items) == 1 || !fastMultOn.Load() {
		for i, it := range items {
			ok[i] = Verify(it.Pub, it.Digest, it.Sig)
		}
		return ok
	}

	// Split the batch: items that fail cheap scalar/key validation are
	// definitively false; items whose R cannot be reconstructed need the
	// per-item path; the rest join the combined check.
	type member struct {
		idx    int
		r      affinePoint
		u1, u2 *big.Int
	}
	var fallback []int
	members := make([]member, 0, len(items))
	sInv := make([]*big.Int, 0, len(items))
	for i, it := range items {
		if !it.Pub.Valid() || it.Sig.validateScalars() != nil {
			continue // stays false, matching Verify
		}
		r, reconstructed := recoverEphemeralPoint(it.Sig)
		if !reconstructed {
			fallback = append(fallback, i)
			continue
		}
		members = append(members, member{idx: i, r: r})
		sInv = append(sInv, new(big.Int).Set(items[i].Sig.S))
	}
	if !batchModInverse(sInv, curveN) {
		// Cannot happen for validated scalars; defensive fallback.
		for i, it := range items {
			ok[i] = Verify(it.Pub, it.Digest, it.Sig)
		}
		return ok
	}
	for j := range members {
		it := items[members[j].idx]
		z := hashToInt(it.Digest)
		members[j].u1 = z.Mul(z, sInv[j]).Mod(z, curveN)
		u2 := new(big.Int).Mul(it.Sig.R, sInv[j])
		members[j].u2 = u2.Mod(u2, curveN)
	}

	combinedOK := false
	if len(members) > 0 {
		gScalar := new(big.Int)
		points := make([]affinePoint, 0, 2*len(members))
		scalars := make([]*big.Int, 0, 2*len(members))
		randFailed := false
		for j := range members {
			a := big.NewInt(1)
			if j > 0 { // a_0 = 1: one coefficient is free
				var err error
				if a, err = randomBatchCoeff(); err != nil {
					randFailed = true
					break
				}
			}
			it := items[members[j].idx]
			au1 := new(big.Int).Mul(a, members[j].u1)
			gScalar.Add(gScalar, au1.Mod(au1, curveN))
			au2 := new(big.Int).Mul(a, members[j].u2)
			points = append(points, affinePoint{x: it.Pub.X, y: it.Pub.Y})
			scalars = append(scalars, au2.Mod(au2, curveN))
			negA := new(big.Int).Sub(curveN, a.Mod(a, curveN))
			points = append(points, members[j].r)
			scalars = append(scalars, negA.Mod(negA, curveN))
		}
		if !randFailed {
			gScalar.Mod(gScalar, curveN)
			combinedOK = multiScalarMult(gScalar, points, scalars).isInfinity()
		}
	}
	if combinedOK {
		for _, m := range members {
			ok[m.idx] = true
		}
	} else {
		// At least one member is bad (or randomness was unavailable):
		// locate the survivors individually.
		for _, m := range members {
			it := items[m.idx]
			ok[m.idx] = Verify(it.Pub, it.Digest, it.Sig)
		}
	}
	for _, i := range fallback {
		it := items[i]
		ok[i] = Verify(it.Pub, it.Digest, it.Sig)
	}
	return ok
}

// batchModInverse replaces every element of xs with its inverse mod m
// using Montgomery's trick: one ModInverse plus 3(n−1) multiplications.
// Returns false (leaving xs unspecified) if any element is not
// invertible.
func batchModInverse(xs []*big.Int, m *big.Int) bool {
	if len(xs) == 0 {
		return true
	}
	prefix := make([]*big.Int, len(xs))
	acc := big.NewInt(1)
	for i, x := range xs {
		prefix[i] = new(big.Int).Set(acc)
		acc.Mul(acc, x)
		acc.Mod(acc, m)
	}
	inv := new(big.Int).ModInverse(acc, m)
	if inv == nil {
		return false
	}
	for i := len(xs) - 1; i >= 0; i-- {
		x := new(big.Int).Mul(inv, prefix[i])
		inv.Mul(inv, xs[i])
		inv.Mod(inv, m)
		xs[i].Set(x.Mod(x, m))
	}
	return true
}

// RecoverAddressBatch recovers the signer address of every
// (digest, signature) pair. The i-th address/error pair matches what
// RecoverAddress(digests[i], sigs[i]) returns; a failed item never
// affects its neighbours. The two modular inversions of per-item
// recovery (r⁻¹ and the affine normalization of the recovered point) are
// amortized across the batch with Montgomery's trick. digests and sigs
// must have equal length.
func RecoverAddressBatch(digests [][32]byte, sigs []Signature) ([]types.Address, []error) {
	if len(digests) != len(sigs) {
		panic("secp256k1: RecoverAddressBatch length mismatch")
	}
	addrs := make([]types.Address, len(digests))
	errs := make([]error, len(digests))
	if len(digests) == 0 {
		return addrs, errs
	}

	// Phase 1: validate and reconstruct each ephemeral point.
	type member struct {
		idx int
		r   affinePoint
	}
	members := make([]member, 0, len(digests))
	rInv := make([]*big.Int, 0, len(digests))
	for i := range digests {
		if err := sigs[i].validateScalars(); err != nil {
			errs[i] = err
			continue
		}
		r, reconstructed := recoverEphemeralPoint(sigs[i])
		if !reconstructed {
			errs[i] = ErrRecoveryFailed
			continue
		}
		members = append(members, member{idx: i, r: r})
		rInv = append(rInv, new(big.Int).Set(sigs[i].R))
	}

	// Phase 2: amortized r⁻¹ mod n for every member.
	if !batchModInverse(rInv, curveN) {
		// Impossible for validated scalars (n is prime); defensive.
		for i := range digests {
			addrs[i], errs[i] = RecoverAddress(digests[i], sigs[i])
		}
		return addrs, errs
	}

	// Phase 3: per-item ladders Q = (−z·r⁻¹)·G + (s·r⁻¹)·R, batching the
	// final affine normalization.
	qs := make([]jacobianPoint, len(members))
	for j, m := range members {
		z := hashToInt(digests[m.idx])
		u1 := z.Mul(z, rInv[j])
		u1.Neg(u1)
		u1.Mod(u1, curveN)
		u2 := new(big.Int).Mul(sigs[m.idx].S, rInv[j])
		u2.Mod(u2, curveN)
		qs[j] = doubleScalarMult(u1, m.r, u2)
	}
	flat := batchToAffine(qs)
	for j, m := range members {
		if qs[j].isInfinity() {
			errs[m.idx] = ErrRecoveryFailed
			continue
		}
		pub := PublicKey{X: flat[j].x, Y: flat[j].y}
		if !pub.Valid() {
			errs[m.idx] = ErrRecoveryFailed
			continue
		}
		addrs[m.idx] = pub.Address()
	}
	return addrs, errs
}
