// Package secp256k1 implements the secp256k1 elliptic curve and the
// recoverable ECDSA signature scheme used by Ethereum: deterministic
// (RFC 6979) nonces, low-s normalization, 65-byte r‖s‖v signatures, and
// public-key recovery (ecrecover). The implementation is pure Go on top of
// math/big; a precomputed window table accelerates base-point multiplication
// so that token issuance (signing) is fast enough for throughput benchmarks.
package secp256k1

import (
	"math/big"
	"sync"
)

// Curve parameters for secp256k1: y² = x³ + 7 over F_p.
var (
	curveP  = mustBig("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
	curveN  = mustBig("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
	curveGx = mustBig("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
	curveGy = mustBig("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
	curveB  = big.NewInt(7)
	halfN   = new(big.Int).Rsh(curveN, 1)
)

func mustBig(hex string) *big.Int {
	v, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("secp256k1: bad curve constant " + hex)
	}
	return v
}

// jacobianPoint is a point in Jacobian projective coordinates
// (X/Z², Y/Z³). Z == 0 encodes the point at infinity.
type jacobianPoint struct {
	x, y, z *big.Int
}

// affinePoint is a point in affine coordinates. The zero value (nil
// coordinates) encodes the point at infinity.
type affinePoint struct {
	x, y *big.Int
}

func (p affinePoint) isInfinity() bool { return p.x == nil }

func newInfinity() jacobianPoint {
	return jacobianPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
}

func (p jacobianPoint) isInfinity() bool { return p.z.Sign() == 0 }

func fromAffine(p affinePoint) jacobianPoint {
	if p.isInfinity() {
		return newInfinity()
	}
	return jacobianPoint{x: new(big.Int).Set(p.x), y: new(big.Int).Set(p.y), z: big.NewInt(1)}
}

func toAffine(p jacobianPoint) affinePoint {
	if p.isInfinity() {
		return affinePoint{}
	}
	zInv := new(big.Int).ModInverse(p.z, curveP)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, curveP)
	x := new(big.Int).Mul(p.x, zInv2)
	x.Mod(x, curveP)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, curveP)
	y := new(big.Int).Mul(p.y, zInv3)
	y.Mod(y, curveP)
	return affinePoint{x: x, y: y}
}

func modP(v *big.Int) *big.Int { return v.Mod(v, curveP) }

// doubleJacobian doubles p using the a=0 doubling formulas.
func doubleJacobian(p jacobianPoint) jacobianPoint {
	if p.isInfinity() || p.y.Sign() == 0 {
		return newInfinity()
	}
	a := new(big.Int).Mul(p.x, p.x) // X²
	modP(a)
	b := new(big.Int).Mul(p.y, p.y) // Y²
	modP(b)
	c := new(big.Int).Mul(b, b) // Y⁴
	modP(c)

	d := new(big.Int).Add(p.x, b) // (X+Y²)² - X² - Y⁴
	d.Mul(d, d)
	modP(d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Lsh(d, 1) // ×2
	modP(d)

	e := new(big.Int).Lsh(a, 1) // 3X²
	e.Add(e, a)
	modP(e)

	x3 := new(big.Int).Mul(e, e)
	modP(x3)
	x3.Sub(x3, new(big.Int).Lsh(d, 1))
	modP(x3)

	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	modP(y3)
	c.Lsh(c, 3) // 8Y⁴
	y3.Sub(y3, c)
	modP(y3)

	z3 := new(big.Int).Mul(p.y, p.z)
	z3.Lsh(z3, 1)
	modP(z3)

	return jacobianPoint{x: x3, y: y3, z: z3}
}

// addJacobian computes p + q for general Jacobian points.
func addJacobian(p, q jacobianPoint) jacobianPoint {
	if p.isInfinity() {
		return q
	}
	if q.isInfinity() {
		return p
	}
	z1z1 := new(big.Int).Mul(p.z, p.z)
	modP(z1z1)
	z2z2 := new(big.Int).Mul(q.z, q.z)
	modP(z2z2)
	u1 := new(big.Int).Mul(p.x, z2z2)
	modP(u1)
	u2 := new(big.Int).Mul(q.x, z1z1)
	modP(u2)
	s1 := new(big.Int).Mul(p.y, z2z2)
	s1.Mul(s1, q.z)
	modP(s1)
	s2 := new(big.Int).Mul(q.y, z1z1)
	s2.Mul(s2, p.z)
	modP(s2)

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, curveP)
	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, curveP)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return doubleJacobian(p)
		}
		return newInfinity()
	}

	h2 := new(big.Int).Mul(h, h)
	modP(h2)
	h3 := new(big.Int).Mul(h2, h)
	modP(h3)
	u1h2 := new(big.Int).Mul(u1, h2)
	modP(u1h2)

	x3 := new(big.Int).Mul(r, r)
	modP(x3)
	x3.Sub(x3, h3)
	x3.Sub(x3, new(big.Int).Lsh(u1h2, 1))
	x3.Mod(x3, curveP)

	y3 := new(big.Int).Sub(u1h2, x3)
	y3.Mul(y3, r)
	modP(y3)
	s1h3 := new(big.Int).Mul(s1, h3)
	modP(s1h3)
	y3.Sub(y3, s1h3)
	y3.Mod(y3, curveP)

	z3 := new(big.Int).Mul(p.z, q.z)
	modP(z3)
	z3.Mul(z3, h)
	modP(z3)

	return jacobianPoint{x: x3, y: y3, z: z3}
}

// addMixed computes p + q where q is affine (Z = 1), using the dedicated
// mixed-addition formulas (≈ 8M + 3S instead of 12M + 4S for the general
// addition); it serves the base-point comb of scalarBaseMult and the table
// precomputation. The wNAF ladder of fastmult.go carries its own in-place
// variant of the same formulas (ladderScratch.addMixedInPlace) — keep the
// two in sync when touching either.
func addMixed(p jacobianPoint, q affinePoint) jacobianPoint {
	if q.isInfinity() {
		return p
	}
	if p.isInfinity() {
		return fromAffine(q)
	}
	z1z1 := new(big.Int).Mul(p.z, p.z)
	modP(z1z1)
	u2 := new(big.Int).Mul(q.x, z1z1)
	modP(u2)
	s2 := new(big.Int).Mul(q.y, p.z)
	s2.Mul(s2, z1z1)
	modP(s2)

	h := new(big.Int).Sub(u2, p.x)
	h.Mod(h, curveP)
	r := new(big.Int).Sub(s2, p.y)
	r.Mod(r, curveP)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return doubleJacobian(p)
		}
		return newInfinity()
	}

	h2 := new(big.Int).Mul(h, h)
	modP(h2)
	h3 := new(big.Int).Mul(h2, h)
	modP(h3)
	v := new(big.Int).Mul(p.x, h2)
	modP(v)

	x3 := new(big.Int).Mul(r, r)
	modP(x3)
	x3.Sub(x3, h3)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	x3.Mod(x3, curveP)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	modP(y3)
	y1h3 := new(big.Int).Mul(p.y, h3)
	modP(y1h3)
	y3.Sub(y3, y1h3)
	y3.Mod(y3, curveP)

	z3 := new(big.Int).Mul(p.z, h)
	modP(z3)

	return jacobianPoint{x: x3, y: y3, z: z3}
}

// scalarMult computes k·P for an affine point P using a simple left-to-right
// double-and-add ladder. k is reduced mod the group order by the callers.
func scalarMult(p affinePoint, k *big.Int) jacobianPoint {
	acc := newInfinity()
	jp := fromAffine(p)
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = doubleJacobian(acc)
		if k.Bit(i) == 1 {
			acc = addJacobian(acc, jp)
		}
	}
	return acc
}

// baseTable holds 4-bit window multiples of the generator:
// baseTable[w][d] = d · 16^w · G for d in 1..15. The table is built lazily
// once and then shared; base-point multiplication becomes 64 mixed
// additions.
var (
	baseTableOnce sync.Once
	baseTable     [64][16]affinePoint
)

func initBaseTable() {
	base := affinePoint{x: new(big.Int).Set(curveGx), y: new(big.Int).Set(curveGy)}
	for w := 0; w < 64; w++ {
		acc := fromAffine(base)
		baseTable[w][1] = base
		for d := 2; d < 16; d++ {
			acc = addMixed(acc, base)
			baseTable[w][d] = toAffine(acc)
		}
		// Next window base: 16·(16^w·G) = table[w][15] + table[w][1].
		next := addMixed(fromAffine(baseTable[w][15]), base)
		base = toAffine(next)
	}
}

// scalarBaseMult computes k·G using the precomputed window table.
func scalarBaseMult(k *big.Int) jacobianPoint {
	baseTableOnce.Do(initBaseTable)
	var kb [32]byte
	k.FillBytes(kb[:])
	acc := newInfinity()
	for w := 0; w < 64; w++ {
		// Window w covers bits [4w, 4w+4) counted from the least
		// significant nibble; nibble order in kb is big-endian.
		b := kb[31-w/2]
		var digit byte
		if w%2 == 0 {
			digit = b & 0x0f
		} else {
			digit = b >> 4
		}
		if digit != 0 {
			acc = addMixed(acc, baseTable[w][digit])
		}
	}
	return acc
}

// isOnCurve reports whether (x, y) satisfies y² = x³ + 7 mod p.
func isOnCurve(x, y *big.Int) bool {
	if x == nil || y == nil {
		return false
	}
	if x.Sign() < 0 || x.Cmp(curveP) >= 0 || y.Sign() < 0 || y.Cmp(curveP) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(y, y)
	y2.Mod(y2, curveP)
	x3 := new(big.Int).Mul(x, x)
	x3.Mul(x3, x)
	x3.Add(x3, curveB)
	x3.Mod(x3, curveP)
	return y2.Cmp(x3) == 0
}
