package secp256k1

import (
	"testing"

	"repro/internal/keccak"
)

func TestSignDeterministic(t *testing.T) {
	// RFC 6979: signing is a pure function of (key, digest) — no RNG, so
	// identical inputs yield identical signatures (the property that makes
	// Token Service issuance reproducible).
	key := PrivateKeyFromSeed([]byte("determinism"))
	digest := keccak.Sum256([]byte("message"))
	a, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	if a.R.Cmp(b.R) != 0 || a.S.Cmp(b.S) != 0 || a.V != b.V {
		t.Error("two signatures over identical input differ")
	}
}

func TestSignaturesDifferAcrossKeysAndMessages(t *testing.T) {
	k1 := PrivateKeyFromSeed([]byte("key one"))
	k2 := PrivateKeyFromSeed([]byte("key two"))
	d1 := keccak.Sum256([]byte("m1"))
	d2 := keccak.Sum256([]byte("m2"))

	s11, _ := Sign(k1, d1)
	s12, _ := Sign(k1, d2)
	s21, _ := Sign(k2, d1)

	if s11.R.Cmp(s12.R) == 0 {
		t.Error("same nonce reused across messages (catastrophic)")
	}
	if s11.R.Cmp(s21.R) == 0 {
		t.Error("same nonce across keys")
	}
}

func TestAddressesDistinctAcrossSeeds(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		key := PrivateKeyFromSeed([]byte{byte(i), 0x5e})
		a := key.Address().Hex()
		if seen[a] {
			t.Fatalf("address collision at seed %d", i)
		}
		seen[a] = true
	}
}
