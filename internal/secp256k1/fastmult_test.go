package secp256k1

import (
	"math/big"
	"math/rand"
	"testing"
)

// randScalar draws a uniform scalar in [0, n) from a seeded source.
func randScalar(rng *rand.Rand) *big.Int {
	var buf [32]byte
	rng.Read(buf[:])
	k := new(big.Int).SetBytes(buf[:])
	return k.Mod(k, curveN)
}

// randPoint derives a random curve point as d·G for a random nonzero d.
func randPoint(rng *rand.Rand) affinePoint {
	for {
		d := randScalar(rng)
		if d.Sign() == 0 {
			continue
		}
		return toAffine(scalarBaseMult(d))
	}
}

// edgeScalars are the boundary cases the differential tests must cover:
// zero, one, n−1, and scalars above n/2 (where naive and wNAF digit
// patterns diverge the most).
func edgeScalars() []*big.Int {
	overHalf := new(big.Int).Add(halfN, big.NewInt(1))
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		new(big.Int).Sub(curveN, big.NewInt(1)),
		new(big.Int).Sub(curveN, big.NewInt(2)),
		overHalf,
		new(big.Int).Set(halfN),
	}
}

func TestGLVConstantsAreConsistent(t *testing.T) {
	// λ³ ≡ 1 (mod n) and β³ ≡ 1 (mod p).
	l3 := new(big.Int).Exp(glvLambda, big.NewInt(3), curveN)
	if l3.Cmp(big.NewInt(1)) != 0 {
		t.Error("λ is not a cube root of unity mod n")
	}
	b3 := new(big.Int).Exp(glvBeta, big.NewInt(3), curveP)
	if b3.Cmp(big.NewInt(1)) != 0 {
		t.Error("β is not a cube root of unity mod p")
	}
	// The lattice vectors satisfy a_i + b_i·λ ≡ 0 (mod n), with
	// b1 = −glvNegB1 and b2 = glvB2.
	v1 := new(big.Int).Mul(glvNegB1, glvLambda)
	v1.Sub(glvA1, v1)
	if v1.Mod(v1, curveN).Sign() != 0 {
		t.Error("a1 + b1·λ ≢ 0 (mod n)")
	}
	v2 := new(big.Int).Mul(glvB2, glvLambda)
	v2.Add(glvA2, v2)
	if v2.Mod(v2, curveN).Sign() != 0 {
		t.Error("a2 + b2·λ ≢ 0 (mod n)")
	}
}

func TestEndomorphismMatchesLambdaMult(t *testing.T) {
	// φ(P) = (β·x, y) must equal λ·P computed with the naive ladder.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		p := randPoint(rng)
		phi := phiTable([]affinePoint{p})[0]
		lam := toAffine(scalarMult(p, glvLambda))
		if phi.x.Cmp(lam.x) != 0 || phi.y.Cmp(lam.y) != 0 {
			t.Fatalf("φ(P) ≠ λ·P for point %d", i)
		}
	}
}

func TestSplitScalarDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bound := new(big.Int).Lsh(big.NewInt(1), 129)
	ks := append(edgeScalars(), make([]*big.Int, 0, 64)...)
	for i := 0; i < 64; i++ {
		ks = append(ks, randScalar(rng))
	}
	for _, k := range ks {
		k1, k2 := splitScalar(k)
		// k1 + k2·λ ≡ k (mod n)
		sum := new(big.Int).Mul(k2, glvLambda)
		sum.Add(sum, k1)
		sum.Sub(sum, k)
		if sum.Mod(sum, curveN).Sign() != 0 {
			t.Fatalf("split of %s does not recompose", k.Text(16))
		}
		if new(big.Int).Abs(k1).Cmp(bound) > 0 || new(big.Int).Abs(k2).Cmp(bound) > 0 {
			t.Fatalf("split of %s is not short: |k1|=%d bits |k2|=%d bits",
				k.Text(16), k1.BitLen(), k2.BitLen())
		}
	}
}

func TestWNAFDigitsReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []uint{4, 5, 8} {
		for i := 0; i < 32; i++ {
			k := randScalar(rng)
			digits := wnafDigits(k, w)
			acc := new(big.Int)
			for j := len(digits) - 1; j >= 0; j-- {
				acc.Lsh(acc, 1)
				acc.Add(acc, big.NewInt(int64(digits[j])))
				d := int64(digits[j])
				if d != 0 && (d%2 == 0 || d >= 1<<(w-1) || d <= -(1<<(w-1))) {
					t.Fatalf("w=%d: digit %d out of wNAF range", w, d)
				}
			}
			if acc.Cmp(k) != 0 {
				t.Fatalf("w=%d: digits do not reconstruct the scalar", w)
			}
		}
	}
}

// assertSamePoint compares two Jacobian results in affine coordinates.
func assertSamePoint(t *testing.T, label string, got, want jacobianPoint) {
	t.Helper()
	ga, wa := toAffine(got), toAffine(want)
	if ga.isInfinity() != wa.isInfinity() {
		t.Fatalf("%s: infinity mismatch (got inf=%v, want inf=%v)", label, ga.isInfinity(), wa.isInfinity())
	}
	if ga.isInfinity() {
		return
	}
	if ga.x.Cmp(wa.x) != 0 || ga.y.Cmp(wa.y) != 0 {
		t.Fatalf("%s: points differ", label)
	}
}

func TestScalarMultWNAFMatchesNaiveLadder(t *testing.T) {
	// Single-scalar form: 0·G + k·P through the wNAF/GLV ladder must be
	// bit-identical to the naive double-and-add reference on random and
	// edge scalars.
	rng := rand.New(rand.NewSource(17))
	zero := new(big.Int)
	scalars := edgeScalars()
	for i := 0; i < 24; i++ {
		scalars = append(scalars, randScalar(rng))
	}
	p := randPoint(rng)
	for _, k := range scalars {
		assertSamePoint(t, "k="+k.Text(16),
			doubleScalarMultShamir(zero, p, k),
			scalarMult(p, k))
	}
}

func TestDoubleScalarMultDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	type pair struct{ u1, u2 *big.Int }
	pairs := []pair{}
	for _, e := range edgeScalars() {
		pairs = append(pairs, pair{e, randScalar(rng)}, pair{randScalar(rng), e})
	}
	for i := 0; i < 24; i++ {
		pairs = append(pairs, pair{randScalar(rng), randScalar(rng)})
	}
	for i, pr := range pairs {
		p := randPoint(rng)
		assertSamePoint(t, "pair "+big.NewInt(int64(i)).String(),
			doubleScalarMultShamir(pr.u1, p, pr.u2),
			doubleScalarMultRef(pr.u1, p, pr.u2))
	}
}

func TestVerifyAndRecoverAgreeAcrossPaths(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("fastmult differential"))
	var digest [32]byte
	copy(digest[:], []byte("fastmult digest material 32bytes"))
	sig, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetFastMult(true)
	defer SetFastMult(prev)
	for _, fast := range []bool{true, false} {
		SetFastMult(fast)
		if !Verify(key.Pub, digest, sig) {
			t.Errorf("fast=%v: valid signature rejected", fast)
		}
		addr, err := RecoverAddress(digest, sig)
		if err != nil {
			t.Fatalf("fast=%v: recover: %v", fast, err)
		}
		if addr != key.Address() {
			t.Errorf("fast=%v: recovered %s, want %s", fast, addr, key.Address())
		}
		// A flipped digest bit must not verify on either path.
		bad := digest
		bad[0] ^= 1
		if Verify(key.Pub, bad, sig) {
			t.Errorf("fast=%v: tampered digest verified", fast)
		}
	}
}

func FuzzDoubleScalarMultDifferential(f *testing.F) {
	f.Add([]byte("seed-a"), []byte("seed-b"), []byte("seed-p"))
	f.Add([]byte{0}, []byte{1}, []byte{2})
	f.Add(curveN.Bytes(), halfN.Bytes(), []byte{7})
	f.Fuzz(func(t *testing.T, b1, b2, bp []byte) {
		u1 := new(big.Int).SetBytes(b1)
		u1.Mod(u1, curveN)
		u2 := new(big.Int).SetBytes(b2)
		u2.Mod(u2, curveN)
		d := new(big.Int).SetBytes(bp)
		d.Mod(d, curveN)
		if d.Sign() == 0 {
			d.SetInt64(1)
		}
		p := toAffine(scalarBaseMult(d))
		got := toAffine(doubleScalarMultShamir(u1, p, u2))
		want := toAffine(doubleScalarMultRef(u1, p, u2))
		if got.isInfinity() != want.isInfinity() {
			t.Fatal("infinity mismatch")
		}
		if !got.isInfinity() && (got.x.Cmp(want.x) != 0 || got.y.Cmp(want.y) != 0) {
			t.Fatal("fast path diverges from reference ladder")
		}
	})
}
