package secp256k1

import (
	"testing"

	"repro/internal/types"
)

// The benchmarks below make the crypto-layer speedup reproducible with
// plain `go test -bench` (the chain-level view lives in smacs-bench
// -mode chain). The naive/wnaf sub-benchmarks toggle SetFastMult so the
// reference ladder stays measurable.

var benchSink types.Address

func benchSig(b *testing.B) (*PrivateKey, [32]byte, Signature) {
	b.Helper()
	key := PrivateKeyFromSeed([]byte("bench key"))
	var digest [32]byte
	copy(digest[:], []byte("benchmark digest 32 bytes long!!"))
	sig, err := Sign(key, digest)
	if err != nil {
		b.Fatal(err)
	}
	return key, digest, sig
}

func BenchmarkSign(b *testing.B) {
	key, digest, _ := benchSig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(key, digest); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecoverAddress(b *testing.B, fast bool) {
	_, digest, sig := benchSig(b)
	prev := SetFastMult(fast)
	defer SetFastMult(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := RecoverAddress(digest, sig)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = addr
	}
}

func BenchmarkRecoverAddress(b *testing.B) {
	b.Run("naive", func(b *testing.B) { benchRecoverAddress(b, false) })
	b.Run("wnaf", func(b *testing.B) { benchRecoverAddress(b, true) })
}

func benchVerify(b *testing.B, fast bool) {
	key, digest, sig := benchSig(b)
	prev := SetFastMult(fast)
	defer SetFastMult(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(key.Pub, digest, sig) {
			b.Fatal("valid signature rejected")
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	b.Run("naive", func(b *testing.B) { benchVerify(b, false) })
	b.Run("wnaf", func(b *testing.B) { benchVerify(b, true) })
}
