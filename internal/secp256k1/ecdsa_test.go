package secp256k1

import (
	"crypto/sha256"
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/keccak"
)

func TestGeneratorPublicKey(t *testing.T) {
	key, err := NewPrivateKey(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if key.Pub.X.Cmp(curveGx) != 0 || key.Pub.Y.Cmp(curveGy) != 0 {
		t.Errorf("1·G != G: got (%x, %x)", key.Pub.X, key.Pub.Y)
	}
}

func TestKnownEthereumAddresses(t *testing.T) {
	// Widely known address derivations for tiny private keys.
	tests := []struct {
		d    int64
		want string
	}{
		{1, "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"},
		{2, "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf"},
		{3, "0x6813eb9362372eef6200f3b1dbc3f819671cba69"},
	}
	for _, tt := range tests {
		key, err := NewPrivateKey(big.NewInt(tt.d))
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.ToLower(key.Address().Hex()); got != tt.want {
			t.Errorf("address(%d) = %s, want %s", tt.d, got, tt.want)
		}
	}
}

func TestRFC6979KnownVector(t *testing.T) {
	// Standard secp256k1 RFC 6979 vector (used by many libraries):
	// key = 1, message = "Satoshi Nakamoto" (SHA-256 digest).
	key, err := NewPrivateKey(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("Satoshi Nakamoto"))
	sig, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	wantR := mustBig("934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8")
	wantS := mustBig("2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5")
	if sig.R.Cmp(wantR) != 0 {
		t.Errorf("r = %x, want %x", sig.R, wantR)
	}
	if sig.S.Cmp(wantS) != 0 {
		t.Errorf("s = %x, want %x", sig.S, wantS)
	}
}

func TestSignVerifyRecoverRoundTrip(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("roundtrip"))
	digest := keccak.Sum256([]byte("a message"))
	sig, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(key.Pub, digest, sig) {
		t.Fatal("valid signature rejected")
	}
	addr, err := RecoverAddress(digest, sig)
	if err != nil {
		t.Fatal(err)
	}
	if addr != key.Address() {
		t.Errorf("recovered %s, want %s", addr, key.Address())
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("tamper"))
	digest := keccak.Sum256([]byte("original"))
	sig, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}

	other := keccak.Sum256([]byte("modified"))
	if Verify(key.Pub, other, sig) {
		t.Error("signature verified against a different digest")
	}

	wrongKey := PrivateKeyFromSeed([]byte("someone else"))
	if Verify(wrongKey.Pub, digest, sig) {
		t.Error("signature verified under a different public key")
	}

	bad := sig
	bad.R = new(big.Int).Add(sig.R, big.NewInt(1))
	if Verify(key.Pub, digest, bad) {
		t.Error("modified r accepted")
	}
}

func TestLowSNormalization(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("low-s"))
	for i := 0; i < 16; i++ {
		digest := keccak.Sum256([]byte{byte(i)})
		sig, err := Sign(key, digest)
		if err != nil {
			t.Fatal(err)
		}
		if sig.S.Cmp(halfN) > 0 {
			t.Fatalf("signature %d not low-s normalized", i)
		}
	}
}

func TestParseSignatureVariants(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("parse"))
	digest := keccak.Sum256([]byte("msg"))
	sig, err := Sign(key, digest)
	if err != nil {
		t.Fatal(err)
	}

	raw := sig.Bytes()
	back, err := ParseSignature(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.R.Cmp(sig.R) != 0 || back.S.Cmp(sig.S) != 0 || back.V != sig.V {
		t.Error("round trip changed the signature")
	}

	// Legacy Ethereum encodes v as 27/28.
	legacy := sig.Bytes()
	legacy[64] += 27
	back, err = ParseSignature(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if back.V != sig.V {
		t.Errorf("legacy v normalized to %d, want %d", back.V, sig.V)
	}

	if _, err := ParseSignature(raw[:64]); err == nil {
		t.Error("short signature accepted")
	}
	bad := sig.Bytes()
	bad[64] = 5
	if _, err := ParseSignature(bad); err == nil {
		t.Error("invalid recovery id accepted")
	}

	// High-s form must be rejected (Ethereum homestead rule).
	highS := Signature{R: sig.R, S: new(big.Int).Sub(curveN, sig.S), V: sig.V}
	if _, err := ParseSignature(highS.Bytes()); err == nil {
		t.Error("high-s signature accepted")
	}
}

func TestScalarBaseMultMatchesGeneric(t *testing.T) {
	g := affinePoint{x: curveGx, y: curveGy}
	f := func(raw [32]byte) bool {
		k := new(big.Int).SetBytes(raw[:])
		k.Mod(k, curveN)
		if k.Sign() == 0 {
			return true
		}
		a := toAffine(scalarBaseMult(k))
		b := toAffine(scalarMult(g, k))
		return a.x.Cmp(b.x) == 0 && a.y.Cmp(b.y) == 0
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSignRecover(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("quick"))
	f := func(msg []byte) bool {
		digest := keccak.Sum256(msg)
		sig, err := Sign(key, digest)
		if err != nil {
			return false
		}
		addr, err := RecoverAddress(digest, sig)
		return err == nil && addr == key.Address() && Verify(key.Pub, digest, sig)
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInvalidKeys(t *testing.T) {
	if _, err := NewPrivateKey(big.NewInt(0)); err == nil {
		t.Error("zero scalar accepted")
	}
	if _, err := NewPrivateKey(new(big.Int).Set(curveN)); err == nil {
		t.Error("scalar == n accepted")
	}
	if _, err := NewPrivateKey(nil); err == nil {
		t.Error("nil scalar accepted")
	}
	bad := PublicKey{X: big.NewInt(1), Y: big.NewInt(1)}
	if bad.Valid() {
		t.Error("off-curve point reported valid")
	}
}

func TestParsePublicKey(t *testing.T) {
	key := PrivateKeyFromSeed([]byte("pub parse"))
	enc := key.Pub.Bytes()
	back, err := ParsePublicKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.X.Cmp(key.Pub.X) != 0 || back.Y.Cmp(key.Pub.Y) != 0 {
		t.Error("public key round trip mismatch")
	}
	if _, err := ParsePublicKey(enc[:63]); err == nil {
		t.Error("short public key accepted")
	}
	enc[0] ^= 0xff
	if _, err := ParsePublicKey(enc); err == nil {
		t.Error("off-curve public key accepted")
	}
}
