package secp256k1

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/types"
)

// SignatureLength is the length of a serialized recoverable signature:
// r (32) ‖ s (32) ‖ v (1).
const SignatureLength = 65

// Signature is a recoverable ECDSA signature in Ethereum's canonical form:
// low-s normalized, with a recovery id V in {0, 1} (27/28 on the wire in
// legacy Ethereum; both conventions are accepted by ParseSignature).
type Signature struct {
	// R and S are the ECDSA signature scalars.
	R, S *big.Int
	// V is the recovery id (0 or 1).
	V byte
}

var (
	// ErrInvalidSignature is returned for malformed or non-canonical
	// signatures (zero/overflowing scalars or high-s form).
	ErrInvalidSignature = errors.New("secp256k1: invalid signature")
	// ErrRecoveryFailed is returned when no valid public key can be
	// recovered from a signature.
	ErrRecoveryFailed = errors.New("secp256k1: public key recovery failed")
)

// Bytes serializes the signature as r ‖ s ‖ v (65 bytes, v in {0, 1}).
func (sig Signature) Bytes() []byte {
	out := make([]byte, SignatureLength)
	sig.R.FillBytes(out[:32])
	sig.S.FillBytes(out[32:64])
	out[64] = sig.V
	return out
}

// ParseSignature parses a 65-byte r ‖ s ‖ v signature. Recovery ids 27/28
// are normalized to 0/1.
func ParseSignature(b []byte) (Signature, error) {
	if len(b) != SignatureLength {
		return Signature{}, fmt.Errorf("%w: length %d, want %d", ErrInvalidSignature, len(b), SignatureLength)
	}
	v := b[64]
	if v >= 27 {
		v -= 27
	}
	if v > 1 {
		return Signature{}, fmt.Errorf("%w: recovery id %d", ErrInvalidSignature, b[64])
	}
	sig := Signature{
		R: new(big.Int).SetBytes(b[:32]),
		S: new(big.Int).SetBytes(b[32:64]),
		V: v,
	}
	if err := sig.validateScalars(); err != nil {
		return Signature{}, err
	}
	return sig, nil
}

// Validate checks that the signature scalars are canonical: 0 < r, s < n
// and s in low form. Callers that serialize a signature before handing it
// to Recover/Verify (for example to build a cache key) should gate on this
// first — Bytes panics on negative or oversized scalars.
func (sig Signature) Validate() error { return sig.validateScalars() }

func (sig Signature) validateScalars() error {
	if sig.R.Sign() <= 0 || sig.R.Cmp(curveN) >= 0 {
		return fmt.Errorf("%w: r out of range", ErrInvalidSignature)
	}
	if sig.S.Sign() <= 0 || sig.S.Cmp(curveN) >= 0 {
		return fmt.Errorf("%w: s out of range", ErrInvalidSignature)
	}
	if sig.S.Cmp(halfN) > 0 {
		return fmt.Errorf("%w: high-s form", ErrInvalidSignature)
	}
	return nil
}

// Sign produces a deterministic (RFC 6979) recoverable signature over the
// 32-byte digest.
func Sign(key *PrivateKey, digest [32]byte) (Signature, error) {
	if key == nil || key.D == nil {
		return Signature{}, ErrInvalidKey
	}
	z := hashToInt(digest)
	gen := newNonceGenerator(key.D, digest)
	for {
		k := gen.next()
		if k == nil {
			continue
		}
		rp := toAffine(scalarBaseMultG(k))
		r := new(big.Int).Mod(rp.x, curveN)
		if r.Sign() == 0 {
			continue
		}
		v := byte(0)
		if rp.y.Bit(0) == 1 {
			v = 1
		}
		if rp.x.Cmp(curveN) >= 0 {
			v |= 2 // astronomically rare: r overflowed the group order
		}
		kInv := new(big.Int).ModInverse(k, curveN)
		s := new(big.Int).Mul(r, key.D)
		s.Add(s, z)
		s.Mul(s, kInv)
		s.Mod(s, curveN)
		if s.Sign() == 0 {
			continue
		}
		if s.Cmp(halfN) > 0 {
			s.Sub(curveN, s)
			v ^= 1
		}
		return Signature{R: r, S: s, V: v}, nil
	}
}

// Verify reports whether sig is a valid (low-s) signature over digest by
// pub.
func Verify(pub PublicKey, digest [32]byte, sig Signature) bool {
	if !pub.Valid() || sig.validateScalars() != nil {
		return false
	}
	z := hashToInt(digest)
	w := new(big.Int).ModInverse(sig.S, curveN)
	u1 := new(big.Int).Mul(z, w)
	u1.Mod(u1, curveN)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, curveN)
	sum := doubleScalarMult(u1, affinePoint{x: pub.X, y: pub.Y}, u2)
	if sum.isInfinity() {
		return false
	}
	p := toAffine(sum)
	x := new(big.Int).Mod(p.x, curveN)
	return x.Cmp(sig.R) == 0
}

// Recover recovers the public key that produced sig over digest. This is
// the pure-Go analogue of the EVM's ecrecover precompile.
func Recover(digest [32]byte, sig Signature) (PublicKey, error) {
	if err := sig.validateScalars(); err != nil {
		return PublicKey{}, err
	}
	// Reconstruct the ephemeral point R from r and the recovery id.
	x := new(big.Int).Set(sig.R)
	if sig.V&2 != 0 {
		x.Add(x, curveN)
	}
	if x.Cmp(curveP) >= 0 {
		return PublicKey{}, ErrRecoveryFailed
	}
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	y2.Add(y2, curveB)
	y2.Mod(y2, curveP)
	y := new(big.Int).ModSqrt(y2, curveP)
	if y == nil {
		return PublicKey{}, ErrRecoveryFailed
	}
	if y.Bit(0) != uint(sig.V&1) {
		y.Sub(curveP, y)
	}
	if !isOnCurve(x, y) {
		return PublicKey{}, ErrRecoveryFailed
	}

	// Q = r⁻¹(s·R − z·G) = (−z·r⁻¹)·G + (s·r⁻¹)·R — one table-driven
	// base multiplication plus a single generic multiplication.
	z := hashToInt(digest)
	rInv := new(big.Int).ModInverse(sig.R, curveN)
	u1 := new(big.Int).Mul(z, rInv)
	u1.Neg(u1)
	u1.Mod(u1, curveN)
	u2 := new(big.Int).Mul(sig.S, rInv)
	u2.Mod(u2, curveN)
	q := doubleScalarMult(u1, affinePoint{x: x, y: y}, u2)
	if q.isInfinity() {
		return PublicKey{}, ErrRecoveryFailed
	}
	qa := toAffine(q)
	pub := PublicKey{X: qa.x, Y: qa.y}
	if !pub.Valid() {
		return PublicKey{}, ErrRecoveryFailed
	}
	return pub, nil
}

// RecoverAddress recovers the Ethereum address of the signer, the common
// contract-side verification primitive.
func RecoverAddress(digest [32]byte, sig Signature) (types.Address, error) {
	pub, err := Recover(digest, sig)
	if err != nil {
		return types.Address{}, err
	}
	return pub.Address(), nil
}

// hashToInt converts a 32-byte digest to a scalar reduced mod n, following
// the ECDSA convention for a curve whose order has the same bit length as
// the hash.
func hashToInt(digest [32]byte) *big.Int {
	z := new(big.Int).SetBytes(digest[:])
	return z.Mod(z, curveN)
}

// nonceGenerator implements the RFC 6979 deterministic nonce derivation
// with HMAC-SHA256.
type nonceGenerator struct {
	k, v []byte
}

func newNonceGenerator(d *big.Int, digest [32]byte) *nonceGenerator {
	var x [32]byte
	d.FillBytes(x[:])
	h := new(big.Int).SetBytes(digest[:])
	h.Mod(h, curveN)
	var hb [32]byte
	h.FillBytes(hb[:])

	g := &nonceGenerator{k: make([]byte, 32), v: make([]byte, 32)}
	for i := range g.v {
		g.v[i] = 0x01
	}
	g.k = hmacSHA256(g.k, g.v, []byte{0x00}, x[:], hb[:])
	g.v = hmacSHA256(g.k, g.v)
	g.k = hmacSHA256(g.k, g.v, []byte{0x01}, x[:], hb[:])
	g.v = hmacSHA256(g.k, g.v)
	return g
}

// next produces the next candidate nonce, or nil when the candidate falls
// outside [1, n-1] (the caller retries).
func (g *nonceGenerator) next() *big.Int {
	g.v = hmacSHA256(g.k, g.v)
	k := new(big.Int).SetBytes(g.v)
	if k.Sign() > 0 && k.Cmp(curveN) < 0 {
		return k
	}
	g.k = hmacSHA256(g.k, g.v, []byte{0x00})
	g.v = hmacSHA256(g.k, g.v)
	return nil
}

func hmacSHA256(key []byte, chunks ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	for _, c := range chunks {
		mac.Write(c)
	}
	return mac.Sum(nil)
}
