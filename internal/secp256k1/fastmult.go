package secp256k1

import (
	"math/big"
	"sync"
	"sync/atomic"
)

// This file implements the fast double-scalar multiplication used by
// signature verification and public-key recovery:
//
//	u1·G + u2·Q
//
// as a single interleaved ladder (Shamir's trick) over width-w non-adjacent
// form (wNAF) digit expansions, with both scalars first split by the GLV
// endomorphism of secp256k1 (φ(x, y) = (β·x, y) acts as multiplication by
// λ). The split halves the number of doublings (≈ 128 instead of 256) and
// the wNAF digits cut the number of additions; the additions themselves are
// mixed (affine tables, see addMixed), with the per-call table for Q
// normalized by one batched inversion (Montgomery's trick).
//
// The naive double-and-add ladder in curve.go (scalarMult) is kept as the
// reference implementation; differential tests prove the two paths are
// bit-identical, and SetFastMult lets benchmarks toggle between them.

// GLV endomorphism constants. λ is a cube root of unity mod n and β the
// matching cube root of unity mod p: λ·(x, y) = (β·x, y) for every curve
// point. (a1, b1) and (a2, b2) are short lattice vectors with
// a_i + b_i·λ ≡ 0 (mod n), so any rounding in splitScalar still yields a
// congruent decomposition (only the half-scalar magnitudes depend on it).
var (
	glvLambda = mustBig("5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72")
	glvBeta   = mustBig("7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee")
	glvA1     = mustBig("3086d221a7d46bcde86c90e49284eb15")
	glvNegB1  = mustBig("e4437ed6010e88286f547fa90abfe4c3")
	glvA2     = mustBig("114ca50f7a8e2f3f657c1108d9d44cfd8")
	glvB2     = mustBig("3086d221a7d46bcde86c90e49284eb15")
)

// Window widths: the base-point tables are precomputed once, so they afford
// a wide window; the per-call table for Q pays its own precomputation and
// stays narrow.
const (
	baseWindow  = 8 // 2^(w-2) = 64 precomputed odd multiples of G (and λG)
	pointWindow = 5 // 8 odd multiples of Q, built per call
)

// fastMultOn gates the wNAF/GLV path in Verify and Recover. It defaults to
// on; benchmarks flip it to measure the naive reference ladder.
var fastMultOn atomic.Bool

func init() { fastMultOn.Store(true) }

// SetFastMult enables or disables the wNAF/GLV double-scalar path and
// returns the previous setting. It exists for benchmarks and differential
// tests; production callers never need it.
func SetFastMult(on bool) bool { return fastMultOn.Swap(on) }

// FastMultEnabled reports whether the wNAF/GLV path is active.
func FastMultEnabled() bool { return fastMultOn.Load() }

// wnafDigits returns the width-w non-adjacent form of k ≥ 0, least
// significant digit first. Nonzero digits are odd and lie in
// (−2^(w−1), 2^(w−1)); at most one of any w consecutive digits is nonzero.
func wnafDigits(k *big.Int, w uint) []int8 {
	if k.Sign() <= 0 {
		return nil
	}
	d := new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	mask := big.NewInt(mod - 1)
	r := new(big.Int)
	out := make([]int8, 0, d.BitLen()+1)
	for d.Sign() > 0 {
		var digit int64
		if d.Bit(0) == 1 {
			digit = r.And(d, mask).Int64()
			if digit >= half {
				digit -= mod
			}
			if digit >= 0 {
				d.Sub(d, r.SetInt64(digit))
			} else {
				d.Add(d, r.SetInt64(-digit))
			}
		}
		out = append(out, int8(digit))
		d.Rsh(d, 1)
	}
	return out
}

// oddMultiples returns [P, 3P, 5P, …, (2n−1)P] in Jacobian coordinates.
func oddMultiples(p affinePoint, n int) []jacobianPoint {
	out := make([]jacobianPoint, n)
	out[0] = fromAffine(p)
	twoP := doubleJacobian(out[0])
	for i := 1; i < n; i++ {
		out[i] = addJacobian(out[i-1], twoP)
	}
	return out
}

// batchToAffine normalizes points to affine with a single modular inversion
// (Montgomery's trick): invert the product of all Z coordinates, then peel
// off each individual Z⁻¹ with two multiplications.
func batchToAffine(ps []jacobianPoint) []affinePoint {
	out := make([]affinePoint, len(ps))
	prefix := make([]*big.Int, len(ps))
	acc := big.NewInt(1)
	for i, p := range ps {
		if p.isInfinity() {
			continue
		}
		prefix[i] = new(big.Int).Set(acc)
		acc.Mul(acc, p.z)
		acc.Mod(acc, curveP)
	}
	inv := new(big.Int).ModInverse(acc, curveP)
	if inv == nil {
		// Some Z was zero mod p; fall back to per-point conversion (the
		// infinity entries were skipped above, so this cannot happen for
		// valid inputs — defensive only).
		for i, p := range ps {
			out[i] = toAffine(p)
		}
		return out
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		if p.isInfinity() {
			out[i] = affinePoint{}
			continue
		}
		zInv := new(big.Int).Mul(inv, prefix[i])
		zInv.Mod(zInv, curveP)
		inv.Mul(inv, p.z)
		inv.Mod(inv, curveP)
		zInv2 := new(big.Int).Mul(zInv, zInv)
		zInv2.Mod(zInv2, curveP)
		x := new(big.Int).Mul(p.x, zInv2)
		x.Mod(x, curveP)
		zInv3 := zInv2.Mul(zInv2, zInv)
		zInv3.Mod(zInv3, curveP)
		y := new(big.Int).Mul(p.y, zInv3)
		y.Mod(y, curveP)
		out[i] = affinePoint{x: x, y: y}
	}
	return out
}

// phiTable applies the endomorphism to an affine table: φ(T[i]) = λ·T[i]
// costs one field multiplication per entry.
func phiTable(tbl []affinePoint) []affinePoint {
	out := make([]affinePoint, len(tbl))
	for i, p := range tbl {
		if p.isInfinity() {
			continue
		}
		x := new(big.Int).Mul(p.x, glvBeta)
		x.Mod(x, curveP)
		out[i] = affinePoint{x: x, y: p.y}
	}
	return out
}

// Lazily built odd-multiple tables for G and λG.
var (
	fastBaseOnce sync.Once
	baseOddG     []affinePoint
	baseOddLamG  []affinePoint
)

func initFastBaseTables() {
	g := affinePoint{x: new(big.Int).Set(curveGx), y: new(big.Int).Set(curveGy)}
	baseOddG = batchToAffine(oddMultiples(g, 1<<(baseWindow-2)))
	baseOddLamG = phiTable(baseOddG)
}

// roundDiv returns round(x / n) for x ≥ 0 and odd n.
func roundDiv(x, n *big.Int) *big.Int {
	r := new(big.Int).Rsh(n, 1)
	r.Add(r, x)
	return r.Div(r, n)
}

// splitScalar decomposes k (mod n) as k ≡ k1 + k2·λ with |k1|, |k2| ≈ √n.
func splitScalar(k *big.Int) (k1, k2 *big.Int) {
	c1 := roundDiv(new(big.Int).Mul(glvB2, k), curveN)
	c2 := roundDiv(new(big.Int).Mul(glvNegB1, k), curveN)
	k1 = new(big.Int).Mul(c1, glvA1)
	k1.Add(k1, new(big.Int).Mul(c2, glvA2))
	k1.Sub(k, k1)
	k2 = new(big.Int).Mul(c1, glvNegB1)
	k2.Sub(k2, new(big.Int).Mul(c2, glvB2))
	return k1, k2
}

// mulTerm is one component of the interleaved ladder: a wNAF digit string
// over a table of odd multiples [P, 3P, 5P, …].
type mulTerm struct {
	naf   []int8
	table []affinePoint
	neg   bool // scalar was negative: flip every digit
}

// newMulTerm builds a ladder term from a signed half-scalar.
func newMulTerm(k *big.Int, w uint, table []affinePoint) mulTerm {
	neg := k.Sign() < 0
	abs := k
	if neg {
		abs = new(big.Int).Neg(k)
	}
	return mulTerm{naf: wnafDigits(abs, w), table: table, neg: neg}
}

// ladderScratch holds the accumulator and temporaries of one ladder run, so
// the ~130 doublings and ~75 additions of a double-scalar multiplication
// mutate a fixed set of big.Ints instead of allocating fresh ones — the
// allocation churn of the generic doubleJacobian/addMixed is what keeps the
// naive path slow even at equal operation counts.
type ladderScratch struct {
	x, y, z                        *big.Int // accumulator (z = 0 ⇒ infinity)
	t1, t2, t3, t4, t5, t6, t7, ty *big.Int
	hi                             *big.Int // fold temporary of red
}

// Fast-reduction constants: p = 2^256 − pFold with pFold = 2^32 + 977, so
// hi·2^256 + lo ≡ hi·pFold + lo (mod p) — reduction by shift/add instead
// of division.
var (
	pFold    = new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), 32), big.NewInt(977))
	mask256  = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	curvePx2 = new(big.Int).Lsh(curveP, 1)
)

func newLadderScratch() *ladderScratch {
	s := &ladderScratch{}
	for _, p := range []**big.Int{&s.x, &s.y, &s.z, &s.t1, &s.t2, &s.t3, &s.t4, &s.t5, &s.t6, &s.t7, &s.ty, &s.hi} {
		*p = new(big.Int)
	}
	return s
}

func (s *ladderScratch) isInfinity() bool { return s.z.Sign() == 0 }

// red reduces z ≥ 0 (any size up to a few p²) into [0, p) by folding the
// high limbs: hi·2^256 + lo ≡ hi·(2^32 + 977) + lo (mod p).
func (s *ladderScratch) red(z *big.Int) {
	for z.BitLen() > 256 {
		s.hi.Rsh(z, 256)
		z.And(z, mask256)
		z.Add(z, s.hi.Mul(s.hi, pFold))
	}
	for z.Cmp(curveP) >= 0 {
		z.Sub(z, curveP)
	}
}

// norm1 lifts a single-subtraction result from (−p, p) into [0, p).
func norm1(z *big.Int) {
	if z.Sign() < 0 {
		z.Add(z, curveP)
	}
}

// doubleInPlace doubles the accumulator (a = 0 doubling formulas). All
// inputs and outputs are reduced to [0, p).
func (s *ladderScratch) doubleInPlace() {
	if s.isInfinity() {
		return
	}
	if s.y.Sign() == 0 {
		s.z.SetInt64(0)
		return
	}
	a, b, c, d, e := s.t1, s.t2, s.t3, s.t4, s.t5
	a.Mul(s.x, s.x)
	s.red(a) // A = X²
	b.Mul(s.y, s.y)
	s.red(b) // B = Y²
	c.Mul(b, b)
	s.red(c) // C = Y⁴
	d.Add(s.x, b)
	d.Mul(d, d)
	s.red(d)
	d.Sub(d, a)
	norm1(d)
	d.Sub(d, c)
	norm1(d)
	d.Lsh(d, 1)
	if d.Cmp(curveP) >= 0 {
		d.Sub(d, curveP)
	} // D = 2((X+B)² − A − C)
	e.Lsh(a, 1)
	e.Add(e, a)
	s.red(e) // E = 3A

	s.z.Mul(s.y, s.z)
	s.red(s.z)
	s.z.Lsh(s.z, 1)
	if s.z.Cmp(curveP) >= 0 {
		s.z.Sub(s.z, curveP)
	} // Z3 = 2YZ (old Y)

	s.x.Mul(e, e)
	s.x.Sub(s.x, s.t6.Lsh(d, 1)) // E² − 2D ≥ −2p, then red handles the rest
	s.x.Add(s.x, curvePx2)
	s.red(s.x) // X3 = E² − 2D

	s.y.Sub(d, s.x)
	norm1(s.y)
	s.y.Mul(s.y, e)
	s.red(s.y)
	c.Lsh(c, 3)
	s.red(c)
	s.y.Sub(s.y, c)
	norm1(s.y) // Y3 = E(D − X3) − 8C
}

// addMixedInPlace adds the affine point q (negated when neg) to the
// accumulator using the mixed-addition formulas.
func (s *ladderScratch) addMixedInPlace(q affinePoint, neg bool) {
	if q.isInfinity() {
		return
	}
	qy := q.y
	if neg {
		s.ty.Sub(curveP, q.y)
		norm1(s.ty)
		qy = s.ty
	}
	if s.isInfinity() {
		s.x.Set(q.x)
		s.y.Set(qy)
		s.z.SetInt64(1)
		return
	}
	z1z1, u2, s2 := s.t1, s.t2, s.t3
	z1z1.Mul(s.z, s.z)
	s.red(z1z1)
	u2.Mul(q.x, z1z1)
	s.red(u2)
	s2.Mul(qy, s.z)
	s.red(s2)
	s2.Mul(s2, z1z1)
	s.red(s2)

	h, r := u2, s2 // reuse in place
	h.Sub(h, s.x)
	norm1(h)
	r.Sub(r, s.y)
	norm1(r)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			s.doubleInPlace()
			return
		}
		s.z.SetInt64(0)
		return
	}

	h2, h3, v, yh3 := s.t4, s.t5, s.t6, s.t7
	h2.Mul(h, h)
	s.red(h2)
	h3.Mul(h2, h)
	s.red(h3)
	v.Mul(s.x, h2)
	s.red(v)
	yh3.Mul(s.y, h3)
	s.red(yh3) // old Y1·H3, captured before overwriting Y

	s.x.Mul(r, r)
	s.x.Sub(s.x, h3)
	s.x.Sub(s.x, h2.Lsh(v, 1)) // h2 is free as a temporary now
	s.x.Add(s.x, curvePx2)     // lift R² − H3 − 2V (> −3p) toward non-negative
	norm1(s.x)
	s.red(s.x) // X3 = R² − H3 − 2V

	s.y.Sub(v, s.x)
	norm1(s.y)
	s.y.Mul(s.y, r)
	s.red(s.y)
	s.y.Sub(s.y, yh3)
	norm1(s.y) // Y3 = R(V − X3) − Y1·H3

	s.z.Mul(s.z, h)
	s.red(s.z) // Z3 = Z1·H
}

// shamirLadder evaluates Σ k_i·P_i with one shared run of doublings.
func shamirLadder(terms []mulTerm) jacobianPoint {
	maxLen := 0
	for _, t := range terms {
		if len(t.naf) > maxLen {
			maxLen = len(t.naf)
		}
	}
	s := newLadderScratch()
	for i := maxLen - 1; i >= 0; i-- {
		s.doubleInPlace()
		for _, t := range terms {
			if i >= len(t.naf) || t.naf[i] == 0 {
				continue
			}
			d := int(t.naf[i])
			if t.neg {
				d = -d
			}
			if d > 0 {
				s.addMixedInPlace(t.table[(d-1)/2], false)
			} else {
				s.addMixedInPlace(t.table[(-d-1)/2], true)
			}
		}
	}
	if s.isInfinity() {
		return newInfinity()
	}
	return jacobianPoint{x: s.x, y: s.y, z: s.z}
}

// doubleScalarMultShamir computes u1·G + u2·P (u1, u2 reduced mod n) via
// GLV splitting, wNAF digits, and a single interleaved ladder.
func doubleScalarMultShamir(u1 *big.Int, p affinePoint, u2 *big.Int) jacobianPoint {
	fastBaseOnce.Do(initFastBaseTables)
	terms := make([]mulTerm, 0, 4)
	if u1.Sign() != 0 {
		k1, k2 := splitScalar(u1)
		terms = append(terms,
			newMulTerm(k1, baseWindow, baseOddG),
			newMulTerm(k2, baseWindow, baseOddLamG))
	}
	if u2.Sign() != 0 && !p.isInfinity() {
		k1, k2 := splitScalar(u2)
		pOdd := batchToAffine(oddMultiples(p, 1<<(pointWindow-2)))
		terms = append(terms,
			newMulTerm(k1, pointWindow, pOdd),
			newMulTerm(k2, pointWindow, phiTable(pOdd)))
	}
	return shamirLadder(terms)
}

// doubleScalarMultRef is the reference evaluation of u1·G + u2·P on top of
// the naive double-and-add ladder; Verify and Recover fall back to it when
// the fast path is disabled, and the differential tests pin the fast path
// against it.
func doubleScalarMultRef(u1 *big.Int, p affinePoint, u2 *big.Int) jacobianPoint {
	return addJacobian(scalarBaseMult(u1), scalarMult(p, u2))
}

// doubleScalarMult dispatches between the wNAF/GLV ladder and the naive
// reference according to SetFastMult.
func doubleScalarMult(u1 *big.Int, p affinePoint, u2 *big.Int) jacobianPoint {
	if fastMultOn.Load() {
		return doubleScalarMultShamir(u1, p, u2)
	}
	return doubleScalarMultRef(u1, p, u2)
}
