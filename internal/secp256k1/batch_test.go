package secp256k1

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// The batch APIs promise element-wise identical results to their per-item
// counterparts — the tests below hold them to it on valid, tampered, and
// malformed inputs, and pin the comb fixed-base path against the naive
// ladder.

func TestScalarBaseMultCombDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	scalars := edgeScalars()
	for i := 0; i < 32; i++ {
		scalars = append(scalars, randScalar(rng))
	}
	// Above-n and negative inputs exercise the comb's reduction preamble.
	scalars = append(scalars,
		new(big.Int).Add(curveN, big.NewInt(5)),
		new(big.Int).Neg(big.NewInt(7)),
		new(big.Int).Lsh(big.NewInt(1), 300))
	for _, k := range scalars {
		assertSamePoint(t, "comb k="+k.Text(16),
			scalarBaseMultComb(k),
			scalarBaseMult(new(big.Int).Mod(k, curveN)))
	}
}

func TestSignIdenticalAcrossBaseMultPaths(t *testing.T) {
	// The comb table only accelerates k·G inside Sign; the signature bytes
	// must not depend on which ladder produced the ephemeral point.
	key := PrivateKeyFromSeed([]byte("comb differential"))
	prev := SetFastMult(true)
	defer SetFastMult(prev)
	for trial := 0; trial < 8; trial++ {
		var digest [32]byte
		copy(digest[:], fmt.Sprintf("comb digest %02d material 32bytes!", trial))
		SetFastMult(true)
		fast, err := Sign(key, digest)
		if err != nil {
			t.Fatal(err)
		}
		SetFastMult(false)
		slow, err := Sign(key, digest)
		if err != nil {
			t.Fatal(err)
		}
		if fast.R.Cmp(slow.R) != 0 || fast.S.Cmp(slow.S) != 0 || fast.V != slow.V {
			t.Fatalf("trial %d: comb and naive Sign disagree", trial)
		}
	}
}

// batchFixture builds n valid (pub, digest, sig) triples from distinct
// keys.
func batchFixture(tb testing.TB, n int) []BatchVerifyItem {
	tb.Helper()
	items := make([]BatchVerifyItem, n)
	for i := range items {
		key := PrivateKeyFromSeed([]byte(fmt.Sprintf("batch fixture %d", i)))
		var digest [32]byte
		copy(digest[:], fmt.Sprintf("batch digest %03d padded to 32 b!", i))
		sig, err := Sign(key, digest)
		if err != nil {
			tb.Fatal(err)
		}
		items[i] = BatchVerifyItem{Pub: key.Pub, Digest: digest, Sig: sig}
	}
	return items
}

// assertBatchMatchesVerify checks VerifyBatch against per-item Verify.
func assertBatchMatchesVerify(t *testing.T, label string, items []BatchVerifyItem) {
	t.Helper()
	got := VerifyBatch(items)
	for i, it := range items {
		want := Verify(it.Pub, it.Digest, it.Sig)
		if got[i] != want {
			t.Errorf("%s: item %d: VerifyBatch=%v, Verify=%v", label, i, got[i], want)
		}
	}
}

func TestVerifyBatchAllValid(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 33} {
		items := batchFixture(t, n)
		res := VerifyBatch(items)
		if len(res) != n {
			t.Fatalf("n=%d: got %d results", n, len(res))
		}
		for i, ok := range res {
			if !ok {
				t.Errorf("n=%d: valid item %d rejected", n, i)
			}
		}
	}
}

func TestVerifyBatchMatchesVerifyUnderTampering(t *testing.T) {
	base := batchFixture(t, 12)

	tamper := func(mutate func(items []BatchVerifyItem)) []BatchVerifyItem {
		items := make([]BatchVerifyItem, len(base))
		copy(items, base)
		mutate(items)
		return items
	}

	cases := []struct {
		name  string
		items []BatchVerifyItem
	}{
		{"flipped digest bit", tamper(func(it []BatchVerifyItem) { it[3].Digest[0] ^= 1 })},
		{"bumped s", tamper(func(it []BatchVerifyItem) {
			it[5].Sig.S = new(big.Int).Add(base[5].Sig.S, big.NewInt(1))
		})},
		{"swapped pubs", tamper(func(it []BatchVerifyItem) {
			it[0].Pub, it[1].Pub = it[1].Pub, it[0].Pub
		})},
		{"zero r", tamper(func(it []BatchVerifyItem) { it[7].Sig.R = new(big.Int) })},
		{"s = n", tamper(func(it []BatchVerifyItem) { it[2].Sig.S = new(big.Int).Set(curveN) })},
		// Flipping the parity bit moves the reconstructed R to its mirror:
		// the combined check must fail and the per-item fallback must still
		// accept the item, because classic Verify never looks at v.
		{"flipped v parity", tamper(func(it []BatchVerifyItem) { it[4].Sig.V ^= 1 })},
		// v|2 claims r overflowed n, which puts x = r + n beyond the field
		// prime for any realistic r: R is unreconstructible and the item
		// must be verified individually (and still accepted).
		{"overflow v bit", tamper(func(it []BatchVerifyItem) { it[6].Sig.V |= 2 })},
		{"everything at once", tamper(func(it []BatchVerifyItem) {
			it[0].Digest[31] ^= 0xff
			it[4].Sig.V ^= 1
			it[6].Sig.V |= 2
			it[8].Sig.R = new(big.Int)
		})},
	}
	for _, tc := range cases {
		assertBatchMatchesVerify(t, tc.name, tc.items)
	}
}

func TestVerifyBatchNaivePathMatches(t *testing.T) {
	// With the fast ladders disabled VerifyBatch degrades to per-item
	// verification; results must be unchanged.
	items := batchFixture(t, 6)
	items[2].Digest[0] ^= 1
	fast := VerifyBatch(items)
	prev := SetFastMult(false)
	slow := VerifyBatch(items)
	SetFastMult(prev)
	for i := range items {
		if fast[i] != slow[i] {
			t.Errorf("item %d: fast=%v naive=%v", i, fast[i], slow[i])
		}
	}
}

func TestRecoverAddressBatchMatchesPerItem(t *testing.T) {
	n := 14
	digests := make([][32]byte, n)
	sigs := make([]Signature, n)
	for i := 0; i < n; i++ {
		key := PrivateKeyFromSeed([]byte(fmt.Sprintf("batch recover %d", i)))
		copy(digests[i][:], fmt.Sprintf("recover digest %03d pad to 32 by", i))
		sig, err := Sign(key, digests[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	// Corrupt a spread of items in ways that hit every failure class.
	sigs[1].S = new(big.Int).Add(sigs[1].S, big.NewInt(1)) // recovers a different (valid) key
	sigs[3].R = new(big.Int)                               // scalar validation error
	sigs[5].V ^= 1                                         // mirror R: different address, same on both paths
	sigs[7].V |= 2                                         // unreconstructible R
	digests[9][0] ^= 1                                     // different digest: different address

	addrs, errs := RecoverAddressBatch(digests, sigs)
	for i := 0; i < n; i++ {
		wantAddr, wantErr := RecoverAddress(digests[i], sigs[i])
		if (errs[i] == nil) != (wantErr == nil) {
			t.Errorf("item %d: batch err %v, per-item err %v", i, errs[i], wantErr)
			continue
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Errorf("item %d: batch err %q, per-item err %q", i, errs[i], wantErr)
			}
			continue
		}
		if addrs[i] != wantAddr {
			t.Errorf("item %d: batch addr %s, per-item %s", i, addrs[i], wantAddr)
		}
	}
}

func TestRecoverAddressBatchEmptyAndMismatch(t *testing.T) {
	addrs, errs := RecoverAddressBatch(nil, nil)
	if len(addrs) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: got %d addrs, %d errs", len(addrs), len(errs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	RecoverAddressBatch(make([][32]byte, 2), make([]Signature, 1))
}

func TestBatchModInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	xs := make([]*big.Int, 17)
	want := make([]*big.Int, len(xs))
	for i := range xs {
		for {
			x := randScalar(rng)
			if x.Sign() != 0 {
				xs[i] = x
				break
			}
		}
		want[i] = new(big.Int).ModInverse(xs[i], curveN)
	}
	if !batchModInverse(xs, curveN) {
		t.Fatal("batchModInverse failed on invertible inputs")
	}
	for i := range xs {
		if xs[i].Cmp(want[i]) != 0 {
			t.Errorf("element %d: batch inverse differs from ModInverse", i)
		}
	}
	// A non-invertible element (0) must report failure.
	if batchModInverse([]*big.Int{big.NewInt(3), new(big.Int)}, curveN) {
		t.Error("batchModInverse accepted a zero element")
	}
}

func BenchmarkVerifyBatch(b *testing.B) {
	for _, n := range []int{8, 32} {
		items := batchFixture(b, n)
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := VerifyBatch(items)
				if !res[0] {
					b.Fatal("valid item rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("peritem-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if !Verify(it.Pub, it.Digest, it.Sig) {
						b.Fatal("valid item rejected")
					}
				}
			}
		})
	}
}

func BenchmarkRecoverAddressBatch(b *testing.B) {
	n := 32
	digests := make([][32]byte, n)
	sigs := make([]Signature, n)
	for i := 0; i < n; i++ {
		key := PrivateKeyFromSeed([]byte(fmt.Sprintf("bench recover %d", i)))
		copy(digests[i][:], fmt.Sprintf("bench digest %03d padded to 32by", i))
		sig, err := Sign(key, digests[i])
		if err != nil {
			b.Fatal(err)
		}
		sigs[i] = sig
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := RecoverAddressBatch(digests, sigs)
			if errs[0] != nil {
				b.Fatal(errs[0])
			}
		}
	})
	b.Run("peritem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range digests {
				if _, err := RecoverAddress(digests[j], sigs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkSignComb(b *testing.B) {
	key, digest, _ := benchSig(b)
	for _, fast := range []bool{true, false} {
		name := "comb"
		if !fast {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			prev := SetFastMult(fast)
			defer SetFastMult(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Sign(key, digest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
