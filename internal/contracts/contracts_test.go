package contracts_test

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/contracts"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/types"
	"repro/internal/wallet"
)

func TestReentrancyExploitDrainsBank(t *testing.T) {
	// Reproduces the Fig. 7 attack end to end on the *legacy* Bank: the
	// attacker deposits 2 ether and withdraws 4, leaving the bank unable
	// to pay the victim back.
	env := evmtest.NewEnv(t, 3)
	victim, attacker := 1, 2

	bankAddr := env.Deploy(t, contracts.NewBank())
	attackerContract := contracts.NewAttacker(bankAddr, true)
	attackerAddr, _, err := env.Chain.Deploy(env.Wallets[attacker].Address(), attackerContract)
	if err != nil {
		t.Fatal(err)
	}

	env.MustCall(t, victim, bankAddr, "addBalance", wallet.CallOpts{Value: evmtest.Ether(10)})
	env.MustCall(t, attacker, attackerAddr, "deposit", wallet.CallOpts{Value: evmtest.Ether(2)})
	if got := env.Chain.Balance(bankAddr); got.Cmp(evmtest.Ether(12)) != 0 {
		t.Fatalf("bank holds %s, want 12 ether", got)
	}

	env.MustCall(t, attacker, attackerAddr, "withdraw", wallet.CallOpts{})

	loot := env.Chain.Balance(attackerAddr)
	if loot.Cmp(evmtest.Ether(4)) != 0 {
		t.Errorf("attacker contract holds %s, want 4 ether (2 deposited + 2 stolen)", loot)
	}
	bank := env.Chain.Balance(bankAddr)
	if bank.Cmp(evmtest.Ether(8)) != 0 {
		t.Errorf("bank holds %s, want 8 ether (insolvent for the victim's 10)", bank)
	}
}

func TestSafeBankResistsReentrancy(t *testing.T) {
	env := evmtest.NewEnv(t, 3)
	victim, attacker := 1, 2

	bankAddr := env.Deploy(t, contracts.NewSafeBank())
	attackerAddr, _, err := env.Chain.Deploy(env.Wallets[attacker].Address(),
		contracts.NewAttacker(bankAddr, true))
	if err != nil {
		t.Fatal(err)
	}

	env.MustCall(t, victim, bankAddr, "addBalance", wallet.CallOpts{Value: evmtest.Ether(10)})
	env.MustCall(t, attacker, attackerAddr, "deposit", wallet.CallOpts{Value: evmtest.Ether(2)})
	env.MustCall(t, attacker, attackerAddr, "withdraw", wallet.CallOpts{})

	if loot := env.Chain.Balance(attackerAddr); loot.Cmp(evmtest.Ether(2)) != 0 {
		t.Errorf("attacker got %s from SafeBank, want exactly its 2 ether back", loot)
	}
	if bank := env.Chain.Balance(bankAddr); bank.Cmp(evmtest.Ether(10)) != 0 {
		t.Errorf("SafeBank holds %s, want the victim's 10 ether", bank)
	}
}

func TestBankBalanceAccounting(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	bankAddr := env.Deploy(t, contracts.NewBank())
	env.MustCall(t, 1, bankAddr, "addBalance", wallet.CallOpts{Value: big.NewInt(500)})
	env.MustCall(t, 1, bankAddr, "addBalance", wallet.CallOpts{Value: big.NewInt(300)})
	r := env.MustCall(t, 1, bankAddr, "balanceOf", wallet.CallOpts{}, env.Wallets[1].Address())
	if got := r.Return[0].(*big.Int); got.Int64() != 800 {
		t.Errorf("balanceOf = %s, want 800", got)
	}
	// Honest withdraw pays out and zeroes the balance.
	env.MustCall(t, 1, bankAddr, "withdraw", wallet.CallOpts{})
	r = env.MustCall(t, 1, bankAddr, "balanceOf", wallet.CallOpts{}, env.Wallets[1].Address())
	if got := r.Return[0].(*big.Int); got.Sign() != 0 {
		t.Errorf("balance after withdraw = %s, want 0", got)
	}
}

func TestTokenSale(t *testing.T) {
	env := evmtest.NewEnv(t, 3)
	saleAddr := env.Deploy(t, contracts.NewTokenSale(100))

	r := env.MustCall(t, 1, saleAddr, "buy", wallet.CallOpts{Value: big.NewInt(5)})
	if minted := r.Return[0].(*big.Int); minted.Int64() != 500 {
		t.Errorf("minted %s, want 500", minted)
	}
	env.MustCall(t, 1, saleAddr, "transfer", wallet.CallOpts{},
		env.Wallets[2].Address(), big.NewInt(123))
	r = env.MustCall(t, 2, saleAddr, "balanceOf", wallet.CallOpts{}, env.Wallets[2].Address())
	if got := r.Return[0].(*big.Int); got.Int64() != 123 {
		t.Errorf("recipient balance = %s, want 123", got)
	}
	// Over-transfer reverts.
	rr := env.CallExpectRevert(t, 2, saleAddr, "transfer", wallet.CallOpts{},
		env.Wallets[1].Address(), big.NewInt(1000))
	if rr.Err == nil {
		t.Error("over-transfer succeeded")
	}
}

func TestWhitelistGate(t *testing.T) {
	env := evmtest.NewEnv(t, 3)
	owner := env.Wallets[0].Address()
	gateAddr := env.Deploy(t, contracts.NewWhitelistGate(owner))

	// Non-owner cannot manage the list.
	rr := env.CallExpectRevert(t, 1, gateAddr, "add", wallet.CallOpts{}, env.Wallets[1].Address())
	if !errors.Is(rr.Err, contracts.ErrNotOwner) {
		t.Errorf("err = %v, want ErrNotOwner", rr.Err)
	}

	// Unlisted caller is rejected.
	rr = env.CallExpectRevert(t, 1, gateAddr, "enter", wallet.CallOpts{})
	if !errors.Is(rr.Err, contracts.ErrNotWhitelisted) {
		t.Errorf("err = %v, want ErrNotWhitelisted", rr.Err)
	}

	env.MustCall(t, 0, gateAddr, "add", wallet.CallOpts{}, env.Wallets[1].Address())
	env.MustCall(t, 1, gateAddr, "enter", wallet.CallOpts{})

	// Removal takes effect.
	env.MustCall(t, 0, gateAddr, "remove", wallet.CallOpts{}, env.Wallets[1].Address())
	env.CallExpectRevert(t, 1, gateAddr, "enter", wallet.CallOpts{})
}

func TestWhitelistGateBatch(t *testing.T) {
	env := evmtest.NewEnv(t, 3)
	owner := env.Wallets[0].Address()
	gateAddr := env.Deploy(t, contracts.NewWhitelistGate(owner))

	packed := append(env.Wallets[1].Address().Bytes(), env.Wallets[2].Address().Bytes()...)
	r := env.MustCall(t, 0, gateAddr, "addBatch", wallet.CallOpts{}, packed)
	if n := r.Return[0].(uint64); n != 2 {
		t.Errorf("addBatch added %d, want 2", n)
	}
	for _, i := range []int{1, 2} {
		got := env.MustCall(t, 0, gateAddr, "isListed", wallet.CallOpts{}, env.Wallets[i].Address())
		if !got.Return[0].(bool) {
			t.Errorf("wallet %d not listed after batch", i)
		}
	}
	// Ragged payload rejected.
	rr := env.CallExpectRevert(t, 0, gateAddr, "addBatch", wallet.CallOpts{}, []byte{1, 2, 3})
	if rr.Err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestSimpleStorage(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, contracts.NewSimpleStorage())
	env.MustCall(t, 1, addr, "set", wallet.CallOpts{}, uint64(1234))
	r := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := r.Return[0].(uint64); v != 1234 {
		t.Errorf("get = %d, want 1234", v)
	}
}

func TestCallChain(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	deploy := func(c *evm.Contract) (types.Address, error) {
		addr, _, err := env.Chain.Deploy(env.Wallets[0].Address(), c)
		return addr, err
	}
	addrs, err := contracts.BuildChain(deploy, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("chain length %d", len(addrs))
	}
	// relay(0) through SCA→SCB→SCC counts two hops.
	r := env.MustCall(t, 1, addrs[0], "relay", wallet.CallOpts{}, uint64(0), "note")
	if v := r.Return[0].(uint64); v != 2 {
		t.Errorf("relay returned %d, want 2", v)
	}
	// The trace shows a depth-3 call chain (Fig. 5).
	if got := r.Trace.MaxDepth(); got != 2 {
		t.Errorf("max depth = %d, want 2 (three frames)", got)
	}
	if name, _ := env.Chain.ContractAt(addrs[0]); name.Name() != "SCA" {
		t.Errorf("entry contract named %q, want SCA", name.Name())
	}
}
