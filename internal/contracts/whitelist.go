package contracts

import (
	"errors"
	"fmt"

	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// ErrNotOwner is returned when a restricted method is called by a
// non-owner.
var ErrNotOwner = errors.New("contracts: caller is not the owner")

// ErrNotWhitelisted is returned by the baseline gate for unlisted callers.
var ErrNotWhitelisted = errors.New("contracts: caller not whitelisted")

// NewWhitelistGate builds the on-chain access-control baseline the paper
// motivates against (§ II-B/§ II-D): the owner maintains an address
// whitelist in contract storage (one SSTORE per address — the cost the
// Bluzelle sale paid for 7473 users), and enter() is only executable by
// whitelisted callers. The baseline benchmark (E7) measures it against
// SMACS token verification.
func NewWhitelistGate(owner types.Address) *evm.Contract {
	const slotList uint64 = 1
	entry := func(a types.Address) types.Hash { return evm.Slot(slotList, a.Bytes()) }
	requireOwner := func(call *evm.Call) error {
		if call.Caller() != owner {
			return ErrNotOwner
		}
		return nil
	}

	c := evm.NewContract("WhitelistGate")
	c.MustAddMethod(evm.Method{
		Name:       "add",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := requireOwner(call); err != nil {
				return nil, err
			}
			who, _ := call.Arg(0).(types.Address)
			return nil, call.Store(entry(who), types.Hash{31: 1})
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "addBatch",
		Params:     []any{[]byte(nil)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := requireOwner(call); err != nil {
				return nil, err
			}
			packed, _ := call.Arg(0).([]byte)
			if len(packed)%types.AddressLength != 0 {
				return nil, fmt.Errorf("addBatch: payload not a multiple of %d bytes", types.AddressLength)
			}
			for off := 0; off < len(packed); off += types.AddressLength {
				who := types.BytesToAddress(packed[off : off+types.AddressLength])
				if err := call.Store(entry(who), types.Hash{31: 1}); err != nil {
					return nil, err
				}
			}
			return []any{uint64(len(packed) / types.AddressLength)}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "remove",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := requireOwner(call); err != nil {
				return nil, err
			}
			who, _ := call.Arg(0).(types.Address)
			return nil, call.Store(entry(who), types.Hash{})
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "isListed",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			who, _ := call.Arg(0).(types.Address)
			w, err := call.Load(entry(who))
			if err != nil {
				return nil, err
			}
			return []any{!w.IsZero()}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "enter",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			w, err := call.Load(entry(call.Caller()))
			if err != nil {
				return nil, err
			}
			if w.IsZero() {
				return nil, ErrNotWhitelisted
			}
			return []any{true}, nil
		},
	})
	return c
}

// NewSimpleStorage builds the canonical set/get contract used by the
// quickstart example.
func NewSimpleStorage() *evm.Contract {
	c := evm.NewContract("SimpleStorage")
	c.MustAddMethod(evm.Method{
		Name:       "set",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, _ := call.Arg(0).(uint64)
			return nil, call.StoreUint(gas.CatApp, evm.SlotN(slotValue), v)
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "get",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(slotValue))
			if err != nil {
				return nil, err
			}
			return []any{v}, nil
		},
	})
	return c
}
