package contracts

import (
	"errors"
	"math/big"

	"repro/internal/evm"
	"repro/internal/types"
)

// NewTokenSale builds a minimal token-sale contract: buyers send ether to
// buy() and receive rate tokens per wei; balances are transferable. This is
// the workload of the paper's motivating example (§ II-D): sales that must
// restrict participation to approved users — with SMACS, the approval list
// lives off-chain in the Token Service instead of an on-chain whitelist.
func NewTokenSale(rate uint64) *evm.Contract {
	c := evm.NewContract("TokenSale")
	bal := func(a types.Address) types.Hash { return evm.Slot(slotBalances, a.Bytes()) }

	c.MustAddMethod(evm.Method{
		Name:       "buy",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			minted := new(big.Int).Mul(call.Value(), new(big.Int).SetUint64(rate))
			cur, err := loadBig(call, bal(call.Caller()))
			if err != nil {
				return nil, err
			}
			if err := storeBig(call, bal(call.Caller()), cur.Add(cur, minted)); err != nil {
				return nil, err
			}
			return []any{minted}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "transfer",
		Params:     []any{types.Address{}, (*big.Int)(nil)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			to, _ := call.Arg(0).(types.Address)
			amount, _ := call.Arg(1).(*big.Int)
			from, err := loadBig(call, bal(call.Caller()))
			if err != nil {
				return nil, err
			}
			if from.Cmp(amount) < 0 {
				return nil, errors.New("token sale: insufficient token balance")
			}
			if err := storeBig(call, bal(call.Caller()), from.Sub(from, amount)); err != nil {
				return nil, err
			}
			dst, err := loadBig(call, bal(to))
			if err != nil {
				return nil, err
			}
			return nil, storeBig(call, bal(to), dst.Add(dst, amount))
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "balanceOf",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			who, _ := call.Arg(0).(types.Address)
			v, err := loadBig(call, bal(who))
			if err != nil {
				return nil, err
			}
			return []any{v}, nil
		},
	})
	return c
}
