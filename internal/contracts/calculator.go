package contracts

import (
	"errors"

	"repro/internal/evm"
)

// The calculator contracts below are three independent implementations of
// the same specification — the "heads" of the Hydra case study (§ V-A),
// standing in for the same program written in Solidity, Vyper, and Serpent.
// All implement:
//
//	sumTo(n)  = 0 + 1 + ... + n
//	double(n) = 2n
//
// NewCalculatorBuggy seeds a divergence at one specific input so tests and
// examples can demonstrate the uniformity rule catching a head bug.

// ErrCalcOverflow is returned when a calculator input would overflow.
var ErrCalcOverflow = errors.New("contracts: calculator input too large")

const maxCalcInput = 1 << 31

func calculator(name string, sumTo, double func(uint64) uint64) *evm.Contract {
	c := evm.NewContract(name)
	c.MustAddMethod(evm.Method{
		Name:       "sumTo",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			n, _ := call.Arg(0).(uint64)
			if n > maxCalcInput {
				return nil, ErrCalcOverflow
			}
			return []any{sumTo(n)}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "double",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			n, _ := call.Arg(0).(uint64)
			if n > maxCalcInput {
				return nil, ErrCalcOverflow
			}
			return []any{double(n)}, nil
		},
	})
	return c
}

// NewCalculatorFormula computes closed-form (the "Solidity head").
func NewCalculatorFormula() *evm.Contract {
	return calculator("CalculatorFormula",
		func(n uint64) uint64 { return n * (n + 1) / 2 },
		func(n uint64) uint64 { return n << 1 },
	)
}

// NewCalculatorLoop computes iteratively (the "Vyper head").
func NewCalculatorLoop() *evm.Contract {
	return calculator("CalculatorLoop",
		func(n uint64) uint64 {
			var s uint64
			for i := uint64(1); i <= n; i++ {
				s += i
			}
			return s
		},
		func(n uint64) uint64 { return n + n },
	)
}

// NewCalculatorPairwise computes by pairing ends (the "Serpent head").
func NewCalculatorPairwise() *evm.Contract {
	return calculator("CalculatorPairwise",
		func(n uint64) uint64 {
			if n == 0 {
				return 0
			}
			pairs := n / 2
			s := pairs * (n + 1)
			if n%2 == 1 {
				s += (n + 1) / 2
			}
			return s
		},
		func(n uint64) uint64 { return 2 * n },
	)
}

// NewCalculatorBuggy is a head with a seeded bug: sumTo(triggerN) is off by
// one. Every other input matches the specification.
func NewCalculatorBuggy(triggerN uint64) *evm.Contract {
	return calculator("CalculatorBuggy",
		func(n uint64) uint64 {
			s := n * (n + 1) / 2
			if n == triggerN {
				s++ // the bug
			}
			return s
		},
		func(n uint64) uint64 { return 2 * n },
	)
}
