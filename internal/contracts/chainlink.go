package contracts

import (
	"repro/internal/evm"
	"repro/internal/types"
)

// NewChainLink builds one link of the call chain of Fig. 5: relay(v, note)
// forwards to the next link's relay(v+1, note), passing the transaction's
// token array through, and returns the final hop count. A link with a zero
// next address is the chain's terminal (SCC in the figure). The note
// payload gives argument tokens a realistic msg.data size to bind.
func NewChainLink(name string, next types.Address) *evm.Contract {
	c := evm.NewContract(name)
	c.MustAddMethod(evm.Method{
		Name:       "relay",
		Params:     []any{uint64(0), ""},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, _ := call.Arg(0).(uint64)
			note, _ := call.Arg(1).(string)
			if next.IsZero() {
				return []any{v}, nil
			}
			return call.CallContract(next, "relay", nil, []any{v + 1, note}, call.Tokens())
		},
	})
	return c
}

// BuildChain deploys a chain of depth SMACS-enabled links (via the supplied
// wrap function, typically transform.Enable) and returns their addresses in
// call order: addrs[0] is the entry contract (SCA), addrs[depth-1] the
// terminal. wrap may be nil for a legacy (unprotected) chain.
func BuildChain(deploy func(*evm.Contract) (types.Address, error), depth int,
	wrap func(*evm.Contract) *evm.Contract) ([]types.Address, error) {

	addrs := make([]types.Address, depth)
	next := types.ZeroAddress
	// Deploy back to front so each link knows its successor.
	for i := depth - 1; i >= 0; i-- {
		link := NewChainLink(linkName(i), next)
		if wrap != nil {
			link = wrap(link)
		}
		addr, err := deploy(link)
		if err != nil {
			return nil, err
		}
		addrs[i] = addr
		next = addr
	}
	return addrs, nil
}

func linkName(i int) string {
	return "SC" + string(rune('A'+i))
}
