// Package contracts provides the sample and baseline contracts of the
// reproduction: the vulnerable Bank and its Attacker (Fig. 7), a hardened
// SafeBank, the token-sale contract motivating off-chain whitelists
// (§ II-D), the on-chain whitelist baseline, a simple storage contract for
// the quickstart, and the generic call-chain link of Fig. 5.
package contracts

import (
	"errors"
	"math/big"

	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// Storage slot bases used by the contracts in this package.
const (
	slotBalances uint64 = 0
	slotValue    uint64 = 0
)

var errTransferFailed = errors.New("contracts: transfer failed")

func loadBig(c *evm.Call, slot types.Hash) (*big.Int, error) {
	w, err := c.Load(slot)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(w[:]), nil
}

func storeBig(c *evm.Call, slot types.Hash, v *big.Int) error {
	var w [32]byte
	v.FillBytes(w[:])
	return c.Store(slot, types.Hash(w))
}

// NewBank builds the vulnerable Bank of Fig. 7: addBalance deposits ether
// and withdraw sends the caller's balance *before* zeroing it, with the
// outbound transfer running the recipient's fallback — the re-entrancy
// vulnerability behind TheDAO.
func NewBank() *evm.Contract {
	c := evm.NewContract("Bank")
	c.MustAddMethod(evm.Method{
		Name:       "addBalance",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			slot := evm.Slot(slotBalances, call.Caller().Bytes())
			bal, err := loadBig(call, slot)
			if err != nil {
				return nil, err
			}
			return nil, storeBig(call, slot, bal.Add(bal, call.Value()))
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "withdraw",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			slot := evm.Slot(slotBalances, call.Caller().Bytes())
			amount, err := loadBig(call, slot)
			if err != nil {
				return nil, err
			}
			// VULNERABLE: external call before the balance is zeroed
			// (Fig. 7 line 8 before line 9).
			if err := call.Transfer(call.Caller(), amount); err != nil {
				return nil, errTransferFailed
			}
			return nil, storeBig(call, slot, new(big.Int))
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "balanceOf",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			who, _ := call.Arg(0).(types.Address)
			bal, err := loadBig(call, evm.Slot(slotBalances, who.Bytes()))
			if err != nil {
				return nil, err
			}
			return []any{bal}, nil
		},
	})
	return c
}

// NewSafeBank builds the checks-effects-interactions variant: the balance
// is zeroed before the outbound transfer, so re-entering withdraw finds
// nothing to steal.
func NewSafeBank() *evm.Contract {
	c := evm.NewContract("SafeBank")
	c.MustAddMethod(evm.Method{
		Name:       "addBalance",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			slot := evm.Slot(slotBalances, call.Caller().Bytes())
			bal, err := loadBig(call, slot)
			if err != nil {
				return nil, err
			}
			return nil, storeBig(call, slot, bal.Add(bal, call.Value()))
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "withdraw",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			slot := evm.Slot(slotBalances, call.Caller().Bytes())
			amount, err := loadBig(call, slot)
			if err != nil {
				return nil, err
			}
			if err := storeBig(call, slot, new(big.Int)); err != nil {
				return nil, err
			}
			if err := call.Transfer(call.Caller(), amount); err != nil {
				return nil, errTransferFailed
			}
			return nil, nil
		},
	})
	return c
}

// NewAttacker builds the Attacker of Fig. 7 targeting the bank at the given
// address: deposit() forwards ether to the bank; withdraw() starts the
// attack; the fallback re-enters the bank's withdraw exactly once (guarded
// by the isAttack flag).
func NewAttacker(bank types.Address, isAttack bool) *evm.Contract {
	const (
		slotIsAttack uint64 = 0
	)
	c := evm.NewContract("Attacker")
	armed := isAttack // mirrors the constructor argument of Fig. 7

	c.SetFallback(func(call *evm.Call) ([]any, error) {
		flag, err := call.LoadUint(gas.CatApp, evm.SlotN(slotIsAttack))
		if err != nil {
			return nil, err
		}
		if armed && flag == 0 {
			if err := call.StoreUint(gas.CatApp, evm.SlotN(slotIsAttack), 1); err != nil {
				return nil, err
			}
			// Re-enter the bank while its withdraw frame is still open.
			if _, err := call.CallContract(bank, "withdraw", nil, nil, call.Tokens()); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	c.MustAddMethod(evm.Method{
		Name:       "deposit",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			_, err := call.CallContract(bank, "addBalance", call.Value(), nil, call.Tokens())
			return nil, err
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "withdraw",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			// Re-arm for a fresh attack run, then trigger.
			if err := call.StoreUint(gas.CatApp, evm.SlotN(slotIsAttack), 0); err != nil {
				return nil, err
			}
			_, err := call.CallContract(bank, "withdraw", nil, nil, call.Tokens())
			return nil, err
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "loot",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			bal, err := call.BalanceOf(call.Self())
			if err != nil {
				return nil, err
			}
			return []any{bal}, nil
		},
	})
	return c
}
