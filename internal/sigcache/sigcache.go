// Package sigcache provides the small concurrency-safe LRU used to memoize
// ECDSA recovery results on the runtime-verification hot path: the evm
// package caches recovered transaction senders and the core package caches
// recovered token signers, both keyed by signing digest ‖ signature. An
// ecrecover costs hundreds of microseconds even on the wNAF/GLV fast path;
// a hit costs one map lookup.
package sigcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a fixed-capacity LRU from string keys to values of type V. All
// methods are safe for concurrent use.
type Cache[V any] struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used
	items  map[string]*list.Element
	hits   atomic.Uint64
	misses atomic.Uint64
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache holding at most capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Key builds the canonical cache key for a signature over a digest.
func Key(digest [32]byte, sig []byte) string {
	b := make([]byte, 0, len(digest)+len(sig))
	b = append(b, digest[:]...)
	b = append(b, sig...)
	return string(b)
}

// Get looks up key, promoting it to most recently used on a hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.order.MoveToFront(el)
		val := el.Value.(*entry[V]).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Add inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *Cache[V]) Add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[V]).key)
		}
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge empties the cache and resets the hit/miss counters.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	c.order.Init()
	c.items = make(map[string]*list.Element, c.cap)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
