package sigcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddBasics(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache reported a hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	c.Add("a", 10) // refresh overwrites
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("refreshed Get(a) = %d, want 10", v)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits %d misses, want 2/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	c.Get("a")    // a is now most recent; b is oldest
	c.Add("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New[string](8)
	c.Add("a", "x")
	c.Get("a")
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("stats after purge = %d/%d", h, m)
	}
}

func TestKeyUniqueness(t *testing.T) {
	var d1, d2 [32]byte
	d2[31] = 1
	sig := make([]byte, 65)
	if Key(d1, sig) == Key(d2, sig) {
		t.Error("different digests share a key")
	}
	sig2 := make([]byte, 65)
	sig2[64] = 1
	if Key(d1, sig) == Key(d1, sig2) {
		t.Error("different signatures share a key")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Add(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
