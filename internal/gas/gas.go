// Package gas defines the Ethereum gas schedule used by the simulated
// chain, a per-transaction gas meter with category accounting (so the
// benchmark harness can reproduce the paper's Verify/Misc/Bitmap/Parse cost
// breakdown), and the gas→USD conversion calibrated to the paper's own
// Table II figures.
package gas

import (
	"errors"
	"fmt"
	"math/big"
)

// Gas schedule constants (Istanbul-era values, matching the paper's 2019/2020
// measurement window closely enough that relative costs are preserved).
const (
	// TxBase is the intrinsic cost of any transaction.
	TxBase uint64 = 21000
	// TxDataZeroByte / TxDataNonZeroByte price calldata bytes.
	TxDataZeroByte    uint64 = 4
	TxDataNonZeroByte uint64 = 16
	// SLoad is the cost of reading one storage word.
	SLoad uint64 = 800
	// SStoreSet is the cost of writing a nonzero value into a zero slot.
	SStoreSet uint64 = 20000
	// SStoreReset is the cost of overwriting a nonzero slot.
	SStoreReset uint64 = 5000
	// KeccakBase / KeccakWord price the KECCAK256 opcode.
	KeccakBase uint64 = 30
	KeccakWord uint64 = 6
	// Ecrecover is the cost of the signature-recovery precompile.
	Ecrecover uint64 = 3000
	// Call is the base cost of a message call; CallValue is the surcharge
	// for transferring value.
	Call      uint64 = 700
	CallValue uint64 = 9000
	// NewAccount is the surcharge for creating a previously empty account.
	NewAccount uint64 = 25000
	// CopyWord prices memory/calldata copies per 32-byte word.
	CopyWord uint64 = 3
	// QuickStep is the generic cost of a cheap arithmetic/logic operation.
	QuickStep uint64 = 3
)

// Category labels a gas charge so receipts can report the same cost
// breakdown as the paper's Table II/III (Verify / Misc / Bitmap / Parse).
type Category string

// Gas accounting categories.
const (
	// CatIntrinsic covers the 21000 base cost plus calldata pricing.
	CatIntrinsic Category = "intrinsic"
	// CatVerify covers token signature verification (Alg. 1).
	CatVerify Category = "verify"
	// CatBitmap covers one-time-token bitmap reads/updates (Alg. 2).
	CatBitmap Category = "bitmap"
	// CatParse covers extracting a contract's token out of a token array
	// in call-chain transactions (§ IV-D).
	CatParse Category = "parse"
	// CatMisc covers everything else the SMACS preamble does (dispatch,
	// calldata handling, expiry checks).
	CatMisc Category = "misc"
	// CatApp covers the application method body itself.
	CatApp Category = "app"
)

// ErrOutOfGas is returned by Meter.Charge when the limit is exhausted.
var ErrOutOfGas = errors.New("gas: out of gas")

// Meter tracks gas consumption against a limit, keeping a per-category
// breakdown.
type Meter struct {
	limit uint64
	used  uint64
	byCat map[Category]uint64
}

// NewMeter creates a meter with the given gas limit.
func NewMeter(limit uint64) *Meter {
	return &Meter{limit: limit, byCat: make(map[Category]uint64, 6)}
}

// Charge consumes amount gas under the given category. It returns
// ErrOutOfGas (wrapped) when the limit would be exceeded; the meter is then
// drained to the limit, mirroring EVM semantics where an out-of-gas
// execution consumes everything.
func (m *Meter) Charge(cat Category, amount uint64) error {
	if m.used+amount > m.limit || m.used+amount < m.used {
		remaining := m.limit - m.used
		m.byCat[cat] += remaining
		m.used = m.limit
		return fmt.Errorf("%w: need %d, %d remaining", ErrOutOfGas, amount, remaining)
	}
	m.used += amount
	m.byCat[cat] += amount
	return nil
}

// Used returns the gas consumed so far.
func (m *Meter) Used() uint64 { return m.used }

// Limit returns the meter's gas limit.
func (m *Meter) Limit() uint64 { return m.limit }

// Remaining returns the gas left.
func (m *Meter) Remaining() uint64 { return m.limit - m.used }

// ByCategory returns a copy of the per-category breakdown.
func (m *Meter) ByCategory() map[Category]uint64 {
	out := make(map[Category]uint64, len(m.byCat))
	for k, v := range m.byCat {
		out[k] = v
	}
	return out
}

// CalldataGas prices a calldata payload byte-by-byte (zero bytes are
// cheaper, as on Ethereum).
func CalldataGas(data []byte) uint64 {
	var g uint64
	for _, b := range data {
		if b == 0 {
			g += TxDataZeroByte
		} else {
			g += TxDataNonZeroByte
		}
	}
	return g
}

// KeccakGas prices hashing n bytes with KECCAK256.
func KeccakGas(n int) uint64 {
	words := uint64((n + 31) / 32)
	return KeccakBase + KeccakWord*words
}

// Price converts gas to ether and USD. The defaults are back-derived from
// the paper's own Table II (165957 gas ↦ $0.041), i.e. ≈1.83 gwei/gas at
// ≈$135/ETH in early 2020.
type Price struct {
	// GweiPerGas is the gas price in gwei.
	GweiPerGas float64
	// USDPerETH is the ether exchange rate.
	USDPerETH float64
}

// DefaultPrice is the calibration used throughout the benchmarks.
var DefaultPrice = Price{GweiPerGas: 1.83, USDPerETH: 135}

// USD converts a gas amount to US dollars.
func (p Price) USD(gasUsed uint64) float64 {
	return float64(gasUsed) * p.GweiPerGas * 1e-9 * p.USDPerETH
}

// Wei converts a gas amount to wei.
func (p Price) Wei(gasUsed uint64) *big.Int {
	gwei := new(big.Float).SetFloat64(p.GweiPerGas)
	gwei.Mul(gwei, new(big.Float).SetUint64(gasUsed))
	gwei.Mul(gwei, big.NewFloat(1e9))
	out, _ := gwei.Int(nil)
	return out
}
