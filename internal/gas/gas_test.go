package gas

import (
	"errors"
	"math"
	"testing"
)

func TestMeterCharge(t *testing.T) {
	m := NewMeter(1000)
	if err := m.Charge(CatVerify, 400); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(CatMisc, 500); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 900 || m.Remaining() != 100 {
		t.Errorf("used=%d remaining=%d", m.Used(), m.Remaining())
	}
	byCat := m.ByCategory()
	if byCat[CatVerify] != 400 || byCat[CatMisc] != 500 {
		t.Errorf("breakdown = %v", byCat)
	}
}

func TestMeterOutOfGas(t *testing.T) {
	m := NewMeter(100)
	err := m.Charge(CatApp, 101)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", err)
	}
	// EVM semantics: out-of-gas drains the meter.
	if m.Used() != 100 || m.Remaining() != 0 {
		t.Errorf("used=%d after OOG, want limit", m.Used())
	}
	if m.ByCategory()[CatApp] != 100 {
		t.Errorf("category not drained: %v", m.ByCategory())
	}
}

func TestMeterOverflowGuard(t *testing.T) {
	m := NewMeter(math.MaxUint64)
	if err := m.Charge(CatApp, math.MaxUint64-10); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(CatApp, 100); !errors.Is(err, ErrOutOfGas) {
		t.Errorf("overflowing charge accepted: %v", err)
	}
}

func TestByCategoryIsCopy(t *testing.T) {
	m := NewMeter(1000)
	_ = m.Charge(CatApp, 10)
	snapshot := m.ByCategory()
	snapshot[CatApp] = 9999
	if m.ByCategory()[CatApp] != 10 {
		t.Error("ByCategory exposes internal map")
	}
}

func TestCalldataGas(t *testing.T) {
	// 3 zero bytes + 2 nonzero bytes.
	data := []byte{0, 1, 0, 2, 0}
	want := 3*TxDataZeroByte + 2*TxDataNonZeroByte
	if got := CalldataGas(data); got != want {
		t.Errorf("CalldataGas = %d, want %d", got, want)
	}
	if CalldataGas(nil) != 0 {
		t.Error("empty calldata should be free")
	}
}

func TestKeccakGas(t *testing.T) {
	tests := []struct {
		n    int
		want uint64
	}{
		{0, 30},
		{1, 36},
		{32, 36},
		{33, 42},
		{64, 42},
	}
	for _, tt := range tests {
		if got := KeccakGas(tt.n); got != tt.want {
			t.Errorf("KeccakGas(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestUSDCalibration(t *testing.T) {
	// The calibration must reproduce the paper's own Table II conversion:
	// 165957 gas ↦ ~$0.041.
	usd := DefaultPrice.USD(165957)
	if usd < 0.040 || usd > 0.042 {
		t.Errorf("USD(165957) = %f, want ≈0.041", usd)
	}
	// And Table IV: 8849037 gas ↦ ~$2.14 (±10%%).
	usd = DefaultPrice.USD(8849037)
	if usd < 1.9 || usd > 2.4 {
		t.Errorf("USD(8849037) = %f, want ≈2.14", usd)
	}
}

func TestWei(t *testing.T) {
	wei := DefaultPrice.Wei(1)
	// 1.83 gwei = 1.83e9 wei.
	if wei.Int64() != 1_830_000_000 {
		t.Errorf("Wei(1) = %s, want 1830000000", wei)
	}
	wei = DefaultPrice.Wei(1000)
	if wei.Int64() != 1_830_000_000_000 {
		t.Errorf("Wei(1000) = %s", wei)
	}
}
