package tshttp

import (
	"errors"
	"fmt"
	"net"
)

// TransportError is a connection-level failure talking to the Token
// Service — dial failures, resets, timeouts — as opposed to a service
// denial (which arrives as an HTTP status plus wire error). It carries
// the retry classification the client worked out:
//
//   - Retryable: the request provably never reached the service (the
//     dial itself failed) or the call is idempotent, so repeating it
//     cannot double-spend anything. The client already retried these
//     internally; a surviving retryable error means retries ran out.
//   - Fatal (Retryable=false): the connection died after the request
//     may have been written. For POST /v1/token[s] the service may have
//     issued the token — consuming a one-time counter index — and lost
//     only the reply, so blind resubmission would burn a second index
//     for the same transaction. Callers must treat the issuance as
//     unknown and rebuild the request (fresh proof, fresh decision)
//     rather than replay it.
type TransportError struct {
	// Op names the failed call ("token request", "stats request", …).
	Op string
	// Retryable reports whether resubmitting the identical request is
	// safe (see the type comment).
	Retryable bool
	// Err is the underlying transport error.
	Err error
}

func (e *TransportError) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("%s: %s transport error: %v", e.Op, kind, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// IsRetryable reports whether err is a transport failure that is safe
// to resubmit verbatim: either the request provably never reached the
// service or the call was idempotent. Service denials (HTTP-level
// errors) are never retryable.
func IsRetryable(err error) bool {
	var te *TransportError
	return errors.As(err, &te) && te.Retryable
}

// classifyTransport wraps a transport error with its retry
// classification. idempotent marks calls that are safe to repeat even
// if the first attempt was processed (GETs, rule PUTs).
func classifyTransport(op string, err error, idempotent bool) *TransportError {
	return &TransportError{Op: op, Retryable: idempotent || provablyUnsent(err), Err: err}
}

// provablyUnsent reports whether the failure happened before any byte
// of the request could reach the service: the dial itself failed
// (connection refused, unreachable host). A reset or EOF after the
// connection was up is ambiguous — the service may have processed the
// request and lost only the reply — so it does NOT qualify.
func provablyUnsent(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}
