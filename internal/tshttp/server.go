package tshttp

import (
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/ts"
)

// Server exposes a Token Service over HTTP.
//
// Routes:
//
//	POST /v1/token   — request a token (clients)
//	POST /v1/tokens  — request a batch of tokens in one round-trip
//	GET  /v1/info    — service address and token lifetime (public)
//	GET  /v1/stats   — aggregate issued/rejected counters (public)
//	GET  /v1/rules   — current ACRs (owner only: rules stay private)
//	PUT  /v1/rules   — replace the ACRs (owner only)
//	GET  /healthz    — liveness
//	GET  /metrics    — Prometheus text exposition of the server's registry
//	GET  /debug/pprof/* — runtime profiles (only with ServerOptions.Pprof)
//
// Every API route is instrumented: http_requests_total{route,code},
// http_request_seconds{route}, and an http_in_flight_requests gauge.
type Server struct {
	svc        *ts.Service
	ownerToken string
	mux        *http.ServeMux
	metrics    *serverMetrics
}

// ServerOptions tunes the HTTP frontend's observability surface.
type ServerOptions struct {
	// Registry is where the server's HTTP series live and what GET
	// /metrics renders (nil = metrics.Default()). Pass the same registry
	// the wrapped ts.Service was configured with so one scrape covers
	// issuance and transport.
	Registry *metrics.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose internals (goroutine stacks, heap contents) that do
	// not belong on an open listener.
	Pprof bool
	// Admin, when set, is mounted under /v1/membership/ and /v1/admin/
	// behind the owner guard — the membership.Manager handler in the
	// daemon. Every membership route mutates issuance state, so the same
	// bearer secret that protects rule administration protects these
	// (and an empty owner token disables them, fail closed).
	Admin http.Handler
}

// NewServer wraps svc with default options. ownerToken is the bearer
// secret required by the rule-administration endpoints; an empty token
// disables them entirely (fail closed).
func NewServer(svc *ts.Service, ownerToken string) *Server {
	return NewServerWithOptions(svc, ownerToken, ServerOptions{})
}

// NewServerWithOptions wraps svc with explicit observability options.
func NewServerWithOptions(svc *ts.Service, ownerToken string, opts ServerOptions) *Server {
	reg := metrics.Or(opts.Registry)
	s := &Server{svc: svc, ownerToken: ownerToken, mux: http.NewServeMux(), metrics: newServerMetrics(reg)}
	handle := func(pattern, route string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(route, h))
	}
	handle("POST /v1/token", "/v1/token", s.handleToken)
	handle("POST /v1/tokens", "/v1/tokens", s.handleTokenBatch)
	handle("GET /v1/info", "/v1/info", s.handleInfo)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("GET /v1/rules", "/v1/rules", s.ownerOnly(s.handleGetRules))
	handle("PUT /v1/rules", "/v1/rules", s.ownerOnly(s.handlePutRules))
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.Handle("GET /metrics", reg.Handler())
	if opts.Admin != nil {
		admin := s.ownerOnly(opts.Admin.ServeHTTP)
		handle("/v1/membership/", "/v1/membership", admin)
		handle("/v1/admin/", "/v1/admin", admin)
	}
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler (mount behind TLS in production — the
// paper's interface is HTTPS).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) ownerOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.ownerToken == "" {
			writeJSON(w, http.StatusForbidden, wireError{Error: "rule administration disabled"})
			return
		}
		got := r.Header.Get("Authorization")
		want := "Bearer " + s.ownerToken
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			writeJSON(w, http.StatusUnauthorized, wireError{Error: "owner authorization required"})
			return
		}
		next(w, r)
	}
}

// Request-body caps: decoding happens before any semantic validation, so
// the byte limit — not the batch-length check — is what actually bounds
// an attacker-controlled allocation. The batch cap equals the
// single-request cap, so batching never admits a payload /v1/token would
// reject: a client whose argument payloads are large should send smaller
// batches or fall back to one /v1/token call per request.
const (
	maxTokenBodyBytes = 1 << 20           // one token request
	maxBatchBodyBytes = maxTokenBodyBytes // a full batch (~1 KiB per slot at maxBatchSize)
	maxRulesBodyBytes = 16 << 20          // an owner's full rule set
)

func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	var wr WireRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxTokenBodyBytes)).Decode(&wr); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad JSON: " + err.Error()})
		return
	}
	req, err := ToRequest(&wr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: err.Error()})
		return
	}
	tk, err := s.svc.Issue(req)
	if err != nil {
		status := http.StatusForbidden
		if errors.Is(err, core.ErrBadRequest) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, wireError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, WireToken{
		Token:  hex.EncodeToString(tk.Encode()),
		Expire: tk.Expire.Unix(),
		Index:  tk.Index,
	})
}

// maxBatchSize bounds POST /v1/tokens so one request cannot monopolize
// the issuance pipeline.
const maxBatchSize = 1024

func (s *Server) handleTokenBatch(w http.ResponseWriter, r *http.Request) {
	var wb WireBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)).Decode(&wb); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad JSON: " + err.Error()})
		return
	}
	if len(wb.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "empty batch"})
		return
	}
	if len(wb.Requests) > maxBatchSize {
		writeJSON(w, http.StatusBadRequest,
			wireError{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(wb.Requests), maxBatchSize)})
		return
	}

	// Decode every slot first; a malformed slot carries its error without
	// failing the batch. The well-formed remainder issues concurrently.
	results := make([]WireBatchResult, len(wb.Requests))
	reqs := make([]*core.Request, 0, len(wb.Requests))
	slots := make([]int, 0, len(wb.Requests))
	for i := range wb.Requests {
		req, err := ToRequest(&wb.Requests[i])
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, req)
		slots = append(slots, i)
	}
	for j, res := range s.svc.IssueBatch(reqs) {
		i := slots[j]
		if res.Err != nil {
			results[i].Error = res.Err.Error()
			continue
		}
		results[i].Token = &WireToken{
			Token:  hex.EncodeToString(res.Token.Encode()),
			Expire: res.Token.Expire.Unix(),
			Index:  res.Token.Index,
		}
	}
	writeJSON(w, http.StatusOK, WireBatchResponse{Results: results})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"address":         s.svc.Address().Hex(),
		"lifetimeSeconds": int64(s.svc.Lifetime().Seconds()),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	issued, rejected := s.svc.Stats()
	writeJSON(w, http.StatusOK, Stats{Issued: issued, Rejected: rejected})
}

func (s *Server) handleGetRules(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Rules().Snapshot())
}

func (s *Server) handlePutRules(w http.ResponseWriter, r *http.Request) {
	rs := rules.NewRuleSet()
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRulesBodyBytes)).Decode(rs); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad rules JSON: " + err.Error()})
		return
	}
	s.svc.ReplaceRules(rs)
	writeJSON(w, http.StatusOK, map[string]string{"status": "rules replaced"})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
