package tshttp

import (
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/ts"
)

// Server exposes a Token Service over HTTP.
//
// Routes:
//
//	POST /v1/token   — request a token (clients)
//	GET  /v1/info    — service address and token lifetime (public)
//	GET  /v1/rules   — current ACRs (owner only: rules stay private)
//	PUT  /v1/rules   — replace the ACRs (owner only)
//	GET  /healthz    — liveness
type Server struct {
	svc        *ts.Service
	ownerToken string
	mux        *http.ServeMux
}

// NewServer wraps svc. ownerToken is the bearer secret required by the
// rule-administration endpoints; an empty token disables them entirely
// (fail closed).
func NewServer(svc *ts.Service, ownerToken string) *Server {
	s := &Server{svc: svc, ownerToken: ownerToken, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/token", s.handleToken)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/rules", s.ownerOnly(s.handleGetRules))
	s.mux.HandleFunc("PUT /v1/rules", s.ownerOnly(s.handlePutRules))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// Handler returns the HTTP handler (mount behind TLS in production — the
// paper's interface is HTTPS).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) ownerOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.ownerToken == "" {
			writeJSON(w, http.StatusForbidden, wireError{Error: "rule administration disabled"})
			return
		}
		got := r.Header.Get("Authorization")
		want := "Bearer " + s.ownerToken
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			writeJSON(w, http.StatusUnauthorized, wireError{Error: "owner authorization required"})
			return
		}
		next(w, r)
	}
}

func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	var wr WireRequest
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad JSON: " + err.Error()})
		return
	}
	req, err := ToRequest(&wr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: err.Error()})
		return
	}
	tk, err := s.svc.Issue(req)
	if err != nil {
		status := http.StatusForbidden
		if errors.Is(err, core.ErrBadRequest) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, wireError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, WireToken{
		Token:  hex.EncodeToString(tk.Encode()),
		Expire: tk.Expire.Unix(),
		Index:  tk.Index,
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"address":         s.svc.Address().Hex(),
		"lifetimeSeconds": int64(s.svc.Lifetime().Seconds()),
	})
}

func (s *Server) handleGetRules(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Rules().Snapshot())
}

func (s *Server) handlePutRules(w http.ResponseWriter, r *http.Request) {
	rs := rules.NewRuleSet()
	if err := json.NewDecoder(r.Body).Decode(rs); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad rules JSON: " + err.Error()})
		return
	}
	s.svc.ReplaceRules(rs)
	writeJSON(w, http.StatusOK, map[string]string{"status": "rules replaced"})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
