// Package tshttp implements the Token Service's HTTPS-enabled web
// interface (Fig. 1): a JSON API through which clients request tokens and
// the owner manages Access Control Rules, plus the matching client. Rule
// state is never exposed to clients — only to the owner — preserving the
// rule privacy property of § VII-A(d).
package tshttp

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/core"
	"repro/internal/types"
)

// WireArg is the JSON form of one named argument. Kind selects the ABI
// type; Value is its string encoding (0x-hex for addresses and bytes,
// decimal for uint256, "true"/"false" for bool, raw text for string).
type WireArg struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

// WireRequest is the JSON form of a token request (Fig. 2 over HTTP).
type WireRequest struct {
	Type     string    `json:"type"` // "super" | "method" | "argument"
	Contract string    `json:"contract"`
	Sender   string    `json:"sender"`
	Method   string    `json:"method,omitempty"`
	Args     []WireArg `json:"args,omitempty"`
	OneTime  bool      `json:"oneTime,omitempty"`
	// Proof is the hex proof of possession (see core.Request.Proof).
	Proof string `json:"proof,omitempty"`
}

// WireToken is the JSON form of an issued token.
type WireToken struct {
	// Token is the hex encoding of the 86-byte token (Fig. 3).
	Token string `json:"token"`
	// Expire is the Unix expiry timestamp, echoed for convenience.
	Expire int64 `json:"expire"`
	// Index is the one-time index, or -1.
	Index int64 `json:"index"`
}

// WireBatchRequest is the JSON body of POST /v1/tokens: N token requests
// submitted in one round-trip.
type WireBatchRequest struct {
	Requests []WireRequest `json:"requests"`
}

// WireBatchResult is one slot of a batch response: exactly one of Token
// and Error is set.
type WireBatchResult struct {
	Token *WireToken `json:"token,omitempty"`
	Error string     `json:"error,omitempty"`
}

// WireBatchResponse answers a batch request with one result per submitted
// request, in order. A rejected request occupies its slot with an error
// instead of failing the whole batch.
type WireBatchResponse struct {
	Results []WireBatchResult `json:"results"`
}

// wireError is the JSON error body.
type wireError struct {
	Error string `json:"error"`
}

func parseTokenType(s string) (core.TokenType, error) {
	switch strings.ToLower(s) {
	case "super":
		return core.SuperType, nil
	case "method":
		return core.MethodType, nil
	case "argument":
		return core.ArgumentType, nil
	default:
		return 0, fmt.Errorf("unknown token type %q", s)
	}
}

func tokenTypeName(t core.TokenType) string { return t.String() }

// DecodeArg converts a wire argument into an ABI-encodable Go value.
func DecodeArg(a WireArg) (any, error) {
	switch strings.ToLower(a.Kind) {
	case "address":
		return types.HexToAddress(a.Value)
	case "uint256", "uint":
		v, ok := new(big.Int).SetString(a.Value, 10)
		if !ok || v.Sign() < 0 {
			return nil, fmt.Errorf("argument %q: bad uint256 %q", a.Name, a.Value)
		}
		return v, nil
	case "bool":
		switch strings.ToLower(a.Value) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("argument %q: bad bool %q", a.Name, a.Value)
	case "bytes":
		s := strings.TrimPrefix(a.Value, "0x")
		b, err := hex.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("argument %q: bad bytes: %w", a.Name, err)
		}
		return b, nil
	case "string":
		return a.Value, nil
	default:
		return nil, fmt.Errorf("argument %q: unknown kind %q", a.Name, a.Kind)
	}
}

// EncodeArg converts a Go argument value into wire form.
func EncodeArg(name string, v any) (WireArg, error) {
	switch x := v.(type) {
	case types.Address:
		return WireArg{Name: name, Kind: "address", Value: x.Hex()}, nil
	case *big.Int:
		return WireArg{Name: name, Kind: "uint256", Value: x.String()}, nil
	case uint64:
		return WireArg{Name: name, Kind: "uint256", Value: fmt.Sprintf("%d", x)}, nil
	case bool:
		return WireArg{Name: name, Kind: "bool", Value: fmt.Sprintf("%t", x)}, nil
	case []byte:
		return WireArg{Name: name, Kind: "bytes", Value: fmt.Sprintf("0x%x", x)}, nil
	case string:
		return WireArg{Name: name, Kind: "string", Value: x}, nil
	default:
		return WireArg{}, fmt.Errorf("argument %q: unsupported type %T", name, v)
	}
}

// ToRequest converts a wire request into a core request.
func ToRequest(w *WireRequest) (*core.Request, error) {
	tp, err := parseTokenType(w.Type)
	if err != nil {
		return nil, err
	}
	contract, err := types.HexToAddress(w.Contract)
	if err != nil {
		return nil, fmt.Errorf("contract: %w", err)
	}
	sender, err := types.HexToAddress(w.Sender)
	if err != nil {
		return nil, fmt.Errorf("sender: %w", err)
	}
	req := &core.Request{
		Type:     tp,
		Contract: contract,
		Sender:   sender,
		Method:   w.Method,
		OneTime:  w.OneTime,
	}
	if w.Proof != "" {
		proof, err := hex.DecodeString(strings.TrimPrefix(w.Proof, "0x"))
		if err != nil {
			return nil, fmt.Errorf("proof: %w", err)
		}
		req.Proof = proof
	}
	for _, a := range w.Args {
		v, err := DecodeArg(a)
		if err != nil {
			return nil, err
		}
		req.Args = append(req.Args, core.NamedArg{Name: a.Name, Value: v})
	}
	return req, nil
}

// FromRequest converts a core request into wire form (client side).
func FromRequest(req *core.Request) (*WireRequest, error) {
	w := &WireRequest{
		Type:     tokenTypeName(req.Type),
		Contract: req.Contract.Hex(),
		Sender:   req.Sender.Hex(),
		Method:   req.Method,
		OneTime:  req.OneTime,
	}
	if len(req.Proof) > 0 {
		w.Proof = hex.EncodeToString(req.Proof)
	}
	for _, a := range req.Args {
		wa, err := EncodeArg(a.Name, a.Value)
		if err != nil {
			return nil, err
		}
		w.Args = append(w.Args, wa)
	}
	return w, nil
}
