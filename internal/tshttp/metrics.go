package tshttp

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// HTTP metric names exported by the Token Service frontend.
const (
	MetricRequests = "http_requests_total"
	MetricLatency  = "http_request_seconds"
	MetricInFlight = "http_in_flight_requests"
)

// serverMetrics holds the frontend's instrumentation handles. Latency
// histograms are pre-resolved per route; the per-status counters are
// resolved on first use (get-or-create is a short critical section, and
// a route sees a handful of distinct status codes).
type serverMetrics struct {
	reg      *metrics.Registry
	inFlight *metrics.Gauge
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		reg:      reg,
		inFlight: reg.Gauge(MetricInFlight, "API requests currently being served."),
	}
}

// statusRecorder captures the response code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one API route with request counting, latency
// observation, and the in-flight gauge.
func (s *Server) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.reg.Histogram(MetricLatency,
		"API request latency by route.", nil, metrics.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next(rec, r)
		hist.ObserveDuration(time.Since(start))
		s.metrics.inFlight.Dec()
		s.metrics.reg.Counter(MetricRequests, "API requests by route and status code.",
			metrics.L("route", route), metrics.L("code", strconv.Itoa(rec.status))).Inc()
	}
}
