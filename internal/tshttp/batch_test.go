package tshttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/types"
)

func TestBatchTokenRoundTrip(t *testing.T) {
	srv, svc := newTestServer(t, "")
	client := NewClient(srv.URL, "")

	const n = 10
	reqs := make([]*core.Request, n)
	for i := range reqs {
		reqs[i] = &core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, OneTime: true}
	}
	results, err := client.RequestTokens(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("len(results) = %d, want %d", len(results), n)
	}
	seen := make(map[int64]bool, n)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("slot %d: %v", i, res.Err)
		}
		if err := res.Token.VerifySignature(svc.Address(), core.Binding{Origin: httpCli, Contract: httpDst}); err != nil {
			t.Errorf("slot %d token does not verify: %v", i, err)
		}
		if seen[res.Token.Index] {
			t.Errorf("slot %d: duplicate one-time index %d", i, res.Token.Index)
		}
		seen[res.Token.Index] = true
	}
	issued, rejected := svc.Stats()
	if issued != n || rejected != 0 {
		t.Errorf("stats = (%d, %d), want (%d, 0)", issued, rejected, n)
	}
}

func TestBatchMixedSlots(t *testing.T) {
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(httpCli)))
	srv, svc := newTestServer(t, "")
	svc.ReplaceRules(rs)
	client := NewClient(srv.URL, "")

	results, err := client.RequestTokens([]*core.Request{
		{Type: core.SuperType, Contract: httpDst, Sender: httpCli},
		{Type: core.SuperType, Contract: httpDst, Sender: types.Address{0xbb}},
		{Type: core.MethodType, Contract: httpDst, Sender: httpCli, Method: "transfer(address,uint256)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("whitelisted slots failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("non-whitelisted slot issued a token")
	} else if !strings.Contains(results[1].Err.Error(), "denied") {
		t.Errorf("slot 1 error = %v", results[1].Err)
	}
}

func TestBatchMalformedSlotDoesNotFailBatch(t *testing.T) {
	srv, _ := newTestServer(t, "")

	// A slot with an unparseable address must carry its own error while
	// the rest of the batch issues.
	body, _ := json.Marshal(WireBatchRequest{Requests: []WireRequest{
		{Type: "super", Contract: httpDst.Hex(), Sender: httpCli.Hex()},
		{Type: "super", Contract: "not-an-address", Sender: httpCli.Hex()},
	}})
	resp, err := http.Post(srv.URL+"/v1/tokens", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var wr WireBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Results) != 2 {
		t.Fatalf("len(results) = %d", len(wr.Results))
	}
	if wr.Results[0].Token == nil || wr.Results[0].Error != "" {
		t.Errorf("slot 0 = %+v, want token", wr.Results[0])
	}
	if wr.Results[1].Token != nil || wr.Results[1].Error == "" {
		t.Errorf("slot 1 = %+v, want error", wr.Results[1])
	}
}

func TestBatchLimits(t *testing.T) {
	srv, _ := newTestServer(t, "")
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/tokens", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"requests":[]}`); got != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d", got)
	}
	if got := post(`{"requests"`); got != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d", got)
	}
	var b strings.Builder
	b.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchSize; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"type":"super","contract":"%s","sender":"%s"}`, httpDst.Hex(), httpCli.Hex())
	}
	b.WriteString(`]}`)
	if got := post(b.String()); got != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d", got)
	}
}
