package tshttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/types"
)

// newMetricsServer builds a service and frontend sharing one isolated
// registry, so assertions see exactly this test's traffic.
func newMetricsServer(t *testing.T, opts ServerOptions) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	opts.Registry = reg
	svc, err := ts.New(ts.Config{
		Key:     secp256k1.PrivateKeyFromSeed([]byte("metrics http ts")),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServerWithOptions(svc, "", opts).Handler())
	t.Cleanup(srv.Close)
	return srv, reg
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// After a batch issue, /metrics must expose the issuance counters and
// the HTTP route series the scrape itself does not inflate.
func TestMetricsEndpointAfterBatchIssue(t *testing.T) {
	srv, _ := newMetricsServer(t, ServerOptions{})
	client := NewClient(srv.URL, "")

	reqs := []*core.Request{
		{Type: core.SuperType, Contract: types.Address{0x01}, Sender: types.Address{0xc1}},
		{Type: core.SuperType, Contract: types.Address{0x01}, Sender: types.Address{0xc2}},
		{Type: core.SuperType, Contract: types.Address{0x01}, Sender: types.Address{0xc3}},
	}
	res, err := client.RequestTokens(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("issue failed: %v", r.Err)
		}
	}

	body := scrape(t, srv.URL)
	for _, re := range []string{
		`(?m)^ts_tokens_issued_total 3$`,
		`(?m)^http_requests_total\{route="/v1/tokens",code="200"\} 1$`,
		`(?m)^http_request_seconds_count\{route="/v1/tokens"\} 1$`,
		`(?m)^http_in_flight_requests 0$`,
		`(?m)^ts_issue_batch_size_count 1$`,
		`(?m)^ts_issue_seconds_count 3$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing %s\n%s", re, body)
		}
	}
}

// A denied request must land in the reason-labeled denial counter.
func TestMetricsDenialReason(t *testing.T) {
	srv, reg := newMetricsServer(t, ServerOptions{})
	client := NewClient(srv.URL, "")
	// Malformed: an argument token with no method.
	_, err := client.RequestToken(&core.Request{
		Type: core.ArgumentType, Contract: types.Address{0x01}, Sender: types.Address{0xc1},
	})
	if err == nil {
		t.Fatal("malformed request issued")
	}
	issued, denied := ts.RegistryStats(reg)
	if issued != 0 || denied != 1 {
		t.Errorf("RegistryStats = %d issued, %d denied; want 0, 1", issued, denied)
	}
	if !strings.Contains(scrape(t, srv.URL), `ts_tokens_denied_total{reason="bad_request"} 1`) {
		t.Error("denial not classified as bad_request")
	}
}

// pprof must be absent by default and mounted only when opted in.
func TestPprofOptIn(t *testing.T) {
	plain, _ := newMetricsServer(t, ServerOptions{})
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	prof, _ := newMetricsServer(t, ServerOptions{Pprof: true})
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index with opt-in = %d", resp.StatusCode)
	}
}
