package tshttp

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// Client talks to a Token Service over HTTP. This is the piece a wallet
// integrates so token acquisition happens "seamlessly for users prior to
// actual transaction sending" (§ IV-B).
type Client struct {
	base  string
	http  *http.Client
	owner string
}

// NewClient creates a client for the service at base (e.g.
// "http://127.0.0.1:8546"). ownerToken may be empty for pure clients.
func NewClient(base string, ownerToken string) *Client {
	return &Client{
		base:  base,
		http:  &http.Client{Timeout: 10 * time.Second},
		owner: ownerToken,
	}
}

// RequestToken submits a token request and returns the parsed token.
func (c *Client) RequestToken(req *core.Request) (core.Token, error) {
	wr, err := FromRequest(req)
	if err != nil {
		return core.Token{}, err
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return core.Token{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/token", "application/json", bytes.NewReader(body))
	if err != nil {
		return core.Token{}, fmt.Errorf("token request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		_ = json.NewDecoder(resp.Body).Decode(&we)
		return core.Token{}, fmt.Errorf("token request denied (%d): %s", resp.StatusCode, we.Error)
	}
	var wt WireToken
	if err := json.NewDecoder(resp.Body).Decode(&wt); err != nil {
		return core.Token{}, fmt.Errorf("token response: %w", err)
	}
	raw, err := hex.DecodeString(wt.Token)
	if err != nil {
		return core.Token{}, fmt.Errorf("token hex: %w", err)
	}
	return core.ParseToken(raw)
}

// Info describes a Token Service instance.
type Info struct {
	// Address is the token-signing address contracts trust.
	Address string `json:"address"`
	// LifetimeSeconds is the configured token lifetime.
	LifetimeSeconds int64 `json:"lifetimeSeconds"`
}

// Info fetches the service's public parameters.
func (c *Client) Info() (Info, error) {
	resp, err := c.http.Get(c.base + "/v1/info")
	if err != nil {
		return Info{}, err
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// UpdateRules replaces the service's ACRs (owner only).
func (c *Client) UpdateRules(rs *rules.RuleSet) error {
	body, err := json.Marshal(rs)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/rules", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.owner)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		_ = json.NewDecoder(resp.Body).Decode(&we)
		return fmt.Errorf("update rules (%d): %s", resp.StatusCode, we.Error)
	}
	return nil
}

// FetchRules downloads the current ACRs (owner only).
func (c *Client) FetchRules() (*rules.RuleSet, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/rules", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.owner)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		_ = json.NewDecoder(resp.Body).Decode(&we)
		return nil, fmt.Errorf("fetch rules (%d): %s", resp.StatusCode, we.Error)
	}
	rs := rules.NewRuleSet()
	if err := json.NewDecoder(resp.Body).Decode(rs); err != nil {
		return nil, err
	}
	return rs, nil
}
