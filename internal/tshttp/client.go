package tshttp

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/ts"
)

// Client talks to a Token Service over HTTP. This is the piece a wallet
// integrates so token acquisition happens "seamlessly for users prior to
// actual transaction sending" (§ IV-B). It keeps connections alive across
// requests, so a token per transaction does not cost a TCP (and, in
// production, TLS) handshake per transaction.
type Client struct {
	base string
	http *http.Client
	// batch shares http's transport (and connection pool) but carries no
	// client-wide timeout: batch calls are bounded per call by a context
	// scaled to the batch size, which Client.Timeout would otherwise cap
	// at the single-request budget.
	batch *http.Client
	owner string
}

// singleTimeout bounds one-request calls; batch calls extend it by
// batchSlotTimeout per submitted request, since the server may run
// proof checks, validators, and counter rounds for every slot.
const (
	singleTimeout    = 10 * time.Second
	batchSlotTimeout = 100 * time.Millisecond
)

// transportRetries is how many times a call is resubmitted after a
// transport failure classified retryable (see TransportError) before
// the error surfaces; retryBackoff spaces the attempts.
const (
	transportRetries = 2
	retryBackoff     = 25 * time.Millisecond
)

// NewClient creates a client for the service at base (e.g.
// "http://127.0.0.1:8546"). ownerToken may be empty for pure clients.
func NewClient(base string, ownerToken string) *Client {
	// Clone the default transport when possible (keeping proxy and TLS
	// defaults); a host application may have replaced it with another
	// RoundTripper, in which case start from a fresh Transport.
	transport, ok := http.DefaultTransport.(*http.Transport)
	if ok {
		transport = transport.Clone()
	} else {
		transport = &http.Transport{}
	}
	// The default per-host idle cap (2) throttles concurrent wallets and
	// load generators; keep a healthy pool instead.
	transport.MaxIdleConns = 256
	transport.MaxIdleConnsPerHost = 256
	return &Client{
		base:  base,
		http:  &http.Client{Timeout: singleTimeout, Transport: transport},
		batch: &http.Client{Transport: transport},
		owner: ownerToken,
	}
}

// drainClose consumes any unread remainder of body before closing, so the
// underlying connection returns to the idle pool instead of being torn
// down (json.Decoder stops at the end of the value, leaving the trailing
// newline unread).
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}

// doRetry runs fn until it yields a response, resubmitting on transport
// failures that are safe to retry: idempotent calls always, others only
// when the request provably never reached the service (dial failures).
// A non-retryable failure — or retryable ones past transportRetries —
// surfaces as a *TransportError carrying the classification.
func doRetry(op string, idempotent bool, fn func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := fn()
		if err == nil {
			return resp, nil
		}
		werr := classifyTransport(op, err, idempotent)
		if !werr.Retryable || attempt >= transportRetries {
			return nil, werr
		}
		time.Sleep(retryBackoff)
	}
}

// errorFromResponse drains a non-200 response's wire error into one
// formatted error.
func errorFromResponse(resp *http.Response, what string) error {
	var we wireError
	_ = json.NewDecoder(resp.Body).Decode(&we)
	return fmt.Errorf("%s (%d): %s", what, resp.StatusCode, we.Error)
}

// RequestToken submits a token request and returns the parsed token.
func (c *Client) RequestToken(req *core.Request) (core.Token, error) {
	wr, err := FromRequest(req)
	if err != nil {
		return core.Token{}, err
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return core.Token{}, err
	}
	// Token issuance is NOT idempotent (a successful issue consumes a
	// one-time index), so only provably-unsent failures are retried.
	resp, err := doRetry("token request", false, func() (*http.Response, error) {
		return c.http.Post(c.base+"/v1/token", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return core.Token{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return core.Token{}, errorFromResponse(resp, "token request denied")
	}
	var wt WireToken
	if err := json.NewDecoder(resp.Body).Decode(&wt); err != nil {
		return core.Token{}, fmt.Errorf("token response: %w", err)
	}
	return parseWireToken(&wt)
}

// parseWireToken decodes the hex token of one wire slot.
func parseWireToken(wt *WireToken) (core.Token, error) {
	raw, err := hex.DecodeString(wt.Token)
	if err != nil {
		return core.Token{}, fmt.Errorf("token hex: %w", err)
	}
	return core.ParseToken(raw)
}

// RequestTokens submits all requests in one POST /v1/tokens round-trip
// and returns one ts.Result per request, in order: Token for an issued
// slot, Err for a rejected one. The call itself fails only on transport
// or protocol errors — per-request rejections land in the slots.
func (c *Client) RequestTokens(reqs []*core.Request) ([]ts.Result, error) {
	wb := WireBatchRequest{Requests: make([]WireRequest, len(reqs))}
	for i, req := range reqs {
		wr, err := FromRequest(req)
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		wb.Requests[i] = *wr
	}
	body, err := json.Marshal(wb)
	if err != nil {
		return nil, err
	}
	// A full batch may legitimately take longer than a single request;
	// extend the deadline per slot instead of relying on the client-wide
	// single-request timeout.
	ctx, cancel := context.WithTimeout(context.Background(),
		singleTimeout+time.Duration(len(reqs))*batchSlotTimeout)
	defer cancel()
	// Batch issuance is as non-idempotent as the single path: retry only
	// failures where no byte can have reached the service.
	resp, err := doRetry("batch token request", false, func() (*http.Response, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tokens", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		return c.batch.Do(httpReq)
	})
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp, "batch token request denied")
	}
	var wr WireBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("batch token response: %w", err)
	}
	if len(wr.Results) != len(reqs) {
		return nil, fmt.Errorf("batch token response: %d results for %d requests", len(wr.Results), len(reqs))
	}
	results := make([]ts.Result, len(wr.Results))
	for i := range wr.Results {
		slot := &wr.Results[i]
		switch {
		case slot.Error != "":
			results[i].Err = fmt.Errorf("token request denied: %s", slot.Error)
		case slot.Token == nil:
			results[i].Err = fmt.Errorf("batch slot %d: empty result", i)
		default:
			results[i].Token, results[i].Err = parseWireToken(slot.Token)
		}
	}
	return results, nil
}

// Info describes a Token Service instance.
type Info struct {
	// Address is the token-signing address contracts trust.
	Address string `json:"address"`
	// LifetimeSeconds is the configured token lifetime.
	LifetimeSeconds int64 `json:"lifetimeSeconds"`
}

// Info fetches the service's public parameters. It returns an error on
// transport failures, non-200 responses, and malformed bodies — a zero
// Info is never silently returned.
func (c *Client) Info() (Info, error) {
	resp, err := doRetry("info request", true, func() (*http.Response, error) {
		return c.http.Get(c.base + "/v1/info")
	})
	if err != nil {
		return Info{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Info{}, errorFromResponse(resp, "info request failed")
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// Stats are the aggregate issuance counters of a Token Service instance.
// Like ts.Service.Stats, the pair is read without a lock on the server, so
// under concurrent issuance the two values may be offset by in-flight
// requests; after traffic quiesces they are exact (the e2e harness relies
// on that to cross-check client-observed counts).
type Stats struct {
	// Issued is the number of token requests the service granted.
	Issued uint64 `json:"issued"`
	// Rejected is the number it denied (rules, validators, bad requests).
	Rejected uint64 `json:"rejected"`
}

// Stats fetches the service's aggregate issued/rejected counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := doRetry("stats request", true, func() (*http.Response, error) {
		return c.http.Get(c.base + "/v1/stats")
	})
	if err != nil {
		return Stats{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Stats{}, errorFromResponse(resp, "stats request failed")
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// UpdateRules replaces the service's ACRs (owner only).
func (c *Client) UpdateRules(rs *rules.RuleSet) error {
	body, err := json.Marshal(rs)
	if err != nil {
		return err
	}
	// Replacing the rule set is idempotent — resubmitting the same PUT
	// converges to the same state — so any transport failure is retried.
	resp, err := doRetry("update rules", true, func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPut, c.base+"/v1/rules", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", "Bearer "+c.owner)
		req.Header.Set("Content-Type", "application/json")
		return c.http.Do(req)
	})
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return errorFromResponse(resp, "update rules")
	}
	return nil
}

// FetchRules downloads the current ACRs (owner only).
func (c *Client) FetchRules() (*rules.RuleSet, error) {
	resp, err := doRetry("fetch rules", true, func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, c.base+"/v1/rules", nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", "Bearer "+c.owner)
		return c.http.Do(req)
	})
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp, "fetch rules")
	}
	rs := rules.NewRuleSet()
	if err := json.NewDecoder(resp.Body).Decode(rs); err != nil {
		return nil, err
	}
	return rs, nil
}
