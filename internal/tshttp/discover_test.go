package tshttp

import (
	"errors"
	"math/big"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/types"
)

func TestDiscoverRoundTrip(t *testing.T) {
	chain := evm.NewChain(evm.DefaultConfig())
	owner := types.Address{0x07}
	chain.Fund(owner, big.NewInt(1e18))
	c := evm.NewContract("Discoverable")
	c.MustAddMethod(evm.Method{Name: "noop", Visibility: evm.Public,
		Handler: func(*evm.Call) ([]any, error) { return nil, nil }})
	addr, _, err := chain.Deploy(owner, c)
	if err != nil {
		t.Fatal(err)
	}

	// No announcement yet.
	if _, err := Discover(chain, addr); !errors.Is(err, ErrNoService) {
		t.Errorf("err = %v, want ErrNoService", err)
	}
	if _, err := Discover(chain, types.Address{0xEE}); err == nil {
		t.Error("discovery on an empty address succeeded")
	}

	// Owner announces a live service; the client discovers and uses it.
	svc, err := ts.New(ts.Config{Key: secp256k1.PrivateKeyFromSeed([]byte("disc"))})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(svc, "").Handler())
	defer srv.Close()
	if err := Announce(chain, addr, srv.URL); err != nil {
		t.Fatal(err)
	}

	client, err := Discover(chain, addr)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := client.RequestToken(&core.Request{
		Type: core.SuperType, Contract: addr, Sender: types.Address{0xc1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.VerifySignature(svc.Address(), core.Binding{
		Origin: types.Address{0xc1}, Contract: addr,
	}); err != nil {
		t.Errorf("discovered service issued a bad token: %v", err)
	}

	if err := Announce(chain, types.Address{0xEE}, srv.URL); err == nil {
		t.Error("announce on an empty address succeeded")
	}
}
