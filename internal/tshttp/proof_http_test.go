package tshttp

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/secp256k1"
	"repro/internal/ts"
)

func TestProofOfPossessionOverHTTP(t *testing.T) {
	svc, err := ts.New(ts.Config{
		Key:          httpTSKey,
		RequireProof: true,
		Now:          func() time.Time { return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(svc, "").Handler())
	defer srv.Close()
	client := NewClient(srv.URL, "")

	clientKey := secp256k1.PrivateKeyFromSeed([]byte("http proof client"))

	// Without a proof: rejected as a bad request.
	bare := &core.Request{Type: core.SuperType, Contract: httpDst, Sender: clientKey.Address()}
	if _, err := client.RequestToken(bare); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("unproved request over HTTP: %v, want 400", err)
	}

	// With a proof: the signature must survive the JSON wire round trip.
	proved := &core.Request{Type: core.SuperType, Contract: httpDst, Sender: clientKey.Address()}
	if err := core.SignRequest(proved, clientKey); err != nil {
		t.Fatal(err)
	}
	tk, err := client.RequestToken(proved)
	if err != nil {
		t.Fatalf("proved request denied over HTTP: %v", err)
	}
	if err := tk.VerifySignature(svc.Address(), core.Binding{
		Origin: clientKey.Address(), Contract: httpDst,
	}); err != nil {
		t.Errorf("token does not verify: %v", err)
	}

	// Argument requests: ValueKey canonicalization must agree on both
	// sides of the wire (uint64 becomes *big.Int after decoding).
	argReq := &core.Request{
		Type: core.ArgumentType, Contract: httpDst, Sender: clientKey.Address(),
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(7)}},
	}
	if err := core.SignRequest(argReq, clientKey); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestToken(argReq); err != nil {
		t.Errorf("proved argument request denied: %v", err)
	}
}
