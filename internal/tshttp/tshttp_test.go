package tshttp

import (
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/types"
)

var (
	httpTSKey = secp256k1.PrivateKeyFromSeed([]byte("http ts"))
	httpCli   = types.Address{0xc1}
	httpDst   = types.Address{0x01}
)

func newTestServer(t *testing.T, ownerToken string) (*httptest.Server, *ts.Service) {
	t.Helper()
	svc, err := ts.New(ts.Config{
		Key: httpTSKey,
		Now: func() time.Time { return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(svc, ownerToken).Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

func TestTokenRequestOverHTTP(t *testing.T) {
	srv, svc := newTestServer(t, "")
	client := NewClient(srv.URL, "")

	req := &core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, OneTime: true}
	tk, err := client.RequestToken(req)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Type != core.SuperType || tk.Index != 1 {
		t.Errorf("token = %+v", tk)
	}
	if err := tk.VerifySignature(svc.Address(), core.Binding{Origin: httpCli, Contract: httpDst}); err != nil {
		t.Errorf("token from HTTP does not verify: %v", err)
	}
}

func TestArgumentRequestRoundTrip(t *testing.T) {
	srv, svc := newTestServer(t, "")
	client := NewClient(srv.URL, "")

	req := &core.Request{
		Type: core.ArgumentType, Contract: httpDst, Sender: httpCli,
		Method: "transfer",
		Args: []core.NamedArg{
			{Name: "to", Value: types.Address{0xdd}},
			{Name: "amount", Value: big.NewInt(42)},
			{Name: "note", Value: "hello"},
			{Name: "flag", Value: true},
			{Name: "blob", Value: []byte{1, 2, 3}},
		},
	}
	tk, err := client.RequestToken(req)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := req.Binding()
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.VerifySignature(svc.Address(), binding); err != nil {
		t.Errorf("argument token does not verify after wire round trip: %v", err)
	}
}

func TestDeniedRequestsGetForbidden(t *testing.T) {
	srv, svc := newTestServer(t, "")
	deny := rules.NewRuleSet()
	deny.SetSenderList(rules.NewList(rules.Whitelist)) // empty: deny all
	svc.ReplaceRules(deny)

	client := NewClient(srv.URL, "")
	_, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli})
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("err = %v, want HTTP 403 denial", err)
	}
}

func TestMalformedRequestsGetBadRequest(t *testing.T) {
	srv, _ := newTestServer(t, "")
	client := NewClient(srv.URL, "")
	// Super token with a method is a shape violation (Tab. I).
	_, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, Method: "x"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("err = %v, want HTTP 400", err)
	}
}

func TestInfo(t *testing.T) {
	srv, svc := newTestServer(t, "")
	client := NewClient(srv.URL, "")
	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Address != svc.Address().Hex() {
		t.Errorf("info address = %s, want %s", info.Address, svc.Address().Hex())
	}
	if info.LifetimeSeconds != 3600 {
		t.Errorf("lifetime = %d, want 3600", info.LifetimeSeconds)
	}
}

func TestRuleAdministration(t *testing.T) {
	srv, _ := newTestServer(t, "owner-secret")

	owner := NewClient(srv.URL, "owner-secret")
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(httpCli)))
	if err := owner.UpdateRules(rs); err != nil {
		t.Fatal(err)
	}

	// The rules took effect: whitelisted sender passes, others fail.
	cli := NewClient(srv.URL, "")
	if _, err := cli.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli}); err != nil {
		t.Errorf("whitelisted sender denied after rule push: %v", err)
	}
	if _, err := cli.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: types.Address{0xee}}); err == nil {
		t.Error("unlisted sender allowed after rule push")
	}

	// Owner can read the rules back.
	back, err := owner.FetchRules()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Check(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: types.Address{0xee}}); err == nil {
		t.Error("fetched rules lost the whitelist")
	}
}

func TestRulePrivacyFromClients(t *testing.T) {
	// § VII-A(d): rules are private. Clients (no/wrong bearer) must not be
	// able to read or write them.
	srv, _ := newTestServer(t, "owner-secret")

	for _, bearer := range []string{"", "wrong"} {
		cli := NewClient(srv.URL, bearer)
		if _, err := cli.FetchRules(); err == nil || !strings.Contains(err.Error(), "401") {
			t.Errorf("bearer %q: rules leaked to client: %v", bearer, err)
		}
		if err := cli.UpdateRules(rules.NewRuleSet()); err == nil {
			t.Errorf("bearer %q: client replaced the rules", bearer)
		}
	}
}

func TestAdminDisabledWithoutToken(t *testing.T) {
	srv, _ := newTestServer(t, "")
	// Even an empty bearer must not unlock a server configured without an
	// owner token (fail closed).
	cli := NewClient(srv.URL, "")
	if _, err := cli.FetchRules(); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("rules endpoint open on tokenless server: %v", err)
	}
}

func TestWireArgKinds(t *testing.T) {
	tests := []struct {
		arg     WireArg
		wantErr bool
	}{
		{WireArg{Name: "a", Kind: "address", Value: "0x0000000000000000000000000000000000000001"}, false},
		{WireArg{Name: "a", Kind: "uint256", Value: "12345678901234567890"}, false},
		{WireArg{Name: "a", Kind: "uint256", Value: "-1"}, true},
		{WireArg{Name: "a", Kind: "uint256", Value: "abc"}, true},
		{WireArg{Name: "a", Kind: "bool", Value: "true"}, false},
		{WireArg{Name: "a", Kind: "bool", Value: "yes"}, true},
		{WireArg{Name: "a", Kind: "bytes", Value: "0xdeadbeef"}, false},
		{WireArg{Name: "a", Kind: "bytes", Value: "0xzz"}, true},
		{WireArg{Name: "a", Kind: "string", Value: "anything"}, false},
		{WireArg{Name: "a", Kind: "float", Value: "1.5"}, true},
	}
	for _, tt := range tests {
		_, err := DecodeArg(tt.arg)
		if (err != nil) != tt.wantErr {
			t.Errorf("DecodeArg(%+v) err = %v, wantErr %v", tt.arg, err, tt.wantErr)
		}
	}
}

func TestEncodeDecodeArgRoundTrip(t *testing.T) {
	vals := []any{
		types.Address{0xaa},
		big.NewInt(999),
		uint64(7),
		true,
		[]byte{9, 8, 7},
		"text",
	}
	for _, v := range vals {
		wa, err := EncodeArg("x", v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		back, err := DecodeArg(wa)
		if err != nil {
			t.Fatalf("%T decode: %v", v, err)
		}
		// uint64 comes back as *big.Int by design.
		if u, ok := v.(uint64); ok {
			if back.(*big.Int).Uint64() != u {
				t.Errorf("uint64 round trip: %v", back)
			}
			continue
		}
		if core.ValueKey(back) != core.ValueKey(v) {
			t.Errorf("%T round trip: %v != %v", v, back, v)
		}
	}
}

// GET /v1/stats reports the service's aggregate counters; after traffic
// quiesces they must match the outcomes clients observed.
func TestStatsOverHTTP(t *testing.T) {
	srv, svc := newTestServer(t, "")
	client := NewClient(srv.URL, "")

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 0 || st.Rejected != 0 {
		t.Errorf("fresh service stats = %+v, want zeros", st)
	}

	if _, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli}); err != nil {
		t.Fatal(err)
	}
	// A malformed request (super tokens carry no method) must be rejected
	// and counted.
	if _, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, Method: "x()"}); err == nil {
		t.Fatal("malformed request unexpectedly issued")
	}

	st, err = client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want issued 1 rejected 1", st)
	}
	wantIssued, wantRejected := svc.Stats()
	if st.Issued != wantIssued || st.Rejected != wantRejected {
		t.Errorf("HTTP stats %+v disagree with service stats (%d, %d)", st, wantIssued, wantRejected)
	}
}

// TestAdminMountOwnerGuard pins the membership/admin mount contract:
// the handler is reachable under /v1/membership/ and /v1/admin/ with the
// owner bearer token, rejected without it, and fails closed when no
// owner token is configured.
func TestAdminMountOwnerGuard(t *testing.T) {
	mk := func(ownerToken string) *httptest.Server {
		svc, err := ts.New(ts.Config{
			Key: httpTSKey,
			Now: func() time.Time { return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC) },
		})
		if err != nil {
			t.Fatal(err)
		}
		admin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"reached":"` + r.URL.Path + `"}`))
		})
		srv := httptest.NewServer(NewServerWithOptions(svc, ownerToken, ServerOptions{Admin: admin}).Handler())
		t.Cleanup(srv.Close)
		return srv
	}

	do := func(url, token string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	guarded := mk("s3cret")
	for _, path := range []string{"/v1/membership/freeze", "/v1/admin/join"} {
		if code := do(guarded.URL+path, "s3cret"); code != http.StatusOK {
			t.Fatalf("%s with owner token: status %d", path, code)
		}
		if code := do(guarded.URL+path, "wrong"); code != http.StatusUnauthorized {
			t.Fatalf("%s with bad token: status %d, want 401", path, code)
		}
		if code := do(guarded.URL+path, ""); code != http.StatusUnauthorized {
			t.Fatalf("%s without token: status %d, want 401", path, code)
		}
	}

	open := mk("")
	if code := do(open.URL+"/v1/admin/join", ""); code != http.StatusForbidden {
		t.Fatalf("adminless daemon served /v1/admin: status %d, want 403", code)
	}
}
