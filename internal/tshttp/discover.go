package tshttp

import (
	"errors"
	"fmt"

	"repro/internal/evm"
	"repro/internal/types"
)

// MetadataKey is the contract-metadata key under which owners publish
// their Token Service URL (§ VII-B b: "adding the service address as a
// smart contract instance metadata").
const MetadataKey = "smacs.ts"

// ErrNoService is returned when a contract publishes no Token Service URL.
var ErrNoService = errors.New("tshttp: contract publishes no token service")

// Discover resolves the Token Service of a SMACS-enabled contract from its
// on-chain metadata and returns a ready client.
func Discover(chain *evm.Chain, contract types.Address) (*Client, error) {
	c, ok := chain.ContractAt(contract)
	if !ok {
		return nil, fmt.Errorf("tshttp: no contract at %s", contract)
	}
	url, ok := c.Metadata(MetadataKey)
	if !ok || url == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoService, contract)
	}
	return NewClient(url, ""), nil
}

// Announce publishes the Token Service URL into the contract's metadata
// (the owner-side half of discovery).
func Announce(chain *evm.Chain, contract types.Address, url string) error {
	c, ok := chain.ContractAt(contract)
	if !ok {
		return fmt.Errorf("tshttp: no contract at %s", contract)
	}
	c.SetMetadata(MetadataKey, url)
	return nil
}
