package tshttp

import (
	"errors"
	"io"
	stdnet "net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nettest"
	"repro/internal/ts"
)

func TestTransportClassification(t *testing.T) {
	dialErr := &stdnet.OpError{Op: "dial", Err: errors.New("connection refused")}
	readErr := &stdnet.OpError{Op: "read", Err: errors.New("connection reset by peer")}

	if e := classifyTransport("x", dialErr, false); !e.Retryable {
		t.Error("dial failure on a non-idempotent call classified fatal; nothing was sent")
	}
	if e := classifyTransport("x", readErr, false); e.Retryable {
		t.Error("mid-connection reset on a non-idempotent call classified retryable; the request may have been processed")
	}
	if e := classifyTransport("x", readErr, true); !e.Retryable {
		t.Error("reset on an idempotent call classified fatal")
	}
	if e := classifyTransport("x", io.EOF, false); e.Retryable {
		t.Error("bare EOF classified retryable for a POST")
	}

	wrapped := classifyTransport("token request", readErr, false)
	if !errors.As(error(wrapped), new(*TransportError)) {
		t.Error("classification lost the TransportError type")
	}
	if IsRetryable(wrapped) {
		t.Error("IsRetryable true for a fatal error")
	}
	if !IsRetryable(classifyTransport("stats request", readErr, true)) {
		t.Error("IsRetryable false for a retryable error")
	}
	if IsRetryable(errors.New("denied (403): rule")) {
		t.Error("IsRetryable true for a non-transport error")
	}
}

// reservePort returns a loopback address that is currently closed (its
// listener is opened and immediately released).
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// A POST against a dead address must surface a retryable TransportError:
// the dial failed, so the request provably never consumed anything.
func TestPostDialFailureIsRetryable(t *testing.T) {
	client := NewClient("http://"+reservePort(t), "")
	_, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli})
	if err == nil {
		t.Fatal("request against a closed port succeeded")
	}
	if !IsRetryable(err) {
		t.Fatalf("dial failure not classified retryable: %v", err)
	}
}

// The client must internally resubmit a provably-unsent POST: a service
// that comes up between attempts sees exactly one request and the call
// succeeds.
func TestPostRetriesProvablyUnsentFailures(t *testing.T) {
	addr := reservePort(t)
	svc, err := ts.New(ts.Config{
		Key: httpTSKey,
		Now: func() time.Time { return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var posts atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
		}
		NewServer(svc, "").Handler().ServeHTTP(w, r)
	})

	// Bring the service up on the reserved port while the client's first
	// attempt is already failing with connection-refused.
	started := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		l, err := stdnet.Listen("tcp", addr)
		if err != nil {
			close(started)
			return
		}
		srv := &http.Server{Handler: handler}
		go func() { _ = srv.Serve(l) }()
		t.Cleanup(func() { _ = srv.Close() })
		close(started)
	}()

	client := NewClient("http://"+addr, "")
	tk, err := client.RequestToken(&core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, OneTime: true})
	<-started
	if err != nil {
		t.Fatalf("request with late-starting service failed: %v", err)
	}
	if tk.Index != 1 {
		t.Fatalf("token index = %d, want 1", tk.Index)
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("service saw %d POSTs, want exactly 1 (no duplicate submissions)", got)
	}
}

// A reset after the request was written is ambiguous — the token may
// have been issued. The client must surface a fatal (non-retryable)
// TransportError and must NOT resubmit: the service sees at most one
// POST for the doomed call.
func TestMidRequestResetIsFatalAndNotResubmitted(t *testing.T) {
	srv, _ := newTestServer(t, "")
	var posts atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
		}
		srv.Config.Handler.ServeHTTP(w, r)
	})
	counting := &http.Server{Handler: counted}
	l, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = counting.Serve(l) }()
	t.Cleanup(func() { _ = counting.Close() })

	proxy, err := nettest.NewProxy(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })

	client := NewClient(proxy.URL(), "")
	req := &core.Request{Type: core.SuperType, Contract: httpDst, Sender: httpCli, OneTime: true}
	if _, err := client.RequestToken(req); err != nil {
		t.Fatalf("warm-up request through proxy failed: %v", err)
	}
	warm := posts.Load()

	// Hold the response long enough for ResetAll to land mid-request.
	proxy.SetDelay(60 * time.Millisecond)
	errCh := make(chan error, 1)
	go func() {
		_, err := client.RequestToken(req)
		errCh <- err
	}()
	time.Sleep(25 * time.Millisecond)
	proxy.ResetAll()

	err = <-errCh
	if err == nil {
		t.Fatal("request survived a mid-flight reset")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("reset surfaced as %T (%v), want *TransportError", err, err)
	}
	if te.Retryable || IsRetryable(err) {
		t.Fatalf("mid-request reset classified retryable: %v", err)
	}
	if got := posts.Load(); got > warm+1 {
		t.Fatalf("service saw %d POSTs after the reset (warm=%d): the client resubmitted a non-idempotent request", got, warm)
	}
}

// Idempotent calls classify any transport failure as retryable, so a
// blip that heals within the retry budget is absorbed entirely.
func TestIdempotentGetAbsorbsTransientDrop(t *testing.T) {
	srv, _ := newTestServer(t, "")
	proxy, err := nettest.NewProxy(srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })

	client := NewClient(proxy.URL(), "")
	proxy.SetDrop(true)
	go func() {
		time.Sleep(15 * time.Millisecond)
		proxy.SetDrop(false)
	}()
	if _, err := client.Stats(); err != nil {
		t.Fatalf("idempotent GET did not ride out a transient drop: %v", err)
	}
}
