// Package evmtest provides shared helpers for tests that need a funded
// simulated chain: deterministic accounts, a controllable clock, and
// fail-fast deploy/apply wrappers.
package evmtest

import (
	"math/big"
	"sync"
	"testing"
	"time"

	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/types"
	"repro/internal/wallet"
)

// Ether returns n ether in wei.
func Ether(n int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(n), big.NewInt(1e18))
}

// Clock is a manually advanced clock for deterministic expiry tests.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts a clock at a fixed instant.
func NewClock() *Clock {
	return &Clock{now: time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Env is a ready-to-use test environment: a chain with a fake clock and
// funded deterministic wallets.
type Env struct {
	Chain   *evm.Chain
	Clock   *Clock
	Wallets []*wallet.Wallet
}

// NewEnv creates a chain with nWallets funded accounts (1000 ether each).
func NewEnv(t *testing.T, nWallets int) *Env {
	t.Helper()
	clock := NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	chain := evm.NewChain(cfg)
	env := &Env{Chain: chain, Clock: clock}
	for i := 0; i < nWallets; i++ {
		key := secp256k1.PrivateKeyFromSeed([]byte{byte('w'), byte(i)})
		w := wallet.New(key, chain)
		chain.Fund(w.Address(), Ether(1000))
		env.Wallets = append(env.Wallets, w)
	}
	return env
}

// Deploy registers a contract from the first wallet's account, failing the
// test on error.
func (e *Env) Deploy(t *testing.T, c *evm.Contract) types.Address {
	t.Helper()
	addr, _, err := e.Chain.Deploy(e.Wallets[0].Address(), c)
	if err != nil {
		t.Fatalf("deploy %s: %v", c.Name(), err)
	}
	return addr
}

// MustCall submits a call from wallet i and fails the test if the
// transaction is rejected or reverts.
func (e *Env) MustCall(t *testing.T, i int, to types.Address, method string, opts wallet.CallOpts, args ...any) *evm.Receipt {
	t.Helper()
	r, err := e.Wallets[i].Call(to, method, opts, args...)
	if err != nil {
		t.Fatalf("call %s: %v", method, err)
	}
	if !r.Status {
		t.Fatalf("call %s reverted: %v", method, r.Err)
	}
	return r
}

// CallExpectRevert submits a call and fails the test unless it reverts.
func (e *Env) CallExpectRevert(t *testing.T, i int, to types.Address, method string, opts wallet.CallOpts, args ...any) *evm.Receipt {
	t.Helper()
	r, err := e.Wallets[i].Call(to, method, opts, args...)
	if err != nil {
		t.Fatalf("call %s rejected before execution: %v", method, err)
	}
	if r.Status {
		t.Fatalf("call %s succeeded, expected revert", method)
	}
	return r
}
