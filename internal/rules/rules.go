// Package rules implements SMACS Access Control Rules (ACRs, § IV-E): the
// white/blacklists of Fig. 6, organized into a rule set that the Token
// Service checks every token request against. Rule sets are safe for
// concurrent use and dynamically updatable by the owner without touching
// the deployed contract.
package rules

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
)

// Mode selects list semantics.
type Mode string

// List modes.
const (
	// Whitelist admits only listed values.
	Whitelist Mode = "whitelist"
	// Blacklist admits everything except listed values.
	Blacklist Mode = "blacklist"
)

// ErrDenied is the sentinel wrapped by every rule rejection.
var ErrDenied = errors.New("rules: request denied")

// List is a single white- or blacklist over canonicalized values
// (addresses in 0x-hex, numbers in decimal — see core.ValueKey).
type List struct {
	mode    Mode
	entries map[string]bool
}

// NewList builds a list with the given mode and initial entries.
func NewList(mode Mode, entries ...string) *List {
	l := &List{mode: mode, entries: make(map[string]bool, len(entries))}
	for _, e := range entries {
		l.entries[canon(e)] = true
	}
	return l
}

func canon(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Mode returns the list semantics.
func (l *List) Mode() Mode { return l.mode }

// Add inserts values.
func (l *List) Add(values ...string) {
	for _, v := range values {
		l.entries[canon(v)] = true
	}
}

// Remove deletes values.
func (l *List) Remove(values ...string) {
	for _, v := range values {
		delete(l.entries, canon(v))
	}
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Admits reports whether the value passes the list.
func (l *List) Admits(value string) bool {
	listed := l.entries[canon(value)]
	if l.mode == Whitelist {
		return listed
	}
	return !listed
}

// clone deep-copies the list.
func (l *List) clone() *List {
	c := &List{mode: l.mode, entries: make(map[string]bool, len(l.entries))}
	for k := range l.entries {
		c.entries[k] = true
	}
	return c
}

// RuleSet is the owner's ACR configuration for one SMACS-enabled contract,
// mirroring the structure of Fig. 6:
//
//   - a sender-level list governing who may obtain tokens at all,
//   - per-method sender lists (method and argument tokens), and
//   - per-argument value lists (argument tokens).
type RuleSet struct {
	mu        sync.RWMutex
	sender    *List
	methods   map[string]*List
	arguments map[string]*List
}

// NewRuleSet creates an empty, allow-all rule set (no lists configured).
func NewRuleSet() *RuleSet {
	return &RuleSet{
		methods:   make(map[string]*List),
		arguments: make(map[string]*List),
	}
}

// SetSenderList installs the sender-level list (nil removes it).
func (rs *RuleSet) SetSenderList(l *List) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.sender = l
}

// SetMethodList installs a per-method sender list (nil removes it).
func (rs *RuleSet) SetMethodList(method string, l *List) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if l == nil {
		delete(rs.methods, method)
		return
	}
	rs.methods[method] = l
}

// SetArgumentList installs a per-argument value list (nil removes it).
func (rs *RuleSet) SetArgumentList(argName string, l *List) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if l == nil {
		delete(rs.arguments, argName)
		return
	}
	rs.arguments[argName] = l
}

// AddSender / RemoveSender dynamically update the sender list — the
// "updatable ACRs" the paper's Examples 1 and 2 call for.
func (rs *RuleSet) AddSender(addrs ...string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.sender == nil {
		rs.sender = NewList(Whitelist)
	}
	rs.sender.Add(addrs...)
}

// RemoveSender removes addresses from the sender list.
func (rs *RuleSet) RemoveSender(addrs ...string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.sender != nil {
		rs.sender.Remove(addrs...)
	}
}

// Check evaluates a token request against the rule set. A nil error means
// the request complies; rejections wrap ErrDenied with the failing rule.
func (rs *RuleSet) Check(req *core.Request) error {
	rs.mu.RLock()
	defer rs.mu.RUnlock()

	sender := core.ValueKey(req.Sender)
	if rs.sender != nil && !rs.sender.Admits(sender) {
		return fmt.Errorf("%w: sender %s fails the %s", ErrDenied, sender, rs.sender.mode)
	}
	if req.Type != core.SuperType && req.Method != "" {
		// Owners key method rules by the bare method name.
		name := req.MethodName()
		if l, ok := rs.methods[name]; ok && !l.Admits(sender) {
			return fmt.Errorf("%w: sender %s fails the %s of method %q", ErrDenied, sender, l.mode, name)
		}
	}
	if req.Type == core.ArgumentType {
		for _, arg := range req.Args {
			if l, ok := rs.arguments[arg.Name]; ok {
				key := core.ValueKey(arg.Value)
				if !l.Admits(key) {
					return fmt.Errorf("%w: argument %s=%s fails the %s", ErrDenied, arg.Name, key, l.mode)
				}
			}
		}
	}
	return nil
}

// Snapshot returns a deep copy of the rule set (for inspection without
// holding locks).
func (rs *RuleSet) Snapshot() *RuleSet {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := NewRuleSet()
	if rs.sender != nil {
		out.sender = rs.sender.clone()
	}
	for k, v := range rs.methods {
		out.methods[k] = v.clone()
	}
	for k, v := range rs.arguments {
		out.arguments[k] = v.clone()
	}
	return out
}

// jsonList is the wire form of a List in the Fig. 6 layout: an object with
// exactly one of the "whitelist"/"blacklist" keys.
type jsonList struct {
	Whitelist []string `json:"whitelist,omitempty"`
	Blacklist []string `json:"blacklist,omitempty"`
}

type jsonRuleSet struct {
	Sender   *jsonList           `json:"sender,omitempty"`
	Method   map[string]jsonList `json:"method,omitempty"`
	Argument map[string]jsonList `json:"argument,omitempty"`
}

func listToJSON(l *List) jsonList {
	vals := make([]string, 0, len(l.entries))
	for v := range l.entries {
		vals = append(vals, v)
	}
	if l.mode == Whitelist {
		return jsonList{Whitelist: vals}
	}
	return jsonList{Blacklist: vals}
}

func listFromJSON(j jsonList) (*List, error) {
	if len(j.Whitelist) > 0 && len(j.Blacklist) > 0 {
		return nil, errors.New("rules: list cannot be both white and black")
	}
	if len(j.Blacklist) > 0 {
		return NewList(Blacklist, j.Blacklist...), nil
	}
	return NewList(Whitelist, j.Whitelist...), nil
}

// MarshalJSON encodes the rule set in the Fig. 6 layout.
func (rs *RuleSet) MarshalJSON() ([]byte, error) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := jsonRuleSet{}
	if rs.sender != nil {
		jl := listToJSON(rs.sender)
		out.Sender = &jl
	}
	if len(rs.methods) > 0 {
		out.Method = make(map[string]jsonList, len(rs.methods))
		for k, v := range rs.methods {
			out.Method[k] = listToJSON(v)
		}
	}
	if len(rs.arguments) > 0 {
		out.Argument = make(map[string]jsonList, len(rs.arguments))
		for k, v := range rs.arguments {
			out.Argument[k] = listToJSON(v)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the Fig. 6 layout.
func (rs *RuleSet) UnmarshalJSON(data []byte) error {
	var in jsonRuleSet
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.sender = nil
	rs.methods = make(map[string]*List)
	rs.arguments = make(map[string]*List)
	if in.Sender != nil {
		l, err := listFromJSON(*in.Sender)
		if err != nil {
			return err
		}
		rs.sender = l
	}
	for k, v := range in.Method {
		l, err := listFromJSON(v)
		if err != nil {
			return err
		}
		rs.methods[k] = l
	}
	for k, v := range in.Argument {
		l, err := listFromJSON(v)
		if err != nil {
			return err
		}
		rs.arguments[k] = l
	}
	return nil
}
