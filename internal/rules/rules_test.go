package rules

import (
	"encoding/json"
	"errors"
	"math/big"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

var (
	alice = types.Address{0xa1}
	bob   = types.Address{0xb0}
	carol = types.Address{0xca}
)

func superReq(sender types.Address) *core.Request {
	return &core.Request{Type: core.SuperType, Contract: types.Address{1}, Sender: sender}
}

func methodReq(sender types.Address, method string) *core.Request {
	return &core.Request{Type: core.MethodType, Contract: types.Address{1}, Sender: sender, Method: method}
}

func argReq(sender types.Address, method string, args ...core.NamedArg) *core.Request {
	return &core.Request{Type: core.ArgumentType, Contract: types.Address{1}, Sender: sender, Method: method, Args: args}
}

func TestListModes(t *testing.T) {
	wl := NewList(Whitelist, "0xaa", "0xbb")
	if !wl.Admits("0xAA") { // case-insensitive
		t.Error("whitelist rejects listed value")
	}
	if wl.Admits("0xcc") {
		t.Error("whitelist admits unlisted value")
	}
	bl := NewList(Blacklist, "0xaa")
	if bl.Admits("0xaa") {
		t.Error("blacklist admits listed value")
	}
	if !bl.Admits("0xcc") {
		t.Error("blacklist rejects unlisted value")
	}
	bl.Add("0xcc")
	if bl.Admits("0xcc") {
		t.Error("Add did not take effect")
	}
	bl.Remove("0xcc")
	if !bl.Admits("0xcc") {
		t.Error("Remove did not take effect")
	}
	if bl.Len() != 1 {
		t.Errorf("Len = %d, want 1", bl.Len())
	}
}

func TestEmptyRuleSetAllowsAll(t *testing.T) {
	rs := NewRuleSet()
	if err := rs.Check(superReq(alice)); err != nil {
		t.Errorf("empty rule set denied: %v", err)
	}
}

func TestSenderWhitelist(t *testing.T) {
	// Example 1: only a dynamic set of addresses may call.
	rs := NewRuleSet()
	rs.SetSenderList(NewList(Whitelist, core.ValueKey(alice)))

	if err := rs.Check(superReq(alice)); err != nil {
		t.Errorf("whitelisted sender denied: %v", err)
	}
	if err := rs.Check(superReq(bob)); !errors.Is(err, ErrDenied) {
		t.Errorf("unlisted sender allowed: %v", err)
	}

	// Dynamic update without touching the contract (Example 1's "dynamic
	// set").
	rs.AddSender(core.ValueKey(bob))
	if err := rs.Check(superReq(bob)); err != nil {
		t.Errorf("added sender still denied: %v", err)
	}
	rs.RemoveSender(core.ValueKey(bob))
	if err := rs.Check(superReq(bob)); !errors.Is(err, ErrDenied) {
		t.Error("removed sender still allowed")
	}
}

func TestSenderBlacklist(t *testing.T) {
	// Example 2: block a predefined set of addresses.
	rs := NewRuleSet()
	rs.SetSenderList(NewList(Blacklist, core.ValueKey(carol)))
	if err := rs.Check(superReq(alice)); err != nil {
		t.Errorf("innocent sender denied: %v", err)
	}
	if err := rs.Check(superReq(carol)); !errors.Is(err, ErrDenied) {
		t.Error("blacklisted sender allowed")
	}
}

func TestPerMethodList(t *testing.T) {
	// Example 3: only authorized parties can call a specific method.
	rs := NewRuleSet()
	rs.SetMethodList("withdraw", NewList(Whitelist, core.ValueKey(alice)))

	if err := rs.Check(methodReq(alice, "withdraw")); err != nil {
		t.Errorf("authorized method call denied: %v", err)
	}
	if err := rs.Check(methodReq(bob, "withdraw")); !errors.Is(err, ErrDenied) {
		t.Error("unauthorized method call allowed")
	}
	// Other methods are unaffected.
	if err := rs.Check(methodReq(bob, "deposit")); err != nil {
		t.Errorf("unrelated method denied: %v", err)
	}
	// Super tokens are not subject to method lists (they are governed by
	// the sender list).
	if err := rs.Check(superReq(bob)); err != nil {
		t.Errorf("super request hit a method list: %v", err)
	}
}

func TestArgumentValueList(t *testing.T) {
	// Example 3 (fine-tuned): specific arguments only.
	rs := NewRuleSet()
	rs.SetArgumentList("to", NewList(Whitelist, core.ValueKey(alice)))

	ok := argReq(bob, "transfer", core.NamedArg{Name: "to", Value: alice})
	if err := rs.Check(ok); err != nil {
		t.Errorf("whitelisted argument denied: %v", err)
	}
	bad := argReq(bob, "transfer", core.NamedArg{Name: "to", Value: carol})
	if err := rs.Check(bad); !errors.Is(err, ErrDenied) {
		t.Error("unlisted argument value allowed")
	}
	// Unconstrained argument names pass.
	free := argReq(bob, "transfer", core.NamedArg{Name: "amount", Value: big.NewInt(5)})
	if err := rs.Check(free); err != nil {
		t.Errorf("unconstrained argument denied: %v", err)
	}
}

func TestDangerousArgumentBlacklist(t *testing.T) {
	// § IV-E: "it is possible to blacklist dangerous argument values".
	rs := NewRuleSet()
	rs.SetArgumentList("amount", NewList(Blacklist, "666"))
	bad := argReq(alice, "mint", core.NamedArg{Name: "amount", Value: big.NewInt(666)})
	if err := rs.Check(bad); !errors.Is(err, ErrDenied) {
		t.Error("dangerous argument value allowed")
	}
	ok := argReq(alice, "mint", core.NamedArg{Name: "amount", Value: big.NewInt(667)})
	if err := rs.Check(ok); err != nil {
		t.Errorf("safe argument denied: %v", err)
	}
}

func TestJSONRoundTripFig6(t *testing.T) {
	// The Fig. 6 configuration shape.
	const cfg = `{
		"sender": {"whitelist": ["0x366c0ad2000000000000000000000000000000aa", "0xd488000000000000000000000000000000000bb"]},
		"method": {"methodA": {"blacklist": ["0xba7f0000000000000000000000000000000000cc"]}},
		"argument": {"argA": {"whitelist": ["0x3540000000000000000000000000000000000dd"]}}
	}`
	rs := NewRuleSet()
	if err := json.Unmarshal([]byte(cfg), rs); err != nil {
		t.Fatal(err)
	}
	okSender, _ := types.HexToAddress("0x366c0ad2000000000000000000000000000000aa")
	if err := rs.Check(superReq(okSender)); err != nil {
		t.Errorf("configured sender denied: %v", err)
	}
	if err := rs.Check(superReq(bob)); !errors.Is(err, ErrDenied) {
		t.Error("unlisted sender allowed after JSON load")
	}

	out, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	rs2 := NewRuleSet()
	if err := json.Unmarshal(out, rs2); err != nil {
		t.Fatal(err)
	}
	if err := rs2.Check(superReq(okSender)); err != nil {
		t.Errorf("round-tripped rule set denied: %v", err)
	}
}

func TestJSONRejectsAmbiguousList(t *testing.T) {
	rs := NewRuleSet()
	err := json.Unmarshal([]byte(`{"sender": {"whitelist": ["a"], "blacklist": ["b"]}}`), rs)
	if err == nil {
		t.Error("list with both modes accepted")
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	rs := NewRuleSet()
	rs.SetSenderList(NewList(Whitelist, core.ValueKey(alice)))
	snap := rs.Snapshot()
	rs.AddSender(core.ValueKey(bob))
	if err := snap.Check(superReq(bob)); !errors.Is(err, ErrDenied) {
		t.Error("snapshot observed later mutation")
	}
}

func TestConcurrentAccess(t *testing.T) {
	rs := NewRuleSet()
	rs.SetSenderList(NewList(Whitelist, core.ValueKey(alice)))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rs.AddSender(core.ValueKey(types.Address{byte(i), byte(j)}))
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = rs.Check(superReq(alice))
			}
		}()
	}
	wg.Wait()
	if err := rs.Check(superReq(alice)); err != nil {
		t.Errorf("alice denied after concurrent churn: %v", err)
	}
}
