package sereum_test

import (
	"errors"
	"testing"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/rtverify/sereum"
	"repro/internal/types"
	"repro/internal/wallet"
)

func mirror(t *testing.T, safe bool) (env *evmtest.Env, bankAddr, attackerEOA types.Address) {
	t.Helper()
	env = evmtest.NewEnv(t, 3)
	victim, attacker := 1, 2

	bank := contracts.NewBank()
	if safe {
		bank = contracts.NewSafeBank()
	}
	bankAddr = env.Deploy(t, bank)
	attackerAddr, _, err := env.Chain.Deploy(env.Wallets[attacker].Address(),
		contracts.NewAttacker(bankAddr, true))
	if err != nil {
		t.Fatal(err)
	}
	env.MustCall(t, victim, bankAddr, "addBalance", wallet.CallOpts{Value: evmtest.Ether(10)})
	env.MustCall(t, attacker, attackerAddr, "deposit", wallet.CallOpts{Value: evmtest.Ether(2)})
	return env, bankAddr, env.Wallets[attacker].Address()
}

func withdrawReq(bank, sender types.Address) *core.Request {
	return &core.Request{
		Type: core.ArgumentType, Contract: bank, Sender: sender, Method: "withdraw",
	}
}

func TestDetectsFig7Attack(t *testing.T) {
	env, bank, attacker := mirror(t, false)
	det := sereum.New(env.Chain, bank)
	if det.Name() != "sereum" {
		t.Errorf("Name = %q", det.Name())
	}
	err := det.Validate(withdrawReq(bank, attacker))
	if !errors.Is(err, sereum.ErrReentrantWrite) {
		t.Errorf("err = %v, want ErrReentrantWrite", err)
	}
}

func TestInnocentWithdrawApproved(t *testing.T) {
	env, bank, _ := mirror(t, false)
	det := sereum.New(env.Chain, bank)
	victim := env.Wallets[1].Address()
	if err := det.Validate(withdrawReq(bank, victim)); err != nil {
		t.Errorf("innocent withdraw rejected: %v", err)
	}
}

func TestSafeBankApproved(t *testing.T) {
	// SafeBank re-enters too (the attacker's fallback still fires), but
	// the balance slot is written *before* the external call, so the
	// re-entered frame only reads a zeroed balance and writes it back to
	// zero... the taint rule triggers iff a locked slot is written.
	env, bank, attacker := mirror(t, true)
	det := sereum.New(env.Chain, bank)
	err := det.Validate(withdrawReq(bank, attacker))
	// SafeBank's inner frame writes balance[attacker]=0 while the outer
	// frame holds a lock on it (it read the slot before transferring).
	// Classic Sereum whitelists such no-op writes; our simplified rule is
	// stricter, so we accept either outcome but *require* the vulnerable
	// Bank to be flagged (asserted above) — document the difference.
	t.Logf("SafeBank verdict: %v", err)
}

func TestAgreesWithECFOnDeposits(t *testing.T) {
	env, bank, attacker := mirror(t, false)
	det := sereum.New(env.Chain, bank)
	req := &core.Request{
		Type: core.ArgumentType, Contract: bank, Sender: attacker, Method: "addBalance",
	}
	if err := det.Validate(req); err != nil {
		t.Errorf("deposit request rejected: %v", err)
	}
}
