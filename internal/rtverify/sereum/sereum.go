// Package sereum implements a simplified Sereum-style re-entrancy detector
// (§ VIII cites Sereum, NDSS'19, as another tool that "can be integrated
// into the SMACS framework easily by using dedicated ACRs"). Sereum hardens
// the EVM with taint tracking: storage variables that influence control
// flow before an external call are locked for the duration of that call;
// a re-entrant write to a locked variable aborts the transaction.
//
// Our dynamic analogue walks the simulated EVM's execution trace: a slot of
// the protected contract read by a frame before it performs an external
// call/transfer is considered locked for that call; if any deeper frame of
// the same contract writes the slot while it is locked, the request is
// rejected. Unlike the ECF checker (which compares against callback-free
// serializations), this is a direct taint rule — the two tools flag the
// Fig. 7 attack through different lenses, mirroring the paper's point that
// multiple third-party tools can back SMACS rules side by side.
package sereum

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/types"
)

// ErrReentrantWrite is returned when a locked storage slot is written by a
// re-entrant frame.
var ErrReentrantWrite = errors.New("sereum: re-entrant write to a locked storage variable")

// Detector simulates requested calls against a testnet mirror and applies
// the taint rule. It satisfies ts.Validator.
type Detector struct {
	chain  *evm.Chain
	target types.Address
}

// New creates a detector for the protected contract at target on the given
// mirror chain (the same setup as the ECF checker of § V-B).
func New(chain *evm.Chain, target types.Address) *Detector {
	return &Detector{chain: chain, target: target}
}

// Name implements ts.Validator.
func (d *Detector) Name() string { return "sereum" }

// Validate simulates the requested call from the sender and from each
// contract the sender has deployed on the mirror.
func (d *Detector) Validate(req *core.Request) error {
	callers := append([]types.Address{req.Sender}, d.chain.DeployedBy(req.Sender)...)
	for _, from := range callers {
		entry, method, args := d.entryPoint(from, req)
		_, receipt, _ := d.chain.StaticCall(from, entry, method, args, nil)
		if receipt == nil || receipt.Trace == nil {
			continue
		}
		if err := analyze(receipt.Trace, d.target); err != nil {
			return fmt.Errorf("simulating as %s: %w", from, err)
		}
	}
	return nil
}

func (d *Detector) entryPoint(from types.Address, req *core.Request) (types.Address, string, []any) {
	if from != req.Sender {
		if contract, ok := d.chain.ContractAt(from); ok {
			if _, has := contract.Method(req.Method); has {
				return from, req.Method, nil
			}
		}
	}
	return req.Contract, req.Method, req.ArgValues()
}

// frame tracks one open frame of the protected contract.
type frame struct {
	depth  int
	read   map[types.Hash]bool // slots read by this frame so far
	locked map[types.Hash]bool // slots locked while an external call is open
	calls  int                 // open external calls issued by this frame
}

// analyze applies the taint rule over the trace.
func analyze(tr *evm.Trace, target types.Address) error {
	var stack []*frame

	lockedByOuter := func(slot types.Hash, below int) bool {
		for _, f := range stack {
			if f.depth < below && f.calls > 0 && f.locked[slot] {
				return true
			}
		}
		return false
	}

	for _, e := range tr.Events {
		switch e.Kind {
		case evm.TraceCall:
			// An outgoing call from an open target frame locks its
			// read-set for the duration of the call.
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.From == target && e.Depth == top.depth+1 {
					for slot := range top.read {
						top.locked[slot] = true
					}
					top.calls++
				}
			}
			if e.To == target {
				stack = append(stack, &frame{
					depth:  e.Depth,
					read:   make(map[types.Hash]bool),
					locked: make(map[types.Hash]bool),
				})
			}
		case evm.TraceTransfer:
			if len(stack) > 0 && e.From == target && e.Depth == stack[len(stack)-1].depth {
				top := stack[len(stack)-1]
				for slot := range top.read {
					top.locked[slot] = true
				}
				top.calls++
			}
		case evm.TraceReturn:
			if len(stack) > 0 && e.From == target && stack[len(stack)-1].depth == e.Depth {
				stack = stack[:len(stack)-1]
				// The caller frame's external call (if any) completes when
				// control returns; unlock lazily by decrementing on the
				// next return to its depth — conservatively we keep locks
				// until the frame itself returns, which only widens
				// detection for nested attacks.
			}
		case evm.TraceSLoad:
			if e.From == target && len(stack) > 0 {
				stack[len(stack)-1].read[e.Slot] = true
			}
		case evm.TraceSStore:
			if e.From != target || len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			if lockedByOuter(e.Slot, top.depth) {
				return fmt.Errorf("%w: slot %s written at depth %d while locked",
					ErrReentrantWrite, e.Slot.Hex()[:10], top.depth)
			}
		}
	}
	return nil
}
