package ecf_test

import (
	"errors"
	"testing"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/rtverify/ecf"
	"repro/internal/types"
	"repro/internal/wallet"
)

// mirror builds the TS-side testnet of § V-B: the legacy (unprotected)
// bank with a victim deposit, plus — mirroring public chain data — the
// attacker's contract and its deposit.
func mirror(t *testing.T, buildBank func() interface{ Name() string }, safe bool) (env *evmtest.Env, bankAddr types.Address, attackerEOA types.Address) {
	t.Helper()
	env = evmtest.NewEnv(t, 3)
	victim, attacker := 1, 2

	bank := contracts.NewBank()
	if safe {
		bank = contracts.NewSafeBank()
	}
	bankAddr = env.Deploy(t, bank)
	attackerAddr, _, err := env.Chain.Deploy(env.Wallets[attacker].Address(),
		contracts.NewAttacker(bankAddr, true))
	if err != nil {
		t.Fatal(err)
	}
	env.MustCall(t, victim, bankAddr, "addBalance", wallet.CallOpts{Value: evmtest.Ether(10)})
	env.MustCall(t, attacker, attackerAddr, "deposit", wallet.CallOpts{Value: evmtest.Ether(2)})
	return env, bankAddr, env.Wallets[attacker].Address()
}

func withdrawRequest(bank, sender types.Address) *core.Request {
	return &core.Request{
		Type:     core.ArgumentType,
		Contract: bank,
		Sender:   sender,
		Method:   "withdraw",
	}
}

func TestDetectsFig7Reentrancy(t *testing.T) {
	env, bankAddr, attackerEOA := mirror(t, nil, false)
	checker := ecf.New(env.Chain, bankAddr)

	if checker.Name() != "ecfchecker" {
		t.Errorf("Name = %q", checker.Name())
	}
	err := checker.Validate(withdrawRequest(bankAddr, attackerEOA))
	if !errors.Is(err, ecf.ErrNotECF) {
		t.Errorf("attack request err = %v, want ErrNotECF", err)
	}
}

func TestInnocentClientApproved(t *testing.T) {
	env, bankAddr, _ := mirror(t, nil, false)
	checker := ecf.New(env.Chain, bankAddr)

	// The victim's own withdraw is callback-free and must pass, so the
	// vulnerable contract keeps serving innocent users (§ VIII).
	victimEOA := env.Wallets[1].Address()
	if err := checker.Validate(withdrawRequest(bankAddr, victimEOA)); err != nil {
		t.Errorf("innocent withdraw rejected: %v", err)
	}
}

func TestSafeBankPassesEvenForAttacker(t *testing.T) {
	env, bankAddr, attackerEOA := mirror(t, nil, true)
	checker := ecf.New(env.Chain, bankAddr)

	if err := checker.Validate(withdrawRequest(bankAddr, attackerEOA)); err != nil {
		t.Errorf("checks-effects-interactions bank flagged: %v", err)
	}
}

func TestDepositRequestsApproved(t *testing.T) {
	env, bankAddr, attackerEOA := mirror(t, nil, false)
	checker := ecf.New(env.Chain, bankAddr)

	req := &core.Request{
		Type:     core.ArgumentType,
		Contract: bankAddr,
		Sender:   attackerEOA,
		Method:   "addBalance",
	}
	if err := checker.Validate(req); err != nil {
		t.Errorf("deposit request rejected: %v", err)
	}
}

func TestSimulationLeavesStateUntouched(t *testing.T) {
	env, bankAddr, attackerEOA := mirror(t, nil, false)
	checker := ecf.New(env.Chain, bankAddr)
	before := env.Chain.Balance(bankAddr)

	_ = checker.Validate(withdrawRequest(bankAddr, attackerEOA))
	_ = checker.Validate(withdrawRequest(bankAddr, attackerEOA))

	if after := env.Chain.Balance(bankAddr); after.Cmp(before) != 0 {
		t.Errorf("simulation mutated the mirror: %s -> %s", before, after)
	}
}
