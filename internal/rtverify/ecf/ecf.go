// Package ecf implements a dynamic effectively-callback-free (ECF) checker
// in the spirit of ECFChecker (§ V-B): the Token Service simulates a
// requested call on a local testnet mirror of the protected contract and
// rejects the request when the execution re-enters the contract through a
// callback and the re-entered frame's storage accesses conflict with writes
// the outer frame performs afterwards — the signature of the TheDAO-style
// re-entrancy exploit of Fig. 7.
//
// Because the attack only manifests when the protected contract is called
// *through* an attacker-controlled contract, the checker simulates the
// requested call both directly from the requesting account and from every
// contract that account has deployed (public on-chain information the TS
// mirrors onto its testnet).
package ecf

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/types"
)

// ErrNotECF is returned when the simulated execution exhibits a
// re-entrancy conflict.
var ErrNotECF = errors.New("ecf: execution is not effectively callback-free")

// Checker simulates calls against a testnet mirror. It satisfies
// ts.Validator.
type Checker struct {
	chain  *evm.Chain
	target types.Address
}

// New creates a checker for the protected contract deployed at target on
// the given mirror testnet. The mirror should hold the *legacy*
// (pre-SMACS) contract plus whatever public state is needed to make
// simulations meaningful (the § V-B setup: "the TS deploys ... an
// off-chain testnet with the Bank contract deployed").
func New(chain *evm.Chain, target types.Address) *Checker {
	return &Checker{chain: chain, target: target}
}

// Name implements ts.Validator.
func (c *Checker) Name() string { return "ecfchecker" }

// Chain exposes the mirror testnet so owners can replay public state onto
// it (deposits, attacker contracts, etc.).
func (c *Checker) Chain() *evm.Chain { return c.chain }

// Validate simulates the requested call from the sender and from each
// contract the sender has deployed on the mirror, and analyzes the traces
// for ECF violations.
func (c *Checker) Validate(req *core.Request) error {
	callers := append([]types.Address{req.Sender}, c.chain.DeployedBy(req.Sender)...)
	for _, from := range callers {
		entry, method, args := c.entryPoint(from, req)
		_, receipt, err := c.chain.StaticCall(from, entry, method, args, nil)
		if err != nil {
			// A failing simulation is not an ECF violation by itself;
			// only analyze traces of runs that made progress.
			if receipt == nil || receipt.Trace == nil {
				continue
			}
		}
		if receipt != nil && receipt.Trace != nil {
			if err := analyze(receipt.Trace, c.target); err != nil {
				return fmt.Errorf("simulating as %s: %w", from, err)
			}
		}
	}
	return nil
}

// entryPoint picks what to call in the simulation: the protected contract
// directly for the EOA, or the deployed contract's same-named method when
// the caller is one of the sender's contracts (modelling the sender routing
// the call through its own contract, as the Fig. 7 attacker does).
func (c *Checker) entryPoint(from types.Address, req *core.Request) (types.Address, string, []any) {
	if from == req.Sender {
		return req.Contract, req.Method, req.ArgValues()
	}
	if contract, ok := c.chain.ContractAt(from); ok {
		if _, has := contract.Method(req.Method); has {
			// Simulate the EOA calling its contract's wrapper method,
			// which will message the protected contract.
			return from, req.Method, nil
		}
	}
	return req.Contract, req.Method, req.ArgValues()
}

// frame tracks one open call frame on the protected contract during trace
// analysis.
type frame struct {
	depth     int
	accessed  map[types.Hash]bool // slots the frame read or wrote
	reentered bool
}

// analyze walks the execution trace and reports a violation when an outer
// frame of the target writes a storage slot after a re-entered inner frame
// of the target accessed it (no callback-free serialization can produce
// that interleaving).
func analyze(tr *evm.Trace, target types.Address) error {
	var stack []*frame
	inner := make(map[types.Hash]bool) // slots accessed by completed re-entered frames

	for _, e := range tr.Events {
		switch e.Kind {
		case evm.TraceCall:
			if e.To != target {
				continue
			}
			f := &frame{depth: e.Depth, accessed: make(map[types.Hash]bool)}
			if len(stack) > 0 {
				f.reentered = true
				stack[len(stack)-1].reentered = true
			}
			stack = append(stack, f)
		case evm.TraceReturn:
			if e.From != target || len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			if top.depth == e.Depth {
				stack = stack[:len(stack)-1]
				if top.reentered && len(stack) > 0 {
					for slot := range top.accessed {
						inner[slot] = true
					}
				}
			}
		case evm.TraceSLoad, evm.TraceSStore:
			if e.From != target || len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			top.accessed[e.Slot] = true
			if e.Kind == evm.TraceSStore && len(stack) == 1 && inner[e.Slot] {
				return fmt.Errorf("%w: outer frame writes slot %s after a re-entered frame accessed it",
					ErrNotECF, e.Slot.Hex()[:10])
			}
		}
	}
	return nil
}
