// Package rtverify defines the runtime-verification tool abstraction of
// § V: third-party analysis tools that a Token Service plugs into its
// validation module to enforce advanced Access Control Rules on argument
// tokens. Concrete tools live in the hydra (N-version uniformity, § V-A)
// and ecf (effectively-callback-free checking, § V-B) subpackages; both
// satisfy ts.Validator.
package rtverify

import "errors"

// ErrRejected is the sentinel wrapped by every tool veto.
var ErrRejected = errors.New("rtverify: request rejected")
