package hydra

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// adderHead builds one "language implementation" of a doubling contract.
// When buggyAt is nonzero, the head miscomputes for exactly that input —
// the seeded divergence the uniformity rule must catch.
func adderHead(buggyAt uint64) func() *evm.Contract {
	return func() *evm.Contract {
		c := evm.NewContract("Adder")
		c.MustAddMethod(evm.Method{
			Name:       "double",
			Params:     []any{uint64(0)},
			Visibility: evm.Public,
			Handler: func(call *evm.Call) ([]any, error) {
				n, _ := call.Arg(0).(uint64)
				if buggyAt != 0 && n == buggyAt {
					return []any{n*2 + 1}, nil // the bug
				}
				return []any{n * 2}, nil
			},
		})
		c.MustAddMethod(evm.Method{
			Name:       "store",
			Params:     []any{uint64(0)},
			Visibility: evm.Public,
			Handler: func(call *evm.Call) ([]any, error) {
				n, _ := call.Arg(0).(uint64)
				return nil, call.StoreUint(gas.CatApp, evm.SlotN(0), n)
			},
		})
		return c
	}
}

func request(method string, n uint64) *core.Request {
	return &core.Request{
		Type:     core.ArgumentType,
		Contract: types.Address{0x01},
		Sender:   types.Address{0xc1},
		Method:   method,
		Args:     []core.NamedArg{{Name: "n", Value: n}},
	}
}

func TestNewRequiresTwoHeads(t *testing.T) {
	if _, err := New(Head{Name: "solo", Build: adderHead(0)}); err == nil {
		t.Error("single-head tool accepted")
	}
}

func TestUniformHeadsApprove(t *testing.T) {
	tool, err := New(
		Head{Name: "solidity", Build: adderHead(0)},
		Head{Name: "vyper", Build: adderHead(0)},
		Head{Name: "serpent", Build: adderHead(0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Name() != "hydra" {
		t.Errorf("Name = %q", tool.Name())
	}
	for _, n := range []uint64{0, 1, 7, 1000} {
		if err := tool.Validate(request("double", n)); err != nil {
			t.Errorf("uniform heads diverged on %d: %v", n, err)
		}
	}
}

func TestDivergentHeadRejectsOnlyTriggeringInput(t *testing.T) {
	tool, err := New(
		Head{Name: "solidity", Build: adderHead(0)},
		Head{Name: "vyper", Build: adderHead(13)}, // bug at 13
		Head{Name: "serpent", Build: adderHead(0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Innocent payloads pass — the vulnerable contract "keeps operating
	// for innocent transactions" (§ VIII).
	if err := tool.Validate(request("double", 12)); err != nil {
		t.Errorf("innocent input rejected: %v", err)
	}
	// The triggering payload is rejected.
	if err := tool.Validate(request("double", 13)); !errors.Is(err, ErrHeadsDiverge) {
		t.Errorf("err = %v, want ErrHeadsDiverge", err)
	}
}

func TestHeadStateIsolation(t *testing.T) {
	// Simulations are read-only: validating a state-writing call twice
	// must not accumulate state on the heads' testnets.
	tool, err := New(
		Head{Name: "a", Build: adderHead(0)},
		Head{Name: "b", Build: adderHead(0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tool.Validate(request("store", 5)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestDivergentRevertBehavior(t *testing.T) {
	// A head that reverts where others succeed is also a divergence.
	failing := func() *evm.Contract {
		c := evm.NewContract("Adder")
		c.MustAddMethod(evm.Method{
			Name:       "double",
			Params:     []any{uint64(0)},
			Visibility: evm.Public,
			Handler: func(call *evm.Call) ([]any, error) {
				return nil, errors.New("head panics")
			},
		})
		return c
	}
	tool, err := New(
		Head{Name: "good", Build: adderHead(0)},
		Head{Name: "crashy", Build: failing},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Validate(request("double", 1)); !errors.Is(err, ErrHeadsDiverge) {
		t.Errorf("err = %v, want ErrHeadsDiverge", err)
	}
}
