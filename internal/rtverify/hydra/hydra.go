// Package hydra implements the Hydra-uniformity rule of § V-A: N
// independent implementations ("heads") of the same contract logic run on
// private local testnets, and an argument token is issued only when all
// heads produce identical outputs for the requested call. Divergence
// indicates that the payload triggers an implementation bug, so the request
// is rejected — the N-of-N-version-programming check of the Hydra framework
// moved off-chain, where extra heads cost no gas.
package hydra

import (
	"errors"
	"fmt"
	"math/big"
	"reflect"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/types"
)

// Head is one independent implementation of the protected contract's
// logic (in the original framework: the same program written in different
// languages).
type Head struct {
	// Name identifies the head in divergence reports.
	Name string
	// Build constructs a fresh instance of the head's contract.
	Build func() *evm.Contract
}

// ErrHeadsDiverge is returned when head outputs differ.
var ErrHeadsDiverge = errors.New("hydra: head outputs diverge")

// Tool runs the uniformity check. It satisfies ts.Validator.
type Tool struct {
	heads []headInstance
}

type headInstance struct {
	name  string
	chain *evm.Chain
	addr  types.Address
}

// deployKey is the testnet account that owns the head deployments.
var deployKey = types.Address{0x4d, 0xea, 0xd2}

// New deploys each head on its own local testnet. At least two heads are
// required for the check to be meaningful.
func New(heads ...Head) (*Tool, error) {
	if len(heads) < 2 {
		return nil, fmt.Errorf("hydra: need at least 2 heads, got %d", len(heads))
	}
	t := &Tool{heads: make([]headInstance, 0, len(heads))}
	for _, h := range heads {
		chain := evm.NewChain(evm.DefaultConfig())
		chain.Fund(deployKey, new(big.Int).Lsh(big.NewInt(1), 80))
		addr, _, err := chain.Deploy(deployKey, h.Build())
		if err != nil {
			return nil, fmt.Errorf("hydra: deploy head %q: %w", h.Name, err)
		}
		t.heads = append(t.heads, headInstance{name: h.Name, chain: chain, addr: addr})
	}
	return t, nil
}

// Name implements ts.Validator.
func (t *Tool) Name() string { return "hydra" }

// Validate executes the requested call on every head's testnet and demands
// identical outcomes (§ V-A's uniformity rule). Head state never changes:
// the simulation uses read-only calls.
func (t *Tool) Validate(req *core.Request) error {
	type outcome struct {
		ret []any
		err string
	}
	var first outcome
	for i, h := range t.heads {
		ret, _, err := h.chain.StaticCall(req.Sender, h.addr, req.Method, req.ArgValues(), nil)
		o := outcome{ret: ret}
		if err != nil {
			o = outcome{err: err.Error()}
		}
		if i == 0 {
			first = o
			continue
		}
		if o.err != first.err || !equalOutputs(o.ret, first.ret) {
			return fmt.Errorf("%w: head %q returned (%v, %q), head %q returned (%v, %q)",
				ErrHeadsDiverge, t.heads[0].name, first.ret, first.err, h.name, o.ret, o.err)
		}
	}
	return nil
}

// equalOutputs compares return-value slices, normalizing big.Int values.
func equalOutputs(a, b []any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, aBig := a[i].(*big.Int)
		bv, bBig := b[i].(*big.Int)
		if aBig && bBig {
			if av.Cmp(bv) != 0 {
				return false
			}
			continue
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
