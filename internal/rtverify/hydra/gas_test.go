package hydra

import (
	"testing"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/types"
)

func TestHeadsWithDifferentGasButSameOutputAgree(t *testing.T) {
	// The uniformity rule compares *outputs*, not resource usage: the
	// formula head and the loop head burn very different amounts of gas
	// for sumTo(5000), yet must be judged uniform (the paper's heads are
	// different languages with different costs by construction).
	tool, err := New(
		Head{Name: "formula", Build: contracts.NewCalculatorFormula},
		Head{Name: "loop", Build: contracts.NewCalculatorLoop},
		Head{Name: "pairwise", Build: contracts.NewCalculatorPairwise},
	)
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{
		Type:     core.ArgumentType,
		Contract: types.Address{0x01},
		Sender:   types.Address{0xc1},
		Method:   "sumTo",
		Args:     []core.NamedArg{{Name: "n", Value: uint64(5000)}},
	}
	if err := tool.Validate(req); err != nil {
		t.Errorf("gas-divergent but output-uniform heads rejected: %v", err)
	}
}

func TestCalculatorHeadsMatchSpecification(t *testing.T) {
	// Cross-check all three production heads against the closed form over
	// a range of inputs — the N-version premise is that independent
	// implementations agree.
	tool, err := New(
		Head{Name: "formula", Build: contracts.NewCalculatorFormula},
		Head{Name: "loop", Build: contracts.NewCalculatorLoop},
		Head{Name: "pairwise", Build: contracts.NewCalculatorPairwise},
	)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(0); n <= 50; n++ {
		req := &core.Request{
			Type:     core.ArgumentType,
			Contract: types.Address{0x01},
			Sender:   types.Address{0xc1},
			Method:   "sumTo",
			Args:     []core.NamedArg{{Name: "n", Value: n}},
		}
		if err := tool.Validate(req); err != nil {
			t.Fatalf("heads diverge at n=%d: %v", n, err)
		}
	}
}

func TestOverflowGuardUniformAcrossHeads(t *testing.T) {
	// All heads reject oversized inputs identically — uniform *failure* is
	// also uniformity.
	tool, err := New(
		Head{Name: "formula", Build: contracts.NewCalculatorFormula},
		Head{Name: "loop", Build: contracts.NewCalculatorLoop},
	)
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{
		Type:     core.ArgumentType,
		Contract: types.Address{0x01},
		Sender:   types.Address{0xc1},
		Method:   "double",
		Args:     []core.NamedArg{{Name: "n", Value: uint64(1 << 40)}},
	}
	if err := tool.Validate(req); err != nil {
		t.Errorf("uniform rejection treated as divergence: %v", err)
	}
}
