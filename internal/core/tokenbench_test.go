package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// BenchmarkTokenVerify measures the contract-side token signature check —
// the second ecrecover of every guarded transaction — with the signer cache
// on (replayed token, hit path) and off (full recovery every time).
func BenchmarkTokenVerify(b *testing.B) {
	key := secp256k1.PrivateKeyFromSeed([]byte("bench token ts"))
	binding := core.Binding{Origin: types.Address{0xc1}, Contract: types.Address{0x01}}
	tk, err := core.SignToken(key, core.SuperType, time.Now().Add(time.Hour), core.NotOneTime, binding)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"cached", true}, {"uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := core.SetTokenSigCache(mode.cached)
			defer core.SetTokenSigCache(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tk.VerifySignature(key.Address(), binding); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
