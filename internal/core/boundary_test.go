package core_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/wallet"
)

func TestExpiryBoundaryExactSecond(t *testing.T) {
	// Alg. 1 rejects iff now() > tk.expire: a call in the very second the
	// token expires is still valid; one second later it is not.
	f := newFixture(t, 0)
	expire := f.env.Clock.Now().Add(time.Hour)

	tk, err := core.SignToken(tsKey, core.SuperType, expire, core.NotOneTime, core.Binding{
		Origin:   f.env.Wallets[1].Address(),
		Contract: f.addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wallet.WithTokens(wallet.TokenEntry{Contract: f.addr, Token: tk})

	f.env.Clock.Advance(time.Hour) // now == expire exactly
	f.env.MustCall(t, 1, f.addr, "ping", opts)

	f.env.Clock.Advance(time.Second) // now > expire
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrTokenExpired) {
		t.Errorf("err = %v, want ErrTokenExpired", r.Err)
	}
}

func TestBitmapAdvanceBoundary(t *testing.T) {
	// Index exactly end+n takes the advance branch (shift = n: the whole
	// window recycles); end+n+1 takes the reset branch. Both must keep the
	// at-most-once property for the boundary index itself.
	env := evmtestEnvForBitmap(t, 8)

	use := env.use
	if err := use(0); err != nil {
		t.Fatal(err)
	}
	// end = 7, n = 8 → boundary index 15 advances; 15 must then be
	// unusable a second time.
	if err := use(15); err != nil {
		t.Fatalf("boundary advance rejected: %v", err)
	}
	if err := use(15); !errors.Is(err, core.ErrTokenUsed) {
		t.Errorf("boundary index reused: %v", err)
	}
	// Window is now [8,15]; index 8 is fresh and must be accepted.
	if err := use(8); err != nil {
		t.Errorf("fresh index 8 rejected after boundary advance: %v", err)
	}
}

// bitmapEnv wraps the bitmap harness with an ergonomic use() helper.
type bitmapEnv struct {
	use func(idx uint64) error
}

func evmtestEnvForBitmap(t *testing.T, bits int) *bitmapEnv {
	t.Helper()
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newBitmapHarness(t, bits))
	return &bitmapEnv{
		use: func(idx uint64) error {
			r, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, idx)
			if err != nil {
				t.Fatalf("use(%d): %v", idx, err)
			}
			if !r.Status {
				return r.Err
			}
			return nil
		},
	}
}
