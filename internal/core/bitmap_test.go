package core_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/wallet"
)

// newBitmapHarness wraps a Bitmap in a contract so the algorithm runs under
// real gas-charged storage.
func newBitmapHarness(t *testing.T, bits int) *evm.Contract {
	t.Helper()
	bm, err := core.NewBitmap(bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := evm.NewContract("BitmapHarness")
	c.SetInitialStorageWords(bm.StorageWords())
	c.MustAddMethod(evm.Method{
		Name:       "use",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			idx, _ := call.Arg(0).(uint64)
			if err := bm.Use(call, int64(idx)); err != nil {
				return nil, err
			}
			return nil, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "window",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			start, err := call.LoadUint("app", evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			ptr, err := call.LoadUint("app", evm.SlotN(1))
			if err != nil {
				return nil, err
			}
			return []any{start, ptr}, nil
		},
	})
	return c
}

func TestBitmapPaperWalkthrough(t *testing.T) {
	// Reproduces the worked example of § IV-C with n = 8.
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newBitmapHarness(t, 8))

	use := func(idx uint64) error {
		r, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, idx)
		if err != nil {
			t.Fatalf("use(%d): %v", idx, err)
		}
		if !r.Status {
			return r.Err
		}
		return nil
	}
	window := func() (start, ptr uint64) {
		r := env.MustCall(t, 1, addr, "window", wallet.CallOpts{})
		return r.Return[0].(uint64), r.Return[1].(uint64)
	}

	// Tokens 0, 1, 4, 5 access the contract.
	for _, idx := range []uint64{0, 1, 4, 5} {
		if err := use(idx); err != nil {
			t.Fatalf("use(%d) rejected: %v", idx, err)
		}
	}
	if start, ptr := window(); start != 0 || ptr != 0 {
		t.Fatalf("window = (%d, %d), want (0, 0)", start, ptr)
	}

	// Token 9 advances the window: seek returns 2 (paper's example).
	if err := use(9); err != nil {
		t.Fatalf("use(9) rejected: %v", err)
	}
	if start, ptr := window(); start != 2 || ptr != 2 {
		t.Fatalf("after 9: window = (%d, %d), want (2, 2)", start, ptr)
	}

	// Token 13 advances again: start becomes 6, and the unused tokens 2
	// and 3 are lost ("token miss").
	if err := use(13); err != nil {
		t.Fatalf("use(13) rejected: %v", err)
	}
	if start, ptr := window(); start != 6 || ptr != 6 {
		t.Fatalf("after 13: window = (%d, %d), want (6, 6)", start, ptr)
	}
	for _, missed := range []uint64{2, 3} {
		if err := use(missed); !errors.Is(err, core.ErrTokenUsed) {
			t.Errorf("use(%d) = %v, want miss (ErrTokenUsed)", missed, err)
		}
	}
}

func TestBitmapRejectsDoubleUse(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newBitmapHarness(t, 8))

	r := env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, uint64(3))
	_ = r
	rr, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, uint64(3))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status || !errors.Is(rr.Err, core.ErrTokenUsed) {
		t.Errorf("double use: status=%v err=%v", rr.Status, rr.Err)
	}
}

func TestBitmapResetBranch(t *testing.T) {
	// An index far beyond end+n triggers the reset branch, which must also
	// mark the new index used (the fix documented in DESIGN.md).
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newBitmapHarness(t, 8))

	env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, uint64(0))
	env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, uint64(100))

	r := env.MustCall(t, 1, addr, "window", wallet.CallOpts{})
	if start := r.Return[0].(uint64); start != 100 {
		t.Errorf("window start = %d, want 100", start)
	}
	rr, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, uint64(100))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status {
		t.Error("reset branch allowed reuse of the resetting index")
	}
}

func TestBitmapAtMostOnceProperty(t *testing.T) {
	// THE one-time-token security invariant: no index is ever accepted
	// twice, regardless of the access pattern.
	f := func(seq []uint16) bool {
		env := evmtest.NewEnv(t, 2)
		addr := env.Deploy(t, newBitmapHarness(t, 16))
		accepted := make(map[uint64]bool)
		for _, raw := range seq {
			idx := uint64(raw % 64)
			r, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, idx)
			if err != nil {
				return false
			}
			if r.Status {
				if accepted[idx] {
					t.Logf("index %d accepted twice (sequence %v)", idx, seq)
					return false
				}
				accepted[idx] = true
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBitmapMonotoneSequenceAllAccepted(t *testing.T) {
	// A strictly increasing sequence within the window capacity must never
	// miss — this is the sizing rule of § IV-C.
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newBitmapHarness(t, 8))
	for idx := uint64(0); idx < 50; idx++ {
		r, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Status {
			t.Fatalf("monotone index %d rejected: %v", idx, r.Err)
		}
	}
}

func TestBitmapSizing(t *testing.T) {
	// Table IV sizing: lifetime 1h × 35 tx/s = 126000 bits ≈ 15.38 KB.
	n := core.SizeFor(3600, 35)
	if n != 126000 {
		t.Errorf("SizeFor(3600, 35) = %d, want 126000", n)
	}
	bm, err := core.NewBitmap(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	words := bm.StorageWords()
	if words < 492 || words > 495 {
		t.Errorf("words = %d, want ≈493", words)
	}
	if _, err := core.NewBitmap(0, 0); err == nil {
		t.Error("zero-size bitmap accepted")
	}
	if core.SizeFor(0.1, 0.1) < 1 {
		t.Error("SizeFor must be at least 1")
	}
}
