package core

import (
	"fmt"

	"repro/internal/types"
)

// Call-chain token arrays (§ IV-D): a transaction that triggers a chain of
// SMACS-enabled contracts carries one entry per contract, each entry tagged
// with the contract address it is for:
//
//	SCA : tkA ‖ SCB : tkB ‖ SCC : tkC
//
// Each entry is 20 bytes of address followed by the 86-byte token.

// EntryLength is the byte length of one tagged token-array entry.
const EntryLength = types.AddressLength + TokenLength

// EncodeEntry builds one address-tagged token-array entry.
func EncodeEntry(contract types.Address, tk Token) []byte {
	out := make([]byte, 0, EntryLength)
	out = append(out, contract[:]...)
	return append(out, tk.Encode()...)
}

// EntryFor scans a token array for the entry tagged with the given contract
// address and returns the raw token bytes. scanned reports how many entries
// were examined (used for Parse gas accounting in Tab. III).
func EntryFor(tokens [][]byte, contract types.Address) (raw []byte, scanned int, err error) {
	for i, entry := range tokens {
		scanned = i + 1
		if len(entry) != EntryLength {
			return nil, scanned, fmt.Errorf("%w: entry %d is %d bytes, want %d",
				ErrMalformedToken, i, len(entry), EntryLength)
		}
		if types.BytesToAddress(entry[:types.AddressLength]) == contract {
			return entry[types.AddressLength:], scanned, nil
		}
	}
	return nil, scanned, fmt.Errorf("%w: %s", ErrNoToken, contract)
}

// TokenFor scans and parses the token for a contract in one step.
func TokenFor(tokens [][]byte, contract types.Address) (Token, error) {
	raw, _, err := EntryFor(tokens, contract)
	if err != nil {
		return Token{}, err
	}
	return ParseToken(raw)
}
