package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/wallet"
)

func TestTokenPrehookWarmsVerificationCache(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.MethodType, core.NotOneTime, 1, "act", uint64(0))
	w := f.env.Wallets[1]
	tx, err := w.BuildTx(f.addr, "act", opts, uint64(5))
	if err != nil {
		t.Fatal(err)
	}

	cfg := f.env.Chain.Config()
	hook := core.TokenPrehook(tsKey.Address(), cfg.ChainID)
	hits0, misses0 := core.TokenSigCacheStats()
	results := f.env.Chain.ApplyBatch([]*evm.Transaction{tx}, evm.BatchOptions{
		Workers:     2,
		Prevalidate: hook,
	})
	if results[0].Err != nil {
		t.Fatalf("batch rejected: %v", results[0].Err)
	}
	if !results[0].Receipt.Status {
		t.Fatalf("guarded call reverted: %v", results[0].Receipt.Err)
	}
	hits1, misses1 := core.TokenSigCacheStats()
	// The prehook's recovery misses (cold) and the on-chain verification
	// then hits the warmed entry.
	if misses1 == misses0 {
		t.Error("prehook never touched the token signer cache")
	}
	if hits1 == hits0 {
		t.Error("on-chain verification did not reuse the prevalidated signer")
	}

	// The hook is best-effort: token-less and malformed-token transactions
	// must not panic or reject ahead of the authoritative checks.
	plain, err := w.BuildTx(f.addr, "act", wallet.CallOpts{}, uint64(5))
	if err != nil {
		t.Fatal(err)
	}
	hook(plain)
	bad, err := w.BuildTx(f.addr, "act", opts, uint64(5))
	if err != nil {
		t.Fatal(err)
	}
	bad.Tokens = [][]byte{{0x01, 0x02}}
	hook(bad)
}
