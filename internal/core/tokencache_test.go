package core_test

import (
	"errors"
	"math/big"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

func TestTokenSignerCached(t *testing.T) {
	key := secp256k1.PrivateKeyFromSeed([]byte("cache ts"))
	binding := core.Binding{Origin: types.Address{0xc1}, Contract: types.Address{0x01}}
	expire := time.Now().Add(time.Hour)
	tk, err := core.SignToken(key, core.SuperType, expire, core.NotOneTime, binding)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.VerifySignature(key.Address(), binding); err != nil {
		t.Fatal(err)
	}
	hits0, _ := core.TokenSigCacheStats()
	if err := tk.VerifySignature(key.Address(), binding); err != nil {
		t.Fatal(err)
	}
	hits1, _ := core.TokenSigCacheStats()
	if hits1 != hits0+1 {
		t.Errorf("second verification missed the cache (hits %d→%d)", hits0, hits1)
	}

	// A cache hit is an address recovery, not a verdict: checking the same
	// token against another Token Service address must still fail.
	other := secp256k1.PrivateKeyFromSeed([]byte("other ts"))
	if err := tk.VerifySignature(other.Address(), binding); !errors.Is(err, core.ErrBadTokenSig) {
		t.Errorf("cached signer accepted for wrong TS address: %v", err)
	}

	// A different binding changes the digest — no stale hit.
	wrong := core.Binding{Origin: types.Address{0xc2}, Contract: types.Address{0x01}}
	if err := tk.VerifySignature(key.Address(), wrong); !errors.Is(err, core.ErrBadTokenSig) {
		t.Errorf("binding swap err = %v, want ErrBadTokenSig", err)
	}
}

func TestTokenSigCacheToggle(t *testing.T) {
	prev := core.SetTokenSigCache(false)
	defer core.SetTokenSigCache(prev)
	if core.TokenSigCacheEnabled() {
		t.Fatal("cache still enabled after SetTokenSigCache(false)")
	}
	key := secp256k1.PrivateKeyFromSeed([]byte("uncached ts"))
	binding := core.Binding{Origin: types.Address{0xc1}, Contract: types.Address{0x02}}
	tk, err := core.SignToken(key, core.SuperType, time.Now().Add(time.Hour), core.NotOneTime, binding)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := tk.VerifySignature(key.Address(), binding); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTokenVerifyOutOfRangeScalarsError(t *testing.T) {
	// Out-of-range scalars must be rejected as ErrBadTokenSig, not panic
	// inside Signature.Bytes while building the cache key.
	key := secp256k1.PrivateKeyFromSeed([]byte("bad scalar ts"))
	binding := core.Binding{Origin: types.Address{0xc1}, Contract: types.Address{0x01}}
	tk, err := core.SignToken(key, core.SuperType, time.Now().Add(time.Hour), core.NotOneTime, binding)
	if err != nil {
		t.Fatal(err)
	}
	tk.Signature.R = new(big.Int).Lsh(big.NewInt(1), 300)
	if err := tk.VerifySignature(key.Address(), binding); !errors.Is(err, core.ErrBadTokenSig) {
		t.Errorf("err = %v, want ErrBadTokenSig", err)
	}
}
