// Package core implements the SMACS primary contribution: access tokens
// (Fig. 3), token requests (Fig. 2 / Tab. I), the contract-side token
// verification of Alg. 1, the cyclically-reused one-time-token bitmap of
// Alg. 2, and the address-tagged token arrays used for call chains
// (§ IV-D).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/abi"
	"repro/internal/keccak"
	"repro/internal/secp256k1"
	"repro/internal/sigcache"
	"repro/internal/types"
)

// TokenType is the permission level of a token (§ IV-A).
type TokenType byte

// Token types, from the widest to the narrowest permission.
const (
	// SuperType grants access to all public methods with arbitrary
	// arguments.
	SuperType TokenType = iota + 1
	// MethodType grants access to one specific method with arbitrary
	// arguments.
	MethodType
	// ArgumentType grants access to one method with one specific argument
	// payload.
	ArgumentType
)

// String implements fmt.Stringer.
func (t TokenType) String() string {
	switch t {
	case SuperType:
		return "super"
	case MethodType:
		return "method"
	case ArgumentType:
		return "argument"
	default:
		return fmt.Sprintf("token-type(%d)", byte(t))
	}
}

// Valid reports whether t is a defined token type.
func (t TokenType) Valid() bool { return t >= SuperType && t <= ArgumentType }

// Token wire layout (Fig. 3): type 1B ‖ expire 4B ‖ index 16B ‖ sig 65B.
const (
	// TokenLength is the serialized token size in bytes.
	TokenLength = 1 + 4 + 16 + secp256k1.SignatureLength
	// NotOneTime is the Index value of tokens without the one-time
	// property (serialized as an all-ones 16-byte field).
	NotOneTime int64 = -1
)

// Token is a SMACS access token: a signed capability binding a client, a
// contract, and (depending on the type) a method and argument payload, with
// an expiry and an optional one-time index.
type Token struct {
	// Type is the permission level.
	Type TokenType
	// Expire is the expiration instant (second precision on the wire).
	Expire time.Time
	// Index is the one-time counter value, or NotOneTime.
	Index int64
	// Signature is the Token Service's signature over Digest.
	Signature secp256k1.Signature
}

// Token parsing and verification errors.
var (
	ErrMalformedToken = errors.New("smacs: malformed token")
	ErrNoToken        = errors.New("smacs: no token for this contract")
	ErrTokenExpired   = errors.New("smacs: token expired")
	ErrTokenUsed      = errors.New("smacs: one-time token already used or missed")
	ErrBadTokenSig    = errors.New("smacs: token signature verification failed")
)

// OneTime reports whether the one-time property is set (Index ≥ 0).
func (tk *Token) OneTime() bool { return tk.Index >= 0 }

// Encode serializes the token into the 86-byte layout of Fig. 3.
func (tk *Token) Encode() []byte {
	out := make([]byte, TokenLength)
	out[0] = byte(tk.Type)
	binary.BigEndian.PutUint32(out[1:5], uint32(tk.Expire.Unix()))
	encodeIndex(out[5:21], tk.Index)
	copy(out[21:], tk.Signature.Bytes())
	return out
}

// ParseToken deserializes an 86-byte token.
func ParseToken(b []byte) (Token, error) {
	if len(b) != TokenLength {
		return Token{}, fmt.Errorf("%w: %d bytes, want %d", ErrMalformedToken, len(b), TokenLength)
	}
	tp := TokenType(b[0])
	if !tp.Valid() {
		return Token{}, fmt.Errorf("%w: unknown type %d", ErrMalformedToken, b[0])
	}
	expire := time.Unix(int64(binary.BigEndian.Uint32(b[1:5])), 0).UTC()
	index, err := decodeIndex(b[5:21])
	if err != nil {
		return Token{}, err
	}
	sig, err := secp256k1.ParseSignature(b[21:])
	if err != nil {
		return Token{}, fmt.Errorf("%w: %v", ErrMalformedToken, err)
	}
	return Token{Type: tp, Expire: expire, Index: index, Signature: sig}, nil
}

// encodeIndex writes the 16-byte index field: a big-endian non-negative
// integer for one-time tokens, all-ones for NotOneTime.
func encodeIndex(dst []byte, index int64) {
	if index < 0 {
		for i := range dst {
			dst[i] = 0xff
		}
		return
	}
	for i := 0; i < 8; i++ {
		dst[i] = 0
	}
	binary.BigEndian.PutUint64(dst[8:], uint64(index))
}

func decodeIndex(b []byte) (int64, error) {
	if b[0]&0x80 != 0 {
		// Negative (two's complement): only the canonical -1 is legal.
		for _, x := range b {
			if x != 0xff {
				return 0, fmt.Errorf("%w: non-canonical negative index", ErrMalformedToken)
			}
		}
		return NotOneTime, nil
	}
	for _, x := range b[:8] {
		if x != 0 {
			return 0, fmt.Errorf("%w: index exceeds int64 range", ErrMalformedToken)
		}
	}
	v := binary.BigEndian.Uint64(b[8:])
	if v > uint64(1)<<62 {
		return 0, fmt.Errorf("%w: index exceeds int64 range", ErrMalformedToken)
	}
	return int64(v), nil
}

// Binding is the transaction context a token is cryptographically bound to.
// The contract rebuilds it from EVM context objects (Alg. 1); the Token
// Service builds it from the client's request.
type Binding struct {
	// Origin is tx.origin — the externally owned account of the client
	// (sAddr in the request).
	Origin types.Address
	// Contract is address(this) (cAddr in the request).
	Contract types.Address
	// Selector is msg.sig; only bound for method and argument tokens.
	Selector abi.Selector
	// Data is msg.data (the application calldata); only bound for
	// argument tokens.
	Data []byte
}

// SigningData assembles the byte string signed by the Token Service:
//
//	type ‖ expire ‖ index ‖ origin ‖ contract [‖ msg.sig [‖ msg.data]]
//
// exactly as Alg. 1 reconstructs it on-chain.
func SigningData(tp TokenType, expire time.Time, index int64, b Binding) []byte {
	out := make([]byte, 0, 61+4+len(b.Data))
	out = append(out, byte(tp))
	var exp [4]byte
	binary.BigEndian.PutUint32(exp[:], uint32(expire.Unix()))
	out = append(out, exp[:]...)
	var idx [16]byte
	encodeIndex(idx[:], index)
	out = append(out, idx[:]...)
	out = append(out, b.Origin[:]...)
	out = append(out, b.Contract[:]...)
	switch tp {
	case MethodType:
		out = append(out, b.Selector[:]...)
	case ArgumentType:
		out = append(out, b.Selector[:]...)
		out = append(out, b.Data...)
	}
	return out
}

// Digest hashes the signing data; this is the message signed with skTS and
// verified on-chain via ecrecover.
func Digest(tp TokenType, expire time.Time, index int64, b Binding) types.Hash {
	return types.Hash(keccak.Sum256(SigningData(tp, expire, index, b)))
}

// SignToken issues a token of the given type over the binding, signed with
// the Token Service key.
func SignToken(key *secp256k1.PrivateKey, tp TokenType, expire time.Time, index int64, b Binding) (Token, error) {
	if !tp.Valid() {
		return Token{}, fmt.Errorf("%w: type %d", ErrMalformedToken, tp)
	}
	digest := Digest(tp, expire, index, b)
	sig, err := secp256k1.Sign(key, [32]byte(digest))
	if err != nil {
		return Token{}, fmt.Errorf("sign token: %w", err)
	}
	return Token{Type: tp, Expire: expire, Index: index, Signature: sig}, nil
}

// VerifySignature checks the token signature against the Token Service
// address (the ecrecover idiom: recover the signer address and compare).
// Recovered signers are memoized by digest ‖ signature (see tokenSigCache),
// so re-presenting the same token for the same binding skips the ecrecover;
// the signer/address comparison always runs.
func (tk *Token) VerifySignature(tsAddr types.Address, b Binding) error {
	digest := Digest(tk.Type, tk.Expire, tk.Index, b)
	// Out-of-range scalars skip the cache (Signature.Bytes panics on them);
	// RecoverAddress below rejects them as ErrBadTokenSig instead.
	var key string
	if tokenSigCacheOn.Load() && tk.Signature.R != nil && tk.Signature.S != nil && tk.Signature.Validate() == nil {
		key = sigcache.Key([32]byte(digest), tk.Signature.Bytes())
	}
	signer, ok := types.Address{}, false
	if key != "" {
		signer, ok = tokenSigCache.Get(key)
	}
	if !ok {
		var err error
		signer, err = secp256k1.RecoverAddress([32]byte(digest), tk.Signature)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadTokenSig, err)
		}
		if key != "" {
			tokenSigCache.Add(key, signer)
		}
	}
	if signer != tsAddr {
		return fmt.Errorf("%w: signed by %s, want %s", ErrBadTokenSig, signer, tsAddr)
	}
	return nil
}
