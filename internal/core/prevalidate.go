package core

import (
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/sigcache"
	"repro/internal/types"
)

// TokenPrehook returns an evm.BatchOptions.Prevalidate hook that verifies a
// transaction's token signature against the Token Service address during
// ApplyBatch's parallel prevalidation phase, outside the chain mutex. The
// recovered signer lands in the token-signer cache, so the authoritative
// Verifier.Verify run inside the serial commit skips its ecrecover.
//
// The hook only warms the top-level entry (the token tagged with the
// transaction's target contract); downstream call-chain entries are
// verified — and cached — when the chain executes them. It is best-effort
// by design: any malformed or missing token is simply left for the on-chain
// verification to reject, and gas accounting is untouched because the
// Verifier charges the full ecrecover cost whether or not the cache hits.
func TokenPrehook(tsAddr types.Address, chainID uint64) func(*evm.Transaction) {
	return func(tx *evm.Transaction) {
		// With the token-signer cache disabled the recovered signer cannot
		// be handed to the commit phase, so the whole warm-up would be
		// duplicate work — skip it.
		if !TokenSigCacheEnabled() || len(tx.Tokens) == 0 {
			return
		}
		tk, err := TokenFor(tx.Tokens, tx.To)
		if err != nil {
			return
		}
		origin, err := tx.Sender(chainID)
		if err != nil {
			return
		}
		appData, err := tx.AppData()
		if err != nil || len(appData) < 4 {
			return
		}
		binding := Binding{Origin: origin, Contract: tx.To, Data: appData}
		copy(binding.Selector[:], appData[:4])
		_ = tk.VerifySignature(tsAddr, binding)
	}
}

// BatchTokenPrehook is the batch-first form of TokenPrehook, for
// evm.ExecOptions.PrevalidateBatch: it gathers the top-level token
// signatures of a whole sub-batch and recovers their signers through
// secp256k1.RecoverAddressBatch, amortizing the modular inversions of
// per-item recovery, before installing them in the token-signer cache.
// Like TokenPrehook it is best-effort and side-effect-only: malformed
// entries are skipped and the authoritative Verifier.Verify checks run
// again at execution time. Safe for concurrent use on disjoint
// sub-batches.
func BatchTokenPrehook(tsAddr types.Address, chainID uint64) func([]*evm.Transaction) {
	return func(txs []*evm.Transaction) {
		if !TokenSigCacheEnabled() {
			return
		}
		var (
			digests [][32]byte
			sigs    []secp256k1.Signature
			keys    []string
		)
		for _, tx := range txs {
			if len(tx.Tokens) == 0 {
				continue
			}
			tk, err := TokenFor(tx.Tokens, tx.To)
			if err != nil {
				continue
			}
			if tk.Signature.R == nil || tk.Signature.S == nil || tk.Signature.Validate() != nil {
				continue
			}
			origin, err := tx.Sender(chainID)
			if err != nil {
				continue
			}
			appData, err := tx.AppData()
			if err != nil || len(appData) < 4 {
				continue
			}
			binding := Binding{Origin: origin, Contract: tx.To, Data: appData}
			copy(binding.Selector[:], appData[:4])
			digest := Digest(tk.Type, tk.Expire, tk.Index, binding)
			key := sigcache.Key([32]byte(digest), tk.Signature.Bytes())
			if _, ok := tokenSigCache.Get(key); ok {
				continue
			}
			digests = append(digests, [32]byte(digest))
			sigs = append(sigs, tk.Signature)
			keys = append(keys, key)
		}
		if len(digests) == 0 {
			return
		}
		addrs, errs := secp256k1.RecoverAddressBatch(digests, sigs)
		for i, key := range keys {
			if errs[i] != nil {
				continue
			}
			tokenSigCache.Add(key, addrs[i])
		}
	}
}
