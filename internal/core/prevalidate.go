package core

import (
	"repro/internal/evm"
	"repro/internal/types"
)

// TokenPrehook returns an evm.BatchOptions.Prevalidate hook that verifies a
// transaction's token signature against the Token Service address during
// ApplyBatch's parallel prevalidation phase, outside the chain mutex. The
// recovered signer lands in the token-signer cache, so the authoritative
// Verifier.Verify run inside the serial commit skips its ecrecover.
//
// The hook only warms the top-level entry (the token tagged with the
// transaction's target contract); downstream call-chain entries are
// verified — and cached — when the chain executes them. It is best-effort
// by design: any malformed or missing token is simply left for the on-chain
// verification to reject, and gas accounting is untouched because the
// Verifier charges the full ecrecover cost whether or not the cache hits.
func TokenPrehook(tsAddr types.Address, chainID uint64) func(*evm.Transaction) {
	return func(tx *evm.Transaction) {
		// With the token-signer cache disabled the recovered signer cannot
		// be handed to the commit phase, so the whole warm-up would be
		// duplicate work — skip it.
		if !TokenSigCacheEnabled() || len(tx.Tokens) == 0 {
			return
		}
		tk, err := TokenFor(tx.Tokens, tx.To)
		if err != nil {
			return
		}
		origin, err := tx.Sender(chainID)
		if err != nil {
			return
		}
		appData, err := tx.AppData()
		if err != nil || len(appData) < 4 {
			return
		}
		binding := Binding{Origin: origin, Contract: tx.To, Data: appData}
		copy(binding.Selector[:], appData[:4])
		_ = tk.VerifySignature(tsAddr, binding)
	}
}
