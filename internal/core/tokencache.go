package core

import (
	"sync/atomic"

	"repro/internal/sigcache"
	"repro/internal/types"
)

// tokenSigCache memoizes recovered token signers keyed by signing digest ‖
// signature. Token signatures are the second ecrecover of every guarded
// transaction, and — unlike transaction signatures — the same token digest
// recurs across transactions: a reusable (non-one-time) token is presented
// with every call of a multi-call flow, and call-chain transactions verify
// the same array entries at every hop. The cache stores the recovered
// address, not a verdict, so a hit is still compared against the expected
// Token Service address.
var tokenSigCache = sigcache.New[types.Address](4096)

var tokenSigCacheOn atomic.Bool

func init() { tokenSigCacheOn.Store(true) }

// SetTokenSigCache enables or disables token-signer caching and returns the
// previous setting. Disabling purges the cache.
func SetTokenSigCache(on bool) bool {
	prev := tokenSigCacheOn.Swap(on)
	if !on {
		tokenSigCache.Purge()
	}
	return prev
}

// TokenSigCacheEnabled reports whether token-signer caching is active.
func TokenSigCacheEnabled() bool { return tokenSigCacheOn.Load() }

// TokenSigCacheStats returns the cumulative hit/miss counts of the token
// signer cache.
func TokenSigCacheStats() (hits, misses uint64) { return tokenSigCache.Stats() }
