package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/wallet"
)

func newNaiveHarness() *evm.Contract {
	tracker := core.NewNaiveTracker(0)
	c := evm.NewContract("NaiveHarness")
	c.MustAddMethod(evm.Method{
		Name:       "use",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			idx, _ := call.Arg(0).(uint64)
			return nil, tracker.Use(call, int64(idx))
		},
	})
	return c
}

func TestNaiveTrackerAtMostOnce(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newNaiveHarness())

	env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, uint64(7))
	r, err := env.Wallets[1].Call(addr, "use", wallet.CallOpts{}, uint64(7))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrTokenUsed) {
		t.Errorf("reuse: status=%v err=%v", r.Status, r.Err)
	}
}

func TestNaiveTrackerNeverMisses(t *testing.T) {
	// Unlike the windowed bitmap, the naive map accepts arbitrarily old
	// fresh indexes — its correctness edge over Alg. 2, bought with
	// unbounded storage.
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newNaiveHarness())

	for _, idx := range []uint64{1000000, 3, 999, 0} {
		env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, idx)
	}
}

func TestNaiveTrackerStorageGrowsLinearly(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newNaiveHarness())
	const n = 32
	for i := uint64(0); i < n; i++ {
		env.MustCall(t, 1, addr, "use", wallet.CallOpts{}, i)
	}
	// One full storage word per token — the § IV-C objection. (The
	// equivalent bitmap stores 32 tokens in a single word.)
	words := env.Chain.StorageWordsOf(addr)
	if words != n {
		t.Errorf("storage words = %d, want %d (one per token)", words, n)
	}
}
