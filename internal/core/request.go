package core

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/abi"
	"repro/internal/keccak"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// NamedArg is one argument/value pair of a token request (Fig. 2's
// argName/argValue fields). Name identifies the parameter for rule matching;
// Value is an ABI-encodable Go value.
type NamedArg struct {
	// Name is the parameter name as the contract owner's rules refer to it.
	Name string `json:"name"`
	// Value is the concrete argument value the client will call with.
	Value any `json:"value"`
}

// Request is a token request (Fig. 2). Its payload varies with the
// requested type per Tab. I: super tokens bind only addresses; method
// tokens add the method; argument tokens add the full argument list.
type Request struct {
	// Type is the requested token type.
	Type TokenType `json:"type"`
	// Contract is cAddr: the targeted SMACS-enabled contract.
	Contract types.Address `json:"contract"`
	// Sender is sAddr: the client account that will originate the call.
	Sender types.Address `json:"sender"`
	// Method identifies the target method (method/argument tokens only;
	// the paper's methodId). It is either a canonical signature such as
	// "act(address,uint256,string)", or a bare name, in which case the
	// signature is derived from the Args types (a niladic method when no
	// Args are given).
	Method string `json:"method,omitempty"`
	// Args are the argument name/value pairs (argument tokens only). The
	// order must match the method's parameter order.
	Args []NamedArg `json:"args,omitempty"`
	// OneTime requests the one-time property.
	OneTime bool `json:"oneTime,omitempty"`
	// Proof is an optional proof of possession: the client's 65-byte
	// signature over ProofDigest, showing the requester controls the
	// Sender account. Token Services may demand it (ts.Config
	// RequireProof) so third parties cannot spend a sender's issuance
	// allowance or probe the rules in its name.
	Proof []byte `json:"proof,omitempty"`
}

// ErrBadRequest is returned for requests whose payload does not match the
// requested token type (Tab. I).
var ErrBadRequest = errors.New("smacs: malformed token request")

// Validate checks the request shape against Tab. I.
func (r *Request) Validate() error {
	if !r.Type.Valid() {
		return fmt.Errorf("%w: unknown token type %d", ErrBadRequest, r.Type)
	}
	if r.Contract.IsZero() {
		return fmt.Errorf("%w: missing contract address", ErrBadRequest)
	}
	if r.Sender.IsZero() {
		return fmt.Errorf("%w: missing sender address", ErrBadRequest)
	}
	switch r.Type {
	case SuperType:
		if r.Method != "" || len(r.Args) > 0 {
			return fmt.Errorf("%w: super requests carry no method or arguments", ErrBadRequest)
		}
	case MethodType:
		if r.Method == "" {
			return fmt.Errorf("%w: method requests need a method id", ErrBadRequest)
		}
		if len(r.Args) > 0 {
			return fmt.Errorf("%w: method requests carry no argument values", ErrBadRequest)
		}
	case ArgumentType:
		if r.Method == "" {
			return fmt.Errorf("%w: argument requests need a method id", ErrBadRequest)
		}
	}
	return nil
}

// ArgValues returns the ordered argument values.
func (r *Request) ArgValues() []any {
	out := make([]any, len(r.Args))
	for i, a := range r.Args {
		out[i] = a.Value
	}
	return out
}

// MethodName returns the bare method name (the part before any parameter
// list) — the key owners use in per-method rules.
func (r *Request) MethodName() string {
	if i := strings.IndexByte(r.Method, '('); i >= 0 {
		return r.Method[:i]
	}
	return r.Method
}

// MethodSelector resolves the method identifier (msg.sig) from the Method
// field: directly from a canonical signature, or derived from the argument
// types for a bare name.
func (r *Request) MethodSelector() (abi.Selector, error) {
	sig := r.Method
	if !strings.Contains(sig, "(") {
		derived, err := abi.Signature(r.MethodName(), r.ArgValues()...)
		if err != nil {
			return abi.Selector{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		sig = derived
	}
	return abi.SelectorFor(sig), nil
}

// Binding builds the cryptographic binding the issued token will carry,
// deriving msg.sig and msg.data from the declared method and arguments —
// the same bytes Alg. 1 reconstructs on-chain.
func (r *Request) Binding() (Binding, error) {
	b := Binding{Origin: r.Sender, Contract: r.Contract}
	if r.Type == SuperType {
		return b, nil
	}
	sel, err := r.MethodSelector()
	if err != nil {
		return Binding{}, err
	}
	b.Selector = sel
	if r.Type == ArgumentType {
		body, err := abi.Encode(r.ArgValues()...)
		if err != nil {
			return Binding{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		b.Data = append(sel[:], body...)
	}
	return b, nil
}

// ProofDigest is the digest a client signs to prove possession of the
// Sender account: a domain-separated hash over the request's binding
// fields (type, addresses, method, canonical argument values, one-time
// flag).
func (r *Request) ProofDigest() types.Hash {
	parts := [][]byte{
		[]byte("smacs-token-request-v1"),
		{byte(r.Type)},
		r.Contract[:],
		r.Sender[:],
		[]byte(r.Method),
	}
	for _, a := range r.Args {
		parts = append(parts, []byte(a.Name), []byte{0}, []byte(ValueKey(a.Value)), []byte{0})
	}
	if r.OneTime {
		parts = append(parts, []byte{1})
	} else {
		parts = append(parts, []byte{0})
	}
	return types.Hash(keccak.Sum256Concat(parts...))
}

// SignRequest attaches a proof of possession produced with the client's
// account key.
func SignRequest(r *Request, key *secp256k1.PrivateKey) error {
	sig, err := secp256k1.Sign(key, [32]byte(r.ProofDigest()))
	if err != nil {
		return fmt.Errorf("sign request: %w", err)
	}
	r.Proof = sig.Bytes()
	return nil
}

// VerifyProof checks the request's proof of possession against the Sender
// address.
func (r *Request) VerifyProof() error {
	if len(r.Proof) == 0 {
		return fmt.Errorf("%w: missing proof of possession", ErrBadRequest)
	}
	sig, err := secp256k1.ParseSignature(r.Proof)
	if err != nil {
		return fmt.Errorf("%w: proof: %v", ErrBadRequest, err)
	}
	signer, err := secp256k1.RecoverAddress([32]byte(r.ProofDigest()), sig)
	if err != nil {
		return fmt.Errorf("%w: proof: %v", ErrBadRequest, err)
	}
	if signer != r.Sender {
		return fmt.Errorf("%w: proof signed by %s, not sender %s", ErrBadRequest, signer, r.Sender)
	}
	return nil
}

// VerifyProofBatch checks the proofs of possession of many requests at
// once, amortizing the modular inversions of per-item recovery through
// secp256k1.RecoverAddressBatch. The i-th error matches what
// reqs[i].VerifyProof() returns — the batch path is an optimization,
// never a semantic change.
func VerifyProofBatch(reqs []*Request) []error {
	errs := make([]error, len(reqs))
	var (
		idx     []int
		digests [][32]byte
		sigs    []secp256k1.Signature
	)
	for i, r := range reqs {
		if len(r.Proof) == 0 {
			errs[i] = fmt.Errorf("%w: missing proof of possession", ErrBadRequest)
			continue
		}
		sig, err := secp256k1.ParseSignature(r.Proof)
		if err != nil {
			errs[i] = fmt.Errorf("%w: proof: %v", ErrBadRequest, err)
			continue
		}
		idx = append(idx, i)
		digests = append(digests, [32]byte(r.ProofDigest()))
		sigs = append(sigs, sig)
	}
	if len(idx) == 0 {
		return errs
	}
	addrs, rerrs := secp256k1.RecoverAddressBatch(digests, sigs)
	for j, i := range idx {
		switch {
		case rerrs[j] != nil:
			errs[i] = fmt.Errorf("%w: proof: %v", ErrBadRequest, rerrs[j])
		case addrs[j] != reqs[i].Sender:
			errs[i] = fmt.Errorf("%w: proof signed by %s, not sender %s", ErrBadRequest, addrs[j], reqs[i].Sender)
		}
	}
	return errs
}

// ValueKey canonicalizes an argument value for rule-list matching:
// addresses as 0x-hex, integers in decimal, booleans as true/false, byte
// slices as 0x-hex, strings verbatim.
func ValueKey(v any) string {
	switch x := v.(type) {
	case types.Address:
		return strings.ToLower(x.Hex())
	case *big.Int:
		if x == nil {
			return "0"
		}
		return x.String()
	case uint64:
		return fmt.Sprintf("%d", x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case []byte:
		return fmt.Sprintf("0x%x", x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
