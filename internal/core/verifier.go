package core

import (
	"fmt"

	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// Calibrated Solidity-emulation gas constants. The raw gas schedule prices
// only the primitive operations (ecrecover precompile, KECCAK256, SLOAD/
// SSTORE); the paper's Solidity verifier additionally pays heavily for
// bytes/string handling in EVM memory. These constants reproduce that
// overhead so the cost *structure* of Tables II/III holds (verification
// dominates; argument tokens ≈ 3× super/method verification; parse cost
// linear in token-array length). They are back-derived from the paper's own
// Table II/III measurements; see DESIGN.md and EXPERIMENTS.md.
const (
	// GasVerifyBase covers token extraction from calldata, signing-data
	// reconstruction, and the ecrecover call wrapper.
	GasVerifyBase uint64 = 105_240
	// GasVerifySig covers msg.sig handling for method/argument tokens.
	GasVerifySig uint64 = 6_820
	// GasVerifyDataByte covers per-byte msg.data processing for argument
	// tokens (hex string expansion and concatenation in Solidity).
	GasVerifyDataByte uint64 = 1_095
	// GasParseEntry is charged per token-array entry scanned when a
	// transaction carries multiple tokens (§ IV-D / Tab. III).
	GasParseEntry uint64 = 5_662
	// GasMiscCheck covers the expiry and one-time-property branch checks.
	GasMiscCheck uint64 = 220
)

// Verifier is the contract-side SMACS library: the logic of Alg. 1 that a
// SMACS-enabled contract runs as a preamble of every public/external
// method. It holds the Token Service address (derived from the preloaded
// public key pkTS) and, optionally, the one-time-token bitmap.
type Verifier struct {
	tsAddr types.Address
	bitmap *Bitmap
}

// NewVerifier creates a verifier trusting tokens signed by the Token
// Service key behind tsAddr. Contracts that accept one-time tokens must
// also configure a bitmap with WithBitmap.
func NewVerifier(tsAddr types.Address) *Verifier {
	return &Verifier{tsAddr: tsAddr}
}

// WithBitmap attaches a one-time-token bitmap (Alg. 2) and returns the
// verifier for chaining.
func (v *Verifier) WithBitmap(b *Bitmap) *Verifier {
	v.bitmap = b
	return v
}

// TSAddress returns the trusted Token Service address.
func (v *Verifier) TSAddress() types.Address { return v.tsAddr }

// Bitmap returns the attached bitmap, if any.
func (v *Verifier) Bitmap() *Bitmap { return v.bitmap }

// Verify implements Alg. 1 against the current call frame:
//
//  1. extract this contract's token from the transaction's token array,
//  2. reject expired tokens,
//  3. for one-time tokens, check-and-mark the bitmap (Alg. 2) — a failed
//     verification reverts the frame, so the mark never survives an
//     invalid transaction,
//  4. rebuild the signed data from the EVM context objects (tx.origin,
//     address(this), msg.sig, msg.data) according to the token type, and
//  5. recover the signer and compare it to the Token Service address.
//
// All work is charged to the verify/bitmap/parse/misc gas categories so
// receipts reproduce the paper's cost breakdown.
func (v *Verifier) Verify(c *evm.Call) error {
	tokens := c.Tokens()
	if len(tokens) == 0 {
		return fmt.Errorf("%w: transaction carries no tokens", ErrNoToken)
	}
	raw, scanned, err := EntryFor(tokens, c.Self())
	if len(tokens) > 1 {
		// Call-chain transaction: the contract pays to parse the array.
		if gerr := c.Charge(gas.CatParse, GasParseEntry*uint64(scanned)); gerr != nil {
			return gerr
		}
	} else {
		if gerr := c.Charge(gas.CatMisc, GasMiscCheck); gerr != nil {
			return gerr
		}
	}
	if err != nil {
		return err
	}
	tk, err := ParseToken(raw)
	if err != nil {
		return err
	}

	// Expiry check against the block timestamp (Solidity's now).
	if err := c.Charge(gas.CatMisc, GasMiscCheck); err != nil {
		return err
	}
	if c.BlockTime().After(tk.Expire) {
		return fmt.Errorf("%w: at %s, token expired %s", ErrTokenExpired,
			c.BlockTime().UTC().Format("15:04:05"), tk.Expire.UTC().Format("15:04:05"))
	}

	// One-time property (Alg. 2).
	if tk.OneTime() {
		if v.bitmap == nil {
			return ErrNoBitmap
		}
		if err := v.bitmap.Use(c, tk.Index); err != nil {
			return err
		}
	}

	// Signature verification with the Solidity-emulation cost model.
	binding := Binding{
		Origin:   c.Origin(),
		Contract: c.Self(),
		Selector: c.Sig(),
		Data:     c.Data(),
	}
	cost := GasVerifyBase + gas.Ecrecover
	signedLen := 61 // type ‖ expire ‖ index ‖ origin ‖ contract
	switch tk.Type {
	case MethodType:
		cost += GasVerifySig
		signedLen += 4
	case ArgumentType:
		cost += GasVerifySig + GasVerifyDataByte*uint64(len(binding.Data))
		signedLen += 4 + len(binding.Data)
	}
	cost += gas.KeccakGas(signedLen)
	if err := c.Charge(gas.CatVerify, cost); err != nil {
		return err
	}
	return tk.VerifySignature(v.tsAddr, binding)
}
