package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/abi"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

var (
	testKey    = secp256k1.PrivateKeyFromSeed([]byte("ts key"))
	testExpire = time.Date(2020, 3, 17, 13, 0, 0, 0, time.UTC)
	testClient = types.Address{0x11}
	testTarget = types.Address{0x22}
)

func testBinding(data []byte) Binding {
	return Binding{
		Origin:   testClient,
		Contract: testTarget,
		Selector: abi.SelectorFor("withdraw(uint256)"),
		Data:     data,
	}
}

func TestTokenWireLayout(t *testing.T) {
	// Fig. 3: type 1B ‖ expire 4B ‖ index 16B ‖ signature 65B = 86 bytes.
	tk, err := SignToken(testKey, SuperType, testExpire, NotOneTime, testBinding(nil))
	if err != nil {
		t.Fatal(err)
	}
	enc := tk.Encode()
	if len(enc) != 86 || TokenLength != 86 {
		t.Fatalf("token length = %d, want 86", len(enc))
	}
	if enc[0] != byte(SuperType) {
		t.Errorf("type byte = %d", enc[0])
	}
	// Index field of a non-one-time token is all ones.
	for i := 5; i < 21; i++ {
		if enc[i] != 0xff {
			t.Errorf("index byte %d = %#x, want 0xff", i, enc[i])
		}
	}
	if !bytes.Equal(enc[21:], tk.Signature.Bytes()) {
		t.Error("signature bytes misplaced")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	for _, tp := range []TokenType{SuperType, MethodType, ArgumentType} {
		for _, index := range []int64{NotOneTime, 0, 1, 1 << 40} {
			tk, err := SignToken(testKey, tp, testExpire, index, testBinding([]byte("data")))
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseToken(tk.Encode())
			if err != nil {
				t.Fatalf("%s/%d: %v", tp, index, err)
			}
			if back.Type != tp || back.Index != index || !back.Expire.Equal(tk.Expire.Truncate(time.Second)) {
				t.Errorf("%s/%d round trip: %+v", tp, index, back)
			}
			if back.OneTime() != (index >= 0) {
				t.Errorf("OneTime() = %v for index %d", back.OneTime(), index)
			}
		}
	}
}

func TestParseTokenRejectsMalformed(t *testing.T) {
	tk, err := SignToken(testKey, MethodType, testExpire, 5, testBinding(nil))
	if err != nil {
		t.Fatal(err)
	}
	good := tk.Encode()

	short := good[:80]
	if _, err := ParseToken(short); err == nil {
		t.Error("short token accepted")
	}

	badType := append([]byte(nil), good...)
	badType[0] = 99
	if _, err := ParseToken(badType); err == nil {
		t.Error("unknown type accepted")
	}

	// Non-canonical negative index (mixed ff/00).
	badIdx := append([]byte(nil), good...)
	badIdx[5] = 0xff
	badIdx[6] = 0x00
	if _, err := ParseToken(badIdx); err == nil {
		t.Error("non-canonical negative index accepted")
	}

	// Index exceeding int64.
	bigIdx := append([]byte(nil), good...)
	for i := 5; i < 21; i++ {
		bigIdx[i] = 0x7f
	}
	if _, err := ParseToken(bigIdx); err == nil {
		t.Error("oversized index accepted")
	}
}

func TestSignatureBindingPerType(t *testing.T) {
	tsAddr := testKey.Address()
	data := []byte{0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3}
	b := testBinding(data)

	super, _ := SignToken(testKey, SuperType, testExpire, NotOneTime, b)
	method, _ := SignToken(testKey, MethodType, testExpire, NotOneTime, b)
	argument, _ := SignToken(testKey, ArgumentType, testExpire, NotOneTime, b)

	otherMethod := b
	otherMethod.Selector = abi.SelectorFor("drain()")
	otherData := b
	otherData.Data = []byte{9, 9, 9, 9}
	otherOrigin := b
	otherOrigin.Origin = types.Address{0x99}
	otherContract := b
	otherContract.Contract = types.Address{0x98}

	tests := []struct {
		name    string
		tk      Token
		binding Binding
		wantOK  bool
	}{
		{"super valid", super, b, true},
		{"super ignores method", super, otherMethod, true},
		{"super ignores data", super, otherData, true},
		{"super rejects origin swap", super, otherOrigin, false},
		{"super rejects contract swap", super, otherContract, false},
		{"method valid", method, b, true},
		{"method ignores data", method, otherData, true},
		{"method rejects method swap", method, otherMethod, false},
		{"method rejects origin swap", method, otherOrigin, false},
		{"argument valid", argument, b, true},
		{"argument rejects data swap", argument, otherData, false},
		{"argument rejects method swap", argument, otherMethod, false},
		{"argument rejects origin swap", argument, otherOrigin, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tk.VerifySignature(tsAddr, tt.binding)
			if (err == nil) != tt.wantOK {
				t.Errorf("VerifySignature = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestSignatureRejectsWrongTS(t *testing.T) {
	b := testBinding(nil)
	tk, _ := SignToken(testKey, SuperType, testExpire, NotOneTime, b)
	otherTS := secp256k1.PrivateKeyFromSeed([]byte("rogue ts"))
	if err := tk.VerifySignature(otherTS.Address(), b); err == nil {
		t.Error("token accepted under wrong TS address")
	}
}

func TestTokenArrayForCallChain(t *testing.T) {
	// § IV-D: SCA:tkA ‖ SCB:tkB ‖ SCC:tkC.
	addrs := []types.Address{{0xa1}, {0xa2}, {0xa3}}
	var arr [][]byte
	var toks []Token
	for i, a := range addrs {
		tk, err := SignToken(testKey, MethodType, testExpire, int64(i), Binding{Origin: testClient, Contract: a})
		if err != nil {
			t.Fatal(err)
		}
		toks = append(toks, tk)
		arr = append(arr, EncodeEntry(a, tk))
	}
	for i, a := range addrs {
		got, err := TokenFor(arr, a)
		if err != nil {
			t.Fatalf("TokenFor(%s): %v", a, err)
		}
		if got.Index != toks[i].Index {
			t.Errorf("wrong token for %s: index %d", a, got.Index)
		}
	}
	// Scanned count drives Parse gas: the third contract scans 3 entries.
	_, scanned, err := EntryFor(arr, addrs[2])
	if err != nil || scanned != 3 {
		t.Errorf("scanned = %d (%v), want 3", scanned, err)
	}
	// Missing contract.
	if _, err := TokenFor(arr, types.Address{0xEE}); err == nil {
		t.Error("token found for absent contract")
	}
	// Malformed entry length.
	bad := [][]byte{{1, 2, 3}}
	if _, _, err := EntryFor(bad, addrs[0]); err == nil {
		t.Error("malformed entry accepted")
	}
}

func TestQuickTokenRoundTrip(t *testing.T) {
	f := func(idxRaw uint32, tpRaw uint8) bool {
		tp := TokenType(tpRaw%3 + 1)
		index := int64(idxRaw)
		tk, err := SignToken(testKey, tp, testExpire, index, testBinding([]byte{byte(idxRaw)}))
		if err != nil {
			return false
		}
		back, err := ParseToken(tk.Encode())
		return err == nil && back.Type == tp && back.Index == index
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSigningDataLayout(t *testing.T) {
	b := testBinding([]byte{1, 2, 3})
	super := SigningData(SuperType, testExpire, 7, b)
	if len(super) != 61 {
		t.Errorf("super signing data = %d bytes, want 61 (1+4+16+20+20)", len(super))
	}
	method := SigningData(MethodType, testExpire, 7, b)
	if len(method) != 65 {
		t.Errorf("method signing data = %d bytes, want 65", len(method))
	}
	arg := SigningData(ArgumentType, testExpire, 7, b)
	if len(arg) != 65+3 {
		t.Errorf("argument signing data = %d bytes, want 68", len(arg))
	}
	if !bytes.Equal(method[:61], super) {
		// The first 61 bytes only differ in the type byte.
		if !bytes.Equal(method[1:61], super[1:]) {
			t.Error("common prefix differs beyond the type byte")
		}
	}
}
