package core_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/secp256k1"
	"repro/internal/types"
	"repro/internal/wallet"
)

var tsKey = secp256k1.PrivateKeyFromSeed([]byte("verifier ts"))

// newProtected builds a SMACS-enabled contract: every public method runs
// the Alg. 1 verification preamble before its body, per Fig. 4.
func newProtected(v *core.Verifier) *evm.Contract {
	c := evm.NewContract("Protected")
	withVerify := func(body evm.Handler) evm.Handler {
		return func(call *evm.Call) ([]any, error) {
			if err := v.Verify(call); err != nil {
				return nil, err
			}
			return body(call)
		}
	}
	c.MustAddMethod(evm.Method{
		Name:       "ping",
		Visibility: evm.Public,
		Handler: withVerify(func(call *evm.Call) ([]any, error) {
			return []any{true}, nil
		}),
	})
	c.MustAddMethod(evm.Method{
		Name:       "act",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: withVerify(func(call *evm.Call) ([]any, error) {
			n, _ := call.Arg(0).(uint64)
			return []any{n * 2}, nil
		}),
	})
	return c
}

type fixture struct {
	env      *evmtest.Env
	addr     types.Address
	verifier *core.Verifier
}

func newFixture(t *testing.T, bitmapBits int) *fixture {
	t.Helper()
	env := evmtest.NewEnv(t, 3)
	v := core.NewVerifier(tsKey.Address())
	contract := newProtected(v)
	if bitmapBits > 0 {
		bm, err := core.NewBitmap(bitmapBits, 100)
		if err != nil {
			t.Fatal(err)
		}
		v.WithBitmap(bm)
		contract.SetInitialStorageWords(bm.StorageWords())
	}
	addr := env.Deploy(t, contract)
	return &fixture{env: env, addr: addr, verifier: v}
}

// issue signs a token binding the given client wallet and call shape.
func (f *fixture) issue(t *testing.T, tp core.TokenType, index int64, clientIdx int, method string, args ...any) wallet.CallOpts {
	t.Helper()
	expire := f.env.Clock.Now().Add(time.Hour)
	binding := core.Binding{
		Origin:   f.env.Wallets[clientIdx].Address(),
		Contract: f.addr,
	}
	if tp != core.SuperType {
		data, err := buildAppData(method, args...)
		if err != nil {
			t.Fatal(err)
		}
		copy(binding.Selector[:], data[:4])
		binding.Data = data
	}
	tk, err := core.SignToken(tsKey, tp, expire, index, binding)
	if err != nil {
		t.Fatal(err)
	}
	return wallet.WithTokens(wallet.TokenEntry{Contract: f.addr, Token: tk})
}

func buildAppData(method string, args ...any) ([]byte, error) {
	tx := evm.Transaction{Method: method, Args: args}
	return tx.AppData()
}

func TestSuperTokenAccessesAllMethods(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.SuperType, core.NotOneTime, 1, "")
	f.env.MustCall(t, 1, f.addr, "ping", opts)
	r := f.env.MustCall(t, 1, f.addr, "act", opts, uint64(21))
	if got := r.Return[0].(uint64); got != 42 {
		t.Errorf("act returned %d", got)
	}
}

func TestMethodTokenScope(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.MethodType, core.NotOneTime, 1, "act", uint64(0))
	// Bound method works, with any argument value.
	f.env.MustCall(t, 1, f.addr, "act", opts, uint64(1))
	f.env.MustCall(t, 1, f.addr, "act", opts, uint64(999))
	// Another method is rejected.
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrBadTokenSig) {
		t.Errorf("cross-method err = %v, want ErrBadTokenSig", r.Err)
	}
}

func TestArgumentTokenScope(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.ArgumentType, core.NotOneTime, 1, "act", uint64(7))
	f.env.MustCall(t, 1, f.addr, "act", opts, uint64(7))
	// Same method, different argument — the msg.data binding must fail.
	r := f.env.CallExpectRevert(t, 1, f.addr, "act", opts, uint64(8))
	if !errors.Is(r.Err, core.ErrBadTokenSig) {
		t.Errorf("argument-swap err = %v, want ErrBadTokenSig", r.Err)
	}
}

func TestSubstitutionAttackRejected(t *testing.T) {
	// § VII-A(a): an attacker intercepting a token cannot use it from
	// another account — the origin binding fails.
	f := newFixture(t, 0)
	opts := f.issue(t, core.SuperType, core.NotOneTime, 1, "")
	r := f.env.CallExpectRevert(t, 2, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrBadTokenSig) {
		t.Errorf("substitution err = %v, want ErrBadTokenSig", r.Err)
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.SuperType, core.NotOneTime, 1, "")
	f.env.MustCall(t, 1, f.addr, "ping", opts)
	f.env.Clock.Advance(2 * time.Hour)
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrTokenExpired) {
		t.Errorf("expired err = %v, want ErrTokenExpired", r.Err)
	}
}

func TestOneTimeTokenSingleUse(t *testing.T) {
	f := newFixture(t, 64)
	opts := f.issue(t, core.SuperType, 0, 1, "")
	f.env.MustCall(t, 1, f.addr, "ping", opts)
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrTokenUsed) {
		t.Errorf("reuse err = %v, want ErrTokenUsed", r.Err)
	}
	// A fresh index works again.
	opts2 := f.issue(t, core.SuperType, 1, 1, "")
	f.env.MustCall(t, 1, f.addr, "ping", opts2)
}

func TestOneTimeWithoutBitmapRejected(t *testing.T) {
	f := newFixture(t, 0)
	opts := f.issue(t, core.SuperType, 0, 1, "")
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", opts)
	if !errors.Is(r.Err, core.ErrNoBitmap) {
		t.Errorf("err = %v, want ErrNoBitmap", r.Err)
	}
}

func TestFailedVerificationDoesNotBurnIndex(t *testing.T) {
	// A one-time token whose signature check fails must not mark its index
	// used: the revert rolls the bitmap back, so the legitimate holder can
	// still use it.
	f := newFixture(t, 64)

	// Attacker (wallet 2) tries a one-time token issued to wallet 1.
	opts := f.issue(t, core.SuperType, 0, 1, "")
	f.env.CallExpectRevert(t, 2, f.addr, "ping", opts)

	// The legitimate client can still use index 0.
	f.env.MustCall(t, 1, f.addr, "ping", opts)
}

func TestMissingTokenRejected(t *testing.T) {
	f := newFixture(t, 0)
	r := f.env.CallExpectRevert(t, 1, f.addr, "ping", wallet.CallOpts{})
	if !errors.Is(r.Err, core.ErrNoToken) {
		t.Errorf("err = %v, want ErrNoToken", r.Err)
	}
	// A token tagged for a different contract is also "no token".
	other := f.issue(t, core.SuperType, core.NotOneTime, 1, "")
	other.Tokens[0][0] ^= 0xff // corrupt the address tag
	r = f.env.CallExpectRevert(t, 1, f.addr, "ping", other)
	if !errors.Is(r.Err, core.ErrNoToken) {
		t.Errorf("err = %v, want ErrNoToken", r.Err)
	}
}

func TestVerifyGasMatchesPaperTableII(t *testing.T) {
	// The calibrated cost model must reproduce the paper's Verify column:
	// super 108282, method 115108 (Tab. II). These are exact by
	// construction; the test pins the calibration.
	f := newFixture(t, 0)

	opts := f.issue(t, core.SuperType, core.NotOneTime, 1, "")
	r := f.env.MustCall(t, 1, f.addr, "ping", opts)
	if got := r.GasByCategory[gas.CatVerify]; got != 108282 {
		t.Errorf("super verify gas = %d, want 108282", got)
	}

	opts = f.issue(t, core.MethodType, core.NotOneTime, 1, "ping")
	r = f.env.MustCall(t, 1, f.addr, "ping", opts)
	if got := r.GasByCategory[gas.CatVerify]; got != 115108 {
		t.Errorf("method verify gas = %d, want 115108", got)
	}
}

func TestOneTimeBitmapGasInPaperRange(t *testing.T) {
	// Paper Tab. II: bitmap cost ≈ 27-28k gas per one-time token. Our raw
	// schedule gives the same order (2 sloads + word write).
	f := newFixture(t, 64)
	opts := f.issue(t, core.SuperType, 0, 1, "")
	r := f.env.MustCall(t, 1, f.addr, "ping", opts)
	got := r.GasByCategory[gas.CatBitmap]
	if got < 15000 || got > 35000 {
		t.Errorf("bitmap gas = %d, want within 15k-35k (paper ≈27.5k)", got)
	}
}

func TestCallChainParseGasCharged(t *testing.T) {
	// With multiple tokens in a transaction, scanning the array is charged
	// to the parse category (Tab. III).
	f := newFixture(t, 0)
	expire := f.env.Clock.Now().Add(time.Hour)
	tk, err := core.SignToken(tsKey, core.SuperType, expire, core.NotOneTime, core.Binding{
		Origin:   f.env.Wallets[1].Address(),
		Contract: f.addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	decoy, err := core.SignToken(tsKey, core.SuperType, expire, core.NotOneTime, core.Binding{
		Origin:   f.env.Wallets[1].Address(),
		Contract: types.Address{0xde},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wallet.WithTokens(
		wallet.TokenEntry{Contract: types.Address{0xde}, Token: decoy},
		wallet.TokenEntry{Contract: f.addr, Token: tk},
	)
	r := f.env.MustCall(t, 1, f.addr, "ping", opts)
	want := 2 * core.GasParseEntry // scanned both entries
	if got := r.GasByCategory[gas.CatParse]; got != want {
		t.Errorf("parse gas = %d, want %d", got, want)
	}
}
