package core

import (
	"errors"

	"repro/internal/evm"
	"repro/internal/metrics"
)

// Token-signature cache metric names.
const (
	MetricTokenCacheHits   = "core_token_sig_cache_hits_total"
	MetricTokenCacheMisses = "core_token_sig_cache_misses_total"
)

// evm cannot import core (core builds the SMACS contracts on top of the
// chain), so the chain's outcome labeling learns about token errors
// through the classifier hook.
func init() {
	evm.RegisterRevertClassifier(func(err error) (string, bool) {
		switch {
		case errors.Is(err, ErrTokenExpired):
			return "token_expired", true
		case errors.Is(err, ErrTokenUsed):
			return "token_used", true
		case errors.Is(err, ErrBadTokenSig):
			return "bad_token_sig", true
		case errors.Is(err, ErrNoToken):
			return "no_token", true
		case errors.Is(err, ErrMalformedToken):
			return "malformed_token", true
		case errors.Is(err, ErrNoBitmap):
			return "no_bitmap", true
		}
		return "", false
	})
}

// RegisterCacheMetrics exposes the process-wide token-signature cache on
// reg as scrape-time counter funcs. The chain registers its own sender
// cache; callers that want both series on one registry (the bench
// harness, smacs-ts with a local chain) call this once per registry.
func RegisterCacheMetrics(reg *metrics.Registry) {
	reg = metrics.Or(reg)
	reg.CounterFunc(MetricTokenCacheHits, "Shared token-signature cache hits.",
		func() uint64 { h, _ := TokenSigCacheStats(); return h })
	reg.CounterFunc(MetricTokenCacheMisses, "Shared token-signature cache misses.",
		func() uint64 { _, m := TokenSigCacheStats(); return m })
}
