package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// NaiveTracker is the strawman one-time-token registry that § IV-C
// dismisses ("a trivial way for the contract to realize this is to store
// the index values of all one-time tokens having made a successful
// access"): one storage word per used index, forever. It never misses a
// token (unlike the windowed bitmap) but its storage footprint grows
// without bound — one word per token instead of one bit amortized — which
// is what the BenchmarkAblationBitmapVsMap ablation quantifies.
type NaiveTracker struct {
	baseSlot uint64
}

// NewNaiveTracker creates a tracker rooted at baseSlot.
func NewNaiveTracker(baseSlot uint64) *NaiveTracker {
	return &NaiveTracker{baseSlot: baseSlot}
}

// Use marks index used, failing with ErrTokenUsed on re-use. Each fresh
// index costs a full cold SSTORE (20,000 gas) and occupies a whole storage
// word.
func (n *NaiveTracker) Use(c *evm.Call, index int64) error {
	if index < 0 {
		return fmt.Errorf("%w: negative index", ErrMalformedToken)
	}
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], uint64(index))
	slot := evm.Slot(n.baseSlot, key[:])
	word, err := c.LoadAs(gas.CatBitmap, slot)
	if err != nil {
		return err
	}
	if !word.IsZero() {
		return fmt.Errorf("%w: index %d", ErrTokenUsed, index)
	}
	return c.StoreAs(gas.CatBitmap, slot, types.Hash{31: 1})
}
