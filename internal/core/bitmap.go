package core

import (
	"errors"
	"fmt"

	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/types"
)

// Bitmap is the cyclically-reused one-time-token bitmap of Alg. 2, backed
// by the contract's gas-charged storage. An n-bit map S plus a window state
// (start, startPtr) tracks the used/unused status of the n one-time tokens
// with consecutive indexes start..start+n-1; end and endPtr are derived.
//
// Storage layout (from BaseSlot):
//
//	slot+0: start     (uint64)
//	slot+1: startPtr  (uint64)
//	slot+2...: the bit words, 256 bits per storage word
//
// Two flaws of the printed Alg. 2 are resolved here and documented in
// DESIGN.md: (a) the reset branch as printed forgets to mark index i used —
// we set its bit; (b) the printed seek() picks the smallest j with S[j]=0
// and i−end ≤ j−startPtr, which can shift startPtr further than the logical
// window shift; the stale-bit misalignment then both double-accepts used
// indexes and falsely rejects fresh ones (found by the property test
// TestBitmapAtMostOnceProperty). We implement the minimal-shift advance
// instead: shift by exactly i−end and zero the recycled cells, which
// reproduces the paper's worked example verbatim while restoring the
// at-most-once invariant.
type Bitmap struct {
	bits     uint64
	baseSlot uint64
}

// ErrNoBitmap is returned when a one-time token reaches a verifier without
// a configured bitmap.
var ErrNoBitmap = errors.New("smacs: contract has no one-time-token bitmap")

// NewBitmap creates a bitmap descriptor with n bits rooted at baseSlot of
// the contract's storage. n must be positive.
func NewBitmap(n int, baseSlot uint64) (*Bitmap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("smacs: bitmap size must be positive, got %d", n)
	}
	return &Bitmap{bits: uint64(n), baseSlot: baseSlot}, nil
}

// Bits returns the bitmap capacity n.
func (b *Bitmap) Bits() int { return int(b.bits) }

// StorageWords returns the number of storage words the bitmap occupies
// (window state + bit words). Deployment charges SStoreSet per word; this
// is the one-time cost reported in Table IV.
func (b *Bitmap) StorageWords() int { return 2 + int((b.bits+255)/256) }

// SizeFor returns the bitmap size (bits) required so that no unused,
// non-expired token is ever missed: token_lifetime × max_tx_per_second
// (§ IV-C).
func SizeFor(lifetimeSeconds float64, txPerSecond float64) int {
	n := int(lifetimeSeconds * txPerSecond)
	if n < 1 {
		n = 1
	}
	return n
}

// Use implements the Alg. 2 state update for a token with the given index:
// it returns nil and marks the token used when the index is fresh, and
// ErrTokenUsed when the token was already used or missed. All storage
// traffic is charged to the bitmap gas category of the call.
func (b *Bitmap) Use(c *evm.Call, index int64) error {
	if index < 0 {
		return fmt.Errorf("%w: negative index", ErrMalformedToken)
	}
	i := uint64(index)
	n := b.bits

	start, err := c.LoadUint(gas.CatBitmap, evm.SlotN(b.baseSlot))
	if err != nil {
		return err
	}
	startPtr, err := c.LoadUint(gas.CatBitmap, evm.SlotN(b.baseSlot+1))
	if err != nil {
		return err
	}
	end := start + n - 1

	switch {
	case i < start:
		return fmt.Errorf("%w: index %d below window start %d", ErrTokenUsed, i, start)

	case i <= end:
		t := (startPtr + (i - start)) % n
		set, err := b.getBit(c, t)
		if err != nil {
			return err
		}
		if set {
			return fmt.Errorf("%w: index %d", ErrTokenUsed, i)
		}
		return b.setBit(c, t)

	case i <= end+n:
		// Advance the window by exactly Δ = i−end positions: the Δ oldest
		// cells are recycled (zeroed) to represent the Δ newest indexes,
		// then the bit of index i (the new window end) is set.
		shift := i - end
		if err := b.clearRange(c, startPtr, shift); err != nil {
			return err
		}
		newStartPtr := (startPtr + shift) % n
		newStart := i - n + 1
		if err := c.StoreUint(gas.CatBitmap, evm.SlotN(b.baseSlot), newStart); err != nil {
			return err
		}
		if err := c.StoreUint(gas.CatBitmap, evm.SlotN(b.baseSlot+1), newStartPtr); err != nil {
			return err
		}
		return b.setBit(c, (newStartPtr+n-1)%n)

	default:
		// i > end+n: reset the whole window.
		return b.reset(c, i, n)
	}
}

// reset implements Alg. 2's reset branch: clear all cells and restart the
// window at [i, i+n-1], marking index i used (the fix noted above).
func (b *Bitmap) reset(c *evm.Call, i, n uint64) error {
	words := (n + 255) / 256
	for w := uint64(0); w < words; w++ {
		slot := evm.SlotN(b.baseSlot + 2 + w)
		word, err := c.LoadAs(gas.CatBitmap, slot)
		if err != nil {
			return err
		}
		if !word.IsZero() {
			if err := c.StoreAs(gas.CatBitmap, slot, types.Hash{}); err != nil {
				return err
			}
		}
	}
	if err := c.StoreUint(gas.CatBitmap, evm.SlotN(b.baseSlot), i); err != nil {
		return err
	}
	if err := c.StoreUint(gas.CatBitmap, evm.SlotN(b.baseSlot+1), 0); err != nil {
		return err
	}
	return b.setBit(c, 0)
}

// clearRange zeroes count cells starting at position from (mod n), batching
// storage traffic per 256-bit word.
func (b *Bitmap) clearRange(c *evm.Call, from, count uint64) error {
	n := b.bits
	for count > 0 {
		t := from % n
		w := t / 256
		bitStart := t % 256
		span := count
		if left := 256 - bitStart; span > left {
			span = left
		}
		if left := n - t; span > left {
			span = left
		}
		slot := evm.SlotN(b.baseSlot + 2 + w)
		word, err := c.LoadAs(gas.CatBitmap, slot)
		if err != nil {
			return err
		}
		cleared := word
		for k := uint64(0); k < span; k++ {
			bit := bitStart + k
			cleared[bit/8] &^= 1 << (bit % 8)
		}
		if cleared != word {
			if err := c.StoreAs(gas.CatBitmap, slot, cleared); err != nil {
				return err
			}
		}
		from += span
		count -= span
	}
	return nil
}

func (b *Bitmap) getBit(c *evm.Call, t uint64) (bool, error) {
	word, err := c.LoadAs(gas.CatBitmap, evm.SlotN(b.baseSlot+2+t/256))
	if err != nil {
		return false, err
	}
	return bitOf(word, t%256), nil
}

func (b *Bitmap) setBit(c *evm.Call, t uint64) error {
	slot := evm.SlotN(b.baseSlot + 2 + t/256)
	word, err := c.LoadAs(gas.CatBitmap, slot)
	if err != nil {
		return err
	}
	word[(t%256)/8] |= 1 << ((t % 256) % 8)
	return c.StoreAs(gas.CatBitmap, slot, word)
}

func bitOf(word types.Hash, bit uint64) bool {
	return word[bit/8]&(1<<(bit%8)) != 0
}
