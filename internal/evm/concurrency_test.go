package evm_test

import (
	"sync"
	"testing"

	"repro/internal/evmtest"
	"repro/internal/wallet"
)

func TestConcurrentTransactions(t *testing.T) {
	// The chain must serialize concurrent submissions safely; every
	// transaction lands, and the counter ends at the exact total.
	const (
		workers = 8
		perEach = 10
	)
	env := evmtest.NewEnv(t, workers)
	addr := env.Deploy(t, newCounter())

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perEach; j++ {
				// Each wallet owns its nonce sequence, so submissions
				// from distinct wallets are independent.
				r, err := env.Wallets[i].Call(addr, "increment", wallet.CallOpts{})
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
				if !r.Status {
					t.Errorf("worker %d: revert %v", i, r.Err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	r := env.MustCall(t, 0, addr, "get", wallet.CallOpts{})
	if got := r.Return[0].(uint64); got != workers*perEach {
		t.Errorf("counter = %d, want %d", got, workers*perEach)
	}
	// One block was mined per transaction (plus deploy and the final get).
	if h := env.Chain.Height(); h < workers*perEach {
		t.Errorf("height = %d, want ≥ %d", h, workers*perEach)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				env.Chain.Balance(env.Wallets[1].Address())
				env.Chain.Height()
				env.Chain.NonceOf(env.Wallets[1].Address())
				_, _, _ = env.Chain.StaticCall(env.Wallets[1].Address(), addr, "get", nil, nil)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	}
	close(stop)
	wg.Wait()
}
