//go:build !race

package evm_test

// raceEnabled reports whether the race detector is compiled in; the
// equivalence property test trims its iteration count accordingly.
const raceEnabled = false
