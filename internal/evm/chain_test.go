package evm_test

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/types"
	"repro/internal/wallet"
)

// newCounter builds a minimal contract with a public increment method, an
// external-only method, an internal helper, and a payable deposit.
func newCounter() *evm.Contract {
	c := evm.NewContract("Counter")
	c.MustAddMethod(evm.Method{
		Name:       "increment",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			if err := call.StoreUint(gas.CatApp, evm.SlotN(0), v+1); err != nil {
				return nil, err
			}
			return []any{v + 1}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "get",
		Visibility: evm.External,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			return []any{v}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "bumpBy",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			n, _ := call.Arg(0).(uint64)
			for i := uint64(0); i < n; i++ {
				if _, err := call.Invoke("increment"); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "secret",
		Visibility: evm.Internal,
		Handler: func(call *evm.Call) ([]any, error) {
			return []any{uint64(42)}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "deposit",
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			return nil, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "explode",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := call.StoreUint(gas.CatApp, evm.SlotN(0), 999); err != nil {
				return nil, err
			}
			return nil, errors.New("boom")
		},
	})
	return c
}

func TestDeployAndCall(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	if !env.Chain.Balance(addr).IsInt64() {
		t.Fatal("contract balance unreadable")
	}
	r := env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	if got := r.Return[0].(uint64); got != 1 {
		t.Errorf("increment returned %d, want 1", got)
	}
	r = env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	if got := r.Return[0].(uint64); got != 2 {
		t.Errorf("second increment returned %d, want 2", got)
	}
	if r.GasUsed == 0 || r.FeeUSD <= 0 {
		t.Error("receipt missing gas accounting")
	}
}

func TestDeployAddressDeterministic(t *testing.T) {
	env1 := evmtest.NewEnv(t, 1)
	env2 := evmtest.NewEnv(t, 1)
	a1 := env1.Deploy(t, newCounter())
	a2 := env2.Deploy(t, newCounter())
	if a1 != a2 {
		t.Errorf("same creator+nonce gave different addresses: %s vs %s", a1, a2)
	}
	// A second deploy from the same creator gets a different address.
	a3 := env1.Deploy(t, newCounter())
	if a3 == a1 {
		t.Error("consecutive deploys reused an address")
	}
}

func TestNonceReplayProtection(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	tx, err := env.Wallets[1].BuildTx(addr, "increment", wallet.CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Chain.Apply(tx); err != nil {
		t.Fatal(err)
	}
	// Replaying the identical signed transaction must be rejected.
	_, err = env.Chain.Apply(tx)
	if !errors.Is(err, evm.ErrNonceTooLow) {
		t.Errorf("replay err = %v, want ErrNonceTooLow", err)
	}
	// A future nonce is also rejected.
	tx2, err := env.Wallets[1].BuildTx(addr, "increment", wallet.CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tx2.Nonce += 5
	_ = evm.SignTx(tx2, env.Wallets[1].Key(), env.Chain.Config().ChainID)
	if _, err := env.Chain.Apply(tx2); !errors.Is(err, evm.ErrNonceTooHigh) {
		t.Errorf("future nonce err = %v, want ErrNonceTooHigh", err)
	}
}

func TestTamperedTransactionChangesSender(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	tx, err := env.Wallets[1].BuildTx(addr, "deposit", wallet.CallOpts{Value: big.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := tx.Sender(env.Chain.Config().ChainID)
	if err != nil {
		t.Fatal(err)
	}
	tx.Value = big.NewInt(500) // tamper after signing
	got, err := tx.Sender(env.Chain.Config().ChainID)
	if err == nil && got == orig {
		t.Error("tampering did not change the recovered sender")
	}
}

func TestRevertRollsBackState(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})

	r := env.CallExpectRevert(t, 1, addr, "explode", wallet.CallOpts{})
	if r.Err == nil {
		t.Fatal("revert receipt has no error")
	}
	// The explode handler wrote 999 before failing; the write must be gone.
	got := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := got.Return[0].(uint64); v != 1 {
		t.Errorf("counter = %d after revert, want 1", v)
	}
	// Gas for the failed attempt is still charged.
	if r.GasUsed == 0 {
		t.Error("failed call consumed no gas")
	}
}

func TestPayableEnforcement(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	r := env.CallExpectRevert(t, 1, addr, "increment", wallet.CallOpts{Value: big.NewInt(1)})
	if !errors.Is(r.Err, evm.ErrNotPayable) {
		t.Errorf("err = %v, want ErrNotPayable", r.Err)
	}

	before := env.Chain.Balance(addr)
	env.MustCall(t, 1, addr, "deposit", wallet.CallOpts{Value: big.NewInt(77)})
	after := env.Chain.Balance(addr)
	if new(big.Int).Sub(after, before).Int64() != 77 {
		t.Errorf("deposit did not move value: %s -> %s", before, after)
	}
}

func TestGasAccountingBalances(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	w := env.Wallets[1]

	before := env.Chain.Balance(w.Address())
	r := env.MustCall(t, 1, addr, "deposit", wallet.CallOpts{Value: big.NewInt(10)})
	after := env.Chain.Balance(w.Address())

	fee := new(big.Int).Mul(env.Chain.Config().Price.Wei(1), new(big.Int).SetUint64(r.GasUsed))
	wantSpend := new(big.Int).Add(fee, big.NewInt(10))
	if got := new(big.Int).Sub(before, after); got.Cmp(wantSpend) != 0 {
		t.Errorf("spent %s, want %s (gas %d)", got, wantSpend, r.GasUsed)
	}
}

func TestInternalMethodNotDispatchable(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	r, err := env.Wallets[1].Call(addr, "secret", wallet.CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, evm.ErrUnknownMethod) {
		t.Errorf("internal method dispatched externally: %+v", r)
	}
}

func TestInvokeRunsInternalMethods(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	env.MustCall(t, 1, addr, "bumpBy", wallet.CallOpts{}, uint64(5))
	got := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := got.Return[0].(uint64); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
}

func TestPlainTransfer(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	to := env.Wallets[1].Address()
	before := env.Chain.Balance(to)
	r, err := env.Wallets[0].Transfer(to, big.NewInt(12345))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Status || r.GasUsed != gas.TxBase {
		t.Errorf("transfer receipt: status=%v gas=%d", r.Status, r.GasUsed)
	}
	if got := new(big.Int).Sub(env.Chain.Balance(to), before); got.Int64() != 12345 {
		t.Errorf("received %s, want 12345", got)
	}
}

func TestStaticCallDoesNotPersist(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	h := env.Chain.Height()

	ret, r, err := env.Chain.StaticCall(env.Wallets[1].Address(), addr, "increment", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0].(uint64) != 1 || !r.Status {
		t.Fatalf("static call result: %v", ret)
	}
	if env.Chain.Height() != h {
		t.Error("static call mined a block")
	}
	got := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := got.Return[0].(uint64); v != 0 {
		t.Errorf("static call persisted state: counter = %d", v)
	}
}

func TestOutOfGasFailsExecution(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	r, err := env.Wallets[1].Call(addr, "increment", wallet.CallOpts{GasLimit: 23000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, gas.ErrOutOfGas) {
		t.Errorf("status=%v err=%v, want out-of-gas revert", r.Status, r.Err)
	}
	if r.GasUsed != 23000 {
		t.Errorf("out-of-gas consumed %d, want full limit", r.GasUsed)
	}
}

func TestIntrinsicGasRejected(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	_, err := env.Wallets[1].Call(addr, "increment", wallet.CallOpts{GasLimit: 20000})
	if !errors.Is(err, evm.ErrIntrinsicGas) {
		t.Errorf("err = %v, want ErrIntrinsicGas", err)
	}
}

func TestUnknownContract(t *testing.T) {
	env := evmtest.NewEnv(t, 1)
	bogus := types.Address{0xff}
	r, err := env.Wallets[0].Call(bogus, "increment", wallet.CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, evm.ErrContractNotFound) {
		t.Errorf("call to empty address: status=%v err=%v", r.Status, r.Err)
	}
}

func TestReorgRestoresState(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	heightAfterOne := env.Chain.Height()
	nonceAfterOne := env.Chain.NonceOf(env.Wallets[1].Address())

	env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})

	if err := env.Chain.Reorg(heightAfterOne); err != nil {
		t.Fatal(err)
	}
	if env.Chain.Height() != heightAfterOne {
		t.Errorf("height = %d, want %d", env.Chain.Height(), heightAfterOne)
	}
	if got := env.Chain.NonceOf(env.Wallets[1].Address()); got != nonceAfterOne {
		t.Errorf("nonce = %d, want %d", got, nonceAfterOne)
	}
	got := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := got.Return[0].(uint64); v != 1 {
		t.Errorf("counter = %d after reorg, want 1", v)
	}
}

func TestReorgRemovesLaterContracts(t *testing.T) {
	env := evmtest.NewEnv(t, 1)
	h := env.Chain.Height()
	addr := env.Deploy(t, newCounter())
	if err := env.Chain.Reorg(h); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Chain.ContractAt(addr); ok {
		t.Error("contract survived the reorg")
	}
	if err := env.Chain.Reorg(99); !errors.Is(err, evm.ErrBadReorg) {
		t.Error("reorg to future height accepted")
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	r := env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})

	kinds := make(map[evm.TraceEventKind]int)
	for _, e := range r.Trace.Events {
		kinds[e.Kind]++
	}
	if kinds[evm.TraceCall] == 0 || kinds[evm.TraceReturn] == 0 ||
		kinds[evm.TraceSLoad] == 0 || kinds[evm.TraceSStore] == 0 {
		t.Errorf("trace incomplete: %v", kinds)
	}
	if len(r.Trace.CallsTo(addr)) == 0 {
		t.Error("CallsTo found no calls")
	}
}

func TestGasByCategoryPresent(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	r := env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	if r.GasByCategory[gas.CatIntrinsic] < gas.TxBase {
		t.Errorf("intrinsic = %d, want ≥ %d", r.GasByCategory[gas.CatIntrinsic], gas.TxBase)
	}
	if r.GasByCategory[gas.CatApp] == 0 {
		t.Error("app category empty")
	}
	var sum uint64
	for _, v := range r.GasByCategory {
		sum += v
	}
	if sum != r.GasUsed {
		t.Errorf("category sum %d != gas used %d", sum, r.GasUsed)
	}
}
