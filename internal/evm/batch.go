package evm

// BatchResult pairs the outcome of one transaction in an Execute /
// ApplyBatch call: exactly one of Receipt/Err is set, mirroring Apply's
// return values (a commit that executed but failed to persist carries
// both).
type BatchResult struct {
	// Receipt is the execution receipt of the committed transaction.
	Receipt *Receipt
	// Err is the rejection reason for transactions that never executed
	// (bad signature, nonce mismatch, insufficient balance, …).
	Err error
}

// BatchOptions parameterizes ApplyBatch. New code should use
// Chain.Execute with ExecOptions, which adds scheduler selection and
// batch-first prevalidation hooks.
type BatchOptions struct {
	// Workers bounds the prevalidation pool; 0 means GOMAXPROCS.
	Workers int
	// Prevalidate, when set, runs once per transaction in the parallel
	// prevalidation phase, outside the chain mutex. See
	// ExecOptions.Prevalidate.
	Prevalidate func(*Transaction)
}

// ApplyBatch verifies and executes a batch of signed transactions with
// the prevalidate scheduler: parallel sender recovery and prevalidation
// hooks outside the chain mutex, then a serial commit in slice order. It
// is a thin wrapper over Execute — new code should call Execute directly
// and pick a Scheduler (the optimistic scheduler also parallelizes the
// state transitions themselves).
func (ch *Chain) ApplyBatch(txs []*Transaction, opts BatchOptions) []BatchResult {
	return ch.Execute(txs, ExecOptions{
		Scheduler:   SchedulerPrevalidate,
		Workers:     opts.Workers,
		Prevalidate: opts.Prevalidate,
	})
}
