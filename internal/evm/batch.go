package evm

import (
	"runtime"
	"sync"
	"time"
)

// BatchResult pairs the outcome of one transaction in an ApplyBatch call:
// exactly one of Receipt/Err is set, mirroring Apply's return values.
type BatchResult struct {
	// Receipt is the execution receipt of the committed transaction.
	Receipt *Receipt
	// Err is the rejection reason for transactions that never executed
	// (bad signature, nonce mismatch, insufficient balance, …).
	Err error
}

// BatchOptions parameterizes ApplyBatch.
type BatchOptions struct {
	// Workers bounds the prevalidation pool; 0 means GOMAXPROCS.
	Workers int
	// Prevalidate, when set, runs once per transaction in the parallel
	// prevalidation phase, outside the chain mutex. It is a warm-up hook —
	// core.TokenPrehook uses it to verify token signatures ahead of the
	// serial commit — and must be safe for concurrent use. It communicates
	// only by side effect (warming caches): the authoritative checks run
	// again at commit.
	Prevalidate func(*Transaction)
}

// ApplyBatch verifies and executes a batch of signed transactions. The
// expensive, state-independent verification work — signature recovery for
// every sender and, via the Prevalidate hook, token-signature verification —
// runs first in a bounded worker pool without holding the chain mutex; the
// state transitions then commit serially in slice order, each mining its
// own block exactly as Apply does. Per-sender nonce ordering is therefore
// the slice order.
//
// The i-th result corresponds to txs[i]. A rejected transaction does not
// abort the batch; later transactions still commit.
func (ch *Chain) ApplyBatch(txs []*Transaction, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(txs))
	if len(txs) == 0 {
		return results
	}
	ch.metrics.batchSize.Observe(float64(len(txs)))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}

	// Phase 1: prevalidate in parallel, outside the chain mutex. Sender
	// recovery populates each transaction's memo (and the shared sender
	// cache), so the serial commit below only re-hashes and compares —
	// with the sender cache disabled the recovery result could not be
	// handed to the commit phase, so it is skipped rather than wasted.
	// Recovery errors are deliberately dropped here — applyLocked
	// re-derives them deterministically, keeping Apply and ApplyBatch
	// behaviour identical for bad transactions.
	recoverSenders := senderCacheOn.Load()
	if recoverSenders || opts.Prevalidate != nil {
		prevalidateStart := time.Now()
		chainID := ch.cfg.ChainID
		var wg sync.WaitGroup
		next := make(chan *Transaction)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tx := range next {
					if recoverSenders {
						_, _ = tx.Sender(chainID)
					}
					if opts.Prevalidate != nil {
						opts.Prevalidate(tx)
					}
				}
			}()
		}
		for _, tx := range txs {
			next <- tx
		}
		close(next)
		wg.Wait()
		ch.metrics.prevalidate.ObserveDuration(time.Since(prevalidateStart))
	}

	// Phase 2: commit serially under the chain mutex.
	commitStart := time.Now()
	ch.mu.Lock()
	defer func() {
		ch.mu.Unlock()
		ch.metrics.commit.ObserveDuration(time.Since(commitStart))
	}()
	for i, tx := range txs {
		results[i].Receipt, results[i].Err = ch.applyLocked(tx)
	}
	return results
}
