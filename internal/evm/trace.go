package evm

import (
	"math/big"

	"repro/internal/types"
)

// TraceEventKind enumerates the events recorded in a transaction trace.
type TraceEventKind int

// Trace event kinds.
const (
	// TraceCall records entry into a call frame.
	TraceCall TraceEventKind = iota + 1
	// TraceReturn records a call frame returning (Err set on revert).
	TraceReturn
	// TraceSLoad records a storage read.
	TraceSLoad
	// TraceSStore records a storage write.
	TraceSStore
	// TraceTransfer records a plain value transfer (possibly triggering a
	// fallback).
	TraceTransfer
)

// String implements fmt.Stringer.
func (k TraceEventKind) String() string {
	switch k {
	case TraceCall:
		return "call"
	case TraceReturn:
		return "return"
	case TraceSLoad:
		return "sload"
	case TraceSStore:
		return "sstore"
	case TraceTransfer:
		return "transfer"
	default:
		return "unknown"
	}
}

// TraceEvent is one entry of a transaction execution trace. Runtime
// verification tools (the ECF checker of § V-B) consume these.
type TraceEvent struct {
	// Kind is the event type.
	Kind TraceEventKind
	// Depth is the call depth at which the event occurred (0 = top-level).
	Depth int
	// From and To identify the acting and target accounts.
	From, To types.Address
	// Method is the method name for call events.
	Method string
	// Slot and Word carry storage addresses/values for storage events.
	Slot, Word types.Hash
	// Amount is the value moved for transfer/call events.
	Amount *big.Int
	// Err is the revert reason for return events of failed frames.
	Err string
}

// Trace is the ordered event log of a single transaction execution.
type Trace struct {
	// Events in execution order.
	Events []TraceEvent
}

func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, e)
}

// CallsTo returns the indexes of call events targeting addr.
func (t *Trace) CallsTo(addr types.Address) []int {
	var out []int
	for i, e := range t.Events {
		if e.Kind == TraceCall && e.To == addr {
			out = append(out, i)
		}
	}
	return out
}

// MaxDepth returns the deepest call depth observed.
func (t *Trace) MaxDepth() int {
	max := 0
	for _, e := range t.Events {
		if e.Depth > max {
			max = e.Depth
		}
	}
	return max
}
