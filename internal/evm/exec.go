package evm

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/secp256k1"
	"repro/internal/sigcache"
	"repro/internal/types"
)

// Scheduler selects how Chain.Execute orders and parallelizes a batch.
type Scheduler int

const (
	// SchedulerSerial applies transactions one at a time under the chain
	// mutex, exactly like repeated Apply calls. It has no parallel phase
	// and the lowest constant overhead — the right choice for single
	// transactions and conflict-saturated batches.
	SchedulerSerial Scheduler = iota
	// SchedulerPrevalidate runs the expensive state-independent work —
	// batched sender recovery and the prevalidation hooks — in a parallel
	// phase outside the chain mutex, then commits serially in slice
	// order. This is the PR-4 ApplyBatch pipeline.
	SchedulerPrevalidate
	// SchedulerOptimistic additionally executes the state transitions
	// themselves in parallel (Block-STM style): every transaction runs
	// speculatively against a versioned snapshot, read/write sets are
	// validated in slice order, and conflicting losers re-execute until
	// the batch is serially equivalent. Receipts are byte-identical to
	// serial execution.
	SchedulerOptimistic
)

// String names the scheduler for flags and logs.
func (s Scheduler) String() string {
	switch s {
	case SchedulerSerial:
		return "serial"
	case SchedulerPrevalidate:
		return "prevalidate"
	case SchedulerOptimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// ExecOptions parameterizes Chain.Execute.
type ExecOptions struct {
	// Scheduler selects the execution strategy; the zero value is
	// SchedulerSerial.
	Scheduler Scheduler
	// Workers bounds the parallel phase (prevalidation pool, optimistic
	// execution lanes); 0 means GOMAXPROCS. Serial scheduling ignores it.
	Workers int
	// Prevalidate, when set, runs once per transaction in the parallel
	// prevalidation phase, outside the chain mutex. It is a warm-up hook
	// — core.TokenPrehook uses it to verify token signatures ahead of
	// commit — and must be safe for concurrent use. It communicates only
	// by side effect (warming caches): the authoritative checks run again
	// at execution time.
	Prevalidate func(*Transaction)
	// PrevalidateBatch is the batch-first form of Prevalidate: it
	// receives contiguous sub-batches (one per worker) so implementations
	// can amortize crypto across items — core.BatchTokenPrehook feeds
	// them to secp256k1.RecoverAddressBatch. It may be called
	// concurrently on disjoint sub-batches. When both hooks are set, the
	// batch hook runs first.
	PrevalidateBatch func([]*Transaction)
}

// Execute verifies and executes a batch of signed transactions under the
// selected scheduler and returns one result per transaction, in slice
// order. Whatever the scheduler, the outcome is serially equivalent:
// receipts, state, and per-sender nonce ordering match applying the slice
// one transaction at a time. A rejected transaction does not abort the
// batch; later transactions still commit.
//
// Apply and ApplyBatch are thin wrappers over Execute and remain the
// convenient entry points for the common cases.
func (ch *Chain) Execute(txs []*Transaction, opts ExecOptions) []BatchResult {
	results := make([]BatchResult, len(txs))
	if len(txs) == 0 {
		return results
	}

	if opts.Scheduler == SchedulerSerial {
		ch.mu.Lock()
		defer ch.mu.Unlock()
		for i, tx := range txs {
			results[i].Receipt, results[i].Err = ch.applyLocked(tx)
		}
		return results
	}

	ch.metrics.batchSize.Observe(float64(len(txs)))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}

	ch.prevalidateParallel(txs, workers, opts)

	switch opts.Scheduler {
	case SchedulerPrevalidate:
		commitStart := time.Now()
		ch.mu.Lock()
		defer func() {
			ch.mu.Unlock()
			ch.metrics.commit.ObserveDuration(time.Since(commitStart))
		}()
		for i, tx := range txs {
			results[i].Receipt, results[i].Err = ch.applyLocked(tx)
		}
	case SchedulerOptimistic:
		ch.executeOptimistic(txs, workers, results)
	default:
		panic(fmt.Sprintf("evm: unknown scheduler %d", int(opts.Scheduler)))
	}
	return results
}

// prevalidateParallel runs the state-independent warm-up phase: batched
// sender recovery into the shared cache plus the caller's prevalidation
// hooks, sharded into contiguous per-worker chunks outside the chain
// mutex. Recovery errors are deliberately dropped — execution re-derives
// them deterministically, keeping scheduler behaviour identical for bad
// transactions.
func (ch *Chain) prevalidateParallel(txs []*Transaction, workers int, opts ExecOptions) {
	recoverSenders := senderCacheOn.Load()
	if !recoverSenders && opts.Prevalidate == nil && opts.PrevalidateBatch == nil {
		return
	}
	start := time.Now()
	chainID := ch.cfg.ChainID
	chunk := (len(txs) + workers - 1) / workers
	var wg sync.WaitGroup
	for off := 0; off < len(txs); off += chunk {
		end := off + chunk
		if end > len(txs) {
			end = len(txs)
		}
		sub := txs[off:end]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if recoverSenders {
				warmSenderCache(sub, chainID)
			}
			if opts.PrevalidateBatch != nil {
				opts.PrevalidateBatch(sub)
			}
			if opts.Prevalidate != nil {
				for _, tx := range sub {
					opts.Prevalidate(tx)
				}
			}
		}()
	}
	wg.Wait()
	ch.metrics.prevalidate.ObserveDuration(time.Since(start))
}

// warmSenderCache recovers the senders of txs with the amortized batch
// recovery and installs the results in the per-transaction memos and the
// shared sender cache, so later Sender calls only re-hash and compare.
// Transactions already memoized or cached are skipped; invalid ones are
// left for execution to reject with the exact per-item error.
func warmSenderCache(txs []*Transaction, chainID uint64) {
	var (
		idx      []int
		digests  [][32]byte
		sigs     []secp256k1.Signature
		sigBytes [][secp256k1.SignatureLength]byte
		keys     []string
	)
	for i, tx := range txs {
		if tx.Sig.R == nil || tx.Sig.S == nil || tx.Sig.Validate() != nil {
			continue
		}
		digest, err := tx.SigHash(chainID)
		if err != nil {
			continue
		}
		var sb [secp256k1.SignatureLength]byte
		copy(sb[:], tx.Sig.Bytes())
		if m := tx.memo.Load(); m != nil && m.digest == digest && m.sig == sb {
			continue
		}
		key := sigcache.Key([32]byte(digest), sb[:])
		if addr, ok := senderCache.Get(key); ok {
			tx.memo.Store(&senderMemo{digest: digest, sig: sb, sender: addr})
			continue
		}
		idx = append(idx, i)
		digests = append(digests, [32]byte(digest))
		sigs = append(sigs, tx.Sig)
		sigBytes = append(sigBytes, sb)
		keys = append(keys, key)
	}
	if len(idx) == 0 {
		return
	}
	addrs, errs := secp256k1.RecoverAddressBatch(digests, sigs)
	for j, i := range idx {
		if errs[j] != nil {
			continue
		}
		senderCache.Add(keys[j], addrs[j])
		txs[i].memo.Store(&senderMemo{digest: types.Hash(digests[j]), sig: sigBytes[j], sender: addrs[j]})
	}
}
