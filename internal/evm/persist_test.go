package evm_test

import (
	"errors"
	"math/big"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/secp256k1"
	"repro/internal/store"
	"repro/internal/types"
	"repro/internal/wallet"
)

var (
	persistTSKey = secp256k1.PrivateKeyFromSeed([]byte("persist ts"))
	persistOwner = secp256k1.PrivateKeyFromSeed([]byte("persist owner"))
	persistUser  = secp256k1.PrivateKeyFromSeed([]byte("persist user"))
)

// persistCounter is the workload contract: a counter whose value lives in
// contract storage, so recovery correctness is visible as a number.
func persistCounter() *evm.Contract {
	c := evm.NewContract("PersistCounter")
	c.MustAddMethod(evm.Method{
		Name:       "increment",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			if err := call.StoreUint(gas.CatApp, evm.SlotN(0), v+1); err != nil {
				return nil, err
			}
			return []any{v + 1}, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "get",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			return []any{v}, nil
		},
	})
	return c
}

// counterBoot is a deterministic recovery bootstrap: both incarnations
// fund the same accounts and deploy the same contract from the same
// owner nonce, so the contract lands at the same address.
func counterBoot(contract func() *evm.Contract) (func(*evm.Chain) error, *types.Address) {
	addr := new(types.Address)
	boot := func(ch *evm.Chain) error {
		ch.Fund(persistOwner.Address(), evmtest.Ether(1000))
		ch.Fund(persistUser.Address(), evmtest.Ether(1000))
		a, _, err := ch.Deploy(persistOwner.Address(), contract())
		*addr = a
		return err
	}
	return boot, addr
}

func counterValue(t *testing.T, ch *evm.Chain, addr types.Address) uint64 {
	t.Helper()
	ret, _, err := ch.StaticCall(persistUser.Address(), addr, "get", nil, nil)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	return ret[0].(uint64)
}

func TestCommitCodecRoundTrip(t *testing.T) {
	tx := &evm.Transaction{
		Nonce:    7,
		To:       types.BytesToAddress([]byte{0xaa}),
		Value:    big.NewInt(12345),
		GasLimit: 900_000,
		GasPrice: big.NewInt(2_000_000_000),
		Method:   "act",
		Args:     []any{uint64(21)},
		Tokens:   [][]byte{{1, 2, 3}, {4, 5}},
	}
	if err := evm.SignTx(tx, persistUser, 1337); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2020, 3, 17, 12, 0, 0, 987654321, time.UTC)
	blob, err := evm.EncodeCommit(tx, at)
	if err != nil {
		t.Fatal(err)
	}
	got, gotAt, err := evm.DecodeCommit(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !gotAt.Equal(at) {
		t.Errorf("block time = %v, want %v", gotAt, at)
	}
	if got.Nonce != tx.Nonce || got.To != tx.To || got.GasLimit != tx.GasLimit {
		t.Errorf("fields diverged: %+v", got)
	}
	if got.Value.Cmp(tx.Value) != 0 || got.GasPrice.Cmp(tx.GasPrice) != 0 {
		t.Error("amounts diverged")
	}
	if len(got.Tokens) != 2 {
		t.Fatalf("tokens = %v", got.Tokens)
	}
	// The decoded transaction carries RawData instead of Method/Args but
	// must sign-hash — and therefore recover — identically.
	wantHash, err := tx.SigHash(1337)
	if err != nil {
		t.Fatal(err)
	}
	gotHash, err := got.SigHash(1337)
	if err != nil {
		t.Fatal(err)
	}
	if wantHash != gotHash {
		t.Error("decoded commit sign-hashes differently")
	}
	sender, err := got.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	if sender != persistUser.Address() {
		t.Errorf("sender = %s, want %s", sender, persistUser.Address())
	}

	if _, _, err := evm.DecodeCommit([]byte("garbage")); err == nil {
		t.Error("garbage commit accepted")
	}
}

// TestRecoverChainReplay: every committed transaction survives a crash
// with no snapshot at all — pure log replay on top of the bootstrap.
func TestRecoverChainReplay(t *testing.T) {
	clock := evmtest.NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	boot, addr := counterBoot(persistCounter)
	mem := store.NewMemory()

	ch1, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	w := wallet.New(persistUser, ch1)
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		r, err := w.Call(*addr, "increment", wallet.CallOpts{})
		if err != nil || !r.Status {
			t.Fatalf("increment %d: %v / %+v", i, err, r)
		}
	}
	wantHeight := ch1.Height()
	wantNonce := ch1.NonceOf(persistUser.Address())
	wantBalance := ch1.Balance(persistUser.Address())
	// Crash: abandon ch1, recover from the same backend.

	ch2, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, ch2, *addr); got != 3 {
		t.Errorf("recovered counter = %d, want 3", got)
	}
	if got := ch2.Height(); got != wantHeight {
		t.Errorf("recovered height = %d, want %d", got, wantHeight)
	}
	if got := ch2.NonceOf(persistUser.Address()); got != wantNonce {
		t.Errorf("recovered nonce = %d, want %d", got, wantNonce)
	}
	if got := ch2.Balance(persistUser.Address()); got.Cmp(wantBalance) != 0 {
		t.Errorf("recovered balance = %s, want %s", got, wantBalance)
	}
	// The recovered chain keeps working — and keeps logging.
	w2 := wallet.New(persistUser, ch2)
	if r, err := w2.Call(*addr, "increment", wallet.CallOpts{}); err != nil || !r.Status {
		t.Fatalf("post-recovery increment: %v / %+v", err, r)
	}
	ch3, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, ch3, *addr); got != 4 {
		t.Errorf("second recovery counter = %d, want 4", got)
	}
}

// TestRecoverChainFromSnapshot: the snapshot cadence folds the log, the
// block list restarts at the snapshot height, and replay continues from
// there — on a real file backend, across a simulated crash.
func TestRecoverChainFromSnapshot(t *testing.T) {
	clock := evmtest.NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	boot, addr := counterBoot(persistCounter)
	dir := t.TempDir()

	f, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := evm.RecoverChain(cfg, f, 2, boot) // snapshot every 2 commits
	if err != nil {
		t.Fatal(err)
	}
	w := wallet.New(persistUser, ch1)
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second)
		if r, err := w.Call(*addr, "increment", wallet.CallOpts{}); err != nil || !r.Status {
			t.Fatalf("increment %d: %v / %+v", i, err, r)
		}
	}
	wantHeight := ch1.Height() // genesis + deploy + 5 txs = 6
	// Crash without Close.

	g, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ch2, err := evm.RecoverChain(cfg, g, 2, boot)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, ch2, *addr); got != 5 {
		t.Errorf("recovered counter = %d, want 5", got)
	}
	if got := ch2.Height(); got != wantHeight {
		t.Errorf("recovered height = %d, want %d", got, wantHeight)
	}
	// Snapshot at commit 4 = block 5; only block 6 was replayed, so the
	// recovered chain resolves blocks ≥ 5 and nothing older.
	if _, ok := ch2.BlockByNumber(wantHeight); !ok {
		t.Errorf("head block %d unresolvable", wantHeight)
	}
	if _, ok := ch2.BlockByNumber(2); ok {
		t.Error("pre-snapshot block still resolvable after recovery")
	}
}

// TestSnapshotToStoreCapturesFund: out-of-band faucet credits are not in
// the commit log; an explicit snapshot makes them durable.
func TestSnapshotToStoreCapturesFund(t *testing.T) {
	clock := evmtest.NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	boot, _ := counterBoot(persistCounter)
	mem := store.NewMemory()

	ch1, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	latecomer := types.BytesToAddress([]byte{0x99})
	ch1.Fund(latecomer, evmtest.Ether(7))
	if err := ch1.SnapshotToStore(); err != nil {
		t.Fatal(err)
	}

	ch2, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch2.Balance(latecomer); got.Cmp(evmtest.Ether(7)) != 0 {
		t.Errorf("latecomer balance = %s after recovery, want 7 ether", got)
	}
}

// persistProtected builds a SMACS-guarded contract whose one public
// method runs the Alg. 1 verification preamble, with a one-time bitmap.
func persistProtected() *evm.Contract {
	v := core.NewVerifier(persistTSKey.Address())
	bm, err := core.NewBitmap(64, 100)
	if err != nil {
		panic(err)
	}
	v.WithBitmap(bm)
	c := evm.NewContract("PersistProtected")
	c.SetInitialStorageWords(bm.StorageWords())
	c.MustAddMethod(evm.Method{
		Name:       "ping",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			if err := v.Verify(call); err != nil {
				return nil, err
			}
			return []any{true}, nil
		},
	})
	return c
}

// TestRecoverChainOneTimeBitmap is the § IV-C durability check: the
// one-time bitmap lives in contract storage, so after a crash a spent
// token index is STILL spent — replaying the captured token fails with
// ErrTokenUsed while a fresh index keeps working.
func TestRecoverChainOneTimeBitmap(t *testing.T) {
	clock := evmtest.NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	boot, addr := counterBoot(persistProtected)
	mem := store.NewMemory()

	ch1, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}

	issue := func(index int64) wallet.CallOpts {
		appData, err := (&evm.Transaction{Method: "ping"}).AppData()
		if err != nil {
			t.Fatal(err)
		}
		binding := core.Binding{Origin: persistUser.Address(), Contract: *addr}
		copy(binding.Selector[:], appData[:4])
		binding.Data = appData
		tk, err := core.SignToken(persistTSKey, core.MethodType, clock.Now().Add(time.Hour), index, binding)
		if err != nil {
			t.Fatal(err)
		}
		return wallet.WithTokens(wallet.TokenEntry{Contract: *addr, Token: tk})
	}

	w := wallet.New(persistUser, ch1)
	firstUse := issue(1)
	if r, err := w.Call(*addr, "ping", firstUse); err != nil || !r.Status {
		t.Fatalf("first use of index 1: %v / %+v", err, r)
	}

	// Crash and recover: the spent bit must come back with the state.
	ch2, err := evm.RecoverChain(cfg, mem, 0, boot)
	if err != nil {
		t.Fatal(err)
	}
	w2 := wallet.New(persistUser, ch2)
	r, err := w2.Call(*addr, "ping", firstUse)
	if err != nil {
		t.Fatalf("replayed token rejected before execution: %v", err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrTokenUsed) {
		t.Errorf("replayed one-time token after recovery: status=%v err=%v, want ErrTokenUsed", r.Status, r.Err)
	}
	if r, err := w2.Call(*addr, "ping", issue(2)); err != nil || !r.Status {
		t.Fatalf("fresh index after recovery: %v / %+v", err, r)
	}
}
