// Package evm implements the simulated Ethereum substrate SMACS runs on: a
// single-node chain with accounts, replay-protected signed transactions,
// gas-metered execution, message calls with call chains, per-transaction
// traces, and reorg support.
//
// Contracts are Go objects registered on the chain. Each contract exposes a
// method table keyed by ABI selectors; handlers receive a *Call context that
// models the EVM's transaction-context objects (tx.origin, msg.sender,
// msg.sig, msg.data) and charges gas for storage and computation using the
// real Ethereum gas schedule.
package evm

import (
	"errors"
	"fmt"

	"repro/internal/abi"
)

// Visibility mirrors Solidity method visibility (§ II-B of the paper).
type Visibility int

// Solidity visibility levels.
const (
	// External methods are callable via transactions and from other
	// contracts, but not internally.
	External Visibility = iota + 1
	// Public methods are callable via transactions, messages, and
	// internally.
	Public
	// Internal methods are only callable from within the contract.
	Internal
	// Private methods are only callable from within the defining contract.
	Private
)

// String implements fmt.Stringer.
func (v Visibility) String() string {
	switch v {
	case External:
		return "external"
	case Public:
		return "public"
	case Internal:
		return "internal"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("visibility(%d)", int(v))
	}
}

// Dispatchable reports whether the method may appear in the external
// dispatch table (i.e., be the target of a transaction or message call).
func (v Visibility) Dispatchable() bool { return v == External || v == Public }

// Handler is the body of a contract method. It returns the method's return
// values (ABI-compatible Go values) or an error, which reverts the call
// frame.
type Handler func(c *Call) ([]any, error)

// Method describes one contract method.
type Method struct {
	// Name is the bare method name, e.g. "transfer".
	Name string
	// Params are prototype values fixing the parameter types; their
	// contents are ignored. E.g. []any{types.Address{}, (*big.Int)(nil)}.
	Params []any
	// Visibility controls who may call the method.
	Visibility Visibility
	// Payable permits the method to receive value.
	Payable bool
	// Handler is the method body.
	Handler Handler

	signature string
	selector  abi.Selector
}

// Signature returns the canonical ABI signature (set when the method is
// added to a contract).
func (m *Method) Signature() string { return m.signature }

// Selector returns the 4-byte ABI selector.
func (m *Method) Selector() abi.Selector { return m.selector }

// Errors reported by contract construction and dispatch.
var (
	ErrUnknownMethod   = errors.New("evm: unknown method")
	ErrNotCallable     = errors.New("evm: method not callable in this context")
	ErrNotPayable      = errors.New("evm: method is not payable")
	ErrDuplicateMethod = errors.New("evm: duplicate method")
)

// Contract is a deployable unit of logic: a named method table plus an
// optional fallback and free-form metadata (used, e.g., for Token Service
// discovery per § VII-B of the paper).
type Contract struct {
	name      string
	methods   map[abi.Selector]*Method
	byName    map[string]*Method
	fallback  Handler
	metadata  map[string]string
	initWords int
}

// NewContract creates an empty contract with the given human-readable name.
func NewContract(name string) *Contract {
	return &Contract{
		name:     name,
		methods:  make(map[abi.Selector]*Method),
		byName:   make(map[string]*Method),
		metadata: make(map[string]string),
	}
}

// Name returns the contract's human-readable name.
func (c *Contract) Name() string { return c.name }

// AddMethod registers a method, deriving its canonical signature and
// selector from the name and parameter prototypes.
func (c *Contract) AddMethod(m Method) error {
	if m.Handler == nil {
		return fmt.Errorf("evm: method %q has no handler", m.Name)
	}
	if m.Visibility == 0 {
		m.Visibility = Public
	}
	sig, err := abi.Signature(m.Name, m.Params...)
	if err != nil {
		return fmt.Errorf("method %q: %w", m.Name, err)
	}
	m.signature = sig
	m.selector = abi.SelectorFor(sig)
	if _, dup := c.byName[m.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateMethod, m.Name)
	}
	if _, dup := c.methods[m.selector]; dup {
		return fmt.Errorf("%w: selector collision for %q", ErrDuplicateMethod, m.Name)
	}
	mc := m
	c.byName[m.Name] = &mc
	if m.Visibility.Dispatchable() {
		c.methods[m.selector] = &mc
	}
	return nil
}

// MustAddMethod is AddMethod that panics on error; intended for contract
// constructors where a failure is a programming bug.
func (c *Contract) MustAddMethod(m Method) {
	if err := c.AddMethod(m); err != nil {
		panic(err)
	}
}

// OverrideDispatch replaces the externally dispatched handler of a method
// while leaving internal Invoke dispatch on the original body. This is the
// mechanism behind the paper's Fig. 4 transformation: a public method h is
// split into a verifying public wrapper h(token) and a non-verifying
// private body _h used by internal callers.
func (c *Contract) OverrideDispatch(name string, h Handler) error {
	m, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMethod, name)
	}
	if !m.Visibility.Dispatchable() {
		return fmt.Errorf("%w: %s is %s", ErrNotCallable, name, m.Visibility)
	}
	wrapped := *m
	wrapped.Handler = h
	c.methods[m.selector] = &wrapped
	return nil
}

// SetFallback installs the anonymous payable fallback method invoked on
// plain value transfers to the contract (the re-entrancy vector of Fig. 7).
func (c *Contract) SetFallback(h Handler) { c.fallback = h }

// Fallback returns the fallback handler, if any.
func (c *Contract) Fallback() Handler { return c.fallback }

// Method looks a method up by name (any visibility).
func (c *Contract) Method(name string) (*Method, bool) {
	m, ok := c.byName[name]
	return m, ok
}

// MethodBySelector looks a dispatchable method up by ABI selector.
func (c *Contract) MethodBySelector(sel abi.Selector) (*Method, bool) {
	m, ok := c.methods[sel]
	return m, ok
}

// Methods returns all registered methods (any visibility).
func (c *Contract) Methods() []*Method {
	out := make([]*Method, 0, len(c.byName))
	for _, m := range c.byName {
		out = append(out, m)
	}
	return out
}

// SetMetadata attaches a metadata entry to the contract (e.g., the Token
// Service URL under the "smacs.ts" key).
func (c *Contract) SetMetadata(key, value string) { c.metadata[key] = value }

// Metadata reads a metadata entry.
func (c *Contract) Metadata(key string) (string, bool) {
	v, ok := c.metadata[key]
	return v, ok
}

// SetInitialStorageWords declares how many zeroed storage words the
// contract pre-allocates at deployment (the one-time-token bitmap of
// Alg. 2). Deployment charges SStoreSet per word — this is the one-time
// cost Table IV reports.
func (c *Contract) SetInitialStorageWords(n int) { c.initWords = n }

// InitialStorageWords returns the declared pre-allocated storage size.
func (c *Contract) InitialStorageWords() int { return c.initWords }
