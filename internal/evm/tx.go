package evm

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/keccak"
	"repro/internal/rlp"
	"repro/internal/secp256k1"
	"repro/internal/sigcache"
	"repro/internal/types"
)

// Transaction is a signed state transition: a method call on a contract (or
// a plain value transfer when Method is empty). Tokens carry the SMACS
// access tokens; on the wire they are appended to the calldata as the
// trailing `bytes[]` argument the SMACS transformation adds (Fig. 4), so
// they are covered by the transaction signature and priced as calldata, but
// excluded from the msg.data that access tokens bind to.
type Transaction struct {
	// Nonce is the sender's account nonce (Ethereum's replay protection).
	Nonce uint64
	// To is the target account.
	To types.Address
	// Value is the ether (wei) transferred with the call.
	Value *big.Int
	// GasLimit caps execution gas.
	GasLimit uint64
	// GasPrice is the price per gas unit in wei.
	GasPrice *big.Int
	// Method and Args describe the call; Args must be ABI-encodable.
	Method string
	Args   []any
	// RawData, when non-nil, is the pre-encoded application calldata
	// (selector ‖ encoded args) and takes precedence over Method/Args.
	// The durability replay path uses it so a logged transaction
	// re-executes byte-identically without re-deriving ABI arguments.
	RawData []byte
	// Tokens is the SMACS token array (one entry per SMACS-enabled
	// contract in the triggered call chain, § IV-D).
	Tokens [][]byte
	// Sig is the sender's secp256k1 signature over SigHash.
	Sig secp256k1.Signature

	// memo caches the last recovered sender, keyed by the signing digest
	// and signature bytes so any post-signing mutation forces a fresh
	// recovery (see Sender).
	memo atomic.Pointer[senderMemo]
}

// senderMemo is one cached sender recovery. The digest and signature are
// stored alongside the address: a memo is only trusted when both still
// match the transaction's current content.
type senderMemo struct {
	digest types.Hash
	sig    [secp256k1.SignatureLength]byte
	sender types.Address
}

// Transaction validation errors.
var (
	ErrNonceTooLow      = errors.New("evm: nonce too low (transaction already processed)")
	ErrNonceTooHigh     = errors.New("evm: nonce too high")
	ErrInsufficientETH  = errors.New("evm: insufficient balance for gas and value")
	ErrBadTxSignature   = errors.New("evm: invalid transaction signature")
	ErrContractNotFound = errors.New("evm: no contract at target address")
	ErrIntrinsicGas     = errors.New("evm: gas limit below intrinsic cost")
)

// AppData returns the application calldata: selector ‖ encoded args,
// excluding the token array. This is the msg.data that argument tokens bind
// to (see DESIGN.md, "calldata binding note").
func (tx *Transaction) AppData() ([]byte, error) {
	if tx.RawData != nil {
		return tx.RawData, nil
	}
	if tx.Method == "" {
		return nil, nil
	}
	return abi.Pack(tx.Method, tx.Args...)
}

// WireData returns the full calldata as priced and signed: the application
// calldata followed by the ABI-encoded token array (when present).
func (tx *Transaction) WireData() ([]byte, error) {
	data, err := tx.AppData()
	if err != nil {
		return nil, err
	}
	if len(tx.Tokens) == 0 {
		return data, nil
	}
	blob, err := abi.Encode(tx.Tokens)
	if err != nil {
		return nil, err
	}
	return append(data, blob...), nil
}

// SigHash computes the digest the sender signs: an EIP-155-style RLP of the
// transaction fields plus the chain id.
func (tx *Transaction) SigHash(chainID uint64) (types.Hash, error) {
	data, err := tx.WireData()
	if err != nil {
		return types.Hash{}, err
	}
	enc, err := rlp.EncodeList(
		tx.Nonce,
		tx.GasPrice,
		tx.GasLimit,
		tx.To.Bytes(),
		tx.Value,
		data,
		chainID,
		uint64(0),
		uint64(0),
	)
	if err != nil {
		return types.Hash{}, fmt.Errorf("tx sighash: %w", err)
	}
	return types.Hash(keccak.Sum256(enc)), nil
}

// Hash computes the transaction hash (over the signed payload).
func (tx *Transaction) Hash(chainID uint64) (types.Hash, error) {
	data, err := tx.WireData()
	if err != nil {
		return types.Hash{}, err
	}
	enc, err := rlp.EncodeList(
		tx.Nonce,
		tx.GasPrice,
		tx.GasLimit,
		tx.To.Bytes(),
		tx.Value,
		data,
		tx.Sig.Bytes(),
		chainID,
	)
	if err != nil {
		return types.Hash{}, fmt.Errorf("tx hash: %w", err)
	}
	return types.Hash(keccak.Sum256(enc)), nil
}

// SignTx signs the transaction in place with the given key.
func SignTx(tx *Transaction, key *secp256k1.PrivateKey, chainID uint64) error {
	digest, err := tx.SigHash(chainID)
	if err != nil {
		return err
	}
	sig, err := secp256k1.Sign(key, [32]byte(digest))
	if err != nil {
		return fmt.Errorf("sign tx: %w", err)
	}
	tx.Sig = sig
	return nil
}

// Sender recovers the transaction originator from the signature.
//
// The recovery is memoized: the signing digest and signature bytes are
// always recomputed (so tampering with any signed field after a previous
// call yields a fresh — different — recovery), but the expensive ecrecover
// is skipped when both match a prior call or the shared sender cache.
func (tx *Transaction) Sender(chainID uint64) (types.Address, error) {
	digest, err := tx.SigHash(chainID)
	if err != nil {
		return types.Address{}, err
	}
	if tx.Sig.R == nil || tx.Sig.S == nil {
		return types.Address{}, ErrBadTxSignature
	}
	// Out-of-range scalars skip the cache: Sig.Bytes (the cache key) panics
	// on them, and RecoverAddress below reports them as ErrBadTxSignature
	// exactly as the uncached path always has.
	cached := senderCacheOn.Load() && tx.Sig.Validate() == nil
	var sigBytes [secp256k1.SignatureLength]byte
	var key string
	if cached {
		copy(sigBytes[:], tx.Sig.Bytes())
		if m := tx.memo.Load(); m != nil && m.digest == digest && m.sig == sigBytes {
			return m.sender, nil
		}
		key = sigcache.Key([32]byte(digest), sigBytes[:])
		if addr, ok := senderCache.Get(key); ok {
			tx.memo.Store(&senderMemo{digest: digest, sig: sigBytes, sender: addr})
			return addr, nil
		}
	}
	addr, err := secp256k1.RecoverAddress([32]byte(digest), tx.Sig)
	if err != nil {
		return types.Address{}, fmt.Errorf("%w: %v", ErrBadTxSignature, err)
	}
	if cached {
		senderCache.Add(key, addr)
		tx.memo.Store(&senderMemo{digest: digest, sig: sigBytes, sender: addr})
	}
	return addr, nil
}
