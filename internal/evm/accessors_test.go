package evm_test

import (
	"testing"

	"repro/internal/evmtest"
	"repro/internal/wallet"
)

func TestBlockAccessors(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())

	genesis, ok := env.Chain.BlockByNumber(0)
	if !ok || genesis.Number != 0 {
		t.Fatalf("genesis lookup: %v %v", genesis, ok)
	}

	r := env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	blk, ok := env.Chain.BlockByNumber(r.BlockNumber)
	if !ok {
		t.Fatalf("block %d missing", r.BlockNumber)
	}
	if blk.TxHash != r.TxHash {
		t.Errorf("block tx hash %s != receipt %s", blk.TxHash, r.TxHash)
	}
	if blk.Receipt != r {
		t.Error("block does not reference its receipt")
	}
	if _, ok := env.Chain.BlockByNumber(env.Chain.Height() + 1); ok {
		t.Error("future block lookup succeeded")
	}
}

func TestDeployerTracking(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	creator := env.Wallets[1].Address()

	a1, _, err := env.Chain.Deploy(creator, newCounter())
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := env.Chain.Deploy(creator, newCounter())
	if err != nil {
		t.Fatal(err)
	}

	if d, ok := env.Chain.Deployer(a1); !ok || d != creator {
		t.Errorf("Deployer(%s) = %s, %v", a1, d, ok)
	}
	got := env.Chain.DeployedBy(creator)
	if len(got) != 2 {
		t.Fatalf("DeployedBy = %v, want 2 contracts", got)
	}
	seen := map[string]bool{got[0].Hex(): true, got[1].Hex(): true}
	if !seen[a1.Hex()] || !seen[a2.Hex()] {
		t.Errorf("DeployedBy missing contracts: %v", got)
	}
	if others := env.Chain.DeployedBy(env.Wallets[0].Address()); len(others) != 0 {
		t.Errorf("unexpected deployments for wallet 0: %v", others)
	}
	if _, ok := env.Chain.Deployer(env.Wallets[0].Address()); ok {
		t.Error("EOA reported as deployed contract")
	}
}

func TestReceiptFee(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	r := env.MustCall(t, 1, addr, "increment", wallet.CallOpts{})
	wantUSD := env.Chain.Config().Price.USD(r.GasUsed)
	if r.FeeUSD != wantUSD {
		t.Errorf("FeeUSD = %f, want %f", r.FeeUSD, wantUSD)
	}
}
