package evm

import (
	"fmt"
	"time"

	"repro/internal/rlp"
	"repro/internal/secp256k1"
	"repro/internal/state"
	"repro/internal/store"
	"repro/internal/types"
)

// Chain durability: an attached store.Backend receives one KindCommit
// record per mined transaction and periodic whole-state snapshots, so a
// crashed node recovers by re-executing the logged suffix on top of the
// last snapshot.
//
// Contract handlers are Go closures and cannot be serialized, so
// recovery splits responsibility:
//
//   - a deterministic bootstrap function re-deploys contracts and funds
//     the genesis accounts (same keys, same order → same addresses);
//   - the snapshot then replaces the world state wholesale and restarts
//     the block list at the snapshot height;
//   - the commit log re-executes with each transaction's original block
//     time, so token-expiry checks repeat identically.
//
// Out-of-band mutations (Fund, Reorg) are NOT logged: perform them in
// bootstrap, or follow them with SnapshotToStore.

// chainStore is the durability state hanging off a Chain.
type chainStore struct {
	b store.Backend
	// snapshotEvery bounds WAL growth: a state snapshot is taken after
	// this many commits (≤ 0 disables automatic snapshots).
	snapshotEvery int
	sinceSnap     int
	// replaying suppresses re-logging while the commit log re-executes.
	replaying bool
}

// AttachStore arms commit logging on the chain: every subsequently mined
// transaction is appended to b before Apply returns, and a state
// snapshot is written after every snapshotEvery commits (≤ 0 disables
// the cadence; SnapshotToStore still works). The backend must already be
// replayed (OpenChain/RecoverChain do this) or fresh.
func (ch *Chain) AttachStore(b store.Backend, snapshotEvery int) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.store = &chainStore{b: b, snapshotEvery: snapshotEvery}
}

// persistCommitLocked logs a just-mined transaction and advances the
// snapshot cadence. The chain mutex must be held. No-op without an
// attached store or during replay.
func (ch *Chain) persistCommitLocked(tx *Transaction, blockTime time.Time) error {
	cs := ch.store
	if cs == nil || cs.replaying {
		return nil
	}
	data, err := EncodeCommit(tx, blockTime)
	if err != nil {
		return fmt.Errorf("evm: encode commit: %w", err)
	}
	height := ch.blocks[len(ch.blocks)-1].Number
	if err := cs.b.Append(store.Record{Kind: store.KindCommit, Value: int64(height), Data: data}); err != nil {
		return fmt.Errorf("evm: persist commit at block %d: %w", height, err)
	}
	if cs.snapshotEvery > 0 {
		cs.sinceSnap++
		if cs.sinceSnap >= cs.snapshotEvery {
			cs.sinceSnap = 0
			if err := ch.snapshotLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// SnapshotToStore writes a full state snapshot to the attached store,
// folding the commit log into it. Call it after out-of-band mutations
// (Fund) that the commit log does not capture.
func (ch *Chain) SnapshotToStore() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.store == nil {
		return fmt.Errorf("evm: no store attached")
	}
	return ch.snapshotLocked()
}

// snapshotLocked encodes height + world state and rotates the store.
func (ch *Chain) snapshotLocked() error {
	stateBytes, err := ch.db.EncodeSnapshot()
	if err != nil {
		return fmt.Errorf("evm: encode state snapshot: %w", err)
	}
	height := ch.blocks[len(ch.blocks)-1].Number
	blob, err := rlp.EncodeList(height, stateBytes)
	if err != nil {
		return fmt.Errorf("evm: encode chain snapshot: %w", err)
	}
	if err := ch.store.b.Snapshot(blob); err != nil {
		return fmt.Errorf("evm: persist snapshot at block %d: %w", height, err)
	}
	return nil
}

// RecoverChain builds a chain from a durable store: bootstrap runs
// first on a fresh chain (re-deploying contracts and funding accounts
// deterministically), then the store's snapshot — if any — replaces the
// world state, then every logged commit re-executes. The returned chain
// has the store attached and keeps logging.
//
// On a store with no history this degrades to NewChain + bootstrap +
// AttachStore, so the same call serves first boot and restart.
func RecoverChain(cfg Config, b store.Backend, snapshotEvery int, bootstrap func(*Chain) error) (*Chain, error) {
	snap, recs, err := b.Replay()
	if err != nil {
		return nil, fmt.Errorf("evm: replay chain store: %w", err)
	}
	ch := NewChain(cfg)
	if bootstrap != nil {
		if err := bootstrap(ch); err != nil {
			return nil, fmt.Errorf("evm: recovery bootstrap: %w", err)
		}
	}
	if snap != nil {
		height, db, err := decodeChainSnapshot(snap)
		if err != nil {
			return nil, err
		}
		ch.db = db
		// Contracts registered by bootstrap survive; the block history
		// below the snapshot is gone, so the chain restarts from a single
		// base block at the snapshot height (stateSnapshot 0 = the fresh
		// empty journal of the decoded DB).
		ch.blocks = []*Block{{Number: height, Time: ch.cfg.Now()}}
	}
	ch.store = &chainStore{b: b, snapshotEvery: snapshotEvery, replaying: true}
	for _, rec := range recs {
		if rec.Kind != store.KindCommit {
			continue
		}
		tx, blockTime, err := DecodeCommit(rec.Data)
		if err != nil {
			return nil, fmt.Errorf("evm: decode commit at block %d: %w", rec.Value, err)
		}
		ch.mu.Lock()
		_, err = ch.applyAtLocked(tx, blockTime)
		ch.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("evm: replay commit at block %d: %w", rec.Value, err)
		}
	}
	ch.mu.Lock()
	ch.store.replaying = false
	ch.mu.Unlock()
	return ch, nil
}

// EncodeCommit serializes a mined transaction plus its block time for
// the WAL. The application calldata is stored pre-encoded (see
// Transaction.RawData), so replay needs no ABI metadata; the token array
// and signature ride along so sender recovery and token checks repeat
// against the original bytes.
func EncodeCommit(tx *Transaction, blockTime time.Time) ([]byte, error) {
	appData, err := tx.AppData()
	if err != nil {
		return nil, err
	}
	tokens := make([]any, len(tx.Tokens))
	for i, t := range tx.Tokens {
		tokens[i] = t
	}
	return rlp.EncodeList(
		uint64(blockTime.UnixNano()),
		tx.Nonce,
		tx.GasPrice,
		tx.GasLimit,
		tx.To.Bytes(),
		tx.Value,
		appData,
		tokens,
		tx.Sig.Bytes(),
	)
}

// DecodeCommit parses an EncodeCommit payload back into an executable
// transaction (RawData form) and its original block time.
func DecodeCommit(b []byte) (*Transaction, time.Time, error) {
	v, err := rlp.Decode(b)
	if err != nil {
		return nil, time.Time{}, err
	}
	if !v.IsList || len(v.List) != 9 {
		return nil, time.Time{}, fmt.Errorf("commit record is not a 9-element list")
	}
	nanos, err := v.List[0].Uint()
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit block time: %w", err)
	}
	nonce, err := v.List[1].Uint()
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit nonce: %w", err)
	}
	gasPrice, err := v.List[2].BigInt()
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit gas price: %w", err)
	}
	gasLimit, err := v.List[3].Uint()
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit gas limit: %w", err)
	}
	if v.List[4].IsList || len(v.List[4].Bytes) != types.AddressLength {
		return nil, time.Time{}, fmt.Errorf("commit target address malformed")
	}
	value, err := v.List[5].BigInt()
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit value: %w", err)
	}
	if v.List[6].IsList {
		return nil, time.Time{}, fmt.Errorf("commit calldata malformed")
	}
	if !v.List[7].IsList {
		return nil, time.Time{}, fmt.Errorf("commit token array malformed")
	}
	var tokens [][]byte
	for i, t := range v.List[7].List {
		if t.IsList {
			return nil, time.Time{}, fmt.Errorf("commit token %d malformed", i)
		}
		tokens = append(tokens, append([]byte(nil), t.Bytes...))
	}
	if v.List[8].IsList {
		return nil, time.Time{}, fmt.Errorf("commit signature malformed")
	}
	sig, err := secp256k1.ParseSignature(v.List[8].Bytes)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("commit signature: %w", err)
	}
	tx := &Transaction{
		Nonce:    nonce,
		To:       types.BytesToAddress(v.List[4].Bytes),
		Value:    value,
		GasLimit: gasLimit,
		GasPrice: gasPrice,
		Tokens:   tokens,
		Sig:      sig,
	}
	if len(v.List[6].Bytes) > 0 {
		tx.RawData = append([]byte(nil), v.List[6].Bytes...)
	}
	return tx, time.Unix(0, int64(nanos)), nil
}

// decodeChainSnapshot splits a snapshotLocked blob into the snapshot
// height and the reconstructed world state.
func decodeChainSnapshot(blob []byte) (uint64, *state.DB, error) {
	v, err := rlp.Decode(blob)
	if err != nil {
		return 0, nil, fmt.Errorf("evm: decode chain snapshot: %w", err)
	}
	if !v.IsList || len(v.List) != 2 || v.List[1].IsList {
		return 0, nil, fmt.Errorf("evm: chain snapshot is not [height, state]")
	}
	height, err := v.List[0].Uint()
	if err != nil {
		return 0, nil, fmt.Errorf("evm: chain snapshot height: %w", err)
	}
	db, err := state.DecodeSnapshot(v.List[1].Bytes)
	if err != nil {
		return 0, nil, err
	}
	return height, db, nil
}
