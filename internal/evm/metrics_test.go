package evm_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/metrics"
	"repro/internal/secp256k1"
	"repro/internal/wallet"
)

// An isolated registry must see exactly this chain's traffic, labeled by
// outcome, with batch phases observed once per ApplyBatch call.
func TestChainOutcomeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := evm.DefaultConfig()
	cfg.Metrics = reg
	chain := evm.NewChain(cfg)

	rich := wallet.New(secp256k1.PrivateKeyFromSeed([]byte("evm metrics rich")), chain)
	poor := wallet.New(secp256k1.PrivateKeyFromSeed([]byte("evm metrics poor")), chain)
	chain.Fund(rich.Address(), evmtest.Ether(10))
	addr, _, err := chain.Deploy(rich.Address(), newCounter())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := rich.Call(addr, "increment", wallet.CallOpts{}); err != nil {
		t.Fatalf("increment: %v", err)
	}
	if r, err := rich.Call(addr, "explode", wallet.CallOpts{}); err != nil || r.Status {
		t.Fatalf("explode: err=%v status=%v", err, r.Status)
	}
	if _, err := poor.Call(addr, "increment", wallet.CallOpts{}); err == nil {
		t.Fatal("unfunded call applied")
	}

	// One batch of two: both increment, distinct nonces.
	txs := []*evm.Transaction{
		buildIncrement(t, chain, rich.Key(), addr, chain.NonceOf(rich.Address())),
		buildIncrement(t, chain, rich.Key(), addr, chain.NonceOf(rich.Address())+1),
	}
	for i, res := range chain.ApplyBatch(txs, evm.BatchOptions{Workers: 2}) {
		if res.Err != nil || !res.Receipt.Status {
			t.Fatalf("batch tx %d: err=%v", i, res.Err)
		}
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	body := sb.String()
	for _, re := range []string{
		`(?m)^evm_txs_total\{outcome="accepted"\} 3$`,
		`(?m)^evm_txs_total\{outcome="reverted_other"\} 1$`,
		`(?m)^evm_txs_total\{outcome="rejected_insufficient_balance"\} 1$`,
		`(?m)^evm_apply_batch_size_count 1$`,
		`(?m)^evm_apply_batch_size_sum 2$`,
		`(?m)^evm_apply_batch_commit_seconds_count 1$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("registry missing %s\n%s", re, body)
		}
	}
}
