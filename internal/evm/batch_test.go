package evm_test

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/secp256k1"
	"repro/internal/types"
	"repro/internal/wallet"
)

// buildIncrement signs an increment call with an explicit nonce, bypassing
// the wallet's live nonce lookup so batches can be built ahead of commit.
func buildIncrement(t testing.TB, ch *evm.Chain, key *secp256k1.PrivateKey, to types.Address, nonce uint64) *evm.Transaction {
	t.Helper()
	tx := &evm.Transaction{
		Nonce:    nonce,
		To:       to,
		Value:    new(big.Int),
		GasLimit: wallet.DefaultGasLimit,
		GasPrice: ch.Config().Price.Wei(1),
		Method:   "increment",
	}
	if err := evm.SignTx(tx, key, ch.Config().ChainID); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestApplyBatchMatchesSerialApply(t *testing.T) {
	env := evmtest.NewEnv(t, 3)
	addr := env.Deploy(t, newCounter())

	var txs []*evm.Transaction
	const perWallet = 3
	// Round-robin across wallets so each sender's nonces appear in order.
	for n := uint64(0); n < perWallet; n++ {
		for i := 1; i < 3; i++ {
			w := env.Wallets[i]
			txs = append(txs, buildIncrement(t, env.Chain, w.Key(), addr, env.Chain.NonceOf(w.Address())+n))
		}
	}

	heightBefore := env.Chain.Height()
	results := env.Chain.ApplyBatch(txs, evm.BatchOptions{Workers: 4})
	if len(results) != len(txs) {
		t.Fatalf("got %d results for %d txs", len(results), len(txs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("tx %d rejected: %v", i, res.Err)
		}
		if !res.Receipt.Status {
			t.Fatalf("tx %d reverted: %v", i, res.Receipt.Err)
		}
	}
	// One block per transaction, exactly like serial Apply.
	if got, want := env.Chain.Height(), heightBefore+uint64(len(txs)); got != want {
		t.Errorf("height = %d, want %d", got, want)
	}
	r := env.MustCall(t, 1, addr, "get", wallet.CallOpts{})
	if v := r.Return[0].(uint64); v != uint64(len(txs)) {
		t.Errorf("counter = %d, want %d", v, len(txs))
	}
}

func TestApplyBatchRejectsWithoutAborting(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	w := env.Wallets[1]
	nonce := env.Chain.NonceOf(w.Address())

	good1 := buildIncrement(t, env.Chain, w.Key(), addr, nonce)
	replay := buildIncrement(t, env.Chain, w.Key(), addr, nonce) // same nonce → rejected
	good2 := buildIncrement(t, env.Chain, w.Key(), addr, nonce+1)
	unsigned := &evm.Transaction{Nonce: nonce + 2, To: addr, Value: new(big.Int),
		GasLimit: wallet.DefaultGasLimit, GasPrice: env.Chain.Config().Price.Wei(1), Method: "increment"}

	results := env.Chain.ApplyBatch([]*evm.Transaction{good1, replay, good2, unsigned}, evm.BatchOptions{})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid txs rejected: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, evm.ErrNonceTooLow) {
		t.Errorf("replay err = %v, want ErrNonceTooLow", results[1].Err)
	}
	if !errors.Is(results[3].Err, evm.ErrBadTxSignature) {
		t.Errorf("unsigned err = %v, want ErrBadTxSignature", results[3].Err)
	}
}

func TestApplyBatchEmptyAndDefaults(t *testing.T) {
	env := evmtest.NewEnv(t, 1)
	if res := env.Chain.ApplyBatch(nil, evm.BatchOptions{}); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// TestApplyBatchConcurrent exercises ApplyBatch under -race: several
// goroutines submit batches from disjoint senders while others read chain
// state and submit serial Apply traffic.
func TestApplyBatchConcurrent(t *testing.T) {
	const (
		goroutines = 4
		perSender  = 5
	)
	env := evmtest.NewEnv(t, goroutines+2)
	addr := env.Deploy(t, newCounter())

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := env.Wallets[g+1]
			base := env.Chain.NonceOf(w.Address())
			var txs []*evm.Transaction
			for n := uint64(0); n < perSender; n++ {
				txs = append(txs, buildIncrement(t, env.Chain, w.Key(), addr, base+n))
			}
			for _, res := range env.Chain.ApplyBatch(txs, evm.BatchOptions{Workers: 2}) {
				if res.Err != nil {
					errs[g] = res.Err
					return
				}
			}
		}(g)
	}
	// Concurrent readers and serial writer traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			env.Chain.Height()
			env.Chain.Balance(env.Wallets[0].Address())
			_, _, _ = env.Chain.StaticCall(env.Wallets[0].Address(), addr, "get", nil, nil)
		}
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	r := env.MustCall(t, goroutines+1, addr, "get", wallet.CallOpts{})
	if v := r.Return[0].(uint64); v != goroutines*perSender {
		t.Errorf("counter = %d, want %d", v, goroutines*perSender)
	}
}

func TestApplyBatchPrevalidateHookRuns(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCounter())
	w := env.Wallets[1]
	tx := buildIncrement(t, env.Chain, w.Key(), addr, env.Chain.NonceOf(w.Address()))

	var mu sync.Mutex
	seen := 0
	env.Chain.ApplyBatch([]*evm.Transaction{tx}, evm.BatchOptions{
		Prevalidate: func(tx *evm.Transaction) {
			mu.Lock()
			seen++
			mu.Unlock()
			// The hook runs outside the chain mutex: chain reads must not
			// deadlock.
			if env.Chain.Height() == 0 {
				t.Error("unexpected zero height inside hook")
			}
		},
	})
	if seen != 1 {
		t.Errorf("prevalidate hook ran %d times, want 1", seen)
	}
}

func ExampleChain_ApplyBatch() {
	chain := evm.NewChain(evm.DefaultConfig())
	key := secp256k1.PrivateKeyFromSeed([]byte("batch example"))
	chain.Fund(key.Address(), big.NewInt(1e18))

	var txs []*evm.Transaction
	for n := uint64(0); n < 3; n++ {
		tx := &evm.Transaction{Nonce: n, To: types.Address{0x99}, Value: big.NewInt(1),
			GasLimit: 21000, GasPrice: big.NewInt(1)}
		if err := evm.SignTx(tx, key, chain.Config().ChainID); err != nil {
			panic(err)
		}
		txs = append(txs, tx)
	}
	results := chain.ApplyBatch(txs, evm.BatchOptions{Workers: 2})
	for i, res := range results {
		fmt.Println(i, res.Err == nil && res.Receipt.Status)
	}
	// Output:
	// 0 true
	// 1 true
	// 2 true
}
