package evm

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/abi"
	"repro/internal/gas"
	"repro/internal/keccak"
	"repro/internal/metrics"
	"repro/internal/rlp"
	"repro/internal/state"
	"repro/internal/types"
)

// Config parameterizes a simulated chain.
type Config struct {
	// ChainID protects transactions against cross-chain replay.
	ChainID uint64
	// BlockGasLimit caps the gas of a single transaction/block.
	BlockGasLimit uint64
	// Price converts gas to ether/USD in receipts and benchmarks.
	Price gas.Price
	// Now supplies block timestamps; defaults to time.Now. Inject a fake
	// clock in tests to exercise token expiry deterministically.
	Now func() time.Time
	// Metrics selects the registry the chain's instrumentation series
	// (evm_txs_total, evm_apply_batch_*_seconds, …) are registered in
	// (nil = metrics.Default()).
	Metrics *metrics.Registry
}

// DefaultConfig returns a testnet-like configuration.
func DefaultConfig() Config {
	return Config{ChainID: 1337, BlockGasLimit: 12_000_000, Price: gas.DefaultPrice}
}

// Block is a mined block. The simulated chain mines one block per
// transaction, like an instant-sealing geth dev testnet (the environment
// the paper evaluates on).
type Block struct {
	// Number is the block height.
	Number uint64
	// Time is the block timestamp.
	Time time.Time
	// TxHash is the hash of the included transaction (zero for the genesis
	// and deploy blocks without user transactions).
	TxHash types.Hash
	// Receipt is the execution receipt of the included transaction.
	Receipt *Receipt

	stateSnapshot int
}

// Receipt reports the outcome of a transaction or deployment.
type Receipt struct {
	// Status is true for successful execution.
	Status bool
	// Err is the revert reason for failed executions.
	Err error
	// GasUsed is the total gas consumed.
	GasUsed uint64
	// GasByCategory breaks GasUsed down by accounting category
	// (intrinsic / verify / bitmap / parse / misc / app).
	GasByCategory map[gas.Category]uint64
	// FeeUSD is the fee in US dollars under the chain's price calibration.
	FeeUSD float64
	// Return holds the top-level call's return values.
	Return []any
	// Trace is the full execution trace (consumed by runtime-verification
	// tools).
	Trace *Trace
	// BlockNumber is the height of the including block.
	BlockNumber uint64
	// TxHash identifies the transaction.
	TxHash types.Hash
}

// stateStore is the state-access surface transaction execution runs
// against. The committed *state.DB implements it for serial execution;
// *state.View implements it for optimistic-parallel execution, where each
// transaction speculates against its own read/write-tracked window onto a
// multi-version memory (see Execute and internal/state).
type stateStore interface {
	Exists(addr types.Address) bool
	Balance(addr types.Address) *big.Int
	AddBalance(addr types.Address, amount *big.Int)
	SubBalance(addr types.Address, amount *big.Int) error
	Nonce(addr types.Address) uint64
	IncNonce(addr types.Address)
	GetState(addr types.Address, slot types.Hash) types.Hash
	SetState(addr types.Address, slot types.Hash, value types.Hash) types.Hash
	Snapshot() int
	RevertToSnapshot(id int)
}

// Chain is a single-node simulated Ethereum chain. All methods are safe for
// concurrent use.
type Chain struct {
	mu         sync.Mutex
	cfg        Config
	db         *state.DB
	contracts  map[types.Address]*Contract
	deployedAt map[types.Address]uint64
	deployerOf map[types.Address]types.Address
	blocks     []*Block
	store      *chainStore
	metrics    *chainMetrics
}

// NewChain creates a chain with a genesis block.
func NewChain(cfg Config) *Chain {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.BlockGasLimit == 0 {
		cfg.BlockGasLimit = 12_000_000
	}
	if cfg.Price == (gas.Price{}) {
		cfg.Price = gas.DefaultPrice
	}
	ch := &Chain{
		cfg:        cfg,
		db:         state.New(),
		contracts:  make(map[types.Address]*Contract),
		deployedAt: make(map[types.Address]uint64),
		deployerOf: make(map[types.Address]types.Address),
		metrics:    newChainMetrics(metrics.Or(cfg.Metrics)),
	}
	ch.blocks = append(ch.blocks, &Block{Number: 0, Time: cfg.Now()})
	return ch
}

// Config returns the chain configuration.
func (ch *Chain) Config() Config { return ch.cfg }

// Now returns the current chain time (next block timestamp).
func (ch *Chain) Now() time.Time { return ch.cfg.Now() }

// Fund credits amount wei to addr — the dev-testnet faucet.
func (ch *Chain) Fund(addr types.Address, amount *big.Int) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.db.AddBalance(addr, amount)
}

// Balance returns the current balance of addr.
func (ch *Chain) Balance(addr types.Address) *big.Int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.db.Balance(addr)
}

// NonceOf returns the current account nonce of addr.
func (ch *Chain) NonceOf(addr types.Address) uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.db.Nonce(addr)
}

// Deployer returns the account that deployed the contract at addr. This is
// public on-chain information (derivable from the deployment transaction);
// the ECF runtime-verification tool uses it to simulate calls routed
// through a requester's own contracts.
func (ch *Chain) Deployer(addr types.Address) (types.Address, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	d, ok := ch.deployerOf[addr]
	return d, ok
}

// DeployedBy lists the contracts deployed by creator.
func (ch *Chain) DeployedBy(creator types.Address) []types.Address {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	var out []types.Address
	for addr, d := range ch.deployerOf {
		if d == creator {
			out = append(out, addr)
		}
	}
	return out
}

// StorageWordsOf returns the number of distinct storage words the contract
// at addr occupies (used by storage-footprint experiments).
func (ch *Chain) StorageWordsOf(addr types.Address) int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.db.StorageWords(addr)
}

// ContractAt returns the contract registered at addr.
func (ch *Chain) ContractAt(addr types.Address) (*Contract, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	c, ok := ch.contracts[addr]
	return c, ok
}

// StateDigest returns a keccak digest of the committed world state's
// canonical snapshot encoding. Chains that executed equivalent histories
// digest identically, whatever scheduler produced the commits — the
// serial-equivalence tests assert on it.
func (ch *Chain) StateDigest() (types.Hash, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.db.Digest()
}

// Height returns the current block height.
func (ch *Chain) Height() uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.blocks[len(ch.blocks)-1].Number
}

// BlockByNumber returns the block at the given height. After a durable
// recovery the chain restarts from a snapshot base block, so heights
// below the base are no longer resolvable.
func (ch *Chain) BlockByNumber(n uint64) (*Block, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	base := ch.blocks[0].Number
	if n < base || n-base >= uint64(len(ch.blocks)) {
		return nil, false
	}
	return ch.blocks[n-base], true
}

// Deploy registers a contract on the chain under a CREATE-style address
// (keccak(rlp(creator, nonce))[12:]) and charges the creator the deployment
// gas, including SStoreSet per pre-allocated storage word (the one-time
// bitmap cost of Table IV).
func (ch *Chain) Deploy(creator types.Address, contract *Contract) (types.Address, *Receipt, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()

	nonce := ch.db.Nonce(creator)
	enc, err := rlp.EncodeList(creator.Bytes(), nonce)
	if err != nil {
		return types.Address{}, nil, fmt.Errorf("deploy: %w", err)
	}
	h := keccak.Sum256(enc)
	addr := types.BytesToAddress(h[12:])
	if _, taken := ch.contracts[addr]; taken {
		return types.Address{}, nil, fmt.Errorf("deploy: address %s already occupied", addr)
	}

	const createGas = 32000
	meter := gas.NewMeter(ch.cfg.BlockGasLimit)
	if err := meter.Charge(gas.CatIntrinsic, gas.TxBase+createGas); err != nil {
		return types.Address{}, nil, err
	}
	// Code-deposit approximation: 200 gas per "byte", with each declared
	// method contributing a fixed 64-byte footprint.
	codeBytes := uint64(64 * (len(contract.byName) + 1))
	if err := meter.Charge(gas.CatIntrinsic, 200*codeBytes); err != nil {
		return types.Address{}, nil, err
	}
	for i := 0; i < contract.initWords; i++ {
		if err := meter.Charge(gas.CatBitmap, gas.SStoreSet); err != nil {
			return types.Address{}, nil, err
		}
	}

	ch.db.IncNonce(creator)
	ch.db.MarkContract(addr)
	ch.contracts[addr] = contract
	ch.deployedAt[addr] = ch.blocks[len(ch.blocks)-1].Number + 1
	ch.deployerOf[addr] = creator

	receipt := &Receipt{
		Status:        true,
		GasUsed:       meter.Used(),
		GasByCategory: meter.ByCategory(),
		FeeUSD:        ch.cfg.Price.USD(meter.Used()),
	}
	ch.mineLocked(types.Hash{}, receipt, ch.cfg.Now())
	return addr, receipt, nil
}

// Apply verifies and executes a signed transaction, mining it into a new
// block. It is a thin wrapper over Execute with the serial scheduler; see
// Execute for the full execution API. Verification mirrors Ethereum:
// signature recovery, strict nonce match (replay protection), and balance
// coverage of value + max fee.
func (ch *Chain) Apply(tx *Transaction) (*Receipt, error) {
	res := ch.Execute([]*Transaction{tx}, ExecOptions{Scheduler: SchedulerSerial})
	return res[0].Receipt, res[0].Err
}

// applyLocked is the body of the serial scheduler; the chain mutex must be
// held.
func (ch *Chain) applyLocked(tx *Transaction) (*Receipt, error) {
	receipt, err := ch.applyAtLocked(tx, ch.cfg.Now())
	// Outcomes are recorded here, not in applyAtLocked, so durable replay
	// of historical transactions does not inflate the live series.
	ch.metrics.recordOutcome(txOutcome(receipt, err))
	return receipt, err
}

// applyAtLocked executes tx against the committed state at the given block
// time, then mines and persists it. Durable replay calls it with the
// logged time of the original execution, so time-dependent checks (token
// expiry) repeat identically.
func (ch *Chain) applyAtLocked(tx *Transaction, blockTime time.Time) (*Receipt, error) {
	receipt, err := ch.applyOn(ch.db, tx, blockTime)
	if err != nil {
		return nil, err
	}
	ch.mineLocked(receipt.TxHash, receipt, blockTime)

	// Persist the commit before returning. A transaction that mined a
	// block (even with a failed execution) changed state — nonce, gas,
	// possibly a revert-logged receipt — and must survive a crash.
	if err := ch.persistCommitLocked(tx, blockTime); err != nil {
		return receipt, err
	}
	return receipt, nil
}

// applyOn runs the full state transition of one transaction — signature,
// nonce, and balance checks, gas purchase, execution, revert handling, and
// gas refund — against an arbitrary state store, without mining a block or
// persisting. The serial path passes the committed DB; the optimistic
// scheduler passes a per-transaction state.View. A nil receipt with a
// non-nil error means the transaction was rejected before touching state.
func (ch *Chain) applyOn(sdb stateStore, tx *Transaction, blockTime time.Time) (*Receipt, error) {
	sender, err := tx.Sender(ch.cfg.ChainID)
	if err != nil {
		return nil, err
	}
	switch nonce := sdb.Nonce(sender); {
	case tx.Nonce < nonce:
		return nil, fmt.Errorf("%w: tx nonce %d, account nonce %d", ErrNonceTooLow, tx.Nonce, nonce)
	case tx.Nonce > nonce:
		return nil, fmt.Errorf("%w: tx nonce %d, account nonce %d", ErrNonceTooHigh, tx.Nonce, nonce)
	}

	gasPrice := cpBig(tx.GasPrice)
	maxFee := new(big.Int).Mul(gasPrice, new(big.Int).SetUint64(tx.GasLimit))
	need := new(big.Int).Add(maxFee, cpBig(tx.Value))
	if sdb.Balance(sender).Cmp(need) < 0 {
		return nil, fmt.Errorf("%w: %s needs %s wei", ErrInsufficientETH, sender, need)
	}

	wireData, err := tx.WireData()
	if err != nil {
		return nil, err
	}
	intrinsic := gas.TxBase + gas.CalldataGas(wireData)
	if intrinsic > tx.GasLimit {
		return nil, fmt.Errorf("%w: intrinsic %d > limit %d", ErrIntrinsicGas, intrinsic, tx.GasLimit)
	}

	txHash, err := tx.Hash(ch.cfg.ChainID)
	if err != nil {
		return nil, err
	}

	// Buy gas up front; refund the unused remainder afterwards.
	sdb.IncNonce(sender)
	if err := sdb.SubBalance(sender, maxFee); err != nil {
		return nil, err
	}

	meter := gas.NewMeter(tx.GasLimit)
	_ = meter.Charge(gas.CatIntrinsic, intrinsic) // checked above

	trace := &Trace{}
	snap := sdb.Snapshot()

	receipt := &Receipt{Trace: trace, TxHash: txHash}
	var execErr error
	if tx.Method == "" && tx.RawData == nil {
		// Plain value transfer.
		execErr = sdb.SubBalance(sender, tx.Value)
		if execErr == nil {
			sdb.AddBalance(tx.To, tx.Value)
		}
	} else {
		var appData []byte
		appData, execErr = tx.AppData()
		if execErr == nil {
			receipt.Return, execErr = ch.execute(execParams{
				sdb:       sdb,
				origin:    sender,
				caller:    sender,
				to:        tx.To,
				value:     tx.Value,
				appData:   appData,
				tokens:    tx.Tokens,
				meter:     meter,
				depth:     0,
				blockTime: blockTime,
				trace:     trace,
			})
		}
	}
	if execErr != nil {
		sdb.RevertToSnapshot(snap)
		receipt.Err = execErr
	}
	receipt.Status = execErr == nil
	receipt.GasUsed = meter.Used()
	receipt.GasByCategory = meter.ByCategory()
	receipt.FeeUSD = ch.cfg.Price.USD(meter.Used())

	// Refund unused gas.
	unused := new(big.Int).SetUint64(meter.Remaining())
	sdb.AddBalance(sender, unused.Mul(unused, gasPrice))
	return receipt, nil
}

// StaticCall executes a read-only call (like eth_call): the state is
// snapshotted and always reverted, and no block is mined. The Token
// Service's runtime-verification tools use this to simulate requested calls
// on a forked testnet.
func (ch *Chain) StaticCall(from, to types.Address, method string, args []any, tokens [][]byte) ([]any, *Receipt, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()

	appData, err := abi.Pack(method, args...)
	if err != nil {
		return nil, nil, err
	}
	meter := gas.NewMeter(ch.cfg.BlockGasLimit)
	trace := &Trace{}
	snap := ch.db.Snapshot()
	ret, execErr := ch.execute(execParams{
		sdb:       ch.db,
		origin:    from,
		caller:    from,
		to:        to,
		value:     new(big.Int),
		appData:   appData,
		tokens:    tokens,
		meter:     meter,
		depth:     0,
		blockTime: ch.cfg.Now(),
		trace:     trace,
	})
	ch.db.RevertToSnapshot(snap)
	receipt := &Receipt{
		Status:        execErr == nil,
		Err:           execErr,
		GasUsed:       meter.Used(),
		GasByCategory: meter.ByCategory(),
		FeeUSD:        ch.cfg.Price.USD(meter.Used()),
		Return:        ret,
		Trace:         trace,
	}
	return ret, receipt, execErr
}

// execParams carries the inputs of one call frame execution.
type execParams struct {
	sdb                stateStore
	origin, caller, to types.Address
	value              *big.Int
	appData            []byte
	tokens             [][]byte
	meter              *gas.Meter
	depth              int
	blockTime          time.Time
	trace              *Trace
}

// execute runs one call frame: resolves the contract and method, moves
// value, runs the handler, and reverts the frame's state changes on error.
// All state access goes through p.sdb; when that is the committed DB the
// chain mutex must be held.
func (ch *Chain) execute(p execParams) ([]any, error) {
	contract, ok := ch.contracts[p.to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrContractNotFound, p.to)
	}
	if len(p.appData) < abi.SelectorLength {
		return nil, fmt.Errorf("%w: calldata too short", ErrUnknownMethod)
	}
	var sel abi.Selector
	copy(sel[:], p.appData[:abi.SelectorLength])
	method, ok := contract.methods[sel]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no method with selector %s", ErrUnknownMethod, contract.name, sel.Hex())
	}
	value := cpBig(p.value)
	if value.Sign() > 0 && !method.Payable {
		return nil, fmt.Errorf("%w: %s.%s", ErrNotPayable, contract.name, method.Name)
	}

	args, err := abi.Decode(p.appData[abi.SelectorLength:], method.Params...)
	if err != nil {
		return nil, fmt.Errorf("decode args of %s.%s: %w", contract.name, method.Name, err)
	}

	snap := p.sdb.Snapshot()
	if value.Sign() > 0 {
		if err := p.sdb.SubBalance(p.caller, value); err != nil {
			return nil, err
		}
		p.sdb.AddBalance(p.to, value)
	}

	frame := &Call{
		chain:     ch,
		sdb:       p.sdb,
		origin:    p.origin,
		caller:    p.caller,
		self:      p.to,
		value:     value,
		contract:  contract,
		method:    method,
		args:      args,
		tokens:    p.tokens,
		appData:   p.appData,
		meter:     p.meter,
		depth:     p.depth,
		blockTime: p.blockTime,
		trace:     p.trace,
	}
	p.trace.add(TraceEvent{Kind: TraceCall, Depth: p.depth, From: p.caller, To: p.to, Method: method.Name, Amount: value})
	ret, err := method.Handler(frame)
	p.trace.add(TraceEvent{Kind: TraceReturn, Depth: p.depth, From: p.to, To: p.caller, Method: method.Name, Err: errString(err)})
	if err != nil {
		p.sdb.RevertToSnapshot(snap)
		return nil, err
	}
	return ret, nil
}

// mineLocked appends a block containing the given transaction. Block
// numbers continue from the previous head rather than len(blocks): after
// a durable recovery the block slice restarts at the snapshot height.
func (ch *Chain) mineLocked(txHash types.Hash, receipt *Receipt, at time.Time) {
	snap := ch.db.Snapshot()
	blk := &Block{
		Number:        ch.blocks[len(ch.blocks)-1].Number + 1,
		Time:          at,
		TxHash:        txHash,
		Receipt:       receipt,
		stateSnapshot: snap,
	}
	if receipt != nil {
		receipt.BlockNumber = blk.Number
	}
	ch.blocks = append(ch.blocks, blk)
}

// ErrBadReorg is returned for impossible reorg targets.
var ErrBadReorg = errors.New("evm: invalid reorg target")

// Reorg rewinds the chain to the given height, discarding later blocks and
// reverting their state transitions. It models the 51%-attack scenario of
// § VII-A: an adversary can erase transactions from history but — as the
// security tests demonstrate — still cannot forge tokens.
func (ch *Chain) Reorg(toHeight uint64) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	base := ch.blocks[0].Number
	head := ch.blocks[len(ch.blocks)-1].Number
	if toHeight < base || toHeight > head {
		return fmt.Errorf("%w: height %d, chain spans %d..%d", ErrBadReorg, toHeight, base, head)
	}
	// The target block's stateSnapshot captured the state right after it
	// was mined (the base block of a recovered chain carries snapshot 0,
	// the empty journal).
	idx := toHeight - base
	target := ch.blocks[idx]
	ch.db.RevertToSnapshot(target.stateSnapshot)
	for addr, height := range ch.deployedAt {
		if height > toHeight {
			delete(ch.contracts, addr)
			delete(ch.deployedAt, addr)
			delete(ch.deployerOf, addr)
		}
	}
	ch.blocks = ch.blocks[:idx+1]
	return nil
}
