package evm

import (
	"sync"
	"time"

	"repro/internal/state"
)

// Optimistic-parallel batch execution (Block-STM style).
//
// Every transaction executes speculatively against its own state.View
// over a shared multi-version memory: reads resolve to the
// highest-indexed speculative write below the reader's slice position
// (falling back to committed state) and are version-tracked; writes
// buffer in the view and publish on completion. After each wave the
// batch is validated in slice order — a transaction whose read-set was
// invalidated by an earlier transaction's write is a conflict and
// re-executes in the next wave. The transaction at the contiguous
// validated frontier only ever reads finalized versions, so every wave
// finalizes at least one transaction and the loop terminates in at most
// n waves. Once every position validates, write-sets are applied to the
// committed DB, blocks are mined, and commits persist — in slice order,
// making the whole batch serially equivalent: receipts are
// byte-identical to executing the slice one transaction at a time.
//
// Block timestamps are drawn once per transaction before the first wave
// (still in slice order), so re-executions see a stable clock; with the
// default wall clock they differ from serial execution's
// commit-interleaved timestamps by microseconds, and with the fixed
// clocks used in tests they are identical.

// txExec tracks one transaction's latest speculative execution.
type txExec struct {
	receipt  *Receipt
	err      error
	reads    *state.ReadSet
	writes   *state.WriteSet
	inc      int // incarnation: number of executions so far
	panicked any // recovered panic value of the latest execution, if any
}

// executeOptimistic runs the optimistic scheduler over txs and fills
// results. Called from Execute after the prevalidation phase, without the
// chain mutex held.
func (ch *Chain) executeOptimistic(txs []*Transaction, workers int, results []BatchResult) {
	ch.mu.Lock()
	defer ch.mu.Unlock()

	n := len(txs)
	times := make([]time.Time, n)
	for i := range times {
		times[i] = ch.cfg.Now()
	}

	mv := state.NewMultiVersion(ch.db)
	execs := make([]txExec, n)
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}

	parallelStart := time.Now()
	totalExecs, conflicts := 0, 0
	for final := 0; final < n; {
		ch.runWave(mv, txs, times, execs, pending, workers)
		totalExecs += len(pending)
		pending = pending[:0]

		// Validate in slice order from the frontier. Positions that stay
		// valid but sit above a conflict are left executed — they are
		// revalidated (cheaply) next round rather than re-executed.
		for i := final; i < n; i++ {
			e := &execs[i]
			if !mv.Validate(e.reads, i) {
				conflicts++
				pending = append(pending, i)
				continue
			}
			if e.panicked != nil {
				if i == final {
					// The frontier transaction read only finalized state,
					// so a serial execution panics identically: propagate.
					panic(e.panicked)
				}
				pending = append(pending, i)
				continue
			}
			if i == final && len(pending) == 0 {
				final = i + 1
			}
		}
	}
	ch.metrics.parallel.ObserveDuration(time.Since(parallelStart))

	// Commit phase: apply validated write-sets to the committed DB, mine,
	// and persist in slice order.
	commitStart := time.Now()
	for i := 0; i < n; i++ {
		e := &execs[i]
		if e.err != nil {
			results[i].Err = e.err
			ch.metrics.recordOutcome(txOutcome(nil, e.err))
			continue
		}
		ch.db.ApplyWrites(e.writes)
		ch.mineLocked(e.receipt.TxHash, e.receipt, times[i])
		results[i].Receipt = e.receipt
		if perr := ch.persistCommitLocked(txs[i], times[i]); perr != nil {
			results[i].Err = perr
		}
		ch.metrics.recordOutcome(txOutcome(e.receipt, results[i].Err))
	}
	ch.metrics.commit.ObserveDuration(time.Since(commitStart))
	ch.metrics.conflicts.Add(uint64(conflicts))
	ch.metrics.reexecs.Observe(float64(totalExecs - n))
}

// runWave executes the pending transaction indices in parallel, each
// against a fresh view, and publishes the resulting write-sets. A panic
// inside a handler is captured per transaction (and its write-set
// withdrawn) so the scheduler can decide whether the panic is
// deterministic — i.e. whether serial execution would hit it too.
func (ch *Chain) runWave(mv *state.MultiVersion, txs []*Transaction, times []time.Time, execs []txExec, pending []int, workers int) {
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for _, i := range pending {
			ch.execOne(mv, txs, times, execs, i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ch.execOne(mv, txs, times, execs, i)
			}
		}()
	}
	for _, i := range pending {
		work <- i
	}
	close(work)
	wg.Wait()
}

// execOne runs one speculative execution of txs[i] and publishes its
// write-set under the next incarnation number.
func (ch *Chain) execOne(mv *state.MultiVersion, txs []*Transaction, times []time.Time, execs []txExec, i int) {
	e := &execs[i]
	e.inc++
	view := state.NewView(mv, i)
	e.panicked = nil
	func() {
		defer func() {
			if p := recover(); p != nil {
				e.panicked = p
				e.receipt, e.err = nil, nil
			}
		}()
		e.receipt, e.err = ch.applyOn(view, txs[i], times[i])
	}()
	prev := e.writes
	if e.panicked != nil {
		// A partial write-set must never be visible to other
		// transactions: withdraw everything this position published.
		e.writes = nil
	} else {
		e.writes = view.Writes()
	}
	e.reads = view.Reads()
	mv.Publish(i, e.inc, e.writes, prev)
}
