package evm

import (
	"sync/atomic"

	"repro/internal/sigcache"
	"repro/internal/types"
)

// senderCache memoizes recovered transaction senders across transactions,
// keyed by signing digest ‖ signature. Distinct transactions never share a
// digest (the nonce is signed), but the same signed transaction is recovered
// repeatedly — wallet-side preview, batch prevalidation, commit — and
// mempool-style re-submissions replay exact bytes.
var senderCache = sigcache.New[types.Address](4096)

// senderCacheOn gates both the shared LRU and the per-transaction memo, so
// benchmarks can measure the uncached pipeline.
var senderCacheOn atomic.Bool

func init() { senderCacheOn.Store(true) }

// SetSenderCache enables or disables sender-recovery caching and returns
// the previous setting. Disabling purges the shared cache.
func SetSenderCache(on bool) bool {
	prev := senderCacheOn.Swap(on)
	if !on {
		senderCache.Purge()
	}
	return prev
}

// SenderCacheEnabled reports whether sender-recovery caching is active.
func SenderCacheEnabled() bool { return senderCacheOn.Load() }

// SenderCacheStats returns the cumulative hit/miss counts of the shared
// sender cache.
func SenderCacheStats() (hits, misses uint64) { return senderCache.Stats() }
