package evm_test

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/abi"
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

func testTx() *evm.Transaction {
	return &evm.Transaction{
		Nonce:    3,
		To:       types.Address{0x42},
		Value:    big.NewInt(1000),
		GasLimit: 100000,
		GasPrice: big.NewInt(2e9),
		Method:   "transfer",
		Args:     []any{types.Address{0xaa}, big.NewInt(7)},
	}
}

func TestSigHashSensitivity(t *testing.T) {
	base := testTx()
	baseHash, err := base.SigHash(1337)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*evm.Transaction){
		"nonce":    func(tx *evm.Transaction) { tx.Nonce++ },
		"to":       func(tx *evm.Transaction) { tx.To = types.Address{0x43} },
		"value":    func(tx *evm.Transaction) { tx.Value = big.NewInt(1001) },
		"gasLimit": func(tx *evm.Transaction) { tx.GasLimit++ },
		"gasPrice": func(tx *evm.Transaction) { tx.GasPrice = big.NewInt(3e9) },
		"method":   func(tx *evm.Transaction) { tx.Method = "transferX" },
		"args":     func(tx *evm.Transaction) { tx.Args = []any{types.Address{0xab}, big.NewInt(7)} },
		"tokens":   func(tx *evm.Transaction) { tx.Tokens = [][]byte{{1, 2, 3}} },
	}
	for name, mutate := range mutations {
		tx := testTx()
		mutate(tx)
		h, err := tx.SigHash(1337)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == baseHash {
			t.Errorf("mutating %s did not change the signing hash", name)
		}
	}

	// Chain id separates networks (EIP-155-style replay protection).
	h2, err := base.SigHash(1)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == baseHash {
		t.Error("different chain ids share a signing hash")
	}
}

func TestAppDataVsWireData(t *testing.T) {
	tx := testTx()
	tx.Tokens = [][]byte{bytes.Repeat([]byte{0x7b}, 10)}
	app, err := tx.AppData()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := tx.WireData()
	if err != nil {
		t.Fatal(err)
	}
	// msg.data (the token-binding payload) excludes the token blob; the
	// wire data covers it.
	if !bytes.HasPrefix(wire, app) {
		t.Error("wire data does not extend app data")
	}
	if len(wire) <= len(app) {
		t.Error("token blob not appended to wire data")
	}
	sel := abi.SelectorFor("transfer(address,uint256)")
	if !bytes.Equal(app[:4], sel[:]) {
		t.Errorf("app data selector = %x, want %x", app[:4], sel[:])
	}
}

func TestSenderRequiresSignature(t *testing.T) {
	tx := testTx()
	if _, err := tx.Sender(1337); err == nil {
		t.Error("unsigned transaction yielded a sender")
	}
	key := secp256k1.PrivateKeyFromSeed([]byte("tx sender"))
	if err := evm.SignTx(tx, key, 1337); err != nil {
		t.Fatal(err)
	}
	sender, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	if sender != key.Address() {
		t.Errorf("sender = %s, want %s", sender, key.Address())
	}
	// Signed for chain 1337 — recovering under another chain id yields a
	// different (useless) address, never the signer.
	other, err := tx.Sender(1)
	if err == nil && other == key.Address() {
		t.Error("cross-chain replay recovers the original sender")
	}
}

func TestTxHashCoversSignature(t *testing.T) {
	tx := testTx()
	key := secp256k1.PrivateKeyFromSeed([]byte("tx hash"))
	if err := evm.SignTx(tx, key, 1337); err != nil {
		t.Fatal(err)
	}
	h1, err := tx.Hash(1337)
	if err != nil {
		t.Fatal(err)
	}
	key2 := secp256k1.PrivateKeyFromSeed([]byte("tx hash 2"))
	if err := evm.SignTx(tx, key2, 1337); err != nil {
		t.Fatal(err)
	}
	h2, err := tx.Hash(1337)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("transaction hash ignores the signature")
	}
}
