package evm_test

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/types"
	"repro/internal/wallet"
)

// newCaller builds contract A that calls contract B (registered at the
// stored address) — exercising message calls and cross-contract reverts.
func newCaller() *evm.Contract {
	c := evm.NewContract("Caller")
	c.MustAddMethod(evm.Method{
		Name:       "setTarget",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			target, _ := call.Arg(0).(types.Address)
			return nil, call.Store(evm.SlotN(0), types.BytesToHash(target.Bytes()))
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "relayIncrement",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			word, err := call.Load(evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			target := types.BytesToAddress(word[:])
			return call.CallContract(target, "increment", nil, nil, call.Tokens())
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "relayExplodeCaught",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			// Writes locally, then calls a reverting method and swallows
			// the error: the callee's changes revert, ours persist.
			if err := call.StoreUint(gas.CatApp, evm.SlotN(1), 7); err != nil {
				return nil, err
			}
			word, err := call.Load(evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			target := types.BytesToAddress(word[:])
			if _, err := call.CallContract(target, "explode", nil, nil, nil); err == nil {
				return nil, errors.New("expected callee to revert")
			}
			return nil, nil
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "localMark",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(1))
			return []any{v}, err
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "recurse",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			depth, _ := call.Arg(0).(uint64)
			if depth == 0 {
				return []any{uint64(call.Depth())}, nil
			}
			return call.CallContract(call.Self(), "recurse", nil, []any{depth - 1}, nil)
		},
	})
	return c
}

// newSink is a contract whose fallback records that it ran.
func newSink(reject bool) *evm.Contract {
	c := evm.NewContract("Sink")
	c.SetFallback(func(call *evm.Call) ([]any, error) {
		if reject {
			return nil, errors.New("fallback rejects")
		}
		return nil, call.StoreUint(gas.CatApp, evm.SlotN(0), 1)
	})
	c.MustAddMethod(evm.Method{
		Name:       "ran",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			return []any{v == 1}, err
		},
	})
	c.MustAddMethod(evm.Method{
		Name:       "pay",
		Params:     []any{types.Address{}},
		Visibility: evm.Public,
		Payable:    true,
		Handler: func(call *evm.Call) ([]any, error) {
			to, _ := call.Arg(0).(types.Address)
			return nil, call.Transfer(to, call.Value())
		},
	})
	return c
}

func TestMessageCallAcrossContracts(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	counterAddr := env.Deploy(t, newCounter())
	callerAddr := env.Deploy(t, newCaller())

	env.MustCall(t, 1, callerAddr, "setTarget", wallet.CallOpts{}, counterAddr)
	r := env.MustCall(t, 1, callerAddr, "relayIncrement", wallet.CallOpts{})
	if got := r.Return[0].(uint64); got != 1 {
		t.Errorf("relayed increment returned %d", got)
	}
	// msg.sender seen by the counter is the caller contract; tx.origin is
	// the wallet. Verify via the trace.
	var sawInner bool
	for _, e := range r.Trace.Events {
		if e.Kind == evm.TraceCall && e.To == counterAddr {
			sawInner = true
			if e.From != callerAddr {
				t.Errorf("inner call from %s, want %s", e.From, callerAddr)
			}
			if e.Depth != 1 {
				t.Errorf("inner call depth = %d, want 1", e.Depth)
			}
		}
	}
	if !sawInner {
		t.Error("no inner call in trace")
	}
}

func TestCalleeRevertIsContained(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	counterAddr := env.Deploy(t, newCounter())
	callerAddr := env.Deploy(t, newCaller())
	env.MustCall(t, 1, callerAddr, "setTarget", wallet.CallOpts{}, counterAddr)

	env.MustCall(t, 1, callerAddr, "relayExplodeCaught", wallet.CallOpts{})

	// Caller's own write persisted.
	r := env.MustCall(t, 1, callerAddr, "localMark", wallet.CallOpts{})
	if v := r.Return[0].(uint64); v != 7 {
		t.Errorf("caller-side write = %d, want 7", v)
	}
	// Callee's write (999 before boom) reverted.
	r = env.MustCall(t, 1, counterAddr, "get", wallet.CallOpts{})
	if v := r.Return[0].(uint64); v != 0 {
		t.Errorf("callee state = %d, want 0", v)
	}
}

func TestRecursionDepth(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	addr := env.Deploy(t, newCaller())
	r := env.MustCall(t, 1, addr, "recurse", wallet.CallOpts{}, uint64(10))
	if got := r.Return[0].(uint64); got != 10 {
		t.Errorf("final depth = %d, want 10", got)
	}
}

func TestTransferTriggersFallback(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	sinkAddr := env.Deploy(t, newSink(false))
	payerAddr := env.Deploy(t, newSink(false))

	env.MustCall(t, 1, payerAddr, "pay", wallet.CallOpts{Value: big.NewInt(100)}, sinkAddr)

	if got := env.Chain.Balance(sinkAddr).Int64(); got != 100 {
		t.Errorf("sink balance = %d, want 100", got)
	}
	r := env.MustCall(t, 1, sinkAddr, "ran", wallet.CallOpts{})
	if ran := r.Return[0].(bool); !ran {
		t.Error("fallback did not run on transfer")
	}
}

func TestFallbackRejectionRevertsTransfer(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	rejector := env.Deploy(t, newSink(true))
	payer := env.Deploy(t, newSink(false))

	r := env.CallExpectRevert(t, 1, payer, "pay", wallet.CallOpts{Value: big.NewInt(100)}, rejector)
	if r.Err == nil {
		t.Fatal("no error recorded")
	}
	if got := env.Chain.Balance(rejector).Int64(); got != 0 {
		t.Errorf("rejector kept %d wei despite revert", got)
	}
}

func TestTransferToExternalAccount(t *testing.T) {
	env := evmtest.NewEnv(t, 2)
	payer := env.Deploy(t, newSink(false))
	dest := env.Wallets[1].Address()
	before := env.Chain.Balance(dest)
	env.MustCall(t, 0, payer, "pay", wallet.CallOpts{Value: big.NewInt(55)}, dest)
	if got := new(big.Int).Sub(env.Chain.Balance(dest), before); got.Int64() != 55 {
		t.Errorf("received %s, want 55", got)
	}
}

func TestSlotDerivation(t *testing.T) {
	// Mapping slots must differ per key and per base.
	a := evm.Slot(0, []byte("key1"))
	b := evm.Slot(0, []byte("key2"))
	c := evm.Slot(1, []byte("key1"))
	if a == b || a == c || b == c {
		t.Error("slot collisions")
	}
	if evm.SlotN(3) == evm.SlotN(4) {
		t.Error("SlotN collision")
	}
}

func TestVisibilityStrings(t *testing.T) {
	for v, want := range map[evm.Visibility]string{
		evm.External: "external",
		evm.Public:   "public",
		evm.Internal: "internal",
		evm.Private:  "private",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %s, want %s", v, v.String(), want)
		}
	}
	if evm.Internal.Dispatchable() || evm.Private.Dispatchable() {
		t.Error("internal/private must not be dispatchable")
	}
	if !evm.External.Dispatchable() || !evm.Public.Dispatchable() {
		t.Error("external/public must be dispatchable")
	}
}

func TestContractConstruction(t *testing.T) {
	c := evm.NewContract("X")
	err := c.AddMethod(evm.Method{Name: "f"})
	if err == nil {
		t.Error("method without handler accepted")
	}
	h := func(call *evm.Call) ([]any, error) { return nil, nil }
	if err := c.AddMethod(evm.Method{Name: "f", Handler: h}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(evm.Method{Name: "f", Handler: h}); !errors.Is(err, evm.ErrDuplicateMethod) {
		t.Errorf("duplicate err = %v", err)
	}
	m, ok := c.Method("f")
	if !ok || m.Signature() != "f()" {
		t.Errorf("method lookup: %v %v", m, ok)
	}
	c.SetMetadata("smacs.ts", "http://localhost:8546")
	if v, ok := c.Metadata("smacs.ts"); !ok || v != "http://localhost:8546" {
		t.Error("metadata round trip failed")
	}
}
