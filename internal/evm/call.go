package evm

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/abi"
	"repro/internal/gas"
	"repro/internal/keccak"
	"repro/internal/types"
)

// MaxCallDepth bounds message-call recursion, as on Ethereum.
const MaxCallDepth = 1024

// ErrMaxCallDepth is returned when a call chain exceeds MaxCallDepth.
var ErrMaxCallDepth = errors.New("evm: max call depth exceeded")

// Call is the execution context of one call frame. It models the EVM's
// transaction-context objects: Origin (tx.origin), Caller (msg.sender),
// Self (address(this)), Sig (msg.sig), Data (msg.data), and Value
// (msg.value). All storage and compute performed through it is gas-charged.
type Call struct {
	chain     *Chain
	sdb       stateStore
	origin    types.Address
	caller    types.Address
	self      types.Address
	value     *big.Int
	contract  *Contract
	method    *Method
	args      []any
	tokens    [][]byte
	appData   []byte
	meter     *gas.Meter
	depth     int
	blockTime time.Time
	trace     *Trace
}

// Origin returns tx.origin: the externally owned account that signed the
// top-level transaction.
func (c *Call) Origin() types.Address { return c.origin }

// Caller returns msg.sender for the current frame.
func (c *Call) Caller() types.Address { return c.caller }

// Self returns address(this).
func (c *Call) Self() types.Address { return c.self }

// Value returns msg.value (a copy).
func (c *Call) Value() *big.Int {
	if c.value == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(c.value)
}

// Args returns the decoded application arguments of the call.
func (c *Call) Args() []any { return c.args }

// Arg returns the i-th argument, or nil when out of range.
func (c *Call) Arg(i int) any {
	if i < 0 || i >= len(c.args) {
		return nil
	}
	return c.args[i]
}

// Tokens returns the SMACS token array carried by the transaction.
func (c *Call) Tokens() [][]byte { return c.tokens }

// Sig returns msg.sig, the 4-byte selector of the invoked method.
func (c *Call) Sig() abi.Selector { return c.method.selector }

// Data returns msg.data: the application calldata (selector ‖ encoded
// args), excluding the token array. See DESIGN.md, "calldata binding note".
func (c *Call) Data() []byte { return c.appData }

// MethodName returns the invoked method's bare name.
func (c *Call) MethodName() string { return c.method.Name }

// Depth returns the call depth (0 for the top-level frame).
func (c *Call) Depth() int { return c.depth }

// BlockTime returns the timestamp of the block executing the transaction
// (Solidity's block.timestamp / now).
func (c *Call) BlockTime() time.Time { return c.blockTime }

// GasUsed reports the transaction's gas consumption so far.
func (c *Call) GasUsed() uint64 { return c.meter.Used() }

// Charge consumes gas under an explicit accounting category. The SMACS
// verification preamble uses this to attribute costs to the
// Verify/Bitmap/Parse/Misc buckets of Tables II and III.
func (c *Call) Charge(cat gas.Category, amount uint64) error {
	return c.meter.Charge(cat, amount)
}

// UseGas consumes gas under the application category.
func (c *Call) UseGas(amount uint64) error {
	return c.meter.Charge(gas.CatApp, amount)
}

// Slot derives the storage slot of a mapping entry: keccak256(key ‖ base),
// following Solidity's storage layout.
func Slot(base uint64, key []byte) types.Hash {
	var baseWord [32]byte
	new(big.Int).SetUint64(base).FillBytes(baseWord[:])
	return types.Hash(keccak.Sum256Concat(key, baseWord[:]))
}

// SlotN returns the storage slot for a fixed variable index.
func SlotN(n uint64) types.Hash {
	var w [32]byte
	new(big.Int).SetUint64(n).FillBytes(w[:])
	return types.Hash(w)
}

// Load reads one of the contract's storage words, charging SLOAD gas to the
// application category.
func (c *Call) Load(slot types.Hash) (types.Hash, error) {
	return c.LoadAs(gas.CatApp, slot)
}

// LoadAs is Load with an explicit gas category.
func (c *Call) LoadAs(cat gas.Category, slot types.Hash) (types.Hash, error) {
	if err := c.meter.Charge(cat, gas.SLoad); err != nil {
		return types.Hash{}, err
	}
	word := c.sdb.GetState(c.self, slot)
	c.trace.add(TraceEvent{Kind: TraceSLoad, Depth: c.depth, From: c.self, To: c.self, Slot: slot, Word: word})
	return word, nil
}

// Store writes one of the contract's storage words, charging SSTORE gas
// (20000 for zero→nonzero, 5000 otherwise) to the application category.
func (c *Call) Store(slot, word types.Hash) error {
	return c.StoreAs(gas.CatApp, slot, word)
}

// StoreAs is Store with an explicit gas category.
func (c *Call) StoreAs(cat gas.Category, slot, word types.Hash) error {
	prev := c.sdb.GetState(c.self, slot)
	cost := gas.SStoreReset
	if prev.IsZero() && !word.IsZero() {
		cost = gas.SStoreSet
	}
	if err := c.meter.Charge(cat, cost); err != nil {
		return err
	}
	c.sdb.SetState(c.self, slot, word)
	c.trace.add(TraceEvent{Kind: TraceSStore, Depth: c.depth, From: c.self, To: c.self, Slot: slot, Word: word})
	return nil
}

// LoadUint / StoreUint are word helpers for counters and pointers.
func (c *Call) LoadUint(cat gas.Category, slot types.Hash) (uint64, error) {
	w, err := c.LoadAs(cat, slot)
	if err != nil {
		return 0, err
	}
	return new(big.Int).SetBytes(w[:]).Uint64(), nil
}

// StoreUint writes a uint64 into a storage word.
func (c *Call) StoreUint(cat gas.Category, slot types.Hash, v uint64) error {
	var w [32]byte
	new(big.Int).SetUint64(v).FillBytes(w[:])
	return c.StoreAs(cat, slot, types.Hash(w))
}

// BalanceOf reads an account balance (charged like the BALANCE opcode).
func (c *Call) BalanceOf(addr types.Address) (*big.Int, error) {
	if err := c.meter.Charge(gas.CatApp, 700); err != nil {
		return nil, err
	}
	return c.sdb.Balance(addr), nil
}

// CallContract performs a message call from this frame to another contract
// method, passing value, arguments, and the token array through. On handler
// error all state changes of the inner frame are reverted and the error is
// returned.
func (c *Call) CallContract(to types.Address, method string, value *big.Int, args []any, tokens [][]byte) ([]any, error) {
	if c.depth+1 > MaxCallDepth {
		return nil, ErrMaxCallDepth
	}
	if err := c.meter.Charge(gas.CatApp, gas.Call); err != nil {
		return nil, err
	}
	appData, err := abi.Pack(method, args...)
	if err != nil {
		return nil, err
	}
	return c.chain.execute(execParams{
		sdb:       c.sdb,
		origin:    c.origin,
		caller:    c.self,
		to:        to,
		value:     value,
		appData:   appData,
		tokens:    tokens,
		meter:     c.meter,
		depth:     c.depth + 1,
		blockTime: c.blockTime,
		trace:     c.trace,
	})
}

// Transfer sends value from the contract to an account. If the recipient is
// a contract, its fallback method runs — this models Solidity's
// `addr.call.value(amount)()` and is the re-entrancy vector of Fig. 7.
func (c *Call) Transfer(to types.Address, amount *big.Int) error {
	if c.depth+1 > MaxCallDepth {
		return ErrMaxCallDepth
	}
	cost := gas.Call
	if amount != nil && amount.Sign() > 0 {
		cost += gas.CallValue
		if !c.sdb.Exists(to) {
			cost += gas.NewAccount
		}
	}
	if err := c.meter.Charge(gas.CatApp, cost); err != nil {
		return err
	}
	c.trace.add(TraceEvent{Kind: TraceTransfer, Depth: c.depth, From: c.self, To: to, Amount: cpBig(amount)})
	if err := c.sdb.SubBalance(c.self, amount); err != nil {
		return err
	}
	c.sdb.AddBalance(to, amount)

	target, ok := c.chain.contracts[to]
	if !ok || target.fallback == nil {
		return nil
	}
	// Run the fallback in a fresh frame; its failure reverts the transfer.
	inner := &Call{
		chain:     c.chain,
		sdb:       c.sdb,
		origin:    c.origin,
		caller:    c.self,
		self:      to,
		value:     cpBig(amount),
		contract:  target,
		method:    &Method{Name: "", signature: "()"},
		tokens:    c.tokens,
		meter:     c.meter,
		depth:     c.depth + 1,
		blockTime: c.blockTime,
		trace:     c.trace,
	}
	c.trace.add(TraceEvent{Kind: TraceCall, Depth: inner.depth, From: c.self, To: to, Method: "(fallback)", Amount: cpBig(amount)})
	_, err := target.fallback(inner)
	c.trace.add(TraceEvent{Kind: TraceReturn, Depth: inner.depth, From: to, To: c.self, Method: "(fallback)", Err: errString(err)})
	if err != nil {
		return fmt.Errorf("fallback of %s: %w", to, err)
	}
	return nil
}

// Invoke calls another method of the same contract internally (no message
// call, no Call-opcode gas). Internal and private methods are reachable this
// way, matching Solidity's internal call semantics.
func (c *Call) Invoke(method string, args ...any) ([]any, error) {
	m, ok := c.contract.byName[method]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, c.contract.name, method)
	}
	appData, err := abi.Pack(method, args...)
	if err != nil {
		return nil, err
	}
	inner := &Call{
		chain:     c.chain,
		sdb:       c.sdb,
		origin:    c.origin,
		caller:    c.caller, // internal calls preserve msg.sender
		self:      c.self,
		value:     new(big.Int),
		contract:  c.contract,
		method:    m,
		args:      args,
		tokens:    c.tokens,
		appData:   appData,
		meter:     c.meter,
		depth:     c.depth,
		blockTime: c.blockTime,
		trace:     c.trace,
	}
	return m.Handler(inner)
}

func cpBig(v *big.Int) *big.Int {
	if v == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(v)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
