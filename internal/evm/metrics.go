package evm

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Metric names exported by the chain.
const (
	MetricTxsTotal           = "evm_txs_total"
	MetricPrevalidateSeconds = "evm_apply_batch_prevalidate_seconds"
	MetricCommitSeconds      = "evm_apply_batch_commit_seconds"
	MetricBatchSize          = "evm_apply_batch_size"
	MetricSenderCacheHits    = "evm_sender_cache_hits_total"
	MetricSenderCacheMisses  = "evm_sender_cache_misses_total"
	MetricExecConflicts      = "evm_exec_conflicts_total"
	MetricExecReexecutions   = "evm_exec_reexecutions"
	MetricExecParallelSecs   = "evm_exec_parallel_seconds"
)

// chainMetrics holds one Chain's instrumentation handles. Outcome
// counters are cached per label value so the commit path pays one
// sync.Map read, not a registry lookup, per transaction.
type chainMetrics struct {
	reg         *metrics.Registry
	prevalidate *metrics.Histogram
	commit      *metrics.Histogram
	batchSize   *metrics.Histogram
	conflicts   *metrics.Counter
	reexecs     *metrics.Histogram
	parallel    *metrics.Histogram
	outcomes    sync.Map // outcome label -> *metrics.Counter
}

func newChainMetrics(reg *metrics.Registry) *chainMetrics {
	m := &chainMetrics{
		reg: reg,
		prevalidate: reg.Histogram(MetricPrevalidateSeconds,
			"ApplyBatch phase 1: parallel sender recovery and token prevalidation, per batch.", nil),
		commit: reg.Histogram(MetricCommitSeconds,
			"ApplyBatch phase 2: serial state commit under the chain mutex, per batch.", nil),
		batchSize: reg.Histogram(MetricBatchSize,
			"Transactions per ApplyBatch call.", metrics.DefSizeBuckets),
		conflicts: reg.Counter(MetricExecConflicts,
			"Optimistic-scheduler validation failures: executions whose read-set was invalidated by an earlier transaction's write."),
		reexecs: reg.Histogram(MetricExecReexecutions,
			"Re-executions per optimistic batch (total executions minus batch size).", metrics.DefSizeBuckets),
		parallel: reg.Histogram(MetricExecParallelSecs,
			"Optimistic-scheduler parallel execute+validate phase, per batch.", nil),
	}
	// The recovery caches are process-wide; expose them as scrape-time
	// funcs so their pre-existing atomics are the single source of truth.
	reg.CounterFunc(MetricSenderCacheHits, "Shared sender-recovery cache hits.",
		func() uint64 { h, _ := SenderCacheStats(); return h })
	reg.CounterFunc(MetricSenderCacheMisses, "Shared sender-recovery cache misses.",
		func() uint64 { _, mi := SenderCacheStats(); return mi })
	return m
}

// recordOutcome counts one applied transaction under its outcome label.
func (m *chainMetrics) recordOutcome(outcome string) {
	if c, ok := m.outcomes.Load(outcome); ok {
		c.(*metrics.Counter).Inc()
		return
	}
	c := m.reg.Counter(MetricTxsTotal,
		"Transactions fed through Apply/ApplyBatch, by outcome.", metrics.L("outcome", outcome))
	m.outcomes.Store(outcome, c)
	c.Inc()
}

// revertClassifiers map a failed execution's revert error to an outcome
// label. The chain's own rejection reasons (nonce, balance, signature)
// are classified natively; layers above evm — the core token verifier —
// register theirs, because evm cannot import them. Copy-on-write like
// the validator list: registration never blocks the commit path.
var revertClassifiers atomic.Pointer[[]func(error) (string, bool)]

// RegisterRevertClassifier adds a revert-error classifier consulted (in
// registration order) when labeling reverted transactions. Classifiers
// must be registered before chains start applying transactions
// (typically from an init function) and must be safe for concurrent use.
func RegisterRevertClassifier(f func(error) (string, bool)) {
	for {
		old := revertClassifiers.Load()
		var next []func(error) (string, bool)
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, f)
		if revertClassifiers.CompareAndSwap(old, &next) {
			return
		}
	}
}

// txOutcome labels the result of one applyLocked call: "accepted",
// "rejected_*" for transactions that never executed, "reverted_*" for
// executed-and-failed ones.
func txOutcome(receipt *Receipt, err error) string {
	if err != nil {
		switch {
		case errors.Is(err, ErrNonceTooLow):
			return "rejected_nonce_too_low"
		case errors.Is(err, ErrNonceTooHigh):
			return "rejected_nonce_too_high"
		case errors.Is(err, ErrInsufficientETH):
			return "rejected_insufficient_balance"
		case errors.Is(err, ErrBadTxSignature):
			return "rejected_bad_signature"
		case errors.Is(err, ErrIntrinsicGas):
			return "rejected_intrinsic_gas"
		case errors.Is(err, ErrContractNotFound):
			return "rejected_no_contract"
		default:
			return "rejected_other"
		}
	}
	if receipt.Status {
		return "accepted"
	}
	if fs := revertClassifiers.Load(); fs != nil {
		for _, f := range *fs {
			if label, ok := f(receipt.Err); ok {
				return "reverted_" + label
			}
		}
	}
	return "reverted_other"
}
