package evm_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/evm"
	"repro/internal/evmtest"
	"repro/internal/gas"
	"repro/internal/metrics"
	"repro/internal/secp256k1"
	"repro/internal/types"
	"repro/internal/wallet"
)

// The optimistic scheduler's contract is serial equivalence: for any
// batch — conflict-free, conflict-saturated, or poisoned with rejects and
// reverts — receipts, state, block heights, and outcome metrics must be
// identical to executing the slice one transaction at a time. The
// property test below drives seeded random conflict-heavy batches through
// a serial oracle chain and an optimistic chain and diffs everything.

const equivalenceSenders = 6

// equivPair is a serial-oracle chain and an optimistic chain built
// identically: same fixed clock instant, same funded senders, same
// deployed counter contract, separate metrics registries.
type equivPair struct {
	serial, optimistic *evm.Chain
	serialReg, optReg  *metrics.Registry
	contract           types.Address
	keys               []*secp256k1.PrivateKey
}

func newEquivPair(t testing.TB) *equivPair {
	t.Helper()
	p := &equivPair{
		serialReg: metrics.NewRegistry(),
		optReg:    metrics.NewRegistry(),
	}
	clock := evmtest.NewClock()
	build := func(reg *metrics.Registry) *evm.Chain {
		cfg := evm.DefaultConfig()
		cfg.Now = clock.Now
		cfg.Metrics = reg
		return evm.NewChain(cfg)
	}
	p.serial = build(p.serialReg)
	p.optimistic = build(p.optReg)

	for i := 0; i < equivalenceSenders; i++ {
		key := secp256k1.PrivateKeyFromSeed([]byte{byte('e'), byte(i)})
		p.keys = append(p.keys, key)
		p.serial.Fund(key.Address(), evmtest.Ether(1000))
		p.optimistic.Fund(key.Address(), evmtest.Ether(1000))
	}
	owner := p.keys[0].Address()
	addrS, _, err := p.serial.Deploy(owner, newCounter())
	if err != nil {
		t.Fatal(err)
	}
	addrO, _, err := p.optimistic.Deploy(owner, newCounter())
	if err != nil {
		t.Fatal(err)
	}
	if addrS != addrO {
		t.Fatalf("contract addresses diverge before any transaction: %s vs %s", addrS, addrO)
	}
	p.contract = addrS
	return p
}

// buildBatch generates one seeded conflict-heavy batch: every contract
// call hits the counter's hot slot 0, every sender appears several times
// (nonce chains), a fixed EOA receives everyone's transfers (hot
// account), and a sprinkle of poisoned transactions (bad nonces,
// overdrafts, missing signatures) exercises the rejection paths.
func (p *equivPair) buildBatch(t testing.TB, rng *rand.Rand) []*evm.Transaction {
	t.Helper()
	hotEOA := types.BytesToAddress([]byte("hot destination"))
	nonces := make([]uint64, len(p.keys))
	for i, key := range p.keys {
		nonces[i] = p.serial.NonceOf(key.Address())
	}

	n := 8 + rng.Intn(9) // 8..16
	txs := make([]*evm.Transaction, 0, n)
	for len(txs) < n {
		s := rng.Intn(len(p.keys))
		tx := &evm.Transaction{
			Nonce:    nonces[s],
			To:       p.contract,
			Value:    new(big.Int),
			GasLimit: wallet.DefaultGasLimit,
			GasPrice: p.serial.Config().Price.Wei(1),
		}
		sign, consume := true, true
		switch roll := rng.Intn(100); {
		case roll < 40: // hot-slot counter bump
			tx.Method = "increment"
		case roll < 55: // nested invokes on the same hot slot
			tx.Method = "bumpBy"
			tx.Args = []any{uint64(1 + rng.Intn(3))}
		case roll < 65: // revert after a store: the write must vanish
			tx.Method = "explode"
		case roll < 75: // payable: moves value into the contract account
			tx.Method = "deposit"
			tx.Value = big.NewInt(int64(1 + rng.Intn(100)))
		case roll < 85: // plain transfer, everyone credits the same EOA
			tx.To = hotEOA
			tx.Method = ""
			tx.Value = big.NewInt(int64(1 + rng.Intn(1000)))
		case roll < 90: // nonce too high: rejected, nonce not consumed
			tx.Method = "increment"
			tx.Nonce = nonces[s] + 3 + uint64(rng.Intn(4))
			consume = false
		case roll < 95: // overdraft: rejected before executing
			tx.To = hotEOA
			tx.Method = ""
			tx.Value = new(big.Int).Add(evmtest.Ether(2000), big.NewInt(1))
			consume = false
		default: // unsigned: rejected with ErrBadTxSignature
			tx.Method = "increment"
			sign, consume = false, false
		}
		if sign {
			if err := evm.SignTx(tx, p.keys[s], p.serial.Config().ChainID); err != nil {
				t.Fatal(err)
			}
		}
		if consume {
			nonces[s]++
		}
		txs = append(txs, tx)
	}
	return txs
}

// resultFingerprint flattens a BatchResult into a comparable string
// covering every receipt field (including the execution trace — traces
// carry no wall-clock data, so they must match event for event).
func resultFingerprint(res evm.BatchResult) string {
	var b strings.Builder
	if res.Err != nil {
		fmt.Fprintf(&b, "err=%v;", res.Err)
	}
	r := res.Receipt
	if r == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "status=%v gas=%d fee=%.9f block=%d hash=%s return=%v",
		r.Status, r.GasUsed, r.FeeUSD, r.BlockNumber, r.TxHash, r.Return)
	if r.Err != nil {
		fmt.Fprintf(&b, " rerr=%v", r.Err)
	}
	cats := make([]string, 0, len(r.GasByCategory))
	for c, g := range r.GasByCategory {
		cats = append(cats, fmt.Sprintf("%v=%d", c, g))
	}
	sort.Strings(cats)
	fmt.Fprintf(&b, " cats=%v", cats)
	if r.Trace != nil {
		for _, ev := range r.Trace.Events {
			fmt.Fprintf(&b, "\n  %+v", ev)
		}
	}
	return b.String()
}

// txsTotalLines extracts the evm_txs_total samples from a registry's
// Prometheus rendering (outcome counters must match across schedulers;
// timing histograms legitimately differ).
func txsTotalLines(t testing.TB, reg *metrics.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, evm.MetricTxsTotal+"{") {
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// assertChainsEquivalent diffs the committed world state, heights, and
// outcome counters of the pair.
func (p *equivPair) assertChainsEquivalent(t testing.TB, label string) {
	t.Helper()
	ds, err := p.serial.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	do, err := p.optimistic.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if ds != do {
		t.Fatalf("%s: state digests diverge: serial %s, optimistic %s", label, ds, do)
	}
	if hs, ho := p.serial.Height(), p.optimistic.Height(); hs != ho {
		t.Fatalf("%s: heights diverge: serial %d, optimistic %d", label, hs, ho)
	}
	if ls, lo := txsTotalLines(t, p.serialReg), txsTotalLines(t, p.optReg); ls != lo {
		t.Fatalf("%s: outcome counters diverge:\nserial:\n%s\noptimistic:\n%s", label, ls, lo)
	}
}

func equivalenceIterations() int {
	if raceEnabled {
		return 200 // the race scheduler is ~10× slower; keep CI bounded
	}
	return 1000
}

// TestOptimisticSerialEquivalenceProperty is the headline property test:
// 1000 seeded iterations (200 under -race) of conflict-heavy batches,
// each executed on a serial oracle and an optimistic 4-worker chain, with
// receipts compared field-by-field and state/height/metrics diffed after
// every batch.
func TestOptimisticSerialEquivalenceProperty(t *testing.T) {
	iterations := equivalenceIterations()
	if testing.Short() {
		iterations = 50
	}
	// A handful of long-lived pairs keeps per-iteration cost at one batch
	// (not one chain construction) while still resetting state often
	// enough that early-iteration bugs do not hide behind deep history.
	const pairLifetime = 100
	var p *equivPair
	for iter := 0; iter < iterations; iter++ {
		if iter%pairLifetime == 0 {
			p = newEquivPair(t)
		}
		rng := rand.New(rand.NewSource(int64(0xC0FFEE + iter)))
		txs := p.buildBatch(t, rng)

		serialRes := p.serial.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerSerial})
		workers := 2 + rng.Intn(3) // 2..4
		optRes := p.optimistic.Execute(txs, evm.ExecOptions{
			Scheduler: evm.SchedulerOptimistic,
			Workers:   workers,
		})

		for i := range txs {
			sf, of := resultFingerprint(serialRes[i]), resultFingerprint(optRes[i])
			if sf != of {
				t.Fatalf("iter %d tx %d (workers=%d): receipts diverge\nserial:     %s\noptimistic: %s",
					iter, i, workers, sf, of)
			}
		}
		p.assertChainsEquivalent(t, fmt.Sprintf("iter %d", iter))
	}
}

// TestOptimisticSchedulerRaceStress hammers one chain with large
// conflict-saturated optimistic batches at high worker counts — its value
// is under -race, where any unsynchronized access between scheduler
// workers, the multi-version memory, and the commit phase trips the
// detector. A serial oracle cross-checks the final state.
func TestOptimisticSchedulerRaceStress(t *testing.T) {
	p := newEquivPair(t)
	rng := rand.New(rand.NewSource(0xBADC0DE))
	batches := 20
	if testing.Short() {
		batches = 5
	}
	for b := 0; b < batches; b++ {
		// All six senders pile onto the hot slot: 64 txs, ~10 per sender,
		// guaranteeing dense read/write conflicts and nonce chains.
		var txs []*evm.Transaction
		nonces := make([]uint64, len(p.keys))
		for i, key := range p.keys {
			nonces[i] = p.serial.NonceOf(key.Address())
		}
		for len(txs) < 64 {
			s := rng.Intn(len(p.keys))
			tx := &evm.Transaction{
				Nonce:    nonces[s],
				To:       p.contract,
				Value:    new(big.Int),
				GasLimit: wallet.DefaultGasLimit,
				GasPrice: p.serial.Config().Price.Wei(1),
				Method:   "increment",
			}
			if err := evm.SignTx(tx, p.keys[s], p.serial.Config().ChainID); err != nil {
				t.Fatal(err)
			}
			nonces[s]++
			txs = append(txs, tx)
		}
		serialRes := p.serial.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerSerial})
		optRes := p.optimistic.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerOptimistic, Workers: 8})
		for i := range txs {
			if sf, of := resultFingerprint(serialRes[i]), resultFingerprint(optRes[i]); sf != of {
				t.Fatalf("batch %d tx %d: receipts diverge\nserial:     %s\noptimistic: %s", b, i, sf, of)
			}
		}
	}
	p.assertChainsEquivalent(t, "after stress")
}

// TestOptimisticConflictMetrics pins the new observability series: a
// conflict-saturated batch must count at least one conflict and register
// re-executions, and all series must render in the Prometheus output
// even when zero.
func TestOptimisticConflictMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := evmtest.NewClock()
	cfg := evm.DefaultConfig()
	cfg.Now = clock.Now
	cfg.Metrics = reg
	ch := evm.NewChain(cfg)

	const parties = 6
	keys := make([]*secp256k1.PrivateKey, parties)
	for i := range keys {
		keys[i] = secp256k1.PrivateKeyFromSeed([]byte{byte('c'), byte(i)})
		ch.Fund(keys[i].Address(), evmtest.Ether(100))
	}

	// The handler loads the shared slot, then blocks on a one-shot
	// barrier until every first-wave execution has loaded it too. All
	// parties therefore observe the base version before anyone publishes,
	// which makes exactly parties−1 first-wave validation failures a
	// certainty instead of a scheduling accident. Re-executions (arriving
	// after the barrier released) pass straight through.
	var (
		barrierMu sync.Mutex
		arrived   int
		release   = make(chan struct{})
	)
	contract := evm.NewContract("Collider")
	contract.MustAddMethod(evm.Method{
		Name:       "collide",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			v, err := call.LoadUint(gas.CatApp, evm.SlotN(0))
			if err != nil {
				return nil, err
			}
			barrierMu.Lock()
			if arrived < parties {
				arrived++
				if arrived == parties {
					close(release)
				}
			}
			barrierMu.Unlock()
			<-release
			if err := call.StoreUint(gas.CatApp, evm.SlotN(0), v+1); err != nil {
				return nil, err
			}
			return nil, nil
		},
	})
	addr, _, err := ch.Deploy(keys[0].Address(), contract)
	if err != nil {
		t.Fatal(err)
	}

	txs := make([]*evm.Transaction, parties)
	for i, key := range keys {
		tx := &evm.Transaction{
			Nonce:    ch.NonceOf(key.Address()),
			To:       addr,
			Value:    new(big.Int),
			GasLimit: wallet.DefaultGasLimit,
			GasPrice: ch.Config().Price.Wei(1),
			Method:   "collide",
		}
		if err := evm.SignTx(tx, key, ch.Config().ChainID); err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	for i, res := range ch.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerOptimistic, Workers: parties}) {
		if res.Err != nil || !res.Receipt.Status {
			t.Fatalf("tx %d failed: %v / %+v", i, res.Err, res.Receipt)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		evm.MetricExecConflicts,
		evm.MetricExecReexecutions,
		evm.MetricExecParallelSecs,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("series %s missing from Prometheus rendering", series)
		}
	}
	var conflicts float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, evm.MetricExecConflicts+" ") {
			fmt.Sscanf(line, evm.MetricExecConflicts+" %f", &conflicts)
		}
	}
	if conflicts < 1 {
		t.Errorf("conflicts = %v, want ≥ 1 for a chained-nonce batch", conflicts)
	}
}

// TestOptimisticTimestampsAreSliceOrdered documents the timestamp
// contract: with a fixed clock the optimistic scheduler's block times are
// identical to serial execution's.
func TestOptimisticTimestampsAreSliceOrdered(t *testing.T) {
	p := newEquivPair(t)
	rng := rand.New(rand.NewSource(7))
	txs := p.buildBatch(t, rng)
	p.serial.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerSerial})
	p.optimistic.Execute(txs, evm.ExecOptions{Scheduler: evm.SchedulerOptimistic, Workers: 4})
	hs := p.serial.Height()
	for n := uint64(1); n <= hs; n++ {
		bs, ok1 := p.serial.BlockByNumber(n)
		bo, ok2 := p.optimistic.BlockByNumber(n)
		if !ok1 || !ok2 {
			t.Fatalf("block %d missing (serial=%v optimistic=%v)", n, ok1, ok2)
		}
		if !bs.Time.Equal(bo.Time) {
			t.Errorf("block %d: times diverge: %v vs %v", n, bs.Time, bo.Time)
		}
	}
}
