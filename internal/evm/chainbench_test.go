package evm_test

import (
	"math/big"
	"testing"

	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// benchChain builds a funded chain plus b.N pre-signed increment calls
// (signing happens outside the measured interval).
func benchChain(b *testing.B) (*evm.Chain, []*evm.Transaction) {
	b.Helper()
	// Successive chain benchmarks re-sign byte-identical transactions
	// (same key, nonces, and CREATE address), so drain the shared sender
	// cache for an honest cold-start measurement.
	evm.SetSenderCache(false)
	evm.SetSenderCache(true)
	chain := evm.NewChain(evm.DefaultConfig())
	key := secp256k1.PrivateKeyFromSeed([]byte("chain bench"))
	chain.Fund(key.Address(), new(big.Int).Mul(big.NewInt(1e9), big.NewInt(1e18)))
	creator := secp256k1.PrivateKeyFromSeed([]byte("chain bench owner")).Address()
	addr, _, err := chain.Deploy(creator, newCounter())
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]*evm.Transaction, b.N)
	for i := range txs {
		txs[i] = buildIncrement(b, chain, key, addr, uint64(i))
	}
	return chain, txs
}

func BenchmarkChainApply(b *testing.B) {
	chain, txs := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for _, tx := range txs {
		r, err := chain.Apply(tx)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Status {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkChainApplyBatch(b *testing.B) {
	chain, txs := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for _, res := range chain.ApplyBatch(txs, evm.BatchOptions{Workers: 4}) {
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkSenderRecovery(b *testing.B) {
	// One transaction recovered repeatedly: the memo path (cached) against
	// the full ecrecover path (uncached).
	tx := &evm.Transaction{Nonce: 1, To: types.Address{0x42}, Value: big.NewInt(1),
		GasLimit: 100000, GasPrice: big.NewInt(1e9), Method: "transfer",
		Args: []any{types.Address{0xaa}, big.NewInt(7)}}
	if err := evm.SignTx(tx, secp256k1.PrivateKeyFromSeed([]byte("bench sender")), 1337); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"cached", true}, {"uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := evm.SetSenderCache(mode.cached)
			defer evm.SetSenderCache(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tx.Sender(1337); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
