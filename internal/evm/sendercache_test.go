package evm_test

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

func signedTestTx(t *testing.T, seed string) *evm.Transaction {
	t.Helper()
	tx := &evm.Transaction{
		Nonce:    1,
		To:       types.Address{0x42},
		Value:    big.NewInt(10),
		GasLimit: 100000,
		GasPrice: big.NewInt(1e9),
		Method:   "transfer",
		Args:     []any{types.Address{0xaa}, big.NewInt(7)},
	}
	if err := evm.SignTx(tx, secp256k1.PrivateKeyFromSeed([]byte(seed)), 1337); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestSenderMemoizedAcrossCalls(t *testing.T) {
	tx := signedTestTx(t, "memo sender")
	first, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := evm.SenderCacheStats()
	// Repeated calls hit the per-transaction memo: same address, no new
	// traffic on the shared cache.
	for i := 0; i < 3; i++ {
		again, err := tx.Sender(1337)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("memoized sender = %s, want %s", again, first)
		}
	}
	hits1, misses1 := evm.SenderCacheStats()
	if hits1 != hits0 || misses1 != misses0 {
		t.Errorf("memo path touched the shared cache: hits %d→%d misses %d→%d",
			hits0, hits1, misses0, misses1)
	}
}

func TestSenderSharedCacheAcrossTransactions(t *testing.T) {
	// A byte-identical re-submission (fresh Transaction value, same signed
	// content) must hit the shared LRU instead of redoing ecrecover.
	tx1 := signedTestTx(t, "shared sender")
	want, err := tx1.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := evm.SenderCacheStats()
	tx2 := signedTestTx(t, "shared sender")
	got, err := tx2.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sender = %s, want %s", got, want)
	}
	hits1, _ := evm.SenderCacheStats()
	if hits1 != hits0+1 {
		t.Errorf("replayed transaction missed the shared cache (hits %d→%d)", hits0, hits1)
	}
}

func TestReplacedSignatureInvalidatesMemo(t *testing.T) {
	// Re-signing the same payload with a different key keeps the digest but
	// changes the signature — the memo must not serve the stale sender.
	tx := signedTestTx(t, "key one")
	first, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	key2 := secp256k1.PrivateKeyFromSeed([]byte("key two"))
	if err := evm.SignTx(tx, key2, 1337); err != nil {
		t.Fatal(err)
	}
	second, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Error("memo served the previous signer after re-signing")
	}
	if second != key2.Address() {
		t.Errorf("sender = %s, want %s", second, key2.Address())
	}
}

func TestSenderCacheToggle(t *testing.T) {
	prev := evm.SetSenderCache(false)
	defer evm.SetSenderCache(prev)
	if evm.SenderCacheEnabled() {
		t.Fatal("cache still enabled after SetSenderCache(false)")
	}
	tx := signedTestTx(t, "uncached sender")
	a1, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tx.Sender(1337)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("uncached path is not deterministic")
	}
}

func TestSenderOutOfRangeScalarsError(t *testing.T) {
	// Scalars Signature.Bytes cannot serialize (negative, > 2^256) must come
	// back as ErrBadTxSignature on the cached path, exactly like the
	// uncached one — not as a FillBytes panic while building the cache key.
	huge := new(big.Int).Lsh(big.NewInt(1), 300)
	for name, mutate := range map[string]func(*evm.Transaction){
		"negative r": func(tx *evm.Transaction) { tx.Sig.R = big.NewInt(-1) },
		"huge r":     func(tx *evm.Transaction) { tx.Sig.R = huge },
		"huge s":     func(tx *evm.Transaction) { tx.Sig.S = huge },
	} {
		tx := signedTestTx(t, "bad scalars "+name)
		mutate(tx)
		if _, err := tx.Sender(1337); !errors.Is(err, evm.ErrBadTxSignature) {
			t.Errorf("%s: err = %v, want ErrBadTxSignature", name, err)
		}
	}
}
