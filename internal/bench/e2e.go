package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/ts"
	"repro/internal/ts/replica"
	"repro/internal/ts/ring"
	"repro/internal/tshttp"
	"repro/internal/types"
)

// E2EConfig parameterizes the end-to-end scenario harness.
type E2EConfig struct {
	// Scenarios restricts the run (nil = every profile of ScenarioNames).
	Scenarios []string `json:"scenarios,omitempty"`
	// Smoke selects the small deterministic sizing the CI envelope pins.
	Smoke bool `json:"smoke"`
	// Dir is where the durable scenario keeps its file-backed stores
	// (empty: a fresh temp dir, removed afterwards).
	Dir string `json:"dir,omitempty"`
	// FsyncBatch is the group-commit batch of the durable scenario's file
	// stores (0: the store default).
	FsyncBatch int `json:"fsyncBatch,omitempty"`
	// OnRow, when non-nil, observes every completed scenario row in run
	// order; smacs-bench uses it to flush partial results on SIGINT.
	OnRow func(E2ERow) `json:"-"`
	// Tracer, when non-nil, receives per-operation pipeline spans
	// (token-acquisition round-trip, submit-to-commit) keyed by
	// "<scenario>/<sender>#<op>"; smacs-bench -trace dumps it as JSON.
	Tracer *metrics.Tracer `json:"-"`
	// ChaosSeed varies the fault timing of chaos scenarios: the victim
	// replica and the inject/heal progress thresholds derive from it, so
	// CI can sweep timings while any single run stays reproducible. The
	// correctness counts must be seed-independent — that is the point.
	ChaosSeed int64 `json:"chaosSeed,omitempty"`
	// Scheduler, when non-empty, overrides every scenario's Execute
	// scheduler ("serial", "prevalidate", "optimistic"). Correctness
	// counts are scheduler-independent, so the same envelope pins all
	// three.
	Scheduler string `json:"scheduler,omitempty"`
}

// E2ECounts are the correctness counts of one scenario run. Every field is
// deterministic for a given ScenarioConfig, so the whole struct is compared
// exactly against the CI envelope; throughput and latency live in E2ERow
// and are advisory-only.
type E2ECounts struct {
	// TokenRequests is the number of request slots clients submitted.
	TokenRequests int `json:"tokenRequests"`
	// TokensIssued / TokensDenied are the client-observed outcomes.
	TokensIssued int `json:"tokensIssued"`
	TokensDenied int `json:"tokensDenied"`
	// TSIssued / TSRejected are the server-reported stats (GET /v1/stats),
	// summed over every Token Service frontend the scenario ran; they must
	// match the client-observed counts.
	TSIssued   int `json:"tsIssued"`
	TSRejected int `json:"tsRejected"`
	// TxSubmitted / TxAccepted / TxRejected tally the guarded transactions
	// fed through Chain.ApplyBatch. The first use of a replayed one-time
	// token is legitimate and counts as accepted.
	TxSubmitted int `json:"txSubmitted"`
	TxAccepted  int `json:"txAccepted"`
	TxRejected  int `json:"txRejected"`
	// DupOneTimeIndexes counts one-time counter indexes observed on more
	// than one issued token across the whole run — every incarnation,
	// every frontend. It must be zero: a duplicate means the replicated
	// counter handed the same index out twice, the exact double-spend
	// window the quorum protocol exists to close.
	DupOneTimeIndexes int `json:"dupOneTimeIndexes"`
	// ReadsOK / ReadsFailed tally token-guarded static calls.
	ReadsOK     int `json:"readsOK"`
	ReadsFailed int `json:"readsFailed"`
	// AdvAccepted counts adversarial transactions (tampered, replayed,
	// expired) that the chain accepted — it must be zero.
	AdvAccepted int `json:"adversarialAccepted"`
	// RejTampered / RejReplayed / RejExpired count adversarial
	// transactions rejected with exactly the expected reason
	// (ErrBadTokenSig / ErrTokenUsed / ErrTokenExpired).
	RejTampered int `json:"rejectedTampered"`
	RejReplayed int `json:"rejectedReplayed"`
	RejExpired  int `json:"rejectedExpired"`
}

// StageLatency summarizes one pipeline stage's latency histogram.
// Percentiles are nearest-rank over fixed buckets (capped at the observed
// maximum), so they are advisory like every latency number here.
type StageLatency struct {
	Count     uint64  `json:"count"`
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`
	MaxMillis float64 `json:"maxMillis"`
}

// E2ERow is one scenario's measurement: exact correctness counts plus
// advisory throughput and end-to-end latency percentiles. Latency is
// measured per operation from the start of its token-acquisition
// round-trip to the commit of its transaction (or completion of its
// static call), and sourced from the scenario's isolated metrics
// registry — the same histograms GET /metrics would expose.
type E2ERow struct {
	Scenario     string  `json:"scenario"`
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"opsPerClient"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokensPerSec"`
	TxPerSec     float64 `json:"txPerSec"`
	P50Millis    float64 `json:"p50Millis"`
	P95Millis    float64 `json:"p95Millis"`
	P99Millis    float64 `json:"p99Millis"`

	// Stages breaks the pipeline down: "issue" (TS-side issuance),
	// "http_tokens" (POST /v1/tokens service time), "prevalidate" and
	// "commit" (ApplyBatch phases, per batch), "e2e" (per operation).
	Stages map[string]StageLatency `json:"stages,omitempty"`
	// ChaosFaultInjected reports that the scenario's replica fault
	// actually fired (chaos scenarios only) — a guard against a run so
	// fast the fault scheduler never got to act, which would make the
	// pinned counts vacuous.
	ChaosFaultInjected bool `json:"chaosFaultInjected,omitempty"`
	// SenderCacheHitRate / TokenCacheHitRate are the process-wide
	// recovery caches' hit fractions over this scenario's traffic
	// (measured as before/after deltas; 0 when the scenario made no
	// lookups).
	SenderCacheHitRate float64 `json:"senderCacheHitRate"`
	TokenCacheHitRate  float64 `json:"tokenCacheHitRate"`

	Counts E2ECounts `json:"counts"`
}

// E2EResult is the full harness run.
type E2EResult struct {
	Config E2EConfig `json:"config"`
	Rows   []E2ERow  `json:"rows"`
}

// E2E runs the end-to-end scenario harness: for every selected scenario it
// stands up a real Token Service over a loopback HTTP listener, drives the
// configured wallet clients through tshttp.Client.RequestTokens, feeds the
// signed guarded transactions into Chain.ApplyBatch (with the parallel
// prevalidation prehook), and tallies exact accept/reject counts alongside
// throughput and latency.
func E2E(cfg E2EConfig) (*E2EResult, error) {
	scenarios, err := ScenariosFor(cfg.Scenarios, cfg.Smoke)
	if err != nil {
		return nil, err
	}
	if _, err := ParseScheduler(cfg.Scheduler); err != nil {
		return nil, err
	}
	res := &E2EResult{Config: cfg}
	for _, sc := range scenarios {
		if cfg.Scheduler != "" {
			sc.Scheduler = cfg.Scheduler
		}
		var row E2ERow
		if sc.Durable {
			row, err = runDurable(sc, cfg)
		} else {
			row, err = runScenario(sc, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("e2e %s: %w", sc.Name, err)
		}
		res.Rows = append(res.Rows, row)
		if cfg.OnRow != nil {
			cfg.OnRow(row)
		}
	}
	return res, nil
}

// opClass labels an operation through the pipeline so its outcome can be
// classified exactly.
type opClass int

const (
	opWrite opClass = iota
	opTampered
	opReplayFirst // the legitimate first use of a to-be-replayed token
	opReplay      // the replayed duplicate — must be rejected
	opExpired
)

// e2eOp is one in-flight guarded transaction with its end-to-end start
// time (the beginning of its token-acquisition round-trip). id is empty
// unless a Tracer is attached.
type e2eOp struct {
	class opClass
	tx    *evm.Transaction
	start time.Time
	id    string
}

// e2eAgg accumulates counts from concurrent clients and the batch
// submitter; end-to-end latency goes straight into a registry histogram,
// which finishRow later summarizes.
type e2eAgg struct {
	mu     sync.Mutex
	counts E2ECounts
	opLat  *metrics.Histogram
	// oneTime tracks every one-time counter index seen on an issued
	// token; a repeat increments DupOneTimeIndexes. The map lives on the
	// aggregate (not the env) so it spans every frontend and — for the
	// durable and chaos scenarios — every incarnation of the service.
	oneTime map[int64]bool
}

// e2eOpSeconds is the end-to-end operation latency series of the
// scenario registry.
const e2eOpSeconds = "e2e_op_seconds"

func newE2EAgg(reg *metrics.Registry) *e2eAgg {
	return &e2eAgg{
		opLat: reg.Histogram(e2eOpSeconds,
			"End-to-end operation latency: token acquisition through commit.", nil),
		oneTime: make(map[int64]bool),
	}
}

// addResults tallies one batch round-trip's outcomes and audits the
// one-time indexes of the issued tokens for duplicates.
func (a *e2eAgg) addResults(requests int, res []ts.Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts.TokenRequests += requests
	for _, r := range res {
		if r.Err != nil {
			a.counts.TokensDenied++
			continue
		}
		a.counts.TokensIssued++
		if !r.Token.OneTime() {
			continue
		}
		if a.oneTime[r.Token.Index] {
			a.counts.DupOneTimeIndexes++
		}
		a.oneTime[r.Token.Index] = true
	}
}

// tokenRequests reads the request-slot count so far; the chaos fault
// scheduler polls it to find the middle of the rush.
func (a *e2eAgg) tokenRequests() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts.TokenRequests
}

func (a *e2eAgg) recordRead(start time.Time, ok bool) {
	a.opLat.ObserveDuration(time.Since(start))
	a.mu.Lock()
	defer a.mu.Unlock()
	if ok {
		a.counts.ReadsOK++
	} else {
		a.counts.ReadsFailed++
	}
}

// recordTx classifies one committed batch slot. Rejections only count
// toward their attack class when the chain reported exactly the expected
// reason, so a drift in rejection semantics shows up as an envelope
// mismatch even though the transaction was still rejected.
func (a *e2eAgg) recordTx(op *e2eOp, res evm.BatchResult, end time.Time) {
	a.opLat.ObserveDuration(end.Sub(op.start))
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts.TxSubmitted++
	err := res.Err
	accepted := false
	if err == nil {
		accepted = res.Receipt.Status
		if !accepted {
			err = res.Receipt.Err
		}
	}
	if accepted {
		switch op.class {
		case opWrite, opReplayFirst:
			a.counts.TxAccepted++
		default:
			a.counts.AdvAccepted++
		}
		return
	}
	a.counts.TxRejected++
	switch op.class {
	case opTampered:
		if errors.Is(err, core.ErrBadTokenSig) {
			a.counts.RejTampered++
		}
	case opReplay:
		if errors.Is(err, core.ErrTokenUsed) {
			a.counts.RejReplayed++
		}
	case opExpired:
		if errors.Is(err, core.ErrTokenExpired) {
			a.counts.RejExpired++
		}
	}
}

// e2eEnv is one scenario's assembled world: the chain with its deployed
// SMACS-enabled targets, the HTTP Token Service frontends, and the
// submission pipeline.
type e2eEnv struct {
	cfg     ScenarioConfig
	chain   *evm.Chain
	targets []types.Address
	gasPrc  *big.Int

	client        *tshttp.Client // main Token Service
	expiredClient *tshttp.Client // negative-lifetime frontend (expired attacks)

	// extra are issuing frontends a mid-run membership join added; honest
	// clients re-resolve their frontend per token batch, round-robining
	// across the main client and these the moment the join lands.
	extraMu sync.Mutex
	extra   []*tshttp.Client
	rr      int

	agg    *e2eAgg
	sub    chan *e2eOp
	tracer *metrics.Tracer // nil unless E2EConfig.Tracer is set
}

// addClient brings a newly joined frontend into the honest rotation.
func (e *e2eEnv) addClient(cl *tshttp.Client) {
	e.extraMu.Lock()
	defer e.extraMu.Unlock()
	e.extra = append(e.extra, cl)
}

// honestClient picks the frontend for one honest token batch: the main
// client until a join adds more, then round-robin over all of them.
func (e *e2eEnv) honestClient() *tshttp.Client {
	e.extraMu.Lock()
	defer e.extraMu.Unlock()
	if len(e.extra) == 0 {
		return e.client
	}
	e.rr++
	if pick := e.rr % (len(e.extra) + 1); pick > 0 {
		return e.extra[pick-1]
	}
	return e.client
}

// allClients lists every issuing frontend the run used, for the
// server-stats cross-check.
func (e *e2eEnv) allClients() []*tshttp.Client {
	e.extraMu.Lock()
	defer e.extraMu.Unlock()
	out := []*tshttp.Client{e.client, e.expiredClient}
	return append(out, e.extra...)
}

// shardedCounterShards and shardedCounterBlock configure the one-time
// index counter: 4 shards leasing 32-index blocks, a spread of 128 the
// bitmap sizing budgets for.
const (
	shardedCounterShards = 4
	shardedCounterBlock  = 32
	e2eBitmapSlack       = 64
	e2eGasLimit          = 4_000_000
)

// startServer exposes svc on a loopback listener and returns its base URL
// and a shutdown function. The frontend's HTTP series land on reg, the
// same registry the wrapped service reports to.
func startServer(svc *ts.Service, reg *metrics.Registry) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: tshttp.NewServerWithOptions(svc, "", tshttp.ServerOptions{Registry: reg}).Handler()}
	go func() { _ = srv.Serve(l) }()
	return "http://" + l.Addr().String(), func() { _ = srv.Close() }, nil
}

func runScenario(cfg ScenarioConfig, run E2EConfig) (E2ERow, error) {
	if cfg.Clients < 1 || cfg.Ops < 1 {
		return E2ERow{}, fmt.Errorf("scenario needs clients and ops, got %d×%d", cfg.Clients, cfg.Ops)
	}
	if cfg.TokenBatch < 1 {
		cfg.TokenBatch = 8
	}
	if cfg.TxBatch < 1 {
		cfg.TxBatch = 16
	}
	depth := cfg.ChainDepth
	if cfg.Workload != WorkloadChain {
		depth = 1
	}
	if depth > 1 && cfg.TamperedOps+cfg.ReplayedOps+cfg.ExpiredOps > 0 {
		return E2ERow{}, fmt.Errorf("adversarial ops are only supported on single-target workloads")
	}

	// Keys: the Token Service, the honest clients, the denied clients,
	// and one attacker wallet per adversarial class.
	tsKey := secp256k1.PrivateKeyFromSeed([]byte("e2e ts key " + cfg.Name))
	seedKey := func(role string, i int) *secp256k1.PrivateKey {
		return secp256k1.PrivateKeyFromSeed([]byte(fmt.Sprintf("e2e %s %s %d", cfg.Name, role, i)))
	}
	honest := make([]*secp256k1.PrivateKey, cfg.Clients)
	for i := range honest {
		honest[i] = seedKey("client", i)
	}
	denied := make([]*secp256k1.PrivateKey, cfg.DeniedClients)
	for i := range denied {
		denied[i] = seedKey("denied", i)
	}
	tamperKey := seedKey("tamper", 0)
	replayKey := seedKey("replay", 0)
	expireKey := seedKey("expire", 0)

	// ACRs: a sender whitelist admitting honest clients and attackers
	// (attackers model insiders abusing legitimately issued tokens);
	// denied clients stay off the list and must be rejected at the TS.
	allowed := rules.NewList(rules.Whitelist)
	for _, k := range honest {
		allowed.Add(core.ValueKey(k.Address()))
	}
	for _, k := range []*secp256k1.PrivateKey{tamperKey, replayKey, expireKey} {
		allowed.Add(core.ValueKey(k.Address()))
	}
	ruleSet := rules.NewRuleSet()
	ruleSet.SetSenderList(allowed)

	// One-time index counter: sharded, optionally backed by a 3-replica
	// quorum — in-process (§ VII-B) or, for chaos scenarios, networked
	// replica processes behind fault-injecting proxies. The membership
	// faults add a layer each: ChaosJoin allocates through an epoch-aware
	// dynamic stripe so a second group can join mid-rush, and
	// ChaosFrontendCrash wraps the sharded counter in a switch so the
	// takeover can swap in a fresh incarnation mid-traffic.
	var underlying ts.Counter
	var chaos *chaosGroup
	var joinStripe *ring.DynamicStripe
	if cfg.Chaos != "" {
		if cfg.ReplicatedCounter || cfg.Durable {
			return E2ERow{}, fmt.Errorf("chaos scenarios bring their own counter backend")
		}
		g, err := startChaosGroup(cfg, run)
		if err != nil {
			return E2ERow{}, err
		}
		defer g.Close()
		chaos, underlying = g, g.coord
		if cfg.Chaos == ChaosJoin {
			joinStripe, err = ring.NewDynamicStripe(g.coord, chaosGroupA,
				ring.View{Epoch: 1, Groups: []string{chaosGroupA}}, 0)
			if err != nil {
				return E2ERow{}, err
			}
			underlying = joinStripe
		}
	} else if cfg.ReplicatedCounter {
		cluster, err := replica.NewCluster(3)
		if err != nil {
			return E2ERow{}, err
		}
		underlying = cluster.Counter()
	}
	counter, err := ts.NewShardedCounter(underlying, shardedCounterShards, shardedCounterBlock)
	if err != nil {
		return E2ERow{}, err
	}
	svcCounter := ts.Counter(counter)
	var crashSwitch *switchCounter
	if cfg.Chaos == ChaosFrontendCrash {
		crashSwitch = newSwitchCounter(counter)
		svcCounter = crashSwitch
	}

	// Every component of this scenario reports to one isolated registry:
	// issuance, HTTP transport, chain, and the end-to-end histogram, so
	// the row's stage latencies and the stats cross-check below see
	// exactly this scenario's traffic.
	reg := metrics.NewRegistry()
	core.RegisterCacheMetrics(reg)
	senderH0, senderM0 := evm.SenderCacheStats()
	tokenH0, tokenM0 := core.TokenSigCacheStats()

	svc, err := ts.New(ts.Config{
		Key:          tsKey,
		Rules:        ruleSet,
		Counter:      svcCounter,
		RequireProof: cfg.RequireProof,
		Metrics:      reg,
	})
	if err != nil {
		return E2ERow{}, err
	}
	base, stop, err := startServer(svc, reg)
	if err != nil {
		return E2ERow{}, err
	}
	defer stop()

	env := &e2eEnv{
		cfg:    cfg,
		agg:    newE2EAgg(reg),
		sub:    make(chan *e2eOp, 4*cfg.TxBatch),
		client: tshttp.NewClient(base, ""),
		gasPrc: big.NewInt(1),
		tracer: run.Tracer,
	}

	// A second frontend sharing skTS but configured with a negative
	// lifetime issues already-expired tokens through the full HTTP path —
	// the deterministic source of the expired-token attack class.
	var expiredSvc *ts.Service
	if cfg.ExpiredOps > 0 {
		expiredSvc, err = ts.New(ts.Config{
			Key:          tsKey,
			Rules:        ruleSet,
			Lifetime:     -time.Hour,
			RequireProof: cfg.RequireProof,
			Metrics:      reg,
		})
		if err != nil {
			return E2ERow{}, err
		}
		expiredBase, stopExpired, err := startServer(expiredSvc, reg)
		if err != nil {
			return E2ERow{}, err
		}
		defer stopExpired()
		env.expiredClient = tshttp.NewClient(expiredBase, "")
	}

	// The chain and its SMACS-enabled targets. One-time tokens need the
	// verifier to carry a bitmap sized for every index the run can issue
	// plus the sharded counter's spread.
	chainCfg := evm.DefaultConfig()
	chainCfg.Metrics = reg
	env.chain = evm.NewChain(chainCfg)
	verifier := core.NewVerifier(tsKey.Address())
	oneTimeTokens := cfg.ReplayedOps
	if cfg.OneTime {
		oneTimeTokens += cfg.Clients * cfg.Ops * depth
	}
	if oneTimeTokens > 0 {
		spread := int(counter.MaxSpread())
		if cfg.Chaos == ChaosJoin || cfg.Chaos == ChaosFrontendCrash {
			// The membership faults widen the live index window: a second
			// frontend's in-flight blocks (join), or the crashed
			// incarnation's burned remainders plus the takeover's fresh
			// leases (frontend-crash).
			spread *= 3
		}
		bits := oneTimeTokens + spread + e2eBitmapSlack
		bm, err := core.NewBitmap(bits, 1<<32)
		if err != nil {
			return E2ERow{}, err
		}
		verifier.WithBitmap(bm)
	}
	owner := seedKey("owner", 0)
	deploy := func(c *evm.Contract) (types.Address, error) {
		addr, _, err := env.chain.Deploy(owner.Address(), c)
		return addr, err
	}
	switch cfg.Workload {
	case WorkloadStorage:
		addr, err := deploy(transform.Enable(contracts.NewSimpleStorage(), verifier))
		if err != nil {
			return E2ERow{}, err
		}
		env.targets = []types.Address{addr}
	case WorkloadSale:
		addr, err := deploy(transform.Enable(contracts.NewTokenSale(100), verifier))
		if err != nil {
			return E2ERow{}, err
		}
		env.targets = []types.Address{addr}
	case WorkloadChain:
		env.targets, err = contracts.BuildChain(deploy, depth, func(c *evm.Contract) *evm.Contract {
			return transform.Enable(c, verifier)
		})
		if err != nil {
			return E2ERow{}, err
		}
	default:
		return E2ERow{}, fmt.Errorf("unknown workload %q", cfg.Workload)
	}
	for _, k := range honest {
		env.chain.Fund(k.Address(), ether(1000))
	}
	for _, k := range []*secp256k1.PrivateKey{tamperKey, replayKey, expireKey} {
		env.chain.Fund(k.Address(), ether(1000))
	}

	// The submitter: drains the op channel into ApplyBatch calls of
	// TxBatch transactions, running token-signature prevalidation in the
	// parallel pool outside the chain mutex.
	subDone := env.startSubmitter(tsKey.Address())

	// Membership faults need their action armed before the scheduler
	// starts: the join scenario stands its second frontend up now, the
	// frontend-crash scenario binds the takeover closure.
	switch cfg.Chaos {
	case ChaosJoin:
		cleanupJoin, err := armJoin(chaos, env, reg, tsKey, ruleSet, cfg, joinStripe, counter)
		if err != nil {
			return E2ERow{}, err
		}
		defer cleanupJoin()
	case ChaosFrontendCrash:
		armFrontendCrash(chaos, crashSwitch)
	}

	// The chaos fault scheduler watches the aggregate's progress and
	// fires/heals the fault mid-rush; it stops (healing if necessary)
	// before the group's deferred Close. The explicit call after the
	// producers finish collects whether the fault fired; the deferred
	// one only covers error returns (stop is idempotent).
	var stopFault func() bool
	if chaos != nil {
		stopFault = chaos.scheduleFault(cfg, run.ChaosSeed, env.agg)
		defer stopFault()
	}

	// Producers: honest clients, denied clients, and the attacker wallets
	// all run concurrently against the live HTTP service.
	start := time.Now()
	type producer func() error
	producers := make([]producer, 0, cfg.Clients+cfg.DeniedClients+3)
	for _, k := range honest {
		k := k
		producers = append(producers, func() error { return env.runHonest(k) })
	}
	for _, k := range denied {
		k := k
		producers = append(producers, func() error { return env.runDenied(k) })
	}
	if cfg.TamperedOps > 0 {
		producers = append(producers, func() error { return env.runTampered(tamperKey) })
	}
	if cfg.ReplayedOps > 0 {
		producers = append(producers, func() error { return env.runReplay(replayKey) })
	}
	if cfg.ExpiredOps > 0 {
		producers = append(producers, func() error { return env.runExpired(expireKey) })
	}
	errs := make([]error, len(producers))
	var wg sync.WaitGroup
	for i, p := range producers {
		wg.Add(1)
		go func(i int, p producer) {
			defer wg.Done()
			errs[i] = p()
		}(i, p)
	}
	wg.Wait()
	close(env.sub)
	<-subDone
	elapsed := time.Since(start)
	faultInjected := false
	if stopFault != nil {
		faultInjected = stopFault()
	}
	for _, err := range errs {
		if err != nil {
			return E2ERow{}, err
		}
	}
	if chaos != nil {
		if err := chaos.FireErr(); err != nil {
			return E2ERow{}, fmt.Errorf("chaos %s action: %w", cfg.Chaos, err)
		}
	}

	// Cross-check the server-side stats over the same HTTP interface the
	// clients used.
	for _, cl := range env.allClients() {
		if cl == nil {
			continue
		}
		if err := env.agg.addServerStats(cl); err != nil {
			return E2ERow{}, err
		}
	}
	// One source of truth: the /v1/stats counters (per-frontend atomics)
	// must agree with the registry's aggregated issuance series.
	if err := checkRegistryStats(reg, env.agg); err != nil {
		return E2ERow{}, err
	}

	row := finishRow(cfg, env.agg, elapsed, reg,
		cacheRate(senderH0, senderM0, evm.SenderCacheStats),
		cacheRate(tokenH0, tokenM0, core.TokenSigCacheStats))
	row.ChaosFaultInjected = faultInjected
	return row, nil
}

// checkRegistryStats asserts that the registry-level issuance counters
// (summed over every frontend reporting to reg) match the /v1/stats
// totals the harness collected over HTTP — one pipeline, two views, no
// drift.
func checkRegistryStats(reg *metrics.Registry, agg *e2eAgg) error {
	issued, denied := ts.RegistryStats(reg)
	agg.mu.Lock()
	defer agg.mu.Unlock()
	if int(issued) != agg.counts.TSIssued || int(denied) != agg.counts.TSRejected {
		return fmt.Errorf("registry issuance series (%d issued, %d denied) disagree with /v1/stats (%d, %d)",
			issued, denied, agg.counts.TSIssued, agg.counts.TSRejected)
	}
	return nil
}

// cacheRate computes a process-wide cache's hit fraction over the
// scenario's own traffic, as a delta against the run-start snapshot.
func cacheRate(h0, m0 uint64, stats func() (uint64, uint64)) float64 {
	h1, m1 := stats()
	dh, dm := h1-h0, m1-m0
	if dh+dm == 0 {
		return 0
	}
	return float64(dh) / float64(dh+dm)
}

// startSubmitter launches the batch submitter draining e.sub into
// Chain.Execute calls of TxBatch transactions under the scenario's
// scheduler (prevalidate by default), with batched token-signature
// prevalidation in the parallel pool outside the chain mutex. It returns
// the channel closed when e.sub has been closed and fully drained.
func (e *e2eEnv) startSubmitter(tsAddr types.Address) chan struct{} {
	sched, err := ParseScheduler(e.cfg.Scheduler)
	if err != nil {
		panic(err) // scenario configs are validated before the run starts
	}
	hook := core.BatchTokenPrehook(tsAddr, e.chain.Config().ChainID)
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		pending := make([]*e2eOp, 0, e.cfg.TxBatch)
		flush := func() {
			if len(pending) == 0 {
				return
			}
			txs := make([]*evm.Transaction, len(pending))
			for i, op := range pending {
				txs[i] = op.tx
			}
			results := e.chain.Execute(txs, evm.ExecOptions{
				Scheduler:        sched,
				Workers:          e.cfg.Workers,
				PrevalidateBatch: hook,
			})
			end := time.Now()
			for i, res := range results {
				e.agg.recordTx(pending[i], res, end)
				if op := pending[i]; op.id != "" {
					e.tracer.Span(op.id, "e2e", op.start, end)
				}
			}
			pending = pending[:0]
		}
		for op := range e.sub {
			pending = append(pending, op)
			if len(pending) >= e.cfg.TxBatch {
				flush()
			}
		}
		flush()
	}()
	return subDone
}

// addServerStats folds one Token Service frontend's /v1/stats counters
// into the aggregate, so the envelope cross-checks the server's view
// against the client-observed outcomes.
func (a *e2eAgg) addServerStats(cl *tshttp.Client) error {
	st, err := cl.Stats()
	if err != nil {
		return fmt.Errorf("fetch /v1/stats: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts.TSIssued += int(st.Issued)
	a.counts.TSRejected += int(st.Rejected)
	return nil
}

// stageSummary extracts a StageLatency from one registry histogram.
func stageSummary(h *metrics.Histogram) StageLatency {
	return StageLatency{
		Count:     h.Count(),
		P50Millis: h.Quantile(0.50) * 1000,
		P95Millis: h.Quantile(0.95) * 1000,
		P99Millis: h.Quantile(0.99) * 1000,
		MaxMillis: h.Max() * 1000,
	}
}

// finishRow folds the aggregate and the scenario registry's latency
// histograms into the result row. Stage entries with zero observations
// are dropped (a scenario without ApplyBatch traffic has no commit
// stage).
func finishRow(cfg ScenarioConfig, agg *e2eAgg, elapsed time.Duration,
	reg *metrics.Registry, senderHitRate, tokenHitRate float64) E2ERow {
	stages := make(map[string]StageLatency)
	for name, h := range map[string]*metrics.Histogram{
		"e2e":         agg.opLat,
		"issue":       reg.Histogram(ts.MetricIssueSeconds, "", nil),
		"http_tokens": reg.Histogram(tshttp.MetricLatency, "", nil, metrics.L("route", "/v1/tokens")),
		"prevalidate": reg.Histogram(evm.MetricPrevalidateSeconds, "", nil),
		"commit":      reg.Histogram(evm.MetricCommitSeconds, "", nil),
	} {
		if s := stageSummary(h); s.Count > 0 {
			stages[name] = s
		}
	}
	e2e := stages["e2e"]
	counts := agg.counts
	return E2ERow{
		Scenario:           cfg.Name,
		Clients:            cfg.Clients,
		OpsPerClient:       cfg.Ops,
		Seconds:            elapsed.Seconds(),
		TokensPerSec:       float64(counts.TokensIssued) / elapsed.Seconds(),
		TxPerSec:           float64(counts.TxSubmitted) / elapsed.Seconds(),
		P50Millis:          e2e.P50Millis,
		P95Millis:          e2e.P95Millis,
		P99Millis:          e2e.P99Millis,
		Stages:             stages,
		SenderCacheHitRate: senderHitRate,
		TokenCacheHitRate:  tokenHitRate,
		Counts:             counts,
	}
}

// opRequests builds the token requests one operation needs: one per
// SMACS-enabled contract in the triggered call chain.
func (e *e2eEnv) opRequests(sender types.Address, read bool) []*core.Request {
	reqs := make([]*core.Request, 0, len(e.targets))
	for _, target := range e.targets {
		req := &core.Request{
			Type:     e.cfg.TokenType,
			Contract: target,
			Sender:   sender,
			OneTime:  e.cfg.OneTime,
		}
		if e.cfg.TokenType != core.SuperType {
			switch {
			case e.cfg.Workload == WorkloadChain:
				req.Method = "relay(uint256,string)"
			case e.cfg.Workload == WorkloadSale:
				req.Method = "buy()"
			case read:
				req.Method = "get()"
			default:
				req.Method = "set(uint256)"
			}
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// fetchTokens signs proofs of possession when the scenario demands them,
// submits the batch over HTTP, and tallies the per-slot outcomes.
func (e *e2eEnv) fetchTokens(cl *tshttp.Client, key *secp256k1.PrivateKey, reqs []*core.Request) ([]ts.Result, error) {
	if e.cfg.RequireProof {
		for _, req := range reqs {
			if err := core.SignRequest(req, key); err != nil {
				return nil, err
			}
		}
	}
	res, err := cl.RequestTokens(reqs)
	if err != nil {
		return nil, err
	}
	e.agg.addResults(len(reqs), res)
	return res, nil
}

// buildTx signs one guarded write transaction carrying the token entries.
func (e *e2eEnv) buildTx(key *secp256k1.PrivateKey, nonce uint64, entries [][]byte) (*evm.Transaction, error) {
	tx := &evm.Transaction{
		Nonce:    nonce,
		To:       e.targets[0],
		Value:    new(big.Int),
		GasLimit: e2eGasLimit,
		GasPrice: e.gasPrc,
		Tokens:   entries,
	}
	switch e.cfg.Workload {
	case WorkloadSale:
		tx.Method = "buy"
		tx.Value = big.NewInt(5)
	case WorkloadChain:
		tx.Method = "relay"
		tx.Args = []any{uint64(0), "e2e"}
	default:
		tx.Method = "set"
		tx.Args = []any{uint64(nonce)}
	}
	if err := evm.SignTx(tx, key, e.chain.Config().ChainID); err != nil {
		return nil, err
	}
	return tx, nil
}

// entriesFor tags each issued token with its target contract, failing on
// any denied slot (callers that expect denials never use it).
func (e *e2eEnv) entriesFor(slot []ts.Result) ([][]byte, error) {
	entries := make([][]byte, len(slot))
	for i, r := range slot {
		if r.Err != nil {
			return nil, fmt.Errorf("unexpected token denial: %w", r.Err)
		}
		entries[i] = core.EncodeEntry(e.targets[i], r.Token)
	}
	return entries, nil
}

// runHonest drives one honest client: fetch tokens for a window of ops in
// one round-trip, then submit the guarded write (or run the guarded read)
// for each op.
func (e *e2eEnv) runHonest(key *secp256k1.PrivateKey) error {
	perOp := len(e.targets)
	// Resuming from the chain's view of the nonce (instead of 0) lets the
	// durable scenario re-run a client against a recovered chain.
	nonce := e.chain.NonceOf(key.Address())
	for off := 0; off < e.cfg.Ops; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.Ops-off)
		start := time.Now()
		reads := make([]bool, n)
		reqs := make([]*core.Request, 0, n*perOp)
		for j := 0; j < n; j++ {
			reads[j] = e.cfg.ReadEvery > 0 && (off+j+1)%e.cfg.ReadEvery == 0
			reqs = append(reqs, e.opRequests(key.Address(), reads[j])...)
		}
		// Re-resolve the frontend per batch: once a membership join adds
		// a second issuing frontend mid-run, honest traffic immediately
		// starts spreading across the whole group.
		res, err := e.fetchTokens(e.honestClient(), key, reqs)
		if err != nil {
			return err
		}
		tokensEnd := time.Now()
		for j := 0; j < n; j++ {
			entries, err := e.entriesFor(res[j*perOp : (j+1)*perOp])
			if err != nil {
				return err
			}
			if reads[j] {
				_, rec, _ := e.chain.StaticCall(key.Address(), e.targets[0], "get", nil, entries)
				e.agg.recordRead(start, rec != nil && rec.Status)
				continue
			}
			tx, err := e.buildTx(key, nonce, entries)
			if err != nil {
				return err
			}
			nonce++
			id := ""
			if e.tracer != nil {
				// The token round-trip is batched, so each op in the window
				// shares the acquisition span; the submitter closes the
				// trace with the op's own end-to-end span.
				id = fmt.Sprintf("%s/%s#%d", e.cfg.Name, key.Address().Hex()[:10], off+j)
				e.tracer.Span(id, "tokens", start, tokensEnd)
			}
			e.sub <- &e2eOp{class: opWrite, tx: tx, start: start, id: id}
		}
	}
	return nil
}

// runDenied drives one non-whitelisted client: every token request must be
// rejected by the Token Service, so no transaction is ever built. The
// outcome lands in the TokensDenied/TSRejected counts the envelope pins.
func (e *e2eEnv) runDenied(key *secp256k1.PrivateKey) error {
	for off := 0; off < e.cfg.Ops; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.Ops-off)
		reqs := make([]*core.Request, 0, n)
		for j := 0; j < n; j++ {
			reqs = append(reqs, e.opRequests(key.Address(), false)[:1]...)
		}
		if _, err := e.fetchTokens(e.client, key, reqs); err != nil {
			return err
		}
	}
	return nil
}

// runTampered obtains valid tokens and mutates their expiry before use:
// the signature no longer covers the token bytes, so every transaction
// must be rejected with ErrBadTokenSig.
func (e *e2eEnv) runTampered(key *secp256k1.PrivateKey) error {
	nonce := uint64(0)
	for off := 0; off < e.cfg.TamperedOps; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.TamperedOps-off)
		start := time.Now()
		reqs := make([]*core.Request, 0, n)
		for j := 0; j < n; j++ {
			reqs = append(reqs, e.opRequests(key.Address(), false)...)
		}
		res, err := e.fetchTokens(e.client, key, reqs)
		if err != nil {
			return err
		}
		for _, r := range res {
			if r.Err != nil {
				return fmt.Errorf("tamper attacker should be whitelisted: %w", r.Err)
			}
			tk := r.Token
			tk.Expire = tk.Expire.Add(time.Hour) // breaks the signature, not the expiry check
			tx, err := e.buildTx(key, nonce, [][]byte{core.EncodeEntry(e.targets[0], tk)})
			if err != nil {
				return err
			}
			nonce++
			e.sub <- &e2eOp{class: opTampered, tx: tx, start: start}
		}
	}
	return nil
}

// runReplay obtains one-time tokens and submits each twice: the first use
// is legitimate, the duplicate must be rejected by the bitmap with
// ErrTokenUsed.
func (e *e2eEnv) runReplay(key *secp256k1.PrivateKey) error {
	nonce := uint64(0)
	for off := 0; off < e.cfg.ReplayedOps; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.ReplayedOps-off)
		start := time.Now()
		reqs := make([]*core.Request, 0, n)
		for j := 0; j < n; j++ {
			req := e.opRequests(key.Address(), false)[0]
			req.OneTime = true
			reqs = append(reqs, req)
		}
		res, err := e.fetchTokens(e.client, key, reqs)
		if err != nil {
			return err
		}
		for _, r := range res {
			if r.Err != nil {
				return fmt.Errorf("replay attacker should be whitelisted: %w", r.Err)
			}
			entries := [][]byte{core.EncodeEntry(e.targets[0], r.Token)}
			for _, class := range []opClass{opReplayFirst, opReplay} {
				tx, err := e.buildTx(key, nonce, entries)
				if err != nil {
					return err
				}
				nonce++
				e.sub <- &e2eOp{class: class, tx: tx, start: start}
			}
		}
	}
	return nil
}

// runExpired obtains already-expired tokens from the negative-lifetime
// frontend; every transaction must be rejected with ErrTokenExpired.
func (e *e2eEnv) runExpired(key *secp256k1.PrivateKey) error {
	nonce := uint64(0)
	for off := 0; off < e.cfg.ExpiredOps; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.ExpiredOps-off)
		start := time.Now()
		reqs := make([]*core.Request, 0, n)
		for j := 0; j < n; j++ {
			reqs = append(reqs, e.opRequests(key.Address(), false)...)
		}
		res, err := e.fetchTokens(e.expiredClient, key, reqs)
		if err != nil {
			return err
		}
		for _, r := range res {
			if r.Err != nil {
				return fmt.Errorf("expire attacker should be whitelisted: %w", r.Err)
			}
			tx, err := e.buildTx(key, nonce, [][]byte{core.EncodeEntry(e.targets[0], r.Token)})
			if err != nil {
				return err
			}
			nonce++
			e.sub <- &e2eOp{class: opExpired, tx: tx, start: start}
		}
	}
	return nil
}

// Format renders the run as the end-to-end scenario table of
// docs/BENCHMARKS.md plus one correctness-count line per scenario.
func (r *E2EResult) Format() string {
	var b strings.Builder
	scale := "full"
	if r.Config.Smoke {
		scale = "smoke"
	}
	fmt.Fprintf(&b, "End-to-end scenarios (%s scale): real HTTP Token Service → wallet clients → Chain.ApplyBatch\n", scale)
	fmt.Fprintf(&b, "  %-12s %8s %6s %9s %10s %10s %9s %9s %9s\n",
		"scenario", "clients", "ops", "seconds", "tokens/s", "tx/s", "p50 ms", "p95 ms", "p99 ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %8d %6d %9.3f %10.1f %10.1f %9.2f %9.2f %9.2f\n",
			row.Scenario, row.Clients, row.OpsPerClient, row.Seconds,
			row.TokensPerSec, row.TxPerSec, row.P50Millis, row.P95Millis, row.P99Millis)
	}
	b.WriteString("Correctness counts (exact; pinned by out/e2e-envelope.json in CI):\n")
	for _, row := range r.Rows {
		c := row.Counts
		fmt.Fprintf(&b, "  %-12s tokens %d/%d issued/denied, tx %d/%d accepted/rejected",
			row.Scenario, c.TokensIssued, c.TokensDenied, c.TxAccepted, c.TxRejected)
		if c.ReadsOK+c.ReadsFailed > 0 {
			fmt.Fprintf(&b, ", reads %d ok", c.ReadsOK)
		}
		if c.RejTampered+c.RejReplayed+c.RejExpired > 0 || c.AdvAccepted > 0 {
			fmt.Fprintf(&b, ", attacks rejected %d tampered / %d replayed / %d expired, %d accepted",
				c.RejTampered, c.RejReplayed, c.RejExpired, c.AdvAccepted)
		}
		if c.DupOneTimeIndexes > 0 {
			fmt.Fprintf(&b, ", %d DUPLICATE one-time indexes", c.DupOneTimeIndexes)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the run as machine-readable rows (one line per scenario).
func (r *E2EResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,clients,ops_per_client,seconds,tokens_per_sec,tx_per_sec,p50_ms,p95_ms,p99_ms," +
		"token_requests,tokens_issued,tokens_denied,ts_issued,ts_rejected," +
		"tx_submitted,tx_accepted,tx_rejected,reads_ok,reads_failed," +
		"adversarial_accepted,rejected_tampered,rejected_replayed,rejected_expired,dup_one_time_indexes\n")
	for _, row := range r.Rows {
		c := row.Counts
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.1f,%.1f,%.2f,%.2f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			row.Scenario, row.Clients, row.OpsPerClient, row.Seconds,
			row.TokensPerSec, row.TxPerSec, row.P50Millis, row.P95Millis, row.P99Millis,
			c.TokenRequests, c.TokensIssued, c.TokensDenied, c.TSIssued, c.TSRejected,
			c.TxSubmitted, c.TxAccepted, c.TxRejected, c.ReadsOK, c.ReadsFailed,
			c.AdvAccepted, c.RejTampered, c.RejReplayed, c.RejExpired, c.DupOneTimeIndexes)
	}
	return b.String()
}

// Envelope is the CI regression gate: the exact correctness counts of a
// smoke run, checked into out/e2e-envelope.json. Throughput and latency
// are deliberately excluded — they vary by machine and are advisory-only.
type Envelope struct {
	// Smoke records the scale the envelope was captured at; comparing a
	// run at a different scale is always an error.
	Smoke bool `json:"smoke"`
	// Scenarios maps scenario name to its pinned counts.
	Scenarios map[string]E2ECounts `json:"scenarios"`
}

// Envelope captures the run's counts as an envelope.
func (r *E2EResult) Envelope() *Envelope {
	env := &Envelope{Smoke: r.Config.Smoke, Scenarios: make(map[string]E2ECounts, len(r.Rows))}
	for _, row := range r.Rows {
		env.Scenarios[row.Scenario] = row.Counts
	}
	return env
}

// CheckEnvelope compares the run's correctness counts against a pinned
// envelope and returns a field-level description of every drift. A result
// covering every shipped scenario additionally requires the envelope to
// contain exactly that scenario set.
func (r *E2EResult) CheckEnvelope(env *Envelope) error {
	if env.Smoke != r.Config.Smoke {
		return fmt.Errorf("envelope scale mismatch: envelope smoke=%t, run smoke=%t", env.Smoke, r.Config.Smoke)
	}
	var diffs []string
	ran := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		ran[row.Scenario] = true
		want, ok := env.Scenarios[row.Scenario]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("scenario %q missing from envelope", row.Scenario))
			continue
		}
		if want != row.Counts {
			got, _ := json.Marshal(row.Counts)
			exp, _ := json.Marshal(want)
			diffs = append(diffs, fmt.Sprintf("scenario %q counts drifted:\n  want %s\n  got  %s",
				row.Scenario, exp, got))
		}
	}
	if len(ran) == len(ScenarioNames()) {
		for name := range env.Scenarios {
			if !ran[name] {
				diffs = append(diffs, fmt.Sprintf("envelope pins scenario %q that no longer runs", name))
			}
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("e2e envelope mismatch:\n%s", strings.Join(diffs, "\n"))
	}
	return nil
}
