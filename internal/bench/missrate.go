package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/wallet"
)

// MissRateRow is one bitmap sizing of the § IV-C tradeoff experiment.
type MissRateRow struct {
	// SizeFactor is the bitmap size as a fraction of the paper's sizing
	// rule (lifetime × rate bits).
	SizeFactor float64 `json:"sizeFactor"`
	// Bits is the resulting bitmap size.
	Bits int `json:"bits"`
	// Used is how many one-time tokens were accepted.
	Used int `json:"used"`
	// Missed is how many fresh, non-expired tokens were rejected because
	// the window had already advanced past their index.
	Missed int `json:"missed"`
	// MissRate is Missed / (Used + Missed).
	MissRate float64 `json:"missRate"`
}

// MissRateResult quantifies § IV-C's "trade-off between the size of the
// bitmap and the miss rate": the paper states the sizing rule
// (lifetime × max_tx_per_second bits suffices) without measuring the
// under-provisioned regime; this experiment fills that in.
type MissRateResult struct {
	// Tokens is the number of one-time tokens in the workload.
	Tokens int `json:"tokens"`
	// RatePerSec and LifetimeSec parameterize the workload.
	RatePerSec  float64       `json:"ratePerSec"`
	LifetimeSec float64       `json:"lifetimeSec"`
	Rows        []MissRateRow `json:"rows"`
}

// MissRate replays a synthetic workload against real storage-backed
// bitmaps of varying size: tokens are issued with consecutive indexes at
// the given rate and each is redeemed after a uniformly random delay within
// the token lifetime, so redemptions arrive out of order. The reference
// size (factor 1.0) is the paper's sizing rule; smaller factors
// under-provision the bitmap and lose tokens.
func MissRate(tokens int, ratePerSec, lifetimeSec float64, factors []float64) (*MissRateResult, error) {
	if tokens <= 0 {
		tokens = 2000
	}
	if len(factors) == 0 {
		factors = []float64{0.1, 0.5, 1.0, 2.0}
	}
	res := &MissRateResult{
		Tokens:      tokens,
		RatePerSec:  ratePerSec,
		LifetimeSec: lifetimeSec,
	}

	// Workload: token i issued at i/rate, redeemed issueTime + U(0,
	// lifetime). Deterministic seed for reproducibility.
	rng := rand.New(rand.NewSource(42))
	workload := make([]redemption, tokens)
	for i := range workload {
		issueAt := float64(i) / ratePerSec
		workload[i] = redemption{
			index: int64(i) + 1,
			at:    issueAt + rng.Float64()*lifetimeSec,
		}
	}
	sort.Slice(workload, func(a, b int) bool { return workload[a].at < workload[b].at })

	reference := core.SizeFor(lifetimeSec, ratePerSec)
	for _, factor := range factors {
		bits := int(float64(reference) * factor)
		if bits < 1 {
			bits = 1
		}
		row, err := missRateRun(bits, workload)
		if err != nil {
			return nil, fmt.Errorf("miss rate factor %.2f: %w", factor, err)
		}
		row.SizeFactor = factor
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// redemption is one token usage event of the miss-rate workload.
type redemption struct {
	index int64
	at    float64
}

func missRateRun(bits int, workload []redemption) (MissRateRow, error) {
	bm, err := core.NewBitmap(bits, 0)
	if err != nil {
		return MissRateRow{}, err
	}
	chain := evm.NewChain(evm.DefaultConfig())
	owner := wallet.FromSeed("missrate owner", chain)
	chain.Fund(owner.Address(), ether(1_000_000))

	c := evm.NewContract("MissRateHarness")
	c.MustAddMethod(evm.Method{
		Name:       "use",
		Params:     []any{uint64(0)},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			idx, _ := call.Arg(0).(uint64)
			return nil, bm.Use(call, int64(idx))
		},
	})
	addr, _, err := chain.Deploy(owner.Address(), c)
	if err != nil {
		return MissRateRow{}, err
	}

	row := MissRateRow{Bits: bits}
	for _, r := range workload {
		receipt, err := owner.Call(addr, "use", wallet.CallOpts{}, uint64(r.index))
		if err != nil {
			return MissRateRow{}, err
		}
		switch {
		case receipt.Status:
			row.Used++
		case errors.Is(receipt.Err, core.ErrTokenUsed):
			row.Missed++
		default:
			return MissRateRow{}, fmt.Errorf("unexpected failure: %w", receipt.Err)
		}
	}
	total := row.Used + row.Missed
	if total > 0 {
		row.MissRate = float64(row.Missed) / float64(total)
	}
	return row, nil
}

// Format renders the tradeoff table.
func (m *MissRateResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§ IV-C tradeoff: bitmap size vs token-miss rate (%d tokens, %.3g tx/s, %.3gs lifetime)\n",
		m.Tokens, m.RatePerSec, m.LifetimeSec)
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s\n", "size factor", "bits", "used", "missed", "miss rate")
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "  %-12.2f %10d %10d %10d %9.2f%%\n",
			r.SizeFactor, r.Bits, r.Used, r.Missed, 100*r.MissRate)
	}
	fmt.Fprintf(&b, "  (the paper's sizing rule is factor 1.00: lifetime × max tx/s bits)\n")
	return b.String()
}
