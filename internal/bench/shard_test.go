package bench

import (
	"strings"
	"testing"
)

// A small sweep must issue exactly clients×ops tokens per cell with every
// index globally unique (the uniqueness audit lives inside Shard and
// fails the sweep), and the ring must actually spread the client
// population across groups when more than one exists. Throughput scaling
// with group count is a timing property, measured by -mode shard at real
// RTTs and pinned in docs/BENCHMARKS.md, not asserted at smoke scale.
func TestShardSweepIssuesExactlyAndSplits(t *testing.T) {
	var seen []ShardRow
	res, err := Shard(ShardConfig{
		Groups:     []int{1, 2},
		Clients:    4,
		Ops:        12,
		TokenBatch: 5,
		OnRow:      func(r ShardRow) { seen = append(seen, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(seen) != 2 {
		t.Fatalf("rows = %d, OnRow calls = %d, want 2 each", len(res.Rows), len(seen))
	}
	for _, row := range res.Rows {
		if row.Tokens != 4*12 {
			t.Errorf("%d groups: %d tokens, want %d", row.Groups, row.Tokens, 4*12)
		}
		if len(row.PerGroup) != row.Groups {
			t.Errorf("%d groups: per-group split has %d entries", row.Groups, len(row.PerGroup))
		}
		sum := 0
		for _, n := range row.PerGroup {
			sum += n
		}
		if sum != row.Tokens {
			t.Errorf("%d groups: per-group split sums to %d, not %d", row.Groups, sum, row.Tokens)
		}
	}
	// 4 seeded client addresses over 2 groups with 2048 virtual nodes: the
	// ring must not collapse every client onto one group.
	for _, n := range res.Rows[1].PerGroup {
		if n == res.Rows[1].Tokens {
			t.Errorf("2 groups: ring routed every client to one group: %v", res.Rows[1].PerGroup)
		}
	}
	if !strings.Contains(res.Format(), "audited unique") {
		t.Errorf("Format missing the uniqueness note:\n%s", res.Format())
	}
	if lines := strings.Split(strings.TrimSpace(res.CSV()), "\n"); len(lines) != 3 {
		t.Errorf("CSV has %d lines, want header + 2 rows", len(lines))
	}
}

// The live-resharding cell must complete the join mid-run (epoch 2,
// ≈1/(G+1) of the keyspace moved), lose and duplicate nothing across the
// view change, and account every token to a group — including any the
// joiner issued after admission. Its uniqueness/loss audit lives inside
// runJoinCell and fails the sweep.
func TestShardJoinCellReshardsLive(t *testing.T) {
	var seen []JoinRow
	res, err := Shard(ShardConfig{
		Groups:     []int{1},
		Clients:    8,
		Ops:        30,
		TokenBatch: 5,
		Join:       true,
		OnJoinRow:  func(r JoinRow) { seen = append(seen, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JoinRows) != 1 || len(seen) != 1 || len(res.Rows) != 0 {
		t.Fatalf("joinRows = %d, OnJoinRow calls = %d, rows = %d; want 1, 1, 0",
			len(res.JoinRows), len(seen), len(res.Rows))
	}
	row := res.JoinRows[0]
	t.Logf("join row: %+v", row)
	if row.Tokens != 8*30 {
		t.Errorf("%d tokens, want %d", row.Tokens, 8*30)
	}
	if len(row.PerGroup) != 2 {
		t.Fatalf("per-group split has %d entries, want 2 (initial + joiner)", len(row.PerGroup))
	}
	if sum := row.PerGroup[0] + row.PerGroup[1]; sum != row.Tokens {
		t.Errorf("per-group split sums to %d, not %d", sum, row.Tokens)
	}
	// One group → two: consistent hashing moves about half the keyspace.
	if row.MovedFraction <= 0 || row.MovedFraction >= 1 {
		t.Errorf("moved fraction = %v, want in (0, 1)", row.MovedFraction)
	}
	// 8 clients re-resolving per batch over a ~50% moved keyspace: the
	// joiner must have served part of the remaining rush.
	if row.JoinerTokens == 0 {
		t.Error("the joined group issued no tokens — the reshard never took effect")
	}
	if !strings.Contains(res.Format(), "membership change") {
		t.Errorf("Format missing the audit note:\n%s", res.Format())
	}
	if lines := strings.Split(strings.TrimSpace(res.CSV()), "\n"); len(lines) != 2 {
		t.Errorf("CSV has %d lines, want header + 1 row", len(lines))
	}
}

func TestShardSweepRejectsBadConfig(t *testing.T) {
	if _, err := Shard(ShardConfig{Clients: 0, Ops: 5}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Shard(ShardConfig{Groups: []int{0}, Clients: 2, Ops: 2}); err == nil {
		t.Error("zero group count accepted")
	}
}
