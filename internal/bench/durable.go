package bench

import (
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/store"
	"repro/internal/transform"
	"repro/internal/ts"
	"repro/internal/tshttp"
	"repro/internal/types"
)

// The durable scenario runs the full SMACS pipeline on file-backed stores
// (internal/store) and crashes it mid-run: phase 1 performs roughly half
// of every client's operations and the legitimate first use of each
// to-be-replayed one-time token, then every store handle is abandoned
// without Close — the state a kill -9 leaves behind. Phase 2 reopens the
// same directories, recovers the counter and the chain from their WALs,
// and runs the remainder, including the replay of every token spent
// before the crash. A healthy recovery produces exactly the counts of a
// crash-free run: no committed write lost (heights and nonces survive),
// no spent one-time index forgotten (every replay rejected with
// ErrTokenUsed), no index issued twice (fresh tokens keep being
// accepted).

// durableChainSnapEvery / durableCounterSnapEvery are the snapshot
// cadences of the durable scenario's stores: small enough that even a
// smoke run crosses at least one rotation, so recovery exercises the
// snapshot-plus-log-suffix path rather than pure log replay.
const (
	durableChainSnapEvery   = 8
	durableCounterSnapEvery = 2
)

// durableWorld is one incarnation of the scenario's process: file-backed
// counter and chain, an HTTP Token Service, and the batch submitter.
type durableWorld struct {
	env      *e2eEnv
	stopHTTP func()
	subDone  chan struct{}
}

// finish closes the submission pipeline (draining in-flight batches) and
// shuts the HTTP frontend down. The store handles are deliberately NOT
// closed: the next open must cope with whatever the WAL holds.
func (w *durableWorld) finish() {
	close(w.env.sub)
	<-w.subDone
	w.stopHTTP()
}

func runDurable(cfg ScenarioConfig, run E2EConfig) (E2ERow, error) {
	if cfg.Clients < 1 || cfg.Ops < 2 {
		return E2ERow{}, fmt.Errorf("durable scenario needs clients and ≥2 ops, got %d×%d", cfg.Clients, cfg.Ops)
	}
	if cfg.ReplayedOps < 1 {
		return E2ERow{}, fmt.Errorf("durable scenario needs replayed ops: replay-after-recovery is its core assertion")
	}
	if cfg.TokenBatch < 1 {
		cfg.TokenBatch = 8
	}
	if cfg.TxBatch < 1 {
		cfg.TxBatch = 16
	}
	dir := run.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "smacs-durable-*")
		if err != nil {
			return E2ERow{}, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	tsDir, chainDir := filepath.Join(dir, "ts"), filepath.Join(dir, "chain")
	for _, d := range []string{tsDir, chainDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return E2ERow{}, err
		}
	}

	// Keys and ACRs, derived exactly like the crash-free scenarios.
	tsKey := secp256k1.PrivateKeyFromSeed([]byte("e2e ts key " + cfg.Name))
	seedKey := func(role string, i int) *secp256k1.PrivateKey {
		return secp256k1.PrivateKeyFromSeed([]byte(fmt.Sprintf("e2e %s %s %d", cfg.Name, role, i)))
	}
	honest := make([]*secp256k1.PrivateKey, cfg.Clients)
	for i := range honest {
		honest[i] = seedKey("client", i)
	}
	replayKey := seedKey("replay", 0)
	owner := seedKey("owner", 0)
	allowed := rules.NewList(rules.Whitelist)
	for _, k := range honest {
		allowed.Add(core.ValueKey(k.Address()))
	}
	allowed.Add(core.ValueKey(replayKey.Address()))
	ruleSet := rules.NewRuleSet()
	ruleSet.SetSenderList(allowed)

	// The bitmap must hold every index either incarnation can issue: the
	// run's one-time tokens plus the leases each crash burns (at most one
	// MaxSpread per incarnation; see ts.ShardedCounter).
	spread := shardedCounterShards * shardedCounterBlock
	bits := cfg.Clients*cfg.Ops + cfg.ReplayedOps + 2*spread + e2eBitmapSlack

	// The deterministic bootstrap both incarnations share: same keys,
	// same deploy order → same addresses, so recovery can re-register the
	// contract's Go handlers before the snapshot restores its storage.
	var target types.Address
	boot := func(ch *evm.Chain) error {
		verifier := core.NewVerifier(tsKey.Address())
		bm, err := core.NewBitmap(bits, 1<<32)
		if err != nil {
			return err
		}
		verifier.WithBitmap(bm)
		addr, _, err := ch.Deploy(owner.Address(), transform.Enable(contracts.NewSimpleStorage(), verifier))
		if err != nil {
			return err
		}
		target = addr
		for _, k := range honest {
			ch.Fund(k.Address(), ether(1000))
		}
		ch.Fund(replayKey.Address(), ether(1000))
		return nil
	}

	// Both incarnations report to one registry, so the series span the
	// crash: recovery metrics from phase 2's stores land next to phase
	// 1's issuance counters, exactly like a restarted daemon scraping to
	// the same Prometheus.
	reg := metrics.NewRegistry()
	core.RegisterCacheMetrics(reg)
	senderH0, senderM0 := evm.SenderCacheStats()
	tokenH0, tokenM0 := core.TokenSigCacheStats()

	agg := newE2EAgg(reg)
	open := func(phaseOps int) (*durableWorld, error) {
		fileOpts := store.FileOptions{FsyncBatch: run.FsyncBatch, Metrics: reg}
		tsFile, err := store.OpenFile(tsDir, fileOpts)
		if err != nil {
			return nil, err
		}
		counter, err := store.OpenCounter(tsFile, durableCounterSnapEvery)
		if err != nil {
			return nil, err
		}
		sharded, err := ts.NewShardedCounter(counter, shardedCounterShards, shardedCounterBlock)
		if err != nil {
			return nil, err
		}
		svc, err := ts.New(ts.Config{Key: tsKey, Rules: ruleSet, Counter: sharded, Metrics: reg})
		if err != nil {
			return nil, err
		}
		base, stopHTTP, err := startServer(svc, reg)
		if err != nil {
			return nil, err
		}
		chainFile, err := store.OpenFile(chainDir, fileOpts)
		if err != nil {
			stopHTTP()
			return nil, err
		}
		chainCfg := evm.DefaultConfig()
		chainCfg.Metrics = reg
		chain, err := evm.RecoverChain(chainCfg, chainFile, durableChainSnapEvery, boot)
		if err != nil {
			stopHTTP()
			return nil, fmt.Errorf("recover chain: %w", err)
		}
		phaseCfg := cfg
		phaseCfg.Ops = phaseOps
		env := &e2eEnv{
			cfg:     phaseCfg,
			chain:   chain,
			targets: []types.Address{target},
			gasPrc:  big.NewInt(1),
			client:  tshttp.NewClient(base, ""),
			agg:     agg,
			sub:     make(chan *e2eOp, 4*cfg.TxBatch),
			tracer:  run.Tracer,
		}
		w := &durableWorld{env: env, stopHTTP: stopHTTP}
		w.subDone = env.startSubmitter(tsKey.Address())
		return w, nil
	}

	phase1 := (cfg.Ops + 1) / 2
	start := time.Now()

	// Phase 1: honest traffic plus the first (legitimate) use of every
	// to-be-replayed one-time token.
	w1, err := open(phase1)
	if err != nil {
		return E2ERow{}, err
	}
	var saved [][]byte
	if err := runProducers(w1.env, honest, func(e *e2eEnv) error {
		var err error
		saved, err = e.harvestReplayTokens(replayKey)
		return err
	}); err != nil {
		return E2ERow{}, err
	}
	// Token issuance is done once the producers return, so the server
	// stats can be read before the frontend goes down with the crash.
	if err := agg.addServerStats(w1.env.client); err != nil {
		return E2ERow{}, err
	}
	w1.finish()
	preHeight := w1.env.chain.Height()
	preNonce := w1.env.chain.NonceOf(replayKey.Address())
	// The crash: w1's store handles are dropped without Close. Every
	// outcome counted above is already fsynced (a store Append returns
	// only once the record is durable), so recovery owes all of it back.

	// Phase 2: recover from the WALs, then replay the spent tokens
	// against the recovered bitmap state alongside the remaining honest
	// traffic.
	w2, err := open(cfg.Ops - phase1)
	if err != nil {
		return E2ERow{}, err
	}
	if h := w2.env.chain.Height(); h != preHeight {
		return E2ERow{}, fmt.Errorf("recovered chain height %d, committed %d before the crash", h, preHeight)
	}
	if n := w2.env.chain.NonceOf(replayKey.Address()); n != preNonce {
		return E2ERow{}, fmt.Errorf("recovered replay-wallet nonce %d, want %d: committed txs lost", n, preNonce)
	}
	if err := runProducers(w2.env, honest, func(e *e2eEnv) error {
		return e.replaySpent(replayKey, saved)
	}); err != nil {
		return E2ERow{}, err
	}
	if err := agg.addServerStats(w2.env.client); err != nil {
		return E2ERow{}, err
	}
	w2.finish()
	// The shared registry aggregated both incarnations' issuance; it must
	// agree with the sum of the two frontends' /v1/stats reads.
	if err := checkRegistryStats(reg, agg); err != nil {
		return E2ERow{}, err
	}
	return finishRow(cfg, agg, time.Since(start), reg,
		cacheRate(senderH0, senderM0, evm.SenderCacheStats),
		cacheRate(tokenH0, tokenM0, core.TokenSigCacheStats)), nil
}

// runProducers drives every honest client plus one extra producer
// concurrently against env, mirroring the crash-free harness.
func runProducers(env *e2eEnv, honest []*secp256k1.PrivateKey, extra func(*e2eEnv) error) error {
	producers := make([]func() error, 0, len(honest)+1)
	for _, k := range honest {
		k := k
		producers = append(producers, func() error { return env.runHonest(k) })
	}
	if extra != nil {
		producers = append(producers, func() error { return extra(env) })
	}
	errs := make([]error, len(producers))
	var wg sync.WaitGroup
	for i, p := range producers {
		wg.Add(1)
		go func(i int, p func() error) {
			defer wg.Done()
			errs[i] = p()
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// harvestReplayTokens obtains the scenario's one-time tokens, submits the
// legitimate first use of each, and returns the token entries for the
// post-crash replay.
func (e *e2eEnv) harvestReplayTokens(key *secp256k1.PrivateKey) ([][]byte, error) {
	nonce := e.chain.NonceOf(key.Address())
	saved := make([][]byte, 0, e.cfg.ReplayedOps)
	for off := 0; off < e.cfg.ReplayedOps; off += e.cfg.TokenBatch {
		n := min(e.cfg.TokenBatch, e.cfg.ReplayedOps-off)
		start := time.Now()
		reqs := make([]*core.Request, 0, n)
		for j := 0; j < n; j++ {
			req := e.opRequests(key.Address(), false)[0]
			req.OneTime = true
			reqs = append(reqs, req)
		}
		res, err := e.fetchTokens(e.client, key, reqs)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			if r.Err != nil {
				return nil, fmt.Errorf("replay wallet should be whitelisted: %w", r.Err)
			}
			entry := core.EncodeEntry(e.targets[0], r.Token)
			saved = append(saved, entry)
			tx, err := e.buildTx(key, nonce, [][]byte{entry})
			if err != nil {
				return nil, err
			}
			nonce++
			e.sub <- &e2eOp{class: opReplayFirst, tx: tx, start: start}
		}
	}
	return saved, nil
}

// replaySpent resubmits token entries whose one-time indexes were spent
// before the crash; the recovered bitmap must reject every one with
// ErrTokenUsed.
func (e *e2eEnv) replaySpent(key *secp256k1.PrivateKey, saved [][]byte) error {
	nonce := e.chain.NonceOf(key.Address())
	start := time.Now()
	for _, entry := range saved {
		tx, err := e.buildTx(key, nonce, [][]byte{entry})
		if err != nil {
			return err
		}
		nonce++
		e.sub <- &e2eOp{class: opReplay, tx: tx, start: start}
	}
	return nil
}
