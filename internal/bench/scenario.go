package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/evm"
)

// Workload names select the contract topology an e2e scenario drives.
const (
	// WorkloadStorage targets a SMACS-enabled SimpleStorage (set/get).
	WorkloadStorage = "storage"
	// WorkloadSale targets a SMACS-enabled TokenSale (payable buy).
	WorkloadSale = "sale"
	// WorkloadChain targets a chain of SMACS-enabled relay links
	// (§ IV-D call chains); every hop verifies its own token.
	WorkloadChain = "chain"
)

// ScenarioConfig declaratively describes one end-to-end scenario: how many
// wallet clients run, what tokens they obtain from the (real, HTTP) Token
// Service, which contract topology the signed guarded transactions hit,
// and how many adversarial operations ride along. Every field that affects
// correctness counts is deterministic, so a scenario's accept/reject
// tallies can be pinned in the CI envelope (out/e2e-envelope.json).
type ScenarioConfig struct {
	// Name identifies the scenario (see ScenarioNames).
	Name string `json:"name"`
	// Description is a one-line summary printed by Format.
	Description string `json:"description"`
	// Workload selects the contract topology (storage, sale, chain).
	Workload string `json:"workload"`
	// Clients is the number of concurrent honest wallet clients.
	Clients int `json:"clients"`
	// Ops is the number of operations each honest client performs.
	Ops int `json:"opsPerClient"`
	// TokenType is the token type honest writes request.
	TokenType core.TokenType `json:"tokenType"`
	// OneTime requests the one-time property on honest tokens (requires
	// the target verifier to carry a bitmap, which the harness attaches).
	OneTime bool `json:"oneTime"`
	// ChainDepth is the number of relay links (chain workload only).
	ChainDepth int `json:"chainDepth,omitempty"`
	// ReadEvery makes every ReadEvery-th op of a client a token-guarded
	// read served through Chain.StaticCall (0 = writes only).
	ReadEvery int `json:"readEvery,omitempty"`
	// DeniedClients is the number of extra clients left off the sender
	// whitelist: each performs Ops token requests that the Token Service
	// must all reject.
	DeniedClients int `json:"deniedClients,omitempty"`
	// TamperedOps is the number of adversarial ops that obtain a valid
	// token and mutate it before use; all must be rejected on-chain.
	TamperedOps int `json:"tamperedOps,omitempty"`
	// ReplayedOps is the number of adversarial ops that use a one-time
	// token once (legitimately) and then replay it; every replay must be
	// rejected on-chain.
	ReplayedOps int `json:"replayedOps,omitempty"`
	// ExpiredOps is the number of adversarial ops that obtain an
	// already-expired token (from a Token Service frontend whose
	// configured lifetime is negative); all must be rejected on-chain.
	ExpiredOps int `json:"expiredOps,omitempty"`
	// ReplicatedCounter backs the sharded one-time counter with a
	// 3-replica quorum cluster (§ VII-B) instead of a local counter.
	ReplicatedCounter bool `json:"replicatedCounter,omitempty"`
	// RequireProof demands a proof of possession on every token request,
	// exercising the client-side request signing over HTTP.
	RequireProof bool `json:"requireProof,omitempty"`
	// Chaos backs the sharded one-time counter with a networked
	// 3-replica quorum group (internal/ts/replica/net) — WAL-backed
	// replica processes behind fault-injecting TCP proxies
	// (internal/nettest) — and injects the named fault (ChaosKill,
	// ChaosPartition, ChaosSlow) into one replica mid-rush, healing it
	// before the run ends. The group tolerates the single fault, so the
	// correctness counts must equal a fault-free run's: no one-time
	// index issued twice, no accepted transaction lost, every denial
	// carrying its exact reason. Mutually exclusive with
	// ReplicatedCounter and Durable.
	Chaos string `json:"chaos,omitempty"`
	// Durable backs the Token Service counter and the chain with
	// file-backed stores (internal/store) and crashes the whole world
	// mid-run: phase 1 performs roughly half of each client's ops, every
	// handle is abandoned without Close (the kill), and phase 2 recovers
	// from the WALs before running the rest. ReplayedOps one-time tokens
	// are spent before the crash and replayed after recovery, so their
	// rejection proves the spent-index bitmap state survived it. The
	// correctness counts are identical to a crash-free run — that is the
	// durability contract the envelope pins.
	Durable bool `json:"durable,omitempty"`
	// TokenBatch is the number of ops whose tokens a client fetches per
	// POST /v1/tokens round-trip.
	TokenBatch int `json:"tokenBatch"`
	// TxBatch is the number of signed transactions per Chain.Execute
	// call.
	TxBatch int `json:"txBatch"`
	// Workers is the worker count handed to Execute (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Scheduler selects the Chain.Execute scheduler for the batch
	// submitter: "serial", "prevalidate" (the default when empty), or
	// "optimistic". The correctness envelope is scheduler-independent —
	// every scheduler is serially equivalent — so CI can pin one envelope
	// and sweep schedulers against it.
	Scheduler string `json:"scheduler,omitempty"`
}

// ParseScheduler maps a scenario/flag scheduler name to the evm enum.
func ParseScheduler(name string) (evm.Scheduler, error) {
	switch name {
	case "", "prevalidate":
		return evm.SchedulerPrevalidate, nil
	case "serial":
		return evm.SchedulerSerial, nil
	case "optimistic":
		return evm.SchedulerOptimistic, nil
	default:
		return 0, fmt.Errorf("bench: unknown scheduler %q (supported: serial, prevalidate, optimistic)", name)
	}
}

// ScenarioNames lists the shipped scenario profiles in run order.
func ScenarioNames() []string {
	return []string{"quickstart", "tokensale", "callchain", "adversarial", "mixed", "durable",
		"chaos-kill", "chaos-partition", "chaos-slow", "chaos-join", "chaos-frontend-crash"}
}

// ScenarioByName returns the named scenario profile at smoke scale (small,
// deterministic, CI-friendly) or full scale (large enough for meaningful
// throughput numbers).
func ScenarioByName(name string, smoke bool) (ScenarioConfig, error) {
	pick := func(smokeN, fullN int) int {
		if smoke {
			return smokeN
		}
		return fullN
	}
	switch name {
	case "quickstart":
		return ScenarioConfig{
			Name:        "quickstart",
			Description: "single-rule whitelist, method tokens, guarded set() writes",
			Workload:    WorkloadStorage,
			Clients:     pick(4, 8),
			Ops:         pick(6, 150),
			TokenType:   core.MethodType,
			TokenBatch:  8,
			TxBatch:     16,
		}, nil
	case "tokensale":
		return ScenarioConfig{
			Name: "tokensale",
			Description: "sale rush: one-time super tokens, proof of possession, " +
				"replica-quorum counter, non-whitelisted buyers denied",
			Workload:          WorkloadSale,
			Clients:           pick(4, 12),
			Ops:               pick(5, 75),
			TokenType:         core.SuperType,
			OneTime:           true,
			DeniedClients:     pick(2, 4),
			ReplicatedCounter: true,
			RequireProof:      true,
			TokenBatch:        5,
			TxBatch:           16,
		}, nil
	case "callchain":
		return ScenarioConfig{
			Name:        "callchain",
			Description: "multi-contract relay chain, one method token per hop",
			Workload:    WorkloadChain,
			Clients:     pick(3, 6),
			Ops:         pick(4, 60),
			TokenType:   core.MethodType,
			ChainDepth:  3,
			TokenBatch:  4,
			TxBatch:     8,
		}, nil
	case "adversarial":
		return ScenarioConfig{
			Name: "adversarial",
			Description: "flood of tampered, replayed, and expired tokens " +
				"riding alongside honest traffic; every attack must be rejected",
			Workload:    WorkloadStorage,
			Clients:     pick(2, 4),
			Ops:         pick(4, 50),
			TokenType:   core.MethodType,
			TamperedOps: pick(6, 100),
			ReplayedOps: pick(6, 100),
			ExpiredOps:  pick(6, 100),
			TokenBatch:  6,
			TxBatch:     16,
		}, nil
	case "mixed":
		return ScenarioConfig{
			Name:        "mixed",
			Description: "interleaved read/write workload: guarded set() txs and get() static calls",
			Workload:    WorkloadStorage,
			Clients:     pick(4, 8),
			Ops:         pick(8, 120),
			TokenType:   core.MethodType,
			ReadEvery:   2,
			TokenBatch:  8,
			TxBatch:     16,
		}, nil
	case "durable":
		return ScenarioConfig{
			Name: "durable",
			Description: "file-backed stores killed mid-run: recovery must keep every " +
				"committed write and reject every replayed one-time token",
			Workload:    WorkloadStorage,
			Clients:     pick(3, 6),
			Ops:         pick(6, 60),
			TokenType:   core.MethodType,
			OneTime:     true,
			ReplayedOps: pick(5, 30),
			Durable:     true,
			TokenBatch:  6,
			TxBatch:     8,
		}, nil
	case "chaos-kill":
		return chaosScenario(name, ChaosKill,
			"replica killed mid-rush: connections reset, rejoin under live traffic", pick), nil
	case "chaos-partition":
		return chaosScenario(name, ChaosPartition,
			"replica partitioned mid-rush: traffic blackholed until the partition heals", pick), nil
	case "chaos-slow":
		return chaosScenario(name, ChaosSlow,
			"replica degraded mid-rush: every byte through it delayed", pick), nil
	case "chaos-join":
		return chaosScenario(name, ChaosJoin,
			"replica group joins mid-rush: live reshard, traffic spreads across both frontends", pick), nil
	case "chaos-frontend-crash":
		return chaosScenario(name, ChaosFrontendCrash,
			"frontend crashes mid-rush: epoch-fenced takeover resumes issuance, remainders burn", pick), nil
	default:
		return ScenarioConfig{}, fmt.Errorf("bench: unknown scenario %q (supported: %s)",
			name, strings.Join(ScenarioNames(), ", "))
	}
}

// chaosScenario is the shared shape of the chaos profiles: a sale
// rush of one-time super tokens against the networked replica group,
// with denied buyers and replay attacks riding along so the envelope
// pins denial reasons and replay rejections under the fault too. Only
// the injected fault differs — a network fault on one replica
// (kill/partition/slow) or a membership fault on the frontend layer
// (join/frontend-crash); either way the correctness counts must match
// a fault-free run exactly.
func chaosScenario(name, fault, desc string, pick func(int, int) int) ScenarioConfig {
	return ScenarioConfig{
		Name:          name,
		Description:   desc,
		Workload:      WorkloadSale,
		Clients:       pick(4, 8),
		Ops:           pick(6, 60),
		TokenType:     core.SuperType,
		OneTime:       true,
		DeniedClients: pick(2, 3),
		ReplayedOps:   pick(5, 24),
		Chaos:         fault,
		TokenBatch:    5,
		TxBatch:       16,
	}
}

// ScenariosFor resolves a list of scenario names (nil or empty = all
// profiles) into configs, rejecting unknown and duplicate names.
func ScenariosFor(names []string, smoke bool) ([]ScenarioConfig, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	seen := make(map[string]bool, len(names))
	out := make([]ScenarioConfig, 0, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("bench: scenario %q listed twice", name)
		}
		seen[name] = true
		cfg, err := ScenarioByName(name, smoke)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// ExpectedCounts returns the correctness counts a healthy pipeline must
// produce for the scenario: what the CI envelope pins and the smoke tests
// assert. Token and transaction outcomes are fully determined by the
// config; throughput and latency are not (and are advisory-only).
func (c ScenarioConfig) ExpectedCounts() E2ECounts {
	tokensPerOp := 1
	if c.Workload == WorkloadChain {
		tokensPerOp = c.ChainDepth
	}
	reads := 0
	if c.ReadEvery > 0 {
		for op := 0; op < c.Ops; op++ {
			if (op+1)%c.ReadEvery == 0 {
				reads++
			}
		}
		reads *= c.Clients
	}
	writes := c.Clients*c.Ops - reads
	honestTokens := c.Clients * c.Ops * tokensPerOp
	advTokens := c.TamperedOps + c.ReplayedOps + c.ExpiredOps
	deniedTokens := c.DeniedClients * c.Ops
	return E2ECounts{
		TokenRequests: honestTokens + advTokens + deniedTokens,
		TokensIssued:  honestTokens + advTokens,
		TokensDenied:  deniedTokens,
		TSIssued:      honestTokens + advTokens,
		TSRejected:    deniedTokens,
		TxSubmitted:   writes + c.TamperedOps + 2*c.ReplayedOps + c.ExpiredOps,
		TxAccepted:    writes + c.ReplayedOps, // first use of a replayed token is legitimate
		TxRejected:    advTokens,
		ReadsOK:       reads,
		RejTampered:   c.TamperedOps,
		RejReplayed:   c.ReplayedOps,
		RejExpired:    c.ExpiredOps,
	}
}
