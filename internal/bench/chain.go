package bench

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/types"
)

// ChainModes are the runtime-verification pipelines the chain sweep
// compares, cumulative from left to right:
//
//	naive      — reference: naive double-and-add ecrecover, no caches,
//	             serial Chain.Apply
//	wnaf       — wNAF/GLV/Shamir ecrecover, no caches, serial Apply
//	cached     — wNAF plus the sender and token-signer caches, serial Apply
//	batched    — everything above driven through Chain.Execute with the
//	             prevalidate scheduler: parallel batched sender recovery
//	             and core.BatchTokenPrehook, serial commit
//	optimistic — everything above plus Block-STM optimistic-parallel
//	             execution of the state transitions themselves
var ChainModes = []string{"naive", "wnaf", "cached", "batched", "optimistic"}

// ChainConfig parameterizes the guarded-transaction throughput sweep.
type ChainConfig struct {
	// Txs is the number of pre-signed guarded transactions per cell.
	Txs int `json:"txs"`
	// Senders is the number of distinct client accounts; transactions are
	// interleaved round-robin so each sender's nonces stay ordered.
	Senders int `json:"senders"`
	// BatchSize is the transactions per Execute call in the batched and
	// optimistic modes.
	BatchSize int `json:"batchSize"`
	// Workers are the worker counts swept in the batched and optimistic
	// modes (serial modes ignore them and report workers = 1).
	Workers []int `json:"workers"`
	// Modes restricts the sweep (nil = all of ChainModes).
	Modes []string `json:"modes,omitempty"`
	// OnRow, when non-nil, observes every completed cell in sweep order;
	// smacs-bench uses it to flush partial results on SIGINT. Speedup is
	// still zero when a row is observed — it is filled in a post-pass.
	OnRow func(ChainRow) `json:"-"`
}

// DefaultChainConfig returns the sweep the BENCHMARKS.md table uses.
// Senders equals BatchSize so the round-robin interleave puts exactly one
// transaction per sender into each batch: a conflict-light workload whose
// write-sets are disjoint, the case the optimistic scheduler is built
// for. Conflict-heavy shapes are swept by setting Senders < BatchSize.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{Txs: 192, Senders: 32, BatchSize: 32, Workers: []int{1, 2, 4, 8}}
}

// ChainRow is one cell: a pipeline at a worker count.
type ChainRow struct {
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	Txs        int     `json:"txs"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"txPerSec"`
	// Speedup is the throughput relative to the naive row (0 when the
	// sweep excludes the naive baseline).
	Speedup float64 `json:"speedupVsNaive"`
}

// ChainResult is the full sweep.
type ChainResult struct {
	Config ChainConfig `json:"config"`
	Rows   []ChainRow  `json:"rows"`
}

// chainCell is one prepared workload: a fresh chain with a SMACS-guarded
// contract and Txs pre-signed, token-carrying transactions.
type chainCell struct {
	chain  *evm.Chain
	tsAddr types.Address
	txs    []*evm.Transaction
}

// newGuardedContract builds the minimal SMACS-enabled target: a bump()
// method whose cost is dominated by the verification preamble, which is
// exactly the hot path this sweep measures.
func newGuardedContract(v *core.Verifier) *evm.Contract {
	c := evm.NewContract("Guarded")
	c.MustAddMethod(evm.Method{
		Name:       "bump",
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			return []any{true}, nil
		},
	})
	return transform.Enable(c, v)
}

// newChainCell deploys the guarded contract and pre-signs the workload:
// every sender holds one reusable method token and submits Txs/Senders
// calls with consecutive nonces. Signing happens outside the measured
// interval.
func newChainCell(cfg ChainConfig) (*chainCell, error) {
	tsKey := secp256k1.PrivateKeyFromSeed([]byte("chain bench ts"))
	chain := evm.NewChain(evm.DefaultConfig())
	verifier := core.NewVerifier(tsKey.Address())
	owner := secp256k1.PrivateKeyFromSeed([]byte("chain bench owner"))
	target, _, err := chain.Deploy(owner.Address(), newGuardedContract(verifier))
	if err != nil {
		return nil, err
	}

	sel := abi.SelectorFor("bump()")
	expire := time.Now().Add(24 * time.Hour)
	keys := make([]*secp256k1.PrivateKey, cfg.Senders)
	tokens := make([][][]byte, cfg.Senders)
	for i := range keys {
		keys[i] = secp256k1.PrivateKeyFromSeed([]byte(fmt.Sprintf("chain bench sender %d", i)))
		chain.Fund(keys[i].Address(), ether(1000))
		tk, err := core.SignToken(tsKey, core.MethodType, expire, core.NotOneTime, core.Binding{
			Origin:   keys[i].Address(),
			Contract: target,
			Selector: sel,
		})
		if err != nil {
			return nil, err
		}
		tokens[i] = [][]byte{core.EncodeEntry(target, tk)}
	}

	cell := &chainCell{chain: chain, tsAddr: tsKey.Address()}
	for n := 0; len(cell.txs) < cfg.Txs; n++ {
		for i := 0; i < cfg.Senders && len(cell.txs) < cfg.Txs; i++ {
			tx := &evm.Transaction{
				Nonce:    uint64(n),
				To:       target,
				Value:    new(big.Int),
				GasLimit: 8_000_000,
				GasPrice: big.NewInt(1),
				Method:   "bump",
				Tokens:   tokens[i],
			}
			if err := evm.SignTx(tx, keys[i], chain.Config().ChainID); err != nil {
				return nil, err
			}
			cell.txs = append(cell.txs, tx)
		}
	}
	return cell, nil
}

// pipelineToggles flips the crypto fast path and the recovery caches for a
// mode and returns a restore function. Disabling a cache purges it, so
// every cell starts cold even though cells re-sign byte-identical
// transactions.
func pipelineToggles(mode string) (restore func()) {
	prevFast := secp256k1.SetFastMult(mode != "naive")
	caches := mode == "cached" || mode == "batched" || mode == "optimistic"
	prevSender := evm.SetSenderCache(false) // purge
	prevToken := core.SetTokenSigCache(false)
	evm.SetSenderCache(caches)
	core.SetTokenSigCache(caches)
	return func() {
		secp256k1.SetFastMult(prevFast)
		evm.SetSenderCache(prevSender)
		core.SetTokenSigCache(prevToken)
	}
}

func runChainCell(mode string, cfg ChainConfig, workers int) (ChainRow, error) {
	cell, err := newChainCell(cfg)
	if err != nil {
		return ChainRow{}, err
	}
	restore := pipelineToggles(mode)
	defer restore()

	start := time.Now()
	switch mode {
	case "batched", "optimistic":
		sched := evm.SchedulerPrevalidate
		if mode == "optimistic" {
			sched = evm.SchedulerOptimistic
		}
		hook := core.BatchTokenPrehook(cell.tsAddr, cell.chain.Config().ChainID)
		for off := 0; off < len(cell.txs); off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > len(cell.txs) {
				end = len(cell.txs)
			}
			for i, res := range cell.chain.Execute(cell.txs[off:end], evm.ExecOptions{
				Scheduler:        sched,
				Workers:          workers,
				PrevalidateBatch: hook,
			}) {
				if res.Err != nil {
					return ChainRow{}, fmt.Errorf("tx %d: %w", off+i, res.Err)
				}
				if !res.Receipt.Status {
					return ChainRow{}, fmt.Errorf("tx %d reverted: %w", off+i, res.Receipt.Err)
				}
			}
		}
	default:
		for i, tx := range cell.txs {
			r, err := cell.chain.Apply(tx)
			if err != nil {
				return ChainRow{}, fmt.Errorf("tx %d: %w", i, err)
			}
			if !r.Status {
				return ChainRow{}, fmt.Errorf("tx %d reverted: %w", i, r.Err)
			}
		}
	}
	elapsed := time.Since(start)
	return ChainRow{
		Mode:       mode,
		Workers:    workers,
		Txs:        len(cell.txs),
		Seconds:    elapsed.Seconds(),
		Throughput: float64(len(cell.txs)) / elapsed.Seconds(),
	}, nil
}

// Chain runs the closed-loop guarded-transaction sweep: every mode applies
// the same pre-signed workload, and batched mode is additionally swept over
// the prevalidation worker counts.
func Chain(cfg ChainConfig) (*ChainResult, error) {
	def := DefaultChainConfig()
	if cfg.Txs <= 0 {
		cfg.Txs = def.Txs
	}
	if cfg.Senders <= 0 {
		cfg.Senders = def.Senders
	}
	if cfg.Senders > cfg.Txs {
		cfg.Senders = cfg.Txs
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = def.BatchSize
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = def.Workers
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = ChainModes
	}
	for _, mode := range modes {
		known := false
		for _, m := range ChainModes {
			known = known || m == mode
		}
		if !known {
			return nil, fmt.Errorf("bench: unknown chain mode %q (supported: %s)", mode, strings.Join(ChainModes, ", "))
		}
	}
	for _, w := range cfg.Workers {
		if w < 1 {
			return nil, fmt.Errorf("bench: worker count must be positive, got %d", w)
		}
	}

	res := &ChainResult{Config: cfg}
	for _, mode := range modes {
		sweep := []int{1}
		if mode == "batched" || mode == "optimistic" {
			sweep = cfg.Workers
		}
		for _, workers := range sweep {
			row, err := runChainCell(mode, cfg, workers)
			if err != nil {
				return nil, fmt.Errorf("chain %s ×%d: %w", mode, workers, err)
			}
			res.Rows = append(res.Rows, row)
			if cfg.OnRow != nil {
				cfg.OnRow(row)
			}
		}
	}
	// Fill speedups in a post-pass so the naive baseline is found no
	// matter where it appears in a user-supplied mode order.
	naive := 0.0
	for _, row := range res.Rows {
		if row.Mode == "naive" {
			naive = row.Throughput
			break
		}
	}
	if naive > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = res.Rows[i].Throughput / naive
		}
	}
	return res, nil
}

// Format renders the sweep as the verification-pipeline table of
// docs/BENCHMARKS.md.
func (r *ChainResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guarded-transaction throughput by verification pipeline (%d txs, %d senders, batch size %d)\n",
		r.Config.Txs, r.Config.Senders, r.Config.BatchSize)
	b.WriteString("Each guarded tx performs two ecrecovers (tx sender + token signature) before the app handler runs.\n")
	fmt.Fprintf(&b, "  %-8s %8s %8s %10s %12s %10s\n",
		"mode", "workers", "txs", "seconds", "tx/s", "vs naive")
	for _, row := range r.Rows {
		speedup := "-"
		if row.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
		}
		fmt.Fprintf(&b, "  %-8s %8d %8d %10.3f %12.1f %10s\n",
			row.Mode, row.Workers, row.Txs, row.Seconds, row.Throughput, speedup)
	}
	return b.String()
}

// CSV renders the sweep as machine-readable rows (one line per cell).
func (r *ChainResult) CSV() string {
	var b strings.Builder
	b.WriteString("mode,workers,txs,seconds,tx_per_sec,speedup_vs_naive\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.1f,%.3f\n",
			row.Mode, row.Workers, row.Txs, row.Seconds, row.Throughput, row.Speedup)
	}
	return b.String()
}
