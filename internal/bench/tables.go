package bench

import (
	"fmt"
	"strings"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/transform"
	"repro/internal/types"
	"repro/internal/wallet"
)

// tokenTypes is the presentation order of Tab. II.
var tokenTypes = []core.TokenType{core.SuperType, core.MethodType, core.ArgumentType}

// TableIIResult holds the single-token processing cost of Tab. II.
type TableIIResult struct {
	// Plain and OneTime map token types to their cost breakdowns.
	Plain   map[core.TokenType]CostRow `json:"plain"`
	OneTime map[core.TokenType]CostRow `json:"oneTime"`
	// Price is the calibration used for the USD row.
	Price gas.Price `json:"price"`
}

// TableII measures the gas cost of processing a single token of each type,
// with and without the one-time property (experiment E1). Each
// configuration runs on a fresh testbed so every one-time token pays the
// full cold-bitmap write, as in the paper's per-configuration runs.
func TableII() (*TableIIResult, error) {
	res := &TableIIResult{
		Plain:   make(map[core.TokenType]CostRow, 3),
		OneTime: make(map[core.TokenType]CostRow, 3),
		Price:   gas.DefaultPrice,
	}
	for _, tp := range tokenTypes {
		for _, oneTime := range []bool{false, true} {
			tb, err := newTestbed()
			if err != nil {
				return nil, err
			}
			r, err := tb.issueAndCall(tp, oneTime)
			if err != nil {
				return nil, fmt.Errorf("table II %s (one-time=%t): %w", tp, oneTime, err)
			}
			row := rowFromReceipt(r, res.Price)
			if oneTime {
				res.OneTime[tp] = row
			} else {
				res.Plain[tp] = row
			}
		}
	}
	return res, nil
}

// Format renders the result in the paper's Tab. II layout.
func (t *TableIIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tab. II: Single token processing gas cost\n")
	section := func(title string, rows map[core.TokenType]CostRow, withBitmap bool) {
		fmt.Fprintf(&b, "  Token type (%s)\n", title)
		fmt.Fprintf(&b, "  %-8s %14s %14s %14s\n", "Cost", "Super", "Method", "Argument")
		line := func(name string, pick func(CostRow) uint64) {
			fmt.Fprintf(&b, "  %-8s", name)
			for _, tp := range tokenTypes {
				row := rows[tp]
				fmt.Fprintf(&b, " %8d (%s)", pick(row), pct(pick(row), row.Total))
			}
			fmt.Fprintln(&b)
		}
		line("Verify", func(r CostRow) uint64 { return r.Verify })
		line("Misc", func(r CostRow) uint64 { return r.Misc })
		if withBitmap {
			line("Bitmap", func(r CostRow) uint64 { return r.Bitmap })
		}
		fmt.Fprintf(&b, "  %-8s", "Total")
		for _, tp := range tokenTypes {
			fmt.Fprintf(&b, " %14d", rows[tp].Total)
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "  %-8s", "USD")
		for _, tp := range tokenTypes {
			fmt.Fprintf(&b, " %14.3f", rows[tp].USD)
		}
		fmt.Fprintln(&b)
	}
	section("without the one-time property", t.Plain, false)
	section("with the one-time property", t.OneTime, true)
	return b.String()
}

// TableIIIResult holds the call-chain costs of Tab. III.
type TableIIIResult struct {
	// Depths lists the evaluated chain lengths (token counts).
	Depths []int `json:"depths"`
	// Rows maps a depth to the aggregated cost of the transaction.
	Rows map[int]CostRow `json:"rows"`
	// Price is the calibration used for the USD row.
	Price gas.Price `json:"price"`
}

// TableIII measures transactions carrying 1-4 one-time argument tokens
// through call chains of the corresponding depth (experiment E2, Fig. 5's
// topology).
func TableIII() (*TableIIIResult, error) {
	res := &TableIIIResult{Rows: make(map[int]CostRow, 4)}
	for depth := 1; depth <= 4; depth++ {
		row, err := ChainRun(depth, core.ArgumentType, true)
		if err != nil {
			return nil, fmt.Errorf("table III depth %d: %w", depth, err)
		}
		res.Depths = append(res.Depths, depth)
		res.Rows[depth] = row
		res.Price = gas.DefaultPrice
	}
	return res, nil
}

// ChainRun executes one transaction through a SMACS-protected call chain of
// the given depth, with one token per link of the given type, and returns
// the aggregated cost row (shared by Tab. III, Fig. 8, and the root-level
// benchmarks).
func ChainRun(depth int, tp core.TokenType, oneTime bool) (CostRow, error) {
	tb, err := newTestbed()
	if err != nil {
		return CostRow{}, err
	}
	wrap := func(link *evm.Contract) *evm.Contract {
		verifier := core.NewVerifier(tb.service.Address())
		bm, err := core.NewBitmap(benchBitmapBits, 1<<32)
		if err != nil {
			return link
		}
		verifier.WithBitmap(bm)
		return transform.Enable(link, verifier, transform.Options{Suffix: " (SMACS)"})
	}
	deploy := func(c *evm.Contract) (types.Address, error) {
		addr, _, err := tb.chain.Deploy(tb.owner.Address(), c)
		return addr, err
	}
	addrs, err := contracts.BuildChain(deploy, depth, wrap)
	if err != nil {
		return CostRow{}, err
	}

	// One token per link: link i is invoked as relay(i), so argument
	// tokens bind that exact payload (§ IV-D).
	entries := make([]wallet.TokenEntry, 0, depth)
	for i, addr := range addrs {
		req := &core.Request{
			Type:     tp,
			Contract: addr,
			Sender:   tb.client.Address(),
			OneTime:  oneTime,
		}
		switch tp {
		case core.MethodType:
			req.Method = "relay(uint256,string)"
		case core.ArgumentType:
			req.Method = "relay"
			req.Args = []core.NamedArg{
				{Name: "v", Value: uint64(i)},
				{Name: "note", Value: argNote},
			}
		}
		tk, err := tb.service.Issue(req)
		if err != nil {
			return CostRow{}, fmt.Errorf("issue for link %d: %w", i, err)
		}
		entries = append(entries, wallet.TokenEntry{Contract: addr, Token: tk})
	}

	r, err := tb.client.Call(addrs[0], "relay", wallet.WithTokens(entries...), uint64(0), argNote)
	if err != nil {
		return CostRow{}, err
	}
	if !r.Status {
		return CostRow{}, fmt.Errorf("chain call reverted: %w", r.Err)
	}
	return rowFromReceipt(r, tb.chain.Config().Price), nil
}

// Format renders the result in the paper's Tab. III layout.
func (t *TableIIIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tab. III: Gas cost for multiple one-time argument tokens\n")
	fmt.Fprintf(&b, "  %-8s", "Cost")
	for _, d := range t.Depths {
		fmt.Fprintf(&b, " %16d", d)
	}
	fmt.Fprintln(&b)
	line := func(name string, pick func(CostRow) uint64) {
		fmt.Fprintf(&b, "  %-8s", name)
		for _, d := range t.Depths {
			row := t.Rows[d]
			v := pick(row)
			if name == "Parse" && v == 0 {
				fmt.Fprintf(&b, " %16s", "–")
				continue
			}
			fmt.Fprintf(&b, " %10d (%s)", v, pct(v, row.Total))
		}
		fmt.Fprintln(&b)
	}
	line("Verify", func(r CostRow) uint64 { return r.Verify })
	line("Misc", func(r CostRow) uint64 { return r.Misc })
	line("Bitmap", func(r CostRow) uint64 { return r.Bitmap })
	line("Parse", func(r CostRow) uint64 { return r.Parse })
	fmt.Fprintf(&b, "  %-8s", "Total")
	for _, d := range t.Depths {
		fmt.Fprintf(&b, " %16d", t.Rows[d].Total)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-8s", "USD")
	for _, d := range t.Depths {
		fmt.Fprintf(&b, " %16.3f", t.Rows[d].USD)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// TableIVRow is one column of Tab. IV.
type TableIVRow struct {
	// TxPerSec is the assumed peak transaction rate.
	TxPerSec float64 `json:"txPerSec"`
	// Bits is the required bitmap size (lifetime × rate).
	Bits int `json:"bits"`
	// StorageKB is the bitmap size in kilobytes.
	StorageKB float64 `json:"storageKB"`
	// DeployGas is the one-time deployment cost of pre-allocating the
	// bitmap words.
	DeployGas uint64 `json:"deployGas"`
	// USD converts DeployGas.
	USD float64 `json:"usd"`
}

// TableIVResult holds the bitmap storage costs of Tab. IV.
type TableIVResult struct {
	// LifetimeSeconds is the assumed token lifetime (the paper uses 1 h).
	LifetimeSeconds float64      `json:"lifetimeSeconds"`
	Rows            []TableIVRow `json:"rows"`
}

// TableIV sizes the one-time-token bitmap for the paper's three peak
// transaction rates and measures the actual deployment gas of
// pre-allocating it (experiment E3).
func TableIV() (*TableIVResult, error) {
	const lifetime = 3600.0
	res := &TableIVResult{LifetimeSeconds: lifetime}
	for _, rate := range []float64{35, 3.5, 0.35} {
		bits := core.SizeFor(lifetime, rate)
		bm, err := core.NewBitmap(bits, 1<<32)
		if err != nil {
			return nil, err
		}

		chain := evm.NewChain(evm.DefaultConfig())
		owner := wallet.FromSeed("tab4 owner", chain)
		chain.Fund(owner.Address(), ether(1000))
		c := evm.NewContract(fmt.Sprintf("Bitmap%.2gtps", rate))
		c.MustAddMethod(evm.Method{Name: "noop", Visibility: evm.Public,
			Handler: func(*evm.Call) ([]any, error) { return nil, nil }})
		c.SetInitialStorageWords(bm.StorageWords())
		_, receipt, err := chain.Deploy(owner.Address(), c)
		if err != nil {
			return nil, err
		}
		deployGas := receipt.GasByCategory[gas.CatBitmap]
		res.Rows = append(res.Rows, TableIVRow{
			TxPerSec:  rate,
			Bits:      bits,
			StorageKB: float64(bits) / 8 / 1024,
			DeployGas: deployGas,
			USD:       chain.Config().Price.USD(deployGas),
		})
	}
	return res, nil
}

// Format renders the result in the paper's Tab. IV layout.
func (t *TableIVResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tab. IV: Storage cost for the bitmap (one-time, lifetime %.0fs)\n", t.LifetimeSeconds)
	fmt.Fprintf(&b, "  %-12s", "Cost")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %12.4g tx/s", r.TxPerSec)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-12s", "Storage")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %12.3f KB", r.StorageKB)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-12s", "Deployment")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %15d", r.DeployGas)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-12s", "USD")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %15.3f", r.USD)
	}
	fmt.Fprintln(&b)
	return b.String()
}
