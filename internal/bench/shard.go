package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nettest"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/ts/replica/net"
	"repro/internal/ts/ring"
	"repro/internal/tshttp"
)

// The sharded-issuance sweep (-mode shard) measures how one-time token
// throughput scales with replica-group count: the token keyspace is
// sharded across G independent 3-replica quorum groups by the
// consistent-hash ring (internal/ts/ring), each group's coordinator is
// striped (ring.Stripe) so index ranges stay globally disjoint without
// any cross-group coordination, and every replica sits behind a proxy
// injecting a fixed per-hop delay so the quorum round-trip — not local
// CPU — is the bottleneck, as it would be across real machines. Each
// added group brings its own quorum, so tokens/s must rise with G; the
// sweep also audits that no index is ever issued twice across all
// groups, which is exactly what the striping guarantees.

// shardReplicas is each group's replica count: one independent quorum.
const shardReplicas = 3

// ShardConfig parameterizes the sharded-issuance sweep.
type ShardConfig struct {
	// Groups are the replica-group counts to sweep (e.g. 1,2,4).
	Groups []int `json:"groups"`
	// Clients is the number of concurrent wallet clients; each is routed
	// to its group by the consistent-hash ring over its sender address.
	Clients int `json:"clients"`
	// Ops is the number of one-time tokens each client obtains.
	Ops int `json:"opsPerClient"`
	// TokenBatch is the number of tokens per POST /v1/tokens round-trip.
	TokenBatch int `json:"tokenBatch"`
	// RTT is the injected one-way per-hop delay on every replica link,
	// modeling the network between the coordinator and its replicas.
	RTT time.Duration `json:"rtt"`
	// Join switches each cell to the live-resharding variant: G groups
	// serve, and a (G+1)-th joins mid-run through the membership
	// protocol (see shardjoin.go).
	Join bool `json:"join,omitempty"`
	// OnRow observes every completed cell in run order (partial flushing).
	OnRow func(ShardRow) `json:"-"`
	// OnJoinRow is OnRow for the live-resharding variant.
	OnJoinRow func(JoinRow) `json:"-"`
}

// ShardRow is one cell of the sweep: all clients driving G groups.
type ShardRow struct {
	Groups       int     `json:"groups"`
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"opsPerClient"`
	Tokens       int     `json:"tokens"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokensPerSec"`
	// PerGroup is how many tokens each group issued — the ring's load
	// split over this client population.
	PerGroup []int `json:"perGroup"`
}

// ShardResult is the full sweep: Rows for the static variant, JoinRows
// for the live-resharding one.
type ShardResult struct {
	Config   ShardConfig `json:"config"`
	Rows     []ShardRow  `json:"rows,omitempty"`
	JoinRows []JoinRow   `json:"joinRows,omitempty"`
}

// Shard runs the sharded-issuance sweep.
func Shard(cfg ShardConfig) (*ShardResult, error) {
	if len(cfg.Groups) == 0 {
		cfg.Groups = []int{1, 2, 4}
	}
	if cfg.Clients < 1 || cfg.Ops < 1 {
		return nil, fmt.Errorf("shard sweep needs clients and ops, got %d×%d", cfg.Clients, cfg.Ops)
	}
	if cfg.TokenBatch < 1 {
		cfg.TokenBatch = 25
	}
	res := &ShardResult{Config: cfg}
	for _, g := range cfg.Groups {
		if g < 1 {
			return nil, fmt.Errorf("group count must be ≥ 1, got %d", g)
		}
		if cfg.Join {
			row, err := runJoinCell(cfg, g)
			if err != nil {
				return nil, fmt.Errorf("live-resharding sweep, %d groups: %w", g, err)
			}
			res.JoinRows = append(res.JoinRows, row)
			if cfg.OnJoinRow != nil {
				cfg.OnJoinRow(row)
			}
			continue
		}
		row, err := runShardCell(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("shard sweep, %d groups: %w", g, err)
		}
		res.Rows = append(res.Rows, row)
		if cfg.OnRow != nil {
			cfg.OnRow(row)
		}
	}
	return res, nil
}

// shardGroup is one replica group's stack for the sweep.
type shardGroup struct {
	name string
	base string
}

func runShardCell(cfg ShardConfig, groups int) (ShardRow, error) {
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()

	// Shared identity and rules: one signing key and one whitelist across
	// every group, exactly like one logical Token Service scaled out.
	tsKey := secp256k1.PrivateKeyFromSeed([]byte("shard sweep ts key"))
	clients := make([]*secp256k1.PrivateKey, cfg.Clients)
	allowed := rules.NewList(rules.Whitelist)
	for i := range clients {
		clients[i] = secp256k1.PrivateKeyFromSeed([]byte(fmt.Sprintf("shard sweep client %d", i)))
		allowed.Add(core.ValueKey(clients[i].Address()))
	}
	ruleSet := rules.NewRuleSet()
	ruleSet.SetSenderList(allowed)
	target := secp256k1.PrivateKeyFromSeed([]byte("shard sweep target")).Address()

	// G groups: each an independent quorum of volatile replicas behind
	// delay-injecting proxies, striped so index ranges never overlap.
	r := ring.New(0)
	stacks := make([]shardGroup, groups)
	reg := metrics.NewRegistry()
	for g := 0; g < groups; g++ {
		name := fmt.Sprintf("group-%d", g)
		r.Add(name)
		urls := make([]string, shardReplicas)
		for i := 0; i < shardReplicas; i++ {
			srv, err := net.Serve(net.NewNode(), "127.0.0.1:0")
			if err != nil {
				return ShardRow{}, err
			}
			cleanups = append(cleanups, func() { _ = srv.Close() })
			proxy, err := nettest.NewProxy(srv.Addr())
			if err != nil {
				return ShardRow{}, err
			}
			cleanups = append(cleanups, func() { _ = proxy.Close() })
			proxy.SetDelay(cfg.RTT)
			urls[i] = proxy.URL()
		}
		coord, err := net.NewCoordinator(urls, net.Options{})
		if err != nil {
			return ShardRow{}, err
		}
		stripe, err := ring.NewStripe(coord, g, groups)
		if err != nil {
			return ShardRow{}, err
		}
		sharded, err := ts.NewShardedCounter(stripe, shardedCounterShards, shardedCounterBlock)
		if err != nil {
			return ShardRow{}, err
		}
		svc, err := ts.New(ts.Config{Key: tsKey, Rules: ruleSet, Counter: sharded, Metrics: reg})
		if err != nil {
			return ShardRow{}, err
		}
		base, stop, err := startServer(svc, reg)
		if err != nil {
			return ShardRow{}, err
		}
		cleanups = append(cleanups, stop)
		stacks[g] = shardGroup{name: name, base: base}
	}
	groupIdx := make(map[string]int, groups)
	for g, s := range stacks {
		groupIdx[s.name] = g
	}

	// Route every client to its group and drive them concurrently.
	type clientOut struct {
		group   int
		indexes []int64
		err     error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i, key := range clients {
		name, err := r.Get(key.Address().Bytes())
		if err != nil {
			return ShardRow{}, err
		}
		g := groupIdx[name]
		outs[i].group = g
		cl := tshttp.NewClient(stacks[g].base, "")
		wg.Add(1)
		go func(i int, key *secp256k1.PrivateKey, cl *tshttp.Client) {
			defer wg.Done()
			indexes := make([]int64, 0, cfg.Ops)
			for off := 0; off < cfg.Ops; off += cfg.TokenBatch {
				n := min(cfg.TokenBatch, cfg.Ops-off)
				reqs := make([]*core.Request, n)
				for j := range reqs {
					reqs[j] = &core.Request{
						Type:     core.SuperType,
						Contract: target,
						Sender:   key.Address(),
						OneTime:  true,
					}
				}
				res, err := cl.RequestTokens(reqs)
				if err != nil {
					outs[i].err = err
					return
				}
				for _, r := range res {
					if r.Err != nil {
						outs[i].err = fmt.Errorf("unexpected denial: %w", r.Err)
						return
					}
					if !r.Token.OneTime() {
						outs[i].err = fmt.Errorf("token issued without a one-time index")
						return
					}
					indexes = append(indexes, r.Token.Index)
				}
			}
			outs[i].indexes = indexes
		}(i, key, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Global uniqueness across every group — the property the striping
	// exists to guarantee without cross-group coordination.
	seen := make(map[int64]bool, cfg.Clients*cfg.Ops)
	perGroup := make([]int, groups)
	total := 0
	for _, out := range outs {
		if out.err != nil {
			return ShardRow{}, out.err
		}
		for _, idx := range out.indexes {
			if seen[idx] {
				return ShardRow{}, fmt.Errorf("one-time index %d issued twice across groups", idx)
			}
			seen[idx] = true
		}
		perGroup[out.group] += len(out.indexes)
		total += len(out.indexes)
	}
	return ShardRow{
		Groups:       groups,
		Clients:      cfg.Clients,
		OpsPerClient: cfg.Ops,
		Tokens:       total,
		Seconds:      elapsed.Seconds(),
		TokensPerSec: float64(total) / elapsed.Seconds(),
		PerGroup:     perGroup,
	}, nil
}

// Format renders the sweep as the sharded-issuance scaling table of
// docs/BENCHMARKS.md (or the live-resharding table for -join runs).
func (r *ShardResult) Format() string {
	if r.Config.Join {
		return r.FormatJoin()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded issuance scaling: %d clients × %d one-time tokens, %s injected per replica hop\n",
		r.Config.Clients, r.Config.Ops, r.Config.RTT)
	fmt.Fprintf(&b, "  %-7s %8s %9s %10s   %s\n", "groups", "tokens", "seconds", "tokens/s", "per-group split")
	for _, row := range r.Rows {
		split := make([]string, len(row.PerGroup))
		for i, n := range row.PerGroup {
			split[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "  %-7d %8d %9.3f %10.1f   %s\n",
			row.Groups, row.Tokens, row.Seconds, row.TokensPerSec, strings.Join(split, "/"))
	}
	b.WriteString("Every index audited unique across all groups (ring-striped keyspace).\n")
	return b.String()
}

// CSV renders the sweep machine-readably.
func (r *ShardResult) CSV() string {
	var b strings.Builder
	if r.Config.Join {
		b.WriteString("groups,clients,ops_per_client,tokens,seconds,tokens_per_sec,before_per_sec,during_per_sec,after_per_sec,join_millis,moved_fraction,joiner_tokens\n")
		for _, row := range r.JoinRows {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%.3f,%.1f,%.1f,%.1f,%.1f,%.1f,%.4f,%d\n",
				row.Groups, row.Clients, row.OpsPerClient, row.Tokens, row.Seconds, row.TokensPerSec,
				row.BeforePerSec, row.DuringPerSec, row.AfterPerSec, row.JoinMillis, row.MovedFraction, row.JoinerTokens)
		}
		return b.String()
	}
	b.WriteString("groups,clients,ops_per_client,tokens,seconds,tokens_per_sec\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%.3f,%.1f\n",
			row.Groups, row.Clients, row.OpsPerClient, row.Tokens, row.Seconds, row.TokensPerSec)
	}
	return b.String()
}
