package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// The tests below validate the *shape* of every regenerated table and
// figure against the paper's qualitative claims; EXPERIMENTS.md records the
// quantitative paper-vs-measured comparison.

func TestTableIIShape(t *testing.T) {
	res, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []map[core.TokenType]CostRow{res.Plain, res.OneTime} {
		// Argument verification ≈ 3× super/method (paper: 330889 vs
		// 108282/115108).
		sup, met, arg := rows[core.SuperType], rows[core.MethodType], rows[core.ArgumentType]
		if !(arg.Verify > 2*sup.Verify && arg.Verify < 4*sup.Verify) {
			t.Errorf("argument verify %d not ≈3× super verify %d", arg.Verify, sup.Verify)
		}
		if met.Verify <= sup.Verify {
			t.Errorf("method verify %d not > super verify %d", met.Verify, sup.Verify)
		}
		// Verification dominates the total (paper: 56-85%).
		if 2*sup.Verify < sup.Total {
			t.Errorf("super verify %d below half of total %d", sup.Verify, sup.Total)
		}
		// USD within the paper's order of magnitude (< $0.25 per call).
		if arg.USD <= 0 || arg.USD > 0.25 {
			t.Errorf("argument USD = %f out of range", arg.USD)
		}
	}
	// Calibration anchors (exact by construction).
	if got := res.Plain[core.SuperType].Verify; got != 108282 {
		t.Errorf("super verify = %d, want 108282 (paper Tab. II)", got)
	}
	if got := res.Plain[core.MethodType].Verify; got != 115108 {
		t.Errorf("method verify = %d, want 115108 (paper Tab. II)", got)
	}
	// One-time adds bitmap cost but leaves verification unchanged.
	for _, tp := range tokenTypes {
		if res.OneTime[tp].Bitmap == 0 {
			t.Errorf("%s one-time has no bitmap cost", tp)
		}
		if res.Plain[tp].Bitmap != 0 {
			t.Errorf("%s plain token charged bitmap gas", tp)
		}
	}
	if s := res.Format(); !strings.Contains(s, "Tab. II") {
		t.Error("Format missing header")
	}
}

func TestTableIIIShape(t *testing.T) {
	res, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Depths) != 4 {
		t.Fatalf("depths = %v", res.Depths)
	}
	oneDepthVerify := res.Rows[1].Verify
	for _, d := range res.Depths {
		row := res.Rows[d]
		// Verify grows linearly with the number of tokens (paper: 330914,
		// 662952, 994552, 1326506).
		lo, hi := uint64(d)*oneDepthVerify*95/100, uint64(d)*oneDepthVerify*105/100
		if row.Verify < lo || row.Verify > hi {
			t.Errorf("depth %d verify %d not ≈ %d×%d", d, row.Verify, d, oneDepthVerify)
		}
		// Parse appears only for multi-token transactions and equals
		// scanned-entries × GasParseEntry (1+2+...+d scans).
		wantParse := uint64(0)
		if d > 1 {
			wantParse = core.GasParseEntry * uint64(d*(d+1)/2)
		}
		if row.Parse != wantParse {
			t.Errorf("depth %d parse = %d, want %d", d, row.Parse, wantParse)
		}
		if row.Bitmap == 0 {
			t.Errorf("depth %d missing bitmap cost", d)
		}
	}
	if s := res.Format(); !strings.Contains(s, "Tab. III") {
		t.Error("Format missing header")
	}
}

func TestTableIVShape(t *testing.T) {
	res, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 35 tx/s × 3600 s = 126000 bits ≈ 15.38 KB (paper's first column).
	first := res.Rows[0]
	if first.Bits != 126000 {
		t.Errorf("bits = %d, want 126000", first.Bits)
	}
	if first.StorageKB < 15.0 || first.StorageKB > 15.8 {
		t.Errorf("storage = %.2f KB, want ≈15.38", first.StorageKB)
	}
	// Deployment gas within 25%% of the paper's 8849037.
	if first.DeployGas < 7_000_000 || first.DeployGas > 11_000_000 {
		t.Errorf("deploy gas = %d, want ≈8.8M", first.DeployGas)
	}
	// Cost is linear in the transaction rate (≈10× smaller per column;
	// the smallest bitmap deviates because word-count quantization and
	// the two window-state words dominate at that size).
	for i := 1; i < len(res.Rows); i++ {
		ratio := float64(res.Rows[i-1].DeployGas) / float64(res.Rows[i].DeployGas)
		if ratio < 6 || ratio > 12 {
			t.Errorf("deployment cost ratio %f, want ≈10", ratio)
		}
	}
	if s := res.Format(); !strings.Contains(s, "Tab. IV") {
		t.Error("Format missing header")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Figure8Series {
		series := res.TotalGas[name]
		if len(series) != 4 {
			t.Fatalf("series %s has %d points", name, len(series))
		}
		for i := 1; i < len(series); i++ {
			if series[i] <= series[i-1] {
				t.Errorf("series %s not increasing: %v", name, series)
			}
		}
	}
	// Ordering at every count: argument-onetime > argument > method > super.
	for i := range res.Counts {
		if !(res.TotalGas["argument-onetime"][i] > res.TotalGas["argument"][i] &&
			res.TotalGas["argument"][i] > res.TotalGas["method"][i] &&
			res.TotalGas["method"][i] > res.TotalGas["super"][i]) {
			t.Errorf("ordering violated at count %d", res.Counts[i])
		}
	}
	if s := res.Format(); !strings.Contains(s, "Fig. 8") {
		t.Error("Format missing header")
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(2) // up to 100 requests per batch in tests
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BatchSizes) != 3 {
		t.Fatalf("batch sizes = %v", res.BatchSizes)
	}
	for _, name := range Figure8Series {
		for i, v := range res.ReqPerSec[name] {
			if v <= 0 {
				t.Errorf("series %s batch %d: %f req/s", name, res.BatchSizes[i], v)
			}
		}
	}
	if s := res.Format(); !strings.Contains(s, "Fig. 9") {
		t.Error("Format missing header")
	}
}

func TestRuntimeToolsShape(t *testing.T) {
	res, err := RuntimeTools(50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Hydra ≈120 ms/req vs ECF ≈10 ms/req. The 12× gap comes from
	// geth testnet submission latency (3 heads → 3 round trips), which our
	// in-process heads do not pay, so we only assert the robust part of
	// the shape: both tools process requests at rates far above main-net
	// demand (the paper's conclusion), in the same ballpark of each other.
	if res.HydraReqPerSec < 100 || res.ECFReqPerSec < 100 {
		t.Fatalf("tool throughput below main-net demand: %+v", res)
	}
	ratio := res.HydraReqPerSec / res.ECFReqPerSec
	if ratio > 10 || ratio < 0.01 {
		t.Errorf("hydra/ecf throughput ratio %f wildly out of range", ratio)
	}
	if s := res.Format(); !strings.Contains(s, "VI-B") {
		t.Error("Format missing header")
	}
}

func TestBaselineShape(t *testing.T) {
	res, err := Baseline([]int{50, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Populating cost is linear in N (paper: "a linear cost in the number
	// of update operations").
	ratio := float64(res.Rows[1].PopulateGas) / float64(res.Rows[0].PopulateGas)
	if ratio < 8 || ratio > 12 {
		t.Errorf("populate cost ratio %f, want ≈10", ratio)
	}
	// SMACS per-call cost is constant and orders of magnitude below the
	// whitelist maintenance cost.
	if res.SMACSPerCallGas == 0 || res.SMACSPerCallGas > res.Rows[1].PopulateGas/10 {
		t.Errorf("SMACS per-call %d not far below populate %d",
			res.SMACSPerCallGas, res.Rows[1].PopulateGas)
	}
	if s := res.Format(); !strings.Contains(s, "baseline") {
		t.Error("Format missing header")
	}
}
