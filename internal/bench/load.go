package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/secp256k1"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/types"
)

// LoadModes are the issuance pipelines the load generator compares:
//
//	locked  — one mutex held across the whole issuance: a coarse-grained
//	          reference baseline (what a naively thread-safe service
//	          does; the pre-refactor service serialized only its stats
//	          and rule-snapshot accesses, not the full path)
//	atomic  — the lock-free Service with the single-mutex LocalCounter
//	sharded — the lock-free Service with a ShardedCounter leasing index
//	          blocks per shard
//	batch   — the sharded Service driven through Service.IssueBatch in
//	          groups of LoadConfig.BatchSize requests
var LoadModes = []string{"locked", "atomic", "sharded", "batch"}

// LoadConfig parameterizes the closed-loop load generator.
type LoadConfig struct {
	// Workers are the concurrent issuer counts to sweep (e.g. 1, 4, 8).
	Workers []int `json:"workers"`
	// Duration is the measured interval per mode × worker-count cell.
	Duration time.Duration `json:"duration"`
	// Warmup runs the same load unmeasured before each cell.
	Warmup time.Duration `json:"warmup"`
	// OneTime requests the one-time property, exercising the counter —
	// the contended resource the sharded pipeline exists for.
	OneTime bool `json:"oneTime"`
	// BatchSize is the requests per IssueBatch call in batch mode.
	BatchSize int `json:"batchSize"`
	// RTT models the § VII-B replicated-counter deployment: every index
	// allocation is a quorum round costing one round-trip of this length
	// (rounds serialize — any two majorities intersect). 0 benchmarks the
	// single-instance in-process counter instead.
	RTT time.Duration `json:"rtt"`
	// Modes restricts the sweep (nil = all of LoadModes).
	Modes []string `json:"modes,omitempty"`
	// Store selects the persistence backing the index counter: "" or
	// "mem" allocate in memory (with the modeled RTT above), "file"
	// journals every allocation through a durable store.Counter whose
	// group-commit WAL fsyncs before an index is handed out — the
	// mem-vs-file table of docs/BENCHMARKS.md. The sharded and batch
	// modes amortize the WAL appends across leaseBlockSize-index leases;
	// locked and atomic pay one durable append per allocation.
	Store string `json:"store,omitempty"`
	// Dir is where file-backed counters keep their WALs, one
	// subdirectory per cell (empty: a temp dir, removed afterwards).
	Dir string `json:"dir,omitempty"`
	// FsyncBatch is the group-commit batch of file-backed counters
	// (0: the store default).
	FsyncBatch int `json:"fsyncBatch,omitempty"`
	// OnRow, when non-nil, observes every completed cell in sweep order;
	// smacs-bench uses it to flush partial results on SIGINT.
	OnRow func(LoadRow) `json:"-"`
}

// DefaultLoadConfig returns the sweep the BENCHMARKS.md table uses.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Workers:   []int{1, 2, 4, 8},
		Duration:  2 * time.Second,
		Warmup:    250 * time.Millisecond,
		OneTime:   true,
		BatchSize: 32,
		RTT:       time.Millisecond,
	}
}

// LoadRow is one cell of the sweep: a mode at a worker count. The
// latency percentiles are per issuing call — one request in the locked/
// atomic/sharded modes, one whole batch in batch mode.
type LoadRow struct {
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	Requests   uint64  `json:"requests"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"reqPerSec"`
	P50Micros  float64 `json:"p50Micros"`
	P95Micros  float64 `json:"p95Micros"`
	P99Micros  float64 `json:"p99Micros"`
}

// LoadResult is the full sweep.
type LoadResult struct {
	Config LoadConfig `json:"config"`
	Rows   []LoadRow  `json:"rows"`
}

// loadRequest is the canonical request of the load benchmark: a one-time
// (configurable) method token, the shape a wallet requests per
// transaction.
func loadRequest(oneTime bool) *core.Request {
	return &core.Request{
		Type:     core.MethodType,
		Contract: types.Address{0x01},
		Sender:   types.Address{0xc1},
		Method:   actSignature,
		OneTime:  oneTime,
	}
}

// issuer turns a fresh request into tokens; it reports how many requests
// one call covers so batch mode amortizes correctly.
type issuer struct {
	// perCall is the number of requests one issue() covers.
	perCall int
	issue   func() error
	// close releases the cell's counter backing (file WAL handles).
	close func()
}

// newLoadService builds a fresh lock-free service for one cell.
func newLoadService(counter ts.Counter) (*ts.Service, error) {
	return ts.New(ts.Config{
		Key:     secp256k1.PrivateKeyFromSeed([]byte("load ts key")),
		Counter: counter,
	})
}

// rttCounter models one frontend of the replicated counter of § VII-B:
// every allocation is a quorum round costing one round-trip, and rounds
// serialize because any two majorities intersect (concurrent proposers
// retry until they win a round). With RTT 0 it degenerates to
// LocalCounter.
type rttCounter struct {
	mu  sync.Mutex
	rtt time.Duration
	n   int64
}

func (c *rttCounter) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	c.n++
	return c.n, nil
}

// leaseBlockSize is how many one-time indexes a shard leases per
// underlying allocation in the sharded and batch modes.
const leaseBlockSize = 64

// newCellCounter returns the allocation counter one cell uses plus its
// cleanup: the RTT-modeled in-process counter for mem runs, or a durable
// store.Counter on a fresh per-cell directory for Store "file" (every
// allocation — a block lease in the sharded modes — is fsynced through
// the group-commit WAL before an index is handed out).
func newCellCounter(cfg LoadConfig, mode string, workers int) (ts.Counter, func(), error) {
	switch cfg.Store {
	case "", "mem":
		return &rttCounter{rtt: cfg.RTT}, func() {}, nil
	case "file":
	default:
		return nil, nil, fmt.Errorf("bench: unknown store %q (supported: mem, file)", cfg.Store)
	}
	base := cfg.Dir
	cleanupBase := func() {}
	if base == "" {
		tmp, err := os.MkdirTemp("", "smacs-load-*")
		if err != nil {
			return nil, nil, err
		}
		base = tmp
		cleanupBase = func() { os.RemoveAll(tmp) }
	}
	dir := filepath.Join(base, fmt.Sprintf("%s-w%d", mode, workers))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		cleanupBase()
		return nil, nil, err
	}
	f, err := store.OpenFile(dir, store.FileOptions{FsyncBatch: cfg.FsyncBatch})
	if err != nil {
		cleanupBase()
		return nil, nil, err
	}
	c, err := store.OpenCounter(f, store.DefaultCounterSnapshotEvery)
	if err != nil {
		f.Close()
		cleanupBase()
		return nil, nil, err
	}
	return c, func() { f.Close(); cleanupBase() }, nil
}

func newIssuer(mode string, cfg LoadConfig, workers int) (*issuer, error) {
	req := loadRequest(cfg.OneTime)
	underlying, closeCounter, err := newCellCounter(cfg, mode, workers)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*issuer, error) {
		closeCounter()
		return nil, err
	}
	switch mode {
	case "locked":
		svc, err := newLoadService(underlying)
		if err != nil {
			return fail(err)
		}
		var mu sync.Mutex
		return &issuer{perCall: 1, close: closeCounter, issue: func() error {
			mu.Lock()
			defer mu.Unlock()
			_, err := svc.Issue(req)
			return err
		}}, nil
	case "atomic":
		svc, err := newLoadService(underlying)
		if err != nil {
			return fail(err)
		}
		return &issuer{perCall: 1, close: closeCounter, issue: func() error {
			_, err := svc.Issue(req)
			return err
		}}, nil
	case "sharded":
		counter, err := ts.NewShardedCounter(underlying, workers, leaseBlockSize)
		if err != nil {
			return fail(err)
		}
		svc, err := newLoadService(counter)
		if err != nil {
			return fail(err)
		}
		return &issuer{perCall: 1, close: closeCounter, issue: func() error {
			_, err := svc.Issue(req)
			return err
		}}, nil
	case "batch":
		counter, err := ts.NewShardedCounter(underlying, workers, leaseBlockSize)
		if err != nil {
			return fail(err)
		}
		svc, err := newLoadService(counter)
		if err != nil {
			return fail(err)
		}
		size := cfg.BatchSize
		if size < 1 {
			size = 1
		}
		reqs := make([]*core.Request, size)
		for i := range reqs {
			reqs[i] = req
		}
		return &issuer{perCall: size, close: closeCounter, issue: func() error {
			for _, res := range svc.IssueBatch(reqs) {
				if res.Err != nil {
					return res.Err
				}
			}
			return nil
		}}, nil
	default:
		return fail(fmt.Errorf("bench: unknown load mode %q", mode))
	}
}

// Load runs the closed-loop sweep: for every mode × worker count, workers
// issue back-to-back requests for cfg.Duration (after cfg.Warmup) and the
// generator records throughput and per-request latency percentiles.
func Load(cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = DefaultLoadConfig().Workers
	}
	if cfg.Duration <= 0 {
		cfg.Duration = DefaultLoadConfig().Duration
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = DefaultLoadConfig().BatchSize
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = LoadModes
	}
	// Reject unknown modes and worker counts before any cell runs, so a
	// typo cannot discard minutes of completed measurements.
	for _, mode := range modes {
		known := false
		for _, m := range LoadModes {
			known = known || m == mode
		}
		if !known {
			return nil, fmt.Errorf("bench: unknown load mode %q (supported: %s)", mode, strings.Join(LoadModes, ", "))
		}
	}
	for _, workers := range cfg.Workers {
		if workers < 1 {
			return nil, fmt.Errorf("bench: worker count must be positive, got %d", workers)
		}
	}
	switch cfg.Store {
	case "", "mem", "file":
	default:
		return nil, fmt.Errorf("bench: unknown store %q (supported: mem, file)", cfg.Store)
	}
	res := &LoadResult{Config: cfg}
	for _, mode := range modes {
		for _, workers := range cfg.Workers {
			row, err := runCell(mode, cfg, workers)
			if err != nil {
				return nil, fmt.Errorf("load %s ×%d: %w", mode, workers, err)
			}
			res.Rows = append(res.Rows, row)
			if cfg.OnRow != nil {
				cfg.OnRow(row)
			}
		}
	}
	return res, nil
}

func runCell(mode string, cfg LoadConfig, workers int) (LoadRow, error) {
	is, err := newIssuer(mode, cfg, workers)
	if err != nil {
		return LoadRow{}, err
	}
	defer is.close()
	if cfg.Warmup > 0 {
		if err := drive(is, workers, cfg.Warmup, nil); err != nil {
			return LoadRow{}, err
		}
	}
	latencies := make([][]time.Duration, workers)
	start := time.Now()
	if err := drive(is, workers, cfg.Duration, latencies); err != nil {
		return LoadRow{}, err
	}
	elapsed := time.Since(start)

	var all []time.Duration
	var requests uint64
	for _, ls := range latencies {
		all = append(all, ls...)
		requests += uint64(len(ls)) * uint64(is.perCall)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	// Percentiles are per issuing call: one request in the single-request
	// modes, one whole BatchSize-request round in batch mode (dividing by
	// the batch size would understate what any caller actually waited,
	// since the batch executes concurrently).
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i].Microseconds())
	}
	return LoadRow{
		Mode:       mode,
		Workers:    workers,
		Requests:   requests,
		Seconds:    elapsed.Seconds(),
		Throughput: float64(requests) / elapsed.Seconds(),
		P50Micros:  pct(0.50),
		P95Micros:  pct(0.95),
		P99Micros:  pct(0.99),
	}, nil
}

// drive runs workers issuing back-to-back calls for d. When latencies is
// non-nil, worker w appends one sample per call to latencies[w].
func drive(is *issuer, workers int, d time.Duration, latencies [][]time.Duration) error {
	var stop atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				if err := is.issue(); err != nil {
					errs[w] = err
					return
				}
				if latencies != nil {
					latencies[w] = append(latencies[w], time.Since(t0))
				}
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Format renders the sweep as the locked-vs-atomic-vs-sharded-vs-batch
// table of docs/BENCHMARKS.md.
func (r *LoadResult) Format() string {
	var b strings.Builder
	onetime := "off"
	if r.Config.OneTime {
		onetime = "on"
	}
	fmt.Fprintf(&b, "Token Service issuance under concurrent load (one-time %s, counter RTT %s, batch size %d, %s per cell)\n",
		onetime, r.Config.RTT, r.Config.BatchSize, r.Config.Duration)
	fmt.Fprintf(&b, "Latency percentiles are per issuing call: batch rows time one %d-request round.\n",
		r.Config.BatchSize)
	fmt.Fprintf(&b, "  %-8s %8s %10s %12s %10s %10s %10s\n",
		"mode", "workers", "requests", "req/s", "p50 µs", "p95 µs", "p99 µs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s %8d %10d %12.0f %10.1f %10.1f %10.1f\n",
			row.Mode, row.Workers, row.Requests, row.Throughput,
			row.P50Micros, row.P95Micros, row.P99Micros)
	}
	return b.String()
}

// CSV renders the sweep as machine-readable rows (one line per cell).
func (r *LoadResult) CSV() string {
	var b strings.Builder
	b.WriteString("mode,workers,requests,seconds,req_per_sec,p50_us,p95_us,p99_us\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.0f,%.1f,%.1f,%.1f\n",
			row.Mode, row.Workers, row.Requests, row.Seconds,
			row.Throughput, row.P50Micros, row.P95Micros, row.P99Micros)
	}
	return b.String()
}
