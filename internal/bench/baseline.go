package bench

import (
	"fmt"
	"strings"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/types"
	"repro/internal/wallet"
)

// BaselineRow is one whitelist size of the on-chain baseline (E7).
type BaselineRow struct {
	// N is the whitelist size.
	N int `json:"n"`
	// PopulateGas is the total gas to whitelist N addresses on-chain.
	PopulateGas uint64 `json:"populateGas"`
	// PopulateUSD converts PopulateGas.
	PopulateUSD float64 `json:"populateUSD"`
	// PerCallGas is the per-call cost of the on-chain whitelist check.
	PerCallGas uint64 `json:"perCallGas"`
}

// BaselineResult compares the on-chain whitelist baseline against SMACS.
type BaselineResult struct {
	Rows []BaselineRow `json:"rows"`
	// SMACSPerCallGas is the per-call cost of SMACS super-token
	// verification on an equivalent gate (token issuance is free
	// on-chain).
	SMACSPerCallGas uint64 `json:"smacsPerCallGas"`
	// SMACSPerCallUSD converts SMACSPerCallGas.
	SMACSPerCallUSD float64 `json:"smacsPerCallUSD"`
}

// batchSize is how many addresses one addBatch transaction carries.
const batchSize = 200

// Baseline measures the motivating comparison of § II-B/§ II-D: populating
// an on-chain whitelist of N addresses (the paper quotes ≈$300 for 10k
// addresses, and Bluzelle's 9.345 ETH for 7473) versus SMACS, where the
// list lives off-chain and only a constant-cost token verification happens
// on-chain.
func Baseline(sizes []int) (*BaselineResult, error) {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 7473, 10000}
	}
	res := &BaselineResult{}
	for _, n := range sizes {
		row, err := baselineRun(n)
		if err != nil {
			return nil, fmt.Errorf("baseline N=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}

	// SMACS comparison point: one super-token verification per call.
	tb, err := newTestbed()
	if err != nil {
		return nil, err
	}
	r, err := tb.issueAndCall(core.SuperType, false)
	if err != nil {
		return nil, err
	}
	res.SMACSPerCallGas = r.GasUsed
	res.SMACSPerCallUSD = tb.chain.Config().Price.USD(r.GasUsed)
	return res, nil
}

func baselineRun(n int) (BaselineRow, error) {
	chain := evm.NewChain(evm.DefaultConfig())
	owner := wallet.FromSeed("baseline owner", chain)
	member := wallet.FromSeed("baseline member", chain)
	chain.Fund(owner.Address(), ether(1_000_000))
	chain.Fund(member.Address(), ether(1000))

	gateAddr, _, err := chain.Deploy(owner.Address(), contracts.NewWhitelistGate(owner.Address()))
	if err != nil {
		return BaselineRow{}, err
	}

	var populateGas uint64
	remaining := n
	idx := 0
	for remaining > 0 {
		count := batchSize
		if count > remaining {
			count = remaining
		}
		packed := make([]byte, 0, count*types.AddressLength)
		for i := 0; i < count; i++ {
			var a types.Address
			a[0] = 0xb5
			a[1] = byte(idx >> 16)
			a[2] = byte(idx >> 8)
			a[3] = byte(idx)
			idx++
			packed = append(packed, a.Bytes()...)
		}
		if idx-count == 0 {
			// Put the probe member in the first batch so the per-call
			// measurement below passes the check.
			copy(packed[:types.AddressLength], member.Address().Bytes())
		}
		r, err := owner.Call(gateAddr, "addBatch", wallet.CallOpts{}, packed)
		if err != nil {
			return BaselineRow{}, err
		}
		if !r.Status {
			return BaselineRow{}, fmt.Errorf("addBatch reverted: %w", r.Err)
		}
		populateGas += r.GasUsed
		remaining -= count
	}

	r, err := member.Call(gateAddr, "enter", wallet.CallOpts{})
	if err != nil {
		return BaselineRow{}, err
	}
	if !r.Status {
		return BaselineRow{}, fmt.Errorf("enter reverted: %w", r.Err)
	}
	return BaselineRow{
		N:           n,
		PopulateGas: populateGas,
		PopulateUSD: chain.Config().Price.USD(populateGas),
		PerCallGas:  r.GasUsed,
	}, nil
}

// Format renders the baseline comparison.
func (b *BaselineResult) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "E7: On-chain whitelist baseline vs SMACS (§ II-B motivation)\n")
	fmt.Fprintf(&s, "  %-10s %16s %14s %14s\n", "N", "populate gas", "populate USD", "per-call gas")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "  %-10d %16d %14.2f %14d\n", r.N, r.PopulateGas, r.PopulateUSD, r.PerCallGas)
	}
	fmt.Fprintf(&s, "  SMACS: per-call %d gas (%.3f USD), list maintenance off-chain (0 gas)\n",
		b.SMACSPerCallGas, b.SMACSPerCallUSD)
	return s.String()
}
