// Package bench regenerates every table and figure of the paper's
// evaluation (§ VI) against the simulated substrate:
//
//	TableII      — single-token processing gas cost (Tab. II / E1)
//	TableIII     — call-chain gas for one-time argument tokens (Tab. III / E2)
//	TableIV      — one-time bitmap storage cost (Tab. IV / E3)
//	Figure8      — aggregated verification gas for 1-4 tokens (Fig. 8 / E4)
//	Figure9      — Token Service throughput (Fig. 9 / E5)
//	RuntimeTools — Hydra / ECFChecker request latency (§ VI-B / E6)
//	Baseline     — on-chain whitelist baseline (§ II-B motivation / E7)
//	Load         — concurrent-issuance load sweep (locked vs atomic vs
//	               sharded vs batch pipelines; beyond the paper, see
//	               docs/BENCHMARKS.md)
//	Chain        — guarded-transaction verification-pipeline sweep
//	               (naive vs wnaf vs cached vs batched)
//	E2E          — end-to-end scenario harness: a real HTTP Token
//	               Service, concurrent wallet clients, and batched
//	               on-chain verification, with exact accept/reject
//	               counts pinned by the CI envelope (e2e.go/scenario.go)
//
// Each function returns a structured result with a Format method printing
// the same rows/series the paper reports. cmd/smacs-bench is the CLI front
// end; bench_test.go at the repository root wires the same workloads into
// testing.B benchmarks.
package bench

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/ts"
	"repro/internal/types"
	"repro/internal/wallet"
)

// argNote is sized so the act(...) calldata is 196 bytes — the ballpark of
// the paper's argument-token experiments (see EXPERIMENTS.md).
var argNote = strings.Repeat("x", 64)

// testbed is the shared benchmark environment: a funded chain, a Token
// Service, and a SMACS-enabled target contract exposing
// act(address,uint256,string).
type testbed struct {
	chain   *evm.Chain
	tsKey   *secp256k1.PrivateKey
	service *ts.Service
	owner   *wallet.Wallet
	client  *wallet.Wallet
	target  types.Address
}

// newTarget builds the legacy application contract the benchmarks protect.
func newTarget() *evm.Contract {
	c := evm.NewContract("Target")
	c.MustAddMethod(evm.Method{
		Name:       "act",
		Params:     []any{types.Address{}, (*big.Int)(nil), ""},
		Visibility: evm.Public,
		Handler: func(call *evm.Call) ([]any, error) {
			amount, _ := call.Arg(1).(*big.Int)
			return []any{amount}, nil
		},
	})
	return c
}

const benchBitmapBits = 4096

func newTestbed() (*testbed, error) {
	chain := evm.NewChain(evm.DefaultConfig())
	tb := &testbed{
		chain:  chain,
		tsKey:  secp256k1.PrivateKeyFromSeed([]byte("bench ts key")),
		owner:  wallet.FromSeed("bench owner", chain),
		client: wallet.FromSeed("bench client", chain),
	}
	chain.Fund(tb.owner.Address(), ether(1_000_000))
	chain.Fund(tb.client.Address(), ether(1_000_000))

	svc, err := ts.New(ts.Config{Key: tb.tsKey})
	if err != nil {
		return nil, err
	}
	tb.service = svc

	verifier := core.NewVerifier(svc.Address())
	bm, err := core.NewBitmap(benchBitmapBits, 1<<32)
	if err != nil {
		return nil, err
	}
	verifier.WithBitmap(bm)
	protected := transform.Enable(newTarget(), verifier)
	addr, _, err := chain.Deploy(tb.owner.Address(), protected)
	if err != nil {
		return nil, err
	}
	tb.target = addr
	return tb, nil
}

func ether(n int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(n), big.NewInt(1e18))
}

// actArgs are the canonical benchmark call arguments.
func (tb *testbed) actArgs() []any {
	return []any{types.Address{0xdd}, big.NewInt(42), argNote}
}

func (tb *testbed) actNamedArgs() []core.NamedArg {
	args := tb.actArgs()
	return []core.NamedArg{
		{Name: "to", Value: args[0]},
		{Name: "amount", Value: args[1]},
		{Name: "note", Value: args[2]},
	}
}

// actSignature is the canonical signature of the benchmark method.
const actSignature = "act(address,uint256,string)"

// request builds the token request for one call of act on the target.
func (tb *testbed) request(tp core.TokenType, oneTime bool) *core.Request {
	req := &core.Request{
		Type:     tp,
		Contract: tb.target,
		Sender:   tb.client.Address(),
		OneTime:  oneTime,
	}
	switch tp {
	case core.MethodType:
		req.Method = actSignature
	case core.ArgumentType:
		req.Method = "act"
		req.Args = tb.actNamedArgs()
	}
	return req
}

// issueAndCall obtains a token from the Token Service and performs the
// protected call, returning the receipt.
func (tb *testbed) issueAndCall(tp core.TokenType, oneTime bool) (*evm.Receipt, error) {
	tk, err := tb.service.Issue(tb.request(tp, oneTime))
	if err != nil {
		return nil, err
	}
	opts := wallet.WithTokens(wallet.TokenEntry{Contract: tb.target, Token: tk})
	r, err := tb.client.Call(tb.target, "act", opts, tb.actArgs()...)
	if err != nil {
		return nil, err
	}
	if !r.Status {
		return nil, fmt.Errorf("bench call reverted: %w", r.Err)
	}
	return r, nil
}

// CostRow is one cost breakdown in the Tab. II / Tab. III layout.
type CostRow struct {
	Verify uint64  `json:"verify"`
	Misc   uint64  `json:"misc"`
	Bitmap uint64  `json:"bitmap"`
	Parse  uint64  `json:"parse"`
	Total  uint64  `json:"total"`
	USD    float64 `json:"usd"`
}

func rowFromReceipt(r *evm.Receipt, price gas.Price) CostRow {
	verify := r.GasByCategory[gas.CatVerify]
	bitmap := r.GasByCategory[gas.CatBitmap]
	parse := r.GasByCategory[gas.CatParse]
	return CostRow{
		Verify: verify,
		Bitmap: bitmap,
		Parse:  parse,
		Misc:   r.GasUsed - verify - bitmap - parse,
		Total:  r.GasUsed,
		USD:    price.USD(r.GasUsed),
	}
}

func pct(part, total uint64) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(total))
}
