package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/secp256k1"
)

func TestChainSweepSmoke(t *testing.T) {
	res, err := Chain(ChainConfig{
		Txs:       6,
		Senders:   3,
		BatchSize: 4,
		Workers:   []int{2},
		Modes:     []string{"naive", "batched"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Txs != 6 {
			t.Errorf("%s: txs = %d, want 6", row.Mode, row.Txs)
		}
		if row.Throughput <= 0 {
			t.Errorf("%s: non-positive throughput", row.Mode)
		}
	}
	if res.Rows[1].Speedup <= 0 {
		t.Error("batched row missing speedup vs naive")
	}
	out := res.Format()
	for _, want := range []string{"naive", "batched", "tx/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
	csv := res.CSV()
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3", got)
	}
}

func TestChainSweepRejectsBadConfig(t *testing.T) {
	if _, err := Chain(ChainConfig{Modes: []string{"warp"}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Chain(ChainConfig{Workers: []int{0}}); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestChaintogglesRestored(t *testing.T) {
	if !secp256k1.FastMultEnabled() || !evm.SenderCacheEnabled() || !core.TokenSigCacheEnabled() {
		t.Skip("non-default toggle state inherited from another test")
	}
	if _, err := Chain(ChainConfig{Txs: 2, Senders: 1, Workers: []int{1}, Modes: []string{"naive"}}); err != nil {
		t.Fatal(err)
	}
	if !secp256k1.FastMultEnabled() {
		t.Error("fast-mult toggle not restored after naive cell")
	}
	if !evm.SenderCacheEnabled() || !core.TokenSigCacheEnabled() {
		t.Error("cache toggles not restored after naive cell")
	}
}
