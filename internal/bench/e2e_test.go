package bench

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// runScenarioT runs one named scenario at smoke scale and returns its
// row, dispatching durable profiles the way E2E does.
func runScenarioT(t *testing.T, name string) E2ERow {
	t.Helper()
	cfg, err := ScenarioByName(name, true)
	if err != nil {
		t.Fatal(err)
	}
	var row E2ERow
	if cfg.Durable {
		row, err = runDurable(cfg, E2EConfig{Smoke: true, Dir: t.TempDir()})
	} else {
		row, err = runScenario(cfg, E2EConfig{Smoke: true})
	}
	if err != nil {
		t.Fatal(err)
	}
	return row
}

// Every shipped scenario must produce exactly its expected correctness
// counts at smoke scale — the same invariant the CI envelope pins, asserted
// here per scenario so a drift is attributed to the failing profile.
func TestE2EScenarioCounts(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := ScenarioByName(name, true)
			if err != nil {
				t.Fatal(err)
			}
			row := runScenarioT(t, name)
			if want := cfg.ExpectedCounts(); row.Counts != want {
				t.Errorf("counts = %+v\nwant     %+v", row.Counts, want)
			}
			if row.Counts.TSIssued != row.Counts.TokensIssued {
				t.Errorf("server reported %d issued tokens, clients observed %d",
					row.Counts.TSIssued, row.Counts.TokensIssued)
			}
		})
	}
}

// The adversarial flood is the paper's security argument run end-to-end:
// tampered, replayed, and expired tokens all flow through the real HTTP
// issuance path and the batched verification pipeline concurrently with
// honest traffic, and not one may be accepted. CI additionally runs this
// under -race (attackers, honest clients, and the batch submitter all
// share the chain and the HTTP service).
func TestE2EAdversarialFloodRejectsEveryAttack(t *testing.T) {
	row := runScenarioT(t, "adversarial")
	c := row.Counts
	if c.AdvAccepted != 0 {
		t.Fatalf("%d adversarial transactions were accepted; want 0", c.AdvAccepted)
	}
	if c.RejTampered == 0 || c.RejReplayed == 0 || c.RejExpired == 0 {
		t.Fatalf("every attack class must be exercised and rejected, got %+v", c)
	}
	if c.TxRejected != c.RejTampered+c.RejReplayed+c.RejExpired {
		t.Errorf("rejections with unexpected reasons: %d total vs %d classified",
			c.TxRejected, c.RejTampered+c.RejReplayed+c.RejExpired)
	}
}

// The durable scenario is the crash-recovery argument run end-to-end:
// the counts must be indistinguishable from a crash-free run, every
// pre-crash one-time token replayed after recovery must be rejected with
// exactly ErrTokenUsed, and nothing adversarial may slip through. The
// height/nonce continuity assertions live inside runDurable itself.
func TestE2EDurableRecoversExactly(t *testing.T) {
	row := runScenarioT(t, "durable")
	c := row.Counts
	cfg, err := ScenarioByName("durable", true)
	if err != nil {
		t.Fatal(err)
	}
	if c.RejReplayed != cfg.ReplayedOps {
		t.Errorf("post-recovery replays rejected with ErrTokenUsed: %d, want %d", c.RejReplayed, cfg.ReplayedOps)
	}
	if c.AdvAccepted != 0 {
		t.Errorf("%d replayed transactions accepted after recovery; want 0", c.AdvAccepted)
	}
	if want := cfg.ExpectedCounts(); c != want {
		t.Errorf("counts across the crash = %+v\nwant crash-free %+v", c, want)
	}
}

// The chaos scenarios are the availability argument run end-to-end: a
// replica of the networked counter group is killed / partitioned /
// degraded mid-rush, a second replica group joins through the live
// membership protocol, or the frontend crashes and an epoch-fenced
// takeover resumes issuance — and the counts must still be exactly
// those of a fault-free run. The fault timing and the victim derive
// from a seed so CI can sweep timings; a failing seed is logged for
// replay. After each run the replica WALs are audited: every replica
// must have granted strictly increasing block leases (a repeated or
// regressed grant would mean a stranded lease was re-issued), and the
// frontend-crash takeover must have fenced epoch ≥ 2 on a majority.
//
//	SMACS_CHAOS_SEED       pins the seed (default: time-derived, logged)
//	SMACS_CHAOS_ARTIFACTS  copies the replica WALs of a failed run there
func TestE2EChaosScenariosSeeded(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("SMACS_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SMACS_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (set SMACS_CHAOS_SEED=%d to replay)", seed, seed)
	for _, name := range []string{"chaos-kill", "chaos-partition", "chaos-slow",
		"chaos-join", "chaos-frontend-crash"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := ScenarioByName(name, true)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			row, runErr := runScenario(cfg, E2EConfig{Smoke: true, Dir: dir, ChaosSeed: seed})
			switch {
			case runErr != nil:
				t.Errorf("seed %d: %v", seed, runErr)
			case row.Counts != cfg.ExpectedCounts():
				t.Errorf("seed %d: counts = %+v\nwant fault-free %+v", seed, row.Counts, cfg.ExpectedCounts())
			case row.Counts.DupOneTimeIndexes != 0:
				t.Errorf("seed %d: %d one-time indexes issued twice", seed, row.Counts.DupOneTimeIndexes)
			case !row.ChaosFaultInjected:
				t.Errorf("seed %d: the fault never fired — the run proves nothing", seed)
			default:
				auditReplicaWALs(t, filepath.Join(dir, name), cfg.Chaos, seed)
			}
			if t.Failed() {
				if art := os.Getenv("SMACS_CHAOS_ARTIFACTS"); art != "" {
					dst := filepath.Join(art, name)
					if err := copyTree(dir, dst); err != nil {
						t.Logf("copying replica WALs: %v", err)
					} else {
						t.Logf("replica WALs of the failed run copied to %s", dst)
					}
				}
			}
		})
	}
}

// auditReplicaWALs replays every replica's WAL after the run and checks
// the grant-side safety invariants directly in the durable record:
// block-lease grants strictly increase per replica (net.Node only
// journals a grant above its accepted frontier, so a violation means a
// stranded lease was handed out twice), and an epoch-fenced takeover
// must have left its promise (epoch ≥ 2) on a majority of replicas.
func auditReplicaWALs(t *testing.T, groupDir, fault string, seed int64) {
	t.Helper()
	fenced := 0
	for i := 0; i < chaosReplicas; i++ {
		nodeDir := filepath.Join(groupDir, "replica"+strconv.Itoa(i))
		f, err := store.OpenFile(nodeDir, store.FileOptions{})
		if err != nil {
			t.Errorf("seed %d: audit replica %d: %v", seed, i, err)
			continue
		}
		_, recs, err := f.Replay()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Errorf("seed %d: audit replica %d: %v", seed, i, err)
			continue
		}
		var lastLease, maxEpoch int64
		grants := 0
		for _, rec := range recs {
			switch rec.Kind {
			case store.KindLease:
				if rec.Value <= lastLease {
					t.Errorf("seed %d: replica %d granted lease %d after %d — a stranded lease was re-issued",
						seed, i, rec.Value, lastLease)
				}
				lastLease = rec.Value
				grants++
			case store.KindEpoch:
				if rec.Value > maxEpoch {
					maxEpoch = rec.Value
				}
			}
		}
		if grants == 0 {
			t.Errorf("seed %d: replica %d granted no leases — the WAL audit proves nothing", seed, i)
		}
		if maxEpoch >= 2 {
			fenced++
		}
	}
	if fault == ChaosFrontendCrash && fenced < chaosReplicas/2+1 {
		t.Errorf("seed %d: takeover epoch fenced on %d/%d replicas, want a majority", seed, fenced, chaosReplicas)
	}
}

// copyTree copies a directory recursively (os.CopyFS arrives in go1.23;
// this module targets 1.22).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

func TestE2EUnknownScenario(t *testing.T) {
	if _, err := E2E(E2EConfig{Scenarios: []string{"nope"}, Smoke: true}); err == nil {
		t.Fatal("unknown scenario should fail")
	}
	if _, err := ScenariosFor([]string{"mixed", "mixed"}, true); err == nil {
		t.Fatal("duplicate scenario should fail")
	}
}

// CheckEnvelope must flag drifted counts, missing scenarios, and scale
// mismatches — the exact failure modes the CI gate exists for.
func TestE2ECheckEnvelope(t *testing.T) {
	res := &E2EResult{Config: E2EConfig{Smoke: true}}
	for _, name := range ScenarioNames() {
		cfg, err := ScenarioByName(name, true)
		if err != nil {
			t.Fatal(err)
		}
		res.Rows = append(res.Rows, E2ERow{Scenario: name, Counts: cfg.ExpectedCounts()})
	}
	env := res.Envelope()
	if err := res.CheckEnvelope(env); err != nil {
		t.Fatalf("self-envelope should pass: %v", err)
	}

	drift := res.Envelope()
	c := drift.Scenarios["adversarial"]
	c.AdvAccepted = 1
	drift.Scenarios["adversarial"] = c
	err := res.CheckEnvelope(drift)
	if err == nil || !strings.Contains(err.Error(), "adversarial") {
		t.Fatalf("drifted envelope should name the scenario, got %v", err)
	}

	missing := res.Envelope()
	delete(missing.Scenarios, "mixed")
	if err := res.CheckEnvelope(missing); err == nil {
		t.Fatal("missing scenario should fail")
	}

	extra := res.Envelope()
	extra.Scenarios["retired"] = E2ECounts{}
	if err := res.CheckEnvelope(extra); err == nil {
		t.Fatal("stale envelope entry should fail when all scenarios ran")
	}

	scale := res.Envelope()
	scale.Smoke = false
	if err := res.CheckEnvelope(scale); err == nil {
		t.Fatal("scale mismatch should fail")
	}
}

// The CSV must carry one line per scenario plus the header, with the
// correctness columns intact (CI uploads it as a workflow artifact).
func TestE2ECSVShape(t *testing.T) {
	row := runScenarioT(t, "quickstart")
	res := &E2EResult{Config: E2EConfig{Smoke: true}, Rows: []E2ERow{row}}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	cells := strings.Split(lines[1], ",")
	if len(header) != len(cells) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(cells))
	}
	if !strings.HasPrefix(lines[1], "quickstart,") {
		t.Errorf("row = %q", lines[1])
	}
}

// Stage latencies and the registry cross-check ride on the scenario's
// isolated registry: a quickstart run must report every pipeline stage
// with consistent observation counts.
func TestE2EStageLatencies(t *testing.T) {
	row := runScenarioT(t, "quickstart")
	for _, stage := range []string{"e2e", "issue", "http_tokens", "prevalidate", "commit"} {
		s, ok := row.Stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from row: %v", stage, row.Stages)
		}
		if s.Count == 0 || s.P99Millis < s.P50Millis || s.MaxMillis < s.P99Millis {
			t.Errorf("stage %q summary inconsistent: %+v", stage, s)
		}
	}
	if n := int(row.Stages["issue"].Count); n != row.Counts.TSIssued+row.Counts.TSRejected {
		t.Errorf("issue stage observed %d requests, /v1/stats saw %d",
			n, row.Counts.TSIssued+row.Counts.TSRejected)
	}
}
