package bench

import (
	"strings"
	"testing"
	"time"
)

func TestLoadSweepSmoke(t *testing.T) {
	cfg := LoadConfig{
		Workers:   []int{1, 2},
		Duration:  30 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		OneTime:   true,
		BatchSize: 4,
	}
	res, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(LoadModes) * len(cfg.Workers); len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.Requests == 0 || row.Throughput <= 0 {
			t.Errorf("%s ×%d: empty cell %+v", row.Mode, row.Workers, row)
		}
		if row.P50Micros <= 0 || row.P99Micros < row.P50Micros {
			t.Errorf("%s ×%d: implausible percentiles %+v", row.Mode, row.Workers, row)
		}
	}
	if !strings.Contains(res.Format(), "req/s") {
		t.Error("Format() missing header")
	}
	csv := res.CSV()
	if lines := strings.Count(csv, "\n"); lines != len(res.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(res.Rows)+1)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(LoadConfig{Workers: []int{0}, Duration: time.Millisecond}); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := Load(LoadConfig{Workers: []int{1}, Duration: time.Millisecond, Modes: []string{"bogus"}}); err == nil {
		t.Error("unknown mode accepted")
	}
}
