package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadSweepSmoke(t *testing.T) {
	cfg := LoadConfig{
		Workers:   []int{1, 2},
		Duration:  30 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		OneTime:   true,
		BatchSize: 4,
	}
	res, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(LoadModes) * len(cfg.Workers); len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.Requests == 0 || row.Throughput <= 0 {
			t.Errorf("%s ×%d: empty cell %+v", row.Mode, row.Workers, row)
		}
		if row.P50Micros <= 0 || row.P99Micros < row.P50Micros {
			t.Errorf("%s ×%d: implausible percentiles %+v", row.Mode, row.Workers, row)
		}
	}
	if !strings.Contains(res.Format(), "req/s") {
		t.Error("Format() missing header")
	}
	csv := res.CSV()
	if lines := strings.Count(csv, "\n"); lines != len(res.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(res.Rows)+1)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(LoadConfig{Workers: []int{0}, Duration: time.Millisecond}); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := Load(LoadConfig{Workers: []int{1}, Duration: time.Millisecond, Modes: []string{"bogus"}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Load(LoadConfig{Workers: []int{1}, Duration: time.Millisecond, Store: "tape"}); err == nil {
		t.Error("unknown store accepted")
	}
}

// A file-backed sweep must journal every allocation through the WAL and
// still produce non-empty cells; the per-cell directories land under Dir
// and OnRow sees every row as it completes.
func TestLoadSweepFileStore(t *testing.T) {
	dir := t.TempDir()
	var seen []LoadRow
	cfg := LoadConfig{
		Workers:    []int{2},
		Duration:   30 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		OneTime:    true,
		BatchSize:  4,
		Modes:      []string{"atomic", "sharded"},
		Store:      "file",
		Dir:        dir,
		FsyncBatch: 16,
		OnRow:      func(r LoadRow) { seen = append(seen, r) },
	}
	res, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(seen) != len(res.Rows) {
		t.Fatalf("got %d rows, OnRow saw %d, want 2 each", len(res.Rows), len(seen))
	}
	for _, row := range res.Rows {
		if row.Requests == 0 {
			t.Errorf("%s ×%d: empty cell", row.Mode, row.Workers)
		}
	}
	for _, cell := range []string{"atomic-w2", "sharded-w2"} {
		if _, err := os.Stat(filepath.Join(dir, cell)); err != nil {
			t.Errorf("cell WAL directory %s missing: %v", cell, err)
		}
	}
}
