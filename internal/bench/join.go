package bench

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/ts/membership"
	"repro/internal/ts/replica"
	replicanet "repro/internal/ts/replica/net"
	"repro/internal/ts/ring"
	"repro/internal/tshttp"
)

// The chaos-join scenario's replica-group names: the main frontend runs
// chaosGroupA over the networked (proxied) quorum; chaosGroupJoiner is
// the group that joins mid-rush, backed by an in-process quorum cluster.
const (
	chaosGroupA      = "alpha"
	chaosGroupJoiner = "beta"
)

// switchCounter is a ts.Counter whose inner counter can be swapped at
// runtime — the harness's stand-in for a frontend crash: the old
// sharded counter (and the coordinator under it) is abandoned with its
// unexhausted remainders, and the takeover's fresh counter takes over
// mid-traffic.
type switchCounter struct {
	mu     sync.RWMutex
	inner  *ts.ShardedCounter
	spread int64
}

func newSwitchCounter(inner *ts.ShardedCounter) *switchCounter {
	return &switchCounter{inner: inner, spread: inner.MaxSpread()}
}

func (s *switchCounter) Next() (int64, error) {
	s.mu.RLock()
	c := s.inner
	s.mu.RUnlock()
	return c.Next()
}

func (s *switchCounter) swap(c *ts.ShardedCounter) {
	s.mu.Lock()
	s.inner = c
	s.mu.Unlock()
}

// MaxSpread reports one incarnation's spread; the bitmap budget in
// runScenario multiplies it to cover the crashed incarnation's burned
// remainders plus the takeover's fresh leases.
func (s *switchCounter) MaxSpread() int64 { return s.spread }

// armJoin stands the joining frontend up (its own quorum cluster,
// stripe, sharded counter, membership manager, member endpoints, and a
// full Token Service listener sharing skTS and the rules) and arms the
// chaos group's fire hook: at the inject threshold the main frontend's
// manager admits the joiner through the live join protocol, and honest
// token traffic starts round-robining across both frontends. The
// returned cleanup closes everything the joiner opened.
func armJoin(g *chaosGroup, env *e2eEnv, reg *metrics.Registry, tsKey *secp256k1.PrivateKey,
	ruleSet *rules.RuleSet, cfg ScenarioConfig, stripeA *ring.DynamicStripe, counterA *ts.ShardedCounter) (func(), error) {
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) (func(), error) {
		cleanup()
		return nil, err
	}

	bootView := ring.View{Epoch: 1, Groups: []string{chaosGroupA}}

	// Pre-bind both member listeners so the managers can be built with
	// real URLs (the advance request propagates the full map).
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	cleanups = append(cleanups, func() { _ = lnA.Close() })
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	cleanups = append(cleanups, func() { _ = lnB.Close() })
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	mgrA, err := membership.NewManager(membership.Config{
		Group:    chaosGroupA,
		Stripe:   stripeA,
		Counter:  counterA,
		Registry: reg,
	}, bootView, map[string]string{chaosGroupA: urlA}, 0)
	if err != nil {
		return fail(err)
	}

	// The joiner boots with the cluster's current view — not containing
	// itself — and issues only after the join's advance admits it.
	clusterB, err := replica.NewCluster(chaosReplicas)
	if err != nil {
		return fail(err)
	}
	stripeB, err := ring.NewDynamicStripe(clusterB.Counter(), chaosGroupJoiner, bootView, 0)
	if err != nil {
		return fail(err)
	}
	counterB, err := ts.NewShardedCounter(stripeB, shardedCounterShards, shardedCounterBlock)
	if err != nil {
		return fail(err)
	}
	mgrB, err := membership.NewManager(membership.Config{
		Group:    chaosGroupJoiner,
		Stripe:   stripeB,
		Counter:  counterB,
		Registry: reg,
	}, bootView, map[string]string{chaosGroupA: urlA}, 0)
	if err != nil {
		return fail(err)
	}

	srvA := &http.Server{Handler: mgrA.Handler()}
	go func() { _ = srvA.Serve(lnA) }()
	cleanups = append(cleanups, func() { _ = srvA.Close() })
	srvB := &http.Server{Handler: mgrB.Handler()}
	go func() { _ = srvB.Serve(lnB) }()
	cleanups = append(cleanups, func() { _ = srvB.Close() })

	svcB, err := ts.New(ts.Config{
		Key:          tsKey,
		Rules:        ruleSet,
		Counter:      counterB,
		RequireProof: cfg.RequireProof,
		Metrics:      reg,
	})
	if err != nil {
		return fail(err)
	}
	baseB, stopB, err := startServer(svcB, reg)
	if err != nil {
		return fail(err)
	}
	cleanups = append(cleanups, stopB)
	clientB := tshttp.NewClient(baseB, "")

	g.fire = func() error {
		res, err := mgrA.Join(chaosGroupJoiner, urlB)
		if err != nil {
			return fmt.Errorf("join %s: %w", chaosGroupJoiner, err)
		}
		if res.View.Epoch != 2 || res.View.Slot(chaosGroupJoiner) < 0 {
			return fmt.Errorf("post-join view = %+v, want epoch 2 containing %s", res.View, chaosGroupJoiner)
		}
		if v := mgrB.View(); v.Epoch != 2 {
			return fmt.Errorf("joiner advanced to epoch %d, want 2", v.Epoch)
		}
		env.addClient(clientB)
		return nil
	}
	return cleanup, nil
}

// armFrontendCrash arms the epoch-fenced takeover: at the inject
// threshold the live sharded counter (and the coordinator under it) is
// abandoned mid-traffic, a fresh coordinator fences a strictly higher
// epoch over the same replicas, and a fresh sharded counter resumes
// issuance above the majority frontier the fence read. The crashed
// incarnation's unexhausted remainders burn — at most one max spread —
// and can never be reissued, because every replica only grants strictly
// increasing blocks.
func armFrontendCrash(g *chaosGroup, sw *switchCounter) {
	g.fire = func() error {
		coord, err := replicanet.NewCoordinator(g.urls, replicanet.Options{Timeout: time.Second})
		if err != nil {
			return err
		}
		epoch, err := coord.Fence()
		if err != nil {
			return fmt.Errorf("takeover fence: %w", err)
		}
		if epoch < 2 {
			return fmt.Errorf("takeover fenced epoch %d, want ≥ 2", epoch)
		}
		sc, err := ts.NewShardedCounter(coord, shardedCounterShards, shardedCounterBlock)
		if err != nil {
			return err
		}
		sw.swap(sc)
		return nil
	}
}
