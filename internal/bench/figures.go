package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/rtverify/ecf"
	"repro/internal/rtverify/hydra"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/types"
	"repro/internal/wallet"
)

// Figure8Series identifies the four series of Fig. 8.
var Figure8Series = []string{"super", "method", "argument", "argument-onetime"}

// Figure8Result holds the aggregated verification gas of Fig. 8.
type Figure8Result struct {
	// Counts are the token counts (call-chain depths), 1-4.
	Counts []int `json:"counts"`
	// TotalGas maps a series name to the total gas per count.
	TotalGas map[string][]uint64 `json:"totalGas"`
}

// Figure8 measures the aggregated gas of verifying 1-4 tokens per
// transaction for each token type (experiment E4).
func Figure8() (*Figure8Result, error) {
	res := &Figure8Result{TotalGas: make(map[string][]uint64, 4)}
	for depth := 1; depth <= 4; depth++ {
		res.Counts = append(res.Counts, depth)
	}
	configs := []struct {
		name    string
		tp      core.TokenType
		oneTime bool
	}{
		{"super", core.SuperType, false},
		{"method", core.MethodType, false},
		{"argument", core.ArgumentType, false},
		{"argument-onetime", core.ArgumentType, true},
	}
	for _, cfg := range configs {
		for _, depth := range res.Counts {
			row, err := ChainRun(depth, cfg.tp, cfg.oneTime)
			if err != nil {
				return nil, fmt.Errorf("figure 8 %s depth %d: %w", cfg.name, depth, err)
			}
			res.TotalGas[cfg.name] = append(res.TotalGas[cfg.name], row.Total)
		}
	}
	return res, nil
}

// Format renders the Fig. 8 series as rows of gas totals.
func (f *Figure8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: Aggregated gas cost for verifying multiple tokens\n")
	fmt.Fprintf(&b, "  %-18s", "tokens")
	for _, c := range f.Counts {
		fmt.Fprintf(&b, " %12d", c)
	}
	fmt.Fprintln(&b)
	for _, name := range Figure8Series {
		fmt.Fprintf(&b, "  %-18s", name)
		for _, v := range f.TotalGas[name] {
			fmt.Fprintf(&b, " %12d", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Figure9Result holds the Token Service throughput of Fig. 9.
type Figure9Result struct {
	// BatchSizes are the request-batch sizes (10^0 .. 10^maxExp).
	BatchSizes []int `json:"batchSizes"`
	// ReqPerSec maps a series to requests/second per batch size.
	ReqPerSec map[string][]float64 `json:"reqPerSec"`
}

// Figure9 measures Token Service issuance throughput for batches of
// 10^0..10^maxExp requests per token type, under Fig. 6-style white/black
// lists (experiment E5). The paper runs maxExp = 5.
func Figure9(maxExp int) (*Figure9Result, error) {
	if maxExp < 0 {
		maxExp = 0
	}
	client := types.Address{0xc1}
	target := types.Address{0x01}

	// Fig. 6-style rules: a sender whitelist (with filler entries so
	// lookups are realistic), a method blacklist, and an argument
	// whitelist.
	rs := rules.NewRuleSet()
	senderList := rules.NewList(rules.Whitelist, core.ValueKey(client))
	for i := 0; i < 1000; i++ {
		senderList.Add(core.ValueKey(types.Address{0xf0, byte(i >> 8), byte(i)}))
	}
	rs.SetSenderList(senderList)
	methodList := rules.NewList(rules.Blacklist)
	for i := 0; i < 1000; i++ {
		methodList.Add(core.ValueKey(types.Address{0xf1, byte(i >> 8), byte(i)}))
	}
	rs.SetMethodList("act", methodList)
	argList := rules.NewList(rules.Whitelist, core.ValueKey(types.Address{0xdd}))
	for i := 0; i < 1000; i++ {
		argList.Add(core.ValueKey(types.Address{0xf2, byte(i >> 8), byte(i)}))
	}
	rs.SetArgumentList("to", argList)

	svc, err := ts.New(ts.Config{
		Key:   secp256k1.PrivateKeyFromSeed([]byte("fig9 ts key")),
		Rules: rs,
	})
	if err != nil {
		return nil, err
	}

	requests := map[string]*core.Request{
		"super": {Type: core.SuperType, Contract: target, Sender: client},
		"method": {Type: core.MethodType, Contract: target, Sender: client,
			Method: "act(address,uint256,string)"},
		"argument": {Type: core.ArgumentType, Contract: target, Sender: client,
			Method: "act", Args: []core.NamedArg{
				{Name: "to", Value: types.Address{0xdd}},
				{Name: "amount", Value: uint64(42)},
				{Name: "note", Value: argNote},
			}},
		"argument-onetime": {Type: core.ArgumentType, Contract: target, Sender: client,
			Method: "act", OneTime: true, Args: []core.NamedArg{
				{Name: "to", Value: types.Address{0xdd}},
				{Name: "amount", Value: uint64(42)},
				{Name: "note", Value: argNote},
			}},
	}

	res := &Figure9Result{ReqPerSec: make(map[string][]float64, len(requests))}
	for e := 0; e <= maxExp; e++ {
		n := 1
		for i := 0; i < e; i++ {
			n *= 10
		}
		res.BatchSizes = append(res.BatchSizes, n)
	}
	for _, name := range Figure8Series {
		req := requests[name]
		for _, n := range res.BatchSizes {
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, err := svc.Issue(req); err != nil {
					return nil, fmt.Errorf("figure 9 %s: %w", name, err)
				}
			}
			elapsed := time.Since(start)
			res.ReqPerSec[name] = append(res.ReqPerSec[name], float64(n)/elapsed.Seconds())
		}
	}
	return res, nil
}

// Format renders the Fig. 9 series.
func (f *Figure9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: Throughput of the TS (requests processed per second)\n")
	fmt.Fprintf(&b, "  %-18s", "batch size")
	for _, n := range f.BatchSizes {
		fmt.Fprintf(&b, " %12d", n)
	}
	fmt.Fprintln(&b)
	for _, name := range Figure8Series {
		fmt.Fprintf(&b, "  %-18s", name)
		for _, v := range f.ReqPerSec[name] {
			fmt.Fprintf(&b, " %12.0f", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ToolsResult holds the runtime-verification throughput of § VI-B.
type ToolsResult struct {
	Requests       int     `json:"requests"`
	HydraMsPerReq  float64 `json:"hydraMsPerReq"`
	HydraReqPerSec float64 `json:"hydraReqPerSec"`
	ECFMsPerReq    float64 `json:"ecfMsPerReq"`
	ECFReqPerSec   float64 `json:"ecfReqPerSec"`
}

// RuntimeTools measures the average time for a Token Service backed by
// Hydra (three heads) and by the ECF checker to process a token request
// (experiment E6; the paper sends 100 transactions each).
func RuntimeTools(nRequests int) (*ToolsResult, error) {
	if nRequests <= 0 {
		nRequests = 100
	}
	res := &ToolsResult{Requests: nRequests}

	// Hydra: a simple contract in three "languages" (§ VI-B).
	tool, err := hydra.New(
		hydra.Head{Name: "solidity", Build: contracts.NewCalculatorFormula},
		hydra.Head{Name: "vyper", Build: contracts.NewCalculatorLoop},
		hydra.Head{Name: "serpent", Build: contracts.NewCalculatorPairwise},
	)
	if err != nil {
		return nil, err
	}
	hydraReq := &core.Request{
		Type:     core.ArgumentType,
		Contract: types.Address{0x01},
		Sender:   types.Address{0xc1},
		Method:   "sumTo",
		Args:     []core.NamedArg{{Name: "n", Value: uint64(1000)}},
	}
	start := time.Now()
	for i := 0; i < nRequests; i++ {
		if err := tool.Validate(hydraReq); err != nil {
			return nil, fmt.Errorf("hydra validate: %w", err)
		}
	}
	elapsed := time.Since(start)
	res.HydraMsPerReq = float64(elapsed.Milliseconds()) / float64(nRequests)
	res.HydraReqPerSec = float64(nRequests) / elapsed.Seconds()

	// ECFChecker: the vulnerable Bank of § V deployed on the TS testnet.
	mirror, bankAddr, victim, err := ecfMirror()
	if err != nil {
		return nil, err
	}
	checker := ecf.New(mirror, bankAddr)
	ecfReq := &core.Request{
		Type:     core.ArgumentType,
		Contract: bankAddr,
		Sender:   victim,
		Method:   "withdraw",
	}
	start = time.Now()
	for i := 0; i < nRequests; i++ {
		if err := checker.Validate(ecfReq); err != nil {
			return nil, fmt.Errorf("ecf validate: %w", err)
		}
	}
	elapsed = time.Since(start)
	res.ECFMsPerReq = float64(elapsed.Milliseconds()) / float64(nRequests)
	res.ECFReqPerSec = float64(nRequests) / elapsed.Seconds()
	return res, nil
}

// ecfMirror builds the TS-local testnet of § V-B: the legacy Bank with a
// funded depositor.
func ecfMirror() (chain *evm.Chain, bank, victim types.Address, err error) {
	c := evm.NewChain(evm.DefaultConfig())
	owner := wallet.FromSeed("ecf owner", c)
	depositor := wallet.FromSeed("ecf victim", c)
	c.Fund(owner.Address(), ether(1000))
	c.Fund(depositor.Address(), ether(1000))
	bankAddr, _, err := c.Deploy(owner.Address(), contracts.NewBank())
	if err != nil {
		return nil, types.Address{}, types.Address{}, err
	}
	r, err := depositor.Call(bankAddr, "addBalance", wallet.CallOpts{Value: ether(10)})
	if err != nil {
		return nil, types.Address{}, types.Address{}, err
	}
	if !r.Status {
		return nil, types.Address{}, types.Address{}, fmt.Errorf("mirror deposit reverted: %w", r.Err)
	}
	return c, bankAddr, depositor.Address(), nil
}

// Format renders the § VI-B measurements.
func (t *ToolsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§ VI-B: Token Service with runtime verification tools (%d requests)\n", t.Requests)
	fmt.Fprintf(&b, "  %-22s %12s %12s\n", "Tool", "ms/request", "requests/s")
	fmt.Fprintf(&b, "  %-22s %12.2f %12.0f\n", "Hydra (3 heads)", t.HydraMsPerReq, t.HydraReqPerSec)
	fmt.Fprintf(&b, "  %-22s %12.2f %12.0f\n", "ECFChecker", t.ECFMsPerReq, t.ECFReqPerSec)
	return b.String()
}
