package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nettest"
	"repro/internal/store"
	replicanet "repro/internal/ts/replica/net"
)

// Chaos fault names a ScenarioConfig.Chaos can select. Each scenario
// backs its one-time counter with a networked 3-replica quorum group
// (internal/ts/replica/net), every replica behind its own
// fault-injecting TCP proxy (internal/nettest); the fault hits one
// replica mid-run and heals before the run ends. A 3-replica quorum
// tolerates one faulted replica, so the correctness counts must be
// identical to a fault-free run — that availability contract is exactly
// what the envelope pins.
const (
	// ChaosKill crashes the victim mid-rush: new connections refused,
	// established ones hard-reset — a kill -9 as the network sees it.
	// Healing models the replica process rejoining at the same address.
	ChaosKill = "kill"
	// ChaosPartition blackholes the victim: nothing is closed, every
	// byte in either direction is silently withheld until the heal.
	ChaosPartition = "partition"
	// ChaosSlow degrades the victim: every forwarded chunk is delayed,
	// modeling an overloaded or badly-routed replica.
	ChaosSlow = "slow"
	// ChaosJoin is a membership fault rather than a network one: a second
	// replica group joins mid-rush through the live join protocol
	// (internal/ts/membership), and post-join token traffic round-robins
	// across both frontends. Issuance must continue through the view
	// change with exactly the fault-free counts and zero duplicate
	// one-time indexes.
	ChaosJoin = "join"
	// ChaosFrontendCrash abandons the frontend's coordinator and sharded
	// counter mid-rush (the crash) and performs an epoch-fenced takeover:
	// a fresh coordinator fences a higher epoch over the same replicas
	// and a fresh sharded counter resumes issuance above the majority
	// frontier. The crashed incarnation's unexhausted remainders are
	// burned — bounded by one frontend's max spread — and never reissued.
	ChaosFrontendCrash = "frontend-crash"
)

// chaosReplicas is the replica-group size of chaos scenarios: the
// smallest quorum that tolerates one fault.
const chaosReplicas = 3

// chaosGroup is one chaos scenario's counter backend: WAL-backed
// replica nodes, their proxies, and the coordinator that only ever
// dials the proxies.
type chaosGroup struct {
	dir      string
	removeIt bool
	servers  []*replicanet.Server
	backends []*store.File
	proxies  []*nettest.Proxy
	urls     []string
	coord    *replicanet.Coordinator

	// fire, when set, is the membership action (group join or epoch-fenced
	// takeover) the fault scheduler runs at the inject threshold instead
	// of a proxy fault; fireErr records its failure for the post-run
	// check — the scheduler goroutine has nowhere else to report it.
	fireMu  sync.Mutex
	fire    func() error
	fireErr error
}

// startChaosGroup stands the replica group up. Replica WALs live under
// dir (kept for artifact upload when the caller provided it; a fresh
// temp dir is removed on Close).
func startChaosGroup(cfg ScenarioConfig, run E2EConfig) (*chaosGroup, error) {
	switch cfg.Chaos {
	case ChaosKill, ChaosPartition, ChaosSlow, ChaosJoin, ChaosFrontendCrash:
	default:
		return nil, fmt.Errorf("unknown chaos fault %q (supported: %s, %s, %s, %s, %s)",
			cfg.Chaos, ChaosKill, ChaosPartition, ChaosSlow, ChaosJoin, ChaosFrontendCrash)
	}
	g := &chaosGroup{}
	if run.Dir != "" {
		g.dir = filepath.Join(run.Dir, cfg.Name)
	} else {
		tmp, err := os.MkdirTemp("", "smacs-chaos-*")
		if err != nil {
			return nil, err
		}
		g.dir = tmp
		g.removeIt = true
	}
	urls := make([]string, chaosReplicas)
	for i := 0; i < chaosReplicas; i++ {
		nodeDir := filepath.Join(g.dir, fmt.Sprintf("replica%d", i))
		if err := os.MkdirAll(nodeDir, 0o755); err != nil {
			g.Close()
			return nil, err
		}
		backend, err := store.OpenFile(nodeDir, store.FileOptions{FsyncBatch: run.FsyncBatch})
		if err != nil {
			g.Close()
			return nil, err
		}
		g.backends = append(g.backends, backend)
		node, err := replicanet.OpenNode(backend)
		if err != nil {
			g.Close()
			return nil, err
		}
		srv, err := replicanet.Serve(node, "127.0.0.1:0")
		if err != nil {
			g.Close()
			return nil, err
		}
		g.servers = append(g.servers, srv)
		proxy, err := nettest.NewProxy(srv.Addr())
		if err != nil {
			g.Close()
			return nil, err
		}
		g.proxies = append(g.proxies, proxy)
		urls[i] = proxy.URL()
	}
	g.urls = urls
	coord, err := replicanet.NewCoordinator(urls, replicanet.Options{Timeout: time.Second})
	if err != nil {
		g.Close()
		return nil, err
	}
	g.coord = coord
	return g, nil
}

func (g *chaosGroup) Close() {
	for _, p := range g.proxies {
		_ = p.Close()
	}
	for _, s := range g.servers {
		_ = s.Close()
	}
	for _, b := range g.backends {
		_ = b.Close()
	}
	if g.removeIt {
		_ = os.RemoveAll(g.dir)
	}
}

// inject applies the scenario's fault: a proxy fault on the victim for
// the network faults, or the armed membership action (join/takeover)
// for the membership faults — those have no victim and nothing to heal.
func (g *chaosGroup) inject(fault string, victim int) {
	p := g.proxies[victim]
	switch fault {
	case ChaosKill:
		p.SetDrop(true)
		p.ResetAll()
	case ChaosPartition:
		p.SetPartition(true)
	case ChaosSlow:
		p.SetDelay(25 * time.Millisecond)
	case ChaosJoin, ChaosFrontendCrash:
		g.fireMu.Lock()
		if g.fire != nil {
			g.fireErr = g.fire()
			g.fire = nil
		}
		g.fireMu.Unlock()
	}
}

// FireErr reports whether the armed membership action failed when it
// fired; runScenario fails the row on it after the producers finish.
func (g *chaosGroup) FireErr() error {
	g.fireMu.Lock()
	defer g.fireMu.Unlock()
	return g.fireErr
}

func (g *chaosGroup) heal(victim int) { g.proxies[victim].Heal() }

// scheduleFault watches the scenario's progress and fires the fault
// once roughly half the token traffic has happened ("mid-rush"), then
// heals it around the three-quarter mark so the victim's rejoin (and
// the failure detector's readmission) also runs under live traffic.
// The exact thresholds and the victim are derived from the chaos seed,
// so CI can sweep timings without losing reproducibility. The returned
// stop function ends the watcher (healing, if the run finished
// mid-fault), is idempotent, and reports whether the fault ever fired.
func (g *chaosGroup) scheduleFault(cfg ScenarioConfig, seed int64, agg *e2eAgg) func() bool {
	rng := rand.New(rand.NewSource(seed))
	victim := rng.Intn(chaosReplicas)
	expected := cfg.ExpectedCounts().TokenRequests
	injectAt := int(float64(expected) * (0.35 + 0.3*rng.Float64()))
	healAt := injectAt + (expected-injectAt)/2
	stop := make(chan struct{})
	done := make(chan struct{})
	var injected atomic.Bool
	go func() {
		defer close(done)
		phase := 0 // 0 = armed, 1 = injected, 2 = healed
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for phase < 2 {
			var n int
			select {
			case <-stop:
				// Last look before giving up, so a rush that outran the
				// ticker still gets its (late) fault rather than none.
				n = agg.tokenRequests()
			case <-tick.C:
				n = agg.tokenRequests()
			}
			if phase == 0 && n >= injectAt {
				g.inject(cfg.Chaos, victim)
				injected.Store(true)
				phase = 1
			}
			if phase == 1 && n >= healAt {
				g.heal(victim)
				phase = 2
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var once sync.Once
	return func() bool {
		once.Do(func() {
			close(stop)
			<-done
			g.heal(victim) // idempotent; covers runs that ended mid-fault
		})
		return injected.Load()
	}
}
