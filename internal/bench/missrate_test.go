package bench

import "testing"

func TestMissRateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("miss-rate replay is slow; skipped with -short")
	}
	res, err := MissRate(600, 35, 30, []float64{0.1, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's sizing rule (factor 1.0) must not miss a single fresh
	// token.
	for _, r := range res.Rows[2:] {
		if r.Missed != 0 {
			t.Errorf("factor %.2f missed %d tokens; sizing rule violated", r.SizeFactor, r.Missed)
		}
	}
	// Under-provisioned bitmaps lose tokens, monotonically more as they
	// shrink.
	if res.Rows[0].MissRate <= res.Rows[1].MissRate {
		t.Errorf("miss rate not decreasing with size: %.3f (0.1x) vs %.3f (0.5x)",
			res.Rows[0].MissRate, res.Rows[1].MissRate)
	}
	if res.Rows[1].Missed == 0 {
		t.Error("half-size bitmap missed nothing; workload too tame")
	}
}
