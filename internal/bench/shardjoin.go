package bench

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nettest"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/ts/membership"
	replicanet "repro/internal/ts/replica/net"
	"repro/internal/ts/ring"
	"repro/internal/tshttp"
)

// The live-resharding cell (-mode shard -join) measures what a
// membership change costs under load: clients drive G replica groups
// exactly like the static sweep, and once half the tokens are out a
// (G+1)-th group joins through the live membership protocol
// (internal/ts/membership) — freeze every member, advance to the
// epoch-2 view, resume. Clients re-resolve their group on every batch,
// so traffic starts spreading onto the joiner the moment the ring
// admits it. The row reports the issuance rate before, during, and
// after the change (the "during" window is the freeze pause — the
// availability cost of a join), and the audit demands that not one
// index is lost or duplicated across the change.

// JoinRow is one live-resharding cell: all clients driving G groups
// with a (G+1)-th joining mid-run.
type JoinRow struct {
	Groups       int     `json:"groups"` // before the join
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"opsPerClient"`
	Tokens       int     `json:"tokens"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokensPerSec"`
	// BeforePerSec, DuringPerSec, and AfterPerSec split the run's
	// issuance rate around the membership change: steady state under G
	// groups, the freeze→advance→resume window, and steady state under
	// G+1 groups.
	BeforePerSec float64 `json:"beforePerSec"`
	DuringPerSec float64 `json:"duringPerSec"`
	AfterPerSec  float64 `json:"afterPerSec"`
	// JoinMillis is the wall time of the whole membership change — the
	// upper bound on how long any frontend's allocations were paused.
	JoinMillis float64 `json:"joinMillis"`
	// MovedFraction is the keyspace share the change handed to the
	// joiner, from the exact rebalance plan (≈ 1/(G+1)).
	MovedFraction float64 `json:"movedFraction"`
	// JoinerTokens is how many tokens the joined group issued after
	// admission (how much of the remaining rush the reshard moved).
	JoinerTokens int `json:"joinerTokens"`
	// PerGroup is the final split across all G+1 groups.
	PerGroup []int `json:"perGroup"`
}

// joinStack is one replica group's full frontend stack for the cell.
type joinStack struct {
	name   string
	mgr    *membership.Manager
	mgrURL string
	client *tshttp.Client
}

// runJoinCell builds G serving groups plus one standby joiner and runs
// the cell. Every group is an independent 3-replica quorum behind -rtt
// delay proxies, allocating through an epoch-aware DynamicStripe.
func runJoinCell(cfg ShardConfig, groups int) (JoinRow, error) {
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()

	tsKey := secp256k1.PrivateKeyFromSeed([]byte("shard sweep ts key"))
	clients := make([]*secp256k1.PrivateKey, cfg.Clients)
	allowed := rules.NewList(rules.Whitelist)
	for i := range clients {
		clients[i] = secp256k1.PrivateKeyFromSeed([]byte(fmt.Sprintf("shard sweep client %d", i)))
		allowed.Add(core.ValueKey(clients[i].Address()))
	}
	ruleSet := rules.NewRuleSet()
	ruleSet.SetSenderList(allowed)
	target := secp256k1.PrivateKeyFromSeed([]byte("shard sweep target")).Address()

	// The boot view holds the G initial groups; the joiner is built like
	// any member but is absent from the view (and the routing ring) until
	// the join admits it.
	names := make([]string, groups+1)
	for g := range names {
		names[g] = fmt.Sprintf("group-%d", g)
	}
	joiner := names[groups]
	bootView := ring.View{Epoch: 1, Groups: names[:groups]}

	// Pre-bind every manager listener so the URL map exists before any
	// manager is built (the advance propagates the full map).
	listeners := make([]net.Listener, groups+1)
	mgrURLs := make(map[string]string, groups)
	for g := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return JoinRow{}, err
		}
		cleanups = append(cleanups, func() { _ = ln.Close() })
		listeners[g] = ln
		if g < groups {
			mgrURLs[names[g]] = "http://" + ln.Addr().String()
		}
	}

	reg := metrics.NewRegistry()
	stacks := make([]joinStack, groups+1)
	for g, name := range names {
		urls := make([]string, shardReplicas)
		for i := 0; i < shardReplicas; i++ {
			srv, err := replicanet.Serve(replicanet.NewNode(), "127.0.0.1:0")
			if err != nil {
				return JoinRow{}, err
			}
			cleanups = append(cleanups, func() { _ = srv.Close() })
			proxy, err := nettest.NewProxy(srv.Addr())
			if err != nil {
				return JoinRow{}, err
			}
			cleanups = append(cleanups, func() { _ = proxy.Close() })
			proxy.SetDelay(cfg.RTT)
			urls[i] = proxy.URL()
		}
		coord, err := replicanet.NewCoordinator(urls, replicanet.Options{})
		if err != nil {
			return JoinRow{}, err
		}
		stripe, err := ring.NewDynamicStripe(coord, name, bootView, 0)
		if err != nil {
			return JoinRow{}, err
		}
		sharded, err := ts.NewShardedCounter(stripe, shardedCounterShards, shardedCounterBlock)
		if err != nil {
			return JoinRow{}, err
		}
		mgr, err := membership.NewManager(membership.Config{
			Group:   name,
			Stripe:  stripe,
			Counter: sharded,
		}, bootView, mgrURLs, 0)
		if err != nil {
			return JoinRow{}, err
		}
		msrv := &http.Server{Handler: mgr.Handler()}
		go func(ln net.Listener) { _ = msrv.Serve(ln) }(listeners[g])
		cleanups = append(cleanups, func() { _ = msrv.Close() })
		svc, err := ts.New(ts.Config{Key: tsKey, Rules: ruleSet, Counter: sharded, Metrics: reg})
		if err != nil {
			return JoinRow{}, err
		}
		base, stop, err := startServer(svc, reg)
		if err != nil {
			return JoinRow{}, err
		}
		cleanups = append(cleanups, stop)
		stacks[g] = joinStack{
			name:   name,
			mgr:    mgr,
			mgrURL: "http://" + listeners[g].Addr().String(),
			client: tshttp.NewClient(base, ""),
		}
	}
	clientByGroup := make(map[string]*tshttp.Client, groups+1)
	for _, s := range stacks {
		clientByGroup[s.name] = s.client
	}

	// The routing ring serves G groups now and admits the joiner the
	// instant the membership change lands; Ring is internally locked, so
	// clients resolve concurrently with the Add.
	r := ring.New(0)
	for _, name := range names[:groups] {
		r.Add(name)
	}

	// The trigger: once half the tokens are out, group-0's manager runs
	// the join. The issued counter both paces the trigger and timestamps
	// the before/during/after windows.
	var issued atomic.Int64
	total := cfg.Clients * cfg.Ops
	type joinMark struct {
		fireAt   time.Duration // run time when the join started
		doneAt   time.Duration // run time when it completed
		fireSeen int64         // tokens out when it started
		doneSeen int64         // tokens out when it completed
		moved    float64
		err      error
	}
	var mark joinMark
	fired := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(fired)
		for int(issued.Load()) < total/2 {
			time.Sleep(time.Millisecond)
		}
		mark.fireAt, mark.fireSeen = time.Since(start), issued.Load()
		res, err := stacks[0].mgr.Join(joiner, stacks[groups].mgrURL)
		mark.doneAt, mark.doneSeen = time.Since(start), issued.Load()
		if err != nil {
			mark.err = fmt.Errorf("join %s: %w", joiner, err)
			return
		}
		mark.moved = res.Plan.MovedFraction
		r.Add(joiner)
	}()

	type clientOut struct {
		indexes []int64
		groups  map[string]int
		err     error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	for i, key := range clients {
		wg.Add(1)
		go func(i int, key *secp256k1.PrivateKey) {
			defer wg.Done()
			indexes := make([]int64, 0, cfg.Ops)
			byGroup := make(map[string]int, 2)
			for off := 0; off < cfg.Ops; off += cfg.TokenBatch {
				if off > 0 && (off >= cfg.Ops*3/4 || off+cfg.TokenBatch >= cfg.Ops) {
					// The rush must outlast the change: each client holds
					// its last quarter of batches — at minimum its final
					// batch — until the join has landed, so the post-join
					// window always sees traffic (at real scale the join
					// finishes long before any client gets here and the
					// gate is a no-op).
					<-fired
				}
				// Re-resolve the group per batch: the join lands between
				// batches, not between a client's first and last token.
				name, err := r.Get(key.Address().Bytes())
				if err != nil {
					outs[i].err = err
					return
				}
				cl := clientByGroup[name]
				n := min(cfg.TokenBatch, cfg.Ops-off)
				reqs := make([]*core.Request, n)
				for j := range reqs {
					reqs[j] = &core.Request{
						Type:     core.SuperType,
						Contract: target,
						Sender:   key.Address(),
						OneTime:  true,
					}
				}
				res, err := cl.RequestTokens(reqs)
				if err != nil {
					outs[i].err = err
					return
				}
				for _, r := range res {
					if r.Err != nil {
						outs[i].err = fmt.Errorf("unexpected denial: %w", r.Err)
						return
					}
					if !r.Token.OneTime() {
						outs[i].err = fmt.Errorf("token issued without a one-time index")
						return
					}
					indexes = append(indexes, r.Token.Index)
				}
				byGroup[name] += n
				issued.Add(int64(n))
			}
			outs[i].indexes = indexes
			outs[i].groups = byGroup
		}(i, key)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-fired
	if mark.err != nil {
		return JoinRow{}, mark.err
	}

	// Zero lost and zero duplicated indexes across the view change:
	// every request produced a token, and no index repeats anywhere.
	seen := make(map[int64]bool, total)
	perGroup := make([]int, groups+1)
	got := 0
	for _, out := range outs {
		if out.err != nil {
			return JoinRow{}, out.err
		}
		for _, idx := range out.indexes {
			if seen[idx] {
				return JoinRow{}, fmt.Errorf("one-time index %d issued twice across the join", idx)
			}
			seen[idx] = true
		}
		for g, name := range names {
			perGroup[g] += out.groups[name]
		}
		got += len(out.indexes)
	}
	if got != total {
		return JoinRow{}, fmt.Errorf("%d tokens issued, want %d — indexes lost across the join", got, total)
	}

	rate := func(tokens int64, dur time.Duration) float64 {
		if dur <= 0 {
			return 0
		}
		return float64(tokens) / dur.Seconds()
	}
	return JoinRow{
		Groups:        groups,
		Clients:       cfg.Clients,
		OpsPerClient:  cfg.Ops,
		Tokens:        got,
		Seconds:       elapsed.Seconds(),
		TokensPerSec:  float64(got) / elapsed.Seconds(),
		BeforePerSec:  rate(mark.fireSeen, mark.fireAt),
		DuringPerSec:  rate(mark.doneSeen-mark.fireSeen, mark.doneAt-mark.fireAt),
		AfterPerSec:   rate(int64(got)-mark.doneSeen, elapsed-mark.doneAt),
		JoinMillis:    float64((mark.doneAt - mark.fireAt).Milliseconds()),
		MovedFraction: mark.moved,
		JoinerTokens:  perGroup[groups],
		PerGroup:      perGroup,
	}, nil
}

// FormatJoin renders the live-resharding sweep as the table of
// docs/BENCHMARKS.md.
func (r *ShardResult) FormatJoin() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live resharding: %d clients × %d one-time tokens, %s injected per replica hop; a group joins mid-run\n",
		r.Config.Clients, r.Config.Ops, r.Config.RTT)
	fmt.Fprintf(&b, "  %-7s %8s %10s %10s %10s %10s %8s %7s   %s\n",
		"groups", "tokens", "before/s", "during/s", "after/s", "overall/s", "join ms", "moved", "per-group split")
	for _, row := range r.JoinRows {
		split := make([]string, len(row.PerGroup))
		for i, n := range row.PerGroup {
			split[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "  %-7s %8d %10.1f %10.1f %10.1f %10.1f %8.1f %6.1f%%   %s\n",
			fmt.Sprintf("%d→%d", row.Groups, row.Groups+1), row.Tokens,
			row.BeforePerSec, row.DuringPerSec, row.AfterPerSec, row.TokensPerSec,
			row.JoinMillis, 100*row.MovedFraction, strings.Join(split, "/"))
	}
	b.WriteString("Every index audited unique and none lost across the membership change.\n")
	return b.String()
}
