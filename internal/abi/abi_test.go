package abi

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestSelectorKnownVector(t *testing.T) {
	// The canonical ERC-20 transfer selector.
	sel := SelectorFor("transfer(address,uint256)")
	if sel.Hex() != "0xa9059cbb" {
		t.Errorf("selector = %s, want 0xa9059cbb", sel.Hex())
	}
}

func TestSignatureDerivation(t *testing.T) {
	sig, err := Signature("transfer", types.Address{}, new(big.Int))
	if err != nil {
		t.Fatal(err)
	}
	if sig != "transfer(address,uint256)" {
		t.Errorf("signature = %q", sig)
	}

	sig, err = Signature("f", uint64(0), true, []byte(nil), "", [][]byte(nil))
	if err != nil {
		t.Fatal(err)
	}
	if sig != "f(uint256,bool,bytes,string,bytes[])" {
		t.Errorf("signature = %q", sig)
	}

	if _, err := Signature("f", 3.14); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestEncodeStaticWords(t *testing.T) {
	addr := types.MustHexToAddress("0x366c0ad2f0908deadbeef012345678901234abcd")
	enc, err := Encode(addr, uint64(69), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 96 {
		t.Fatalf("encoded length = %d, want 96", len(enc))
	}
	if !bytes.Equal(enc[12:32], addr.Bytes()) {
		t.Error("address not right-aligned in word 0")
	}
	if enc[63] != 69 {
		t.Errorf("uint word low byte = %d, want 69", enc[63])
	}
	if enc[95] != 1 {
		t.Error("bool word not 1")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	addr := types.MustHexToAddress("0xd488deadbeef0000000000000000000000000001")
	amount := new(big.Int).Lsh(big.NewInt(1), 200)
	payload := []byte("some dynamic payload")
	note := "hello world"
	tokens := [][]byte{[]byte("token-one"), []byte("token-two-is-longer-than-32-bytes-aaaa")}

	enc, err := Encode(addr, amount, true, payload, note, tokens)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc, types.Address{}, (*big.Int)(nil), false, []byte(nil), "", [][]byte(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(types.Address) != addr {
		t.Error("address mismatch")
	}
	if out[1].(*big.Int).Cmp(amount) != 0 {
		t.Error("big.Int mismatch")
	}
	if out[2].(bool) != true {
		t.Error("bool mismatch")
	}
	if !bytes.Equal(out[3].([]byte), payload) {
		t.Error("bytes mismatch")
	}
	if out[4].(string) != note {
		t.Error("string mismatch")
	}
	got := out[5].([][]byte)
	if len(got) != 2 || !bytes.Equal(got[0], tokens[0]) || !bytes.Equal(got[1], tokens[1]) {
		t.Error("bytes[] mismatch")
	}
}

func TestPackSelectorPrefix(t *testing.T) {
	addr := types.Address{1}
	data, err := Pack("transfer", addr, big.NewInt(42))
	if err != nil {
		t.Fatal(err)
	}
	want := SelectorFor("transfer(address,uint256)")
	if !bytes.Equal(data[:4], want[:]) {
		t.Errorf("pack prefix = %x, want %x", data[:4], want[:])
	}
	if len(data) != 4+64 {
		t.Errorf("pack length = %d, want 68", len(data))
	}
}

func TestDecodeUint64Overflow(t *testing.T) {
	enc, err := Encode(new(big.Int).Lsh(big.NewInt(1), 70))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc, uint64(0)); err == nil {
		t.Error("uint64 overflow not detected")
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := Encode(big.NewInt(-1)); err == nil {
		t.Error("negative big.Int accepted")
	}
	if _, err := Encode(new(big.Int).Lsh(big.NewInt(1), 256)); err == nil {
		t.Error("overflowing big.Int accepted")
	}
	if _, err := Encode(struct{}{}); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, uint64(0)); err == nil {
		t.Error("short data accepted")
	}
	// Offset pointing past the end.
	bad := make([]byte, 32)
	bad[31] = 0xff
	if _, err := Decode(bad, []byte(nil)); err == nil {
		t.Error("out-of-bounds offset accepted")
	}
	// Array with absurd length.
	enc, err := Encode([][]byte{{1}})
	if err != nil {
		t.Fatal(err)
	}
	enc[63] = 0xff // corrupt the array length word
	if _, err := Decode(enc, [][]byte(nil)); err == nil {
		t.Error("corrupt array length accepted")
	}
}

func TestEmptyDynamicValues(t *testing.T) {
	enc, err := Encode([]byte{}, "", [][]byte{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc, []byte(nil), "", [][]byte(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].([]byte)) != 0 || out[1].(string) != "" || len(out[2].([][]byte)) != 0 {
		t.Errorf("empty dynamic round trip: %v", out)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a []byte, b string, c uint64) bool {
		enc, err := Encode(a, b, c)
		if err != nil {
			return false
		}
		out, err := Decode(enc, []byte(nil), "", uint64(0))
		if err != nil {
			return false
		}
		return bytes.Equal(out[0].([]byte), a) && out[1].(string) == b && out[2].(uint64) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTokenArrayRoundTrip(t *testing.T) {
	f := func(tok1, tok2, tok3 []byte) bool {
		arr := [][]byte{tok1, tok2, tok3}
		enc, err := Encode(arr)
		if err != nil {
			return false
		}
		out, err := Decode(enc, [][]byte(nil))
		if err != nil {
			return false
		}
		got := out[0].([][]byte)
		if len(got) != 3 {
			return false
		}
		for i := range arr {
			if !bytes.Equal(got[i], arr[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
