// Package abi implements the subset of Ethereum's contract ABI that the
// simulated chain uses: 4-byte method selectors derived from canonical
// signatures, and head/tail encoding of arguments into 32-byte words.
//
// Supported Go ↔ Solidity type mappings:
//
//	types.Address → address
//	*big.Int      → uint256
//	uint64        → uint256
//	bool          → bool
//	[]byte        → bytes
//	string        → string
//	[][]byte      → bytes[]   (used for SMACS token arrays)
package abi

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/keccak"
	"repro/internal/types"
)

// SelectorLength is the byte length of a method selector.
const SelectorLength = 4

// Selector is the first four bytes of the Keccak-256 hash of a canonical
// method signature; Ethereum's msg.sig.
type Selector [SelectorLength]byte

// Hex returns the 0x-prefixed hex form of the selector.
func (s Selector) Hex() string { return fmt.Sprintf("0x%x", s[:]) }

var (
	// ErrUnsupportedType is returned when a Go value has no ABI mapping.
	ErrUnsupportedType = errors.New("abi: unsupported type")
	// ErrBadData is returned when decoding malformed ABI data.
	ErrBadData = errors.New("abi: malformed data")
)

// SelectorFor computes the selector of a canonical signature such as
// "transfer(address,uint256)".
func SelectorFor(signature string) Selector {
	h := keccak.Sum256([]byte(signature))
	var s Selector
	copy(s[:], h[:SelectorLength])
	return s
}

// TypeName returns the canonical Solidity type name for a Go value.
func TypeName(v any) (string, error) {
	switch v.(type) {
	case types.Address:
		return "address", nil
	case *big.Int, uint64:
		return "uint256", nil
	case bool:
		return "bool", nil
	case []byte:
		return "bytes", nil
	case string:
		return "string", nil
	case [][]byte:
		return "bytes[]", nil
	default:
		return "", fmt.Errorf("%w: %T", ErrUnsupportedType, v)
	}
}

// Signature builds the canonical signature string for a method name and a
// set of argument values, e.g. Signature("transfer", addr, amount) =
// "transfer(address,uint256)".
func Signature(method string, args ...any) (string, error) {
	names := make([]string, len(args))
	for i, a := range args {
		n, err := TypeName(a)
		if err != nil {
			return "", fmt.Errorf("argument %d: %w", i, err)
		}
		names[i] = n
	}
	return method + "(" + strings.Join(names, ",") + ")", nil
}

// Encode ABI-encodes the arguments using head/tail encoding.
func Encode(args ...any) ([]byte, error) {
	headSize := 0
	for _, a := range args {
		if _, err := TypeName(a); err != nil {
			return nil, err
		}
		headSize += 32
	}
	head := make([]byte, 0, headSize)
	var tail []byte
	for i, a := range args {
		switch v := a.(type) {
		case types.Address:
			head = append(head, leftPad(v.Bytes())...)
		case *big.Int:
			if v == nil {
				v = new(big.Int)
			}
			if v.Sign() < 0 || v.BitLen() > 256 {
				return nil, fmt.Errorf("abi: argument %d out of uint256 range", i)
			}
			var w [32]byte
			v.FillBytes(w[:])
			head = append(head, w[:]...)
		case uint64:
			var w [32]byte
			new(big.Int).SetUint64(v).FillBytes(w[:])
			head = append(head, w[:]...)
		case bool:
			var w [32]byte
			if v {
				w[31] = 1
			}
			head = append(head, w[:]...)
		case []byte:
			head = append(head, encodeUintWord(uint64(headSize+len(tail)))...)
			tail = append(tail, encodeBytes(v)...)
		case string:
			head = append(head, encodeUintWord(uint64(headSize+len(tail)))...)
			tail = append(tail, encodeBytes([]byte(v))...)
		case [][]byte:
			head = append(head, encodeUintWord(uint64(headSize+len(tail)))...)
			tail = append(tail, encodeBytesArray(v)...)
		}
	}
	return append(head, tail...), nil
}

// Pack builds calldata for a method: selector ‖ encoded arguments. The
// signature is derived from the method name and the argument types.
func Pack(method string, args ...any) ([]byte, error) {
	sig, err := Signature(method, args...)
	if err != nil {
		return nil, err
	}
	sel := SelectorFor(sig)
	body, err := Encode(args...)
	if err != nil {
		return nil, err
	}
	return append(sel[:], body...), nil
}

// Decode decodes ABI data into values shaped like protos; each proto gives
// the expected type of the corresponding argument (its value is ignored).
func Decode(data []byte, protos ...any) ([]any, error) {
	out := make([]any, len(protos))
	for i, p := range protos {
		headOff := 32 * i
		word, err := wordAt(data, headOff)
		if err != nil {
			return nil, err
		}
		switch p.(type) {
		case types.Address:
			out[i] = types.BytesToAddress(word)
		case *big.Int:
			out[i] = new(big.Int).SetBytes(word)
		case uint64:
			v := new(big.Int).SetBytes(word)
			if !v.IsUint64() {
				return nil, fmt.Errorf("%w: value overflows uint64", ErrBadData)
			}
			out[i] = v.Uint64()
		case bool:
			out[i] = word[31] != 0
		case []byte:
			b, err := decodeBytesAt(data, word)
			if err != nil {
				return nil, err
			}
			out[i] = b
		case string:
			b, err := decodeBytesAt(data, word)
			if err != nil {
				return nil, err
			}
			out[i] = string(b)
		case [][]byte:
			arr, err := decodeBytesArrayAt(data, word)
			if err != nil {
				return nil, err
			}
			out[i] = arr
		default:
			return nil, fmt.Errorf("%w: %T", ErrUnsupportedType, p)
		}
	}
	return out, nil
}

func encodeUintWord(v uint64) []byte {
	var w [32]byte
	new(big.Int).SetUint64(v).FillBytes(w[:])
	return w[:]
}

func leftPad(b []byte) []byte {
	w := make([]byte, 32)
	copy(w[32-len(b):], b)
	return w
}

func encodeBytes(b []byte) []byte {
	out := encodeUintWord(uint64(len(b)))
	out = append(out, b...)
	if pad := len(b) % 32; pad != 0 {
		out = append(out, make([]byte, 32-pad)...)
	}
	return out
}

func encodeBytesArray(arr [][]byte) []byte {
	out := encodeUintWord(uint64(len(arr)))
	headSize := 32 * len(arr)
	var tail []byte
	for _, el := range arr {
		out = append(out, encodeUintWord(uint64(headSize+len(tail)))...)
		tail = append(tail, encodeBytes(el)...)
	}
	return append(out, tail...)
}

func wordAt(data []byte, off int) ([]byte, error) {
	if off < 0 || off+32 > len(data) {
		return nil, fmt.Errorf("%w: word at offset %d out of bounds (%d bytes)", ErrBadData, off, len(data))
	}
	return data[off : off+32], nil
}

func offsetFromWord(word []byte) (int, error) {
	v := new(big.Int).SetBytes(word)
	if !v.IsInt64() || v.Int64() < 0 {
		return 0, fmt.Errorf("%w: invalid offset", ErrBadData)
	}
	return int(v.Int64()), nil
}

func decodeBytesAt(data, offsetWord []byte) ([]byte, error) {
	off, err := offsetFromWord(offsetWord)
	if err != nil {
		return nil, err
	}
	lenWord, err := wordAt(data, off)
	if err != nil {
		return nil, err
	}
	n, err := offsetFromWord(lenWord)
	if err != nil {
		return nil, err
	}
	if off+32+n > len(data) {
		return nil, fmt.Errorf("%w: bytes payload out of bounds", ErrBadData)
	}
	out := make([]byte, n)
	copy(out, data[off+32:off+32+n])
	return out, nil
}

func decodeBytesArrayAt(data, offsetWord []byte) ([][]byte, error) {
	off, err := offsetFromWord(offsetWord)
	if err != nil {
		return nil, err
	}
	lenWord, err := wordAt(data, off)
	if err != nil {
		return nil, err
	}
	n, err := offsetFromWord(lenWord)
	if err != nil {
		return nil, err
	}
	if n > (len(data)-off)/32 {
		return nil, fmt.Errorf("%w: array length %d out of bounds", ErrBadData, n)
	}
	base := off + 32
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		elOffWord, err := wordAt(data, base+32*i)
		if err != nil {
			return nil, err
		}
		elOff, err := offsetFromWord(elOffWord)
		if err != nil {
			return nil, err
		}
		el, err := decodeBytesAt(data[base:], encodeUintWord(uint64(elOff)))
		if err != nil {
			return nil, err
		}
		out[i] = el
	}
	return out, nil
}
