package abi

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// TestDecodeNeverPanics feeds random bytes to the decoder for every
// supported prototype shape: malformed input must produce errors, never
// panics or hangs — decoders sit on the untrusted transaction path.
func TestDecodeNeverPanics(t *testing.T) {
	protos := [][]any{
		{types.Address{}},
		{(*big.Int)(nil)},
		{uint64(0)},
		{false},
		{[]byte(nil)},
		{""},
		{[][]byte(nil)},
		{types.Address{}, (*big.Int)(nil), "", [][]byte(nil)},
	}
	f := func(data []byte) bool {
		for _, p := range protos {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Decode panicked on %x with protos %T: %v", data, p, r)
					}
				}()
				_, _ = Decode(data, p...)
			}()
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnMutatedValid mutates valid encodings byte by byte;
// the decoder must survive every single-byte corruption.
func TestDecodeNeverPanicsOnMutatedValid(t *testing.T) {
	enc, err := Encode(types.Address{0xaa}, big.NewInt(7), "hello", [][]byte{{1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	protos := []any{types.Address{}, (*big.Int)(nil), "", [][]byte(nil)}
	for i := range enc {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), enc...)
			mutated[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at byte %d flip %#x: %v", i, flip, r)
					}
				}()
				_, _ = Decode(mutated, protos...)
			}()
		}
	}
}
