package ts

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

func TestRequireProofAcceptsOwner(t *testing.T) {
	clientKey := secp256k1.PrivateKeyFromSeed([]byte("proof client"))
	s := newService(t, Config{RequireProof: true})

	req := &core.Request{Type: core.SuperType, Contract: target, Sender: clientKey.Address()}
	if err := core.SignRequest(req, clientKey); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Issue(req); err != nil {
		t.Fatalf("proved request denied: %v", err)
	}
}

func TestRequireProofRejectsMissing(t *testing.T) {
	s := newService(t, Config{RequireProof: true})
	req := &core.Request{Type: core.SuperType, Contract: target, Sender: client}
	if _, err := s.Issue(req); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("unproved request: %v, want ErrBadRequest", err)
	}
}

func TestRequireProofRejectsImpersonation(t *testing.T) {
	clientKey := secp256k1.PrivateKeyFromSeed([]byte("proof client"))
	malloryKey := secp256k1.PrivateKeyFromSeed([]byte("proof mallory"))
	s := newService(t, Config{RequireProof: true})

	// Mallory requests a token in the client's name with her own proof.
	req := &core.Request{Type: core.SuperType, Contract: target, Sender: clientKey.Address()}
	if err := core.SignRequest(req, malloryKey); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Issue(req); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("impersonated request: %v, want ErrBadRequest", err)
	}
}

func TestRequireProofBindsRequestContents(t *testing.T) {
	clientKey := secp256k1.PrivateKeyFromSeed([]byte("proof client"))
	s := newService(t, Config{RequireProof: true})

	req := &core.Request{
		Type: core.ArgumentType, Contract: target, Sender: clientKey.Address(),
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(1)}},
	}
	if err := core.SignRequest(req, clientKey); err != nil {
		t.Fatal(err)
	}
	// Tamper with the arguments after signing: the proof must break.
	req.Args[0].Value = uint64(2)
	if _, err := s.Issue(req); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("tampered request accepted: %v", err)
	}
	// Flipping the one-time flag is also covered.
	req.Args[0].Value = uint64(1)
	req.OneTime = true
	if _, err := s.Issue(req); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("one-time flip accepted: %v", err)
	}
}

func TestProofOptionalByDefault(t *testing.T) {
	s := newService(t, Config{})
	req := &core.Request{Type: core.SuperType, Contract: target, Sender: types.Address{0x77}}
	if _, err := s.Issue(req); err != nil {
		t.Errorf("default service demanded a proof: %v", err)
	}
}
