package ts

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/types"
)

// TestIssueParallelOneTime hammers Issue from many goroutines (run with
// -race) and checks every one-time token got a unique index while the
// owner concurrently swaps rules and registers validators.
func TestIssueParallelOneTime(t *testing.T) {
	counter, err := NewShardedCounter(nil, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, Config{Counter: counter})

	const workers = 16
	const perWorker = 200
	indexes := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := &core.Request{Type: core.SuperType, Contract: target, Sender: client, OneTime: true}
			for i := 0; i < perWorker; i++ {
				tk, err := s.Issue(req)
				if err != nil {
					t.Error(err)
					return
				}
				indexes[w] = append(indexes[w], tk.Index)
			}
		}(w)
	}
	// Concurrent administration must not block or race issuance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.ReplaceRules(rules.NewRuleSet())
			s.AddValidator(approver{})
			_ = s.Rules()
			_, _ = s.Stats()
		}
	}()
	wg.Wait()

	seen := make(map[int64]bool, workers*perWorker)
	for _, ws := range indexes {
		for _, n := range ws {
			if seen[n] {
				t.Fatalf("one-time index %d issued twice", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d unique indexes, want %d", len(seen), workers*perWorker)
	}
	issued, rejected := s.Stats()
	if issued != workers*perWorker || rejected != 0 {
		t.Errorf("stats = (%d, %d), want (%d, 0)", issued, rejected, workers*perWorker)
	}
}

// approver is a validator that always approves.
type approver struct{}

func (approver) Name() string                     { return "approver" }
func (approver) Validate(req *core.Request) error { return nil }

func TestIssueBatchMixedResults(t *testing.T) {
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(client)))
	s := newService(t, Config{Rules: rs})

	good := &core.Request{Type: core.SuperType, Contract: target, Sender: client, OneTime: true}
	results := s.IssueBatch([]*core.Request{
		good,
		{Type: core.SuperType, Contract: target, Sender: types.Address{0xbb}},
		good,
	})
	if len(results) != 3 {
		t.Fatalf("len(results) = %d", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("whitelisted slots failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("non-whitelisted slot issued")
	}
	if results[0].Token.Index == results[2].Token.Index {
		t.Error("batch issued duplicate one-time indexes")
	}
	issued, rejected := s.Stats()
	if issued != 2 || rejected != 1 {
		t.Errorf("stats = (%d, %d), want (2, 1)", issued, rejected)
	}
}
