package offline_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evmtest"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/transform"
	"repro/internal/ts/offline"
	"repro/internal/wallet"
)

var (
	ownerKey  = secp256k1.PrivateKeyFromSeed([]byte("offline owner"))
	issuerKey = secp256k1.PrivateKeyFromSeed([]byte("offline issuer"))
)

func fixedNow() time.Time { return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC) }

func sealBundle(t *testing.T, contract [20]byte, rs *rules.RuleSet, notAfter time.Time) *offline.Bundle {
	t.Helper()
	if rs == nil {
		rs = rules.NewRuleSet()
	}
	b, err := offline.Seal(ownerKey, issuerKey, rs, contract, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSealOpenIssueEndToEnd(t *testing.T) {
	// Full § IX flow: the bundle is opened locally, a token is issued
	// without any service contact, and the SMACS-enabled contract accepts
	// it because it trusts the delegate address.
	env := evmtest.NewEnv(t, 2)
	verifier := core.NewVerifier(issuerKey.Address())
	protected := transform.Enable(contracts.NewSimpleStorage(), verifier)
	addr := env.Deploy(t, protected)

	bundle := sealBundle(t, addr, nil, fixedNow().Add(24*time.Hour))
	issuer, err := offline.Open(bundle, ownerKey.Address(), env.Clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	if issuer.Address() != issuerKey.Address() {
		t.Errorf("issuer address = %s", issuer.Address())
	}

	tk, err := issuer.Issue(&core.Request{
		Type: core.SuperType, Contract: addr, Sender: env.Wallets[1].Address(),
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wallet.WithTokens(wallet.TokenEntry{Contract: addr, Token: tk})
	env.MustCall(t, 1, addr, "set", opts, uint64(5))
}

func TestTamperedBundleRejected(t *testing.T) {
	contract := [20]byte{0x01}
	good := sealBundle(t, contract, nil, fixedNow().Add(time.Hour))

	tamperedRules := *good
	tamperedRules.RulesJSON = []byte(`{"sender":{"whitelist":["0xff"]}}`)
	if _, err := offline.Open(&tamperedRules, ownerKey.Address(), fixedNow); !errors.Is(err, offline.ErrBadBundle) {
		t.Errorf("tampered rules accepted: %v", err)
	}

	tamperedDeadline := *good
	tamperedDeadline.NotAfter = good.NotAfter.Add(time.Hour)
	if _, err := offline.Open(&tamperedDeadline, ownerKey.Address(), fixedNow); !errors.Is(err, offline.ErrBadBundle) {
		t.Errorf("tampered deadline accepted: %v", err)
	}

	otherOwner := secp256k1.PrivateKeyFromSeed([]byte("not the owner"))
	if _, err := offline.Open(good, otherOwner.Address(), fixedNow); !errors.Is(err, offline.ErrBadBundle) {
		t.Errorf("wrong owner accepted: %v", err)
	}

	tamperedKey := *good
	tamperedKey.IssuerKey = append([]byte(nil), good.IssuerKey...)
	tamperedKey.IssuerKey[0] ^= 1
	if _, err := offline.Open(&tamperedKey, ownerKey.Address(), fixedNow); !errors.Is(err, offline.ErrBadBundle) {
		t.Errorf("swapped issuer key accepted: %v", err)
	}
}

func TestBundleRulesEnforcedLocally(t *testing.T) {
	contract := [20]byte{0x01}
	client := [20]byte{0xc1}
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(core.Binding{Origin: client}.Origin)))
	bundle := sealBundle(t, contract, rs, fixedNow().Add(time.Hour))

	issuer, err := offline.Open(bundle, ownerKey.Address(), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := issuer.Issue(&core.Request{Type: core.SuperType, Contract: contract, Sender: client}); err != nil {
		t.Errorf("whitelisted client denied: %v", err)
	}
	if _, err := issuer.Issue(&core.Request{Type: core.SuperType, Contract: contract, Sender: [20]byte{0xee}}); !errors.Is(err, rules.ErrDenied) {
		t.Errorf("unlisted client allowed: %v", err)
	}
}

func TestExpiryClampedToDeadline(t *testing.T) {
	contract := [20]byte{0x01}
	deadline := fixedNow().Add(10 * time.Minute) // below the 1h lifetime
	bundle := sealBundle(t, contract, nil, deadline)
	issuer, err := offline.Open(bundle, ownerKey.Address(), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := issuer.Issue(&core.Request{Type: core.SuperType, Contract: contract, Sender: [20]byte{0xc1}})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Expire.After(deadline) {
		t.Errorf("token expires %s, after the bundle deadline %s", tk.Expire, deadline)
	}
}

func TestExpiredBundleUnusable(t *testing.T) {
	contract := [20]byte{0x01}
	bundle := sealBundle(t, contract, nil, fixedNow().Add(-time.Minute))
	if _, err := offline.Open(bundle, ownerKey.Address(), fixedNow); !errors.Is(err, offline.ErrBundleExpired) {
		t.Errorf("expired bundle opened: %v", err)
	}
}

func TestOneTimeRejectedOffline(t *testing.T) {
	contract := [20]byte{0x01}
	bundle := sealBundle(t, contract, nil, fixedNow().Add(time.Hour))
	issuer, err := offline.Open(bundle, ownerKey.Address(), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	_, err = issuer.Issue(&core.Request{
		Type: core.SuperType, Contract: contract, Sender: [20]byte{0xc1}, OneTime: true,
	})
	if !errors.Is(err, offline.ErrOneTimeOffline) {
		t.Errorf("one-time issued offline: %v", err)
	}
}

func TestWrongContractRejected(t *testing.T) {
	bundle := sealBundle(t, [20]byte{0x01}, nil, fixedNow().Add(time.Hour))
	issuer, err := offline.Open(bundle, ownerKey.Address(), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	_, err = issuer.Issue(&core.Request{Type: core.SuperType, Contract: [20]byte{0x02}, Sender: [20]byte{0xc1}})
	if err == nil {
		t.Error("bundle issued for a foreign contract")
	}
}
