// Package offline implements the paper's § IX future-work sketch: a fully
// decentralized SMACS where "a TS implemented within a TEE enclave could
// decentralize the entire system: an owner would just publish its ACRs
// which would be validated by the enclave code running locally on a client
// (without contacting any central service)".
//
// The owner Seals a Bundle: the serialized rule set, a delegated issuing
// key, and a validity deadline, all bound by the owner's signature. A
// client Opens the bundle (the enclave attests the owner signature) and
// obtains a LocalIssuer that validates token requests against the bundled
// rules and signs tokens with the delegated key — the on-chain contract
// trusts the delegate's address exactly as it would a central TS.
//
// TEE simulation note (see DESIGN.md): a real enclave would keep the
// delegated key sealed so the client host never sees it; here the bundle
// carries the key bytes and the "enclave boundary" is the package API.
// Everything else — signature-checked rule distribution, local validation,
// expiry clamping — exercises the real code paths.
//
// One-time tokens are not issuable offline: their uniqueness requires the
// coordinated counter of § IV-C/§ VII-B, which a disconnected issuer cannot
// provide. Such requests are rejected with ErrOneTimeOffline.
package offline

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/core"
	"repro/internal/keccak"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// Bundle is the owner-published ACR package.
type Bundle struct {
	// RulesJSON is the Fig. 6-layout rule set.
	RulesJSON []byte `json:"rulesJson"`
	// IssuerKey is the delegated issuing key ("sealed" — see the package
	// note).
	IssuerKey []byte `json:"issuerKey"`
	// Contract restricts the bundle to one contract.
	Contract types.Address `json:"contract"`
	// NotAfter bounds both the bundle and every token it issues.
	NotAfter time.Time `json:"notAfter"`
	// OwnerSig binds all of the above to the owner key.
	OwnerSig []byte `json:"ownerSig"`
}

// Offline issuance errors.
var (
	ErrBadBundle      = errors.New("offline: bundle verification failed")
	ErrBundleExpired  = errors.New("offline: bundle expired")
	ErrOneTimeOffline = errors.New("offline: one-time tokens require a coordinated counter")
)

// digest computes the owner-signed commitment over the bundle contents.
func digest(rulesJSON []byte, issuerAddr, contract types.Address, notAfter time.Time) [32]byte {
	var deadline [8]byte
	binary.BigEndian.PutUint64(deadline[:], uint64(notAfter.Unix()))
	return keccak.Sum256Concat(
		[]byte("smacs-offline-bundle-v1"),
		rulesJSON,
		issuerAddr[:],
		contract[:],
		deadline[:],
	)
}

// Seal packages the rule set under the owner's signature. The issuerKey
// becomes the token-signing key; the SMACS-enabled contract must trust
// issuerKey's address (i.e., it is pkTS).
func Seal(ownerKey, issuerKey *secp256k1.PrivateKey, ruleSet *rules.RuleSet,
	contract types.Address, notAfter time.Time) (*Bundle, error) {

	rulesJSON, err := json.Marshal(ruleSet)
	if err != nil {
		return nil, fmt.Errorf("offline: marshal rules: %w", err)
	}
	var keyBytes [32]byte
	issuerKey.D.FillBytes(keyBytes[:])
	sig, err := secp256k1.Sign(ownerKey, digest(rulesJSON, issuerKey.Address(), contract, notAfter))
	if err != nil {
		return nil, fmt.Errorf("offline: sign bundle: %w", err)
	}
	return &Bundle{
		RulesJSON: rulesJSON,
		IssuerKey: keyBytes[:],
		Contract:  contract,
		NotAfter:  notAfter,
		OwnerSig:  sig.Bytes(),
	}, nil
}

// LocalIssuer validates requests against the bundled rules and issues
// tokens locally — the enclave's runtime role.
type LocalIssuer struct {
	key      *secp256k1.PrivateKey
	contract types.Address
	rules    *rules.RuleSet
	notAfter time.Time
	now      func() time.Time
	lifetime time.Duration
}

// Open verifies the bundle against the owner's address and instantiates
// the local issuer (the "enclave attestation" step). now may be nil.
func Open(b *Bundle, owner types.Address, now func() time.Time) (*LocalIssuer, error) {
	if now == nil {
		now = time.Now
	}
	if len(b.IssuerKey) != 32 {
		return nil, fmt.Errorf("%w: issuer key must be 32 bytes", ErrBadBundle)
	}
	issuerKey, err := secp256k1.NewPrivateKey(new(big.Int).SetBytes(b.IssuerKey))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	sig, err := secp256k1.ParseSignature(b.OwnerSig)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	signer, err := secp256k1.RecoverAddress(
		digest(b.RulesJSON, issuerKey.Address(), b.Contract, b.NotAfter), sig)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	if signer != owner {
		return nil, fmt.Errorf("%w: signed by %s, want owner %s", ErrBadBundle, signer, owner)
	}
	if now().After(b.NotAfter) {
		return nil, fmt.Errorf("%w: deadline %s", ErrBundleExpired, b.NotAfter.UTC().Format(time.RFC3339))
	}
	ruleSet := rules.NewRuleSet()
	if err := json.Unmarshal(b.RulesJSON, ruleSet); err != nil {
		return nil, fmt.Errorf("%w: rules: %v", ErrBadBundle, err)
	}
	return &LocalIssuer{
		key:      issuerKey,
		contract: b.Contract,
		rules:    ruleSet,
		notAfter: b.NotAfter,
		now:      now,
		lifetime: time.Hour,
	}, nil
}

// Address returns the delegated issuing address the contract must trust.
func (li *LocalIssuer) Address() types.Address { return li.key.Address() }

// Issue validates the request against the bundled ACRs and returns a
// signed token whose expiry never exceeds the bundle deadline.
func (li *LocalIssuer) Issue(req *core.Request) (core.Token, error) {
	if req.OneTime {
		return core.Token{}, ErrOneTimeOffline
	}
	if err := req.Validate(); err != nil {
		return core.Token{}, err
	}
	if req.Contract != li.contract {
		return core.Token{}, fmt.Errorf("%w: bundle covers %s, request targets %s",
			ErrBadBundle, li.contract, req.Contract)
	}
	now := li.now()
	if now.After(li.notAfter) {
		return core.Token{}, fmt.Errorf("%w: deadline %s", ErrBundleExpired,
			li.notAfter.UTC().Format(time.RFC3339))
	}
	if err := li.rules.Check(req); err != nil {
		return core.Token{}, err
	}
	binding, err := req.Binding()
	if err != nil {
		return core.Token{}, err
	}
	expire := now.Add(li.lifetime)
	if expire.After(li.notAfter) {
		expire = li.notAfter
	}
	return core.SignToken(li.key, req.Type, expire, core.NotOneTime, binding)
}
