// Package replica implements the quorum-replicated monotonic counter the
// paper prescribes for highly available Token Services issuing one-time
// tokens (§ VII-B: "its replicas have to coordinate on the current counter
// value ... efficiently realized via a replicated counter primitive").
//
// The cluster keeps N replicas; an allocation round reads a majority,
// proposes max+1, and commits only if a majority accepts (each replica
// accepts a value only once and only if it is larger than anything it has
// accepted). Because any two majorities intersect, no two frontends can
// commit the same index — the uniqueness one-time tokens require. The
// cluster tolerates ⌊(N−1)/2⌋ crashed replicas.
package replica

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoQuorum is returned when fewer than a majority of replicas respond.
var ErrNoQuorum = errors.New("replica: quorum unavailable")

// replica is one counter replica. In production these would live on
// separate machines behind a consensus protocol; here they model the
// abstract primitive with injectable failures.
type replica struct {
	mu       sync.Mutex
	accepted int64
	down     bool
}

// read returns the highest accepted value, or an error when down.
func (r *replica) read() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return 0, errors.New("replica down")
	}
	return r.accepted, nil
}

// propose accepts v iff the replica is up and v is strictly greater than
// anything accepted before.
func (r *replica) propose(v int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down || v <= r.accepted {
		return false
	}
	r.accepted = v
	return true
}

// Cluster is a set of counter replicas plus the client-side allocation
// protocol.
type Cluster struct {
	replicas []*replica
}

// NewCluster creates a cluster of n replicas (n must be odd and ≥ 1 so
// majorities are unambiguous).
func NewCluster(n int) (*Cluster, error) {
	if n < 1 || n%2 == 0 {
		return nil, fmt.Errorf("replica: cluster size must be odd and positive, got %d", n)
	}
	c := &Cluster{replicas: make([]*replica, n)}
	for i := range c.replicas {
		c.replicas[i] = &replica{}
	}
	return c, nil
}

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

func (c *Cluster) majority() int { return len(c.replicas)/2 + 1 }

// Kill crashes replica i (allocation keeps working while a majority is
// up).
func (c *Cluster) Kill(i int) {
	c.replicas[i].mu.Lock()
	c.replicas[i].down = true
	c.replicas[i].mu.Unlock()
}

// Revive restarts replica i (it keeps its accepted value, as a durable
// log would).
func (c *Cluster) Revive(i int) {
	c.replicas[i].mu.Lock()
	c.replicas[i].down = false
	c.replicas[i].mu.Unlock()
}

// Counter returns a frontend implementing ts.Counter against this cluster.
// Multiple frontends may allocate concurrently; indexes are unique across
// all of them.
func (c *Cluster) Counter() *QuorumCounter { return &QuorumCounter{cluster: c} }

// QuorumCounter is a client-side frontend allocating unique, strictly
// increasing indexes from the cluster.
type QuorumCounter struct {
	cluster *Cluster
}

// maxProposeRounds bounds retries under heavy contention.
const maxProposeRounds = 64

// Next allocates the next index: read a majority, propose max+1, and
// retry with a larger value while other frontends win races. Fails with
// ErrNoQuorum when a majority of replicas is unreachable.
func (q *QuorumCounter) Next() (int64, error) {
	for round := 0; round < maxProposeRounds; round++ {
		max, err := q.readMax()
		if err != nil {
			return 0, err
		}
		candidate := max + 1
		acks := 0
		alive := 0
		for _, r := range q.cluster.replicas {
			if r.propose(candidate) {
				acks++
				alive++
				continue
			}
			if _, err := r.read(); err == nil {
				alive++
			}
		}
		if alive < q.cluster.majority() {
			return 0, ErrNoQuorum
		}
		if acks >= q.cluster.majority() {
			return candidate, nil
		}
		// Lost the race: another frontend claimed this value on some
		// replicas. Retry with a fresh read.
	}
	return 0, fmt.Errorf("replica: no progress after %d rounds", maxProposeRounds)
}

// Frontier returns the highest value any frontend ever committed on the
// cluster, read from a majority — the in-process analogue of the
// networked Coordinator.Frontier, used by a membership freeze to derive
// a group's all-time block frontier.
func (q *QuorumCounter) Frontier() (int64, error) {
	return q.readMax()
}

func (q *QuorumCounter) readMax() (int64, error) {
	responses := 0
	var max int64
	for _, r := range q.cluster.replicas {
		v, err := r.read()
		if err != nil {
			continue
		}
		responses++
		if v > max {
			max = v
		}
	}
	if responses < q.cluster.majority() {
		return 0, ErrNoQuorum
	}
	return max, nil
}
