package replica

import (
	"errors"
	"sync"
	"testing"
)

func TestClusterSizeValidation(t *testing.T) {
	for _, n := range []int{0, -1, 2, 4} {
		if _, err := NewCluster(n); err == nil {
			t.Errorf("cluster size %d accepted", n)
		}
	}
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestSequentialAllocation(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	ctr := c.Counter()
	for want := int64(1); want <= 10; want++ {
		got, err := ctr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Next = %d, want %d", got, want)
		}
	}
}

// TestFrontierReadsCommittedMax pins the membership-freeze contract: a
// fresh frontend's Frontier covers every value already committed, and
// fails closed without a quorum.
func TestFrontierReadsCommittedMax(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	ctr := c.Counter()
	if got, err := ctr.Frontier(); err != nil || got != 0 {
		t.Fatalf("fresh Frontier = %d, %v", got, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ctr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := c.Counter().Frontier(); err != nil || got != 5 {
		t.Fatalf("Frontier = %d, %v, want 5", got, err)
	}
	c.Kill(0)
	c.Kill(1)
	if _, err := ctr.Frontier(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Frontier without quorum = %v, want ErrNoQuorum", err)
	}
}

func TestConcurrentFrontendsUnique(t *testing.T) {
	// § VII-B: replicated TSes coordinate on the counter; no two may issue
	// the same one-time index.
	c, err := NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	const (
		frontends = 8
		perFE     = 50
	)
	out := make(chan int64, frontends*perFE)
	var wg sync.WaitGroup
	for i := 0; i < frontends; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctr := c.Counter()
			for j := 0; j < perFE; j++ {
				v, err := ctr.Next()
				if err != nil {
					t.Error(err)
					return
				}
				out <- v
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[int64]bool)
	for v := range out {
		if seen[v] {
			t.Fatalf("index %d allocated twice", v)
		}
		seen[v] = true
	}
	if len(seen) != frontends*perFE {
		t.Errorf("allocated %d unique values, want %d", len(seen), frontends*perFE)
	}
}

func TestToleratesMinorityFailure(t *testing.T) {
	c, err := NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	ctr := c.Counter()
	if _, err := ctr.Next(); err != nil {
		t.Fatal(err)
	}
	c.Kill(0)
	c.Kill(1)
	v, err := ctr.Next()
	if err != nil {
		t.Fatalf("allocation failed with minority down: %v", err)
	}
	if v != 2 {
		t.Errorf("Next = %d, want 2", v)
	}
}

func TestFailsWithoutQuorum(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill(0)
	c.Kill(1)
	if _, err := c.Counter().Next(); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("err = %v, want ErrNoQuorum", err)
	}
}

func TestReviveRestoresProgressAndMonotonicity(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	ctr := c.Counter()
	for i := 0; i < 5; i++ {
		if _, err := ctr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	c.Kill(2)
	mid, err := ctr.Next()
	if err != nil {
		t.Fatal(err)
	}
	c.Revive(2)
	// The revived replica lags; allocation must still move forward, never
	// backward.
	next, err := ctr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if next <= mid {
		t.Errorf("allocation went backwards: %d after %d", next, mid)
	}
}
