package net

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/store"
)

// Node is one networked counter replica: the state machine plus its
// HTTP handler. A Node optionally journals to a store.Backend with the
// same durability contract as store.Counter — a promise or grant is on
// stable storage before the ack leaves, so a crash can lose an ack but
// never un-happen one.
type Node struct {
	mu       sync.Mutex
	accepted int64
	promised int64
	backend  store.Backend // nil = volatile (tests, throwaway groups)
}

// NewNode creates a volatile replica starting from zero state. It
// forgets everything on restart — use OpenNode for replicas that must
// survive crashes.
func NewNode() *Node { return &Node{} }

// OpenNode replays a backend and returns a replica resuming from its
// durable state: accepted is the highest journaled lease, promised the
// highest journaled epoch. Every later promise and grant is journaled
// before it is acknowledged.
func OpenNode(b store.Backend) (*Node, error) {
	snap, recs, err := b.Replay()
	if err != nil {
		return nil, fmt.Errorf("replica/net: replay node: %w", err)
	}
	if snap != nil {
		return nil, fmt.Errorf("replica/net: node backend has an unexpected snapshot (%d bytes)", len(snap))
	}
	n := &Node{backend: b}
	for _, rec := range recs {
		switch rec.Kind {
		case store.KindLease:
			if rec.Value > n.accepted {
				n.accepted = rec.Value
			}
		case store.KindEpoch:
			if rec.Value > n.promised {
				n.promised = rec.Value
			}
		}
	}
	return n, nil
}

// State returns the replica's current protocol state.
func (n *Node) State() (accepted, promised int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.accepted, n.promised
}

// Fence promises epoch iff it is strictly greater than any promise made
// before, journaling the promise before reporting success. The returned
// state is post-decision either way, so a rejected coordinator learns
// the epoch that outbid it.
func (n *Node) Fence(epoch int64) (wireAck, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch <= n.promised {
		return wireAck{OK: false, State: wireState{Accepted: n.accepted, Promised: n.promised}}, nil
	}
	if n.backend != nil {
		// Durable before acked: a restarted replica must keep rejecting
		// the coordinators this promise fenced off.
		if err := n.backend.Append(store.Record{Kind: store.KindEpoch, Value: epoch}); err != nil {
			return wireAck{}, fmt.Errorf("replica/net: persist epoch %d: %w", epoch, err)
		}
	}
	n.promised = epoch
	return wireAck{OK: true, State: wireState{Accepted: n.accepted, Promised: n.promised}}, nil
}

// Grant accepts lease under epoch iff the epoch is at least the current
// promise and the lease is strictly greater than anything accepted
// before, journaling the lease before reporting success. Strict lease
// monotonicity is the safety core: any two majorities intersect, so two
// coordinators can never both commit the same lease.
func (n *Node) Grant(epoch, lease int64) (wireAck, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.promised || lease <= n.accepted {
		return wireAck{OK: false, State: wireState{Accepted: n.accepted, Promised: n.promised}}, nil
	}
	if n.backend != nil {
		// Durable before acked: an acked lease must survive a crash, or a
		// rejoined replica could help a second coordinator commit it again.
		if err := n.backend.Append(store.Record{Kind: store.KindLease, Value: lease}); err != nil {
			return wireAck{}, fmt.Errorf("replica/net: persist lease %d: %w", lease, err)
		}
	}
	n.accepted = lease
	if epoch > n.promised {
		// Seeing a grant from a newer epoch implies its fence round
		// happened; adopt it (volatile is fine — the fence journal entry
		// exists on the majority that promised it).
		n.promised = epoch
	}
	return wireAck{OK: true, State: wireState{Accepted: n.accepted, Promised: n.promised}}, nil
}

// Handler returns the replica's HTTP interface (PathState, PathFence,
// PathGrant).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathState, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		accepted, promised := n.State()
		writeJSON(w, wireState{Accepted: accepted, Promised: promised})
	})
	mux.HandleFunc(PathFence, func(w http.ResponseWriter, r *http.Request) {
		var req wireFenceRequest
		if !readJSON(w, r, &req) {
			return
		}
		ack, err := n.Fence(req.Epoch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, ack)
	})
	mux.HandleFunc(PathGrant, func(w http.ResponseWriter, r *http.Request) {
		var req wireGrantRequest
		if !readJSON(w, r, &req) {
			return
		}
		ack, err := n.Grant(req.Epoch, req.Lease)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, ack)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
