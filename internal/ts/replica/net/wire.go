// Package net is the networked realization of the replica package's
// quorum-replicated counter: replica Nodes speak HTTP/JSON and a
// client-side Coordinator implements ts.Counter by running a lease-based
// majority-ack protocol against them, with epoch fencing, replica
// failure detection, and rejoin-with-catchup.
//
// Protocol, per allocation:
//
//  1. Fence (once per coordinator, repeated only after preemption): the
//     coordinator proposes an epoch to every replica. A replica promises
//     the epoch iff it is strictly greater than any epoch it already
//     promised — persisting the promise before acking — and returns its
//     highest accepted lease either way. A majority of promises
//     establishes the epoch.
//  2. Grant: the coordinator reads a majority's accepted leases, picks
//     candidate = max+1, and asks every replica to grant it under its
//     epoch. A replica grants iff the epoch is ≥ its promise and the
//     lease is strictly greater than anything it accepted — persisting
//     the lease before acking. A majority of grants commits the lease.
//
// Safety does not rest on the epochs: because grants are strictly
// monotonic per replica and any two majorities intersect, two
// coordinators can never commit the same lease even with interleaved
// epochs. Epochs are fencing for liveness — a preempted coordinator
// learns immediately (a nack carries the higher promise) instead of
// burning propose rounds losing races it cannot win.
//
// Rejoin-with-catchup needs no extra machinery: a replica restarting
// from its WAL replays its accepted lease and promised epoch, and
// because coordinators propose absolute values read from a live
// majority, the first grant a rejoined (possibly stale) replica acks
// snaps it forward to the cluster's frontier.
package net

// wireState is a replica's protocol state, returned by every endpoint so
// a coordinator learns the frontier from any reply, ack or nack.
type wireState struct {
	// Accepted is the highest lease the replica has durably granted.
	Accepted int64 `json:"accepted"`
	// Promised is the highest epoch the replica has durably promised.
	Promised int64 `json:"promised"`
}

// wireFenceRequest asks a replica to promise an epoch.
type wireFenceRequest struct {
	Epoch int64 `json:"epoch"`
}

// wireGrantRequest asks a replica to accept a lease under an epoch.
type wireGrantRequest struct {
	Epoch int64 `json:"epoch"`
	Lease int64 `json:"lease"`
}

// wireAck is the reply to a fence or grant. OK reports whether the
// request was admitted; State is the replica's (post-request) state, so
// nacks double as catch-up hints.
type wireAck struct {
	OK    bool      `json:"ok"`
	State wireState `json:"state"`
}

// Protocol endpoints served by a Node.
const (
	// PathState returns the replica's wireState (GET).
	PathState = "/v1/replica/state"
	// PathFence proposes an epoch (POST wireFenceRequest → wireAck).
	PathFence = "/v1/replica/fence"
	// PathGrant proposes a lease (POST wireGrantRequest → wireAck).
	PathGrant = "/v1/replica/grant"
)
