package net

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/ts/replica"
)

// startGroup serves n fresh volatile nodes and returns their servers
// and base URLs.
func startGroup(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	urls := make([]string, n)
	for i := range servers {
		s, err := Serve(NewNode(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers[i] = s
		urls[i] = s.URL()
	}
	return servers, urls
}

func newCoordinator(t *testing.T, urls []string) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(urls, Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCoordinatorFrontier pins what a membership freeze relies on: the
// frontier covers every lease any coordinator incarnation ever
// committed — including one a fresh coordinator (a restarted frontend)
// has never seen — and fails closed without a quorum.
func TestCoordinatorFrontier(t *testing.T) {
	servers, urls := startGroup(t, 3)
	c1 := newCoordinator(t, urls)
	var last int64
	for i := 0; i < 7; i++ {
		v, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		last = v
	}
	c2 := newCoordinator(t, urls) // restarted frontend: empty local state
	got, err := c2.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if got < last {
		t.Fatalf("Frontier = %d, below committed lease %d", got, last)
	}
	if c2.Epoch() == 0 {
		t.Fatal("Frontier did not fence an epoch first")
	}
	for _, s := range servers[:2] {
		_ = s.Close()
	}
	if _, err := c2.Frontier(); !errors.Is(err, replica.ErrNoQuorum) {
		t.Fatalf("Frontier without quorum = %v, want ErrNoQuorum", err)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, Options{}); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewCoordinator([]string{"a", "b"}, Options{}); err == nil {
		t.Error("even peer set accepted")
	}
}

// The core uniqueness property over a real network stack: concurrent
// coordinators (distinct frontends, shared replica group) never commit
// the same lease, and every committed lease is positive and strictly
// increasing per coordinator.
func TestConcurrentCoordinatorsAllocateUniqueLeases(t *testing.T) {
	_, urls := startGroup(t, 3)
	const (
		coordinators = 4
		perCoord     = 25
	)
	var (
		mu     sync.Mutex
		seen   = make(map[int64]int, coordinators*perCoord)
		wg     sync.WaitGroup
		failed = make(chan error, coordinators)
	)
	for cdx := 0; cdx < coordinators; cdx++ {
		wg.Add(1)
		go func(cdx int) {
			defer wg.Done()
			c := newCoordinator(t, urls)
			last := int64(0)
			for i := 0; i < perCoord; i++ {
				v, err := c.Next()
				if err != nil {
					failed <- fmt.Errorf("coordinator %d: %w", cdx, err)
					return
				}
				if v <= last {
					failed <- fmt.Errorf("coordinator %d: lease %d not increasing after %d", cdx, v, last)
					return
				}
				last = v
				mu.Lock()
				if prev, dup := seen[v]; dup {
					mu.Unlock()
					failed <- fmt.Errorf("lease %d committed by both coordinator %d and %d", v, prev, cdx)
					return
				}
				seen[v] = cdx
				mu.Unlock()
			}
		}(cdx)
	}
	wg.Wait()
	close(failed)
	for err := range failed {
		t.Fatal(err)
	}
	if len(seen) != coordinators*perCoord {
		t.Fatalf("committed %d leases, want %d", len(seen), coordinators*perCoord)
	}
}

// Killing one of three replicas must not stall allocation, and the
// failure detector must flag the dead peer.
func TestKillOneOfThreeContinues(t *testing.T) {
	servers, urls := startGroup(t, 3)
	c := newCoordinator(t, urls)
	v1, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	var last int64 = v1
	for i := 0; i < 5; i++ {
		v, err := c.Next()
		if err != nil {
			t.Fatalf("allocation %d with one dead replica: %v", i, err)
		}
		if v <= last {
			t.Fatalf("lease %d not increasing after %d", v, last)
		}
		last = v
	}
	down := c.Down()
	if len(down) != 1 || down[0] != urls[1] {
		t.Fatalf("failure detector reports %v, want [%s]", down, urls[1])
	}
}

// Two dead replicas of three is a lost quorum: allocation must fail
// with ErrNoQuorum, not hang and not hand out a lease.
func TestKillTwoOfThreeNoQuorum(t *testing.T) {
	servers, urls := startGroup(t, 3)
	c, err := NewCoordinator(urls, Options{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	_ = servers[0].Close()
	_ = servers[2].Close()
	if _, err := c.Next(); !errors.Is(err, replica.ErrNoQuorum) {
		t.Fatalf("allocation without a quorum returned %v, want ErrNoQuorum", err)
	}
}

// A killed replica that rejoins at the same address is readmitted by
// the failure detector and caught up by the first grant it acks.
func TestRejoinCatchesUp(t *testing.T) {
	servers, urls := startGroup(t, 3)
	c := newCoordinator(t, urls)
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}

	addr := servers[2].Addr()
	node := servers[2].Node()
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	var frontier int64
	for i := 0; i < 10; i++ {
		v, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		frontier = v
	}
	if len(c.Down()) != 1 {
		t.Fatalf("failure detector reports %v, want the killed replica", c.Down())
	}

	// Rejoin: same node state machine, same address. The port can
	// occasionally still be in TIME_WAIT; retry briefly.
	var revived *Server
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if revived, err = Serve(node, addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rejoin at %s: %v", addr, err)
	}
	defer revived.Close()

	for i := 0; i < 5; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if down := c.Down(); len(down) != 0 {
		t.Fatalf("failure detector still reports %v after rejoin", down)
	}
	accepted, _ := node.State()
	if accepted <= frontier {
		t.Fatalf("rejoined replica accepted=%d, want caught up past %d", accepted, frontier)
	}
}

// Epoch fencing: a second coordinator fencing a higher epoch preempts
// the first, which must refence (not stall, not duplicate) — both keep
// committing unique leases.
func TestEpochFencingPreemption(t *testing.T) {
	_, urls := startGroup(t, 3)
	a := newCoordinator(t, urls)
	b := newCoordinator(t, urls)

	va, err := a.Next()
	if err != nil {
		t.Fatal(err)
	}
	epochA := a.Epoch()

	vb, err := b.Next() // fences above a's epoch
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch() <= epochA {
		t.Fatalf("b fenced epoch %d, want > a's %d", b.Epoch(), epochA)
	}
	if vb <= va {
		t.Fatalf("b committed %d, want > a's %d", vb, va)
	}

	va2, err := a.Next() // preempted: must refence and still commit
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch() <= b.Epoch() {
		t.Fatalf("a refenced to epoch %d, want > b's %d", a.Epoch(), b.Epoch())
	}
	if va2 <= vb {
		t.Fatalf("a committed %d after preemption, want > %d", va2, vb)
	}
}

// WAL-backed replicas must never help re-commit a lease across a crash:
// restart every node from its log and verify allocation resumes
// strictly above the pre-crash frontier, and that epoch promises
// survive too.
func TestDurableNodesNeverReissueAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	backends := make([]*store.File, 3)
	servers := make([]*Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		b, err := store.OpenFile(filepath.Join(dir, fmt.Sprintf("n%d", i)), store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = b
		node, err := OpenNode(b)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Serve(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		urls[i] = s.URL()
	}

	c := newCoordinator(t, urls)
	var frontier int64
	for i := 0; i < 8; i++ {
		v, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		frontier = v
	}
	epochBefore := c.Epoch()

	// Crash everything (servers down, backends closed without snapshot).
	for i := range servers {
		_ = servers[i].Close()
		_ = backends[i].Close()
	}

	// Restart each replica from its WAL on the same address.
	urls2 := make([]string, 3)
	for i := range servers {
		b, err := store.OpenFile(filepath.Join(dir, fmt.Sprintf("n%d", i)), store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		node, err := OpenNode(b)
		if err != nil {
			t.Fatal(err)
		}
		accepted, promised := node.State()
		if accepted < frontier && i == 0 {
			// Individual replicas may lag (a majority suffices), but none
			// may have lost a journaled grant below what it acked; the
			// group-level check below is the real gate.
			t.Logf("replica %d restarted at accepted=%d promised=%d", i, accepted, promised)
		}
		var s *Server
		for attempt := 0; attempt < 50; attempt++ {
			if s, err = Serve(node, servers[i].Addr()); err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		urls2[i] = s.URL()
	}

	// A fresh coordinator (simulating a restarted frontend) must resume
	// strictly above every pre-crash lease.
	c2 := newCoordinator(t, urls2)
	v, err := c2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if v <= frontier {
		t.Fatalf("post-restart lease %d ≤ pre-crash frontier %d: reissue", v, frontier)
	}
	// And its fencing must have had to climb above the durable promises.
	if c2.Epoch() <= epochBefore {
		t.Fatalf("post-restart epoch %d ≤ pre-crash epoch %d: promises not durable", c2.Epoch(), epochBefore)
	}
}

// OpenNode must reject a backend carrying a foreign snapshot rather
// than silently ignoring state.
func TestOpenNodeRejectsSnapshot(t *testing.T) {
	m := store.NewMemory()
	if err := m.Snapshot([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenNode(m); err == nil {
		t.Fatal("backend with snapshot accepted")
	}
}

// Direct state-machine checks: fence and grant ordering rules.
func TestNodeProtocolRules(t *testing.T) {
	n := NewNode()
	if ack, _ := n.Fence(3); !ack.OK {
		t.Fatal("first fence rejected")
	}
	if ack, _ := n.Fence(3); ack.OK {
		t.Fatal("equal epoch re-promised")
	}
	if ack, _ := n.Fence(2); ack.OK {
		t.Fatal("lower epoch promised")
	}
	if ack, _ := n.Grant(2, 1); ack.OK {
		t.Fatal("grant under a fenced-off epoch accepted")
	}
	if ack, _ := n.Grant(3, 1); !ack.OK {
		t.Fatal("valid grant rejected")
	}
	if ack, _ := n.Grant(3, 1); ack.OK {
		t.Fatal("duplicate lease re-granted")
	}
	if ack, _ := n.Grant(4, 5); !ack.OK {
		t.Fatal("grant under a newer epoch rejected")
	}
	if _, promised := n.State(); promised != 4 {
		t.Fatalf("grant under epoch 4 left promise at %d", promised)
	}
}
