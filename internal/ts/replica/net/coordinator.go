package net

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/ts/replica"
)

const (
	// DefaultTimeout bounds each replica RPC. A partitioned (blackholed)
	// replica costs at most this long, and the parallel fan-out with
	// early majority return means it usually costs nothing.
	DefaultTimeout = 2 * time.Second
	// maxProposeRounds bounds grant retries under contention, matching
	// the in-process QuorumCounter.
	maxProposeRounds = 64
	// maxFenceRounds bounds epoch escalation against dueling
	// coordinators. It matches maxProposeRounds: several coordinators
	// refencing concurrently (e.g. a cold fleet start, or the race
	// detector slowing every round) can legitimately collide for
	// dozens of rounds before the jittered backoff desynchronizes them.
	maxFenceRounds = 64
	// downAfter is the consecutive-failure count at which a replica is
	// suspected down.
	downAfter = 3
	// DefaultBackoffCap bounds one contention-backoff sleep. The cap is
	// what makes chaos timing analyzable: a worst-case grant needs at
	// most maxProposeRounds sleeps, so the total stall a duel can add is
	// maxProposeRounds × DefaultBackoffCap, independent of how unlucky
	// the jitter rolls are.
	DefaultBackoffCap = 32 * time.Millisecond
)

// MetricGrantRetries counts grant rounds that had to be retried (lease
// race lost or fenced off by a newer coordinator) across every
// coordinator sharing a registry.
const MetricGrantRetries = "coordinator_grant_retries_total"

// Options tune a Coordinator.
type Options struct {
	// Timeout bounds each replica RPC (0 = DefaultTimeout).
	Timeout time.Duration
	// Client overrides the HTTP client (nil = a pooled default).
	Client *http.Client
	// Metrics receives coordinator counters (nil = the process default
	// registry).
	Metrics *metrics.Registry
	// BackoffCap bounds a single contention-backoff sleep
	// (0 = DefaultBackoffCap).
	BackoffCap time.Duration
	// BackoffSeed seeds the backoff jitter (0 = derived from the global
	// source). Fixing it makes contention timing reproducible in tests.
	BackoffSeed int64
}

// Coordinator is the client side of the protocol: it implements
// ts.Counter by fencing an epoch and then committing leases with
// majority acks. It is safe for concurrent use (allocations from one
// coordinator are serialized; run several coordinators for parallelism —
// indexes stay unique across all of them). The group tolerates
// ⌊(N−1)/2⌋ unreachable replicas.
type Coordinator struct {
	peers   []string
	client  *http.Client
	timeout time.Duration

	// fails[i] counts consecutive failed RPCs to peers[i] — the failure
	// detector. Atomics because straggler RPCs from an early-returned
	// round report after the round moved on.
	fails []atomic.Int32

	mu     sync.Mutex
	epoch  int64
	fenced bool
	// contention grows on every preemption and resets on a committed
	// lease; it drives the exponential backoff that desynchronizes
	// dueling coordinators.
	contention int
	// rng drives backoff jitter; per-coordinator (and mu-guarded) so a
	// fixed BackoffSeed gives a reproducible delay sequence.
	rng        *rand.Rand
	backoffCap time.Duration

	grantRetries *metrics.Counter
}

// NewCoordinator builds a coordinator over the replica base URLs
// (e.g. "http://127.0.0.1:7101"). The peer set is fixed for the
// coordinator's lifetime; len(peers) should be odd so majorities are
// unambiguous.
func NewCoordinator(peers []string, opts Options) (*Coordinator, error) {
	if len(peers) < 1 || len(peers)%2 == 0 {
		return nil, fmt.Errorf("replica/net: peer count must be odd and positive, got %d", len(peers))
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 8,
		}}
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = DefaultBackoffCap
	}
	seed := opts.BackoffSeed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Coordinator{
		peers:      append([]string(nil), peers...),
		client:     opts.Client,
		timeout:    opts.Timeout,
		fails:      make([]atomic.Int32, len(peers)),
		rng:        rand.New(rand.NewSource(seed)),
		backoffCap: opts.BackoffCap,
		grantRetries: metrics.Or(opts.Metrics).Counter(MetricGrantRetries,
			"Coordinator grant rounds retried after a lost lease race or epoch preemption."),
	}, nil
}

// Peers returns the replica base URLs the coordinator speaks to.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.peers...) }

// Epoch returns the currently established epoch (0 before the first
// successful fence).
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Down returns the peers currently suspected down: those whose last
// downAfter (or more) RPCs all failed. A single successful RPC clears
// the suspicion — rejoined replicas are readmitted immediately.
func (c *Coordinator) Down() []string {
	var down []string
	for i := range c.fails {
		if c.fails[i].Load() >= downAfter {
			down = append(down, c.peers[i])
		}
	}
	return down
}

func (c *Coordinator) majority() int { return len(c.peers)/2 + 1 }

// Next implements ts.Counter: fence if needed, read the majority
// frontier, and commit max+1 with majority acks. Returns
// replica.ErrNoQuorum while a majority of replicas is unreachable.
func (c *Coordinator) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for round := 0; round < maxProposeRounds; round++ {
		if !c.fenced {
			if err := c.fenceLocked(); err != nil {
				return 0, err
			}
		}
		max, err := c.readMaxLocked()
		if err != nil {
			return 0, err
		}
		candidate := max + 1
		acks, replies, maxPromised := c.round(PathGrant, wireGrantRequest{Epoch: c.epoch, Lease: candidate})
		if acks >= c.majority() {
			c.contention = 0
			return candidate, nil
		}
		if replies < c.majority() {
			return 0, replica.ErrNoQuorum
		}
		c.grantRetries.Inc()
		if maxPromised > c.epoch {
			// Fenced off by a newer coordinator: re-establish an epoch
			// above the one that preempted us before retrying. Back off
			// with jitter first — two coordinators refencing in lockstep
			// would preempt each other forever (dueling proposers).
			c.epoch = maxPromised
			c.fenced = false
			c.backoffLocked()
		}
		// Otherwise we lost a lease race under a valid epoch; loop with a
		// fresh read.
	}
	return 0, fmt.Errorf("replica/net: no progress after %d rounds", maxProposeRounds)
}

// Fence establishes a fresh epoch immediately, even if one is already
// held, and returns it. It is the takeover primitive: a successor
// frontend fences over a crashed (or merely suspected-dead) predecessor,
// after which every replica majority rejects the predecessor's grants —
// its leased blocks stop growing within one lease round-trip instead of
// lingering until someone happens to allocate. Safe to call on a live
// group; the displaced coordinator refences on its next allocation.
func (c *Coordinator) Fence() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fenced = false
	if err := c.fenceLocked(); err != nil {
		return 0, err
	}
	return c.epoch, nil
}

// fenceLocked establishes an epoch: propose epoch+1 to everyone and
// escalate past any higher promise a nack reveals. Requires c.mu.
func (c *Coordinator) fenceLocked() error {
	for round := 0; round < maxFenceRounds; round++ {
		candidate := c.epoch + 1
		acks, replies, maxPromised := c.round(PathFence, wireFenceRequest{Epoch: candidate})
		if acks >= c.majority() {
			c.epoch = candidate
			c.fenced = true
			return nil
		}
		if replies < c.majority() {
			return replica.ErrNoQuorum
		}
		if maxPromised > c.epoch {
			c.epoch = maxPromised
		} else {
			c.epoch = candidate
		}
		c.backoffLocked()
	}
	return fmt.Errorf("replica/net: could not establish an epoch after %d rounds", maxFenceRounds)
}

// backoffLocked sleeps a jittered duration that grows exponentially
// with the coordinator's recent preemption count, hard-capped at
// backoffCap, so coordinators that keep preempting each other
// desynchronize instead of livelocking — the standard answer to Paxos's
// dueling proposers. Requires c.mu (the sleep intentionally holds the
// allocation lock: letting another local allocation barge in would just
// duel again).
func (c *Coordinator) backoffLocked() {
	if c.contention < 16 {
		c.contention++
	}
	time.Sleep(backoffDelay(c.contention, c.rng, c.backoffCap))
}

// backoffDelay computes one jittered backoff: uniform in
// [min(1ms, cap), min(2^contention ms, cap)]. Pure so the bound is
// testable with a seeded source — no jitter roll may exceed cap, even a
// sub-millisecond one, which in turn bounds the worst-case stall of a
// full grant duel (maxProposeRounds × cap) below any chaos-scenario
// deadline.
func backoffDelay(contention int, rng *rand.Rand, cap time.Duration) time.Duration {
	ceil := time.Duration(1<<uint(min(contention, 30))) * time.Millisecond
	if ceil > cap {
		ceil = cap
	}
	floor := time.Millisecond
	if floor > cap {
		floor = cap
	}
	if ceil < floor {
		ceil = floor
	}
	return floor + time.Duration(rng.Int63n(int64(ceil-floor)+1))
}

// Frontier returns the durable sequence frontier of the replica group:
// the highest value any coordinator incarnation ever committed, read
// from a majority (any committed value lives on some majority, which
// intersects the one read). An epoch is fenced first if this coordinator
// holds none, so a displaced predecessor cannot commit new values after
// the read — the property a membership freeze needs when it derives the
// group's all-time block frontier from this value.
func (c *Coordinator) Frontier() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fenced {
		if err := c.fenceLocked(); err != nil {
			return 0, err
		}
	}
	return c.readMaxLocked()
}

// readMaxLocked reads a majority of replica states and returns the
// highest accepted lease. Requires c.mu.
func (c *Coordinator) readMaxLocked() (int64, error) {
	ch := make(chan peerReply, len(c.peers))
	for i := range c.peers {
		go func(i int) {
			var st wireState
			err := c.get(c.peers[i]+PathState, &st)
			c.note(i, err)
			ch <- peerReply{err: err, ack: wireAck{OK: err == nil, State: st}}
		}(i)
	}
	replies := 0
	var max int64
	for range c.peers {
		r := <-ch
		if r.err != nil {
			continue
		}
		replies++
		if r.ack.State.Accepted > max {
			max = r.ack.State.Accepted
		}
		if replies >= c.majority() {
			// Enough: a committed lease lives on some majority, which
			// intersects the majority just read, so max already covers it.
			break
		}
	}
	if replies < c.majority() {
		return 0, replica.ErrNoQuorum
	}
	return max, nil
}

// peerReply is one replica's answer within a round.
type peerReply struct {
	ack wireAck
	err error
}

// round broadcasts a POST to every replica in parallel and gathers
// until a majority acks or everyone answered. Stragglers (e.g. a
// blackholed replica waiting out its timeout) resolve in the
// background — the buffered channel absorbs them, and their outcome
// still feeds the failure detector via note.
func (c *Coordinator) round(path string, req any) (acks, replies int, maxPromised int64) {
	ch := make(chan peerReply, len(c.peers))
	for i := range c.peers {
		go func(i int) {
			ack, err := c.post(c.peers[i]+path, req)
			c.note(i, err)
			ch <- peerReply{ack: ack, err: err}
		}(i)
	}
	for range c.peers {
		r := <-ch
		if r.err != nil {
			continue
		}
		replies++
		if r.ack.OK {
			acks++
		}
		if r.ack.State.Promised > maxPromised {
			maxPromised = r.ack.State.Promised
		}
		if acks >= c.majority() {
			return acks, replies, maxPromised
		}
	}
	return acks, replies, maxPromised
}

// note feeds the failure detector: errors increment the peer's
// consecutive-failure count, successes clear it.
func (c *Coordinator) note(peer int, err error) {
	if err != nil {
		c.fails[peer].Add(1)
	} else {
		c.fails[peer].Store(0)
	}
}

func (c *Coordinator) post(url string, req any) (wireAck, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return wireAck{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return wireAck{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var ack wireAck
	if err := c.do(hreq, &ack); err != nil {
		return wireAck{}, err
	}
	return ack, nil
}

func (c *Coordinator) get(url string, v any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return c.do(hreq, v)
}

func (c *Coordinator) do(req *http.Request, v any) error {
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica/net: %s: status %d", req.URL.Path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
