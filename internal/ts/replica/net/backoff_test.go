package net

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelayBounded pins the flake guard for chaos CI: no jitter
// roll, at any contention level, may exceed the configured cap, and the
// worst-case total stall of a full grant duel (every propose round
// backing off at the cap) stays far below the chaos-scenario deadline.
// Deterministic seeds make a violation reproducible, and the sweep
// covers contention levels past the internal growth clamp.
func TestBackoffDelayBounded(t *testing.T) {
	const cap = DefaultBackoffCap
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for contention := 0; contention <= 40; contention++ {
			for i := 0; i < 2000; i++ {
				d := backoffDelay(contention, rng, cap)
				if d < time.Millisecond {
					t.Fatalf("seed %d contention %d: delay %v below 1ms floor", seed, contention, d)
				}
				if d > cap {
					t.Fatalf("seed %d contention %d: delay %v exceeds cap %v", seed, contention, d, cap)
				}
				// Low contention must also respect the exponential ceiling,
				// not just the cap — otherwise first-conflict backoffs could
				// jump straight to the cap and stall fast paths.
				if contention > 0 && contention < 5 {
					if ceil := time.Duration(1<<uint(contention)) * time.Millisecond; d > ceil {
						t.Fatalf("seed %d contention %d: delay %v exceeds 2^c ceiling %v",
							seed, contention, d, ceil)
					}
				}
			}
		}
	}

	// The analyzable end-to-end bound: a coordinator that loses every
	// grant round sleeps at most maxProposeRounds times, each ≤ cap.
	worst := time.Duration(maxProposeRounds) * cap
	if limit := 10 * time.Second; worst >= limit {
		t.Fatalf("worst-case duel stall %v is not safely under the %v chaos deadline budget", worst, limit)
	}
}

// TestBackoffDelaySubMillisecondCap pins that the cap is a hard bound
// even below the 1ms jitter floor: a 200µs cap must never be exceeded,
// or the documented worst-case duel stall (maxProposeRounds × cap)
// silently grows 5× for fast-timing configurations.
func TestBackoffDelaySubMillisecondCap(t *testing.T) {
	for _, cap := range []time.Duration{200 * time.Microsecond, time.Microsecond, time.Millisecond} {
		rng := rand.New(rand.NewSource(99))
		for contention := 0; contention <= 20; contention++ {
			for i := 0; i < 500; i++ {
				if d := backoffDelay(contention, rng, cap); d > cap || d <= 0 {
					t.Fatalf("cap %v contention %d: delay %v outside (0, cap]", cap, contention, d)
				}
			}
		}
	}
}

// TestBackoffDelayDeterministic pins that a fixed seed reproduces the
// exact delay sequence — the property chaos-run triage relies on.
func TestBackoffDelayDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for contention := 0; contention <= 20; contention++ {
		for i := 0; i < 100; i++ {
			da := backoffDelay(contention, a, DefaultBackoffCap)
			db := backoffDelay(contention, b, DefaultBackoffCap)
			if da != db {
				t.Fatalf("contention %d draw %d: %v != %v under identical seeds", contention, i, da, db)
			}
		}
	}
}

// TestCoordinatorBackoffSeedPlumbing asserts the seed option reaches the
// coordinator's private jitter source: two coordinators with the same
// seed produce identical backoff schedules, so a chaos seed fixes not
// only fault timing but contention timing too.
func TestCoordinatorBackoffSeedPlumbing(t *testing.T) {
	mk := func(seed int64) *Coordinator {
		c, err := NewCoordinator([]string{"http://127.0.0.1:1"}, Options{BackoffSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2, c3 := mk(7), mk(7), mk(8)
	same, diff := true, true
	for i := 0; i < 50; i++ {
		d1 := backoffDelay(5, c1.rng, c1.backoffCap)
		d2 := backoffDelay(5, c2.rng, c2.backoffCap)
		d3 := backoffDelay(5, c3.rng, c3.backoffCap)
		if d1 != d2 {
			same = false
		}
		if d1 != d3 {
			diff = false
		}
	}
	if !same {
		t.Fatal("identical BackoffSeed produced diverging schedules")
	}
	if diff {
		t.Fatal("different BackoffSeeds produced identical schedules — seed not plumbed through")
	}
}
