package net

import (
	"fmt"
	stdnet "net"
	"net/http"
	"time"
)

// Server runs one Node's HTTP interface on its own listener — the
// in-process equivalent of a replica process, used by the bench
// harness, the chaos scenarios, and smacs-ts -replica-of plumbing.
type Server struct {
	node     *Node
	listener stdnet.Listener
	srv      *http.Server
	done     chan struct{}
}

// Serve starts an HTTP server for node on addr ("127.0.0.1:0" for a
// fresh loopback port).
func Serve(node *Node, addr string) (*Server, error) {
	l, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replica/net: listen %s: %w", addr, err)
	}
	s := &Server{
		node:     node,
		listener: l,
		srv:      &http.Server{Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second},
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(l)
	}()
	return s, nil
}

// Node returns the replica behind the server.
func (s *Server) Node() *Node { return s.node }

// Addr returns the listen address (host:port).
func (s *Server) Addr() string { return s.listener.Addr().String() }

// URL returns the replica base URL coordinators should dial.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server, severing every open connection — the
// networked analogue of Cluster.Kill. The node's state machine (and its
// backend, if any) is untouched: re-Serve the node to model a rejoin.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
