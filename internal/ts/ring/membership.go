package ring

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// This file is the dynamic side of the package: a versioned membership
// view, an epoch-aware stripe that keeps global block ids unique across
// membership changes, and rebalance-plan computation with exact arc
// accounting.
//
// The static Stripe bakes (index, count) in at construction, so changing
// the group count would collide new allocations with old ones: block
// (k-1)*N+i+1 under N groups and block (k'-1)*N'+i'+1 under N' groups
// can be equal. DynamicStripe removes the collision by giving every
// membership epoch its own region of the block space: a view change
// establishes a watermark W — the highest block any group allocated
// under the old epoch — and the new epoch allocates strictly above it,
// with each group restarting its epoch-local sequence from a recorded
// base. Within one epoch, groups stay disjoint exactly like Stripe
// (distinct residues mod the group count); across epochs, regions are
// disjoint by the watermark. Both properties together give global
// uniqueness through any sequence of joins and drains.

// View is one epoch of the replica-group membership: an ordered group
// list (a group's slot is its position) plus the block watermark the
// epoch allocates above. Views are value types; a membership change
// produces a new View with a strictly higher Epoch.
type View struct {
	// Epoch numbers the view; views with higher epochs supersede lower
	// ones. The first view of a deployment has Epoch 1.
	Epoch int64 `json:"epoch"`
	// Groups are the member group names in slot order.
	Groups []string `json:"groups"`
	// Watermark is the global block id frontier of the previous epoch:
	// every block this view's members allocate is > Watermark. The first
	// view's watermark is 0.
	Watermark int64 `json:"watermark"`
}

// Slot returns the group's position in the view, or -1 when the group is
// not a member.
func (v View) Slot(group string) int {
	for i, g := range v.Groups {
		if g == group {
			return i
		}
	}
	return -1
}

// Validate rejects malformed views: a non-positive epoch, an empty or
// duplicated group list, or a negative watermark.
func (v View) Validate() error {
	if v.Epoch < 1 {
		return fmt.Errorf("ring: view epoch must be ≥ 1, got %d", v.Epoch)
	}
	if len(v.Groups) == 0 {
		return fmt.Errorf("ring: view %d has no groups", v.Epoch)
	}
	if v.Watermark < 0 {
		return fmt.Errorf("ring: view %d watermark %d is negative", v.Epoch, v.Watermark)
	}
	seen := make(map[string]bool, len(v.Groups))
	for _, g := range v.Groups {
		if g == "" {
			return fmt.Errorf("ring: view %d has an empty group name", v.Epoch)
		}
		if seen[g] {
			return fmt.Errorf("ring: view %d lists group %q twice", v.Epoch, g)
		}
		seen[g] = true
	}
	return nil
}

// ErrNotMember is returned by DynamicStripe.Next when the stripe's group
// is not a member of the current view (it was drained, or it joined and
// has not been advanced into a view yet).
var ErrNotMember = fmt.Errorf("ring: group is not a member of the current view")

// FrontierReader is implemented by underlying counters that can report
// their durable sequence frontier: the highest value any incarnation of
// any coordinator ever committed (both quorum coordinator flavors read
// it from a replica majority). DynamicStripe.Freeze uses it to report a
// block frontier that survives frontend restarts — the in-memory highest
// only covers blocks mapped since boot.
type FrontierReader interface {
	Frontier() (int64, error)
}

// DynamicStripe is the epoch-aware replacement for Stripe: it maps its
// group's local allocation sequence onto the global block space under
// the current membership view, and supports live view changes through a
// freeze → advance → resume protocol driven by a membership controller
// (see internal/ts/membership).
//
// Uniqueness invariant: for a fixed view, group at slot s of N maps its
// j-th epoch-local allocation to Watermark + (j-1)*N + s + 1 — residues
// mod N keep same-epoch groups disjoint. Across views, the controller
// sets the new watermark to the maximum block any frozen member ever
// allocated, so new-epoch blocks are strictly above every old-epoch
// block. The base sequence value recorded at adoption makes j restart at
// 1 per epoch without skipping global blocks (local sequence values are
// burned, global blocks are not).
//
// One DynamicStripe must be the sole consumer of its underlying counter
// (the group's quorum coordinator); a second consumer would not break
// uniqueness — the mapping is injective in the underlying sequence — but
// it would leave holes in the group's block region.
type DynamicStripe struct {
	underlying Counter
	group      string

	mu       sync.Mutex
	cond     *sync.Cond
	view     View
	slot     int   // -1 when group ∉ view.Groups
	baseK    int64 // underlying sequence value at view adoption; epoch-local j = k - baseK
	highest  int64 // highest global block mapped since boot; Freeze folds in the durable frontier
	frozen   bool
	inflight int // Next calls between the frozen check and their completion
}

// NewDynamicStripe builds a stripe for group under the initial view.
// baseK is the underlying counter's sequence frontier at adoption: 0 for
// a fresh deployment, or the persisted value when resuming a durable
// frontend (reusing the recorded base is what keeps a restarted frontend
// from re-mapping old sequence numbers onto already-issued blocks).
func NewDynamicStripe(underlying Counter, group string, v View, baseK int64) (*DynamicStripe, error) {
	if underlying == nil {
		return nil, fmt.Errorf("ring: dynamic stripe needs an underlying counter")
	}
	if group == "" {
		return nil, fmt.Errorf("ring: dynamic stripe needs a group name")
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if baseK < 0 {
		return nil, fmt.Errorf("ring: base sequence %d is negative", baseK)
	}
	s := &DynamicStripe{
		underlying: underlying,
		group:      group,
		view:       v,
		slot:       v.Slot(group),
		baseK:      baseK,
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Group returns the stripe's group name.
func (s *DynamicStripe) Group() string { return s.group }

// State returns the current view and the adopted base sequence value —
// what a durable frontend persists so a restart resumes without
// re-mapping blocks.
func (s *DynamicStripe) State() (View, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view, s.baseK
}

// Highest returns the highest global block the stripe has returned (0
// before the first allocation).
func (s *DynamicStripe) Highest() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.highest
}

// Next implements the counter interface under the current view. It
// blocks while the stripe is frozen for a membership change (the pause
// is the controller round-trip, typically milliseconds) and returns
// ErrNotMember once the group has been drained.
func (s *DynamicStripe) Next() (int64, error) {
	s.mu.Lock()
	for s.frozen {
		s.cond.Wait()
	}
	if s.slot < 0 {
		s.mu.Unlock()
		return 0, ErrNotMember
	}
	view, slot, baseK := s.view, s.slot, s.baseK
	s.inflight++
	s.mu.Unlock()

	// The quorum RPC runs outside the lock; Freeze waits for inflight to
	// drain, so every sequence value obtained under this view is reflected
	// in `highest` before a watermark is computed from it.
	k, err := s.underlying.Next()

	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.cond.Broadcast()
	}
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if k <= baseK {
		s.mu.Unlock()
		return 0, fmt.Errorf("ring: underlying counter went backwards (%d ≤ base %d)", k, baseK)
	}
	global := view.Watermark + (k-baseK-1)*int64(len(view.Groups)) + int64(slot) + 1
	if global > s.highest {
		s.highest = global
	}
	s.mu.Unlock()
	return global, nil
}

// Freeze pauses new allocations, waits for in-flight ones to complete,
// and returns the highest block the stripe's group ever allocated — the
// group's contribution to the next view's watermark — plus whether the
// stripe was already frozen before this call (a controller uses that to
// restore the status quo when its change aborts without touching members
// an earlier, failed change left frozen).
//
// The in-memory highest only covers blocks mapped since boot. When the
// underlying counter is a FrontierReader, Freeze also maps the durable
// sequence frontier through the current view and folds it in, so the
// reported frontier covers blocks issued by previous incarnations too —
// a restarted frontend reporting a frontier below blocks it already
// issued would let the next change compute a watermark that re-maps
// them into duplicates. The durable frontier may exceed the truly
// mapped maximum (sequence values burned as epoch bases, or granted by
// a crashed incarnation, map to blocks never issued); that only pushes
// the watermark up, which burns block ids but never duplicates one.
//
// A frontier-read failure leaves the stripe as it was found (unfrozen,
// unless an earlier freeze is still in effect) and reports the error —
// freezing on a stale frontier is exactly the unsafe case.
func (s *DynamicStripe) Freeze() (int64, bool, error) {
	s.mu.Lock()
	wasFrozen := s.frozen
	s.frozen = true
	for s.inflight > 0 {
		s.cond.Wait()
	}
	view, slot, baseK := s.view, s.slot, s.baseK
	s.mu.Unlock()

	// The quorum read runs outside the lock; no Next can race it (the
	// stripe is frozen and in-flight allocations drained above), so the
	// frontier covers every sequence value this view ever mapped.
	if fr, ok := s.underlying.(FrontierReader); ok && slot >= 0 {
		k, err := fr.Frontier()
		if err != nil {
			if !wasFrozen {
				s.Resume()
			}
			return 0, wasFrozen, fmt.Errorf("ring: read durable frontier: %w", err)
		}
		if k > baseK {
			durable := view.Watermark + (k-baseK-1)*int64(len(view.Groups)) + int64(slot) + 1
			s.mu.Lock()
			if durable > s.highest {
				s.highest = durable
			}
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.highest, wasFrozen, nil
}

// Advance adopts a new view while frozen and returns the base sequence
// value recorded for it (obtained by burning one underlying allocation,
// so the epoch-local sequence restarts at 1 without skipping any global
// block). The stripe stays frozen — the caller persists the (view,
// base) pair and then calls Resume, keeping the persist-before-serve
// ordering. A group absent from the new view is drained: it keeps its
// old base and serves ErrNotMember after Resume.
func (s *DynamicStripe) Advance(v View) (int64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	if !s.frozen {
		s.mu.Unlock()
		return 0, fmt.Errorf("ring: advance requires a frozen stripe")
	}
	if v.Epoch <= s.view.Epoch {
		s.mu.Unlock()
		return 0, fmt.Errorf("ring: view epoch %d does not supersede %d", v.Epoch, s.view.Epoch)
	}
	if v.Watermark < s.highest {
		s.mu.Unlock()
		return 0, fmt.Errorf("ring: view %d watermark %d is below this group's frontier %d",
			v.Epoch, v.Watermark, s.highest)
	}
	slot := v.Slot(s.group)
	s.mu.Unlock()

	baseK := int64(0)
	if slot >= 0 {
		// Burn one underlying allocation as the epoch base. No competing
		// Next can run (frozen), so the base is ≥ every sequence value the
		// old epoch mapped.
		k, err := s.underlying.Next()
		if err != nil {
			return 0, fmt.Errorf("ring: record epoch base: %w", err)
		}
		baseK = k
	}

	s.mu.Lock()
	s.view, s.slot, s.baseK = v, slot, baseK
	s.mu.Unlock()
	return baseK, nil
}

// Resume unfreezes the stripe after an Advance (or aborts a freeze
// without one).
func (s *DynamicStripe) Resume() {
	s.mu.Lock()
	s.frozen = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Transfer is one directed keyspace movement of a rebalance plan: the
// exact fraction of the hash circle whose ownership moves From → To.
type Transfer struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Fraction float64 `json:"fraction"`
}

// Plan quantifies a membership change on the consistent-hash ring: which
// arcs move, where they go, and how balanced the resulting split is. It
// is computed exactly (arc-by-arc over the union of both rings' virtual
// nodes), not sampled.
type Plan struct {
	Before []string `json:"before"`
	After  []string `json:"after"`
	// MovedFraction is the total share of the keyspace whose owner
	// changes. Consistent hashing bounds it near 1/G for a single join or
	// drain among G groups (the property test pins ≤ 1.5/G).
	MovedFraction float64 `json:"movedFraction"`
	// Transfers aggregates the moved arcs per (from, to) pair, sorted for
	// determinism.
	Transfers []Transfer `json:"transfers"`
	// Shares is each surviving group's post-change share of the circle.
	Shares map[string]float64 `json:"shares"`
}

// vpoint is a virtual-node position with an interned group id — the
// plan computation works in ids so the hot loops touch no strings or
// maps.
type vpoint struct {
	hash uint64
	gid  int32
}

// mergeRuns k-way-merges per-group sorted vnode runs into one ascending
// boundary list. k is the group count (single digits), so a linear scan
// over run heads beats a heap.
func mergeRuns(runs [][]vpoint) []vpoint {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]vpoint, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for r := range runs {
			if heads[r] >= len(runs[r]) {
				continue
			}
			if best < 0 || runs[r][heads[r]].hash < runs[best][heads[best]].hash ||
				(runs[r][heads[r]].hash == runs[best][heads[best]].hash &&
					runs[r][heads[r]].gid < runs[best][heads[best]].gid) {
				best = r
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// successorOwners computes, for every boundary in the merged union, the
// owner under the sub-ring containing only groups with member[gid] set:
// the gid of the first member point at or after the boundary, wrapping
// around. O(len(union)) backwards sweep.
func successorOwners(union []vpoint, member []bool) []int32 {
	owners := make([]int32, len(union))
	next := int32(-1)
	for _, p := range union { // wrap successor: first member point overall
		if member[p.gid] {
			next = p.gid
			break
		}
	}
	for i := len(union) - 1; i >= 0; i-- {
		if member[union[i].gid] {
			next = union[i].gid
		}
		owners[i] = next
	}
	return owners
}

// PlanChange computes the exact rebalance plan for a membership change
// from `before` to `after` (each a non-empty set of group names;
// vnodes ≤ 0 selects DefaultVirtualNodes). Both rings are overlaid on
// one merged boundary list: every arc between adjacent boundaries has a
// constant owner in each ring (keys resolve to the first vnode at or
// after them), so summing arc widths where the owners differ gives the
// moved fraction exactly rather than by sampling.
func PlanChange(before, after []string, vnodes int) (*Plan, error) {
	if len(before) == 0 || len(after) == 0 {
		return nil, fmt.Errorf("ring: plan needs non-empty group sets (before %d, after %d)",
			len(before), len(after))
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}

	// Intern before ∪ after; a group present in both contributes its
	// vnode run once (identical positions in both rings — the reason a
	// change only moves arcs adjacent to the added/removed vnodes).
	ids := make(map[string]int32, len(before)+len(after))
	var names []string
	intern := func(g string) int32 {
		if id, ok := ids[g]; ok {
			return id
		}
		id := int32(len(names))
		ids[g] = id
		names = append(names, g)
		return id
	}
	inBefore := make([]bool, 0, len(before)+len(after))
	inAfter := make([]bool, 0, len(before)+len(after))
	mark := func(set []string, dst *[]bool) error {
		for _, g := range set {
			id := intern(g)
			for int32(len(*dst)) <= id {
				*dst = append(*dst, false)
			}
			if (*dst)[id] {
				return fmt.Errorf("ring: group %q listed twice", g)
			}
			(*dst)[id] = true
		}
		return nil
	}
	if err := mark(before, &inBefore); err != nil {
		return nil, err
	}
	if err := mark(after, &inAfter); err != nil {
		return nil, err
	}
	for int32(len(inBefore)) < int32(len(names)) {
		inBefore = append(inBefore, false)
	}
	for int32(len(inAfter)) < int32(len(names)) {
		inAfter = append(inAfter, false)
	}

	runs := make([][]vpoint, len(names))
	for id, name := range names {
		run := make([]vpoint, vnodes)
		for i := range run {
			run[i] = vpoint{hash: vnodeHash(name, i), gid: int32(id)}
		}
		slices.SortFunc(run, func(a, b vpoint) int {
			switch {
			case a.hash < b.hash:
				return -1
			case a.hash > b.hash:
				return 1
			default:
				return 0
			}
		})
		runs[id] = run
	}
	union := mergeRuns(runs)

	ownB := successorOwners(union, inBefore)
	ownA := successorOwners(union, inAfter)

	const circle = float64(1<<63) * 2 // 2^64 as float
	moved := 0.0
	transferByPair := make(map[[2]int32]float64)
	shareByID := make([]float64, len(names))
	for i := range union {
		var width uint64
		if i == 0 {
			// Arc from the last boundary, wrapping through 0, to the first.
			width = union[0].hash - union[len(union)-1].hash // uint64 wraparound
		} else {
			width = union[i].hash - union[i-1].hash
		}
		frac := float64(width) / circle
		shareByID[ownA[i]] += frac
		if ownB[i] != ownA[i] {
			moved += frac
			transferByPair[[2]int32{ownB[i], ownA[i]}] += frac
		}
	}

	plan := &Plan{
		Before:        append([]string(nil), before...),
		After:         append([]string(nil), after...),
		MovedFraction: moved,
		Shares:        make(map[string]float64, len(after)),
	}
	for id, share := range shareByID {
		if inAfter[id] {
			plan.Shares[names[id]] = share
		}
	}
	for pair, frac := range transferByPair {
		plan.Transfers = append(plan.Transfers, Transfer{
			From: names[pair[0]], To: names[pair[1]], Fraction: frac,
		})
	}
	sort.Slice(plan.Transfers, func(i, j int) bool {
		if plan.Transfers[i].From != plan.Transfers[j].From {
			return plan.Transfers[i].From < plan.Transfers[j].From
		}
		return plan.Transfers[i].To < plan.Transfers[j].To
	})
	return plan, nil
}
