// Package ring shards the Token Service's token keyspace across replica
// groups with a consistent-hash ring, so issuance capacity scales
// horizontally: each group runs its own quorum-replicated one-time
// counter, and a request is routed to the group that owns its key
// (typically the sender address). Adding a group moves only ~1/N of the
// keyspace — existing groups keep almost all of their keys, which keeps
// caches warm and counters hot during a resharding.
//
// Global index uniqueness across groups does not come from the ring
// (two groups' counters run independently); it comes from striping:
// group i of N allocates only indexes ≡ i (mod N) via Stripe, so the
// groups partition the index space without ever coordinating.
package ring

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the number of ring positions each group
// occupies when New is called with 0. More virtual nodes smooth the
// keyspace split (the property test pins ±10% balance at this setting).
const DefaultVirtualNodes = 2048

// Ring is a consistent-hash ring mapping keys to group names. It is safe
// for concurrent use; Get is lock-free relative to other Gets (a single
// RWMutex read-lock) and membership changes are copy-free in place.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash
	groups map[string]bool
}

// point is one virtual node: a position on the 64-bit hash circle owned
// by a group.
type point struct {
	hash  uint64
	group string
}

// New creates an empty ring with the given number of virtual nodes per
// group (0 = DefaultVirtualNodes).
func New(virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: virtualNodes, groups: make(map[string]bool)}
}

// mix64 finishes a raw FNV value with the murmur3 fmix64 avalanche.
// Plain FNV-1a of near-identical inputs (vnode names differing only in a
// counter) leaves linear structure in the output that skews arc lengths
// by several hundred percent; the finalizer restores full-width
// dispersion. This is placement, not cryptography — speed over
// preimage resistance.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// FNV-1a parameters, inlined so the hash paths allocate nothing: the
// rebalance-plan computation hashes every virtual node of every group
// (hundreds of millions of calls across a property-test run), and
// hash/fnv's Hash64 interface costs a heap allocation per call.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey positions arbitrary bytes on the circle.
func hashKey(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return mix64(h)
}

// vnodeHash positions one of a group's virtual nodes. Byte-identical to
// FNV-1a over group ++ '#' ++ big-endian-4(i), the original wire form.
func vnodeHash(group string, i int) uint64 {
	h := uint64(fnvOffset64)
	for j := 0; j < len(group); j++ {
		h ^= uint64(group[j])
		h *= fnvPrime64
	}
	for _, b := range [5]byte{'#', byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)} {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return mix64(h)
}

// Add inserts a group's virtual nodes. Adding a present group is a
// no-op.
func (r *Ring) Add(group string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.groups[group] {
		return
	}
	r.groups[group] = true
	fresh := make([]point, r.vnodes)
	for i := range fresh {
		fresh[i] = point{hash: vnodeHash(group, i), group: group}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].hash < fresh[j].hash })
	// Merge instead of re-sorting everything: r.points is already sorted,
	// so adding a group costs O(V log V + total) rather than
	// O(total log total) — membership changes stay cheap on big rings.
	merged := make([]point, 0, len(r.points)+len(fresh))
	i, j := 0, 0
	for i < len(r.points) && j < len(fresh) {
		if r.points[i].hash <= fresh[j].hash {
			merged = append(merged, r.points[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, r.points[i:]...)
	merged = append(merged, fresh[j:]...)
	r.points = merged
}

// Remove deletes a group and all its virtual nodes. Removing an absent
// group is a no-op.
func (r *Ring) Remove(group string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.groups[group] {
		return
	}
	delete(r.groups, group)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.group != group {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Groups returns the current members in sorted order.
func (r *Ring) Groups() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.groups))
	for g := range r.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of member groups.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.groups)
}

// Get returns the group owning key: the first virtual node at or after
// the key's position, wrapping around the circle. It errors on an empty
// ring.
func (r *Ring) Get(key []byte) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", fmt.Errorf("ring: no groups")
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group, nil
}

// GetString is Get for string keys (e.g. hex sender addresses).
func (r *Ring) GetString(key string) (string, error) { return r.Get([]byte(key)) }

// Counter is the minimal allocator interface Stripe wraps — identical to
// ts.Counter, restated here so the package has no dependency cycle with
// ts.
type Counter interface {
	Next() (int64, error)
}

// Stripe partitions the global index space across groups without
// coordination: the wrapped counter's k-th allocation maps to index
// (k-1)*Count + Index + 1, so group i of N only ever produces indexes
// ≡ i+1 (mod N). Two distinct groups can never collide, which restores
// the global one-time uniqueness the paper's § IV-C demands even though
// each group's quorum runs independently.
//
// Like ShardedCounter, striped indexes are not globally dense: sizing a
// one-time bitmap for striped traffic must multiply the per-group spread
// by Count (see MaxSpread scaling in the bench harness).
type Stripe struct {
	// Underlying allocates the group-local sequence 1, 2, 3, …
	Underlying Counter
	// Index is this group's stripe (0 ≤ Index < Count).
	Index int
	// Count is the total number of groups.
	Count int
}

// NewStripe validates and builds a stripe over underlying.
func NewStripe(underlying Counter, index, count int) (*Stripe, error) {
	if count < 1 {
		return nil, fmt.Errorf("ring: stripe count must be positive, got %d", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("ring: stripe index %d out of range [0,%d)", index, count)
	}
	if underlying == nil {
		return nil, fmt.Errorf("ring: stripe needs an underlying counter")
	}
	return &Stripe{Underlying: underlying, Index: index, Count: count}, nil
}

// Next implements the counter interface with the striped mapping.
func (s *Stripe) Next() (int64, error) {
	k, err := s.Underlying.Next()
	if err != nil {
		return 0, err
	}
	return (k-1)*int64(s.Count) + int64(s.Index) + 1, nil
}
