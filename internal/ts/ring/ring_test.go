package ring

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// arcShares measures each group's exact share of the 2^64 hash circle
// (no key sampling noise): the arc ending at a virtual node belongs to
// that node's group.
func arcShares(r *Ring) map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	shares := make(map[string]float64, len(r.groups))
	var total float64
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			arc = p.hash + (^uint64(0) - r.points[len(r.points)-1].hash) + 1
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		shares[p.group] += float64(arc)
		total += float64(arc)
	}
	for g := range shares {
		shares[g] /= total
	}
	return shares
}

// TestRingProperties is the seeded 1000-iteration property check: for
// random group counts, (a) the keyspace split is balanced within 10% of
// the ideal share, and (b) adding or removing one group moves only ~1/N
// of the keyspace — and strictly only the keys that must move (adding a
// group steals keys exclusively for the new group; removing one
// reassigns exclusively the removed group's keys).
func TestRingProperties(t *testing.T) {
	const (
		seed      = 20260807
		balance   = 0.10 // max relative deviation from the ideal share
		keysPerIt = 2048
	)
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		n := 2 + rng.Intn(7) // 2..8 groups
		r := New(0)
		groups := make([]string, n)
		for g := range groups {
			groups[g] = fmt.Sprintf("iter%d-g%d", it, g)
			r.Add(groups[g])
		}

		// (a) Balance: every group's exact arc share within ±10% of 1/n.
		shares := arcShares(r)
		if len(shares) != n {
			t.Fatalf("iter %d: %d groups on ring, want %d", it, len(shares), n)
		}
		ideal := 1.0 / float64(n)
		for g, share := range shares {
			if dev := (share - ideal) / ideal; dev > balance || dev < -balance {
				t.Fatalf("iter %d: group %s owns %.4f of the keyspace, ideal %.4f (dev %+.1f%%)",
					it, g, share, ideal, 100*dev)
			}
		}

		// (b) Movement on add: sample keys, add one group, diff.
		keys := make([][]byte, keysPerIt)
		before := make([]string, keysPerIt)
		for i := range keys {
			keys[i] = make([]byte, 20)
			rng.Read(keys[i])
			g, err := r.Get(keys[i])
			if err != nil {
				t.Fatal(err)
			}
			before[i] = g
		}
		added := fmt.Sprintf("iter%d-added", it)
		r.Add(added)
		moved := 0
		for i, key := range keys {
			g, err := r.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if g == before[i] {
				continue
			}
			if g != added {
				t.Fatalf("iter %d: adding %s reshuffled key between old groups (%s → %s)",
					it, added, before[i], g)
			}
			moved++
		}
		idealMoved := float64(keysPerIt) / float64(n+1)
		if f := float64(moved); f < 0.5*idealMoved || f > 1.6*idealMoved {
			t.Fatalf("iter %d: adding 1 group to %d moved %d/%d keys, want ≈%.0f (1/N of the keyspace)",
				it, n, moved, keysPerIt, idealMoved)
		}

		// (b') Movement on remove: drop the added group again; exactly the
		// keys it owned move back, everything else stays put.
		r.Remove(added)
		for i, key := range keys {
			g, err := r.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if g != before[i] {
				t.Fatalf("iter %d: removing %s did not restore key to %s (got %s)",
					it, added, before[i], g)
			}
		}
	}
}

func TestRingBasics(t *testing.T) {
	r := New(0)
	if _, err := r.Get([]byte("anything")); err == nil {
		t.Fatal("empty ring served a key")
	}
	r.Add("a")
	r.Add("a") // idempotent
	if got := r.Groups(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("groups = %v, want [a]", got)
	}
	g, err := r.GetString("key")
	if err != nil || g != "a" {
		t.Fatalf("single-group ring routed to %q (%v), want a", g, err)
	}
	r.Add("b")
	if r.Size() != 2 {
		t.Fatalf("size = %d, want 2", r.Size())
	}
	r.Remove("missing") // no-op
	r.Remove("a")
	g, err = r.GetString("key")
	if err != nil || g != "b" {
		t.Fatalf("after removal routed to %q (%v), want b", g, err)
	}
}

// Routing must be stable under concurrent lookups and membership churn
// (the -race leg of the suite).
func TestRingConcurrentChurn(t *testing.T) {
	r := New(64)
	r.Add("stable")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Add(fmt.Sprintf("churn%d", i%8))
			r.Remove(fmt.Sprintf("churn%d", (i+4)%8))
		}
	}()
	for i := 0; i < 2000; i++ {
		if _, err := r.Get([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// Striping must partition the index space: group i of N only produces
// indexes ≡ i+1 (mod N), collision-free across groups, each group's
// sequence strictly increasing.
func TestStripePartitionsIndexSpace(t *testing.T) {
	const groups, perGroup = 4, 1000
	seen := make(map[int64]int, groups*perGroup)
	for g := 0; g < groups; g++ {
		st, err := NewStripe(&localCounter{}, g, groups)
		if err != nil {
			t.Fatal(err)
		}
		last := int64(0)
		for i := 0; i < perGroup; i++ {
			idx, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if idx <= last {
				t.Fatalf("group %d: index %d not increasing after %d", g, idx, last)
			}
			last = idx
			if (idx-1)%groups != int64(g) {
				t.Fatalf("group %d produced index %d outside its stripe", g, idx)
			}
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both group %d and group %d", idx, prev, g)
			}
			seen[idx] = g
		}
	}
}

func TestStripeValidation(t *testing.T) {
	if _, err := NewStripe(&localCounter{}, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := NewStripe(&localCounter{}, 3, 3); err == nil {
		t.Error("index ≥ count accepted")
	}
	if _, err := NewStripe(nil, 0, 1); err == nil {
		t.Error("nil underlying accepted")
	}
}

// localCounter is a minimal in-memory allocator for stripe tests.
type localCounter struct{ n int64 }

func (c *localCounter) Next() (int64, error) {
	c.n++
	return c.n, nil
}

func BenchmarkRingGet(b *testing.B) {
	r := New(0)
	for g := 0; g < 4; g++ {
		r.Add(fmt.Sprintf("group%d", g))
	}
	key := make([]byte, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1] = byte(i), byte(i>>8)
		if _, err := r.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// Keep the arc-share measurement honest: shares must sum to 1.
func TestArcSharesSumToOne(t *testing.T) {
	r := New(0)
	for g := 0; g < 5; g++ {
		r.Add(fmt.Sprintf("g%d", g))
	}
	sum := 0.0
	for _, s := range arcShares(r) {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("arc shares sum to %f, want 1", sum)
	}
}

// sortedness is an invariant Get's binary search depends on.
func TestRingPointsStaySorted(t *testing.T) {
	r := New(32)
	for g := 0; g < 6; g++ {
		r.Add(fmt.Sprintf("g%d", g))
		r.mu.RLock()
		sorted := sort.SliceIsSorted(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
		r.mu.RUnlock()
		if !sorted {
			t.Fatalf("points unsorted after adding g%d", g)
		}
	}
}
