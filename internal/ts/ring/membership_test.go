package ring

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// seqCounter is a plain in-process counter standing in for a quorum
// coordinator in DynamicStripe tests.
type seqCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *seqCounter) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n, nil
}

func TestViewValidate(t *testing.T) {
	good := View{Epoch: 1, Groups: []string{"a", "b"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	bad := []View{
		{Epoch: 0, Groups: []string{"a"}},
		{Epoch: 1, Groups: nil},
		{Epoch: 1, Groups: []string{"a", "a"}},
		{Epoch: 1, Groups: []string{""}},
		{Epoch: 1, Groups: []string{"a"}, Watermark: -1},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad view %d accepted: %+v", i, v)
		}
	}
	if got := good.Slot("b"); got != 1 {
		t.Fatalf("Slot(b) = %d, want 1", got)
	}
	if got := good.Slot("zz"); got != -1 {
		t.Fatalf("Slot(zz) = %d, want -1", got)
	}
}

// TestDynamicStripeUniquenessAcrossViews drives three groups through a
// join and a drain while allocating concurrently, and asserts every
// global block id is issued exactly once — the core safety property of
// the epoch/watermark scheme.
func TestDynamicStripeUniquenessAcrossViews(t *testing.T) {
	// One shared "global" view transition sequence, separate underlying
	// counters per group (as in production: one quorum per group).
	v1 := View{Epoch: 1, Groups: []string{"a", "b"}}
	counters := map[string]*seqCounter{"a": {}, "b": {}, "c": {}}
	stripes := map[string]*DynamicStripe{}
	for _, g := range []string{"a", "b"} {
		s, err := NewDynamicStripe(counters[g], g, v1, 0)
		if err != nil {
			t.Fatal(err)
		}
		stripes[g] = s
	}

	seen := make(map[int64]string)
	take := func(g string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			got, err := stripes[g].Next()
			if err != nil {
				t.Fatalf("group %s Next: %v", g, err)
			}
			if prev, dup := seen[got]; dup {
				t.Fatalf("block %d issued to both %s and %s", got, prev, g)
			}
			seen[got] = g
		}
	}

	take("a", 7)
	take("b", 3)

	// c joins: freeze members, compute watermark, advance everyone.
	w := v1.Watermark
	for _, g := range []string{"a", "b"} {
		h, _, err := stripes[g].Freeze()
		if err != nil {
			t.Fatalf("freeze %s: %v", g, err)
		}
		if h > w {
			w = h
		}
	}
	v2 := View{Epoch: 2, Groups: []string{"a", "b", "c"}, Watermark: w}
	sc, err := NewDynamicStripe(counters["c"], "c", v1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Freeze(); err != nil {
		t.Fatal(err)
	}
	stripes["c"] = sc
	for _, g := range []string{"a", "b", "c"} {
		if _, err := stripes[g].Advance(v2); err != nil {
			t.Fatalf("advance %s: %v", g, err)
		}
		stripes[g].Resume()
	}
	// c was built against v1 where it holds no slot; before its first
	// epoch it must refuse to serve.
	if sc.slot < 0 {
		t.Fatalf("c did not gain a slot in v2")
	}

	take("a", 5)
	take("b", 9)
	take("c", 6)

	// b drains.
	w = v2.Watermark
	for _, g := range []string{"a", "b", "c"} {
		h, _, err := stripes[g].Freeze()
		if err != nil {
			t.Fatalf("freeze %s: %v", g, err)
		}
		if h > w {
			w = h
		}
	}
	v3 := View{Epoch: 3, Groups: []string{"a", "c"}, Watermark: w}
	for _, g := range []string{"a", "b", "c"} {
		if _, err := stripes[g].Advance(v3); err != nil {
			t.Fatalf("advance %s: %v", g, err)
		}
		stripes[g].Resume()
	}

	take("a", 4)
	take("c", 4)
	if _, err := stripes["b"].Next(); !errors.Is(err, ErrNotMember) {
		t.Fatalf("drained group Next = %v, want ErrNotMember", err)
	}

	// Epoch regions must not overlap: every post-join block is above the
	// v2 watermark, which is above every v1 block.
	if len(seen) != 7+3+5+9+6+4+4 {
		t.Fatalf("issued %d unique blocks, want %d", len(seen), 38)
	}
}

// TestDynamicStripeRestartFromPersistedBase simulates a durable frontend
// restart: a second stripe built from the persisted (view, baseK) pair
// over the same underlying counter must not re-issue old blocks.
func TestDynamicStripeRestartFromPersistedBase(t *testing.T) {
	under := &seqCounter{}
	v := View{Epoch: 2, Groups: []string{"a", "b"}, Watermark: 100}
	s1, err := NewDynamicStripe(under, "a", View{Epoch: 1, Groups: []string{"a"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Freeze(); err != nil {
		t.Fatal(err)
	}
	base, err := s1.Advance(v)
	if err != nil {
		t.Fatal(err)
	}
	s1.Resume()
	first := make(map[int64]bool)
	for i := 0; i < 10; i++ {
		got, err := s1.Next()
		if err != nil {
			t.Fatal(err)
		}
		first[got] = true
	}

	// "Restart": new stripe, same counter, persisted view + base.
	s2, err := NewDynamicStripe(under, "a", v, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := s2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if first[got] {
			t.Fatalf("restarted stripe re-issued block %d", got)
		}
		if got <= v.Watermark {
			t.Fatalf("block %d at or below watermark %d", got, v.Watermark)
		}
	}
}

// frontierCounter is a seqCounter that also exposes its durable
// frontier, as both quorum coordinator flavors do.
type frontierCounter struct{ seqCounter }

func (c *frontierCounter) Frontier() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

// TestDynamicStripeFreezeSurvivesRestart pins the restart hole the
// durable-frontier derivation closes: a stripe rebuilt from persisted
// (view, baseK) state has an empty in-memory frontier, but Freeze must
// still report a value covering every block the previous incarnation
// issued — otherwise the next membership change computes a watermark
// below issued blocks and re-maps them.
func TestDynamicStripeFreezeSurvivesRestart(t *testing.T) {
	under := &frontierCounter{}
	v := View{Epoch: 1, Groups: []string{"a", "b"}}
	s1, err := NewDynamicStripe(under, "a", v, 0)
	if err != nil {
		t.Fatal(err)
	}
	var issued int64
	for i := 0; i < 9; i++ {
		got, err := s1.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got > issued {
			issued = got
		}
	}
	h1, _, err := s1.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != issued {
		t.Fatalf("pre-restart frontier %d, want %d", h1, issued)
	}
	s1.Resume()

	// "Restart": same underlying counter, persisted view + base (0 —
	// the boot view was never re-adopted), no in-memory history.
	s2, err := NewDynamicStripe(under, "a", v, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, wasFrozen, err := s2.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if wasFrozen {
		t.Fatal("fresh stripe reported wasFrozen")
	}
	if h2 < issued {
		t.Fatalf("post-restart frontier %d below issued block %d", h2, issued)
	}

	// A second freeze reports the prior one.
	if _, again, err := s2.Freeze(); err != nil || !again {
		t.Fatalf("re-freeze = (wasFrozen %v, err %v), want (true, nil)", again, err)
	}
}

// TestDynamicStripeFreezeDrainsInflight pins the race the freeze
// protocol exists for: an allocation already past the frozen check must
// be reflected in the frontier Freeze returns.
func TestDynamicStripeFreezeDrainsInflight(t *testing.T) {
	release := make(chan struct{})
	slow := counterFunc(func() (int64, error) {
		<-release
		return 1, nil
	})
	s, err := NewDynamicStripe(slow, "a", View{Epoch: 1, Groups: []string{"a"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		n, err := s.Next()
		if err != nil {
			t.Error(err)
		}
		got <- n
	}()
	// Wait for the goroutine to be in flight, then freeze concurrently.
	for {
		s.mu.Lock()
		in := s.inflight
		s.mu.Unlock()
		if in == 1 {
			break
		}
	}
	frontier := make(chan int64, 1)
	go func() {
		h, _, err := s.Freeze()
		if err != nil {
			t.Error(err)
		}
		frontier <- h
	}()
	close(release)
	n := <-got
	if f := <-frontier; f < n {
		t.Fatalf("Freeze returned frontier %d below in-flight block %d", f, n)
	}
}

type counterFunc func() (int64, error)

func (f counterFunc) Next() (int64, error) { return f() }

// TestPlanChangeProperties is the seeded 1000-iteration property test:
// single join and drain plans must be minimal (moved fraction ≤ 1.5/G),
// strictly directed (a join only moves keys to the joiner, a drain only
// moves keys off the drained group — never between survivors), exactly
// accounted (transfers sum to the moved fraction, shares sum to 1), and
// the resulting split balanced within 5% relative spread.
func TestPlanChangeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed9))
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	// Placement noise scales ~1/√V; at the routing default of 2048 vnodes
	// a group's share wobbles ±2% (1σ), so a 1000-iteration max would
	// brush past the 5% bound. Convergence is asserted at 16384 vnodes,
	// where the worst observed deviation sits near 3%.
	const vnodes = 16384
	worstMove, worstSpread := 0.0, 0.0
	for it := 0; it < iters; it++ {
		g := 1 + rng.Intn(8)
		groups := make([]string, g)
		for i := range groups {
			groups[i] = fmt.Sprintf("grp-%d-%x", i, rng.Uint32())
		}
		join := rng.Intn(2) == 0
		var before, after []string
		var mover string // joining or draining group
		if join || g == 1 {
			before = groups
			mover = fmt.Sprintf("join-%x", rng.Uint32())
			after = append(append([]string{}, groups...), mover)
		} else {
			before = groups
			mover = groups[rng.Intn(g)]
			for _, x := range groups {
				if x != mover {
					after = append(after, x)
				}
			}
		}

		plan, err := PlanChange(before, after, vnodes)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}

		n := len(before)
		if len(after) > n {
			n = len(after)
		}
		bound := 1.5 / float64(n)
		if rel := plan.MovedFraction * float64(n); rel > worstMove {
			worstMove = rel
		}
		if plan.MovedFraction > bound {
			t.Fatalf("iter %d: moved %.4f of keyspace, bound %.4f (groups %d)",
				it, plan.MovedFraction, bound, n)
		}

		// Directedness: all transfers touch the mover and never link two
		// survivors.
		sum := 0.0
		for _, tr := range plan.Transfers {
			sum += tr.Fraction
			joining := len(after) > len(before)
			if joining && tr.To != mover {
				t.Fatalf("iter %d: join moved %s→%s, expected all→%s", it, tr.From, tr.To, mover)
			}
			if !joining && tr.From != mover {
				t.Fatalf("iter %d: drain moved %s→%s, expected all from %s", it, tr.From, tr.To, mover)
			}
			if tr.From == tr.To {
				t.Fatalf("iter %d: self-transfer %s", it, tr.From)
			}
		}
		if math.Abs(sum-plan.MovedFraction) > 1e-9 {
			t.Fatalf("iter %d: transfers sum %.9f ≠ moved %.9f", it, sum, plan.MovedFraction)
		}

		// Exact accounting and balance of the resulting split.
		total := 0.0
		ideal := 1.0 / float64(len(after))
		for _, grp := range after {
			share := plan.Shares[grp]
			total += share
			if dev := math.Abs(share-ideal) / ideal; dev > worstSpread {
				worstSpread = dev
			}
			if dev := math.Abs(share-ideal) / ideal; dev > 0.05 {
				t.Fatalf("iter %d: group %s share %.5f deviates %.1f%% from ideal %.5f",
					it, grp, share, dev*100, ideal)
			}
		}
		if math.Abs(total-1.0) > 1e-9 {
			t.Fatalf("iter %d: shares sum to %.9f", it, total)
		}
	}
	t.Logf("worst relative movement %.3f×(1/G), worst balance deviation %.2f%%",
		worstMove, worstSpread*100)
}

// TestPlanChangeMatchesRingOwnership cross-checks the analytic plan
// against brute-force key routing on real Rings: for a sample of keys,
// the owner changes exactly when the plan says that arc moved, and
// post-change owners match the after-ring.
func TestPlanChangeMatchesRingOwnership(t *testing.T) {
	before := []string{"alpha", "beta", "gamma"}
	after := []string{"alpha", "beta", "gamma", "delta"}
	plan, err := PlanChange(before, after, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, ra := New(0), New(0)
	for _, g := range before {
		rb.Add(g)
	}
	for _, g := range after {
		ra.Add(g)
	}
	rng := rand.New(rand.NewSource(42))
	moved := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		key := fmt.Sprintf("key-%d", rng.Int63())
		ob, err := rb.GetString(key)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := ra.GetString(key)
		if err != nil {
			t.Fatal(err)
		}
		if ob != oa {
			moved++
			if oa != "delta" {
				t.Fatalf("key %q moved %s→%s, join plan says all movement goes to delta", key, ob, oa)
			}
		}
	}
	got := float64(moved) / samples
	if math.Abs(got-plan.MovedFraction) > 0.02 {
		t.Fatalf("sampled moved fraction %.4f vs plan %.4f", got, plan.MovedFraction)
	}
}
