// Package membership makes the sharded Token Service's replica-group
// set operable at runtime: an epoch-numbered membership view (persisted
// as internal/store WAL records) plus a freeze → advance → resume
// protocol that lets groups join and drain under load without ever
// issuing a duplicate one-time index.
//
// The moving parts, bottom to top:
//
//   - ring.DynamicStripe maps each group's quorum-local allocation
//     sequence onto the global block space under the current view, and
//     pauses allocation while a view change is in flight.
//   - Every frontend runs a Manager wrapping its own stripe and
//     ShardedCounter. The Manager serves the member endpoints
//     (POST /v1/membership/{freeze,advance,resume,release,adopt}) that a
//     view change drives, and the admin endpoints
//     (POST /v1/admin/{join,drain}) that initiate one.
//   - Any frontend can act as the change controller: it freezes every
//     member, computes the new watermark (the highest block any member
//     allocated), advances everyone to the epoch+1 view — each member
//     persists the view durably BEFORE acking — hands the drained
//     group's unexhausted leases to a successor, and resumes.
//
// Safety: within an epoch, groups allocate disjoint block residues;
// across epochs, the watermark separates regions; released leases are
// re-issued by exactly one adopter. A joining group serves only after
// catch-up fencing — recording its epoch base runs one full quorum
// round, which establishes a fenced epoch above any prior coordinator
// and reads the majority frontier before the first block maps.
//
// Liveness through failures fails toward unavailability, never toward
// duplication. If a change dies before any member advanced, the
// controller resumes exactly the members it froze — status quo
// restored. If it dies mid-advance, members already on the new epoch
// resume and serve, while the rest STAY FROZEN: resuming them would let
// two epochs allocate concurrently with different strides, whose block
// regions can collide. The operator re-runs the change once the fault
// clears — a retry allocates a fresh epoch above every member's current
// one, so already-advanced members never see a stale epoch — or, when
// the member set is already the intended one, POSTs /v1/admin/repair on
// an advanced frontend to re-advance everyone onto a fresh epoch.
// Controllers whose view a member has outrun abort before computing a
// watermark (the member's allocations would not be covered) and name
// the frontend to drive the change from. A frontend crash outside a
// view change is handled by epoch-fenced takeover instead
// (Coordinator.Fence), which needs no membership round at all.
package membership

import (
	"encoding/json"
	"fmt"

	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// FreezeInfo is what a member reports from Freeze: the input a
// controller needs to compute a safe watermark and to unwind safely when
// the change aborts.
type FreezeInfo struct {
	// Highest is the highest global block the member's group ever
	// allocated, across restarts (derived from the durable quorum
	// frontier, possibly over-approximated — safe, see
	// ring.DynamicStripe.Freeze).
	Highest int64 `json:"highest"`
	// Epoch is the member's currently adopted view epoch. The controller
	// allocates the next epoch above every member's, and aborts when a
	// member is ahead of its own view (a stale controller must not pick
	// the watermark).
	Epoch int64 `json:"epoch"`
	// WasFrozen reports whether the member was already frozen before
	// this call — i.e. by an earlier change attempt that failed
	// mid-advance. A controller aborting before any advance resumes only
	// members with WasFrozen=false, leaving the earlier failure's
	// fail-frozen state intact.
	WasFrozen bool `json:"wasFrozen"`
}

// Member is one replica group's handle in a view change, implemented
// in-process by the controller's own Manager and over HTTP for every
// other frontend.
type Member interface {
	// Group returns the member's group name.
	Group() string
	// Freeze pauses the member's allocations and reports its all-time
	// block frontier, current epoch, and prior frozen state. Idempotent.
	Freeze() (FreezeInfo, error)
	// Advance adopts the new view (and the accompanying frontend URL
	// map), persisting both durably before returning. The member stays
	// frozen until Resume.
	Advance(v ring.View, urls map[string]string) error
	// Resume unfreezes allocation under the current view.
	Resume() error
	// ReleaseLeases drains the member's unexhausted block-lease
	// remainders and returns them — called on a draining group after it
	// left the view.
	ReleaseLeases() ([]ts.IndexRange, error)
	// AdoptLeases feeds released remainders into the member's free-list,
	// to be issued before fresh blocks.
	AdoptLeases([]ts.IndexRange) error
}

// State is the durable membership state a frontend persists on every
// adopted view and replays at startup.
type State struct {
	// View is the adopted membership view.
	View ring.View `json:"view"`
	// BaseK is the quorum sequence value recorded when this frontend
	// adopted the view; reusing it across a restart keeps the restarted
	// stripe from re-mapping old sequence numbers onto issued blocks.
	BaseK int64 `json:"baseK"`
	// URLs maps every group in the view to its frontend base URL.
	URLs map[string]string `json:"urls,omitempty"`
}

// persistState appends the state as a KindView WAL record.
func persistState(journal store.Backend, st State) error {
	if journal == nil {
		return nil
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("membership: encode view %d: %w", st.View.Epoch, err)
	}
	if err := journal.Append(store.Record{Kind: store.KindView, Value: st.View.Epoch, Data: blob}); err != nil {
		return fmt.Errorf("membership: persist view %d: %w", st.View.Epoch, err)
	}
	return nil
}

// LoadState replays the journal and returns the highest-epoch persisted
// membership state, or ok=false when none was ever recorded. Backends
// whose Replay is single-shot (store.File) and shared with another
// reader must replay once and use StateFromRecords instead.
func LoadState(journal store.Backend) (State, bool, error) {
	if journal == nil {
		return State{}, false, nil
	}
	_, recs, err := journal.Replay()
	if err != nil {
		return State{}, false, fmt.Errorf("membership: replay views: %w", err)
	}
	return StateFromRecords(recs)
}

// StateFromRecords extracts the highest-epoch persisted membership state
// from an already-replayed record stream, skipping every non-view kind
// (the journal may interleave lease-reclaim records).
func StateFromRecords(recs []store.Record) (st State, ok bool, err error) {
	for _, rec := range recs {
		if rec.Kind != store.KindView {
			continue
		}
		var cand State
		if err := json.Unmarshal(rec.Data, &cand); err != nil {
			return State{}, false, fmt.Errorf("membership: corrupt view record (epoch %d): %w", rec.Value, err)
		}
		if !ok || cand.View.Epoch > st.View.Epoch {
			st, ok = cand, true
		}
	}
	return st, ok, nil
}
