package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// Config wires a Manager to its frontend's counter stack.
type Config struct {
	// Group is this frontend's replica-group name.
	Group string
	// Stripe is the frontend's epoch-aware block mapper (over the
	// group's quorum coordinator).
	Stripe *ring.DynamicStripe
	// Counter is the frontend's sharded counter (over Stripe), the
	// holder of the block leases a drain releases.
	Counter *ts.ShardedCounter
	// Journal persists adopted views as KindView WAL records (nil =
	// volatile membership, for tests and benches).
	Journal store.Backend
	// Registry receives the ts_membership_epoch gauge (nil = default).
	Registry *metrics.Registry
	// OwnerToken, when set, is sent as a Bearer token on member calls to
	// other frontends (whose /v1/membership routes sit behind the same
	// owner guard as this one's).
	OwnerToken string
	// Client overrides the HTTP client used for member calls.
	Client *http.Client
}

// Manager is one frontend's membership agent: it serves the member
// endpoints a view change drives, tracks the adopted view and the
// frontend URL map, and can act as the controller for join/drain
// operations. One Manager per frontend.
type Manager struct {
	cfg   Config
	gauge *metrics.Gauge

	// opMu serializes controller operations started on this frontend;
	// concurrent controllers on different frontends are resolved by
	// epoch conflict (one advance fails, the operator retries).
	opMu sync.Mutex

	mu    sync.Mutex
	view  ring.View
	urls  map[string]string
	baseK int64
}

// NewManager builds the frontend's membership agent from its boot state
// (either the -initial-groups flag or a persisted State replayed via
// LoadState). urls must map every group in v — plus this frontend's own
// group, even when it is still joining and not yet a member.
func NewManager(cfg Config, v ring.View, urls map[string]string, baseK int64) (*Manager, error) {
	if cfg.Group == "" {
		return nil, fmt.Errorf("membership: config needs a group name")
	}
	if cfg.Stripe == nil || cfg.Counter == nil {
		return nil, fmt.Errorf("membership: config needs the stripe and sharded counter")
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	for _, g := range v.Groups {
		if urls[g] == "" {
			return nil, fmt.Errorf("membership: no frontend URL for group %q", g)
		}
	}
	m := &Manager{
		cfg:   cfg,
		gauge: metrics.Or(cfg.Registry).Gauge(ts.MetricMembershipEpoch, "Replica-group membership view epoch in effect (0 = static membership)."),
		view:  v,
		urls:  copyURLs(urls),
		baseK: baseK,
	}
	m.gauge.Set(v.Epoch)
	return m, nil
}

func copyURLs(urls map[string]string) map[string]string {
	out := make(map[string]string, len(urls))
	for g, u := range urls {
		out[g] = u
	}
	return out
}

// View returns the currently adopted view.
func (m *Manager) View() ring.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// State returns the full durable state (view, adopted base, URL map).
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return State{View: m.view, BaseK: m.baseK, URLs: copyURLs(m.urls)}
}

// local is the in-process Member for this frontend's own group.
type local struct{ m *Manager }

func (l local) Group() string { return l.m.cfg.Group }

func (l local) Freeze() (int64, error) { return l.m.cfg.Stripe.Freeze(), nil }

func (l local) Advance(v ring.View, urls map[string]string) error {
	m := l.m
	m.mu.Lock()
	cur := m.view
	m.mu.Unlock()
	var baseK int64
	if v.Epoch == cur.Epoch && sameView(v, cur) {
		// Idempotent re-advance: a retried change finds this member
		// already on the target view; persist-before-ack already
		// happened, so just ack.
		m.mu.Lock()
		baseK = m.baseK
		m.mu.Unlock()
	} else {
		var err error
		baseK, err = m.cfg.Stripe.Advance(v)
		if err != nil {
			return err
		}
	}
	st := State{View: v, BaseK: baseK, URLs: urls}
	if err := persistState(m.cfg.Journal, st); err != nil {
		return err
	}
	m.mu.Lock()
	m.view, m.baseK, m.urls = v, baseK, copyURLs(urls)
	m.mu.Unlock()
	m.gauge.Set(v.Epoch)
	return nil
}

func sameView(a, b ring.View) bool {
	if a.Epoch != b.Epoch || a.Watermark != b.Watermark || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

func (l local) Resume() error {
	l.m.cfg.Stripe.Resume()
	return nil
}

func (l local) ReleaseLeases() ([]ts.IndexRange, error) {
	return l.m.cfg.Counter.Release(), nil
}

func (l local) AdoptLeases(ranges []ts.IndexRange) error {
	return l.m.cfg.Counter.Adopt(ranges)
}

// memberFor resolves a group to its Member handle: in-process for this
// frontend's own group, HTTP for everyone else.
func (m *Manager) memberFor(group, url string) Member {
	if group == m.cfg.Group {
		return local{m}
	}
	return &Remote{GroupName: group, Base: url, OwnerToken: m.cfg.OwnerToken, Client: m.cfg.Client}
}

// ChangeResult is what an admin join/drain returns: the adopted view and
// the keyspace rebalance plan the change implies.
type ChangeResult struct {
	View ring.View  `json:"view"`
	Plan *ring.Plan `json:"plan"`
	// LeasesMoved counts one-time indexes handed from the drained group
	// to its successor (0 for joins).
	LeasesMoved int64 `json:"leasesMoved"`
	// Successor is the group that adopted the drained leases, chosen as
	// the plan's largest transfer target ("" for joins).
	Successor string `json:"successor,omitempty"`
}

// Join runs the controller side of adding a replica group: freeze every
// member plus the joiner, advance all of them to the epoch+1 view whose
// watermark caps every block allocated so far, and resume. The joiner
// serves only after its advance — recording its epoch base runs a full
// quorum round (catch-up fencing), so it can never map a block at or
// below one an earlier coordinator handed out.
func (m *Manager) Join(group, url string) (*ChangeResult, error) {
	if group == "" || url == "" {
		return nil, fmt.Errorf("membership: join needs a group name and a frontend URL")
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()

	m.mu.Lock()
	cur := m.view
	urls := copyURLs(m.urls)
	m.mu.Unlock()
	if cur.Slot(group) >= 0 {
		return nil, fmt.Errorf("membership: group %q is already a member of view %d", group, cur.Epoch)
	}

	members := make([]Member, 0, len(cur.Groups)+1)
	for _, g := range cur.Groups {
		members = append(members, m.memberFor(g, urls[g]))
	}
	members = append(members, m.memberFor(group, url))

	next := ring.View{
		Epoch:  cur.Epoch + 1,
		Groups: append(append([]string(nil), cur.Groups...), group),
	}
	nextURLs := copyURLs(urls)
	nextURLs[group] = url
	plan, err := ring.PlanChange(cur.Groups, next.Groups, 0)
	if err != nil {
		return nil, err
	}
	if err := m.runChange(members, cur, &next, nextURLs); err != nil {
		return nil, err
	}
	return &ChangeResult{View: next, Plan: plan}, nil
}

// Drain runs the controller side of removing a replica group: after the
// epoch+1 view without it is adopted everywhere, the drained group's
// unexhausted block leases are handed to the successor owning the
// largest share of its keyspace, so a clean drain burns nothing.
func (m *Manager) Drain(group string) (*ChangeResult, error) {
	m.opMu.Lock()
	defer m.opMu.Unlock()

	m.mu.Lock()
	cur := m.view
	urls := copyURLs(m.urls)
	m.mu.Unlock()
	if cur.Slot(group) < 0 {
		return nil, fmt.Errorf("membership: group %q is not a member of view %d", group, cur.Epoch)
	}
	if len(cur.Groups) == 1 {
		return nil, fmt.Errorf("membership: refusing to drain the last group %q", group)
	}

	var drained Member
	members := make([]Member, 0, len(cur.Groups))
	next := ring.View{Epoch: cur.Epoch + 1}
	for _, g := range cur.Groups {
		mem := m.memberFor(g, urls[g])
		members = append(members, mem)
		if g == group {
			drained = mem
			continue
		}
		next.Groups = append(next.Groups, g)
	}
	nextURLs := copyURLs(urls)
	delete(nextURLs, group)
	plan, err := ring.PlanChange(cur.Groups, next.Groups, 0)
	if err != nil {
		return nil, err
	}
	if err := m.runChange(members, cur, &next, nextURLs); err != nil {
		return nil, err
	}

	// Lease handoff: the drained group is out of the view (its stripe
	// refuses refills), so its remainders are stable — move them to the
	// successor inheriting most of its keyspace.
	successor := successorOf(plan, group, next.Groups)
	res := &ChangeResult{View: next, Plan: plan, Successor: successor}
	ranges, err := drained.ReleaseLeases()
	if err != nil {
		return res, fmt.Errorf("membership: release drained leases of %q: %w", group, err)
	}
	if len(ranges) > 0 {
		var heir Member
		for _, mem := range members {
			if mem.Group() == successor {
				heir = mem
			}
		}
		if err := heir.AdoptLeases(ranges); err != nil {
			return res, fmt.Errorf("membership: hand leases to %q: %w", successor, err)
		}
		for _, r := range ranges {
			res.LeasesMoved += r.To - r.From + 1
		}
	}
	return res, nil
}

// successorOf picks the group receiving the largest keyspace transfer
// from the drained group (ties and empty plans fall back to the first
// surviving group, deterministically).
func successorOf(plan *ring.Plan, drained string, survivors []string) string {
	best, bestFrac := "", -1.0
	for _, tr := range plan.Transfers {
		if tr.From == drained && tr.Fraction > bestFrac {
			best, bestFrac = tr.To, tr.Fraction
		}
	}
	if best == "" {
		sorted := append([]string(nil), survivors...)
		sort.Strings(sorted)
		best = sorted[0]
	}
	return best
}

// runChange executes the freeze → watermark → advance → resume protocol
// over the member set. Members are always resumed, success or failure; a
// partial advance leaves the cluster on mixed epochs, which the operator
// resolves by re-running the change (advance is idempotent per epoch).
func (m *Manager) runChange(members []Member, cur ring.View, next *ring.View, nextURLs map[string]string) error {
	frozen := make([]Member, 0, len(members))
	defer func() {
		for _, mem := range frozen {
			_ = mem.Resume()
		}
	}()

	watermark := cur.Watermark
	for _, mem := range members {
		highest, err := mem.Freeze()
		if err != nil {
			return fmt.Errorf("membership: freeze %q: %w", mem.Group(), err)
		}
		frozen = append(frozen, mem)
		if highest > watermark {
			watermark = highest
		}
	}
	next.Watermark = watermark

	for _, mem := range members {
		if err := mem.Advance(*next, nextURLs); err != nil {
			return fmt.Errorf("membership: advance %q to view %d: %w", mem.Group(), next.Epoch, err)
		}
	}
	return nil
}

// Member endpoint paths (mounted by the frontend's HTTP server behind
// its owner guard) and admin paths.
const (
	PathFreeze  = "/v1/membership/freeze"
	PathAdvance = "/v1/membership/advance"
	PathResume  = "/v1/membership/resume"
	PathRelease = "/v1/membership/release"
	PathAdopt   = "/v1/membership/adopt"
	PathView    = "/v1/membership/view"
	PathJoin    = "/v1/admin/join"
	PathDrain   = "/v1/admin/drain"
)

// wire payloads for the member and admin endpoints.
type (
	wireFreezeResp struct{ Highest int64 }
	wireAdvanceReq struct {
		View ring.View         `json:"view"`
		URLs map[string]string `json:"urls"`
	}
	wireRangesResp struct {
		Ranges []ts.IndexRange `json:"ranges"`
	}
	wireAdoptReq struct {
		Ranges []ts.IndexRange `json:"ranges"`
	}
	wireJoinReq struct {
		Group string `json:"group"`
		URL   string `json:"url"`
	}
	wireDrainReq struct {
		Group string `json:"group"`
	}
	wireError struct {
		Error string `json:"error"`
	}
)

// Handler returns the member + admin endpoints. Mount it behind the
// frontend's owner-token guard: every route mutates issuance state.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	self := local{m}
	mux.HandleFunc(PathFreeze, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		highest, err := self.Freeze()
		respond(w, wireFreezeResp{Highest: highest}, err)
	})
	mux.HandleFunc(PathAdvance, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireAdvanceReq
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, self.Advance(req.View, req.URLs))
	})
	mux.HandleFunc(PathResume, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		respond(w, struct{}{}, self.Resume())
	})
	mux.HandleFunc(PathRelease, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		ranges, err := self.ReleaseLeases()
		respond(w, wireRangesResp{Ranges: ranges}, err)
	})
	mux.HandleFunc(PathAdopt, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireAdoptReq
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, self.AdoptLeases(req.Ranges))
	})
	mux.HandleFunc(PathView, func(w http.ResponseWriter, r *http.Request) {
		respond(w, m.State(), nil)
	})
	mux.HandleFunc(PathJoin, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireJoinReq
		if !decode(w, r, &req) {
			return
		}
		res, err := m.Join(req.Group, req.URL)
		respond(w, res, err)
	})
	mux.HandleFunc(PathDrain, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireDrainReq
		if !decode(w, r, &req) {
			return
		}
		res, err := m.Drain(req.Group)
		respond(w, res, err)
	})
	return mux
}

func postOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || json.Unmarshal(body, v) != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return false
	}
	return true
}

func respond(w http.ResponseWriter, v any, err error) {
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(wireError{Error: err.Error()})
		return
	}
	_ = json.NewEncoder(w).Encode(v)
}
