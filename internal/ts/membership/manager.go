package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// Config wires a Manager to its frontend's counter stack.
type Config struct {
	// Group is this frontend's replica-group name.
	Group string
	// Stripe is the frontend's epoch-aware block mapper (over the
	// group's quorum coordinator).
	Stripe *ring.DynamicStripe
	// Counter is the frontend's sharded counter (over Stripe), the
	// holder of the block leases a drain releases.
	Counter *ts.ShardedCounter
	// Journal persists adopted views as KindView WAL records (nil =
	// volatile membership, for tests and benches).
	Journal store.Backend
	// Reclaims, when set, journals drain lease handoffs through the
	// KindReclaim/KindAdopt handshake (normally over the same backend as
	// Journal): the drained ranges are durably offered and consumed
	// before the successor adopts them, so a handoff interrupted by a
	// crash is recovered at the next boot instead of silently burning
	// the ranges. Nil = volatile handoff.
	Reclaims *store.Counter
	// Registry receives the ts_membership_epoch gauge (nil = default).
	Registry *metrics.Registry
	// OwnerToken, when set, is sent as a Bearer token on member calls to
	// other frontends (whose /v1/membership routes sit behind the same
	// owner guard as this one's).
	OwnerToken string
	// Client overrides the HTTP client used for member calls.
	Client *http.Client
}

// Manager is one frontend's membership agent: it serves the member
// endpoints a view change drives, tracks the adopted view and the
// frontend URL map, and can act as the controller for join/drain
// operations. One Manager per frontend.
type Manager struct {
	cfg   Config
	gauge *metrics.Gauge

	// opMu serializes controller operations started on this frontend;
	// concurrent controllers on different frontends are resolved by
	// epoch conflict (one advance fails, the operator retries).
	opMu sync.Mutex

	mu    sync.Mutex
	view  ring.View
	urls  map[string]string
	baseK int64
}

// NewManager builds the frontend's membership agent from its boot state
// (either the -initial-groups flag or a persisted State replayed via
// LoadState). urls must map every group in v — plus this frontend's own
// group, even when it is still joining and not yet a member.
func NewManager(cfg Config, v ring.View, urls map[string]string, baseK int64) (*Manager, error) {
	if cfg.Group == "" {
		return nil, fmt.Errorf("membership: config needs a group name")
	}
	if cfg.Stripe == nil || cfg.Counter == nil {
		return nil, fmt.Errorf("membership: config needs the stripe and sharded counter")
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	for _, g := range v.Groups {
		if urls[g] == "" {
			return nil, fmt.Errorf("membership: no frontend URL for group %q", g)
		}
	}
	m := &Manager{
		cfg:   cfg,
		gauge: metrics.Or(cfg.Registry).Gauge(ts.MetricMembershipEpoch, "Replica-group membership view epoch in effect (0 = static membership)."),
		view:  v,
		urls:  copyURLs(urls),
		baseK: baseK,
	}
	m.gauge.Set(v.Epoch)
	return m, nil
}

func copyURLs(urls map[string]string) map[string]string {
	out := make(map[string]string, len(urls))
	for g, u := range urls {
		out[g] = u
	}
	return out
}

// View returns the currently adopted view.
func (m *Manager) View() ring.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// State returns the full durable state (view, adopted base, URL map).
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return State{View: m.view, BaseK: m.baseK, URLs: copyURLs(m.urls)}
}

// local is the in-process Member for this frontend's own group.
type local struct{ m *Manager }

func (l local) Group() string { return l.m.cfg.Group }

func (l local) Freeze() (FreezeInfo, error) {
	highest, wasFrozen, err := l.m.cfg.Stripe.Freeze()
	if err != nil {
		return FreezeInfo{}, err
	}
	v, _ := l.m.cfg.Stripe.State()
	return FreezeInfo{Highest: highest, Epoch: v.Epoch, WasFrozen: wasFrozen}, nil
}

func (l local) Advance(v ring.View, urls map[string]string) error {
	m := l.m
	m.mu.Lock()
	cur := m.view
	m.mu.Unlock()
	var baseK int64
	if v.Epoch == cur.Epoch && sameView(v, cur) {
		// Idempotent re-advance: a retried change finds this member
		// already on the target view; persist-before-ack already
		// happened, so just ack.
		m.mu.Lock()
		baseK = m.baseK
		m.mu.Unlock()
	} else {
		var err error
		baseK, err = m.cfg.Stripe.Advance(v)
		if err != nil {
			return err
		}
	}
	st := State{View: v, BaseK: baseK, URLs: urls}
	if err := persistState(m.cfg.Journal, st); err != nil {
		return err
	}
	m.mu.Lock()
	m.view, m.baseK, m.urls = v, baseK, copyURLs(urls)
	m.mu.Unlock()
	m.gauge.Set(v.Epoch)
	return nil
}

func sameView(a, b ring.View) bool {
	if a.Epoch != b.Epoch || a.Watermark != b.Watermark || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

func (l local) Resume() error {
	l.m.cfg.Stripe.Resume()
	return nil
}

func (l local) ReleaseLeases() ([]ts.IndexRange, error) {
	return l.m.cfg.Counter.Release(), nil
}

func (l local) AdoptLeases(ranges []ts.IndexRange) error {
	return l.m.cfg.Counter.Adopt(ranges)
}

// memberFor resolves a group to its Member handle: in-process for this
// frontend's own group, HTTP for everyone else.
func (m *Manager) memberFor(group, url string) Member {
	if group == m.cfg.Group {
		return local{m}
	}
	return &Remote{GroupName: group, Base: url, OwnerToken: m.cfg.OwnerToken, Client: m.cfg.Client}
}

// ChangeResult is what an admin join/drain returns: the adopted view and
// the keyspace rebalance plan the change implies.
type ChangeResult struct {
	View ring.View  `json:"view"`
	Plan *ring.Plan `json:"plan"`
	// LeasesMoved counts one-time indexes handed from the drained group
	// to its successor (0 for joins).
	LeasesMoved int64 `json:"leasesMoved"`
	// Successor is the group that adopted the drained leases, chosen as
	// the plan's largest transfer target ("" for joins).
	Successor string `json:"successor,omitempty"`
}

// Join runs the controller side of adding a replica group: freeze every
// member plus the joiner, advance all of them to a fresh-epoch view
// whose watermark caps every block allocated so far, and resume. The
// joiner serves only after its advance — recording its epoch base runs a
// full quorum round (catch-up fencing), so it can never map a block at
// or below one an earlier coordinator handed out.
func (m *Manager) Join(group, url string) (*ChangeResult, error) {
	if group == "" || url == "" {
		return nil, fmt.Errorf("membership: join needs a group name and a frontend URL")
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()

	m.mu.Lock()
	cur := m.view
	urls := copyURLs(m.urls)
	m.mu.Unlock()
	if cur.Slot(group) >= 0 {
		return nil, fmt.Errorf("membership: group %q is already a member of view %d", group, cur.Epoch)
	}

	members := make([]Member, 0, len(cur.Groups)+1)
	for _, g := range cur.Groups {
		members = append(members, m.memberFor(g, urls[g]))
	}
	members = append(members, m.memberFor(group, url))

	next := ring.View{
		Groups: append(append([]string(nil), cur.Groups...), group),
	}
	nextURLs := copyURLs(urls)
	nextURLs[group] = url
	plan, err := ring.PlanChange(cur.Groups, next.Groups, 0)
	if err != nil {
		return nil, err
	}
	if err := m.runChange(members, cur, &next, nextURLs); err != nil {
		return nil, err
	}
	return &ChangeResult{View: next, Plan: plan}, nil
}

// Drain runs the controller side of removing a replica group: after the
// fresh-epoch view without it is adopted everywhere, the drained group's
// unexhausted block leases are handed to the successor owning the
// largest share of its keyspace, so a clean drain burns nothing.
func (m *Manager) Drain(group string) (*ChangeResult, error) {
	m.opMu.Lock()
	defer m.opMu.Unlock()

	m.mu.Lock()
	cur := m.view
	urls := copyURLs(m.urls)
	m.mu.Unlock()
	if cur.Slot(group) < 0 {
		return nil, fmt.Errorf("membership: group %q is not a member of view %d", group, cur.Epoch)
	}
	if len(cur.Groups) == 1 {
		return nil, fmt.Errorf("membership: refusing to drain the last group %q", group)
	}

	var drained Member
	members := make([]Member, 0, len(cur.Groups))
	var next ring.View
	for _, g := range cur.Groups {
		mem := m.memberFor(g, urls[g])
		members = append(members, mem)
		if g == group {
			drained = mem
			continue
		}
		next.Groups = append(next.Groups, g)
	}
	nextURLs := copyURLs(urls)
	delete(nextURLs, group)
	plan, err := ring.PlanChange(cur.Groups, next.Groups, 0)
	if err != nil {
		return nil, err
	}
	if err := m.runChange(members, cur, &next, nextURLs); err != nil {
		return nil, err
	}

	// Lease handoff: the drained group is out of the view (its stripe
	// refuses refills), so its remainders are stable — move them to the
	// successor inheriting most of its keyspace.
	successor := successorOf(plan, group, next.Groups)
	res := &ChangeResult{View: next, Plan: plan, Successor: successor}
	ranges, err := drained.ReleaseLeases()
	if err != nil {
		return res, fmt.Errorf("membership: release drained leases of %q: %w", group, err)
	}
	if len(ranges) == 0 {
		return res, nil
	}

	// Durable handoff: journal the ranges as reclaim offers and consume
	// the offers BEFORE the heir adopts. A crash after the offer but
	// before the consume re-offers the ranges to this frontend's next
	// incarnation (which adopts and re-issues them — the heir never saw
	// them); a crash after the consume burns at most these ranges. The
	// reverse order could double-issue: heir adopts, controller crashes,
	// replay re-offers. On a journal error nothing is adopted anywhere —
	// offers already durable are recovered at the next boot, the rest
	// burn; failing toward burn, never toward duplication.
	if m.cfg.Reclaims != nil {
		rs := storeRanges(ranges)
		err := m.cfg.Reclaims.ReleaseRanges(rs)
		if err == nil {
			err = m.cfg.Reclaims.AdoptRanges(rs)
		}
		if err != nil {
			res.Successor = ""
			return res, fmt.Errorf("membership: journal lease handoff of %q: %w (durable offers are recovered at this frontend's next restart; unjournaled ranges burn)", group, err)
		}
	}
	var heir Member
	for _, mem := range members {
		if mem.Group() == successor {
			heir = mem
		}
	}
	if err := heir.AdoptLeases(ranges); err != nil {
		// The ranges came from Release and the local free-list is live, so
		// adopting them here cannot fail validation — the drain still burns
		// nothing, this frontend just issues them instead of the heir.
		_ = m.cfg.Counter.Adopt(ranges)
		res.Successor = m.cfg.Group
		res.LeasesMoved = countIndexes(ranges)
		return res, fmt.Errorf("membership: hand leases to %q: %w (%d indexes adopted by %q instead)",
			successor, err, res.LeasesMoved, m.cfg.Group)
	}
	res.LeasesMoved = countIndexes(ranges)
	return res, nil
}

// storeRanges converts sharded-counter lease ranges to the store's wire
// type for the reclaim journal.
func storeRanges(ranges []ts.IndexRange) []store.IndexRange {
	out := make([]store.IndexRange, len(ranges))
	for i, r := range ranges {
		out[i] = store.IndexRange{From: r.From, To: r.To}
	}
	return out
}

func countIndexes(ranges []ts.IndexRange) int64 {
	var n int64
	for _, r := range ranges {
		n += r.To - r.From + 1
	}
	return n
}

// Repair re-runs the view-change protocol over the current member set at
// a fresh epoch — the recovery op for a change that failed mid-advance
// and left some members frozen on an older epoch. It must run on a
// frontend whose adopted view is the newest (runChange aborts when a
// member reports a higher epoch), which after a partial advance is any
// frontend the failed change already advanced.
func (m *Manager) Repair() (*ChangeResult, error) {
	m.opMu.Lock()
	defer m.opMu.Unlock()

	m.mu.Lock()
	cur := m.view
	urls := copyURLs(m.urls)
	m.mu.Unlock()

	members := make([]Member, 0, len(cur.Groups))
	for _, g := range cur.Groups {
		members = append(members, m.memberFor(g, urls[g]))
	}
	next := ring.View{Groups: append([]string(nil), cur.Groups...)}
	if err := m.runChange(members, cur, &next, urls); err != nil {
		return nil, err
	}
	return &ChangeResult{View: next}, nil
}

// successorOf picks the group receiving the largest keyspace transfer
// from the drained group (ties and empty plans fall back to the first
// surviving group, deterministically).
func successorOf(plan *ring.Plan, drained string, survivors []string) string {
	best, bestFrac := "", -1.0
	for _, tr := range plan.Transfers {
		if tr.From == drained && tr.Fraction > bestFrac {
			best, bestFrac = tr.To, tr.Fraction
		}
	}
	if best == "" {
		sorted := append([]string(nil), survivors...)
		sort.Strings(sorted)
		best = sorted[0]
	}
	return best
}

// runChange executes the freeze → watermark → advance → resume protocol
// over the member set, filling in next's epoch (fresh: above every
// member's current one, so a retried change never collides with a
// partially-adopted earlier attempt) and watermark (the highest block
// any member ever allocated).
//
// Failure handling fails toward unavailability, never duplication:
//
//   - Abort before any advance: resume exactly the members this run
//     froze (WasFrozen=false), restoring the status quo without touching
//     members an earlier failed change left frozen.
//   - Abort mid-advance: resume only the members that acked the new
//     view — they all sit on the unique newest epoch and stay mutually
//     disjoint. Everyone else (including the member whose advance
//     errored, which may or may not have adopted) STAYS FROZEN, because
//     old-view members allocating concurrently with new-view ones use a
//     different stride and can collide. The error names the frozen
//     groups; the operator re-runs the change or repairs from an
//     advanced frontend.
//   - A member reporting an epoch above the controller's view aborts the
//     change before a watermark is computed: a stale controller's view
//     may miss groups whose allocations the watermark must cover.
func (m *Manager) runChange(members []Member, cur ring.View, next *ring.View, nextURLs map[string]string) error {
	frozeNow := make([]Member, 0, len(members))
	restore := func() {
		for _, mem := range frozeNow {
			_ = mem.Resume()
		}
	}

	watermark := cur.Watermark
	maxEpoch := cur.Epoch
	var ahead []string
	for _, mem := range members {
		info, err := mem.Freeze()
		if err != nil {
			restore()
			return fmt.Errorf("membership: freeze %q: %w", mem.Group(), err)
		}
		if !info.WasFrozen {
			frozeNow = append(frozeNow, mem)
		}
		if info.Highest > watermark {
			watermark = info.Highest
		}
		if info.Epoch > maxEpoch {
			maxEpoch = info.Epoch
		}
		if info.Epoch > cur.Epoch {
			ahead = append(ahead, fmt.Sprintf("%s (epoch %d)", mem.Group(), info.Epoch))
		}
	}
	if len(ahead) > 0 {
		restore()
		return fmt.Errorf("membership: controller view %d is stale — members ahead: %s; drive the change from the highest-epoch frontend",
			cur.Epoch, strings.Join(ahead, ", "))
	}
	next.Epoch = maxEpoch + 1
	next.Watermark = watermark

	for i, mem := range members {
		if err := mem.Advance(*next, nextURLs); err != nil {
			for _, adv := range members[:i] {
				_ = adv.Resume()
			}
			var frozen []string
			for _, rest := range members[i:] {
				frozen = append(frozen, rest.Group())
			}
			return fmt.Errorf("membership: advance %q to view %d: %w — groups %s stay frozen (unavailable, not colliding); re-run the change, or POST %s on an advanced frontend once the fault clears",
				mem.Group(), next.Epoch, err, strings.Join(frozen, ", "), PathRepair)
		}
	}
	for _, mem := range members {
		_ = mem.Resume()
	}
	return nil
}

// Member endpoint paths (mounted by the frontend's HTTP server behind
// its owner guard) and admin paths.
const (
	PathFreeze  = "/v1/membership/freeze"
	PathAdvance = "/v1/membership/advance"
	PathResume  = "/v1/membership/resume"
	PathRelease = "/v1/membership/release"
	PathAdopt   = "/v1/membership/adopt"
	PathView    = "/v1/membership/view"
	PathJoin    = "/v1/admin/join"
	PathDrain   = "/v1/admin/drain"
	PathRepair  = "/v1/admin/repair"
)

// wire payloads for the member and admin endpoints (Freeze responds
// with a bare FreezeInfo).
type (
	wireAdvanceReq struct {
		View ring.View         `json:"view"`
		URLs map[string]string `json:"urls"`
	}
	wireRangesResp struct {
		Ranges []ts.IndexRange `json:"ranges"`
	}
	wireAdoptReq struct {
		Ranges []ts.IndexRange `json:"ranges"`
	}
	wireJoinReq struct {
		Group string `json:"group"`
		URL   string `json:"url"`
	}
	wireDrainReq struct {
		Group string `json:"group"`
	}
	wireError struct {
		Error string `json:"error"`
	}
)

// Handler returns the member + admin endpoints. Mount it behind the
// frontend's owner-token guard: every route mutates issuance state.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	self := local{m}
	mux.HandleFunc(PathFreeze, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		info, err := self.Freeze()
		respond(w, info, err)
	})
	mux.HandleFunc(PathAdvance, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireAdvanceReq
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, self.Advance(req.View, req.URLs))
	})
	mux.HandleFunc(PathResume, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		respond(w, struct{}{}, self.Resume())
	})
	mux.HandleFunc(PathRelease, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		ranges, err := self.ReleaseLeases()
		respond(w, wireRangesResp{Ranges: ranges}, err)
	})
	mux.HandleFunc(PathAdopt, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireAdoptReq
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, self.AdoptLeases(req.Ranges))
	})
	mux.HandleFunc(PathView, func(w http.ResponseWriter, r *http.Request) {
		respond(w, m.State(), nil)
	})
	mux.HandleFunc(PathJoin, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireJoinReq
		if !decode(w, r, &req) {
			return
		}
		res, err := m.Join(req.Group, req.URL)
		respond(w, res, err)
	})
	mux.HandleFunc(PathDrain, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		var req wireDrainReq
		if !decode(w, r, &req) {
			return
		}
		res, err := m.Drain(req.Group)
		respond(w, res, err)
	})
	mux.HandleFunc(PathRepair, func(w http.ResponseWriter, r *http.Request) {
		if !postOnly(w, r) {
			return
		}
		res, err := m.Repair()
		respond(w, res, err)
	})
	return mux
}

func postOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || json.Unmarshal(body, v) != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return false
	}
	return true
}

func respond(w http.ResponseWriter, v any, err error) {
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(wireError{Error: err.Error()})
		return
	}
	_ = json.NewEncoder(w).Encode(v)
}
