package membership

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// Remote is the HTTP Member implementation: the controller's handle on
// another frontend's membership endpoints.
type Remote struct {
	// GroupName is the remote frontend's replica group.
	GroupName string
	// Base is the remote frontend's base URL (e.g. "http://10.0.0.2:8546").
	Base string
	// OwnerToken, when set, authenticates member calls (the remote's
	// /v1/membership routes sit behind its owner guard).
	OwnerToken string
	// Client overrides the HTTP client (nil = a short-timeout default:
	// member calls are tiny control-plane round-trips, and a hung member
	// must not stall a view change forever).
	Client *http.Client
}

// DefaultMemberTimeout bounds one member control call.
const DefaultMemberTimeout = 5 * time.Second

func (r *Remote) Group() string { return r.GroupName }

func (r *Remote) Freeze() (FreezeInfo, error) {
	var resp FreezeInfo
	if err := r.post(PathFreeze, struct{}{}, &resp); err != nil {
		return FreezeInfo{}, err
	}
	return resp, nil
}

func (r *Remote) Advance(v ring.View, urls map[string]string) error {
	return r.post(PathAdvance, wireAdvanceReq{View: v, URLs: urls}, &struct{}{})
}

func (r *Remote) Resume() error {
	return r.post(PathResume, struct{}{}, &struct{}{})
}

func (r *Remote) ReleaseLeases() ([]ts.IndexRange, error) {
	var resp wireRangesResp
	if err := r.post(PathRelease, struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Ranges, nil
}

func (r *Remote) AdoptLeases(ranges []ts.IndexRange) error {
	return r.post(PathAdopt, wireAdoptReq{Ranges: ranges}, &struct{}{})
}

// FetchState reads the remote frontend's current membership state — the
// bootstrap call a joining frontend can use to discover the cluster's
// view before asking to join.
func (r *Remote) FetchState() (State, error) {
	client := r.client()
	req, err := http.NewRequest(http.MethodGet, r.Base+PathView, nil)
	if err != nil {
		return State{}, err
	}
	r.auth(req)
	var st State
	if err := doJSON(client, req, &st); err != nil {
		return State{}, fmt.Errorf("membership: fetch view from %s: %w", r.Base, err)
	}
	return st, nil
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return &http.Client{Timeout: DefaultMemberTimeout}
}

func (r *Remote) auth(req *http.Request) {
	if r.OwnerToken != "" {
		req.Header.Set("Authorization", "Bearer "+r.OwnerToken)
	}
}

func (r *Remote) post(path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, r.Base+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	r.auth(req)
	if err := doJSON(r.client(), req, out); err != nil {
		return fmt.Errorf("membership: %s %s%s: %w", r.GroupName, r.Base, path, err)
	}
	return nil
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&we) == nil && we.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, we.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
