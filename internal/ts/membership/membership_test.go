package membership

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// seqCounter stands in for a group's quorum coordinator.
type seqCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *seqCounter) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n, nil
}

// frontend is one in-process Token Service frontend: stripe + sharded
// counter + manager + a real HTTP server for the member endpoints.
type frontend struct {
	group   string
	counter *ts.ShardedCounter
	manager *Manager
	server  *httptest.Server
}

func newFrontend(t *testing.T, group string, v ring.View, urls map[string]string, journal store.Backend, reg *metrics.Registry) *frontend {
	t.Helper()
	stripe, err := ring.NewDynamicStripe(&seqCounter{}, group, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := ts.NewShardedCounter(stripe, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{
		Group:    group,
		Stripe:   stripe,
		Counter:  counter,
		Journal:  journal,
		Registry: reg,
	}, v, urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &frontend{group: group, counter: counter, manager: mgr}
	f.server = httptest.NewServer(mgr.Handler())
	t.Cleanup(f.server.Close)
	return f
}

// gatedFrontend is newFrontend plus a per-path fault injector: member
// endpoints whose path is stored in the returned map answer 502, the
// stand-in for a frontend that is up but failing mid-change.
func gatedFrontend(t *testing.T, group string, v ring.View, urls map[string]string, reg *metrics.Registry, reclaims *store.Counter) (*frontend, *sync.Map) {
	t.Helper()
	stripe, err := ring.NewDynamicStripe(&seqCounter{}, group, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := ts.NewShardedCounter(stripe, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{
		Group:    group,
		Stripe:   stripe,
		Counter:  counter,
		Reclaims: reclaims,
		Registry: reg,
	}, v, urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &frontend{group: group, counter: counter, manager: mgr}
	var failing sync.Map
	h := mgr.Handler()
	f.server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, down := failing.Load(r.URL.Path); down {
			http.Error(w, "injected fault", http.StatusBadGateway)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(f.server.Close)
	return f, &failing
}

// patchURLs rewires a manager's frontend URL map after the test servers
// exist (URLs are needed at construction, before they are known).
func patchURLs(fs []*frontend, urls map[string]string) {
	for _, f := range fs {
		f.manager.mu.Lock()
		f.manager.urls = copyURLs(urls)
		f.manager.mu.Unlock()
	}
}

// TestJoinDrainLifecycle drives the full protocol over real HTTP member
// endpoints: two groups issue under load, a third joins mid-stream, then
// one drains and hands its unexhausted leases over. Every index across
// all groups and epochs must be unique, and the drained remainders must
// resurface through the successor instead of burning.
func TestJoinDrainLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	v1 := ring.View{Epoch: 1, Groups: []string{"a", "b"}}

	// Bootstrapping: URLs must be known before servers exist, so reserve
	// them via a two-phase setup — build a with placeholder, fix after.
	urls := map[string]string{}
	fa := newFrontend(t, "a", v1, map[string]string{"a": "pending", "b": "pending"}, store.NewMemory(), reg)
	fb := newFrontend(t, "b", v1, map[string]string{"a": "pending", "b": "pending"}, nil, reg)
	urls["a"], urls["b"] = fa.server.URL, fb.server.URL
	// Re-seed the managers' URL maps through a no-op advance is overkill
	// for a test: rebuild them with real URLs instead.
	fa.manager.mu.Lock()
	fa.manager.urls = copyURLs(urls)
	fa.manager.mu.Unlock()
	fb.manager.mu.Lock()
	fb.manager.urls = copyURLs(urls)
	fb.manager.mu.Unlock()

	seen := make(map[int64]string)
	issue := func(f *frontend, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			idx, err := f.counter.Next()
			if err != nil {
				t.Fatalf("%s: %v", f.group, err)
			}
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both %s and %s", idx, prev, f.group)
			}
			seen[idx] = f.group
		}
	}

	issue(fa, 30)
	issue(fb, 17)

	// Group c joins via the admin op on frontend a. The joiner boots with
	// the cluster's current view (not containing itself).
	fc := newFrontend(t, "c", v1, urls, nil, reg)
	joinRes, err := fa.manager.Join("c", fc.server.URL)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := joinRes.View.Epoch; got != 2 {
		t.Fatalf("post-join epoch = %d, want 2", got)
	}
	if joinRes.View.Slot("c") < 0 {
		t.Fatal("joiner missing from adopted view")
	}
	if joinRes.Plan == nil || joinRes.Plan.MovedFraction > 1.5/3.0 {
		t.Fatalf("join plan moved %v, want ≤ 0.5", joinRes.Plan)
	}
	for _, tr := range joinRes.Plan.Transfers {
		if tr.To != "c" {
			t.Fatalf("join plan moves keys %s→%s, all movement must target the joiner", tr.From, tr.To)
		}
	}
	if e := fb.manager.View().Epoch; e != 2 {
		t.Fatalf("member b not advanced: epoch %d", e)
	}
	if e := fc.manager.View().Epoch; e != 2 {
		t.Fatalf("joiner c not advanced: epoch %d", e)
	}

	issue(fa, 12)
	issue(fb, 25)
	issue(fc, 21)

	// Drain b from frontend c (any frontend can control a change). b has
	// unexhausted leases; they must move to the successor, not burn.
	drainRes, err := fc.manager.Drain("b")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := drainRes.View.Epoch; got != 3 {
		t.Fatalf("post-drain epoch = %d, want 3", got)
	}
	if drainRes.View.Slot("b") >= 0 {
		t.Fatal("drained group still in view")
	}
	if drainRes.LeasesMoved == 0 {
		t.Fatal("drain moved no leases despite unexhausted blocks")
	}
	if drainRes.Successor != "a" && drainRes.Successor != "c" {
		t.Fatalf("successor %q is not a surviving group", drainRes.Successor)
	}
	var heir *frontend
	if drainRes.Successor == "a" {
		heir = fa
	} else {
		heir = fc
	}
	if got := heir.counter.Reclaimed(); got != drainRes.LeasesMoved {
		t.Fatalf("successor reclaimed %d indexes, change reported %d", got, drainRes.LeasesMoved)
	}

	// The drained group refuses to issue; survivors keep going, reusing
	// the handed-over indexes first.
	if _, err := fb.counter.Next(); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("drained frontend issued an index (err=%v)", err)
	}
	issue(fa, 40)
	issue(fc, 40)

	// The handed-over remainders must resurface exactly once.
	reused := int64(0)
	for idx, g := range seen {
		_ = idx
		if g == drainRes.Successor {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("successor issued nothing after adopting leases")
	}

	// Membership epoch gauge tracks the latest adopted view.
	if got := reg.Gauge(ts.MetricMembershipEpoch, "").Value(); got != 3 {
		t.Fatalf("%s gauge = %d, want 3", ts.MetricMembershipEpoch, got)
	}

	// Persistence: frontend a journaled every adopted view; a restart
	// resumes from epoch 3 with the post-drain URL map.
	st, ok, err := LoadState(fa.manager.cfg.Journal)
	if err != nil || !ok {
		t.Fatalf("LoadState: ok=%v err=%v", ok, err)
	}
	if st.View.Epoch != 3 || st.View.Slot("b") >= 0 {
		t.Fatalf("persisted view = %+v, want epoch 3 without b", st.View)
	}
	if st.URLs["c"] != fc.server.URL {
		t.Fatalf("persisted URLs missing joiner: %+v", st.URLs)
	}
	if st.BaseK == 0 {
		t.Fatal("persisted baseK is 0 after two advances — epoch base not recorded")
	}
}

// TestAdvanceIdempotentPerEpoch pins the retry contract: re-advancing a
// member to the view it already adopted acks instead of failing, so an
// operator can re-run a change that died halfway.
func TestAdvanceIdempotentPerEpoch(t *testing.T) {
	v1 := ring.View{Epoch: 1, Groups: []string{"a"}}
	f := newFrontend(t, "a", v1, map[string]string{"a": "http://x"}, nil, metrics.NewRegistry())

	rem := &Remote{GroupName: "a", Base: f.server.URL}
	if _, err := rem.Freeze(); err != nil {
		t.Fatal(err)
	}
	v2 := ring.View{Epoch: 2, Groups: []string{"a"}, Watermark: 0}
	urls := map[string]string{"a": "http://x"}
	if err := rem.Advance(v2, urls); err != nil {
		t.Fatalf("first advance: %v", err)
	}
	if err := rem.Advance(v2, urls); err != nil {
		t.Fatalf("idempotent re-advance rejected: %v", err)
	}
	// A stale epoch is still rejected.
	if err := rem.Advance(v1, urls); err == nil {
		t.Fatal("stale advance accepted")
	}
	if err := rem.Resume(); err != nil {
		t.Fatal(err)
	}
	if st, err := rem.FetchState(); err != nil || st.View.Epoch != 2 {
		t.Fatalf("FetchState = %+v, %v", st, err)
	}
}

// TestPartialAdvanceKeepsUnadvancedFrozen pins the fail-frozen policy:
// when an advance dies halfway, members already on the new epoch resume
// and serve while everyone else stays frozen (unavailable, never
// allocating on a stale epoch whose stride could collide), a retry from
// a stale member refuses to pick a watermark, and Repair from an
// advanced frontend converges the whole cluster on a fresh epoch.
func TestPartialAdvanceKeepsUnadvancedFrozen(t *testing.T) {
	reg := metrics.NewRegistry()
	v1 := ring.View{Epoch: 1, Groups: []string{"a", "b"}}
	pending := map[string]string{"a": "pending", "b": "pending"}
	fa, _ := gatedFrontend(t, "a", v1, pending, reg, nil)
	fb, failB := gatedFrontend(t, "b", v1, pending, reg, nil)
	fc, _ := gatedFrontend(t, "c", v1, pending, reg, nil)
	patchURLs([]*frontend{fa, fb, fc}, map[string]string{"a": fa.server.URL, "b": fb.server.URL})

	seen := make(map[int64]string)
	issue := func(f *frontend, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			idx, err := f.counter.Next()
			if err != nil {
				t.Fatalf("%s: %v", f.group, err)
			}
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both %s and %s", idx, prev, f.group)
			}
			seen[idx] = f.group
		}
	}
	issue(fa, 9)
	issue(fb, 9)

	// The join advances a (the controller, in-process) first, then dies
	// at b. c is frozen but never advanced.
	failB.Store(PathAdvance, true)
	_, err := fa.manager.Join("c", fc.server.URL)
	if err == nil {
		t.Fatal("partial advance reported success")
	}
	if !strings.Contains(err.Error(), "stay frozen") || !strings.Contains(err.Error(), "b") {
		t.Fatalf("error does not name the kept-frozen groups: %v", err)
	}

	// The advanced controller serves on the new epoch; the unadvanced
	// members stay frozen instead of resuming onto the old one.
	if e := fa.manager.View().Epoch; e != 2 {
		t.Fatalf("controller epoch = %d, want 2", e)
	}
	issue(fa, 9)
	for _, f := range []*frontend{fb, fc} {
		info, err := (local{f.manager}).Freeze()
		if err != nil {
			t.Fatal(err)
		}
		if !info.WasFrozen {
			t.Fatalf("%s was resumed despite not advancing", f.group)
		}
		if info.Epoch != 1 {
			t.Fatalf("%s epoch = %d, want 1", f.group, info.Epoch)
		}
	}

	// A retried join from the advanced controller refuses — its view
	// already contains the joiner; Repair is the recovery op.
	if _, err := fa.manager.Join("c", fc.server.URL); err == nil || !strings.Contains(err.Error(), "already a member") {
		t.Fatalf("retried join from advanced controller = %v", err)
	}

	// A retry from the stale member aborts before computing a watermark
	// (its view cannot cover the advanced member's allocations), naming
	// the member that is ahead — and leaves b frozen.
	failB.Delete(PathAdvance)
	if _, err := fb.manager.Join("c", fc.server.URL); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale-controller join = %v", err)
	}
	if info, err := (local{fb.manager}).Freeze(); err != nil || !info.WasFrozen {
		t.Fatalf("stale-controller abort resumed b: %+v, %v", info, err)
	}

	// Repair from the advanced frontend: everyone lands on a fresh epoch
	// above both the advanced and the stale members, and issuance stays
	// globally unique across the whole ordeal.
	res, err := fa.manager.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.View.Epoch != 3 || res.View.Slot("c") < 0 {
		t.Fatalf("repaired view = %+v, want epoch 3 containing c", res.View)
	}
	for _, f := range []*frontend{fa, fb, fc} {
		if e := f.manager.View().Epoch; e != 3 {
			t.Fatalf("%s epoch = %d after repair, want 3", f.group, e)
		}
	}
	issue(fa, 9)
	issue(fb, 9)
	issue(fc, 9)
}

// TestDrainHandoffJournalAndHeirFallback pins the durable lease
// handoff: the drained remainders are journaled (offer then consume)
// before the heir adopts, and when the heir's adopt fails the
// controller adopts them itself — the drain degrades to a different
// successor, never to burned indexes.
func TestDrainHandoffJournalAndHeirFallback(t *testing.T) {
	// Consistent hashing decides the heir; gate its adopt endpoint and
	// drive the drain from the other survivor.
	plan, err := ring.PlanChange([]string{"a", "b", "c"}, []string{"a", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	heir := successorOf(plan, "b", []string{"a", "c"})
	ctrl := "a"
	if heir == "a" {
		ctrl = "c"
	}

	reg := metrics.NewRegistry()
	v1 := ring.View{Epoch: 1, Groups: []string{"a", "b", "c"}}
	backend := store.NewMemory()
	reclaims, err := store.OpenCounter(backend, -1)
	if err != nil {
		t.Fatal(err)
	}
	pending := map[string]string{"a": "pending", "b": "pending", "c": "pending"}
	fs := map[string]*frontend{}
	gates := map[string]*sync.Map{}
	urls := map[string]string{}
	for _, g := range []string{"a", "b", "c"} {
		var rc *store.Counter
		if g == ctrl {
			rc = reclaims
		}
		fs[g], gates[g] = gatedFrontend(t, g, v1, pending, reg, rc)
		urls[g] = fs[g].server.URL
	}
	patchURLs([]*frontend{fs["a"], fs["b"], fs["c"]}, urls)

	// b issues so it holds unexhausted lease remainders to hand over.
	for i := 0; i < 5; i++ {
		if _, err := fs["b"].counter.Next(); err != nil {
			t.Fatal(err)
		}
	}

	gates[heir].Store(PathAdopt, true)
	res, err := fs[ctrl].manager.Drain("b")
	if err == nil || !strings.Contains(err.Error(), "adopted by") {
		t.Fatalf("drain with failing heir = %v, want the fallback-adoption error", err)
	}
	if res == nil || res.Successor != ctrl {
		t.Fatalf("fallback successor = %+v, want %s", res, ctrl)
	}
	if res.LeasesMoved == 0 {
		t.Fatal("drain moved no leases despite unexhausted blocks")
	}
	if got := fs[ctrl].counter.Reclaimed(); got != res.LeasesMoved {
		t.Fatalf("controller reclaimed %d indexes, drain reported %d", got, res.LeasesMoved)
	}

	// The handshake is journaled: every offer has a matching consume, so
	// a replay offers nothing — exactly one adopter, even across a crash.
	_, recs, err := backend.Replay()
	if err != nil {
		t.Fatal(err)
	}
	offers, adopts := 0, 0
	for _, rec := range recs {
		switch rec.Kind {
		case store.KindReclaim:
			offers++
		case store.KindAdopt:
			adopts++
		}
	}
	if offers == 0 || offers != adopts {
		t.Fatalf("journal holds %d offers and %d adopts, want matched and non-zero", offers, adopts)
	}
	restarted, err := store.OpenCounter(backend, -1)
	if err != nil {
		t.Fatal(err)
	}
	if left, err := restarted.PendingReclaims(); err != nil || len(left) != 0 {
		t.Fatalf("consumed offers re-offered after restart: %+v, %v", left, err)
	}

	// The fallback-adopted indexes resurface from the controller exactly
	// once.
	seen := map[int64]bool{}
	for i := int64(0); i < res.LeasesMoved+8; i++ {
		idx, err := fs[ctrl].counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[idx] {
			t.Fatalf("index %d issued twice by the fallback adopter", idx)
		}
		seen[idx] = true
	}
}

// TestChangeGuards covers the refusals: joining a present group,
// draining an absent one, draining the last group.
func TestChangeGuards(t *testing.T) {
	v1 := ring.View{Epoch: 1, Groups: []string{"a"}}
	f := newFrontend(t, "a", v1, map[string]string{"a": "http://x"}, nil, metrics.NewRegistry())
	if _, err := f.manager.Join("a", "http://y"); err == nil {
		t.Fatal("joined an existing member")
	}
	if _, err := f.manager.Drain("zz"); err == nil {
		t.Fatal("drained a non-member")
	}
	if _, err := f.manager.Drain("a"); err == nil {
		t.Fatal("drained the last group")
	}
	if _, err := f.manager.Join("", ""); err == nil {
		t.Fatal("empty join accepted")
	}
}
