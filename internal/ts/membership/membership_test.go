package membership

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/ring"
)

// seqCounter stands in for a group's quorum coordinator.
type seqCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *seqCounter) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n, nil
}

// frontend is one in-process Token Service frontend: stripe + sharded
// counter + manager + a real HTTP server for the member endpoints.
type frontend struct {
	group   string
	counter *ts.ShardedCounter
	manager *Manager
	server  *httptest.Server
}

func newFrontend(t *testing.T, group string, v ring.View, urls map[string]string, journal store.Backend, reg *metrics.Registry) *frontend {
	t.Helper()
	stripe, err := ring.NewDynamicStripe(&seqCounter{}, group, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := ts.NewShardedCounter(stripe, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{
		Group:    group,
		Stripe:   stripe,
		Counter:  counter,
		Journal:  journal,
		Registry: reg,
	}, v, urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &frontend{group: group, counter: counter, manager: mgr}
	f.server = httptest.NewServer(mgr.Handler())
	t.Cleanup(f.server.Close)
	return f
}

// TestJoinDrainLifecycle drives the full protocol over real HTTP member
// endpoints: two groups issue under load, a third joins mid-stream, then
// one drains and hands its unexhausted leases over. Every index across
// all groups and epochs must be unique, and the drained remainders must
// resurface through the successor instead of burning.
func TestJoinDrainLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	v1 := ring.View{Epoch: 1, Groups: []string{"a", "b"}}

	// Bootstrapping: URLs must be known before servers exist, so reserve
	// them via a two-phase setup — build a with placeholder, fix after.
	urls := map[string]string{}
	fa := newFrontend(t, "a", v1, map[string]string{"a": "pending", "b": "pending"}, store.NewMemory(), reg)
	fb := newFrontend(t, "b", v1, map[string]string{"a": "pending", "b": "pending"}, nil, reg)
	urls["a"], urls["b"] = fa.server.URL, fb.server.URL
	// Re-seed the managers' URL maps through a no-op advance is overkill
	// for a test: rebuild them with real URLs instead.
	fa.manager.mu.Lock()
	fa.manager.urls = copyURLs(urls)
	fa.manager.mu.Unlock()
	fb.manager.mu.Lock()
	fb.manager.urls = copyURLs(urls)
	fb.manager.mu.Unlock()

	seen := make(map[int64]string)
	issue := func(f *frontend, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			idx, err := f.counter.Next()
			if err != nil {
				t.Fatalf("%s: %v", f.group, err)
			}
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both %s and %s", idx, prev, f.group)
			}
			seen[idx] = f.group
		}
	}

	issue(fa, 30)
	issue(fb, 17)

	// Group c joins via the admin op on frontend a. The joiner boots with
	// the cluster's current view (not containing itself).
	fc := newFrontend(t, "c", v1, urls, nil, reg)
	joinRes, err := fa.manager.Join("c", fc.server.URL)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := joinRes.View.Epoch; got != 2 {
		t.Fatalf("post-join epoch = %d, want 2", got)
	}
	if joinRes.View.Slot("c") < 0 {
		t.Fatal("joiner missing from adopted view")
	}
	if joinRes.Plan == nil || joinRes.Plan.MovedFraction > 1.5/3.0 {
		t.Fatalf("join plan moved %v, want ≤ 0.5", joinRes.Plan)
	}
	for _, tr := range joinRes.Plan.Transfers {
		if tr.To != "c" {
			t.Fatalf("join plan moves keys %s→%s, all movement must target the joiner", tr.From, tr.To)
		}
	}
	if e := fb.manager.View().Epoch; e != 2 {
		t.Fatalf("member b not advanced: epoch %d", e)
	}
	if e := fc.manager.View().Epoch; e != 2 {
		t.Fatalf("joiner c not advanced: epoch %d", e)
	}

	issue(fa, 12)
	issue(fb, 25)
	issue(fc, 21)

	// Drain b from frontend c (any frontend can control a change). b has
	// unexhausted leases; they must move to the successor, not burn.
	drainRes, err := fc.manager.Drain("b")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := drainRes.View.Epoch; got != 3 {
		t.Fatalf("post-drain epoch = %d, want 3", got)
	}
	if drainRes.View.Slot("b") >= 0 {
		t.Fatal("drained group still in view")
	}
	if drainRes.LeasesMoved == 0 {
		t.Fatal("drain moved no leases despite unexhausted blocks")
	}
	if drainRes.Successor != "a" && drainRes.Successor != "c" {
		t.Fatalf("successor %q is not a surviving group", drainRes.Successor)
	}
	var heir *frontend
	if drainRes.Successor == "a" {
		heir = fa
	} else {
		heir = fc
	}
	if got := heir.counter.Reclaimed(); got != drainRes.LeasesMoved {
		t.Fatalf("successor reclaimed %d indexes, change reported %d", got, drainRes.LeasesMoved)
	}

	// The drained group refuses to issue; survivors keep going, reusing
	// the handed-over indexes first.
	if _, err := fb.counter.Next(); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("drained frontend issued an index (err=%v)", err)
	}
	issue(fa, 40)
	issue(fc, 40)

	// The handed-over remainders must resurface exactly once.
	reused := int64(0)
	for idx, g := range seen {
		_ = idx
		if g == drainRes.Successor {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("successor issued nothing after adopting leases")
	}

	// Membership epoch gauge tracks the latest adopted view.
	if got := reg.Gauge(ts.MetricMembershipEpoch, "").Value(); got != 3 {
		t.Fatalf("%s gauge = %d, want 3", ts.MetricMembershipEpoch, got)
	}

	// Persistence: frontend a journaled every adopted view; a restart
	// resumes from epoch 3 with the post-drain URL map.
	st, ok, err := LoadState(fa.manager.cfg.Journal)
	if err != nil || !ok {
		t.Fatalf("LoadState: ok=%v err=%v", ok, err)
	}
	if st.View.Epoch != 3 || st.View.Slot("b") >= 0 {
		t.Fatalf("persisted view = %+v, want epoch 3 without b", st.View)
	}
	if st.URLs["c"] != fc.server.URL {
		t.Fatalf("persisted URLs missing joiner: %+v", st.URLs)
	}
	if st.BaseK == 0 {
		t.Fatal("persisted baseK is 0 after two advances — epoch base not recorded")
	}
}

// TestAdvanceIdempotentPerEpoch pins the retry contract: re-advancing a
// member to the view it already adopted acks instead of failing, so an
// operator can re-run a change that died halfway.
func TestAdvanceIdempotentPerEpoch(t *testing.T) {
	v1 := ring.View{Epoch: 1, Groups: []string{"a"}}
	f := newFrontend(t, "a", v1, map[string]string{"a": "http://x"}, nil, metrics.NewRegistry())

	rem := &Remote{GroupName: "a", Base: f.server.URL}
	if _, err := rem.Freeze(); err != nil {
		t.Fatal(err)
	}
	v2 := ring.View{Epoch: 2, Groups: []string{"a"}, Watermark: 0}
	urls := map[string]string{"a": "http://x"}
	if err := rem.Advance(v2, urls); err != nil {
		t.Fatalf("first advance: %v", err)
	}
	if err := rem.Advance(v2, urls); err != nil {
		t.Fatalf("idempotent re-advance rejected: %v", err)
	}
	// A stale epoch is still rejected.
	if err := rem.Advance(v1, urls); err == nil {
		t.Fatal("stale advance accepted")
	}
	if err := rem.Resume(); err != nil {
		t.Fatal(err)
	}
	if st, err := rem.FetchState(); err != nil || st.View.Epoch != 2 {
		t.Fatalf("FetchState = %+v, %v", st, err)
	}
}

// TestChangeGuards covers the refusals: joining a present group,
// draining an absent one, draining the last group.
func TestChangeGuards(t *testing.T) {
	v1 := ring.View{Epoch: 1, Groups: []string{"a"}}
	f := newFrontend(t, "a", v1, map[string]string{"a": "http://x"}, nil, metrics.NewRegistry())
	if _, err := f.manager.Join("a", "http://y"); err == nil {
		t.Fatal("joined an existing member")
	}
	if _, err := f.manager.Drain("zz"); err == nil {
		t.Fatal("drained a non-member")
	}
	if _, err := f.manager.Drain("a"); err == nil {
		t.Fatal("drained the last group")
	}
	if _, err := f.manager.Join("", ""); err == nil {
		t.Fatal("empty join accepted")
	}
}
