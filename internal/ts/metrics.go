package ts

import (
	"errors"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// Metric names exported by the Token Service. Every series is
// get-or-create on the service's registry, so several Service instances
// sharing one registry (e.g. the e2e harness's main and expired
// frontends) aggregate into the same series; GET /v1/stats remains the
// per-frontend view and the e2e harness cross-checks the two.
const (
	MetricTokensIssued = "ts_tokens_issued_total"
	MetricTokensDenied = "ts_tokens_denied_total"
	MetricIssueSeconds = "ts_issue_seconds"
	MetricBatchSize    = "ts_issue_batch_size"
	MetricLeaseSpread  = "ts_counter_lease_spread"
	// MetricLeaseReclaimed counts one-time indexes adopted back from a
	// predecessor's released block leases instead of burned. It belongs
	// to the counter's owner (the daemon or harness), not the Service —
	// several Services can front one counter.
	MetricLeaseReclaimed = "ts_lease_reclaimed_total"
	// MetricMembershipEpoch is the replica-group membership view epoch
	// this frontend serves under (0 = static membership, no view
	// adopted).
	MetricMembershipEpoch = "ts_membership_epoch"
)

// Denial reason label values, in the order the issuance path checks
// them. "other" is the catch-all, so the reason counters always sum to
// the denied total.
var denyReasons = []string{
	"bad_request", "wrong_contract", "rule_denied", "validator", "counter", "other",
}

// serviceMetrics holds one Service's pre-resolved metric handles: the
// hot path increments them without touching the registry.
type serviceMetrics struct {
	issued       *metrics.Counter
	denied       map[string]*metrics.Counter
	issueSeconds *metrics.Histogram
	batchSize    *metrics.Histogram
	leaseSpread  *metrics.Gauge
}

func newServiceMetrics(reg *metrics.Registry) *serviceMetrics {
	m := &serviceMetrics{
		issued: reg.Counter(MetricTokensIssued, "Tokens issued by the Token Service."),
		denied: make(map[string]*metrics.Counter, len(denyReasons)),
		issueSeconds: reg.Histogram(MetricIssueSeconds,
			"Latency of one token issuance (validation, rules, counter, signing).", nil),
		batchSize: reg.Histogram(MetricBatchSize,
			"Requests per IssueBatch call.", metrics.DefSizeBuckets),
		leaseSpread: reg.Gauge(MetricLeaseSpread,
			"Worst-case one-time index spread of the configured counter (0 = strictly increasing)."),
	}
	for _, reason := range denyReasons {
		m.denied[reason] = reg.Counter(MetricTokensDenied,
			"Token requests denied, by reason.", metrics.L("reason", reason))
	}
	return m
}

// denyReason classifies an issuance error into its metric label.
func denyReason(err error) string {
	switch {
	case errors.Is(err, core.ErrBadRequest):
		return "bad_request" // malformed request, bad proof of possession
	case errors.Is(err, ErrWrongContract):
		return "wrong_contract"
	case errors.Is(err, rules.ErrDenied):
		return "rule_denied"
	case errors.Is(err, ErrValidatorRejected):
		return "validator"
	case errors.Is(err, ErrCounterUnavailable):
		return "counter"
	default:
		return "other"
	}
}

// RegisterCounterMetrics wires the counter-ownership series onto reg:
// ts_lease_reclaimed_total reads the counter's Reclaimed total at scrape
// time (0 when the counter does not reclaim, so the series — and the CI
// metrics-smoke grep — always renders), and ts_membership_epoch is
// registered at its static-membership zero, to be raised by a membership
// manager when a view is adopted. Call it once per registry, from
// whoever owns the counter.
func RegisterCounterMetrics(reg *metrics.Registry, counter Counter) {
	reg = metrics.Or(reg)
	src := func() uint64 { return 0 }
	if rc, ok := counter.(interface{ Reclaimed() int64 }); ok {
		src = func() uint64 { return uint64(rc.Reclaimed()) }
	}
	reg.CounterFunc(MetricLeaseReclaimed,
		"One-time indexes adopted back from released block leases instead of burned.", src)
	reg.Gauge(MetricMembershipEpoch,
		"Replica-group membership view epoch in effect (0 = static membership).")
}

// RegistryStats reads the registry-level issuance totals — the sum over
// every Service sharing reg. The e2e harness cross-checks this against
// the per-frontend GET /v1/stats counters, keeping the two views honest
// against each other.
func RegistryStats(reg *metrics.Registry) (issued, denied uint64) {
	reg = metrics.Or(reg)
	issued = reg.Counter(MetricTokensIssued, "").Value()
	for _, reason := range denyReasons {
		denied += reg.Counter(MetricTokensDenied, "", metrics.L("reason", reason)).Value()
	}
	return issued, denied
}
