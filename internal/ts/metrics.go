package ts

import (
	"errors"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// Metric names exported by the Token Service. Every series is
// get-or-create on the service's registry, so several Service instances
// sharing one registry (e.g. the e2e harness's main and expired
// frontends) aggregate into the same series; GET /v1/stats remains the
// per-frontend view and the e2e harness cross-checks the two.
const (
	MetricTokensIssued = "ts_tokens_issued_total"
	MetricTokensDenied = "ts_tokens_denied_total"
	MetricIssueSeconds = "ts_issue_seconds"
	MetricBatchSize    = "ts_issue_batch_size"
	MetricLeaseSpread  = "ts_counter_lease_spread"
)

// Denial reason label values, in the order the issuance path checks
// them. "other" is the catch-all, so the reason counters always sum to
// the denied total.
var denyReasons = []string{
	"bad_request", "wrong_contract", "rule_denied", "validator", "counter", "other",
}

// serviceMetrics holds one Service's pre-resolved metric handles: the
// hot path increments them without touching the registry.
type serviceMetrics struct {
	issued       *metrics.Counter
	denied       map[string]*metrics.Counter
	issueSeconds *metrics.Histogram
	batchSize    *metrics.Histogram
	leaseSpread  *metrics.Gauge
}

func newServiceMetrics(reg *metrics.Registry) *serviceMetrics {
	m := &serviceMetrics{
		issued: reg.Counter(MetricTokensIssued, "Tokens issued by the Token Service."),
		denied: make(map[string]*metrics.Counter, len(denyReasons)),
		issueSeconds: reg.Histogram(MetricIssueSeconds,
			"Latency of one token issuance (validation, rules, counter, signing).", nil),
		batchSize: reg.Histogram(MetricBatchSize,
			"Requests per IssueBatch call.", metrics.DefSizeBuckets),
		leaseSpread: reg.Gauge(MetricLeaseSpread,
			"Worst-case one-time index spread of the configured counter (0 = strictly increasing)."),
	}
	for _, reason := range denyReasons {
		m.denied[reason] = reg.Counter(MetricTokensDenied,
			"Token requests denied, by reason.", metrics.L("reason", reason))
	}
	return m
}

// denyReason classifies an issuance error into its metric label.
func denyReason(err error) string {
	switch {
	case errors.Is(err, core.ErrBadRequest):
		return "bad_request" // malformed request, bad proof of possession
	case errors.Is(err, ErrWrongContract):
		return "wrong_contract"
	case errors.Is(err, rules.ErrDenied):
		return "rule_denied"
	case errors.Is(err, ErrValidatorRejected):
		return "validator"
	case errors.Is(err, ErrCounterUnavailable):
		return "counter"
	default:
		return "other"
	}
}

// RegistryStats reads the registry-level issuance totals — the sum over
// every Service sharing reg. The e2e harness cross-checks this against
// the per-frontend GET /v1/stats counters, keeping the two views honest
// against each other.
func RegistryStats(reg *metrics.Registry) (issued, denied uint64) {
	reg = metrics.Or(reg)
	issued = reg.Counter(MetricTokensIssued, "").Value()
	for _, reason := range denyReasons {
		denied += reg.Counter(MetricTokensDenied, "", metrics.L("reason", reason)).Value()
	}
	return issued, denied
}
