package ts

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
)

// recordingValidator logs its invocation order and optionally rejects.
type recordingValidator struct {
	name   string
	reject bool
	log    *[]string
}

func (v recordingValidator) Name() string { return v.name }

func (v recordingValidator) Validate(req *core.Request) error {
	*v.log = append(*v.log, v.name)
	if v.reject {
		return errors.New("rejected by " + v.name)
	}
	return nil
}

func TestValidatorsRunInRegistrationOrderAndShortCircuit(t *testing.T) {
	s := newService(t, Config{})
	var log []string
	s.AddValidator(recordingValidator{name: "first", log: &log})
	s.AddValidator(recordingValidator{name: "second", reject: true, log: &log})
	s.AddValidator(recordingValidator{name: "third", log: &log})

	req := &core.Request{
		Type: core.ArgumentType, Contract: target, Sender: client,
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(1)}},
	}
	_, err := s.Issue(req)
	if !errors.Is(err, ErrValidatorRejected) {
		t.Fatalf("err = %v, want ErrValidatorRejected", err)
	}
	if len(log) != 2 || log[0] != "first" || log[1] != "second" {
		t.Errorf("validator invocation order = %v, want [first second]", log)
	}
}

func TestValidatorsSkippedWhenRulesDeny(t *testing.T) {
	// Expensive runtime tools must not run for requests the static rules
	// already reject.
	s := newService(t, Config{})
	var log []string
	s.AddValidator(recordingValidator{name: "tool", log: &log})

	deny := rules.NewRuleSet()
	deny.SetSenderList(rules.NewList(rules.Whitelist)) // empty whitelist: deny all
	s.ReplaceRules(deny)

	req := &core.Request{
		Type: core.ArgumentType, Contract: target, Sender: client,
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(1)}},
	}
	if _, err := s.Issue(req); err == nil {
		t.Fatal("deny-all rules did not deny")
	}
	if len(log) != 0 {
		t.Errorf("validators ran despite rule denial: %v", log)
	}
}
