package ts_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/replica"
	replicanet "repro/internal/ts/replica/net"
)

// TestShardedCounterLeaseAbandonment pins the crash contract documented
// on ShardedCounter: blocks leased by a crashed holder are burned, never
// reclaimed. A restarted service must (a) never re-issue an index a
// previous incarnation issued, and (b) never issue the unissued
// remainder of an abandoned block either — recovery resumes strictly
// above the highest durable lease.
func TestShardedCounterLeaseAbandonment(t *testing.T) {
	const (
		shards    = 2
		blockSize = 8
	)
	dir := t.TempDir()

	openSharded := func() (*store.File, *store.Counter, *ts.ShardedCounter) {
		t.Helper()
		f, err := store.OpenFile(dir, store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := store.OpenCounter(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ts.NewShardedCounter(c, shards, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		return f, c, sc
	}

	// First incarnation: issue enough to hold partially-used leases on
	// both shards, then crash (abandon without Close).
	_, _, sc1 := openSharded()
	issued := make(map[int64]bool)
	var maxIssued int64
	for i := 0; i < 2*blockSize-3; i++ {
		idx, err := sc1.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice pre-crash", idx)
		}
		issued[idx] = true
		if idx > maxIssued {
			maxIssued = idx
		}
	}

	// Second incarnation over the same WAL.
	_, c2, sc2 := openSharded()
	// Every index of every durably leased block — issued or not — is
	// below this fence; recovery must never go back under it.
	fence := c2.Last() * blockSize
	if fence < maxIssued {
		t.Fatalf("recovered high-water %d below an issued index %d: lease not durable", fence, maxIssued)
	}
	for i := 0; i < 3*shards*blockSize; i++ {
		idx, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across the crash", idx)
		}
		if idx <= fence {
			t.Fatalf("index %d reclaimed from an abandoned block (fence %d): "+
				"burned indexes must stay burned", idx, fence)
		}
	}

	// The burn is bounded: one crash skips at most MaxSpread indexes.
	if burned := fence - maxIssued; burned > sc2.MaxSpread() {
		t.Errorf("crash burned %d indexes, exceeding the MaxSpread bound %d", burned, sc2.MaxSpread())
	}
}

// TestShardedCounterLeaseAbandonmentNetworked extends the abandonment
// contract to the networked quorum path: a Token Service frontend
// (coordinator + ShardedCounter) holding partially-used block leases
// dies mid-spread while its replica group simultaneously loses quorum.
// Once a quorum of WAL-backed replicas recovers, a fresh frontend must
// resume strictly above every durably leased block — never re-issuing
// an old index, never reclaiming an abandoned block's remainder — and
// the crash burns at most MaxSpread indexes.
func TestShardedCounterLeaseAbandonmentNetworked(t *testing.T) {
	const (
		shards    = 2
		blockSize = 8
	)
	dir := t.TempDir()

	// Three WAL-backed replicas form the group.
	nodeDir := func(i int) string { return filepath.Join(dir, fmt.Sprintf("n%d", i)) }
	openNode := func(i int) (*store.File, *replicanet.Node) {
		t.Helper()
		f, err := store.OpenFile(nodeDir(i), store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := replicanet.OpenNode(f)
		if err != nil {
			t.Fatal(err)
		}
		return f, n
	}
	backends := make([]*store.File, 3)
	nodes := make([]*replicanet.Node, 3)
	servers := make([]*replicanet.Server, 3)
	urls := make([]string, 3)
	for i := range nodes {
		backends[i], nodes[i] = openNode(i)
		s, err := replicanet.Serve(nodes[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		urls[i] = s.URL()
	}
	t.Cleanup(func() { _ = servers[0].Close(); _ = backends[0].Close() })

	coord1, err := replicanet.NewCoordinator(urls, replicanet.Options{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sc1, err := ts.NewShardedCounter(coord1, shards, blockSize)
	if err != nil {
		t.Fatal(err)
	}

	// First incarnation: partially-used leases on both shards.
	issued := make(map[int64]bool)
	var maxIssued int64
	record := func(idx int64) {
		t.Helper()
		if issued[idx] {
			t.Fatalf("index %d issued twice pre-crash", idx)
		}
		issued[idx] = true
		if idx > maxIssued {
			maxIssued = idx
		}
	}
	for i := 0; i < 2*blockSize-3; i++ {
		idx, err := sc1.Next()
		if err != nil {
			t.Fatal(err)
		}
		record(idx)
	}

	// Quorum loss mid-spread: two of three replicas die. The frontend
	// can drain indexes it already holds block leases for, but the next
	// block refill must fail with ErrNoQuorum — not hang, not invent an
	// unleased block.
	_ = servers[1].Close()
	_ = backends[1].Close()
	_ = servers[2].Close()
	_ = backends[2].Close()
	drained := 0
	for {
		idx, err := sc1.Next()
		if err != nil {
			if !errors.Is(err, replica.ErrNoQuorum) {
				t.Fatalf("refill without a quorum failed with %v, want ErrNoQuorum", err)
			}
			break
		}
		record(idx)
		if drained++; drained > shards*blockSize {
			t.Fatal("frontend kept issuing past its leased blocks without a quorum")
		}
	}
	// The frontend now crashes too: sc1/coord1 are abandoned with their
	// partial blocks.

	// Recovery: the two dead replicas restart from their WALs and rejoin
	// (fresh ports — a new frontend discovers the new group membership).
	urls2 := []string{urls[0], "", ""}
	for i := 1; i <= 2; i++ {
		b, n := openNode(i)
		s, err := replicanet.Serve(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close(); _ = b.Close() })
		nodes[i] = n
		urls2[i] = s.URL()
	}

	// Every index of every durably leased block sits below this fence.
	var maxLease int64
	for _, n := range nodes {
		if accepted, _ := n.State(); accepted > maxLease {
			maxLease = accepted
		}
	}
	fence := maxLease * blockSize
	if fence < maxIssued {
		t.Fatalf("recovered high-water %d below an issued index %d: grant not durable", fence, maxIssued)
	}

	coord2, err := replicanet.NewCoordinator(urls2, replicanet.Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := ts.NewShardedCounter(coord2, shards, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*shards*blockSize; i++ {
		idx, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across the crash", idx)
		}
		if idx <= fence {
			t.Fatalf("index %d reclaimed from an abandoned block (fence %d): "+
				"burned indexes must stay burned", idx, fence)
		}
	}

	// The double failure still burns at most MaxSpread indexes.
	if burned := fence - maxIssued; burned > sc2.MaxSpread() {
		t.Errorf("crash burned %d indexes, exceeding the MaxSpread bound %d", burned, sc2.MaxSpread())
	}
}
