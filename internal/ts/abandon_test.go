package ts_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/ts"
)

// TestShardedCounterLeaseAbandonment pins the crash contract documented
// on ShardedCounter: blocks leased by a crashed holder are burned, never
// reclaimed. A restarted service must (a) never re-issue an index a
// previous incarnation issued, and (b) never issue the unissued
// remainder of an abandoned block either — recovery resumes strictly
// above the highest durable lease.
func TestShardedCounterLeaseAbandonment(t *testing.T) {
	const (
		shards    = 2
		blockSize = 8
	)
	dir := t.TempDir()

	openSharded := func() (*store.File, *store.Counter, *ts.ShardedCounter) {
		t.Helper()
		f, err := store.OpenFile(dir, store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := store.OpenCounter(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ts.NewShardedCounter(c, shards, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		return f, c, sc
	}

	// First incarnation: issue enough to hold partially-used leases on
	// both shards, then crash (abandon without Close).
	_, _, sc1 := openSharded()
	issued := make(map[int64]bool)
	var maxIssued int64
	for i := 0; i < 2*blockSize-3; i++ {
		idx, err := sc1.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice pre-crash", idx)
		}
		issued[idx] = true
		if idx > maxIssued {
			maxIssued = idx
		}
	}

	// Second incarnation over the same WAL.
	_, c2, sc2 := openSharded()
	// Every index of every durably leased block — issued or not — is
	// below this fence; recovery must never go back under it.
	fence := c2.Last() * blockSize
	if fence < maxIssued {
		t.Fatalf("recovered high-water %d below an issued index %d: lease not durable", fence, maxIssued)
	}
	for i := 0; i < 3*shards*blockSize; i++ {
		idx, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across the crash", idx)
		}
		if idx <= fence {
			t.Fatalf("index %d reclaimed from an abandoned block (fence %d): "+
				"burned indexes must stay burned", idx, fence)
		}
	}

	// The burn is bounded: one crash skips at most MaxSpread indexes.
	if burned := fence - maxIssued; burned > sc2.MaxSpread() {
		t.Errorf("crash burned %d indexes, exceeding the MaxSpread bound %d", burned, sc2.MaxSpread())
	}
}
